(* Tests for the phi-accrual failure detector: suspicion transitions on
   a flapped link, crash detection without a fabric scope, degradation
   and recovery on a lossy link, activity-gated quiescence, and
   reproducibility of a seeded timeline. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults
module Sentinel = Madeleine.Sentinel

let world ?(seed = 5L) () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed in
  Fabric.set_faults fabric faults;
  for i = 0 to 1 do
    let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
    Fabric.attach fabric n
  done;
  (engine, faults)

(* The sentinel is activity-gated, so a test must stand in for the
   channel traffic that normally keeps it probing. *)
let drive engine s ~until_us =
  Engine.spawn engine ~name:"drive" (fun () ->
      let deadline = Time.add Time.zero (Time.us until_us) in
      while Time.( < ) (Engine.now engine) deadline do
        Sentinel.touch s;
        Engine.sleep (Time.us 400.0)
      done)

let saw tl from to_ =
  List.exists
    (fun e -> e.Sentinel.ev_from = from && e.Sentinel.ev_to = to_)
    tl

let test_flap_phi_transitions () =
  let engine, faults = world () in
  let s = Sentinel.create engine faults ~me:0 ~peers:[ 1 ] ~fabric:"eth" () in
  Sentinel.start s;
  (* Down for 4 ms starting at 3 ms: long enough for phi to climb
     through both thresholds (mean inter-arrival ~500 us, so Degraded
     needs ~1.2 ms of silence and Down ~2.3 ms). *)
  Faults.flap_link faults ~fabric:"eth" ~node:1
    ~at:(Time.add Time.zero (Time.us 3_000.0))
    ~duration:(Time.us 4_000.0);
  drive engine s ~until_us:12_000.0;
  Engine.run engine;
  let tl = Sentinel.timeline s in
  Alcotest.(check bool) "Up -> Degraded" true (saw tl Sentinel.Up Sentinel.Degraded);
  Alcotest.(check bool) "reached Down" true
    (List.exists (fun e -> e.Sentinel.ev_to = Sentinel.Down) tl);
  Alcotest.(check bool) "snapped back Up after the flap" true
    (List.exists (fun e -> e.Sentinel.ev_to = Sentinel.Up) tl);
  Alcotest.(check bool) "final verdict Up" true (Sentinel.state s 1 = Sentinel.Up);
  Alcotest.(check (list int)) "nobody suspected at the end" [] (Sentinel.suspected s);
  Alcotest.(check bool) "probes were sent" true (Sentinel.probes s > 0);
  (* Transitions record the suspicion level that caused them. *)
  List.iter
    (fun e ->
      if e.Sentinel.ev_to = Sentinel.Down then
        Alcotest.(check bool) "Down carries phi >= 2" true (e.Sentinel.ev_phi >= 2.0))
    tl

let test_crash_down_without_fabric () =
  let engine, faults = world () in
  (* No [fabric] scope: only node liveness is probed. *)
  let s = Sentinel.create engine faults ~me:0 ~peers:[ 1 ] () in
  Sentinel.start s;
  let transitions = ref [] in
  Sentinel.on_transition s (fun peer from to_ ->
      transitions := (peer, from, to_) :: !transitions);
  Engine.spawn engine ~name:"killer" (fun () ->
      Engine.sleep (Time.us 2_000.0);
      Faults.crash_now faults ~node:1 ());
  drive engine s ~until_us:8_000.0;
  Engine.run engine;
  Alcotest.(check bool) "peer is Down" true (Sentinel.state s 1 = Sentinel.Down);
  Alcotest.(check (list int)) "peer is suspected" [ 1 ] (Sentinel.suspected s);
  Alcotest.(check bool) "callback saw the Down transition" true
    (List.exists (fun (p, _, to_) -> p = 1 && to_ = Sentinel.Down) !transitions);
  Alcotest.(check bool) "phi stays high on a dead peer" true
    (Sentinel.phi s 1 >= 2.0)

let test_lossy_link_degrades_then_recovers () =
  let engine, faults = world ~seed:23L () in
  let s = Sentinel.create engine faults ~me:0 ~peers:[ 1 ] ~fabric:"eth" () in
  Sentinel.start s;
  Faults.set_drop faults ~fabric:"eth" ~node:1 ~rate:0.7;
  Engine.spawn engine ~name:"heal" (fun () ->
      Engine.sleep (Time.us 20_000.0);
      Faults.set_drop faults ~fabric:"eth" ~node:1 ~rate:0.0);
  drive engine s ~until_us:26_000.0;
  Engine.run engine;
  let tl = Sentinel.timeline s in
  Alcotest.(check bool) "loss pushed the peer out of Up" true
    (List.exists (fun e -> e.Sentinel.ev_to <> Sentinel.Up) tl);
  Alcotest.(check bool) "an arrival snapped it back" true
    (List.exists (fun e -> e.Sentinel.ev_to = Sentinel.Up) tl);
  Alcotest.(check bool) "healed link ends Up" true
    (Sentinel.state s 1 = Sentinel.Up)

let test_activity_gated_quiescence () =
  let engine, faults = world () in
  let s = Sentinel.create engine faults ~me:0 ~peers:[ 1 ] ~fabric:"eth" () in
  Sentinel.start s;
  Engine.spawn engine ~name:"burst" (fun () ->
      Sentinel.touch s;
      Engine.sleep (Time.us 1_000.0);
      Sentinel.touch s);
  (* The daemon must park once [grace] expires, or this run would never
     terminate. *)
  Engine.run engine;
  Alcotest.(check bool) "probed while touched" true (Sentinel.probes s > 0);
  Alcotest.(check bool) "wound down shortly after the last touch" true
    (Time.to_us (Engine.now engine) < 10_000.0);
  Alcotest.(check (list int)) "quiet peer never suspected" []
    (Sentinel.suspected s)

let test_seeded_timeline_reproducible () =
  let run () =
    let engine, faults = world ~seed:23L () in
    let s = Sentinel.create engine faults ~me:0 ~peers:[ 1 ] ~fabric:"eth" () in
    Sentinel.start s;
    Faults.set_drop faults ~fabric:"eth" ~node:1 ~rate:0.5;
    drive engine s ~until_us:15_000.0;
    Engine.run engine;
    (Sentinel.probes s, Sentinel.timeline s)
  in
  let p1, t1 = run () and p2, t2 = run () in
  Alcotest.(check int) "same probe count" p1 p2;
  Alcotest.(check bool) "same seed, identical timeline" true (t1 = t2)

(* Elastic membership must not leak detector state: forgetting a
   drained rank drops its EMA, arrival clock, verdict and overload flag,
   and learning it back starts from scratch. *)
let test_forget_drops_peer_state () =
  let engine, faults = world () in
  let s = Sentinel.create engine faults ~me:0 ~peers:[ 1 ] ~fabric:"eth" () in
  Sentinel.start s;
  (* Crash the peer so it accumulates a real verdict worth leaking. *)
  Engine.spawn engine ~name:"killer" (fun () ->
      Engine.sleep (Time.us 2_000.0);
      Faults.crash_now faults ~node:1 ());
  drive engine s ~until_us:8_000.0;
  Engine.run engine;
  Alcotest.(check bool) "peer Down before forget" true
    (Sentinel.state s 1 = Sentinel.Down);
  Sentinel.set_overloaded s ~peer:1 true;
  Alcotest.(check (list int)) "watched before forget" [ 1 ]
    (Sentinel.watched s);
  Sentinel.forget s 1;
  (* Every per-rank trace is gone: never-probed peers report Up, are
     unsuspected, and the watch list is empty. *)
  Alcotest.(check (list int)) "watched after forget" [] (Sentinel.watched s);
  Alcotest.(check (list int)) "suspected after forget" []
    (Sentinel.suspected s);
  Alcotest.(check bool) "verdict reset to Up" true
    (Sentinel.state s 1 = Sentinel.Up);
  Alcotest.(check bool) "phi reset" true (Sentinel.phi s 1 = 0.0);
  (* A stale overload report on a forgotten peer must be ignored. *)
  Sentinel.set_overloaded s ~peer:1 true;
  Alcotest.(check bool) "overload report on unknown peer ignored" true
    (Sentinel.state s 1 = Sentinel.Up);
  (* Forgetting twice is a no-op; learning starts a fresh detector. *)
  Sentinel.forget s 1;
  Sentinel.learn s 1;
  Alcotest.(check (list int)) "learned back" [ 1 ] (Sentinel.watched s);
  Alcotest.(check bool) "fresh state is Up" true
    (Sentinel.state s 1 = Sentinel.Up);
  (* [me] never becomes a peer. *)
  Sentinel.learn s 0;
  Alcotest.(check (list int)) "me not learnable" [ 1 ] (Sentinel.watched s)

(* Stale-ballot hygiene for quorum elections: one countable grant per
   term, ballots voided by the voter's crash-epoch restart or by
   forgetting the voter, and a restart clearing the rank's own grant so
   it may vote afresh — but never twice in the same term. *)
let test_election_ballot_hygiene () =
  let engine, faults = world () in
  let s = Sentinel.create engine faults ~me:0 ~peers:[ 1; 2 ] () in
  (* One grant per term, monotonic. *)
  Alcotest.(check bool) "grant term 3" true (Sentinel.grant_vote s ~term:3);
  Alcotest.(check bool) "no second grant in term 3" false
    (Sentinel.grant_vote s ~term:3);
  Alcotest.(check bool) "no grant for an older term" false
    (Sentinel.grant_vote s ~term:2);
  Alcotest.(check bool) "later term grants" true (Sentinel.grant_vote s ~term:4);
  Alcotest.(check int) "voted_term tracks the highest grant" 4
    (Sentinel.voted_term s);
  (* Ballots count only while the voter's crash epoch is unchanged. *)
  Sentinel.record_ballot s ~voter:1 ~term:4
    ~voter_epoch:(Faults.epoch faults 1);
  Sentinel.record_ballot s ~voter:2 ~term:4
    ~voter_epoch:(Faults.epoch faults 2);
  Alcotest.(check (list int)) "both ballots countable" [ 1; 2 ]
    (Sentinel.ballots s ~term:4);
  Alcotest.(check (list int)) "no ballots for another term" []
    (Sentinel.ballots s ~term:5);
  Engine.spawn engine ~name:"restart" (fun () ->
      Faults.crash_now faults ~node:1 ~restart_after:(Time.us 100.0) ());
  Engine.run engine;
  Alcotest.(check (list int))
    "restarted voter's ballot silently stops counting" [ 2 ]
    (Sentinel.ballots s ~term:4);
  (* Forgetting a voter (drain) voids its recorded ballot too. *)
  Sentinel.forget s 2;
  Alcotest.(check (list int)) "forgotten voter's ballot voided" []
    (Sentinel.ballots s ~term:4);
  (* A crash-epoch restart of this rank clears its own grant — it may
     vote afresh, but still at most once per term. *)
  Sentinel.reset_election s;
  Alcotest.(check int) "grant cleared on restart" 0 (Sentinel.voted_term s);
  Alcotest.(check bool) "may vote again after restart" true
    (Sentinel.grant_vote s ~term:4);
  Alcotest.(check bool) "still one grant per term" false
    (Sentinel.grant_vote s ~term:4)

let () =
  Alcotest.run "sentinel"
    [
      ( "phi-accrual",
        [
          Alcotest.test_case "flap: Up/Degraded/Down/Up" `Quick
            test_flap_phi_transitions;
          Alcotest.test_case "crash detected without fabric" `Quick
            test_crash_down_without_fabric;
          Alcotest.test_case "lossy link degrades, recovers" `Quick
            test_lossy_link_degrades_then_recovers;
          Alcotest.test_case "activity-gated wind-down" `Quick
            test_activity_gated_quiescence;
          Alcotest.test_case "seeded timeline reproducible" `Quick
            test_seeded_timeline_reproducible;
          Alcotest.test_case "forget drops per-rank state" `Quick
            test_forget_drops_peer_state;
        ] );
      ( "election",
        [
          Alcotest.test_case "stale-ballot hygiene" `Quick
            test_election_ballot_hygiene;
        ] );
    ]
