(* Tests for the Madeleine II core: interface semantics, the Switch /
   BMM / TM data path, and the paper's headline latency/bandwidth
   calibration points. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Mad = Madeleine.Api
module Channel = Madeleine.Channel
module Config = Madeleine.Config
module Iface = Madeleine.Iface

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

let in_range ?(lo = 0.0) ~hi what v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" what v lo hi)
    true
    (v >= lo && v <= hi)

(* World construction is shared with the benchmark harness. *)
type world = Harness.world = {
  engine : Engine.t;
  session : Madeleine.Session.t;
  channel : Channel.t;
}

let make_world = Harness.make_world
let bip_driver = Harness.bip_driver
let bip_world = Harness.bip_world
let sisci_world = Harness.sisci_world
let tcp_world = Harness.tcp_world
let via_world () = Harness.via_world ()
let sbp_world () = Harness.sbp_world ()

(* One message 0 -> 1 carrying [fields]; checks content. Returns arrival
   time of full message. *)
let roundtrip_fields w fields ~modes =
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  let arrived = ref Time.zero in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      List.iter2
        (fun data (s_mode, r_mode) -> Mad.pack oc ~s_mode ~r_mode data)
        fields modes;
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let sink = List.map (fun f -> Bytes.create (Bytes.length f)) fields in
      List.iter2
        (fun buf (s_mode, r_mode) -> Mad.unpack ic ~s_mode ~r_mode buf)
        sink modes;
      Mad.end_unpacking ic;
      arrived := Engine.now w.engine;
      List.iter2
        (fun expect got -> Alcotest.(check bytes) "field content" expect got)
        fields sink);
  Engine.run w.engine;
  !arrived

let cheaper = (Iface.Send_cheaper, Iface.Receive_cheaper)
and express = (Iface.Send_cheaper, Iface.Receive_express)

(* ------------------------------------------------------------------ *)
(* Content round-trips across all five PMMs *)

let roundtrip_small w = ignore (roundtrip_fields w [ payload 64 1L ] ~modes:[ cheaper ])
let roundtrip_large w =
  ignore (roundtrip_fields w [ payload 300_000 2L ] ~modes:[ cheaper ])

let roundtrip_mixed w =
  ignore
    (roundtrip_fields w
       [ payload 8 3L; payload 100_000 4L; payload 33 5L ]
       ~modes:[ express; cheaper; cheaper ])

let test_roundtrips name mk =
  [
    Alcotest.test_case (name ^ " small") `Quick (fun () ->
        roundtrip_small (mk ()));
    Alcotest.test_case (name ^ " large") `Quick (fun () ->
        roundtrip_large (mk ()));
    Alcotest.test_case (name ^ " mixed") `Quick (fun () ->
        roundtrip_mixed (mk ()));
  ]

(* ------------------------------------------------------------------ *)
(* Fig. 1: EXPRESS size header, CHEAPER dynamically-allocated payload *)

let test_fig1_pattern () =
  let w = bip_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  let n = 20_000 in
  let data = payload n 6L in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      let hdr = Bytes.create 4 in
      Bytes.set_int32_le hdr 0 (Int32.of_int n);
      Mad.pack oc ~r_mode:Iface.Receive_express hdr;
      Mad.pack oc ~r_mode:Iface.Receive_cheaper data;
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let hdr = Bytes.create 4 in
      Mad.unpack ic ~r_mode:Iface.Receive_express hdr;
      (* EXPRESS: the size is usable right now, to allocate the array. *)
      let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
      Alcotest.(check int) "express size" n len;
      let sink = Bytes.create len in
      Mad.unpack ic ~r_mode:Iface.Receive_cheaper sink;
      Mad.end_unpacking ic;
      Alcotest.(check bytes) "payload" data sink);
  Engine.run w.engine

(* ------------------------------------------------------------------ *)
(* Semantic flags *)

let test_send_later_reads_at_commit () =
  (* LATER: a modification between pack and end_packing must be visible. *)
  let w = bip_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      let data = Bytes.make 16 'x' in
      Mad.pack oc ~s_mode:Iface.Send_later data;
      Bytes.fill data 0 16 'y';
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let sink = Bytes.create 16 in
      Mad.unpack ic ~s_mode:Iface.Send_later sink;
      Mad.end_unpacking ic;
      Alcotest.(check bytes) "updated value" (Bytes.make 16 'y') sink);
  Engine.run w.engine

let test_send_safer_protects_data () =
  (* SAFER: a modification right after pack must NOT corrupt the message. *)
  let w = bip_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      let data = Bytes.make 16 'x' in
      Mad.pack oc ~s_mode:Iface.Send_safer data;
      Bytes.fill data 0 16 'z';
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let sink = Bytes.create 16 in
      Mad.unpack ic ~s_mode:Iface.Send_safer sink;
      Mad.end_unpacking ic;
      Alcotest.(check bytes) "original value" (Bytes.make 16 'x') sink);
  Engine.run w.engine

let test_express_available_before_end () =
  (* The express field must be readable before end_unpacking. *)
  let w = sisci_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc ~r_mode:Iface.Receive_express (Bytes.make 4 'k');
      Mad.pack oc (payload 64 7L);
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let hdr = Bytes.create 4 in
      Mad.unpack ic ~r_mode:Iface.Receive_express hdr;
      Alcotest.(check bytes) "express now" (Bytes.make 4 'k') hdr;
      let sink = Bytes.create 64 in
      Mad.unpack ic sink;
      Mad.end_unpacking ic);
  Engine.run w.engine

let test_tm_usage_accounting () =
  (* One small field (short TM 0) and one large (regular TM 1). *)
  let w = sisci_world () in
  ignore
    (roundtrip_fields w
       [ payload 16 40L; payload 50_000 41L ]
       ~modes:[ cheaper; cheaper ]);
  match Channel.tm_usage w.channel with
  | [ (0, 1, 16); (1, 1, 50_000) ] -> ()
  | other ->
      Alcotest.failf "unexpected usage: %s"
        (String.concat ";"
           (List.map (fun (t, p, b) -> Printf.sprintf "(%d,%d,%d)" t p b) other))

(* ------------------------------------------------------------------ *)
(* Symmetry checking *)

let test_symmetry_size_mismatch_detected () =
  let w = bip_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc (Bytes.create 16);
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      match Mad.unpack ic (Bytes.create 24) with
      | () -> Alcotest.fail "expected Symmetry_violation"
      | exception Config.Symmetry_violation _ -> ());
  Engine.run w.engine

let test_symmetry_mode_mismatch_detected () =
  let w = bip_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc ~r_mode:Iface.Receive_cheaper (Bytes.create 16);
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      match Mad.unpack ic ~r_mode:Iface.Receive_express (Bytes.create 16) with
      | () -> Alcotest.fail "expected Symmetry_violation"
      | exception Config.Symmetry_violation _ -> ());
  Engine.run w.engine

(* ------------------------------------------------------------------ *)
(* Message sequences, ordering, any-source *)

let test_message_sequence_in_order () =
  let w = sisci_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  let got = ref [] in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      for i = 1 to 10 do
        let oc = Mad.begin_packing ep0 ~remote:1 in
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int i);
        Mad.pack oc b;
        Mad.end_packing oc
      done);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      for _ = 1 to 10 do
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        let b = Bytes.create 8 in
        Mad.unpack ic b;
        Mad.end_unpacking ic;
        got := Int64.to_int (Bytes.get_int64_le b 0) :: !got
      done);
  Engine.run w.engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
    (List.rev !got)

let test_any_source_unpacking () =
  let w = make_world ~n:3 bip_driver Netparams.myrinet in
  let ep2 = Channel.endpoint w.channel ~rank:2 in
  let senders_seen = ref [] in
  let send_from rank delay =
    Engine.spawn w.engine ~name:(Printf.sprintf "sender%d" rank) (fun () ->
        Engine.sleep delay;
        let oc =
          Mad.begin_packing (Channel.endpoint w.channel ~rank) ~remote:2
        in
        Mad.pack oc (Bytes.make 8 (Char.chr (Char.code '0' + rank)));
        Mad.end_packing oc)
  in
  send_from 0 (Time.us 50.0);
  send_from 1 (Time.us 5.0);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      for _ = 1 to 2 do
        let ic = Mad.begin_unpacking ep2 in
        let b = Bytes.create 8 in
        Mad.unpack ic b;
        Mad.end_unpacking ic;
        senders_seen := Mad.remote_rank ic :: !senders_seen;
        Alcotest.(check char)
          "content matches source"
          (Char.chr (Char.code '0' + Mad.remote_rank ic))
          (Bytes.get b 0)
      done);
  Engine.run w.engine;
  (* Rank 1 sent first (5 us), so it must be unpacked first. *)
  Alcotest.(check (list int)) "arrival order" [ 1; 0 ] (List.rev !senders_seen)

let test_channels_do_not_interfere () =
  (* Two channels on the same BIP network: messages on one channel must
     not be visible on the other. *)
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"net" ~link:Netparams.myrinet in
  let nodes =
    List.init 2 (fun i ->
        let node = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric node;
        node)
  in
  let driver = bip_driver engine fabric nodes in
  let session = Madeleine.Session.create engine in
  let channel = Channel.create session driver ~ranks:[ 0; 1 ] () in
  let w = { engine; session; channel } in
  let chan2 = Channel.create w.session driver ~ranks:[ 0; 1 ] () in
  let ep0a = Channel.endpoint w.channel ~rank:0 in
  let ep1a = Channel.endpoint w.channel ~rank:1 in
  let ep0b = Channel.endpoint chan2 ~rank:0 in
  let ep1b = Channel.endpoint chan2 ~rank:1 in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0a ~remote:1 in
      Mad.pack oc (Bytes.make 8 'A');
      Mad.end_packing oc;
      let oc = Mad.begin_packing ep0b ~remote:1 in
      Mad.pack oc (Bytes.make 8 'B');
      Mad.end_packing oc);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      (* Receive on channel 2 first: its message is the only one there. *)
      let ic = Mad.begin_unpacking_from ep1b ~remote:0 in
      let b = Bytes.create 8 in
      Mad.unpack ic b;
      Mad.end_unpacking ic;
      Alcotest.(check char) "channel2" 'B' (Bytes.get b 0);
      let ic = Mad.begin_unpacking_from ep1a ~remote:0 in
      let a = Bytes.create 8 in
      Mad.unpack ic a;
      Mad.end_unpacking ic;
      Alcotest.(check char) "channel1" 'A' (Bytes.get a 0));
  Engine.run w.engine

let test_bidirectional_simultaneous () =
  let w = sisci_world () in
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  Engine.spawn w.engine ~name:"node0" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc (payload 10_000 20L);
      Mad.end_packing oc;
      let ic = Mad.begin_unpacking_from ep0 ~remote:1 in
      let sink = Bytes.create 10_000 in
      Mad.unpack ic sink;
      Mad.end_unpacking ic;
      Alcotest.(check bytes) "0 got" (payload 10_000 21L) sink);
  Engine.spawn w.engine ~name:"node1" (fun () ->
      let oc = Mad.begin_packing ep1 ~remote:0 in
      Mad.pack oc (payload 10_000 21L);
      Mad.end_packing oc;
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let sink = Bytes.create 10_000 in
      Mad.unpack ic sink;
      Mad.end_unpacking ic;
      Alcotest.(check bytes) "1 got" (payload 10_000 20L) sink);
  Engine.run w.engine

(* ------------------------------------------------------------------ *)
(* Ping-pong calibration: the paper's headline numbers *)

let pingpong w ~bytes_count ~iters =
  let ep0 = Channel.endpoint w.channel ~rank:0 in
  let ep1 = Channel.endpoint w.channel ~rank:1 in
  let data = payload bytes_count 9L in
  let started = ref Time.zero and finished = ref Time.zero in
  Engine.spawn w.engine ~name:"ping" (fun () ->
      started := Engine.now w.engine;
      for _ = 1 to iters do
        let oc = Mad.begin_packing ep0 ~remote:1 in
        Mad.pack oc data;
        Mad.end_packing oc;
        let ic = Mad.begin_unpacking_from ep0 ~remote:1 in
        Mad.unpack ic data;
        Mad.end_unpacking ic
      done;
      finished := Engine.now w.engine);
  Engine.spawn w.engine ~name:"pong" (fun () ->
      for _ = 1 to iters do
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        let sink = Bytes.create bytes_count in
        Mad.unpack ic sink;
        Mad.end_unpacking ic;
        let oc = Mad.begin_packing ep1 ~remote:0 in
        Mad.pack oc sink;
        Mad.end_packing oc
      done);
  Engine.run w.engine;
  let total = Time.diff !finished !started in
  (* One-way time. *)
  total / (2 * iters)

let test_sisci_latency_calibration () =
  (* Paper Fig. 4: minimal latency 3.9 us over SISCI/SCI. *)
  let one_way = pingpong (sisci_world ()) ~bytes_count:4 ~iters:50 in
  in_range ~lo:3.3 ~hi:4.5 "mad/sisci latency us" (Time.to_us one_way)

let test_bip_latency_calibration () =
  (* Paper §5.2.2: minimal latency 7 us over BIP/Myrinet. *)
  let one_way = pingpong (bip_world ()) ~bytes_count:4 ~iters:50 in
  in_range ~lo:6.0 ~hi:8.0 "mad/bip latency us" (Time.to_us one_way)

let test_sisci_bandwidth_calibration () =
  (* Paper Fig. 4: 82 MB/s asymptotic bandwidth over SISCI/SCI. *)
  let n = 1 lsl 20 in
  let one_way = pingpong (sisci_world ()) ~bytes_count:n ~iters:4 in
  let bw = Time.rate_mb_s ~bytes_count:n one_way in
  in_range ~lo:75.0 ~hi:89.0 "mad/sisci bandwidth" bw

let test_bip_bandwidth_calibration () =
  (* Paper §5.2.2: 122 MB/s bandwidth over BIP/Myrinet (raw BIP: 126). *)
  let n = 1 lsl 20 in
  let one_way = pingpong (bip_world ()) ~bytes_count:n ~iters:4 in
  let bw = Time.rate_mb_s ~bytes_count:n one_way in
  in_range ~lo:115.0 ~hi:127.0 "mad/bip bandwidth" bw

let test_sisci_dual_buffering_kink () =
  (* Fig. 4: the dual-buffering algorithm kicks in above 8 kB; per-byte
     throughput at 32 kB must clearly beat 8 kB. *)
  let bw n =
    let one_way = pingpong (sisci_world ()) ~bytes_count:n ~iters:8 in
    Time.rate_mb_s ~bytes_count:n one_way
  in
  let bw8 = bw 8192 and bw32 = bw 32768 in
  Alcotest.(check bool)
    (Printf.sprintf "dual buffering improves: %.1f -> %.1f MB/s" bw8 bw32)
    true
    (bw32 > bw8 *. 1.2)

let test_sisci_single_slot_ablation () =
  (* With a single ring slot, the sender cannot overlap the receiver's
     copy-out: large-message bandwidth must drop. *)
  let bw config =
    let w = sisci_world ~config () in
    let one_way = pingpong w ~bytes_count:(1 lsl 18) ~iters:4 in
    Time.rate_mb_s ~bytes_count:(1 lsl 18) one_way
  in
  let dual = bw Config.default in
  let single = bw { Config.default with Config.sisci_ring_slots = 1 } in
  Alcotest.(check bool)
    (Printf.sprintf "dual %.1f > single %.1f MB/s" dual single)
    true (dual > single *. 1.15)

let test_sisci_dma_is_slower () =
  (* The DMA TM is implemented but disabled by default for good reason. *)
  let bw config =
    let w = sisci_world ~config () in
    let one_way = pingpong w ~bytes_count:(1 lsl 18) ~iters:4 in
    Time.rate_mb_s ~bytes_count:(1 lsl 18) one_way
  in
  let pio = bw Config.default in
  let dma = bw { Config.default with Config.sisci_use_dma = true } in
  in_range ~lo:30.0 ~hi:37.0 "dma bandwidth" dma;
  Alcotest.(check bool) "pio much faster" true (pio > 2.0 *. dma)

let test_rx_interrupt_mode_costs_latency () =
  (* §7 future work, implemented: interrupt-driven receive adds the
     kernel wake-up cost on every message; adaptive keeps polling for
     back-to-back exchanges. *)
  let lat rx_interaction =
    let config = { Config.default with Config.rx_interaction } in
    Time.to_us (pingpong (sisci_world ~config ()) ~bytes_count:4 ~iters:20)
  in
  let poll = lat Config.Rx_poll in
  let intr = lat Config.Rx_interrupt in
  let adaptive = lat (Config.Rx_adaptive Config.default_adaptive_window) in
  Alcotest.(check bool)
    (Printf.sprintf "interrupts slower: %.2f > %.2f + 8" intr poll)
    true
    (intr > poll +. 8.0);
  Alcotest.(check (float 0.5)) "adaptive stays hot" poll adaptive

let test_tcp_latency_sane () =
  let one_way = pingpong (tcp_world ()) ~bytes_count:4 ~iters:20 in
  in_range ~lo:50.0 ~hi:90.0 "mad/tcp latency us" (Time.to_us one_way)

let test_tcp_bandwidth_sane () =
  let n = 1 lsl 19 in
  let one_way = pingpong (tcp_world ()) ~bytes_count:n ~iters:3 in
  let bw = Time.rate_mb_s ~bytes_count:n one_way in
  in_range ~lo:9.0 ~hi:12.0 "mad/tcp bandwidth" bw

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "madeleine"
    [
      ( "roundtrip",
        test_roundtrips "bip" bip_world
        @ test_roundtrips "sisci" sisci_world
        @ test_roundtrips "tcp" tcp_world
        @ test_roundtrips "via" via_world
        @ test_roundtrips "sbp" sbp_world );
      ( "semantics",
        [
          Alcotest.test_case "fig1 express+cheaper" `Quick test_fig1_pattern;
          Alcotest.test_case "send_later" `Quick test_send_later_reads_at_commit;
          Alcotest.test_case "send_safer" `Quick test_send_safer_protects_data;
          Alcotest.test_case "express before end" `Quick
            test_express_available_before_end;
          Alcotest.test_case "tm usage accounting" `Quick
            test_tm_usage_accounting;
        ] );
      ( "symmetry",
        [
          Alcotest.test_case "size mismatch" `Quick
            test_symmetry_size_mismatch_detected;
          Alcotest.test_case "mode mismatch" `Quick
            test_symmetry_mode_mismatch_detected;
        ] );
      ( "ordering",
        [
          Alcotest.test_case "message sequence" `Quick
            test_message_sequence_in_order;
          Alcotest.test_case "any source" `Quick test_any_source_unpacking;
          Alcotest.test_case "channel isolation" `Quick
            test_channels_do_not_interfere;
          Alcotest.test_case "bidirectional" `Quick
            test_bidirectional_simultaneous;
        ] );
      ( "calibration",
        [
          Alcotest.test_case "sisci latency 3.9us" `Quick
            test_sisci_latency_calibration;
          Alcotest.test_case "bip latency 7us" `Quick
            test_bip_latency_calibration;
          Alcotest.test_case "sisci bandwidth 82MB/s" `Quick
            test_sisci_bandwidth_calibration;
          Alcotest.test_case "bip bandwidth 122MB/s" `Quick
            test_bip_bandwidth_calibration;
          Alcotest.test_case "sisci dual-buffering kink" `Quick
            test_sisci_dual_buffering_kink;
          Alcotest.test_case "sisci single-slot ablation" `Quick
            test_sisci_single_slot_ablation;
          Alcotest.test_case "sisci dma slower" `Quick test_sisci_dma_is_slower;
          Alcotest.test_case "rx interrupt mode" `Quick
            test_rx_interrupt_mode_costs_latency;
          Alcotest.test_case "tcp latency" `Quick test_tcp_latency_sane;
          Alcotest.test_case "tcp bandwidth" `Quick test_tcp_bandwidth_sane;
        ] );
    ]
