(* The Fig. 3 data path, observed step by step.

   A mock driver with two instrumented Transmission Modules (one
   dynamic, one static, selected by a size threshold) records every raw
   TM operation. The tests then assert the paper's §4 protocol:
   - the Switch queries the selector per packet and routes to the BMM
     paired with the chosen TM;
   - switching TMs mid-message commits the previous BMM *before* the new
     TM sees data (delivery-order rule);
   - end_packing performs the final commit;
   - the receive side replays the same selector decisions and checkout
     points. *)

module Engine = Marcel.Engine
module Mad = Madeleine.Api
module Channel = Madeleine.Channel
module Iface = Madeleine.Iface
module Tm = Madeleine.Tm
module Bufs = Madeleine.Bufs
module Link = Madeleine.Link
module Bmm = Madeleine.Bmm
module Driver = Madeleine.Driver

(* The mock wire: per (src,dst) FIFO queues per TM, zero time. *)
type wire = {
  dyn_q : Bytes.t Marcel.Mailbox.t;
  stat_q : (Bytes.t * int) Marcel.Mailbox.t;
  mutable log : string list; (* every raw TM operation, in order *)
}

let log wire event = wire.log <- event :: wire.log
let events wire = List.rev wire.log

let threshold = 100 (* bytes: <= threshold -> static TM 0, else dynamic TM 1 *)
let slot_capacity = 256

let select ~len ~transit:_ _s _r = if len <= threshold then 0 else 1

let send_tms wire =
  let static_staging = Bytes.create slot_capacity in
  let static_fill = ref 0 in
  let static_tm =
    {
      Tm.s_name = "mock-static";
      s_side =
        Tm.Static_send
          {
            Tm.send_capacity = slot_capacity;
            obtain_static_buffer = (fun () -> log wire "obtain_static");
            write_static =
              (fun buf ->
                log wire (Printf.sprintf "write_static(%d)" (Madeleine.Buf.length buf));
                Madeleine.Buf.blit_out buf static_staging !static_fill;
                static_fill := !static_fill + Madeleine.Buf.length buf);
            ship_static =
              (fun () ->
                log wire (Printf.sprintf "ship_static(%d)" !static_fill);
                Marcel.Mailbox.put wire.stat_q
                  (Bytes.sub static_staging 0 !static_fill, !static_fill);
                static_fill := 0);
          };
    }
  in
  let dynamic_tm =
    {
      Tm.s_name = "mock-dynamic";
      s_side =
        Tm.Dynamic_send
          {
            Tm.send_buffer =
              (fun buf ->
                log wire (Printf.sprintf "send_buffer(%d)" (Madeleine.Buf.length buf));
                Marcel.Mailbox.put wire.dyn_q (Madeleine.Buf.to_bytes buf));
            send_buffer_group =
              (fun bufs ->
                log wire
                  (Printf.sprintf "send_buffer_group(%d)" (Bufs.length bufs));
                Bufs.iter
                  (fun buf ->
                    Marcel.Mailbox.put wire.dyn_q (Madeleine.Buf.to_bytes buf))
                  bufs);
          };
    }
  in
  [| static_tm; dynamic_tm |]

let recv_tms wire =
  let current = ref (Bytes.empty, 0) in
  let read_off = ref 0 in
  let static_tm =
    {
      Tm.r_name = "mock-static";
      r_side =
        Tm.Static_recv
          {
            Tm.recv_capacity = slot_capacity;
            fetch_static =
              (fun () ->
                let slot, len = Marcel.Mailbox.take wire.stat_q in
                log wire (Printf.sprintf "fetch_static(%d)" len);
                current := (slot, len);
                read_off := 0;
                len);
            read_static =
              (fun buf ->
                log wire (Printf.sprintf "read_static(%d)" (Madeleine.Buf.length buf));
                Madeleine.Buf.blit_in buf (fst !current) !read_off;
                read_off := !read_off + Madeleine.Buf.length buf);
            consume_static = (fun () -> log wire "consume_static");
          };
      r_probe = (fun () -> Marcel.Mailbox.length wire.stat_q > 0);
    }
  in
  let dynamic_tm =
    {
      Tm.r_name = "mock-dynamic";
      r_side =
        Tm.Dynamic_recv
          {
            Tm.receive_buffer =
              (fun buf ->
                log wire
                  (Printf.sprintf "receive_buffer(%d)" (Madeleine.Buf.length buf));
                Madeleine.Buf.blit_in buf (Marcel.Mailbox.take wire.dyn_q) 0);
            receive_buffer_group =
              (fun bufs ->
                log wire
                  (Printf.sprintf "receive_buffer_group(%d)" (Bufs.length bufs));
                Bufs.iter
                  (fun buf ->
                    Madeleine.Buf.blit_in buf (Marcel.Mailbox.take wire.dyn_q) 0)
                  bufs);
          };
      r_probe = (fun () -> Marcel.Mailbox.length wire.dyn_q > 0);
    }
  in
  let probe () =
    Marcel.Mailbox.length wire.dyn_q > 0 || Marcel.Mailbox.length wire.stat_q > 0
  in
  ([| static_tm; dynamic_tm |], probe)

let mock_driver wire =
  let instantiate ~channel_id:_ ~config ~ranks:_ =
    let sender_link =
      Driver.memo_links (fun ~src:_ ~dst:_ ->
          Link.make_sender select
            (Array.map
               (Bmm.send_of_tm ~aggregation:config.Madeleine.Config.aggregation)
               (send_tms wire)))
    in
    let receiver_link =
      Driver.memo_links (fun ~src:_ ~dst:_ ->
          let tms, probe = recv_tms wire in
          Link.make_receiver select (Array.map Bmm.recv_of_tm tms) ~probe)
    in
    {
      Driver.inst_name = "mock";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data = (fun ~me:_ _hook -> ());
      peer_health = (fun ~me:_ ~peer:_ -> Iface.Up);
      reg_stats = (fun ~me:_ -> None);
    }
  in
  { Driver.driver_name = "mock"; instantiate }

let make_world () =
  let engine = Engine.create () in
  let wire =
    {
      dyn_q = Marcel.Mailbox.create ();
      stat_q = Marcel.Mailbox.create ();
      log = [];
    }
  in
  let session = Madeleine.Session.create engine in
  let channel = Channel.create session (mock_driver wire) ~ranks:[ 0; 1 ] () in
  (engine, wire, channel)

let run_message engine channel fields =
  let ep0 = Channel.endpoint channel ~rank:0 in
  let ep1 = Channel.endpoint channel ~rank:1 in
  Engine.spawn engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      List.iter
        (fun (len, s_mode, r_mode) ->
          Mad.pack oc ~s_mode ~r_mode (Bytes.create len))
        fields;
      Mad.end_packing oc);
  Engine.spawn engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      List.iter
        (fun (len, s_mode, r_mode) ->
          Mad.unpack ic ~s_mode ~r_mode (Bytes.create len))
        fields;
      Mad.end_unpacking ic);
  Engine.run engine

let cheaper = (Iface.Send_cheaper, Iface.Receive_cheaper)

let test_small_fields_aggregate_into_one_slot () =
  (* Three small CHEAPER fields: one obtain, three writes, one ship at
     end_packing — the static BMM's aggregation scheme. *)
  let engine, wire, channel = make_world () in
  run_message engine channel
    [ (10, fst cheaper, snd cheaper); (20, fst cheaper, snd cheaper);
      (30, fst cheaper, snd cheaper) ];
  let sender_events =
    List.filter (fun e -> not (String.length e > 4 && String.sub e 0 4 = "fetc")
                          && not (String.length e > 4 && String.sub e 0 4 = "read")
                          && not (String.length e > 7 && String.sub e 0 7 = "consume"))
      (events wire)
  in
  Alcotest.(check (list string))
    "sender path"
    [ "obtain_static"; "write_static(10)"; "write_static(20)";
      "write_static(30)"; "ship_static(60)" ]
    sender_events

let test_express_flushes_immediately () =
  (* An EXPRESS field forces the slot out before the next pack. *)
  let engine, wire, channel = make_world () in
  run_message engine channel
    [ (10, Iface.Send_cheaper, Iface.Receive_express);
      (20, Iface.Send_cheaper, Iface.Receive_cheaper) ];
  let ships =
    List.filter_map
      (fun e ->
        if String.length e >= 4 && String.sub e 0 4 = "ship" then Some e else None)
      (events wire)
  in
  Alcotest.(check (list string)) "two slots shipped"
    [ "ship_static(10)"; "ship_static(20)" ]
    ships

let test_tm_switch_commits_previous_bmm () =
  (* Small field (static TM), then large field (dynamic TM): the switch
     must ship the static slot BEFORE the dynamic send — the paper's
     delivery-order commit (Fig. 3, 'commit'). *)
  let engine, wire, channel = make_world () in
  run_message engine channel
    [ (50, fst cheaper, snd cheaper); (5000, fst cheaper, snd cheaper) ];
  let sender_events =
    List.filter
      (fun e ->
        List.exists
          (fun p -> String.length e >= String.length p
                    && String.sub e 0 (String.length p) = p)
          [ "ship_static"; "send_buffer" ])
      (events wire)
  in
  Alcotest.(check (list string))
    "static slot ships before dynamic data"
    [ "ship_static(50)"; "send_buffer_group(1)" ]
    sender_events

let test_selector_mirrored_on_receive () =
  (* The receiver performs the same switch decisions: fetch/read for the
     static packet, receive for the dynamic one, in message order. *)
  let engine, wire, channel = make_world () in
  run_message engine channel
    [ (50, fst cheaper, snd cheaper); (5000, fst cheaper, snd cheaper) ];
  let recv_events =
    List.filter
      (fun e ->
        List.exists
          (fun p -> String.length e >= String.length p
                    && String.sub e 0 (String.length p) = p)
          [ "fetch_static"; "read_static"; "consume_static"; "receive_buffer" ])
      (events wire)
  in
  Alcotest.(check (list string))
    "receive path mirrors the switch"
    [ "fetch_static(50)"; "read_static(50)"; "consume_static";
      "receive_buffer_group(1)" ]
    recv_events

let test_oversized_field_spans_slots () =
  (* Direct BMM unit test: a 600-byte buffer through 256-byte slots must
     split 256/256/88, each slot obtained, written and shipped once. *)
  let engine = Engine.create () in
  let ops = ref [] in
  let fill = ref 0 in
  let bmm =
    Bmm.static_copy_send
      {
        Tm.send_capacity = slot_capacity;
        obtain_static_buffer = (fun () -> ops := "obtain" :: !ops);
        write_static =
          (fun buf -> fill := !fill + Madeleine.Buf.length buf);
        ship_static =
          (fun () ->
            ops := Printf.sprintf "ship(%d)" !fill :: !ops;
            fill := 0);
      }
  in
  Engine.spawn engine ~name:"t" (fun () ->
      bmm.Bmm.append
        (Madeleine.Buf.make (Bytes.create 600))
        Iface.Send_cheaper Iface.Receive_cheaper;
      bmm.Bmm.commit ());
  Engine.run engine;
  Alcotest.(check (list string)) "slot chunking"
    [ "obtain"; "ship(256)"; "obtain"; "ship(256)"; "obtain"; "ship(88)" ]
    (List.rev !ops)

let test_eager_mode_sends_per_field () =
  (* With aggregation disabled, each dynamic field goes out on its own. *)
  let engine = Engine.create () in
  let wire =
    { dyn_q = Marcel.Mailbox.create (); stat_q = Marcel.Mailbox.create (); log = [] }
  in
  let session = Madeleine.Session.create engine in
  let config = { Madeleine.Config.default with aggregation = false } in
  let channel =
    Channel.create session (mock_driver wire) ~config ~ranks:[ 0; 1 ] ()
  in
  run_message engine channel
    [ (5000, fst cheaper, snd cheaper); (6000, fst cheaper, snd cheaper) ];
  let sends =
    List.filter
      (fun e -> String.length e >= 11 && String.sub e 0 11 = "send_buffer")
      (events wire)
  in
  Alcotest.(check (list string)) "eager sends"
    [ "send_buffer(5000)"; "send_buffer(6000)" ]
    sends

let test_later_not_staged_safer_staged () =
  (* Paper Table: send_SAFER lets the user reuse the buffer immediately
     (the BMM snapshots it at pack time); send_LATER defers the read to
     the commit, so mutations made before end_packing travel on the
     wire. Both fields are dynamic-TM sized and aggregate in the same
     BMM, so the flush happens at end_packing, after the mutations. *)
  let engine, _wire, channel = make_world () in
  let ep0 = Channel.endpoint channel ~rank:0 in
  let ep1 = Channel.endpoint channel ~rank:1 in
  let later = Bytes.make 200 'L' in
  let safer = Bytes.make 200 'S' in
  let got_later = Bytes.create 200 in
  let got_safer = Bytes.create 200 in
  Engine.spawn engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc ~s_mode:Iface.Send_later ~r_mode:Iface.Receive_cheaper later;
      Mad.pack oc ~s_mode:Iface.Send_safer ~r_mode:Iface.Receive_cheaper safer;
      (* After pack, before commit: SAFER must already be snapshotted,
         LATER must still read through to the live buffer. *)
      Bytes.fill later 0 200 'l';
      Bytes.fill safer 0 200 's';
      Mad.end_packing oc);
  Engine.spawn engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      Mad.unpack ic ~s_mode:Iface.Send_later ~r_mode:Iface.Receive_cheaper
        got_later;
      Mad.unpack ic ~s_mode:Iface.Send_safer ~r_mode:Iface.Receive_cheaper
        got_safer;
      Mad.end_unpacking ic);
  Engine.run engine;
  Alcotest.(check bytes) "later sees sender mutation" (Bytes.make 200 'l')
    got_later;
  Alcotest.(check bytes) "safer snapshot unaffected" (Bytes.make 200 'S')
    got_safer

let () =
  Alcotest.run "switch"
    [
      ( "fig3 data path",
        [
          Alcotest.test_case "aggregation into one slot" `Quick
            test_small_fields_aggregate_into_one_slot;
          Alcotest.test_case "express flushes" `Quick
            test_express_flushes_immediately;
          Alcotest.test_case "tm switch commits" `Quick
            test_tm_switch_commits_previous_bmm;
          Alcotest.test_case "receive mirrors switch" `Quick
            test_selector_mirrored_on_receive;
          Alcotest.test_case "oversized field chunking" `Quick
            test_oversized_field_spans_slots;
          Alcotest.test_case "eager mode" `Quick test_eager_mode_sends_per_field;
          Alcotest.test_case "later live, safer staged" `Quick
            test_later_not_staged_safer_staged;
        ] );
    ]
