(* Tests for the mini-Nexus RSR layer and its Fig. 7 calibration. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Nx = Nexus

let in_range ?(lo = 0.0) ~hi what v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" what v lo hi)
    true
    (v >= lo && v <= hi)

type nexus_world = { engine : Engine.t; world : Nx.world }

let make_nexus_world ~n proto =
  let engine = Engine.create () in
  let transports =
    match proto with
    | `Tcp ->
        let fabric =
          Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet
        in
        let net = Tcpnet.make_net engine fabric in
        let stacks =
          Array.init n (fun i ->
              let node =
                Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i
              in
              Fabric.attach fabric node;
              Tcpnet.attach net node)
        in
        Nx.tcp_transports engine ~stacks
    | `Mad_sisci ->
        let fabric = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
        let net = Sisci.make_net engine fabric in
        let adapters =
          Array.init n (fun i ->
              let node =
                Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i
              in
              Fabric.attach fabric node;
              Sisci.attach net node)
        in
        let driver = Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)) in
        let session = Madeleine.Session.create engine in
        let channel =
          Madeleine.Channel.create session driver ~ranks:(List.init n Fun.id) ()
        in
        Array.init n (fun rank -> Nx.mad_transport channel ~rank)
  in
  { engine; world = Nx.create_world engine ~transports }

let test_buffer_roundtrip () =
  let e = Engine.create () in
  Engine.spawn e ~name:"t" (fun () ->
      let b = Nx.Buffer.create () in
      Nx.Buffer.put_int b 42;
      Nx.Buffer.put_bytes b (Bytes.of_string "hello");
      Nx.Buffer.put_int b (-7);
      Alcotest.(check int) "size" 21 (Nx.Buffer.size b);
      Alcotest.(check int) "int1" 42 (Nx.Buffer.get_int b);
      Alcotest.(check string) "bytes" "hello"
        (Bytes.to_string (Nx.Buffer.get_bytes b ~len:5));
      Alcotest.(check int) "int2" (-7) (Nx.Buffer.get_int b);
      Alcotest.check_raises "past end"
        (Invalid_argument "Nexus.Buffer.get_int: past end") (fun () ->
          ignore (Nx.Buffer.get_int b)));
  Engine.run e

let test_rsr_invokes_handler proto () =
  let w = make_nexus_world ~n:2 proto in
  let got = ref "" in
  let done_ = Marcel.Ivar.create () in
  let c1 = Nx.ctx w.world ~rank:1 in
  let ep1 =
    Nx.make_endpoint c1
      ~handlers:
        [|
          (fun _ctx buf ->
            let len = Nx.Buffer.get_int buf in
            got := Bytes.to_string (Nx.Buffer.get_bytes buf ~len);
            Marcel.Ivar.fill done_ ());
        |]
  in
  let sp = Nx.startpoint ep1 in
  Engine.spawn w.engine ~name:"client" (fun () ->
      let c0 = Nx.ctx w.world ~rank:0 in
      let buf = Nx.Buffer.create () in
      Nx.Buffer.put_int buf 5;
      Nx.Buffer.put_bytes buf (Bytes.of_string "madii");
      Nx.send_rsr c0 sp ~handler:0 buf);
  Engine.spawn w.engine ~name:"waiter" (fun () -> Marcel.Ivar.read done_);
  Engine.run w.engine;
  Alcotest.(check string) "handler saw payload" "madii" !got

(* RSR round trip: client requests, server handler replies via a reply
   startpoint known on both sides. *)
let rsr_roundtrip_time proto ~payload_len ~iters =
  let w = make_nexus_world ~n:2 proto in
  let c0 = Nx.ctx w.world ~rank:0 in
  let c1 = Nx.ctx w.world ~rank:1 in
  let reply_box = Marcel.Mailbox.create () in
  let client_ep =
    Nx.make_endpoint c0
      ~handlers:
        [| (fun _ buf -> Marcel.Mailbox.put reply_box (Nx.Buffer.size buf)) |]
  in
  let client_sp = Nx.startpoint client_ep in
  let server_ep =
    Nx.make_endpoint c1
      ~handlers:
        [|
          (fun ctx buf ->
            let len = Nx.Buffer.get_int buf in
            let data = Nx.Buffer.get_bytes buf ~len in
            let reply = Nx.Buffer.create () in
            Nx.Buffer.put_bytes reply data;
            Nx.send_rsr ctx client_sp ~handler:0 reply);
        |]
  in
  let server_sp = Nx.startpoint server_ep in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  Engine.spawn w.engine ~name:"client" (fun () ->
      let data = Bytes.create payload_len in
      t0 := Engine.now w.engine;
      for _ = 1 to iters do
        let buf = Nx.Buffer.create () in
        Nx.Buffer.put_int buf payload_len;
        Nx.Buffer.put_bytes buf data;
        Nx.send_rsr c0 server_sp ~handler:0 buf;
        ignore (Marcel.Mailbox.take reply_box)
      done;
      t1 := Engine.now w.engine);
  Engine.run w.engine;
  Time.diff !t1 !t0 / (2 * iters)

let test_fig7_sci_latency () =
  (* Paper: Nexus/Madeleine II over SCI has minimal latency below 25 us
     — an order of magnitude above raw Madeleine's 3.9, the price of the
     RSR machinery. *)
  let one_way = rsr_roundtrip_time `Mad_sisci ~payload_len:4 ~iters:20 in
  in_range ~lo:18.0 ~hi:25.0 "nexus/mad/sci latency" (Time.to_us one_way)

let test_fig7_tcp_slower () =
  let sci = rsr_roundtrip_time `Mad_sisci ~payload_len:4 ~iters:10 in
  let tcp = rsr_roundtrip_time `Tcp ~payload_len:4 ~iters:10 in
  Alcotest.(check bool)
    (Printf.sprintf "tcp %.1fus slower than sci %.1fus" (Time.to_us tcp)
       (Time.to_us sci))
    true
    (Time.to_us tcp > 2.0 *. Time.to_us sci)

let test_fig7_sci_bandwidth () =
  (* Nexus copies arguments on both sides, so the SCI bandwidth lands
     well under raw Madeleine's 83 MB/s. *)
  let n = 1 lsl 19 in
  let one_way = rsr_roundtrip_time `Mad_sisci ~payload_len:n ~iters:4 in
  let bw = Time.rate_mb_s ~bytes_count:n one_way in
  in_range ~lo:30.0 ~hi:60.0 "nexus/mad/sci bandwidth" bw

let test_multiple_handlers_and_endpoints () =
  let w = make_nexus_world ~n:2 `Mad_sisci in
  let c1 = Nx.ctx w.world ~rank:1 in
  let hits = ref [] in
  let fin = Marcel.Semaphore.create 0 in
  let ep_a =
    Nx.make_endpoint c1
      ~handlers:
        [|
          (fun _ _ ->
            hits := "a0" :: !hits;
            Marcel.Semaphore.release fin);
          (fun _ _ ->
            hits := "a1" :: !hits;
            Marcel.Semaphore.release fin);
        |]
  in
  let ep_b =
    Nx.make_endpoint c1
      ~handlers:
        [|
          (fun _ _ ->
            hits := "b0" :: !hits;
            Marcel.Semaphore.release fin);
        |]
  in
  let spa = Nx.startpoint ep_a and spb = Nx.startpoint ep_b in
  Engine.spawn w.engine ~name:"client" (fun () ->
      let c0 = Nx.ctx w.world ~rank:0 in
      Nx.send_rsr c0 spa ~handler:1 (Nx.Buffer.create ());
      Nx.send_rsr c0 spb ~handler:0 (Nx.Buffer.create ());
      Nx.send_rsr c0 spa ~handler:0 (Nx.Buffer.create ());
      for _ = 1 to 3 do
        Marcel.Semaphore.acquire fin
      done);
  Engine.run w.engine;
  Alcotest.(check (list string)) "handlers ran in order" [ "a1"; "b0"; "a0" ]
    (List.rev !hits)

let test_startpoint_shipping () =
  (* Dynamic topology: the server ships a startpoint for a secondary
     endpoint inside a reply; the client then RSRs through it. *)
  let w = make_nexus_world ~n:2 `Mad_sisci in
  let c0 = Nx.ctx w.world ~rank:0 in
  let c1 = Nx.ctx w.world ~rank:1 in
  let secret_hit = Marcel.Ivar.create () in
  let secret_ep =
    Nx.make_endpoint c1
      ~handlers:[| (fun _ buf ->
        Marcel.Ivar.fill secret_hit (Nx.Buffer.get_int buf)) |]
  in
  let handed = Marcel.Mailbox.create () in
  let client_ep =
    Nx.make_endpoint c0
      ~handlers:
        [| (fun _ buf -> Marcel.Mailbox.put handed (Nx.get_startpoint buf)) |]
  in
  let client_sp = Nx.startpoint client_ep in
  let directory_ep =
    Nx.make_endpoint c1
      ~handlers:
        [|
          (fun ctx _buf ->
            (* Reply with a capability for the secret endpoint. *)
            let reply = Nx.Buffer.create () in
            Nx.put_startpoint reply (Nx.startpoint secret_ep);
            Nx.send_rsr ctx client_sp ~handler:0 reply);
        |]
  in
  let dir_sp = Nx.startpoint directory_ep in
  Engine.spawn w.engine ~name:"client" (fun () ->
      Nx.send_rsr c0 dir_sp ~handler:0 (Nx.Buffer.create ());
      let sp = Marcel.Mailbox.take handed in
      Alcotest.(check int) "shipped capability targets rank 1" 1
        (Nx.startpoint_rank sp);
      let msg = Nx.Buffer.create () in
      Nx.Buffer.put_int msg 4242;
      Nx.send_rsr c0 sp ~handler:0 msg;
      Alcotest.(check int) "secret handler ran" 4242
        (Marcel.Ivar.read secret_hit));
  Engine.run w.engine

let test_rsr_across_gateway () =
  (* An RSR from the SCI cluster to the Myrinet cluster through the
     gateway, echoed back — Nexus riding the virtual channel. *)
  let w = Harness.two_cluster_world () in
  let vc =
    Madeleine.Vchannel.create w.Harness.cw_session ~mtu:16384
      [ w.Harness.ch_sci; w.Harness.ch_myri ]
  in
  let transports =
    Array.init 3 (fun rank -> Nx.mad_vchannel_transport vc ~rank)
  in
  let world = Nx.create_world w.Harness.cw_engine ~transports in
  let c0 = Nx.ctx world ~rank:0 in
  let c2 = Nx.ctx world ~rank:2 in
  let reply = Marcel.Mailbox.create () in
  let client_ep =
    Nx.make_endpoint c0
      ~handlers:
        [| (fun _ buf -> Marcel.Mailbox.put reply (Nx.Buffer.get_int buf)) |]
  in
  let client_sp = Nx.startpoint client_ep in
  let server_ep =
    Nx.make_endpoint c2
      ~handlers:
        [|
          (fun ctx buf ->
            let v = Nx.Buffer.get_int buf in
            let out = Nx.Buffer.create () in
            Nx.Buffer.put_int out (v * 2);
            Nx.send_rsr ctx client_sp ~handler:0 out);
        |]
  in
  let server_sp = Nx.startpoint server_ep in
  Engine.spawn w.Harness.cw_engine ~name:"client" (fun () ->
      let buf = Nx.Buffer.create () in
      Nx.Buffer.put_int buf 21;
      Nx.send_rsr c0 server_sp ~handler:0 buf;
      Alcotest.(check int) "doubled across gateway" 42
        (Marcel.Mailbox.take reply));
  Engine.run w.Harness.cw_engine

let () =
  Alcotest.run "nexus"
    [
      ( "buffers",
        [ Alcotest.test_case "roundtrip" `Quick test_buffer_roundtrip ] );
      ( "rsr",
        [
          Alcotest.test_case "handler over mad/sci" `Quick
            (test_rsr_invokes_handler `Mad_sisci);
          Alcotest.test_case "handler over tcp" `Quick
            (test_rsr_invokes_handler `Tcp);
          Alcotest.test_case "multiple handlers" `Quick
            test_multiple_handlers_and_endpoints;
          Alcotest.test_case "startpoint shipping" `Quick
            test_startpoint_shipping;
          Alcotest.test_case "rsr across gateway" `Quick
            test_rsr_across_gateway;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "sci latency <25us" `Quick test_fig7_sci_latency;
          Alcotest.test_case "tcp much slower" `Quick test_fig7_tcp_slower;
          Alcotest.test_case "sci bandwidth" `Quick test_fig7_sci_bandwidth;
        ] );
    ]
