(* Parsim: the parallel sweep engine. Determinism is the contract under
   test — collection order and rendered output must not depend on the
   worker count or on which domain finished first — plus exception
   propagation from worker domains and the engine-per-domain guard. *)

let ordered_ints n = List.init n Fun.id

(* Adversarial durations: the earliest-submitted jobs are the slowest,
   so with several workers the later jobs finish first and any
   completion-ordered collector would return them out of order. *)
let test_ordering_adversarial () =
  Parsim.with_pool ~jobs:4 (fun pool ->
      let n = 24 in
      let got =
        Parsim.run pool
          (List.init n (fun i ->
               ( Printf.sprintf "job-%d" i,
                 fun () ->
                   Unix.sleepf (0.002 *. float_of_int (n - i));
                   i )))
      in
      Alcotest.(check (list int)) "submission order" (ordered_ints n) got)

let test_serial_pool_matches () =
  let jobs () =
    List.init 10 (fun i -> (Printf.sprintf "j%d" i, fun () -> i * i))
  in
  let serial = Parsim.with_pool ~jobs:1 (fun p -> Parsim.run p (jobs ())) in
  let parallel = Parsim.with_pool ~jobs:3 (fun p -> Parsim.run p (jobs ())) in
  Alcotest.(check (list int)) "jobs=1 equals jobs=3" serial parallel

let test_pool_reuse () =
  Parsim.with_pool ~jobs:2 (fun pool ->
      for round = 1 to 5 do
        let got =
          Parsim.run pool
            (List.init 7 (fun i -> ("j", fun () -> (round * 100) + i)))
        in
        Alcotest.(check (list int))
          "batch results"
          (List.init 7 (fun i -> (round * 100) + i))
          got
      done)

let test_empty_and_singleton () =
  Parsim.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check (list int)) "empty batch" [] (Parsim.run pool []);
      Alcotest.(check (list int))
        "singleton batch" [ 42 ]
        (Parsim.run pool [ ("only", fun () -> 42) ]))

exception Boom of int

(* A worker-domain exception must surface in the submitter, and when
   several jobs fail the earliest-submitted failure wins regardless of
   which one's domain raised first. *)
let test_exception_propagation () =
  Parsim.with_pool ~jobs:4 (fun pool ->
      let raised =
        try
          ignore
            (Parsim.run pool
               (List.init 8 (fun i ->
                    ( Printf.sprintf "j%d" i,
                      fun () ->
                        (* The later failing job (5) finishes well before
                           the earlier one (2). *)
                        if i = 2 then begin
                          Unix.sleepf 0.05;
                          raise (Boom 2)
                        end
                        else if i = 5 then raise (Boom 5)
                        else i ))));
          None
        with Boom k -> Some k
      in
      Alcotest.(check (option int)) "earliest failure wins" (Some 2) raised;
      (* The pool survives a failing batch. *)
      Alcotest.(check (list int))
        "pool usable after failure" [ 7 ]
        (Parsim.run pool [ ("ok", fun () -> 7) ]))

let test_default_jobs_env () =
  Alcotest.(check bool)
    "default_jobs positive" true
    (Parsim.default_jobs () >= 1)

(* The world-isolation invariant: an engine driven from a domain other
   than its creator must be rejected. *)
let test_engine_foreign_domain () =
  let engine = Marcel.Engine.create () in
  let attempted =
    Domain.join
      (Domain.spawn (fun () ->
           try
             Marcel.Engine.spawn engine ~name:"intruder" (fun () -> ());
             `Accepted
           with Invalid_argument _ -> `Rejected))
  in
  Alcotest.(check bool) "foreign spawn rejected" true (attempted = `Rejected);
  (* The owning domain is still allowed to use it. *)
  Marcel.Engine.spawn engine ~name:"owner" (fun () -> ());
  Marcel.Engine.run engine

(* One figure's job set, serial vs 4 domains: the rendered section must
   be byte-identical (the acceptance oracle for parallel sweeps). *)
let test_sweep_byte_identical () =
  let serial = Sweeps.fig4 Sweeps.serial_runner in
  let parallel =
    Parsim.with_pool ~jobs:4 (fun pool -> Sweeps.fig4 (Sweeps.pool_runner pool))
  in
  Alcotest.(check string) "fig4 --jobs 1 vs --jobs 4" serial parallel;
  Alcotest.(check bool) "section is non-trivial" true
    (String.length serial > 200)

let () =
  Alcotest.run "parsim"
    [
      ( "ordering",
        [
          Alcotest.test_case "adversarial durations" `Quick
            test_ordering_adversarial;
          Alcotest.test_case "serial equals parallel" `Quick
            test_serial_pool_matches;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "empty and singleton" `Quick
            test_empty_and_singleton;
        ] );
      ( "failures",
        [
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "default jobs" `Quick test_default_jobs_env;
          Alcotest.test_case "engine rejects foreign domain" `Quick
            test_engine_foreign_domain;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig4 byte-identical across jobs" `Quick
            test_sweep_byte_identical;
        ] );
    ]
