(* Tests for the fault-tolerant collectives layer: topology-aware
   spanning trees over the physical adjacency, gateway combining,
   and mid-collective crash recovery with exactly-once decisions. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults
module Channel = Madeleine.Channel
module Vc = Madeleine.Vchannel
module Coll = Madeleine.Collectives

let int_sum a b =
  let r = Bytes.create 8 in
  Bytes.set_int64_le r 0
    (Int64.add (Bytes.get_int64_le a 0) (Bytes.get_int64_le b 0));
  r

(* Rank r contributes r+1 (as a little-endian int64). *)
let contrib r =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int (r + 1));
  b

let sum_over ranks = List.fold_left (fun acc r -> acc + r + 1) 0 ranks

(* 4 ranks over two fast-ethernet fabrics: ethA spans 0,1,2 and ethB
   spans 1,2,3 — ranks 1 and 2 are gateways, ranks 0 and 3 only ever
   reach each other through one of them. *)
let coll_world ~seed =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:(Int64.of_int seed) in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 4 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1; 2 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2; 3 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1; 2 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2; 3 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1; 2 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2; 3 ] ()
  in
  let vc = Vc.create session ~mtu:4096 ~faults [ ch_a; ch_b ] in
  (engine, faults, vc)

let check_gates what gates =
  List.iter
    (fun (tag, ok) ->
      Alcotest.(check bool) (Printf.sprintf "%s: gate %s" what tag) true ok)
    gates

(* ------------------------------------------------------------------ *)
(* The faultless verbs on the spanning tree. *)

let test_tree_verbs () =
  let engine, _faults, vc = coll_world ~seed:3 in
  let coll = Coll.create ~fanout:2 vc in
  let sums = Array.make 4 0 in
  let bcasts = Array.make 4 Bytes.empty in
  let a2a = Array.make 4 [] in
  for r = 0 to 3 do
    Engine.spawn engine ~name:(Printf.sprintf "r%d" r) (fun () ->
        Coll.barrier coll ~me:r;
        sums.(r) <-
          Int64.to_int
            (Bytes.get_int64_le (Coll.allreduce coll ~me:r ~op:int_sum (contrib r)) 0);
        bcasts.(r) <-
          Coll.bcast coll ~me:r ~root:2
            (if r = 2 then Some (Bytes.of_string "hello") else None);
        a2a.(r) <-
          Coll.alltoall coll ~me:r
            (List.init 4 (fun j -> (j, Bytes.make 3 (Char.chr (16 * r + j))))))
  done;
  Engine.run engine;
  for r = 0 to 3 do
    Alcotest.(check int) (Printf.sprintf "rank %d allreduce" r) 10 sums.(r);
    Alcotest.(check bytes)
      (Printf.sprintf "rank %d bcast" r)
      (Bytes.of_string "hello") bcasts.(r);
    Alcotest.(check (list (pair int bytes)))
      (Printf.sprintf "rank %d alltoall" r)
      (List.init 4 (fun i -> (i, Bytes.make 3 (Char.chr ((16 * i) + r)))))
      a2a.(r)
  done;
  let st = Coll.stats coll in
  Alcotest.(check (list int)) "decision covered everyone" [ 0; 1; 2; 3 ]
    st.Coll.last_covered;
  Alcotest.(check bool) "gateways combined in transit" true
    (st.Coll.combined > 0)

(* The flat star is the measured linear baseline: every contribution
   reaches the root individually, nothing combines in transit. *)
let test_flat_baseline () =
  let engine, _faults, vc = coll_world ~seed:4 in
  let coll = Coll.create ~algo:Coll.Flat vc in
  let sums = Array.make 4 0 in
  for r = 0 to 3 do
    Engine.spawn engine ~name:(Printf.sprintf "r%d" r) (fun () ->
        sums.(r) <-
          Int64.to_int
            (Bytes.get_int64_le (Coll.allreduce coll ~me:r ~op:int_sum (contrib r)) 0))
  done;
  Engine.run engine;
  Array.iteri
    (fun r v -> Alcotest.(check int) (Printf.sprintf "rank %d" r) 10 v)
    sums;
  let st = Coll.stats coll in
  Alcotest.(check int) "root saw n-1 contributions" 3 st.Coll.root_contribs;
  Alcotest.(check int) "nothing combined" 0 st.Coll.combined

(* ------------------------------------------------------------------ *)
(* Crash recovery, driven through the chaos harness. *)

let test_crash_mid_barrier () =
  let c = Chaos.coll_crash_barrier_run ~seed:42 in
  check_gates "crash-barrier" (Chaos.coll_gates c)

let test_overloaded_spine_reroute () =
  let c =
    Chaos.coll_spine_overload_run ~seed:42 ~size:4096 ~messages:24 ~credits:64
      ~gw_pool:4 ~rx_cap_mb_s:1.0
  in
  check_gates "spine-overload" (Chaos.coll_gates c)

let test_rolling_allreduce () =
  let c = Chaos.coll_rolling_allreduce_run ~seed:42 ~clusters:4 ~per:4 in
  check_gates "rolling-allreduce" (Chaos.coll_gates c)

(* The restarted rank rejoins through the decision journal: its late
   contribution is answered with the recorded decision (or dropped as
   a duplicate), never double-counted. *)
let test_restart_rejoins_exactly_once () =
  let c = Chaos.coll_crash_barrier_run ~seed:7 in
  Alcotest.(check int) "everyone completed" c.Chaos.co_expected
    c.Chaos.co_completed;
  Alcotest.(check bool) "survivors agree" true c.Chaos.co_agree;
  Alcotest.(check bool) "value = sum over covered set" true c.Chaos.co_value_ok;
  Alcotest.(check bool) "restarted rank rejoined from the journal" true
    c.Chaos.co_rejoined;
  Alcotest.(check bool) "repair generations ran" true (c.Chaos.co_repairs > 0)

(* Same seed, same world, same schedule — byte-identical outcome
   (including the virtual finish time). *)
let test_deterministic_per_seed () =
  let line () = Chaos.coll_line (Chaos.coll_crash_barrier_run ~seed:11) in
  Alcotest.(check string) "same seed, same line" (line ()) (line ())

(* ------------------------------------------------------------------ *)
(* Property: under any random crash schedule of non-root ranks that
   keeps the world connected (at most one of the two gateways dies),
   every surviving rank's allreduce returns, all survivors agree
   bit-identically, and the value is the sum over the covered set. *)

let prop_survivors_agree =
  QCheck.Test.make ~name:"random crash schedules: survivors agree" ~count:20
    QCheck.(
      list_of_size
        Gen.(int_range 1 2)
        (pair (int_range 1 3) (int_range 5 40 (* x100us *))))
    (fun schedule ->
      (* One crash per rank; keep gateway 2 alive if 1 is also dying
         (killing both would partition ranks 0 and 3 — a quorum
         question, not an agreement one). *)
      let schedule =
        List.sort_uniq (fun (a, _) (b, _) -> compare a b) schedule
      in
      let schedule =
        if List.mem_assoc 1 schedule && List.mem_assoc 2 schedule then
          List.remove_assoc 2 schedule
        else schedule
      in
      let crashed = List.map fst schedule in
      let survivors = List.filter (fun r -> not (List.mem r crashed)) [ 0; 1; 2; 3 ] in
      let engine, faults, vc = coll_world ~seed:(97 + List.length schedule) in
      let coll = Coll.create ~fanout:2 vc in
      let results = Array.make 4 None in
      List.iter
        (fun r ->
          Engine.spawn engine ~name:(Printf.sprintf "r%d" r) (fun () ->
              (* Stagger the entries so some crashes land mid-collective. *)
              Engine.sleep (Time.us (1000.0 +. (300.0 *. float_of_int r)));
              results.(r) <-
                Some (Coll.allreduce coll ~me:r ~op:int_sum (contrib r))))
        survivors;
      Engine.spawn engine ~name:"chaos" (fun () ->
          let now = ref 0.0 in
          List.iter
            (fun (rank, t) ->
              let t = float_of_int (t * 100) in
              if t > !now then Engine.sleep (Time.us (t -. !now));
              now := max !now t;
              Faults.crash_now faults ~node:rank ())
            (List.sort (fun (_, a) (_, b) -> compare a b) schedule));
      Engine.run engine;
      let values =
        List.filter_map (fun r -> results.(r)) survivors
      in
      let all_returned = List.length values = List.length survivors in
      let agree =
        match values with
        | [] -> false
        | v :: rest -> List.for_all (Bytes.equal v) rest
      in
      let covered = (Coll.stats coll).Coll.last_covered in
      let value_ok =
        match values with
        | [] -> false
        | v :: _ ->
            Int64.to_int (Bytes.get_int64_le v 0) = sum_over covered
            && List.for_all (fun r -> List.mem r covered) survivors
      in
      all_returned && agree && value_ok)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "collectives"
    [
      ( "tree",
        [
          Alcotest.test_case "verbs on the spanning tree" `Quick
            test_tree_verbs;
          Alcotest.test_case "flat baseline" `Quick test_flat_baseline;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash mid-barrier" `Quick test_crash_mid_barrier;
          Alcotest.test_case "overloaded spine rerouted" `Quick
            test_overloaded_spine_reroute;
          Alcotest.test_case "rolling allreduce" `Quick test_rolling_allreduce;
          Alcotest.test_case "restart rejoins exactly once" `Quick
            test_restart_rejoins_exactly_once;
          Alcotest.test_case "deterministic per seed" `Quick
            test_deterministic_per_seed;
          QCheck_alcotest.to_alcotest prop_survivors_agree;
        ] );
    ]
