(* Property-based tests: end-to-end invariants of the whole stack under
   randomly generated message structures.

   The central invariant is the paper's contract: for ANY sequence of
   packed blocks — any sizes, any send/receive mode combination — a
   strictly symmetric unpack sequence delivers exactly the packed bytes,
   on every protocol, through every TM/BMM combination the Switch picks,
   including TM changes mid-message, slot chunking, aggregation and
   express flushes. *)

module Engine = Marcel.Engine
module Mad = Madeleine.Api
module Channel = Madeleine.Channel
module Iface = Madeleine.Iface
module H = Harness

(* A generated message: field sizes and mode pairs. *)
type field = { f_len : int; f_send : Iface.send_mode; f_recv : Iface.recv_mode }

let field_gen =
  QCheck.Gen.(
    let* f_len =
      oneof
        [
          int_range 0 16; (* tiny, aggregated *)
          int_range 17 1023; (* short-TM sized *)
          int_range 1024 9000; (* around slot boundaries *)
          int_range 9001 80_000; (* multi-slot / rendezvous *)
        ]
    in
    let* f_send =
      oneofl [ Iface.Send_safer; Iface.Send_later; Iface.Send_cheaper ]
    in
    let* f_recv = oneofl [ Iface.Receive_express; Iface.Receive_cheaper ] in
    return { f_len; f_send; f_recv })

let message_gen = QCheck.Gen.(list_size (int_range 1 12) field_gen)

let message_arbitrary =
  QCheck.make message_gen
    ~print:(fun fields ->
      String.concat ";"
        (List.map
           (fun f ->
             Printf.sprintf "%d%s%s" f.f_len
               (match f.f_send with
               | Iface.Send_safer -> "S"
               | Iface.Send_later -> "L"
               | Iface.Send_cheaper -> "C")
               (match f.f_recv with
               | Iface.Receive_express -> "E"
               | Iface.Receive_cheaper -> "c"))
           fields))

(* Sends [fields] as one message over [world]'s channel and checks the
   receiver sees exactly the packed bytes. LATER fields are written after
   pack, so they also verify the deferred-read semantics. *)
let roundtrip_ok world fields =
  let ep0 = Channel.endpoint world.H.channel ~rank:0 in
  let ep1 = Channel.endpoint world.H.channel ~rank:1 in
  let rng = Simnet.Rng.create ~seed:99L in
  let payloads =
    List.map
      (fun f ->
        match f.f_send with
        | Iface.Send_later ->
            (* Packed as zeroes, rewritten before end_packing: the
               receiver must see the final value. *)
            (Bytes.make f.f_len '\000', Simnet.Rng.bytes rng f.f_len)
        | Iface.Send_safer | Iface.Send_cheaper ->
            let b = Simnet.Rng.bytes rng f.f_len in
            (b, Bytes.copy b))
      fields
  in
  let ok = ref true in
  Engine.spawn world.H.engine ~name:"sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      List.iter2
        (fun f (buf, final) ->
          Mad.pack oc ~s_mode:f.f_send ~r_mode:f.f_recv buf;
          match f.f_send with
          | Iface.Send_later -> Bytes.blit final 0 buf 0 f.f_len
          | Iface.Send_safer ->
              (* SAFER: scribbling must not corrupt the message. *)
              Bytes.fill buf 0 f.f_len '\xFF'
          | Iface.Send_cheaper -> ())
        fields payloads;
      Mad.end_packing oc);
  Engine.spawn world.H.engine ~name:"receiver" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let sinks =
        List.map
          (fun f ->
            let sink = Bytes.create f.f_len in
            Mad.unpack ic ~s_mode:f.f_send ~r_mode:f.f_recv sink;
            sink)
          fields
      in
      Mad.end_unpacking ic;
      List.iter2
        (fun (_, expect) sink -> if not (Bytes.equal expect sink) then ok := false)
        payloads sinks);
  Engine.run world.H.engine;
  !ok

let prop_roundtrip name mk_world =
  QCheck.Test.make
    ~name:(Printf.sprintf "random message roundtrip over %s" name)
    ~count:40 message_arbitrary
    (fun fields -> roundtrip_ok (mk_world ()) fields)

(* Same property through a gateway: the Generic TM's framing and the
   forwarding pipeline must also preserve arbitrary structures. LATER is
   excluded (the generic TM documents eager reads), SAFER behaves like
   CHEAPER there. *)
let vc_field_gen =
  QCheck.Gen.(
    let* f_len = int_range 0 60_000 in
    let* f_recv = oneofl [ Iface.Receive_express; Iface.Receive_cheaper ] in
    return { f_len; f_send = Iface.Send_cheaper; f_recv })

let vc_message_arbitrary =
  QCheck.make
    QCheck.Gen.(
      let* mtu = oneofl [ 4096; 8192; 16384; 32768 ] in
      let* fields = list_size (int_range 1 8) vc_field_gen in
      return (mtu, fields))
    ~print:(fun (mtu, fields) ->
      Printf.sprintf "mtu=%d;[%s]" mtu
        (String.concat ";" (List.map (fun f -> string_of_int f.f_len) fields)))

let prop_vchannel_roundtrip =
  QCheck.Test.make ~name:"random message roundtrip through gateway" ~count:25
    vc_message_arbitrary
    (fun (mtu, fields) ->
      let w = Harness.two_cluster_world () in
      let vc =
        Madeleine.Vchannel.create w.H.cw_session ~mtu [ w.H.ch_sci; w.H.ch_myri ]
      in
      let rng = Simnet.Rng.create ~seed:7L in
      let payloads = List.map (fun f -> Simnet.Rng.bytes rng f.f_len) fields in
      let ok = ref true in
      Engine.spawn w.H.cw_engine ~name:"sender" (fun () ->
          let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2 in
          List.iter2
            (fun f data -> Madeleine.Vchannel.pack oc ~r_mode:f.f_recv data)
            fields payloads;
          Madeleine.Vchannel.end_packing oc);
      Engine.spawn w.H.cw_engine ~name:"receiver" (fun () ->
          let ic =
            Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0
          in
          List.iter2
            (fun f expect ->
              let sink = Bytes.create f.f_len in
              Madeleine.Vchannel.unpack ic ~r_mode:f.f_recv sink;
              if not (Bytes.equal expect sink) then ok := false)
            fields payloads;
          Madeleine.Vchannel.end_unpacking ic);
      Engine.run w.H.cw_engine;
      !ok)

(* MPI matching: messages with random tags received in a random order
   must each land in the right buffer. *)
let prop_mpi_matching =
  QCheck.Test.make ~name:"mpi tag matching under permuted receives" ~count:25
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 8 in
          let* sizes = list_repeat n (int_range 0 5000) in
          let* perm = shuffle_l (List.init n Fun.id) in
          return (sizes, perm))
        ~print:(fun (sizes, perm) ->
          Printf.sprintf "[%s]/[%s]"
            (String.concat ";" (List.map string_of_int sizes))
            (String.concat ";" (List.map string_of_int perm))))
    (fun (sizes, perm) ->
      let module Mpi = Mpilite.Mpi in
      let w = H.make_mpi_world ~n:2 H.Chmad in
      let rng = Simnet.Rng.create ~seed:3L in
      let payloads = List.map (Simnet.Rng.bytes rng) sizes in
      let ok = ref true in
      Engine.spawn w.H.mpi_engine ~name:"sender" (fun () ->
          let c = Mpi.ctx w.H.mpi_world ~rank:0 in
          List.iteri (fun tag data -> Mpi.send c ~dst:1 ~tag data) payloads);
      Engine.spawn w.H.mpi_engine ~name:"receiver" (fun () ->
          let c = Mpi.ctx w.H.mpi_world ~rank:1 in
          List.iter
            (fun tag ->
              let expect = List.nth payloads tag in
              let sink = Bytes.create (Bytes.length expect) in
              let st = Mpi.recv c ~src:0 ~tag sink in
              if st.Mpi.status_len <> Bytes.length expect then ok := false;
              if not (Bytes.equal expect sink) then ok := false)
            perm);
      Engine.run w.H.mpi_engine;
      !ok)

(* TCP byte-stream: any read segmentation reassembles the sent stream. *)
let prop_tcp_segmentation =
  QCheck.Test.make ~name:"tcp reads reassemble any segmentation" ~count:40
    QCheck.(
      make
        Gen.(
          let* writes = list_size (int_range 1 6) (int_range 1 4000) in
          let total = List.fold_left ( + ) 0 writes in
          let* cut = int_range 1 total in
          return (writes, cut))
        ~print:(fun (writes, cut) ->
          Printf.sprintf "[%s] cut=%d"
            (String.concat ";" (List.map string_of_int writes))
            cut))
    (fun (writes, cut) ->
      let engine = Engine.create () in
      let fabric =
        Simnet.Fabric.create engine ~name:"eth"
          ~link:Simnet.Netparams.fast_ethernet
      in
      let net = Tcpnet.make_net engine fabric in
      let mk i =
        let n = Simnet.Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Simnet.Fabric.attach fabric n;
        Tcpnet.attach net n
      in
      let t0 = mk 0 and t1 = mk 1 in
      let c0, c1 = Tcpnet.socketpair t0 t1 in
      let rng = Simnet.Rng.create ~seed:5L in
      let chunks = List.map (Simnet.Rng.bytes rng) writes in
      let total = List.fold_left (fun a b -> a + Bytes.length b) 0 chunks in
      let expect = Bytes.concat Bytes.empty chunks in
      let got = Bytes.create total in
      Engine.spawn engine ~name:"w" (fun () -> List.iter (Tcpnet.send c0) chunks);
      Engine.spawn engine ~name:"r" (fun () ->
          Tcpnet.recv c1 got ~off:0 ~len:cut;
          Tcpnet.recv c1 got ~off:cut ~len:(total - cut));
      Engine.run engine;
      Bytes.equal expect got)

(* Random sleeps wake in global time order, regardless of spawn order. *)
let prop_engine_sleep_ordering =
  QCheck.Test.make ~name:"engine wakes sleeps in time order" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 30) (int_range 0 10_000))
    (fun delays ->
      let e = Engine.create () in
      let woke = ref [] in
      List.iteri
        (fun i d ->
          Engine.spawn e ~name:(string_of_int i) (fun () ->
              Engine.sleep d;
              woke := d :: !woke))
        delays;
      Engine.run e;
      List.rev !woke = List.stable_sort compare delays)

(* The monomorphic event queue pops in exactly the order a reference
   model predicts: stable (time, seq) order, FIFO on equal times. Random
   push/pop interleavings exercise hole-bubbling in both directions and
   the slot-clearing take path. *)
let prop_eventq_model =
  QCheck.Test.make ~name:"event queue matches reference model" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 200) (option (int_range 0 30)))
    (fun ops ->
      let module Eq = Marcel.Eventq in
      let q = Eq.create () in
      let model = ref [] in
      let seq = ref 0 in
      let popped = ref [] in
      let expected = ref [] in
      let key_order (t1, s1) (t2, s2) =
        if t1 <> t2 then compare t1 t2 else compare s1 s2
      in
      let pop_both () =
        match List.sort key_order !model with
        | [] -> assert (Eq.is_empty q)
        | min :: rest ->
            expected := min :: !expected;
            model := rest;
            (Eq.take q) ()
      in
      List.iter
        (function
          | Some time ->
              incr seq;
              let s = !seq in
              Eq.push q ~time ~seq:s (fun () -> popped := (time, s) :: !popped);
              model := (time, s) :: !model
          | None -> pop_both ())
        ops;
      while not (Eq.is_empty q) do
        pop_both ()
      done;
      !model = [] && List.rev !popped = List.rev !expected)

(* MPI allreduce computes the same sum at every rank, any world size. *)
let prop_mpi_allreduce_sum =
  QCheck.Test.make ~name:"mpi allreduce sums at every rank" ~count:15
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 6 in
          let* values = list_repeat n (int_range (-1000) 1000) in
          return (n, values))
        ~print:(fun (n, vs) ->
          Printf.sprintf "n=%d [%s]" n
            (String.concat ";" (List.map string_of_int vs))))
    (fun (n, values) ->
      let module Mpi = Mpilite.Mpi in
      let w = H.make_mpi_world ~n H.Chmad in
      let expected = List.fold_left ( + ) 0 values in
      let ok = ref true in
      let int_sum a b =
        let r = Bytes.create 8 in
        Bytes.set_int64_le r 0
          (Int64.add (Bytes.get_int64_le a 0) (Bytes.get_int64_le b 0));
        r
      in
      List.iteri
        (fun r v ->
          Engine.spawn w.H.mpi_engine ~name:(Printf.sprintf "r%d" r) (fun () ->
              let c = Mpi.ctx w.H.mpi_world ~rank:r in
              let mine = Bytes.create 8 in
              Bytes.set_int64_le mine 0 (Int64.of_int v);
              let result = Mpi.allreduce c ~op:int_sum mine in
              if Int64.to_int (Bytes.get_int64_le result 0) <> expected then
                ok := false))
        values;
      Engine.run w.H.mpi_engine;
      !ok)

(* PM2: any number of concurrent RPCs with completions all signal. *)
let prop_pm2_rpc_storm =
  QCheck.Test.make ~name:"pm2 rpc storm all complete" ~count:15
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 5 in
          let* rpcs = int_range 1 30 in
          return (n, rpcs))
        ~print:(fun (n, r) -> Printf.sprintf "n=%d rpcs=%d" n r))
    (fun (n, rpcs) ->
      let w = H.make_world ~n H.sisci_driver Simnet.Netparams.sci in
      let pm = Pm2.create_world w.H.engine w.H.channel in
      let hits = ref 0 in
      let bump =
        Pm2.register pm ~name:"bump" (fun t ic ->
            let c = Pm2.Completion.unpack ic in
            Mad.end_unpacking ic;
            incr hits;
            Pm2.Completion.signal t c)
      in
      for me = 0 to n - 1 do
        Engine.spawn w.H.engine ~name:(Printf.sprintf "caller%d" me) (fun () ->
            for i = 1 to rpcs do
              let dst = (me + 1 + (i mod (n - 1))) mod n in
              let dst = if dst = me then (dst + 1) mod n else dst in
              let c = Pm2.Completion.create pm.(me) in
              Pm2.rpc pm.(me) ~dst bump ~pack:(fun oc ->
                  Pm2.Completion.pack c oc);
              Pm2.Completion.wait c
            done)
      done;
      Engine.run w.H.engine;
      !hits = n * rpcs)

(* Random multi-cluster topologies, declared via Clusterfile: a chain of
   1-4 clusters over random interface types, joined by gateways; every
   pair of nodes must be routable and deliver content intact. *)
let cluster_chain_gen =
  QCheck.Gen.(
    let* n_clusters = int_range 1 4 in
    let* kinds =
      list_repeat n_clusters (oneofl [ "sisci"; "bip"; "tcp"; "via"; "sbp" ])
    in
    (* A lone cluster has no gateways, so it needs two interior nodes to
       form a channel; chained clusters get gateways as extra members. *)
    let lo = if n_clusters = 1 then 2 else 1 in
    let* sizes = list_repeat n_clusters (int_range lo 2) in
    return (kinds, sizes))

let chain_arbitrary =
  QCheck.make cluster_chain_gen ~print:(fun (kinds, sizes) ->
      String.concat "+"
        (List.map2 (fun k s -> Printf.sprintf "%s/%d" k s) kinds sizes))

(* Builds the textual description: cluster i has [sizes_i] interior
   nodes; consecutive clusters share a gateway node on both networks. *)
let chain_config (kinds, sizes) =
  let b = Buffer.create 256 in
  List.iteri
    (fun i kind -> Buffer.add_string b (Printf.sprintf "network n%d type=%s\n" i kind))
    kinds;
  let n_clusters = List.length kinds in
  (* gateways g0..g(k-2); interior nodes cI_J *)
  let node_names = ref [] in
  for i = 0 to n_clusters - 1 do
    let size = List.nth sizes i in
    for j = 0 to size - 1 do
      let name = Printf.sprintf "c%d_%d" i j in
      Buffer.add_string b (Printf.sprintf "node %s nets=n%d\n" name i);
      node_names := name :: !node_names
    done;
    if i < n_clusters - 1 then begin
      let name = Printf.sprintf "g%d" i in
      Buffer.add_string b
        (Printf.sprintf "node %s nets=n%d,n%d\n" name i (i + 1));
      node_names := name :: !node_names
    end
  done;
  for i = 0 to n_clusters - 1 do
    let members =
      List.filter
        (fun n ->
          (String.length n > 1 && n.[0] = 'c'
           && int_of_string (String.sub n 1 (String.index n '_' - 1)) = i)
          || (n.[0] = 'g'
              && (int_of_string (String.sub n 1 (String.length n - 1)) = i
                  || int_of_string (String.sub n 1 (String.length n - 1)) = i - 1)))
        (List.rev !node_names)
    in
    Buffer.add_string b
      (Printf.sprintf "channel ch%d net=n%d nodes=%s\n" i i
         (String.concat "," members))
  done;
  Buffer.add_string b
    (Printf.sprintf "vchannel wan channels=%s mtu=4096\n"
       (String.concat ","
          (List.init n_clusters (fun i -> Printf.sprintf "ch%d" i))));
  (Buffer.contents b, List.rev !node_names)

let prop_random_cluster_chain =
  QCheck.Test.make ~name:"random cluster chains route everywhere" ~count:15
    chain_arbitrary
    (fun spec ->
      let text, names = chain_config spec in
      match Clusterfile.load text with
      | exception Invalid_argument _ -> false
      | t ->
          let vc = Clusterfile.vchannel t "wan" in
          let ranks = List.map (Clusterfile.rank_of t) names in
          let ok = ref true in
          let pending = ref 0 in
          List.iter
            (fun src ->
              List.iter
                (fun dst ->
                  if src <> dst then begin
                    incr pending;
                    let data =
                      H.payload 700 (Int64.of_int ((src * 97) + dst))
                    in
                    Engine.spawn (Clusterfile.engine t)
                      ~name:(Printf.sprintf "s%d-%d" src dst) (fun () ->
                        let oc =
                          Madeleine.Vchannel.begin_packing vc ~me:src
                            ~remote:dst
                        in
                        Madeleine.Vchannel.pack oc data;
                        Madeleine.Vchannel.end_packing oc);
                    Engine.spawn (Clusterfile.engine t)
                      ~name:(Printf.sprintf "r%d-%d" src dst) (fun () ->
                        let sink = Bytes.create 700 in
                        let ic =
                          Madeleine.Vchannel.begin_unpacking_from vc ~me:dst
                            ~remote:src
                        in
                        Madeleine.Vchannel.unpack ic sink;
                        Madeleine.Vchannel.end_unpacking ic;
                        if not (Bytes.equal data sink) then ok := false;
                        decr pending)
                  end)
                ranks)
            ranks;
          Engine.run (Clusterfile.engine t);
          !ok && !pending = 0)

(* Bounded memory under credit-based flow control: for ANY random
   bidirectional traffic pattern through the gateway, with credits and
   the forwarding pool deliberately small, no instrumented buffering
   point (destination assemblers, gateway pools, origin re-emission
   logs) ever exceeds its configured bound — and every byte still
   arrives intact. *)
let prop_credit_bounded_memory =
  QCheck.Test.make ~name:"credits bound every queue under random traffic"
    ~count:20
    QCheck.(
      make
        Gen.(
          let* credits = int_range 2 6 in
          let* mtu = oneofl [ 1024; 2048; 4096 ] in
          let* fwd = list_size (int_range 1 6) (int_range 1 20_000) in
          let* back = list_size (int_range 1 6) (int_range 1 20_000) in
          return (credits, mtu, fwd, back))
        ~print:(fun (credits, mtu, fwd, back) ->
          Printf.sprintf "credits=%d mtu=%d fwd=[%s] back=[%s]" credits mtu
            (String.concat ";" (List.map string_of_int fwd))
            (String.concat ";" (List.map string_of_int back))))
    (fun (credits, mtu, fwd, back) ->
      let w = Harness.two_cluster_world () in
      let vc =
        Madeleine.Vchannel.create w.H.cw_session ~mtu ~credits ~gw_pool:2
          [ w.H.ch_sci; w.H.ch_myri ]
      in
      let rng = Simnet.Rng.create ~seed:11L in
      let fwd_payloads = List.map (Simnet.Rng.bytes rng) fwd in
      let back_payloads = List.map (Simnet.Rng.bytes rng) back in
      let ok = ref true in
      let send ~me ~remote payloads name =
        Engine.spawn w.H.cw_engine ~name (fun () ->
            List.iter
              (fun data ->
                let oc = Madeleine.Vchannel.begin_packing vc ~me ~remote in
                Madeleine.Vchannel.pack oc data;
                Madeleine.Vchannel.end_packing oc)
              payloads)
      and recv ~me ~remote payloads name =
        Engine.spawn w.H.cw_engine ~name (fun () ->
            List.iter
              (fun expect ->
                let sink = Bytes.create (Bytes.length expect) in
                let ic =
                  Madeleine.Vchannel.begin_unpacking_from vc ~me ~remote
                in
                Madeleine.Vchannel.unpack ic sink;
                Madeleine.Vchannel.end_unpacking ic;
                if not (Bytes.equal expect sink) then ok := false)
              payloads)
      in
      send ~me:0 ~remote:2 fwd_payloads "fwd-s";
      recv ~me:2 ~remote:0 fwd_payloads "fwd-r";
      send ~me:2 ~remote:0 back_payloads "back-s";
      recv ~me:0 ~remote:2 back_payloads "back-r";
      Engine.run w.H.cw_engine;
      let bounded =
        List.for_all
          (fun q ->
            match q.Madeleine.Vchannel.q_bound with
            | Some b -> q.Madeleine.Vchannel.q_peak <= b
            | None -> true)
          (Madeleine.Vchannel.queue_stats vc)
      in
      !ok && bounded)

(* Determinism: the same scenario simulated twice gives the same clock. *)
let prop_determinism =
  QCheck.Test.make ~name:"simulation is deterministic" ~count:10
    QCheck.(make Gen.(int_range 1 50_000) ~print:string_of_int)
    (fun n ->
      let run () =
        Marcel.Time.to_ns (H.mad_pingpong (H.bip_world ()) ~bytes_count:n ~iters:3)
      in
      Int.equal (run ()) (run ()))

let () =
  Alcotest.run "properties"
    [
      ( "roundtrips",
        [
          QCheck_alcotest.to_alcotest (prop_roundtrip "bip" H.bip_world);
          QCheck_alcotest.to_alcotest (prop_roundtrip "sisci" H.sisci_world);
          QCheck_alcotest.to_alcotest (prop_roundtrip "tcp" H.tcp_world);
          QCheck_alcotest.to_alcotest prop_vchannel_roundtrip;
        ] );
      ( "protocol invariants",
        [
          QCheck_alcotest.to_alcotest prop_mpi_matching;
          QCheck_alcotest.to_alcotest prop_tcp_segmentation;
          QCheck_alcotest.to_alcotest prop_engine_sleep_ordering;
          QCheck_alcotest.to_alcotest prop_eventq_model;
          QCheck_alcotest.to_alcotest prop_mpi_allreduce_sum;
          QCheck_alcotest.to_alcotest prop_pm2_rpc_storm;
          QCheck_alcotest.to_alcotest prop_random_cluster_chain;
          QCheck_alcotest.to_alcotest prop_credit_bounded_memory;
          QCheck_alcotest.to_alcotest prop_determinism;
        ] );
    ]
