(* Tests for virtual-channel reliability: gateway failover mid-stream,
   partition detection, single-channel reliable vchannels, the typed
   routing errors, and byte-reproducibility of the chaos report. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults
module Channel = Madeleine.Channel
module Vc = Madeleine.Vchannel

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

(* A reliable vchannel over a single two-node TCP channel: no gateways,
   so a peer crash is immediately a partition. *)
let single_channel_world () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:3L in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let session = Madeleine.Session.create engine in
  let ch =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (function 0 -> s0 | _ -> s1))
      ~ranks:[ 0; 1 ] ()
  in
  let vc = Vc.create session ~mtu:4096 ~faults [ ch ] in
  (engine, faults, vc)

let test_gateway_crash_failover () =
  let f = Chaos.failover_run ~seed:42 ~size:16384 ~messages:4 in
  Alcotest.(check bool) "all messages intact" true f.Chaos.fo_intact;
  Alcotest.(check bool) "routes were recomputed" true (f.Chaos.fo_reroutes >= 1);
  Alcotest.(check bool) "unacked packets re-emitted" true
    (f.Chaos.fo_reemitted > 0);
  Alcotest.(check bool) "crashed gateway left the route" true
    (not (List.mem f.Chaos.fo_crashed_gateway f.Chaos.fo_route_after));
  Alcotest.(check bool) "losing the last gateway partitions" true
    f.Chaos.fo_partitioned

let test_single_channel_reliable_then_partitioned () =
  let engine, faults, vc = single_channel_world () in
  let data = payload 12288 21L in
  let delivered = ref false and partitioned = ref false in
  Engine.spawn engine ~name:"sender" (fun () ->
      let oc = Vc.begin_packing vc ~me:0 ~remote:1 in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn engine ~name:"receiver" (fun () ->
      let sink = Bytes.create 12288 in
      let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
      Vc.unpack ic sink;
      Vc.end_unpacking ic;
      delivered := Bytes.equal sink data;
      (* The sender may still be inside [end_packing], waiting for the
         transport-level ack of its last frame; crashing now would make
         that call (correctly) raise Partitioned. Let the ack land so
         the crash hits an idle flow. *)
      Engine.sleep (Time.us 1_000.0);
      Faults.crash_now faults ~node:1 ();
      (match Vc.begin_packing vc ~me:0 ~remote:1 with
      | exception Vc.Partitioned _ -> partitioned := true
      | _oc -> ());
      match Vc.route_length vc ~src:0 ~dst:1 with
      | _ -> ()
      | exception Vc.Partitioned _ -> ());
  Engine.run engine;
  Alcotest.(check bool) "message intact before the crash" true !delivered;
  Alcotest.(check bool) "peer crash partitions a 1-channel vchannel" true
    !partitioned

let test_route_queries_partitioned () =
  let engine, faults, vc = single_channel_world () in
  let saw_partitioned = ref false in
  Engine.spawn engine ~name:"probe" (fun () ->
      Faults.crash_now faults ~node:1 ();
      (match Vc.route_length vc ~src:0 ~dst:1 with
      | _ -> ()
      | exception Vc.Partitioned _ -> saw_partitioned := true);
      match Vc.peer_status vc ~src:0 ~dst:1 with
      | Madeleine.Iface.Down -> ()
      | h ->
          Alcotest.failf "peer_status after crash: %a, expected Down"
            Madeleine.Iface.pp_health h);
  Engine.run engine;
  Alcotest.(check bool) "route query raises Partitioned" true !saw_partitioned

let test_route_queries_invalid_rank () =
  let _engine, _faults, vc = single_channel_world () in
  (match Vc.route_length vc ~src:0 ~dst:9 with
  | _ -> Alcotest.fail "expected Invalid_argument for unknown rank"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the rank" true (contains msg "9"));
  match Vc.route_via vc ~src:7 ~dst:1 with
  | _ -> Alcotest.fail "expected Invalid_argument for unknown rank"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the rank" true (contains msg "7")

let test_crash_restart_exactly_once () =
  let r = Chaos.crash_restart_run ~seed:42 ~size:16384 ~messages:3 in
  Alcotest.(check bool) "delivered exactly once, bit-identical" true
    r.Chaos.cr_exactly_once;
  Alcotest.(check int) "both phases fully delivered" 6 r.Chaos.cr_delivered;
  Alcotest.(check bool) "crash-epoch handshake completed" true
    (r.Chaos.cr_handshakes >= 1);
  Alcotest.(check bool) "routes were recomputed" true (r.Chaos.cr_reroutes >= 1);
  Alcotest.(check bool) "sentinels observed the outage" true
    (r.Chaos.cr_suspicions <> []);
  (* Once the stream completes, every origin re-emission log is empty:
     everything sent in the current epoch has been acknowledged. *)
  List.iter
    (fun f -> Alcotest.(check int) "origin log drained" 0 f.Vc.unacked)
    r.Chaos.cr_flows

let test_window_beats_stop_and_wait () =
  let g = Chaos.goodput_run ~seed:42 ~size:1024 ~messages:256 ~window:8
      ~drop:0.01 in
  Alcotest.(check bool) "both streams intact" true g.Chaos.gp_intact;
  Alcotest.(check bool) "go-back-N >= 2x stop-and-wait at 1% drop" true
    (g.Chaos.gp_speedup >= 2.0)

(* ------------------------------------------------------------------ *)
(* Live topology: a 4-rank redundant-gateway world with the membership
   promoted to a versioned epoch snapshot (coordinator 0, epoch 1).
   ethA joins 0,1,2 and ethB joins 1,2,3, so ranks 1 and 2 are
   interchangeable gateways for the 0 <-> 3 flows. *)

let live_world ?(seed = 7L) () =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 4 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1; 2 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2; 3 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let sa = Hashtbl.create 4 and sb = Hashtbl.create 4 in
  List.iter (fun i -> Hashtbl.add sa i (Tcpnet.attach net_a nodes.(i))) [ 0; 1; 2 ];
  List.iter (fun i -> Hashtbl.add sb i (Tcpnet.attach net_b nodes.(i))) [ 1; 2; 3 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find sa))
      ~ranks:[ 0; 1; 2 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find sb))
      ~ranks:[ 1; 2; 3 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~faults ~topology:1 ~coordinator:0
      [ ch_a; ch_b ]
  in
  (engine, faults, vc)

(* Two concurrent flows, one epoch swap mid-stream. [drain_spare]
   drains the gateway NOT on the 0 -> 3 route (no flow's route changes:
   nothing may be re-emitted); otherwise the on-route gateway drains
   (the 0 -> 3 flow reroutes and only its unacked packets re-emit).
   Either way both flows must land exactly-once, bit-identical. *)
let run_topology_swap ~drain_spare =
  let engine, _faults, vc = live_world () in
  let messages = 6 and size = 8192 in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  let spare = if gw = 1 then 2 else 1 in
  let target = if drain_spare then spare else gw in
  (* The second flow goes to whichever gateway is NOT drained; its
     single-hop route never changes. *)
  let keep = if target = gw then spare else gw in
  let mk tag m =
    let p = payload size (Int64.of_int (50 + tag)) in
    Bytes.set_int32_le p 0 (Int32.of_int m);
    p
  in
  let rec_far = Array.make messages 0 and rec_near = Array.make messages 0 in
  let intact = ref true and partitioned = ref false in
  let delivered = ref 0 in
  let recv_flow ~me ~tag arr =
    Engine.spawn engine ~name:(Printf.sprintf "recv%d" me) (fun () ->
        for _ = 1 to messages do
          let sink = Bytes.create size in
          let ic = Vc.begin_unpacking_from vc ~me ~remote:0 in
          Vc.unpack ic sink;
          Vc.end_unpacking ic;
          let idx = Int32.to_int (Bytes.get_int32_le sink 0) in
          (if idx < 0 || idx >= messages then intact := false
           else begin
             arr.(idx) <- arr.(idx) + 1;
             if not (Bytes.equal sink (mk tag idx)) then intact := false
           end);
          incr delivered
        done)
  in
  Engine.spawn engine ~name:"sender" (fun () ->
      for m = 0 to messages - 1 do
        List.iter
          (fun (remote, tag) ->
            match Vc.begin_packing vc ~me:0 ~remote with
            | exception Vc.Partitioned _ -> partitioned := true
            | oc ->
                Vc.pack oc (mk tag m);
                Vc.end_packing oc)
          [ (3, 0); (keep, 1) ]
      done);
  recv_flow ~me:3 ~tag:0 rec_far;
  recv_flow ~me:keep ~tag:1 rec_near;
  Engine.spawn engine ~name:"swapper" (fun () ->
      while !delivered < 2 do
        Engine.sleep (Time.us 200.0)
      done;
      match Vc.drain vc ~rank:target with
      | () -> ()
      | exception Vc.Partitioned _ -> partitioned := true);
  Engine.run engine;
  let stats = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  let exactly_once =
    !intact
    && Array.for_all (fun n -> n = 1) rec_far
    && Array.for_all (fun n -> n = 1) rec_near
  in
  (vc, target, stats, exactly_once, !partitioned)

let test_topology_swap_reemits_only_changed () =
  (* On-route gateway drains: the 0 -> 3 flow reroutes and re-emits. *)
  let vc, target, stats, exactly_once, partitioned =
    run_topology_swap ~drain_spare:false
  in
  Alcotest.(check bool) "exactly-once across the swap" true exactly_once;
  Alcotest.(check bool) "no flow saw Partitioned" false partitioned;
  Alcotest.(check bool) "route-changed flow re-emitted" true
    (stats.Vc.reemitted > 0);
  Alcotest.(check bool) "drained gateway left the route" true
    (not (List.mem target (Vc.route_via vc ~src:0 ~dst:3)));
  (* Spare gateway drains: the epoch advances but no flow's route
     changes — nothing may be re-emitted. *)
  let _vc, _target, stats2, exactly_once2, partitioned2 =
    run_topology_swap ~drain_spare:true
  in
  Alcotest.(check bool) "exactly-once across the no-op swap" true
    exactly_once2;
  Alcotest.(check bool) "no flow saw Partitioned (spare)" false partitioned2;
  Alcotest.(check int) "unchanged flows not re-emitted" 0 stats2.Vc.reemitted

let test_departed_peer_status () =
  let engine, _faults, vc = live_world () in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  Engine.spawn engine ~name:"drainer" (fun () ->
      Vc.drain vc ~rank:gw;
      (* A departed rank gets the typed verdict, in both directions. *)
      (match Vc.peer_status vc ~src:0 ~dst:gw with
      | Madeleine.Iface.Departed -> ()
      | h ->
          Alcotest.failf "peer_status to departed rank: %a, expected Departed"
            Madeleine.Iface.pp_health h);
      (match Vc.peer_status vc ~src:gw ~dst:0 with
      | Madeleine.Iface.Departed -> ()
      | h ->
          Alcotest.failf "peer_status from departed rank: %a" Madeleine.Iface.pp_health h);
      (* Failover treats it like Down: new flows refuse... *)
      (match Vc.begin_packing vc ~me:0 ~remote:gw with
      | exception Vc.Partitioned _ -> ()
      | _ -> Alcotest.fail "begin_packing to a departed rank must raise");
      (* ...and no recomputed route relays through it. *)
      List.iter
        (fun dst ->
          if dst <> 0 && dst <> gw then
            Alcotest.(check bool)
              (Printf.sprintf "route 0->%d avoids departed %d" dst gw)
              true
              (not (List.mem gw (Vc.route_via vc ~src:0 ~dst))))
        (Vc.ranks vc);
      (* Member flows still report normally. *)
      match Vc.peer_status vc ~src:0 ~dst:3 with
      | Madeleine.Iface.Up | Madeleine.Iface.Degraded _ -> ()
      | h -> Alcotest.failf "live flow status: %a" Madeleine.Iface.pp_health h);
  Engine.run engine

(* Random join/drain sequences: membership converges to the final
   epoch's snapshot, routes never relay through a non-member, and
   member-pair reachability matches a reference BFS over the physical
   adjacency restricted to members. *)
let physical_pairs =
  (* ethA is 0,1,2 all-pairs; ethB is 1,2,3 all-pairs. *)
  [ (0, 1); (0, 2); (1, 2); (1, 3); (2, 3) ]

let reference_reachable members a b =
  let adj n =
    List.filter_map
      (fun (x, y) ->
        if x = n && List.mem y members then Some y
        else if y = n && List.mem x members then Some x
        else None)
      physical_pairs
  in
  let rec bfs seen = function
    | [] -> false
    | n :: _ when n = b -> true
    | n :: rest ->
        let next =
          List.filter (fun m -> not (List.mem m seen)) (adj n)
        in
        bfs (next @ seen) (rest @ next)
  in
  a = b || bfs [ a ] [ a ]

let prop_join_drain_converges =
  QCheck.Test.make ~name:"random join/drain sequences converge" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 10) (pair (int_range 1 3) bool))
    (fun ops ->
      let engine, _faults, vc = live_world () in
      let applied = ref 0 in
      Engine.spawn engine ~name:"ops" (fun () ->
          List.iter
            (fun (rank, is_drain) ->
              let members =
                match Vc.topology vc with
                | Some s -> Madeleine.Topology.ranks s
                | None -> assert false
              in
              let mem = List.mem rank members in
              if is_drain && mem then (
                (* May legitimately abort when the drain request cannot
                   reach the coordinator through the remaining members. *)
                match Vc.drain vc ~rank with
                | () -> incr applied
                | exception Vc.Partitioned _ -> ())
              else if (not is_drain) && not mem then (
                match Vc.join vc ~rank with
                | (_ : int) -> incr applied
                | exception Vc.Partitioned _ -> ()))
            ops);
      Engine.run engine;
      let snap =
        match Vc.topology vc with Some s -> s | None -> assert false
      in
      let members = Madeleine.Topology.ranks snap in
      (* Every applied op advanced the epoch exactly once. *)
      let epoch_ok = Madeleine.Topology.epoch snap = 1 + !applied in
      (* Non-members: typed Departed, and on no member-pair route. *)
      let departed_ok =
        List.for_all
          (fun r ->
            List.mem r members
            || Vc.peer_status vc ~src:0 ~dst:r = Madeleine.Iface.Departed)
          [ 1; 2; 3 ]
      in
      (* Member pairs route exactly when the member-restricted physical
         graph connects them, and never relay through a non-member. *)
      let routes_ok =
        List.for_all
          (fun s ->
            List.for_all
              (fun d ->
                s = d
                ||
                match Vc.route_via vc ~src:s ~dst:d with
                | hops ->
                    reference_reachable members s d
                    && List.for_all (fun h -> List.mem h members) hops
                | exception Vc.Partitioned _ ->
                    not (reference_reachable members s d))
              members)
          members
      in
      epoch_ok && departed_ok && routes_ok)

(* ------------------------------------------------------------------ *)
(* Quorum elections: a 4-rank single-fabric world with the coordinator
   seat quorum-elected (majority of the initial membership, 3 of 4).
   Partitions are injected at the fault plane, so detection, candidacy
   and commit all ride the normal sentinel/control-plane machinery. *)

let election_world ?(seed = 11L) ?topo_quorum () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 4 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net engine fabric in
  let stacks = Array.map (Tcpnet.attach net) nodes in
  let session = Madeleine.Session.create engine in
  let ch =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (fun i -> stacks.(i)))
      ~ranks:[ 0; 1; 2; 3 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~faults ~topology:1 ~coordinator:0
      ~election:true ?topo_quorum [ ch ]
  in
  (engine, faults, vc)

(* Sentinel probing is activity-gated; keep every detector's grace
   window open while a scenario runs, as real traffic would. *)
let spawn_prober engine vc ~stop =
  Engine.spawn engine ~name:"prober" (fun () ->
      while not !stop do
        List.iter
          (fun r ->
            match Vc.sentinel vc ~rank:r with
            | Some s -> Madeleine.Sentinel.touch s
            | None -> ())
          (Vc.ranks vc);
        Engine.sleep (Time.us 400.0)
      done)

let vc_members vc =
  match Vc.topology vc with
  | Some s -> List.sort compare (Madeleine.Topology.ranks s)
  | None -> assert false

let epochs_unique stats =
  let epochs = List.map fst stats.Vc.commits in
  List.sort_uniq compare epochs = List.sort compare epochs

(* Cut the coordinator off: the majority elects its lowest member, the
   minority loses quorum and its drain parks with the typed error, and
   the heal replays the parked intent exactly once. *)
let test_partition_elects_majority_coordinator () =
  let engine, faults, vc = election_world () in
  let stop = ref false in
  spawn_prober engine vc ~stop;
  let mid_coord = ref None in
  let minority_quorum = ref true and majority_quorum = ref false in
  let minority_verdict = ref "none" in
  Engine.spawn engine ~name:"script" (fun () ->
      Engine.sleep (Time.ms 2.0);
      Faults.partition faults ~fabric:"eth" [ 0 ] [ 1; 2; 3 ];
      Engine.sleep (Time.ms 60.0);
      mid_coord := Vc.coordinator vc;
      minority_quorum := Vc.has_quorum vc ~viewer:0;
      majority_quorum := Vc.has_quorum vc ~viewer:1;
      (* Rank 0 lost the seat to the majority's election, so draining
         it is legal — but its own side cannot reach a quorum. *)
      (match Vc.drain vc ~rank:0 with
      | () -> minority_verdict := "applied"
      | exception Vc.No_quorum _ -> minority_verdict := "no-quorum"
      | exception Vc.Partitioned _ -> minority_verdict := "partitioned"
      | exception Invalid_argument _ -> minority_verdict := "invalid");
      Faults.heal faults ~fabric:"eth";
      Engine.sleep (Time.ms 100.0);
      stop := true);
  Engine.run engine;
  let stats =
    match Vc.election_stats vc with Some s -> s | None -> assert false
  in
  Alcotest.(check bool) "majority elected a new coordinator" true
    (!mid_coord = Some 1);
  Alcotest.(check bool) "minority side lost quorum" false !minority_quorum;
  Alcotest.(check bool) "majority side kept quorum" true !majority_quorum;
  Alcotest.(check string) "minority drain surfaced the typed error"
    "no-quorum" !minority_verdict;
  Alcotest.(check (list int)) "heal replayed the parked drain" [ 1; 2; 3 ]
    (vc_members vc);
  Alcotest.(check bool) "coordinator survived the heal" true
    (Vc.coordinator vc = Some 1);
  (match Vc.peer_status vc ~src:1 ~dst:0 with
  | Madeleine.Iface.Departed -> ()
  | h ->
      Alcotest.failf "replayed drain: peer_status %a, expected Departed"
        Madeleine.Iface.pp_health h);
  (* The replayed drain shrank the membership to 3, so the unpinned
     quorum follows it down to 2. *)
  Alcotest.(check int) "quorum tracks the current membership" 2
    stats.Vc.quorum;
  Alcotest.(check bool) "at least one committed election" true
    (stats.Vc.elections >= 1);
  Alcotest.(check bool) "commit latency measured" true
    (stats.Vc.last_latency_us > 0.0);
  Alcotest.(check int) "no intent left parked" 0 stats.Vc.pending;
  Alcotest.(check bool) "at most one coordinator per epoch" true
    (epochs_unique stats)

(* Random partition/heal/coordinator-crash/join/drain schedules. Safety:
   at most one coordinator ever commits any given epoch (the commits
   audit trail has unique epochs). Liveness: once the cuts heal, the
   membership converges to the model — every join/drain that returned
   [()] or parked with [No_quorum] eventually lands, nothing else does.
   Membership ops target ranks 2 and 3 only, so a parked drain can
   never collide with its own rank later winning an election (with a
   quorum of 3 over 4 ranks, only 0 or 1 can ever assemble one). *)
let prop_split_brain_safe =
  QCheck.Test.make ~name:"random partition/heal/crash schedules stay safe"
    ~count:12
    QCheck.(list_of_size Gen.(int_range 1 8) (pair (int_range 0 4) (int_range 0 3)))
    (fun ops ->
      let engine, faults, vc = election_world () in
      let stop = ref false in
      spawn_prober engine vc ~stop;
      let expected = ref [ 0; 1; 2; 3 ] in
      let cut = ref false in
      Engine.spawn engine ~name:"schedule" (fun () ->
          List.iter
            (fun (kind, rank) ->
              (match kind with
              | 0 ->
                  if not !cut then begin
                    Faults.partition faults ~fabric:"eth" [ rank ]
                      (List.filter (fun r -> r <> rank) [ 0; 1; 2; 3 ]);
                    cut := true
                  end
              | 1 ->
                  if !cut then begin
                    Faults.heal faults ~fabric:"eth";
                    cut := false
                  end
              | 2 -> (
                  match Vc.coordinator vc with
                  | Some c when Simnet.Faults.node_up faults c ->
                      Faults.crash_now faults ~node:c
                        ~restart_after:(Time.ms 3.0) ()
                  | _ -> ())
              | 3 ->
                  let rank = 2 + (rank land 1) in
                  if
                    List.mem rank (vc_members vc)
                    && Vc.coordinator vc <> Some rank
                    && Simnet.Faults.node_up faults rank
                  then (
                    match Vc.drain vc ~rank with
                    | () | (exception Vc.No_quorum _) ->
                        expected :=
                          List.filter (fun r -> r <> rank) !expected
                    | exception (Vc.Partitioned _ | Invalid_argument _) -> ())
              | _ ->
                  let rank = 2 + (rank land 1) in
                  if
                    (not (List.mem rank (vc_members vc)))
                    && Simnet.Faults.node_up faults rank
                  then (
                    match Vc.join vc ~rank with
                    | (_ : int) | (exception Vc.No_quorum _) ->
                        expected := List.sort_uniq compare (rank :: !expected)
                    | exception (Vc.Partitioned _ | Invalid_argument _) -> ()));
              Engine.sleep (Time.ms 8.0))
            ops;
          (* Restore the physical world and let the replay settle. *)
          Faults.heal_all faults;
          Engine.sleep (Time.ms 120.0);
          (* A replay can be interrupted by a cut or crash landing in
             its patience window; it re-parks and waits for the next
             heal. Kick one more heal cycle if anything is left. *)
          (match Vc.election_stats vc with
          | Some s when s.Vc.pending > 0 ->
              Faults.partition faults ~fabric:"eth" [ 0 ] [ 1 ];
              Faults.heal faults ~fabric:"eth";
              Engine.sleep (Time.ms 120.0)
          | _ -> ());
          stop := true);
      Engine.run engine;
      let stats =
        match Vc.election_stats vc with Some s -> s | None -> assert false
      in
      let members = vc_members vc in
      let coordinator_live =
        match Vc.coordinator vc with
        | Some c -> List.mem c members
        | None -> false
      in
      epochs_unique stats
      && members = List.sort compare !expected
      && stats.Vc.pending = 0
      && coordinator_live)

let test_chaos_report_reproducible () =
  let report () =
    Chaos.to_json (Chaos.run Sweeps.serial_runner ~seed:42 ~quick:true)
  in
  Alcotest.(check string) "same seed, byte-identical report" (report ())
    (report ())

let () =
  Alcotest.run "failover"
    [
      ( "vchannel",
        [
          Alcotest.test_case "gateway crash mid-stream" `Quick
            test_gateway_crash_failover;
          Alcotest.test_case "single-channel partition" `Quick
            test_single_channel_reliable_then_partitioned;
          Alcotest.test_case "route queries: Partitioned" `Quick
            test_route_queries_partitioned;
          Alcotest.test_case "route queries: invalid rank" `Quick
            test_route_queries_invalid_rank;
          Alcotest.test_case "crash-restart: exactly once" `Quick
            test_crash_restart_exactly_once;
          Alcotest.test_case "window beats stop-and-wait" `Quick
            test_window_beats_stop_and_wait;
        ] );
      ( "live-topology",
        [
          Alcotest.test_case "swap re-emits only route-changed flows" `Quick
            test_topology_swap_reemits_only_changed;
          Alcotest.test_case "departed rank: typed status, no reroute to it"
            `Quick test_departed_peer_status;
          QCheck_alcotest.to_alcotest prop_join_drain_converges;
        ] );
      ( "elections",
        [
          Alcotest.test_case "partition: majority elects, minority parks"
            `Quick test_partition_elects_majority_coordinator;
          QCheck_alcotest.to_alcotest prop_split_brain_safe;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "report reproducible" `Slow
            test_chaos_report_reproducible;
        ] );
    ]
