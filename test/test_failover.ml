(* Tests for virtual-channel reliability: gateway failover mid-stream,
   partition detection, single-channel reliable vchannels, the typed
   routing errors, and byte-reproducibility of the chaos report. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults
module Channel = Madeleine.Channel
module Vc = Madeleine.Vchannel

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

let contains msg sub =
  let n = String.length msg and m = String.length sub in
  let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
  go 0

(* A reliable vchannel over a single two-node TCP channel: no gateways,
   so a peer crash is immediately a partition. *)
let single_channel_world () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:3L in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let session = Madeleine.Session.create engine in
  let ch =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (function 0 -> s0 | _ -> s1))
      ~ranks:[ 0; 1 ] ()
  in
  let vc = Vc.create session ~mtu:4096 ~faults [ ch ] in
  (engine, faults, vc)

let test_gateway_crash_failover () =
  let f = Chaos.failover_run ~seed:42 ~size:16384 ~messages:4 in
  Alcotest.(check bool) "all messages intact" true f.Chaos.fo_intact;
  Alcotest.(check bool) "routes were recomputed" true (f.Chaos.fo_reroutes >= 1);
  Alcotest.(check bool) "unacked packets re-emitted" true
    (f.Chaos.fo_reemitted > 0);
  Alcotest.(check bool) "crashed gateway left the route" true
    (not (List.mem f.Chaos.fo_crashed_gateway f.Chaos.fo_route_after));
  Alcotest.(check bool) "losing the last gateway partitions" true
    f.Chaos.fo_partitioned

let test_single_channel_reliable_then_partitioned () =
  let engine, faults, vc = single_channel_world () in
  let data = payload 12288 21L in
  let delivered = ref false and partitioned = ref false in
  Engine.spawn engine ~name:"sender" (fun () ->
      let oc = Vc.begin_packing vc ~me:0 ~remote:1 in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn engine ~name:"receiver" (fun () ->
      let sink = Bytes.create 12288 in
      let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
      Vc.unpack ic sink;
      Vc.end_unpacking ic;
      delivered := Bytes.equal sink data;
      (* The sender may still be inside [end_packing], waiting for the
         transport-level ack of its last frame; crashing now would make
         that call (correctly) raise Partitioned. Let the ack land so
         the crash hits an idle flow. *)
      Engine.sleep (Time.us 1_000.0);
      Faults.crash_now faults ~node:1 ();
      (match Vc.begin_packing vc ~me:0 ~remote:1 with
      | exception Vc.Partitioned _ -> partitioned := true
      | _oc -> ());
      match Vc.route_length vc ~src:0 ~dst:1 with
      | _ -> ()
      | exception Vc.Partitioned _ -> ());
  Engine.run engine;
  Alcotest.(check bool) "message intact before the crash" true !delivered;
  Alcotest.(check bool) "peer crash partitions a 1-channel vchannel" true
    !partitioned

let test_route_queries_partitioned () =
  let engine, faults, vc = single_channel_world () in
  let saw_partitioned = ref false in
  Engine.spawn engine ~name:"probe" (fun () ->
      Faults.crash_now faults ~node:1 ();
      (match Vc.route_length vc ~src:0 ~dst:1 with
      | _ -> ()
      | exception Vc.Partitioned _ -> saw_partitioned := true);
      match Vc.peer_status vc ~src:0 ~dst:1 with
      | Madeleine.Iface.Down -> ()
      | h ->
          Alcotest.failf "peer_status after crash: %a, expected Down"
            Madeleine.Iface.pp_health h);
  Engine.run engine;
  Alcotest.(check bool) "route query raises Partitioned" true !saw_partitioned

let test_route_queries_invalid_rank () =
  let _engine, _faults, vc = single_channel_world () in
  (match Vc.route_length vc ~src:0 ~dst:9 with
  | _ -> Alcotest.fail "expected Invalid_argument for unknown rank"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the rank" true (contains msg "9"));
  match Vc.route_via vc ~src:7 ~dst:1 with
  | _ -> Alcotest.fail "expected Invalid_argument for unknown rank"
  | exception Invalid_argument msg ->
      Alcotest.(check bool) "message names the rank" true (contains msg "7")

let test_crash_restart_exactly_once () =
  let r = Chaos.crash_restart_run ~seed:42 ~size:16384 ~messages:3 in
  Alcotest.(check bool) "delivered exactly once, bit-identical" true
    r.Chaos.cr_exactly_once;
  Alcotest.(check int) "both phases fully delivered" 6 r.Chaos.cr_delivered;
  Alcotest.(check bool) "crash-epoch handshake completed" true
    (r.Chaos.cr_handshakes >= 1);
  Alcotest.(check bool) "routes were recomputed" true (r.Chaos.cr_reroutes >= 1);
  Alcotest.(check bool) "sentinels observed the outage" true
    (r.Chaos.cr_suspicions <> []);
  (* Once the stream completes, every origin re-emission log is empty:
     everything sent in the current epoch has been acknowledged. *)
  List.iter
    (fun f -> Alcotest.(check int) "origin log drained" 0 f.Vc.unacked)
    r.Chaos.cr_flows

let test_window_beats_stop_and_wait () =
  let g = Chaos.goodput_run ~seed:42 ~size:1024 ~messages:256 ~window:8
      ~drop:0.01 in
  Alcotest.(check bool) "both streams intact" true g.Chaos.gp_intact;
  Alcotest.(check bool) "go-back-N >= 2x stop-and-wait at 1% drop" true
    (g.Chaos.gp_speedup >= 2.0)

let test_chaos_report_reproducible () =
  let report () =
    Chaos.to_json (Chaos.run Sweeps.serial_runner ~seed:42 ~quick:true)
  in
  Alcotest.(check string) "same seed, byte-identical report" (report ())
    (report ())

let () =
  Alcotest.run "failover"
    [
      ( "vchannel",
        [
          Alcotest.test_case "gateway crash mid-stream" `Quick
            test_gateway_crash_failover;
          Alcotest.test_case "single-channel partition" `Quick
            test_single_channel_reliable_then_partitioned;
          Alcotest.test_case "route queries: Partitioned" `Quick
            test_route_queries_partitioned;
          Alcotest.test_case "route queries: invalid rank" `Quick
            test_route_queries_invalid_rank;
          Alcotest.test_case "crash-restart: exactly once" `Quick
            test_crash_restart_exactly_once;
          Alcotest.test_case "window beats stop-and-wait" `Quick
            test_window_beats_stop_and_wait;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "report reproducible" `Slow
            test_chaos_report_reproducible;
        ] );
    ]
