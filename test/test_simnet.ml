(* Tests for the simnet discrete-event network substrate. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Fluid = Simnet.Fluid
module Pipeline = Simnet.Pipeline

let check_i64 = Alcotest.(check int64)

(* Virtual-time tolerance for fluid-model rounding: one microsecond. *)
let close_to expected actual msg =
  let d = abs (expected - actual) in
  if d > Time.us 1.0 then
    Alcotest.failf "%s: expected %dns, got %dns" msg expected actual

let run_timed f =
  let e = Engine.create () in
  Engine.spawn e ~name:"main" (fun () -> f e);
  Engine.run e;
  Engine.now e

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Simnet.Rng.create ~seed:42L and b = Simnet.Rng.create ~seed:42L in
  for _ = 1 to 100 do
    check_i64 "same stream" (Simnet.Rng.next_int64 a) (Simnet.Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Simnet.Rng.create ~seed:7L in
  for _ = 1 to 1000 do
    let x = Simnet.Rng.int r 10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10);
    let f = Simnet.Rng.float r 1.0 in
    Alcotest.(check bool) "float range" true (f >= 0.0 && f < 1.0)
  done

let test_rng_float_mean () =
  (* Catches scaling bugs: the mean of U(0,1) must be near 0.5. *)
  let r = Simnet.Rng.create ~seed:11L in
  let n = 20_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Simnet.Rng.float r 1.0
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near 0.5" mean)
    true
    (Float.abs (mean -. 0.5) < 0.02)

let test_rng_int_unbiased () =
  (* Rejection sampling must keep every residue class equally likely.
     A bound of 3 would show modulo bias at the ~1e-19 level only, so
     instead check a coarse chi-square-ish balance on a small bound and
     that bound = 1 is the constant 0. *)
  let r = Simnet.Rng.create ~seed:13L in
  let n = 30_000 and bound = 7 in
  let counts = Array.make bound 0 in
  for _ = 1 to n do
    let x = Simnet.Rng.int r bound in
    counts.(x) <- counts.(x) + 1
  done;
  let expect = float_of_int n /. float_of_int bound in
  Array.iteri
    (fun v c ->
      Alcotest.(check bool)
        (Printf.sprintf "class %d count %d near %.0f" v c expect)
        true
        (Float.abs (float_of_int c -. expect) < 0.05 *. expect))
    counts;
  for _ = 1 to 100 do
    Alcotest.(check int) "bound 1 is constant" 0 (Simnet.Rng.int r 1)
  done

let test_rng_split_independent () =
  let r = Simnet.Rng.create ~seed:1L in
  let s = Simnet.Rng.split r in
  Alcotest.(check bool) "diverge" true
    (Simnet.Rng.next_int64 r <> Simnet.Rng.next_int64 s)

let test_rng_bytes () =
  let r = Simnet.Rng.create ~seed:3L in
  let b = Simnet.Rng.bytes r 257 in
  Alcotest.(check int) "length" 257 (Bytes.length b)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Simnet.Stats.create () in
  List.iter (Simnet.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  Alcotest.(check int) "count" 8 (Simnet.Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Simnet.Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 2.0 (Simnet.Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 9.0 (Simnet.Stats.max s);
  Alcotest.(check (float 1e-6)) "stddev" 2.13809 (Simnet.Stats.stddev s)

let prop_stats_mean_matches_fold =
  QCheck.Test.make ~name:"stats mean matches naive mean" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      let s = Simnet.Stats.create () in
      List.iter (Simnet.Stats.add s) xs;
      let naive = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
      Float.abs (Simnet.Stats.mean s -. naive) < 1e-6 *. (1.0 +. Float.abs naive))

(* ------------------------------------------------------------------ *)
(* Fluid *)

let test_fluid_single_transfer () =
  let d =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
        Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ())
  in
  close_to (Time.ms 10.0) d "1MB at 100MB/s"

let test_fluid_zero_bytes_instant () =
  let d =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
        Fluid.transfer f ~bytes_count:0 ~weight:1.0 ())
  in
  Alcotest.(check int) "instant" 0 d

let test_fluid_fair_sharing () =
  (* Two equal transfers share the bus; each effectively gets half. *)
  let d =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
        let done1 = Marcel.Ivar.create () and done2 = Marcel.Ivar.create () in
        Engine.spawn e ~name:"t1" (fun () ->
            Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ();
            Marcel.Ivar.fill done1 ());
        Engine.spawn e ~name:"t2" (fun () ->
            Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ();
            Marcel.Ivar.fill done2 ());
        Marcel.Ivar.read done1;
        Marcel.Ivar.read done2)
  in
  close_to (Time.ms 20.0) d "two 1MB transfers at 100MB/s shared"

let test_fluid_rate_cap () =
  let d =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
        Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ~rate_cap:10.0 ())
  in
  close_to (Time.ms 100.0) d "capped at 10MB/s"

let test_fluid_weighted_priority () =
  (* Capacity 90, A weight 2 / B weight 1, both 1 MB.
     Phase 1: A at 60, B at 30. A done at 16.667ms; B has 0.5MB left.
     Phase 2: B alone at 90: +5.556ms. Total 22.222ms. *)
  let b_done = ref Time.zero and a_done = ref Time.zero in
  let _ =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:90.0 () in
        let fin = Marcel.Ivar.create () and fin2 = Marcel.Ivar.create () in
        Engine.spawn e ~name:"a" (fun () ->
            Fluid.transfer f ~bytes_count:1_000_000 ~weight:2.0 ();
            a_done := Engine.now e;
            Marcel.Ivar.fill fin ());
        Engine.spawn e ~name:"b" (fun () ->
            Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ();
            b_done := Engine.now e;
            Marcel.Ivar.fill fin2 ());
        Marcel.Ivar.read fin;
        Marcel.Ivar.read fin2)
  in
  close_to (Time.us 16666.7) !a_done "heavy transfer finishes first";
  close_to (Time.us 22222.2) !b_done "light transfer finishes later"

let test_fluid_contention_factor () =
  (* Capacity 100 with factor 0.8: two concurrent transfers see 80 total. *)
  let d =
    run_timed (fun e ->
        let f =
          Fluid.create e ~name:"bus" ~capacity_mb_s:100.0
            ~contention_factor:0.8 ()
        in
        let fin = Marcel.Ivar.create () and fin2 = Marcel.Ivar.create () in
        Engine.spawn e ~name:"a" (fun () ->
            Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ();
            Marcel.Ivar.fill fin ());
        Engine.spawn e ~name:"b" (fun () ->
            Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ();
            Marcel.Ivar.fill fin2 ());
        Marcel.Ivar.read fin;
        Marcel.Ivar.read fin2)
  in
  close_to (Time.ms 25.0) d "2MB total at effective 80MB/s"

let test_fluid_sequential_full_rate () =
  (* A transfer starting after another finished sees the full capacity. *)
  let d =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
        Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ();
        Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ())
  in
  close_to (Time.ms 20.0) d "sequential transfers"

let test_fluid_total_bytes () =
  let total = ref 0.0 in
  let _ =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
        Fluid.transfer f ~bytes_count:1000 ~weight:1.0 ();
        Fluid.transfer f ~bytes_count:500 ~weight:1.0 ();
        total := Fluid.total_bytes f)
  in
  Alcotest.(check (float 0.01)) "bytes accounted" 1500.0 !total

let test_fluid_invalid_args () =
  let e = Engine.create () in
  Alcotest.check_raises "capacity" (Invalid_argument "Fluid.create: capacity <= 0")
    (fun () -> ignore (Fluid.create e ~name:"x" ~capacity_mb_s:0.0 ()));
  Alcotest.check_raises "factor"
    (Invalid_argument "Fluid.create: contention_factor out of (0,1]") (fun () ->
      ignore (Fluid.create e ~name:"x" ~capacity_mb_s:1.0 ~contention_factor:1.5 ()))

let prop_fluid_work_conservation =
  (* N concurrent random transfers on one resource: everything finishes,
     no earlier than perfect sharing allows (total/capacity) and no later
     than fully serialized execution. *)
  QCheck.Test.make ~name:"fluid work conservation bounds" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 8) (int_range 1 2_000_000))
    (fun sizes ->
      let e = Engine.create () in
      let f = Fluid.create e ~name:"bus" ~capacity_mb_s:100.0 () in
      List.iteri
        (fun i n ->
          Engine.spawn e ~name:(string_of_int i) (fun () ->
              Fluid.transfer f ~bytes_count:n ~weight:1.0 ()))
        sizes;
      Engine.run e;
      let total = List.fold_left ( + ) 0 sizes in
      let lower = Time.bytes_at_rate ~bytes_count:total ~mb_per_s:100.0 in
      let slack = Time.us 2.0 in
      let finished = Engine.now e in
      finished + slack >= lower
      && finished <= lower + slack
      && Float.abs (Fluid.total_bytes f -. float_of_int total) < 1.0)

let prop_fluid_conserves_time =
  (* A single uncontended transfer always takes bytes/min(cap,capacity). *)
  QCheck.Test.make ~name:"fluid single-transfer duration" ~count:100
    QCheck.(pair (int_range 1 10_000_000) (float_range 1.0 500.0))
    (fun (bytes_count, capacity) ->
      let e = Engine.create () in
      let f = Fluid.create e ~name:"bus" ~capacity_mb_s:capacity () in
      Engine.spawn e ~name:"t" (fun () ->
          Fluid.transfer f ~bytes_count ~weight:1.0 ());
      Engine.run e;
      let expect = Time.bytes_at_rate ~bytes_count ~mb_per_s:capacity in
      let d = abs (Engine.now e - expect) in
      d <= Time.us 1.0)

(* ------------------------------------------------------------------ *)
(* Node / Fabric *)

let test_node_pci_classes () =
  (* PIO is capped at the PIO rate even on an idle bus. *)
  let d =
    run_timed (fun e ->
        let n = Simnet.Node.create e ~name:"n0" ~id:0 in
        Simnet.Node.pci_pio n ~bytes_count:1_000_000)
  in
  close_to
    (Time.bytes_at_rate ~bytes_count:1_000_000
       ~mb_per_s:Simnet.Netparams.pci_pio_rate_cap_mb_s)
    d "PIO cap"

let test_node_pci_dma_starves_pio () =
  (* Concurrent DMA (weight 2) and PIO (weight 1): PIO gets a third of the
     degraded bus, reproducing the Fig. 11 arbitration asymmetry. *)
  let pio_done = ref Time.zero in
  let _ =
    run_timed (fun e ->
        let n = Simnet.Node.create e ~name:"gw" ~id:0 in
        let fin = Marcel.Ivar.create () and fin2 = Marcel.Ivar.create () in
        Engine.spawn e ~name:"dma" (fun () ->
            Simnet.Node.pci_dma n ~bytes_count:10_000_000;
            Marcel.Ivar.fill fin ());
        Engine.spawn e ~name:"pio" (fun () ->
            Simnet.Node.pci_pio n ~bytes_count:1_000_000;
            pio_done := Engine.now e;
            Marcel.Ivar.fill fin2 ());
        Marcel.Ivar.read fin;
        Marcel.Ivar.read fin2)
  in
  (* PIO vs DMA is a mixed-class workload: effective capacity =
     132 * mixed_factor; PIO's weighted share is a third of it. *)
  let expected =
    Time.bytes_at_rate ~bytes_count:1_000_000
      ~mb_per_s:(Simnet.Netparams.pci_capacity_mb_s
                 *. Simnet.Netparams.pci_mixed_contention_factor /. 3.0)
  in
  let d = abs (expected - !pio_done) in
  Alcotest.(check bool)
    (Printf.sprintf "PIO starved (expected ~%d, got %d)" expected !pio_done)
    true
    (d <= Time.us 50.0)

(* Stream: persistent FIFO pipeline *)

let test_stream_preserves_order () =
  (* A small message pushed right after a large one must not overtake it. *)
  let e = Engine.create () in
  let f = Fluid.create e ~name:"wire" ~capacity_mb_s:100.0 () in
  let st =
    Simnet.Stream.create e ~name:"s"
      ~stages:
        [
          Pipeline.stage
            ~use:{ Pipeline.fluid = f; weight = 1.0; rate_cap = None; cls = 0 }
            "wire";
        ]
      ~mtu:1024
  in
  let order = ref [] in
  Engine.spawn e ~name:"pusher" (fun () ->
      Simnet.Stream.push st ~bytes_count:100_000 ~on_delivered:(fun () ->
          order := "big" :: !order);
      Simnet.Stream.push st ~bytes_count:10 ~on_delivered:(fun () ->
          order := "small" :: !order));
  Engine.run e;
  Alcotest.(check (list string)) "fifo" [ "big"; "small" ] (List.rev !order)

let test_stream_pipelines_messages () =
  (* Two equal-cost stages: a second message overlaps the first. *)
  let e = Engine.create () in
  let f1 = Fluid.create e ~name:"s1" ~capacity_mb_s:100.0 () in
  let f2 = Fluid.create e ~name:"s2" ~capacity_mb_s:100.0 () in
  let st =
    Simnet.Stream.create e ~name:"s"
      ~stages:
        [
          Pipeline.stage
            ~use:{ Pipeline.fluid = f1; weight = 1.0; rate_cap = None; cls = 0 }
            "s1";
          Pipeline.stage
            ~use:{ Pipeline.fluid = f2; weight = 1.0; rate_cap = None; cls = 0 }
            "s2";
        ]
      ~mtu:100_000
  in
  let last = ref Time.zero in
  Engine.spawn e ~name:"pusher" (fun () ->
      for _ = 1 to 4 do
        Simnet.Stream.push st ~bytes_count:100_000 ~on_delivered:(fun () ->
            last := Engine.now e)
      done);
  Engine.run e;
  (* 1 MB at 100 MB/s per stage = 1 ms per stage per message; pipelined:
     (4 + 2 - 1) * 1ms = 5ms, not the 8ms of sequential execution. *)
  close_to (Time.ms 5.0) !last "pipelined stream"

let test_fabric_attach () =
  let e = Engine.create () in
  let fab =
    Simnet.Fabric.create e ~name:"myri" ~link:Simnet.Netparams.myrinet
  in
  let n0 = Simnet.Node.create e ~name:"n0" ~id:0 in
  let n1 = Simnet.Node.create e ~name:"n1" ~id:1 in
  Simnet.Fabric.attach fab n0;
  Simnet.Fabric.attach fab n1;
  Alcotest.(check bool) "attached" true (Simnet.Fabric.attached fab n0);
  Alcotest.(check int) "nodes" 2 (List.length (Simnet.Fabric.nodes fab));
  Alcotest.check_raises "double attach"
    (Invalid_argument "Fabric.attach: n0 already attached to myri") (fun () ->
      Simnet.Fabric.attach fab n0);
  let n2 = Simnet.Node.create e ~name:"n2" ~id:2 in
  Alcotest.(check bool) "not attached" false (Simnet.Fabric.attached fab n2);
  Alcotest.check_raises "tx of unattached"
    (Invalid_argument "Fabric.tx: node n2 not attached to fabric myri")
    (fun () -> ignore (Simnet.Fabric.tx fab n2));
  Alcotest.check_raises "rx of unattached"
    (Invalid_argument "Fabric.rx: node n2 not attached to fabric myri")
    (fun () -> ignore (Simnet.Fabric.rx fab n2))

(* ------------------------------------------------------------------ *)
(* Pipeline *)

let test_pipeline_latency_only () =
  (* One empty fragment through fixed costs and propagation. *)
  let d =
    run_timed (fun e ->
        Pipeline.run e
          ~stages:
            [
              Pipeline.stage ~per_fragment:(Time.us 1.0) ~prop:(Time.us 2.0) "sw";
              Pipeline.stage ~per_fragment:(Time.us 0.5) "rx";
            ]
          ~bytes_count:0 ~mtu:1024)
  in
  close_to (Time.us 3.5) d "latency path"

let test_pipeline_serialization () =
  (* 10 fragments of 1000B through a 100MB/s stage: 10 x 10us, then 5us
     propagation for the last fragment. *)
  let d =
    run_timed (fun e ->
        let f = Fluid.create e ~name:"wire" ~capacity_mb_s:100.0 () in
        Pipeline.run e
          ~stages:
            [
              Pipeline.stage
                ~use:{ Pipeline.fluid = f; weight = 1.0; rate_cap = None; cls = 0 }
                ~prop:(Time.us 5.0) "wire";
            ]
          ~bytes_count:10_000 ~mtu:1000)
  in
  close_to (Time.us 105.0) d "serialized fragments"

let test_pipeline_two_stages_overlap () =
  (* Two equal 100MB/s stages on separate resources: classic pipeline
     formula (n + s - 1) * t = (10 + 2 - 1) * 10us. *)
  let d =
    run_timed (fun e ->
        let f1 = Fluid.create e ~name:"s1" ~capacity_mb_s:100.0 () in
        let f2 = Fluid.create e ~name:"s2" ~capacity_mb_s:100.0 () in
        Pipeline.run e
          ~stages:
            [
              Pipeline.stage
                ~use:{ Pipeline.fluid = f1; weight = 1.0; rate_cap = None; cls = 0 }
                "s1";
              Pipeline.stage
                ~use:{ Pipeline.fluid = f2; weight = 1.0; rate_cap = None; cls = 0 }
                "s2";
            ]
          ~bytes_count:10_000 ~mtu:1000)
  in
  close_to (Time.us 110.0) d "pipelined stages overlap"

let test_pipeline_bottleneck_dominates () =
  (* Fast stage feeding a slow stage: throughput set by the slow one. *)
  let d =
    run_timed (fun e ->
        let fast = Fluid.create e ~name:"fast" ~capacity_mb_s:1000.0 () in
        let slow = Fluid.create e ~name:"slow" ~capacity_mb_s:10.0 () in
        Pipeline.run e
          ~stages:
            [
              Pipeline.stage
                ~use:{ Pipeline.fluid = fast; weight = 1.0; rate_cap = None; cls = 0 }
                "fast";
              Pipeline.stage
                ~use:{ Pipeline.fluid = slow; weight = 1.0; rate_cap = None; cls = 0 }
                "slow";
            ]
          ~bytes_count:1_000_000 ~mtu:10_000)
  in
  (* first fragment crosses fast stage in 10us; then 100 fragments of
     10kB at 10MB/s = 1ms each. *)
  close_to (Time.add (Time.us 10.0) (Time.ms 100.0)) d "bottleneck"

let test_pipeline_rejects_bad_args () =
  let e = Engine.create () in
  Engine.spawn e ~name:"t" (fun () ->
      Alcotest.check_raises "no stages"
        (Invalid_argument "Pipeline.run: no stages") (fun () ->
          Pipeline.run e ~stages:[] ~bytes_count:1 ~mtu:1);
      Alcotest.check_raises "mtu" (Invalid_argument "Pipeline.run: mtu <= 0")
        (fun () ->
          Pipeline.run e
            ~stages:[ Pipeline.stage "x" ]
            ~bytes_count:1 ~mtu:0));
  Engine.run e

let prop_pipeline_single_stage_duration =
  (* n fragments through one fluid stage = bytes/capacity regardless of
     fragmentation. *)
  QCheck.Test.make ~name:"pipeline single-stage total time" ~count:50
    QCheck.(pair (int_range 1 1_000_000) (int_range 64 65536))
    (fun (bytes_count, mtu) ->
      let e = Engine.create () in
      Engine.spawn e ~name:"t" (fun () ->
          let f = Fluid.create e ~name:"w" ~capacity_mb_s:100.0 () in
          Pipeline.run e
            ~stages:
              [
                Pipeline.stage
                  ~use:{ Pipeline.fluid = f; weight = 1.0; rate_cap = None; cls = 0 }
                  "w";
              ]
            ~bytes_count ~mtu);
      Engine.run e;
      let expect = Time.bytes_at_rate ~bytes_count ~mb_per_s:100.0 in
      let nfrag = (bytes_count + mtu - 1) / mtu in
      (* Each fragment completion can round up by 1ns. *)
      let slack = Time.us 1.0 + nfrag in
      abs (Engine.now e - expect) <= slack)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "simnet"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "int unbiased" `Quick test_rng_int_unbiased;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bytes" `Quick test_rng_bytes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          QCheck_alcotest.to_alcotest prop_stats_mean_matches_fold;
        ] );
      ( "fluid",
        [
          Alcotest.test_case "single transfer" `Quick test_fluid_single_transfer;
          Alcotest.test_case "zero bytes" `Quick test_fluid_zero_bytes_instant;
          Alcotest.test_case "fair sharing" `Quick test_fluid_fair_sharing;
          Alcotest.test_case "rate cap" `Quick test_fluid_rate_cap;
          Alcotest.test_case "weighted priority" `Quick
            test_fluid_weighted_priority;
          Alcotest.test_case "contention factor" `Quick
            test_fluid_contention_factor;
          Alcotest.test_case "sequential full rate" `Quick
            test_fluid_sequential_full_rate;
          Alcotest.test_case "total bytes" `Quick test_fluid_total_bytes;
          Alcotest.test_case "invalid args" `Quick test_fluid_invalid_args;
          QCheck_alcotest.to_alcotest prop_fluid_conserves_time;
          QCheck_alcotest.to_alcotest prop_fluid_work_conservation;
        ] );
      ( "node",
        [
          Alcotest.test_case "pci classes" `Quick test_node_pci_classes;
          Alcotest.test_case "dma starves pio" `Quick
            test_node_pci_dma_starves_pio;
        ] );
      ( "stream",
        [
          Alcotest.test_case "preserves order" `Quick
            test_stream_preserves_order;
          Alcotest.test_case "pipelines messages" `Quick
            test_stream_pipelines_messages;
        ] );
      ("fabric", [ Alcotest.test_case "attach" `Quick test_fabric_attach ]);
      ( "pipeline",
        [
          Alcotest.test_case "latency only" `Quick test_pipeline_latency_only;
          Alcotest.test_case "serialization" `Quick test_pipeline_serialization;
          Alcotest.test_case "two stages overlap" `Quick
            test_pipeline_two_stages_overlap;
          Alcotest.test_case "bottleneck dominates" `Quick
            test_pipeline_bottleneck_dominates;
          Alcotest.test_case "bad args" `Quick test_pipeline_rejects_bad_args;
          QCheck_alcotest.to_alcotest prop_pipeline_single_stage_duration;
        ] );
    ]
