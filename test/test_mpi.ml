(* Tests for the mini-MPI: matching semantics, collectives, and the
   Fig. 6 device comparison (MPICH/Madeleine vs direct SCI MPIs). *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Mpi = Mpilite.Mpi

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

let in_range ?(lo = 0.0) ~hi what v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" what v lo hi)
    true
    (v >= lo && v <= hi)

type mpi_world = { engine : Engine.t; world : Mpi.world }

(* n ranks over SCI, with the chosen MPI device. *)
let make_mpi_world ~n device_kind =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
  let nodes =
    List.init n (fun i ->
        let node = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric node;
        node)
  in
  let net = Sisci.make_net engine fabric in
  let adapters = Array.of_list (List.map (Sisci.attach net) nodes) in
  let ranks = List.init n Fun.id in
  let devices =
    match device_kind with
    | `Chmad ->
        let driver = Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)) in
        let session = Madeleine.Session.create engine in
        let channel = Madeleine.Channel.create session driver ~ranks () in
        Array.init n (fun rank -> Mpilite.Dev_chmad.make channel ~rank)
    | `Profile profile ->
        let states =
          Mpilite.Dev_scidirect.make_states profile (fun r -> adapters.(r)) ranks
        in
        Array.init n (fun rank ->
            Mpilite.Dev_scidirect.make profile
              ~adapters:(fun r -> adapters.(r))
              ~ranks ~states ~rank)
  in
  { engine; world = Mpi.create_world engine ~devices }

let spawn_rank w name f = Engine.spawn w.engine ~name f
let rank_ctx w r = Mpi.ctx w.world ~rank:r

(* ------------------------------------------------------------------ *)
(* Point-to-point semantics (over ch_mad) *)

let test_send_recv_roundtrip () =
  let w = make_mpi_world ~n:2 `Chmad in
  let data = payload 5000 1L in
  spawn_rank w "r0" (fun () ->
      Mpi.send (rank_ctx w 0) ~dst:1 ~tag:42 data);
  spawn_rank w "r1" (fun () ->
      let buf = Bytes.create 5000 in
      let st = Mpi.recv (rank_ctx w 1) ~src:0 ~tag:42 buf in
      Alcotest.(check int) "len" 5000 st.Mpi.status_len;
      Alcotest.(check int) "src" 0 st.Mpi.status_src;
      Alcotest.(check int) "tag" 42 st.Mpi.status_tag;
      Alcotest.(check bytes) "content" data buf);
  Engine.run w.engine

let test_any_source_any_tag () =
  let w = make_mpi_world ~n:3 `Chmad in
  spawn_rank w "r1" (fun () ->
      Engine.sleep (Time.us 50.0);
      Mpi.send (rank_ctx w 1) ~dst:0 ~tag:7 (Bytes.make 4 'x'));
  spawn_rank w "r2" (fun () ->
      Mpi.send (rank_ctx w 2) ~dst:0 ~tag:9 (Bytes.make 4 'y'));
  spawn_rank w "r0" (fun () ->
      let buf = Bytes.create 4 in
      let st1 = Mpi.recv (rank_ctx w 0) ~src:Mpi.any_source ~tag:Mpi.any_tag buf in
      Alcotest.(check int) "first from 2" 2 st1.Mpi.status_src;
      let st2 = Mpi.recv (rank_ctx w 0) ~src:Mpi.any_source ~tag:Mpi.any_tag buf in
      Alcotest.(check int) "then from 1" 1 st2.Mpi.status_src);
  Engine.run w.engine

let test_unexpected_messages_buffered () =
  let w = make_mpi_world ~n:2 `Chmad in
  let data = payload 300 2L in
  spawn_rank w "r0" (fun () ->
      Mpi.send (rank_ctx w 0) ~dst:1 ~tag:1 data;
      Mpi.send (rank_ctx w 0) ~dst:1 ~tag:2 (Bytes.make 8 'b'));
  spawn_rank w "r1" (fun () ->
      (* Receive in reverse tag order, long after arrival. *)
      Engine.sleep (Time.ms 1.0);
      let b2 = Bytes.create 8 and b1 = Bytes.create 300 in
      ignore (Mpi.recv (rank_ctx w 1) ~src:0 ~tag:2 b2);
      ignore (Mpi.recv (rank_ctx w 1) ~src:0 ~tag:1 b1);
      Alcotest.(check bytes) "tag1 content" data b1;
      Alcotest.(check bytes) "tag2 content" (Bytes.make 8 'b') b2);
  Engine.run w.engine

let test_tag_order_preserved_same_tag () =
  let w = make_mpi_world ~n:2 `Chmad in
  spawn_rank w "r0" (fun () ->
      for i = 1 to 5 do
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int i);
        Mpi.send (rank_ctx w 0) ~dst:1 ~tag:3 b
      done);
  spawn_rank w "r1" (fun () ->
      for i = 1 to 5 do
        let b = Bytes.create 8 in
        ignore (Mpi.recv (rank_ctx w 1) ~src:0 ~tag:3 b);
        Alcotest.(check int) "fifo" i (Int64.to_int (Bytes.get_int64_le b 0))
      done);
  Engine.run w.engine

let test_isend_irecv_waitall () =
  let w = make_mpi_world ~n:2 `Chmad in
  spawn_rank w "r0" (fun () ->
      let reqs =
        List.init 4 (fun i ->
            Mpi.isend (rank_ctx w 0) ~dst:1 ~tag:i (Bytes.make 100 (Char.chr (65 + i))))
      in
      ignore (Mpi.waitall reqs));
  spawn_rank w "r1" (fun () ->
      let bufs = List.init 4 (fun _ -> Bytes.create 100) in
      let reqs =
        List.mapi (fun i b -> Mpi.irecv (rank_ctx w 1) ~src:0 ~tag:i b) bufs
      in
      ignore (Mpi.waitall reqs);
      List.iteri
        (fun i b ->
          Alcotest.(check char) "content" (Char.chr (65 + i)) (Bytes.get b 0))
        bufs);
  Engine.run w.engine

let test_probe () =
  let w = make_mpi_world ~n:2 `Chmad in
  spawn_rank w "r0" (fun () ->
      Engine.sleep (Time.us 30.0);
      Mpi.send (rank_ctx w 0) ~dst:1 ~tag:5 (Bytes.create 64));
  spawn_rank w "r1" (fun () ->
      let c = rank_ctx w 1 in
      Alcotest.(check bool) "iprobe empty" true (Mpi.iprobe c ~src:0 ~tag:5 = None);
      let st = Mpi.probe c ~src:Mpi.any_source ~tag:Mpi.any_tag in
      Alcotest.(check int) "probe len" 64 st.Mpi.status_len;
      let buf = Bytes.create 64 in
      ignore (Mpi.recv c ~src:0 ~tag:5 buf));
  Engine.run w.engine

let test_message_too_large_rejected () =
  let w = make_mpi_world ~n:2 `Chmad in
  spawn_rank w "r0" (fun () ->
      Mpi.send (rank_ctx w 0) ~dst:1 ~tag:0 (Bytes.create 128));
  spawn_rank w "r1" (fun () ->
      Engine.sleep (Time.ms 1.0);
      Alcotest.check_raises "too large"
        (Invalid_argument "Mpi.recv: message larger than buffer") (fun () ->
          ignore (Mpi.recv (rank_ctx w 1) ~src:0 ~tag:0 (Bytes.create 16))));
  Engine.run w.engine

(* ------------------------------------------------------------------ *)
(* Collectives (5 ranks: exercises non-power-of-two trees) *)

let run_collective n f =
  let w = make_mpi_world ~n `Chmad in
  for r = 0 to n - 1 do
    spawn_rank w (Printf.sprintf "r%d" r) (fun () -> f (rank_ctx w r) r)
  done;
  Engine.run w.engine

let test_barrier_synchronizes () =
  let n = 5 in
  let release = ref Time.zero in
  let w = make_mpi_world ~n `Chmad in
  for r = 0 to n - 1 do
    spawn_rank w (Printf.sprintf "r%d" r) (fun () ->
        Engine.sleep (Time.us (float_of_int (r * 100)));
        Mpi.barrier (rank_ctx w r);
        (* Nobody exits before the slowest entered at 400us. *)
        if Time.compare (Engine.now w.engine) (Time.us 400.0) < 0 then
          Alcotest.failf "rank %d left the barrier early" r;
        if r = 0 then release := Engine.now w.engine)
  done;
  Engine.run w.engine;
  Alcotest.(check bool) "released" true (Time.compare !release Time.zero > 0)

let test_bcast_delivers_to_all () =
  let n = 5 in
  let data = payload 2000 3L in
  run_collective n (fun c r ->
      let buf = if r = 2 then Bytes.copy data else Bytes.create 2000 in
      Mpi.bcast c ~root:2 buf;
      Alcotest.(check bytes) (Printf.sprintf "rank %d" r) data buf)

let int_sum a b =
  let r = Bytes.create 8 in
  Bytes.set_int64_le r 0
    (Int64.add (Bytes.get_int64_le a 0) (Bytes.get_int64_le b 0));
  r

let test_reduce_sums () =
  let n = 5 in
  run_collective n (fun c r ->
      let mine = Bytes.create 8 in
      Bytes.set_int64_le mine 0 (Int64.of_int (r + 1));
      let result = Mpi.reduce c ~root:1 ~op:int_sum mine in
      if r = 1 then
        Alcotest.(check int) "sum 1..5" 15
          (Int64.to_int (Bytes.get_int64_le result 0)))

let test_allreduce () =
  let n = 4 in
  run_collective n (fun c r ->
      let mine = Bytes.create 8 in
      Bytes.set_int64_le mine 0 (Int64.of_int (10 * (r + 1)));
      let result = Mpi.allreduce c ~op:int_sum mine in
      Alcotest.(check int)
        (Printf.sprintf "rank %d sees total" r)
        100
        (Int64.to_int (Bytes.get_int64_le result 0)))

let test_gather () =
  let n = 4 in
  run_collective n (fun c r ->
      let mine = Bytes.make 4 (Char.chr (48 + r)) in
      match Mpi.gather c ~root:0 mine with
      | Some parts ->
          Alcotest.(check int) "root" 0 r;
          Array.iteri
            (fun i p ->
              Alcotest.(check char) "part" (Char.chr (48 + i)) (Bytes.get p 0))
            parts
      | None -> Alcotest.(check bool) "non root" true (r <> 0))

let test_scatter () =
  let n = 4 in
  run_collective n (fun c r ->
      let parts =
        if r = 1 then
          Some (Array.init n (fun i -> Bytes.make 16 (Char.chr (65 + i))))
        else None
      in
      let mine = Mpi.scatter c ~root:1 parts in
      Alcotest.(check char)
        (Printf.sprintf "rank %d part" r)
        (Char.chr (65 + r))
        (Bytes.get mine 0))

let test_alltoall () =
  let n = 4 in
  run_collective n (fun c r ->
      let blocks =
        Array.init n (fun j ->
            let b = Bytes.create 8 in
            Bytes.set_int64_le b 0 (Int64.of_int ((r * 100) + j));
            b)
      in
      let got = Mpi.alltoall c blocks in
      Array.iteri
        (fun i b ->
          Alcotest.(check int)
            (Printf.sprintf "rank %d slot %d" r i)
            ((i * 100) + r)
            (Int64.to_int (Bytes.get_int64_le b 0)))
        got)

let test_sendrecv_ring () =
  (* Every rank sends to its right neighbour and receives from its left,
     all simultaneously — without sendrecv this shape deadlocks under
     rendezvous. *)
  let n = 5 in
  run_collective n (fun c r ->
      let out = Bytes.create 20_000 in
      Bytes.set_int64_le out 0 (Int64.of_int r);
      let inc = Bytes.create 20_000 in
      let st =
        Mpi.sendrecv c ~dst:((r + 1) mod n) ~send_tag:9 out
          ~src:((r + n - 1) mod n) ~recv_tag:9 inc
      in
      Alcotest.(check int) "from left" ((r + n - 1) mod n) st.Mpi.status_src;
      Alcotest.(check int) "payload" ((r + n - 1) mod n)
        (Int64.to_int (Bytes.get_int64_le inc 0)))

(* ------------------------------------------------------------------ *)
(* Communicators *)

let test_comm_split_groups () =
  (* Six ranks split into odd/even groups; each group allreduces its own
     sum and broadcasts a token — fully isolated from the other group. *)
  let n = 6 in
  run_collective n (fun c r ->
      let world = Mpi.comm_world c in
      Alcotest.(check int) "world rank" r (Mpi.comm_rank world);
      Alcotest.(check int) "world size" n (Mpi.comm_size world);
      (* Reverse ordering within the group via the key. *)
      let sub = Mpi.comm_split world ~color:(r mod 2) ~key:(-r) in
      Alcotest.(check int) "group size" 3 (Mpi.comm_size sub);
      (* key = -r: highest world rank gets comm rank 0. *)
      let expect_index =
        match r with
        | 4 | 5 -> 0
        | 2 | 3 -> 1
        | _ -> 2
      in
      Alcotest.(check int) "my comm rank" expect_index (Mpi.comm_rank sub);
      let mine = Bytes.create 8 in
      Bytes.set_int64_le mine 0 (Int64.of_int r);
      let total = Mpi.callreduce sub ~op:int_sum mine in
      let expect_sum = if r mod 2 = 0 then 0 + 2 + 4 else 1 + 3 + 5 in
      Alcotest.(check int)
        (Printf.sprintf "rank %d group sum" r)
        expect_sum
        (Int64.to_int (Bytes.get_int64_le total 0)))

let test_comm_p2p_isolated () =
  (* Same tag, same world ranks, two different communicators: messages
     must match within their own communicator only. *)
  let n = 4 in
  run_collective n (fun c r ->
      let world = Mpi.comm_world c in
      (* Two overlapping comms: {0,1,2,3} split as pairs two ways. *)
      let by_low = Mpi.comm_split world ~color:(r / 2) ~key:r in
      let by_parity = Mpi.comm_split world ~color:(r mod 2) ~key:r in
      (* In by_low, partner is comm-rank (1 - my rank); same in parity. *)
      let exchange comm marker =
        let me = Mpi.comm_rank comm in
        let partner = 1 - me in
        let out = Bytes.make 8 marker in
        let inc = Bytes.create 8 in
        if me = 0 then begin
          Mpi.csend comm ~dst:partner ~tag:77 out;
          ignore (Mpi.crecv comm ~src:partner ~tag:77 inc)
        end
        else begin
          ignore (Mpi.crecv comm ~src:partner ~tag:77 inc);
          Mpi.csend comm ~dst:partner ~tag:77 out
        end;
        Alcotest.(check char) "right stream" marker (Bytes.get inc 0)
      in
      exchange by_low 'L';
      exchange by_parity 'P';
      Mpi.cbarrier by_low)

let test_comm_bcast_subgroup () =
  let n = 5 in
  run_collective n (fun c r ->
      let world = Mpi.comm_world c in
      (* Ranks >= 2 form a group; 0 and 1 each form singleton-ish pair. *)
      let color = if r >= 2 then 1 else 0 in
      let sub = Mpi.comm_split world ~color ~key:r in
      if color = 1 then begin
        let buf =
          if Mpi.comm_rank sub = 0 then Bytes.make 16 '!' else Bytes.create 16
        in
        Mpi.cbcast sub ~root:0 buf;
        Alcotest.(check bytes) "subgroup bcast" (Bytes.make 16 '!') buf
      end)

(* ------------------------------------------------------------------ *)
(* Fig. 6: the device comparison *)

let mpi_pingpong kind ~bytes_count ~iters =
  let w = make_mpi_world ~n:2 kind in
  let data = payload bytes_count 9L in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  spawn_rank w "ping" (fun () ->
      let c = rank_ctx w 0 in
      t0 := Engine.now w.engine;
      for _ = 1 to iters do
        Mpi.send c ~dst:1 ~tag:0 data;
        ignore (Mpi.recv c ~src:1 ~tag:0 data)
      done;
      t1 := Engine.now w.engine);
  spawn_rank w "pong" (fun () ->
      let c = rank_ctx w 1 in
      let buf = Bytes.create bytes_count in
      for _ = 1 to iters do
        ignore (Mpi.recv c ~src:0 ~tag:0 buf);
        Mpi.send c ~dst:0 ~tag:0 buf
      done);
  Engine.run w.engine;
  Time.diff !t1 !t0 / (2 * iters)

let test_fig6_latencies () =
  (* Paper: MPICH/Madeleine latency "does not compare favorably" to the
     direct MPI implementations. *)
  let chmad = Time.to_us (mpi_pingpong `Chmad ~bytes_count:4 ~iters:30) in
  let scimpich =
    Time.to_us
      (mpi_pingpong (`Profile Mpilite.Dev_scidirect.sci_mpich) ~bytes_count:4
         ~iters:30)
  in
  let scampi =
    Time.to_us
      (mpi_pingpong (`Profile Mpilite.Dev_scidirect.scampi) ~bytes_count:4
         ~iters:30)
  in
  in_range ~lo:6.0 ~hi:12.0 "chmad latency" chmad;
  in_range ~lo:3.0 ~hi:7.0 "sci-mpich latency" scimpich;
  in_range ~lo:4.0 ~hi:8.0 "scampi latency" scampi;
  Alcotest.(check bool)
    (Printf.sprintf "chmad %.1f worst latency (vs %.1f, %.1f)" chmad scimpich
       scampi)
    true
    (chmad > scimpich && chmad > scampi)

let test_fig6_bandwidth_crossover () =
  (* Paper: the ch_mad module provides the best bandwidth for messages of
     32 kB and above, approaching raw Madeleine. *)
  let bw kind n =
    Time.rate_mb_s ~bytes_count:n (mpi_pingpong kind ~bytes_count:n ~iters:4)
  in
  let large = 1 lsl 20 in
  let chmad = bw `Chmad large in
  let scimpich = bw (`Profile Mpilite.Dev_scidirect.sci_mpich) large in
  let scampi = bw (`Profile Mpilite.Dev_scidirect.scampi) large in
  in_range ~lo:72.0 ~hi:84.0 "chmad 1MB" chmad;
  Alcotest.(check bool)
    (Printf.sprintf "chmad best at 1MB: %.1f > %.1f, %.1f" chmad scampi scimpich)
    true
    (chmad > scampi && chmad > scimpich);
  (* And at small-mid sizes the direct implementations still lead. *)
  let small = 4096 in
  let chmad_s = bw `Chmad small in
  let scampi_s = bw (`Profile Mpilite.Dev_scidirect.scampi) small in
  Alcotest.(check bool)
    (Printf.sprintf "scampi leads at 4kB: %.1f > %.1f" scampi_s chmad_s)
    true (scampi_s > chmad_s)

(* ------------------------------------------------------------------ *)
(* Madeleine on top of MPI (paper §5.3 / §7): the stack turned around. *)

let make_mad_over_mpi_world () =
  let w = make_mpi_world ~n:2 (`Profile Mpilite.Dev_scidirect.scampi) in
  let session =
    Madeleine.Session.create w.engine
  in
  let driver = Mpilite.Pmm_mpi.driver (fun r -> rank_ctx w r) in
  let channel = Madeleine.Channel.create session driver ~ranks:[ 0; 1 ] () in
  (w, channel)

let test_madeleine_over_mpi_roundtrip () =
  let w, channel = make_mad_over_mpi_world () in
  let module Mad = Madeleine.Api in
  let ep0 = Madeleine.Channel.endpoint channel ~rank:0 in
  let ep1 = Madeleine.Channel.endpoint channel ~rank:1 in
  let hdr = payload 8 11L and body = payload 60_000 12L in
  spawn_rank w "sender" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc ~r_mode:Madeleine.Iface.Receive_express hdr;
      Mad.pack oc body;
      Mad.end_packing oc);
  spawn_rank w "receiver" (fun () ->
      let ic = Mad.begin_unpacking ep1 in
      let h = Bytes.create 8 and b = Bytes.create 60_000 in
      Mad.unpack ic ~r_mode:Madeleine.Iface.Receive_express h;
      Mad.unpack ic b;
      Mad.end_unpacking ic;
      Alcotest.(check bytes) "hdr" hdr h;
      Alcotest.(check bytes) "body" body b;
      Alcotest.(check int) "source" 0 (Mad.remote_rank ic));
  Engine.run w.engine

let test_madeleine_over_mpi_sequence () =
  let w, channel = make_mad_over_mpi_world () in
  let module Mad = Madeleine.Api in
  let ep0 = Madeleine.Channel.endpoint channel ~rank:0 in
  let ep1 = Madeleine.Channel.endpoint channel ~rank:1 in
  let got = ref [] in
  spawn_rank w "sender" (fun () ->
      for i = 1 to 5 do
        let b = Bytes.create 16 in
        Bytes.set_int64_le b 0 (Int64.of_int i);
        let oc = Mad.begin_packing ep0 ~remote:1 in
        Mad.pack oc b;
        Mad.end_packing oc
      done);
  spawn_rank w "receiver" (fun () ->
      for _ = 1 to 5 do
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        let b = Bytes.create 16 in
        Mad.unpack ic b;
        Mad.end_unpacking ic;
        got := Int64.to_int (Bytes.get_int64_le b 0) :: !got
      done);
  Engine.run w.engine;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !got)

(* ------------------------------------------------------------------ *)
(* MPI across clusters of clusters: ch_mad over a virtual channel. *)

let make_hetero_mpi_world () =
  (* Ranks 0 (SCI cluster), 1 (gateway), 2 (Myrinet cluster). *)
  let w = Harness.two_cluster_world () in
  let vc =
    Madeleine.Vchannel.create w.Harness.cw_session ~mtu:16384
      [ w.Harness.ch_sci; w.Harness.ch_myri ]
  in
  let devices = Array.init 3 (fun rank -> Mpilite.Dev_chmad_v.make vc ~rank) in
  let world = Mpi.create_world w.Harness.cw_engine ~devices in
  (w.Harness.cw_engine, world)

let test_hetero_mpi_p2p () =
  let engine, world = make_hetero_mpi_world () in
  let data = payload 100_000 91L in
  Engine.spawn engine ~name:"r0" (fun () ->
      (* 0 -> 2 crosses the gateway. *)
      Mpi.send (Mpi.ctx world ~rank:0) ~dst:2 ~tag:5 data);
  Engine.spawn engine ~name:"r2" (fun () ->
      let buf = Bytes.create 100_000 in
      let st = Mpi.recv (Mpi.ctx world ~rank:2) ~src:0 ~tag:5 buf in
      Alcotest.(check int) "len" 100_000 st.Mpi.status_len;
      Alcotest.(check bytes) "content across gateway" data buf);
  Engine.run engine

let test_hetero_mpi_allreduce () =
  let engine, world = make_hetero_mpi_world () in
  for r = 0 to 2 do
    Engine.spawn engine ~name:(Printf.sprintf "r%d" r) (fun () ->
        let c = Mpi.ctx world ~rank:r in
        let mine = Bytes.create 8 in
        Bytes.set_int64_le mine 0 (Int64.of_int ((r + 1) * 10));
        let total = Mpi.allreduce c ~op:int_sum mine in
        Alcotest.(check int)
          (Printf.sprintf "rank %d total" r)
          60
          (Int64.to_int (Bytes.get_int64_le total 0)))
  done;
  Engine.run engine

(* ------------------------------------------------------------------ *)
(* Fault-tolerance: dead peers mid-collective. *)

(* Regression: a barrier over a world where two ranks never show up
   used to block every survivor forever in vrecv. With a liveness
   predicate installed, each survivor now fails typed, naming the rank
   it was waiting on (binomial fan-in at n=4: 0 waits on 1, 2 waits
   on 3). *)
let test_collective_failure_typed () =
  let w = make_mpi_world ~n:4 `Chmad in
  let alive r = r <> 1 && r <> 3 in
  let failures = ref [] in
  List.iter
    (fun r ->
      spawn_rank w (Printf.sprintf "r%d" r) (fun () ->
          let c = rank_ctx w r in
          Mpi.set_liveness c (Some alive);
          match Mpi.barrier c with
          | () -> Alcotest.failf "rank %d: barrier completed" r
          | exception Mpi.Collective_failed msg ->
              failures := (r, msg) :: !failures))
    [ 0; 2 ];
  Engine.run w.engine;
  let msg_of r = List.assoc r !failures in
  Alcotest.(check int) "both survivors failed" 2 (List.length !failures);
  let names_dead ~dead msg =
    let prefix = Printf.sprintf "rank %d died" dead in
    Alcotest.(check bool)
      (Printf.sprintf "%S names rank %d" msg dead)
      true
      (String.length msg >= String.length prefix
      && String.sub msg 0 (String.length prefix) = prefix)
  in
  names_dead ~dead:1 (msg_of 0);
  names_dead ~dead:3 (msg_of 2)

(* Retargeting the world collectives onto the vchannel's fault-tolerant
   spanning trees keeps the MPI-level semantics: barrier synchronizes,
   allreduce sums, bcast delivers. *)
let test_use_collectives_retarget () =
  let w = Harness.two_cluster_world () in
  let engine = w.Harness.cw_engine in
  let vc =
    Madeleine.Vchannel.create w.Harness.cw_session ~mtu:16384
      [ w.Harness.ch_sci; w.Harness.ch_myri ]
  in
  let devices = Array.init 3 (fun rank -> Mpilite.Dev_chmad_v.make vc ~rank) in
  let world = Mpi.create_world engine ~devices in
  let coll = Madeleine.Collectives.create vc in
  Mpi.use_collectives world coll;
  for r = 0 to 2 do
    Engine.spawn engine ~name:(Printf.sprintf "r%d" r) (fun () ->
        let c = Mpi.ctx world ~rank:r in
        Mpi.barrier c;
        let mine = Bytes.create 8 in
        Bytes.set_int64_le mine 0 (Int64.of_int ((r + 1) * 10));
        let total = Mpi.allreduce c ~op:int_sum mine in
        Alcotest.(check int)
          (Printf.sprintf "rank %d allreduce" r)
          60
          (Int64.to_int (Bytes.get_int64_le total 0));
        let msg = Bytes.make 5 (if r = 1 then '!' else '.') in
        Mpi.bcast c ~root:1 msg;
        Alcotest.(check bytes)
          (Printf.sprintf "rank %d bcast" r)
          (Bytes.make 5 '!') msg)
  done;
  Engine.run engine;
  let st = Madeleine.Collectives.stats coll in
  Alcotest.(check bool)
    "tree collectives actually ran" true
    (st.Madeleine.Collectives.packets > 0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "mpi"
    [
      ( "p2p",
        [
          Alcotest.test_case "roundtrip" `Quick test_send_recv_roundtrip;
          Alcotest.test_case "any source/tag" `Quick test_any_source_any_tag;
          Alcotest.test_case "unexpected buffered" `Quick
            test_unexpected_messages_buffered;
          Alcotest.test_case "same-tag fifo" `Quick
            test_tag_order_preserved_same_tag;
          Alcotest.test_case "isend/irecv" `Quick test_isend_irecv_waitall;
          Alcotest.test_case "probe" `Quick test_probe;
          Alcotest.test_case "too large" `Quick test_message_too_large_rejected;
        ] );
      ( "collectives",
        [
          Alcotest.test_case "barrier" `Quick test_barrier_synchronizes;
          Alcotest.test_case "bcast" `Quick test_bcast_delivers_to_all;
          Alcotest.test_case "reduce" `Quick test_reduce_sums;
          Alcotest.test_case "allreduce" `Quick test_allreduce;
          Alcotest.test_case "gather" `Quick test_gather;
          Alcotest.test_case "scatter" `Quick test_scatter;
          Alcotest.test_case "alltoall" `Quick test_alltoall;
          Alcotest.test_case "sendrecv ring" `Quick test_sendrecv_ring;
        ] );
      ( "communicators",
        [
          Alcotest.test_case "split groups" `Quick test_comm_split_groups;
          Alcotest.test_case "p2p isolation" `Quick test_comm_p2p_isolated;
          Alcotest.test_case "subgroup bcast" `Quick test_comm_bcast_subgroup;
        ] );
      ( "fig6",
        [
          Alcotest.test_case "latencies" `Quick test_fig6_latencies;
          Alcotest.test_case "bandwidth crossover" `Quick
            test_fig6_bandwidth_crossover;
        ] );
      ( "heterogeneous mpi",
        [
          Alcotest.test_case "p2p across gateway" `Quick test_hetero_mpi_p2p;
          Alcotest.test_case "allreduce across clusters" `Quick
            test_hetero_mpi_allreduce;
        ] );
      ( "fault tolerance",
        [
          Alcotest.test_case "collective failure surfaces typed" `Quick
            test_collective_failure_typed;
          Alcotest.test_case "retargeted collectives" `Quick
            test_use_collectives_retarget;
        ] );
      ( "madeleine over mpi",
        [
          Alcotest.test_case "roundtrip" `Quick
            test_madeleine_over_mpi_roundtrip;
          Alcotest.test_case "message sequence" `Quick
            test_madeleine_over_mpi_sequence;
        ] );
    ]
