(* Tests for the declarative cluster-description loader. *)

module Engine = Marcel.Engine
module Mad = Madeleine.Api
module Cf = Clusterfile

let two_cluster_cfg =
  {|
# comment line
network sci   type=sisci
network myri  type=bip

node a   nets=sci
node gw  nets=sci,myri
node b   nets=myri

channel  c-sci   net=sci   nodes=a,gw
channel  c-myri  net=myri  nodes=gw,b
vchannel wan  channels=c-sci,c-myri  mtu=8192
|}

let test_parse_inventory () =
  let t = Cf.load two_cluster_cfg in
  Alcotest.(check (list string)) "networks" [ "sci"; "myri" ] (Cf.networks t);
  Alcotest.(check (list string)) "nodes" [ "a"; "gw"; "b" ] (Cf.nodes t);
  Alcotest.(check (list string)) "channels" [ "c-sci"; "c-myri" ]
    (Cf.channels t);
  Alcotest.(check (list string)) "vchannels" [ "wan" ] (Cf.vchannels t);
  Alcotest.(check int) "rank a" 0 (Cf.rank_of t "a");
  Alcotest.(check int) "rank gw" 1 (Cf.rank_of t "gw");
  Alcotest.(check int) "rank b" 2 (Cf.rank_of t "b");
  Alcotest.(check (list int)) "channel ranks" [ 0; 1 ]
    (Madeleine.Channel.ranks (Cf.channel t "c-sci"))

let test_config_built_channel_works () =
  let t = Cf.load two_cluster_cfg in
  let chan = Cf.channel t "c-sci" in
  let data = Harness.payload 5000 81L in
  let sink = Bytes.create 5000 in
  Engine.spawn (Cf.engine t) ~name:"s" (fun () ->
      let oc =
        Mad.begin_packing (Madeleine.Channel.endpoint chan ~rank:0) ~remote:1
      in
      Mad.pack oc data;
      Mad.end_packing oc);
  Engine.spawn (Cf.engine t) ~name:"r" (fun () ->
      let ic =
        Mad.begin_unpacking_from
          (Madeleine.Channel.endpoint chan ~rank:1)
          ~remote:0
      in
      Mad.unpack ic sink;
      Mad.end_unpacking ic);
  Engine.run (Cf.engine t);
  Alcotest.(check bytes) "content" data sink

let test_config_built_vchannel_forwards () =
  let t = Cf.load two_cluster_cfg in
  let vc = Cf.vchannel t "wan" in
  Alcotest.(check int) "route a->b" 2
    (Madeleine.Vchannel.route_length vc ~src:(Cf.rank_of t "a")
       ~dst:(Cf.rank_of t "b"));
  let data = Harness.payload 40_000 82L in
  let sink = Bytes.create 40_000 in
  Engine.spawn (Cf.engine t) ~name:"s" (fun () ->
      let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2 in
      Madeleine.Vchannel.pack oc data;
      Madeleine.Vchannel.end_packing oc);
  Engine.spawn (Cf.engine t) ~name:"r" (fun () ->
      let ic = Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0 in
      Madeleine.Vchannel.unpack ic sink;
      Madeleine.Vchannel.end_unpacking ic);
  Engine.run (Cf.engine t);
  Alcotest.(check bytes) "content through config-built gateway" data sink

let test_load_file () =
  let path = Filename.temp_file "cluster" ".cfg" in
  let oc = open_out path in
  output_string oc two_cluster_cfg;
  close_out oc;
  let t = Cf.load_file path in
  Sys.remove path;
  Alcotest.(check (list string)) "nodes" [ "a"; "gw"; "b" ] (Cf.nodes t)

let test_channel_options_parsed () =
  let t =
    Cf.load
      {|
network sci type=sisci
node x nets=sci
node y nets=sci
channel c net=sci nodes=x,y slots=1 aggregation=false rx=interrupt checked=false
|}
  in
  let cfg = Madeleine.Channel.config (Cf.channel t "c") in
  Alcotest.(check int) "slots" 1 cfg.Madeleine.Config.sisci_ring_slots;
  Alcotest.(check bool) "aggregation" false cfg.Madeleine.Config.aggregation;
  Alcotest.(check bool) "checked" false cfg.Madeleine.Config.checked;
  Alcotest.(check bool) "rx" true
    (cfg.Madeleine.Config.rx_interaction = Madeleine.Config.Rx_interrupt)

let expect_parse_error ~line text =
  match Cf.load text with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Cf.Parse_error (l, _) ->
      Alcotest.(check int) "error line" line l

let test_flow_control_options_parsed () =
  (* Network-level credits= lands on the BIP short-message window;
     vchannel-level credits=/gw_pool= arm end-to-end flow control. The
     config must load and the credit-armed vchannel must still forward. *)
  let t =
    Cf.load
      {|
network sci  type=sisci
network myri type=bip credits=6
node a  nets=sci
node gw nets=sci,myri
node b  nets=myri
channel c-sci  net=sci  nodes=a,gw
channel c-myri net=myri nodes=gw,b
vchannel wan channels=c-sci,c-myri mtu=4096 credits=4 gw_pool=2
|}
  in
  let vc = Cf.vchannel t "wan" in
  let data = Harness.payload 20_000 83L in
  let sink = Bytes.create 20_000 in
  Engine.spawn (Cf.engine t) ~name:"s" (fun () ->
      let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2 in
      Madeleine.Vchannel.pack oc data;
      Madeleine.Vchannel.end_packing oc);
  Engine.spawn (Cf.engine t) ~name:"r" (fun () ->
      let ic = Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0 in
      Madeleine.Vchannel.unpack ic sink;
      Madeleine.Vchannel.end_unpacking ic);
  Engine.run (Cf.engine t);
  Alcotest.(check bytes) "content through credit-armed gateway" data sink;
  Alcotest.(check bool) "credit plane armed" true
    (Madeleine.Vchannel.credit_stats vc <> None);
  Alcotest.(check bool) "gateway pool bound in force" true
    (List.exists
       (fun q ->
         q.Madeleine.Vchannel.q_point = "gateway_pool_slots"
         && q.Madeleine.Vchannel.q_bound <> None)
       (Madeleine.Vchannel.queue_stats vc))

let test_flow_control_option_errors () =
  (* credits= at network level only means something for bip's
     short-message window: any other kind must be rejected, on the
     offending line. *)
  expect_parse_error ~line:1 "network t type=tcp credits=8";
  expect_parse_error ~line:2
    "network m type=bip\nnetwork s type=sisci credits=8";
  (* gw_pool= is a vchannel option, never a network one. *)
  expect_parse_error ~line:1 "network m type=bip gw_pool=2";
  (* Both demand integers >= 1 wherever they are legal. *)
  expect_parse_error ~line:1 "network m type=bip credits=0";
  expect_parse_error ~line:5
    "network s type=sisci\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b\nvchannel v channels=c credits=0";
  expect_parse_error ~line:5
    "network s type=sisci\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b\nvchannel v channels=c gw_pool=none"

let test_sched_options_parsed () =
  (* sched=aggreg with explicit knobs must load, arm the scheduler
     (sched_stats becomes Some) and still deliver through the gateway. *)
  let t =
    Cf.load
      {|
network sci  type=sisci
network myri type=bip
node a  nets=sci
node gw nets=sci,myri
node b  nets=myri
channel c-sci  net=sci  nodes=a,gw
channel c-myri net=myri nodes=gw,b
vchannel wan channels=c-sci,c-myri mtu=4096 sched=aggreg aggr_max=2048 aggr_flush_us=25
|}
  in
  let vc = Cf.vchannel t "wan" in
  let data = Harness.payload 300 84L in
  let sink = Bytes.create 300 in
  Engine.spawn (Cf.engine t) ~name:"s" (fun () ->
      let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2 in
      Madeleine.Vchannel.pack oc data;
      Madeleine.Vchannel.end_packing oc);
  Engine.spawn (Cf.engine t) ~name:"r" (fun () ->
      let ic = Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0 in
      Madeleine.Vchannel.unpack ic sink;
      Madeleine.Vchannel.end_unpacking ic);
  Engine.run (Cf.engine t);
  Alcotest.(check bytes) "content through scheduled gateway" data sink;
  Alcotest.(check bool) "scheduler armed" true
    (Madeleine.Vchannel.sched_stats vc <> None);
  (* sched=fifo is the inert spelling: accepted, no scheduler state. *)
  let t2 =
    Cf.load
      {|
network s type=sisci
node a nets=s
node b nets=s
channel c net=s nodes=a,b
vchannel v channels=c sched=fifo
|}
  in
  Alcotest.(check bool) "fifo keeps scheduler off" true
    (Madeleine.Vchannel.sched_stats (Cf.vchannel t2 "v") = None)

let test_sched_option_errors () =
  let vc_line opts =
    "network s type=sisci\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b\nvchannel v channels=c " ^ opts
  in
  (* Only the two strategy names exist. *)
  expect_parse_error ~line:5 (vc_line "sched=lifo");
  (* The aggregation knobs mean nothing without (or with a non-
     aggregating) sched= — reject on the vchannel's line. *)
  expect_parse_error ~line:5 (vc_line "aggr_max=2048");
  expect_parse_error ~line:5 (vc_line "aggr_flush_us=25");
  expect_parse_error ~line:5 (vc_line "sched=fifo aggr_max=2048");
  expect_parse_error ~line:5 (vc_line "sched=fifo aggr_flush_us=25");
  (* Budget and deadline must be a positive int / positive number. *)
  expect_parse_error ~line:5 (vc_line "sched=aggreg aggr_max=0");
  expect_parse_error ~line:5 (vc_line "sched=aggreg aggr_flush_us=0");
  expect_parse_error ~line:5 (vc_line "sched=aggreg aggr_flush_us=fast");
  (* sched= is a vchannel option, never a network one. *)
  expect_parse_error ~line:1 "network m type=bip sched=aggreg"

let rdv_cfg_lines extra =
  Printf.sprintf
    "network sci type=sisci\nnode a nets=sci\nnode b nets=sci\n\
     channel c net=sci nodes=a,b %s"
    extra

let test_rendezvous_options_parsed () =
  let t =
    Cf.load
      (rdv_cfg_lines
         "slot_payload=4096 dma_threshold=32768 rendezvous=65536 regcache=4 \
          regcache_bytes=1048576")
  in
  let cfg = Madeleine.Channel.config (Cf.channel t "c") in
  Alcotest.(check int) "slot_payload" 4096
    cfg.Madeleine.Config.sisci_slot_payload;
  Alcotest.(check int) "dma_threshold" 32768
    cfg.Madeleine.Config.sisci_dma_threshold;
  Alcotest.(check (option int)) "rendezvous" (Some 65536)
    cfg.Madeleine.Config.rendezvous_threshold;
  Alcotest.(check int) "regcache" 4 cfg.Madeleine.Config.regcache_entries;
  Alcotest.(check (option int)) "regcache_bytes" (Some 1048576)
    cfg.Madeleine.Config.regcache_bytes;
  (* regcache=0 (register per send) and rendezvous=off are valid. *)
  let t = Cf.load (rdv_cfg_lines "rendezvous=off regcache=0") in
  let cfg = Madeleine.Channel.config (Cf.channel t "c") in
  Alcotest.(check (option int)) "rendezvous off" None
    cfg.Madeleine.Config.rendezvous_threshold;
  Alcotest.(check int) "regcache 0" 0 cfg.Madeleine.Config.regcache_entries

let test_rendezvous_auto_from_bench_json () =
  (* rendezvous=auto consumes the measured crossover written by
     `madbench crossover`; without a measurement for the fabric it is a
     line-numbered parse error. *)
  expect_parse_error ~line:4 (rdv_cfg_lines "rendezvous=auto");
  let file = Filename.temp_file "crossover" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc
        "{ \"crossover\": [\n\
        \  { \"fabric\": \"sisci\", \"crossover_bytes\": 24576 }\n\
         ] }\n";
      close_out oc;
      Alcotest.(check (option int)) "loader finds sisci" (Some 24576)
        (Crossover.lookup ~file ~fabric:"sisci" ());
      Alcotest.(check (option int)) "loader misses via" None
        (Crossover.lookup ~file ~fabric:"via" ()))

let test_rendezvous_option_errors () =
  expect_parse_error ~line:4 (rdv_cfg_lines "slot_payload=0");
  expect_parse_error ~line:4 (rdv_cfg_lines "dma_threshold=-1");
  expect_parse_error ~line:4 (rdv_cfg_lines "rendezvous=0");
  expect_parse_error ~line:4 (rdv_cfg_lines "rendezvous=sometimes");
  expect_parse_error ~line:4 (rdv_cfg_lines "regcache=-1");
  expect_parse_error ~line:4 (rdv_cfg_lines "regcache_bytes=0");
  expect_parse_error ~line:4 (rdv_cfg_lines "regcache=lots")

let test_topology_options_parsed () =
  (* version=/coordinator= arm the live-topology plane: the vchannel
     gets an epoch-numbered snapshot whose membership is the clusterfile
     world and whose coordinator is the named node's rank. *)
  let t =
    Cf.load
      {|
network sci  type=sisci
network myri type=bip
node a  nets=sci
node gw nets=sci,myri
node b  nets=myri
channel c-sci  net=sci  nodes=a,gw
channel c-myri net=myri nodes=gw,b
vchannel wan channels=c-sci,c-myri mtu=4096 version=3 coordinator=gw
|}
  in
  let vc = Cf.vchannel t "wan" in
  (match Madeleine.Vchannel.topology vc with
  | None -> Alcotest.fail "live plane not armed"
  | Some snap ->
      Alcotest.(check int) "epoch" 3 (Madeleine.Topology.epoch snap);
      Alcotest.(check int) "coordinator" (Cf.rank_of t "gw")
        (Madeleine.Topology.coordinator snap);
      Alcotest.(check (list int)) "members" [ 0; 1; 2 ]
        (Madeleine.Topology.ranks snap));
  (* version= alone defaults the coordinator to the lowest rank. *)
  let t2 =
    Cf.load
      {|
network s type=sisci
node a nets=s
node b nets=s
channel c net=s nodes=a,b
vchannel v channels=c version=1
|}
  in
  (match Madeleine.Vchannel.topology (Cf.vchannel t2 "v") with
  | None -> Alcotest.fail "live plane not armed"
  | Some snap ->
      Alcotest.(check int) "default coordinator" 0
        (Madeleine.Topology.coordinator snap));
  (* Without the keys the plane stays off. *)
  let t3 = Cf.load two_cluster_cfg in
  Alcotest.(check bool) "inert without version=" true
    (Madeleine.Vchannel.topology (Cf.vchannel t3 "wan") = None)

let test_topology_option_errors () =
  let vc_line opts =
    "network s type=sisci\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b\nvchannel v channels=c " ^ opts
  in
  (* Epochs are integers >= 1, rejected on the vchannel's line. *)
  expect_parse_error ~line:5 (vc_line "version=0");
  expect_parse_error ~line:5 (vc_line "version=-2");
  expect_parse_error ~line:5 (vc_line "version=latest");
  (* The coordinator must be a declared node... *)
  expect_parse_error ~line:5 (vc_line "version=1 coordinator=ghost");
  (* ...and means nothing without an epoch to arbitrate. *)
  expect_parse_error ~line:5 (vc_line "coordinator=a");
  (* Both are vchannel options, never network ones. *)
  expect_parse_error ~line:1 "network m type=bip version=1";
  expect_parse_error ~line:1 "network m type=bip coordinator=a"

let test_election_options_parsed () =
  (* election=on swaps the static coordinator for a quorum-elected one;
     topo_quorum overrides the default majority. *)
  let t =
    Cf.load
      {|
faults seed=3
network s type=tcp
node a nets=s
node b nets=s
node c nets=s
channel x net=s nodes=a,b,c
vchannel v channels=x reliable=true version=1 election=on topo_quorum=3
|}
  in
  let vc = Cf.vchannel t "v" in
  Alcotest.(check bool) "election armed" true (Madeleine.Vchannel.election vc);
  (match Madeleine.Vchannel.election_stats vc with
  | None -> Alcotest.fail "election stats missing"
  | Some es ->
      Alcotest.(check int) "topo_quorum honoured" 3
        es.Madeleine.Vchannel.quorum;
      Alcotest.(check int) "no election yet" 0
        es.Madeleine.Vchannel.elections);
  Alcotest.(check (option int)) "initial coordinator seated" (Some 0)
    (Madeleine.Vchannel.coordinator vc);
  (* election=off (and unset) leave the plane off entirely. *)
  let t2 =
    Cf.load
      {|
faults seed=3
network s type=tcp
node a nets=s
node b nets=s
channel x net=s nodes=a,b
vchannel v channels=x reliable=true version=1 election=off
|}
  in
  Alcotest.(check bool) "election=off is inert" false
    (Madeleine.Vchannel.election (Cf.vchannel t2 "v"));
  Alcotest.(check bool) "no stats when off" true
    (Madeleine.Vchannel.election_stats (Cf.vchannel t2 "v") = None)

let test_election_option_errors () =
  let base =
    "faults seed=3\nnetwork s type=tcp\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b\nvchannel v channels=c "
  in
  (* Malformed values and cross-option constraints, all on the
     vchannel's line. *)
  expect_parse_error ~line:6 (base ^ "reliable=true version=1 election=maybe");
  expect_parse_error ~line:6
    (base ^ "reliable=true version=1 topo_quorum=2");
  expect_parse_error ~line:6
    (base ^ "reliable=true version=1 election=on topo_quorum=0");
  expect_parse_error ~line:6
    (base ^ "reliable=true version=1 election=on topo_quorum=two");
  (* Election needs both the live-topology and reliability planes. *)
  expect_parse_error ~line:6 (base ^ "reliable=true election=on");
  expect_parse_error ~line:6 (base ^ "version=1 election=on");
  (* A quorum wider than the membership is rejected by the vchannel. *)
  match
    Cf.load
      (base ^ "reliable=true version=1 election=on topo_quorum=5")
  with
  | _ -> Alcotest.fail "oversized quorum accepted"
  | exception Invalid_argument _ -> ()

let test_coll_options_parsed () =
  (* coll= attaches a fault-tolerant collectives layer to the vchannel;
     fanout and quorum flow through to Collectives.create. *)
  let t =
    Cf.load
      {|
network sci  type=sisci
network myri type=bip
node a  nets=sci
node gw nets=sci,myri
node b  nets=myri
channel c-sci  net=sci  nodes=a,gw
channel c-myri net=myri nodes=gw,b
vchannel wan channels=c-sci,c-myri mtu=4096 coll=tree coll_fanout=2 coll_quorum=2
|}
  in
  (match Cf.collectives t "wan" with
  | None -> Alcotest.fail "coll=tree did not attach a collectives layer"
  | Some coll ->
      Alcotest.(check bool) "algo tree" true
        (Madeleine.Collectives.algo coll = Madeleine.Collectives.Tree);
      Alcotest.(check int) "quorum" 2 (Madeleine.Collectives.quorum coll);
      (* The layer is live: run a barrier over it. *)
      let engine = Cf.engine t in
      for r = 0 to 2 do
        Marcel.Engine.spawn engine ~name:(Printf.sprintf "r%d" r) (fun () ->
            Madeleine.Collectives.barrier coll ~me:r)
      done;
      Marcel.Engine.run engine;
      Alcotest.(check bool) "barrier moved packets" true
        ((Madeleine.Collectives.stats coll).Madeleine.Collectives.packets > 0));
  (* coll=flat is the measured linear baseline. *)
  let t2 =
    Cf.load
      {|
network s type=sisci
node a nets=s
node b nets=s
channel c net=s nodes=a,b
vchannel v channels=c coll=flat
|}
  in
  (match Cf.collectives t2 "v" with
  | Some coll ->
      Alcotest.(check bool) "algo flat" true
        (Madeleine.Collectives.algo coll = Madeleine.Collectives.Flat)
  | None -> Alcotest.fail "coll=flat did not attach a collectives layer");
  (* With coll= unset no layer exists at all. *)
  let t3 = Cf.load two_cluster_cfg in
  Alcotest.(check bool) "inert without coll=" true
    (Cf.collectives t3 "wan" = None)

let test_coll_option_errors () =
  let vc_line opts =
    "network s type=sisci\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b\nvchannel v channels=c " ^ opts
  in
  (* The algorithm is tree or flat, rejected on the vchannel's line. *)
  expect_parse_error ~line:5 (vc_line "coll=ring");
  expect_parse_error ~line:5 (vc_line "coll=");
  (* Fanout caps tree children: an integer >= 2, and only with a tree. *)
  expect_parse_error ~line:5 (vc_line "coll=tree coll_fanout=1");
  expect_parse_error ~line:5 (vc_line "coll=tree coll_fanout=wide");
  expect_parse_error ~line:5 (vc_line "coll_fanout=2");
  expect_parse_error ~line:5 (vc_line "coll=flat coll_fanout=2");
  (* Quorum is an integer >= 1 and means nothing without a layer. *)
  expect_parse_error ~line:5 (vc_line "coll=tree coll_quorum=0");
  expect_parse_error ~line:5 (vc_line "coll=tree coll_quorum=most");
  expect_parse_error ~line:5 (vc_line "coll_quorum=1");
  (* All three are vchannel options, never network or channel ones. *)
  expect_parse_error ~line:1 "network m type=bip coll=tree";
  expect_parse_error ~line:4
    "network s type=sisci\nnode a nets=s\nnode b nets=s\n\
     channel c net=s nodes=a,b coll_fanout=2"

let test_parse_errors () =
  expect_parse_error ~line:1 "network foo type=quantum";
  expect_parse_error ~line:1 "node lonely nets=nowhere";
  expect_parse_error ~line:2 "network sci type=sisci\nchannel c nodes=a,b";
  expect_parse_error ~line:3
    "network sci type=sisci\nnode a nets=sci\nnode a nets=sci";
  expect_parse_error ~line:1 "teapot brew";
  expect_parse_error ~line:1 "network x type=sisci bogus";
  expect_parse_error ~line:4
    "network sci type=sisci\nnode a nets=sci\nnode b nets=sci\n\
     channel c net=sci nodes=a,b slots=two"

let () =
  Alcotest.run "clusterfile"
    [
      ( "loader",
        [
          Alcotest.test_case "inventory" `Quick test_parse_inventory;
          Alcotest.test_case "channel works" `Quick
            test_config_built_channel_works;
          Alcotest.test_case "vchannel forwards" `Quick
            test_config_built_vchannel_forwards;
          Alcotest.test_case "load from file" `Quick test_load_file;
          Alcotest.test_case "channel options" `Quick
            test_channel_options_parsed;
          Alcotest.test_case "flow-control options" `Quick
            test_flow_control_options_parsed;
          Alcotest.test_case "flow-control option errors" `Quick
            test_flow_control_option_errors;
          Alcotest.test_case "scheduler options" `Quick
            test_sched_options_parsed;
          Alcotest.test_case "scheduler option errors" `Quick
            test_sched_option_errors;
          Alcotest.test_case "rendezvous options" `Quick
            test_rendezvous_options_parsed;
          Alcotest.test_case "rendezvous auto crossover" `Quick
            test_rendezvous_auto_from_bench_json;
          Alcotest.test_case "rendezvous option errors" `Quick
            test_rendezvous_option_errors;
          Alcotest.test_case "topology options" `Quick
            test_topology_options_parsed;
          Alcotest.test_case "election options" `Quick
            test_election_options_parsed;
          Alcotest.test_case "election option errors" `Quick
            test_election_option_errors;
          Alcotest.test_case "topology option errors" `Quick
            test_topology_option_errors;
          Alcotest.test_case "collectives options" `Quick
            test_coll_options_parsed;
          Alcotest.test_case "collectives option errors" `Quick
            test_coll_option_errors;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
    ]
