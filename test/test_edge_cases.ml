(* Edge cases and error paths across the stack: API misuse, boundary
   sizes around every threshold, malformed wire data, and scale/stress
   scenarios that the main suites do not reach. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Mad = Madeleine.Api
module Channel = Madeleine.Channel
module Config = Madeleine.Config
module Iface = Madeleine.Iface
module H = Harness

let payload = H.payload

(* ------------------------------------------------------------------ *)
(* API misuse *)

let test_pack_after_end_rejected () =
  let w = H.bip_world () in
  let ep0 = Channel.endpoint w.H.channel ~rank:0 in
  let ep1 = Channel.endpoint w.H.channel ~rank:1 in
  Engine.spawn w.H.engine ~name:"s" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc (Bytes.create 8);
      Mad.end_packing oc;
      Alcotest.check_raises "pack after end"
        (Invalid_argument "Madeleine.pack: connection closed") (fun () ->
          Mad.pack oc (Bytes.create 8));
      Alcotest.check_raises "double end"
        (Invalid_argument "Madeleine.end_packing: connection closed")
        (fun () -> Mad.end_packing oc));
  Engine.spawn w.H.engine ~name:"r" (fun () ->
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      Mad.unpack ic (Bytes.create 8);
      Mad.end_unpacking ic;
      Alcotest.check_raises "unpack after end"
        (Invalid_argument "Madeleine.unpack: connection closed") (fun () ->
          Mad.unpack ic (Bytes.create 8)));
  Engine.run w.H.engine

let test_bad_ranks_rejected () =
  let w = H.bip_world () in
  let ep0 = Channel.endpoint w.H.channel ~rank:0 in
  Engine.spawn w.H.engine ~name:"t" (fun () ->
      Alcotest.check_raises "unknown rank"
        (Invalid_argument "Madeleine: rank 7 not in channel") (fun () ->
          ignore (Mad.begin_packing ep0 ~remote:7));
      Alcotest.check_raises "self"
        (Invalid_argument "Madeleine: cannot connect to self") (fun () ->
          ignore (Mad.begin_packing ep0 ~remote:0)));
  Engine.run w.H.engine;
  Alcotest.check_raises "endpoint of unknown rank" Not_found (fun () ->
      ignore (Channel.endpoint w.H.channel ~rank:9))

let test_channel_creation_validation () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"m" ~link:Netparams.myrinet in
  let mk i =
    let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
    Fabric.attach fabric n;
    n
  in
  let net = Bip.make_net engine fabric in
  let b0 = Bip.attach net (mk 0) and b1 = Bip.attach net (mk 1) in
  let driver = Madeleine.Pmm_bip.driver (function 0 -> b0 | _ -> b1) in
  let session = Madeleine.Session.create engine in
  Alcotest.check_raises "single rank"
    (Invalid_argument "Channel.create: need at least two ranks") (fun () ->
      ignore (Channel.create session driver ~ranks:[ 0 ] ()));
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Channel.create: duplicate ranks") (fun () ->
      ignore (Channel.create session driver ~ranks:[ 0; 1; 0 ] ()))

let test_buf_slice_validation () =
  let module Buf = Madeleine.Buf in
  let b = Bytes.create 16 in
  Alcotest.check_raises "off" (Invalid_argument "Buf.make: slice out of bounds")
    (fun () -> ignore (Buf.make ~off:(-1) b));
  Alcotest.check_raises "len" (Invalid_argument "Buf.make: slice out of bounds")
    (fun () -> ignore (Buf.make ~off:10 ~len:10 b));
  let v = Buf.make ~off:4 ~len:8 b in
  Alcotest.(check int) "length" 8 (Buf.length v);
  Alcotest.check_raises "sub" (Invalid_argument "Buf.sub: slice out of bounds")
    (fun () -> ignore (Buf.sub v ~pos:4 ~len:5))

let test_mode_wire_codes_roundtrip () =
  List.iter
    (fun m ->
      Alcotest.(check bool)
        "send mode" true
        (Iface.send_mode_of_int (Iface.send_mode_to_int m) = m))
    [ Iface.Send_safer; Iface.Send_later; Iface.Send_cheaper ];
  List.iter
    (fun m ->
      Alcotest.(check bool)
        "recv mode" true
        (Iface.recv_mode_of_int (Iface.recv_mode_to_int m) = m))
    [ Iface.Receive_express; Iface.Receive_cheaper ];
  Alcotest.check_raises "bad code"
    (Invalid_argument "Iface.send_mode_of_int: 9") (fun () ->
      ignore (Iface.send_mode_of_int 9))

let test_generic_tm_header_roundtrip () =
  let module G = Madeleine.Generic_tm in
  let h =
    {
      G.final_dst = 1234;
      origin = 77;
      payload_len = 65536;
      first = true;
      last = false;
      seq = 4242;
      ack = true;
      hs = false;
      crd = true;
      agg = true;
      top = true;
      col = true;
    }
  in
  Alcotest.(check bool) "roundtrip" true (G.decode_header (G.encode_header h) = h);
  Alcotest.check_raises "corrupt"
    (Invalid_argument "Generic_tm.decode_header: bad magic") (fun () ->
      ignore (G.decode_header (Bytes.create G.header_size)));
  let sub = G.encode_sub_header ~len:42 Iface.Send_later Iface.Receive_express in
  Alcotest.(check bool) "sub roundtrip" true
    (G.decode_sub_header sub = (42, Iface.Send_later, Iface.Receive_express));
  let fr = G.encode_flow_frame_header ~flow:9999 ~first:true ~last:false ~len:777 in
  Alcotest.(check bool) "flow frame roundtrip" true
    (G.decode_flow_frame_header fr 0 = (9999, true, false, 777));
  Alcotest.check_raises "flow out of range"
    (Invalid_argument "Generic_tm.encode_flow_frame_header: flow id out of range")
    (fun () ->
      ignore (G.encode_flow_frame_header ~flow:70000 ~first:false ~last:true ~len:0))

(* ------------------------------------------------------------------ *)
(* Threshold boundaries: exactly at / around every switch point *)

let roundtrip_sizes world sizes =
  let ep0 = Channel.endpoint world.H.channel ~rank:0 in
  let ep1 = Channel.endpoint world.H.channel ~rank:1 in
  List.iteri
    (fun i n ->
      let data = payload n (Int64.of_int (100 + i)) in
      let sink = Bytes.create n in
      Engine.spawn world.H.engine ~name:"s" (fun () ->
          let oc = Mad.begin_packing ep0 ~remote:1 in
          Mad.pack oc data;
          Mad.end_packing oc);
      Engine.spawn world.H.engine ~name:"r" (fun () ->
          let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
          Mad.unpack ic sink;
          Mad.end_unpacking ic);
      Engine.run world.H.engine;
      Alcotest.(check bool) (Printf.sprintf "size %d intact" n) true
        (Bytes.equal data sink))
    sizes

let test_bip_threshold_boundaries () =
  (* Around BIP's 1 kB short/long split and the short-TM capacity. *)
  roundtrip_sizes (H.bip_world ())
    [ 0; 1; Netparams.bip_short_max - 1; Netparams.bip_short_max;
      Netparams.bip_short_max + 1; 2 * Netparams.bip_short_max ]

let test_sisci_threshold_boundaries () =
  (* Around the short-TM max and the 8 kB slot size. *)
  roundtrip_sizes (H.sisci_world ())
    [ 0; Config.sisci_short_max - 1; Config.sisci_short_max;
      Config.sisci_short_max + 1; Config.default_sisci_slot_payload - 1;
      Config.default_sisci_slot_payload; Config.default_sisci_slot_payload + 1;
      (2 * Config.default_sisci_slot_payload) + 17 ]

let test_vchannel_mtu_boundaries () =
  (* Message sizes around the Generic-TM packet capacity (remember each
     buffer carries a sub-header in the stream). *)
  let mtu = 4096 in
  List.iter
    (fun n ->
      let w = H.two_cluster_world () in
      let vc =
        Madeleine.Vchannel.create w.H.cw_session ~mtu [ w.H.ch_sci; w.H.ch_myri ]
      in
      let data = payload n 55L in
      let sink = Bytes.create n in
      Engine.spawn w.H.cw_engine ~name:"s" (fun () ->
          let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2 in
          Madeleine.Vchannel.pack oc data;
          Madeleine.Vchannel.end_packing oc);
      Engine.spawn w.H.cw_engine ~name:"r" (fun () ->
          let ic =
            Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0
          in
          Madeleine.Vchannel.unpack ic sink;
          Madeleine.Vchannel.end_unpacking ic);
      Engine.run w.H.cw_engine;
      Alcotest.(check bool) (Printf.sprintf "size %d intact" n) true
        (Bytes.equal data sink))
    [ mtu - 9; mtu - 8; mtu - 7; mtu; mtu + 1; (2 * mtu) - 8; 2 * mtu ]

let test_empty_message () =
  (* begin/end with no packs at all, on both channel kinds. *)
  let w = H.sisci_world () in
  let ep0 = Channel.endpoint w.H.channel ~rank:0 in
  let ep1 = Channel.endpoint w.H.channel ~rank:1 in
  let after = ref Bytes.empty in
  Engine.spawn w.H.engine ~name:"s" (fun () ->
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.end_packing oc;
      (* A second, normal message must still work. *)
      let oc = Mad.begin_packing ep0 ~remote:1 in
      Mad.pack oc (Bytes.make 4 'z');
      Mad.end_packing oc);
  Engine.spawn w.H.engine ~name:"r" (fun () ->
      (* The empty message produces no traffic; the receiver just sees
         the next one. (Empty messages are degenerate in the paper's
         model too: nothing is flushed.) *)
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      let b = Bytes.create 4 in
      (* Mirror the sender: first message had no fields. *)
      Mad.end_unpacking ic;
      let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
      Mad.unpack ic b;
      Mad.end_unpacking ic;
      after := b);
  Engine.run w.H.engine;
  Alcotest.(check bytes) "second message" (Bytes.make 4 'z') !after

(* ------------------------------------------------------------------ *)
(* Fluid: transaction-class contention *)

let test_fluid_mixed_class_contention () =
  (* Same-class pairs share capacity*factor; mixed-class pairs share the
     (lower) mixed factor. *)
  let run cls_a cls_b factor =
    let e = Engine.create () in
    let f =
      Simnet.Fluid.create e ~name:"bus" ~capacity_mb_s:100.0
        ~contention_factor:0.9 ~mixed_contention_factor:0.5 ()
    in
    let fin = Marcel.Ivar.create () and fin2 = Marcel.Ivar.create () in
    Engine.spawn e ~name:"a" (fun () ->
        Simnet.Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ~cls:cls_a ();
        Marcel.Ivar.fill fin ());
    Engine.spawn e ~name:"b" (fun () ->
        Simnet.Fluid.transfer f ~bytes_count:1_000_000 ~weight:1.0 ~cls:cls_b ();
        Marcel.Ivar.fill fin2 ());
    Engine.run e;
    let expect =
      Time.bytes_at_rate ~bytes_count:2_000_000 ~mb_per_s:(100.0 *. factor)
    in
    let d = abs (Engine.now e - expect) in
    Alcotest.(check bool)
      (Printf.sprintf "cls %d/%d took %dns expected %dns" cls_a cls_b
         (Engine.now e) expect)
      true
      (d <= Time.us 2.0)
  in
  run 0 0 0.9;
  run 1 1 0.9;
  run 0 1 0.5

(* ------------------------------------------------------------------ *)
(* Scale and stress *)

let test_twelve_node_all_to_all () =
  (* Every node sends one message to every other node over one SISCI
     channel; all 132 messages must arrive intact. *)
  let n = 12 in
  let w = H.make_world ~n H.sisci_driver Netparams.sci in
  let received = ref 0 in
  for me = 0 to n - 1 do
    let ep = Channel.endpoint w.H.channel ~rank:me in
    Engine.spawn w.H.engine ~name:(Printf.sprintf "send.%d" me) (fun () ->
        for peer = 0 to n - 1 do
          if peer <> me then begin
            let oc = Mad.begin_packing ep ~remote:peer in
            let b = Bytes.create 8 in
            Bytes.set_int64_le b 0 (Int64.of_int ((me * 1000) + peer));
            Mad.pack oc b;
            Mad.end_packing oc
          end
        done);
    Engine.spawn w.H.engine ~name:(Printf.sprintf "recv.%d" me) (fun () ->
        for _ = 2 to n do
          let ic = Mad.begin_unpacking ep in
          let b = Bytes.create 8 in
          Mad.unpack ic b;
          Mad.end_unpacking ic;
          let v = Int64.to_int (Bytes.get_int64_le b 0) in
          Alcotest.(check int) "payload encodes route"
            ((Mad.remote_rank ic * 1000) + me)
            v;
          incr received
        done)
  done;
  Engine.run w.H.engine;
  Alcotest.(check int) "all messages" (n * (n - 1)) !received

let test_many_messages_stress () =
  (* 500 back-to-back variable-size messages on one link, content and
     order checked end to end. *)
  let w = H.bip_world () in
  let ep0 = Channel.endpoint w.H.channel ~rank:0 in
  let ep1 = Channel.endpoint w.H.channel ~rank:1 in
  let count = 500 in
  let size i = 1 + (i * 37 mod 5000) in
  Engine.spawn w.H.engine ~name:"s" (fun () ->
      for i = 1 to count do
        let b = payload (size i) (Int64.of_int i) in
        let oc = Mad.begin_packing ep0 ~remote:1 in
        Mad.pack oc b;
        Mad.end_packing oc
      done);
  Engine.spawn w.H.engine ~name:"r" (fun () ->
      for i = 1 to count do
        let expect = payload (size i) (Int64.of_int i) in
        let b = Bytes.create (size i) in
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        Mad.unpack ic b;
        Mad.end_unpacking ic;
        if not (Bytes.equal expect b) then
          Alcotest.failf "message %d corrupted" i
      done);
  Engine.run w.H.engine

let test_interleaved_bidirectional_stress () =
  (* Both directions stream concurrently on one channel. *)
  let w = H.sisci_world () in
  let run me peer seed =
    let ep = Channel.endpoint w.H.channel ~rank:me in
    Engine.spawn w.H.engine ~name:(Printf.sprintf "s%d" me) (fun () ->
        for i = 1 to 100 do
          let oc = Mad.begin_packing ep ~remote:peer in
          Mad.pack oc (payload 600 (Int64.of_int (seed + i)));
          Mad.end_packing oc
        done);
    Engine.spawn w.H.engine ~name:(Printf.sprintf "r%d" me) (fun () ->
        for i = 1 to 100 do
          let expect = payload 600 (Int64.of_int (1000 - seed + i)) in
          let b = Bytes.create 600 in
          let ic = Mad.begin_unpacking_from ep ~remote:peer in
          Mad.unpack ic b;
          Mad.end_unpacking ic;
          if not (Bytes.equal expect b) then Alcotest.failf "corrupt at %d" i
        done)
  in
  run 0 1 0;
  run 1 0 1000;
  Engine.run w.H.engine

(* ------------------------------------------------------------------ *)
(* Multiple adapters per node (paper §2.1): two Myrinet rails, one
   channel each, used concurrently by the same application. *)

let test_dual_rail_channels () =
  let engine = Engine.create () in
  let rail_a = Fabric.create engine ~name:"myri-a" ~link:Netparams.myrinet in
  let rail_b = Fabric.create engine ~name:"myri-b" ~link:Netparams.myrinet in
  let n0 = Node.create engine ~name:"n0" ~id:0 in
  let n1 = Node.create engine ~name:"n1" ~id:1 in
  List.iter
    (fun f ->
      Fabric.attach f n0;
      Fabric.attach f n1)
    [ rail_a; rail_b ];
  let bip_a = Bip.make_net engine rail_a in
  let bip_b = Bip.make_net engine rail_b in
  let a0 = Bip.attach bip_a n0 and a1 = Bip.attach bip_a n1 in
  let b0 = Bip.attach bip_b n0 and b1 = Bip.attach bip_b n1 in
  let session = Madeleine.Session.create engine in
  let chan_a =
    Channel.create session
      (Madeleine.Pmm_bip.driver (function 0 -> a0 | _ -> a1))
      ~ranks:[ 0; 1 ] ()
  in
  let chan_b =
    Channel.create session
      (Madeleine.Pmm_bip.driver (function 0 -> b0 | _ -> b1))
      ~ranks:[ 0; 1 ] ()
  in
  (* Stripe one logical transfer across both rails concurrently. *)
  let n = 400_000 in
  let half_a = payload n 71L and half_b = payload n 72L in
  let sink_a = Bytes.create n and sink_b = Bytes.create n in
  let send chan data =
    Engine.spawn engine ~name:"send" (fun () ->
        let oc = Mad.begin_packing (Channel.endpoint chan ~rank:0) ~remote:1 in
        Mad.pack oc data;
        Mad.end_packing oc)
  in
  let recv chan sink =
    Engine.spawn engine ~name:"recv" (fun () ->
        let ic =
          Mad.begin_unpacking_from (Channel.endpoint chan ~rank:1) ~remote:0
        in
        Mad.unpack ic sink;
        Mad.end_unpacking ic)
  in
  send chan_a half_a;
  send chan_b half_b;
  recv chan_a sink_a;
  recv chan_b sink_b;
  Engine.run engine;
  Alcotest.(check bytes) "rail A stripe" half_a sink_a;
  Alcotest.(check bytes) "rail B stripe" half_b sink_b;
  (* Both rails share the node's PCI bus: the striped transfer cannot
     beat the bus's contended capacity, so total time reflects ~100 MB/s
     aggregate rather than 2 x 126. *)
  let total = 2 * n in
  let agg = Time.rate_mb_s ~bytes_count:total (Engine.now engine) in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate %.1f MB/s is PCI-bound (90..115)" agg)
    true
    (agg > 90.0 && agg < 115.0)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "edge cases"
    [
      ( "api misuse",
        [
          Alcotest.test_case "pack after end" `Quick
            test_pack_after_end_rejected;
          Alcotest.test_case "bad ranks" `Quick test_bad_ranks_rejected;
          Alcotest.test_case "channel validation" `Quick
            test_channel_creation_validation;
          Alcotest.test_case "buf slices" `Quick test_buf_slice_validation;
          Alcotest.test_case "mode wire codes" `Quick
            test_mode_wire_codes_roundtrip;
          Alcotest.test_case "generic tm headers" `Quick
            test_generic_tm_header_roundtrip;
        ] );
      ( "boundaries",
        [
          Alcotest.test_case "bip thresholds" `Quick
            test_bip_threshold_boundaries;
          Alcotest.test_case "sisci thresholds" `Quick
            test_sisci_threshold_boundaries;
          Alcotest.test_case "vchannel mtu" `Quick test_vchannel_mtu_boundaries;
          Alcotest.test_case "empty message" `Quick test_empty_message;
        ] );
      ( "fluid classes",
        [
          Alcotest.test_case "mixed contention" `Quick
            test_fluid_mixed_class_contention;
        ] );
      ( "multi adapter",
        [ Alcotest.test_case "dual rail" `Quick test_dual_rail_channels ] );
      ( "stress",
        [
          Alcotest.test_case "12-node all-to-all" `Quick
            test_twelve_node_all_to_all;
          Alcotest.test_case "500 messages" `Quick test_many_messages_stress;
          Alcotest.test_case "bidirectional streams" `Quick
            test_interleaved_bidirectional_stress;
        ] );
    ]
