(* Tests for the pluggable packet scheduler (Sched) and its integration
   with virtual channels: per-flow FIFO under aggregation, the aggr_max
   wire budget, composition with credits and go-back-N reliability, and
   the inertness of Fifo/unset. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults
module Channel = Madeleine.Channel
module Sched = Madeleine.Sched
module Vc = Madeleine.Vchannel

let payload_of ~size ~flow m =
  Harness.payload size (Int64.of_int ((flow * 1000) + m))

(* Run [flows] concurrent logical flows of [messages] x [size] bytes
   from rank 0 to rank 2 across the two-cluster gateway world, checking
   per-flow order and content, and return the vchannel for stats. *)
let flows_workload ?credits ?sched ?(flow_ids = true) ~flows ~messages ~size ()
    =
  let w = Harness.two_cluster_world () in
  let vc =
    Vc.create w.Harness.cw_session ?credits ?sched
      [ w.Harness.ch_sci; w.Harness.ch_myri ]
  in
  let engine = w.Harness.cw_engine in
  let intact = ref true in
  let finish = ref Time.zero in
  let done_flows = ref 0 in
  for flow = 1 to flows do
    (* Non-zero flow ids only exist with an aggregating scheduler; the
       inertness tests run their single flow as flow 0. *)
    let flow = if flow_ids then flow else 0 in
    Engine.spawn engine ~name:(Printf.sprintf "send-%d" flow) (fun () ->
        for m = 0 to messages - 1 do
          let oc = Vc.begin_packing vc ~flow ~me:0 ~remote:2 in
          Vc.pack oc (payload_of ~size ~flow m);
          Vc.end_packing oc
        done);
    Engine.spawn engine ~name:(Printf.sprintf "recv-%d" flow) (fun () ->
        let sink = Bytes.create size in
        for m = 0 to messages - 1 do
          let ic = Vc.begin_unpacking_from vc ~flow ~me:2 ~remote:0 in
          Vc.unpack ic sink;
          Vc.end_unpacking ic;
          if not (Bytes.equal sink (payload_of ~size ~flow m)) then
            intact := false
        done;
        incr done_flows;
        if !done_flows = flows then finish := Engine.now engine)
  done;
  Engine.run engine;
  (vc, !intact, !finish)

let test_per_flow_fifo_under_merge () =
  let vc, intact, _ =
    flows_workload
      ~sched:(Sched.aggreg ())
      ~flows:8 ~messages:6 ~size:128 ()
  in
  Alcotest.(check bool) "every flow in order, bit-identical" true intact;
  let ss = match Vc.sched_stats vc with Some s -> s | None -> assert false in
  Alcotest.(check bool) "frames actually merged" true
    (ss.Sched.sched_merged > 0);
  Alcotest.(check bool) "aggregates emitted" true (ss.Sched.sched_aggregates > 0)

let test_aggr_max_bounds_aggregates () =
  (* 64-byte frames cost 72 wire bytes; a 300-byte budget holds at most
     4 of them, so the mean train length must stay under 4 and at least
     one flush must have been forced by the budget. *)
  let vc, intact, _ =
    flows_workload
      ~sched:(Sched.aggreg ~aggr_max:300 ())
      ~flows:8 ~messages:4 ~size:64 ()
  in
  Alcotest.(check bool) "intact" true intact;
  let ss = match Vc.sched_stats vc with Some s -> s | None -> assert false in
  Alcotest.(check bool) "merged" true (ss.Sched.sched_merged > 0);
  Alcotest.(check bool) "budget forced a flush" true
    (ss.Sched.sched_flush_full >= 1);
  Alcotest.(check bool) "mean train respects the budget" true
    (ss.Sched.sched_mean_frames <= 4.0)

let test_credits_split_aggregates () =
  (* A 2-packet credit window against trains of up to 8 data frames:
     emission must split each train so no aggregate charges more than
     the budget (a longer train would deadlock waiting on its own
     grants), the sender must actually stall, and delivery stays
     intact. *)
  let vc, intact, _ =
    flows_workload ~credits:2
      ~sched:(Sched.aggreg ())
      ~flows:4 ~messages:8 ~size:2048 ()
  in
  Alcotest.(check bool) "intact under a tiny credit window" true intact;
  let cs = match Vc.credit_stats vc with Some s -> s | None -> assert false in
  Alcotest.(check bool) "sender ran out of credits" true (cs.Vc.stalls > 0);
  let ss = match Vc.sched_stats vc with Some s -> s | None -> assert false in
  Alcotest.(check bool) "aggregates still emitted" true
    (ss.Sched.sched_aggregates > 0)

let test_fifo_and_unset_identical () =
  (* Fifo is a spelling of "no scheduler": same workload, same simulated
     finish time, down to the nanosecond. *)
  let _, ok_none, t_none =
    flows_workload ~flow_ids:false ~flows:1 ~messages:5 ~size:4096 ()
  in
  let _, ok_fifo, t_fifo =
    flows_workload ~sched:Sched.fifo ~flow_ids:false ~flows:1 ~messages:5
      ~size:4096 ()
  in
  Alcotest.(check bool) "both intact" true (ok_none && ok_fifo);
  Alcotest.(check bool) "identical simulated schedule" true
    (Time.to_us t_none = Time.to_us t_fifo)

let test_flow_needs_scheduler () =
  let w = Harness.two_cluster_world () in
  let vc =
    Vc.create w.Harness.cw_session [ w.Harness.ch_sci; w.Harness.ch_myri ]
  in
  let rejected = ref false in
  Engine.spawn w.Harness.cw_engine ~name:"bad-flow" (fun () ->
      match Vc.begin_packing vc ~flow:7 ~me:0 ~remote:2 with
      | exception Invalid_argument _ -> rejected := true
      | _ -> ());
  Engine.run w.Harness.cw_engine;
  Alcotest.(check bool) "non-zero flow without sched=aggreg rejected" true
    !rejected;
  Alcotest.(check bool) "no scheduler state" true (Vc.sched_stats vc = None)

(* Gateway crash with aggregates in flight: the redundant-gateway world
   of the chaos failover scenario, but the stream is many small logical
   flows on a sched=aggreg vchannel. The crash lands mid-stream, so
   unacked aggregates are re-emitted whole over the surviving gateway;
   delivery must stay exactly-once and bit-identical on every flow. *)
let test_gateway_crash_reemits_aggregates () =
  let engine = Engine.create () in
  let faults = Faults.create engine ~seed:11L in
  let fab_a = Fabric.create engine ~name:"ethA" ~link:Netparams.fast_ethernet in
  let fab_b = Fabric.create engine ~name:"ethB" ~link:Netparams.fast_ethernet in
  Fabric.set_faults fab_a faults;
  Fabric.set_faults fab_b faults;
  let nodes =
    Array.init 4 (fun i ->
        Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i)
  in
  List.iter (fun i -> Fabric.attach fab_a nodes.(i)) [ 0; 1; 2 ];
  List.iter (fun i -> Fabric.attach fab_b nodes.(i)) [ 1; 2; 3 ];
  let net_a = Tcpnet.make_net engine fab_a in
  let net_b = Tcpnet.make_net engine fab_b in
  let stacks_a = Hashtbl.create 4 and stacks_b = Hashtbl.create 4 in
  List.iter
    (fun i -> Hashtbl.add stacks_a i (Tcpnet.attach net_a nodes.(i)))
    [ 0; 1; 2 ];
  List.iter
    (fun i -> Hashtbl.add stacks_b i (Tcpnet.attach net_b nodes.(i)))
    [ 1; 2; 3 ];
  let session = Madeleine.Session.create engine in
  let ch_a =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_a))
      ~ranks:[ 0; 1; 2 ] ()
  in
  let ch_b =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (Hashtbl.find stacks_b))
      ~ranks:[ 1; 2; 3 ] ()
  in
  let vc =
    Vc.create session ~mtu:4096 ~faults
      ~sched:(Sched.aggreg ())
      [ ch_a; ch_b ]
  in
  let gw = List.hd (Vc.route_via vc ~src:0 ~dst:3) in
  let flows = 4 and messages = 4 and size = 256 in
  let received = Hashtbl.create 16 in
  let intact = ref true in
  let arrivals = ref 0 in
  for flow = 1 to flows do
    Engine.spawn engine ~name:(Printf.sprintf "fo-send-%d" flow) (fun () ->
        for m = 0 to messages - 1 do
          let oc = Vc.begin_packing vc ~flow ~me:0 ~remote:3 in
          Vc.pack oc (payload_of ~size ~flow m);
          Vc.end_packing oc
        done);
    Engine.spawn engine ~name:(Printf.sprintf "fo-recv-%d" flow) (fun () ->
        let sink = Bytes.create size in
        for m = 0 to messages - 1 do
          let ic = Vc.begin_unpacking_from vc ~flow ~me:3 ~remote:0 in
          Vc.unpack ic sink;
          Vc.end_unpacking ic;
          if not (Bytes.equal sink (payload_of ~size ~flow m)) then
            intact := false;
          Hashtbl.replace received (flow, m)
            (1 + try Hashtbl.find received (flow, m) with Not_found -> 0);
          incr arrivals;
          (* Crash the first-hop gateway while later aggregates are
             still in flight. *)
          if !arrivals = 1 then Faults.crash_now faults ~node:gw ()
        done)
  done;
  Engine.run engine;
  Alcotest.(check bool) "bit-identical on every flow" true !intact;
  Alcotest.(check int) "exactly-once delivery" (flows * messages)
    (Hashtbl.fold (fun _ n acc -> acc + n) received 0);
  Hashtbl.iter
    (fun (flow, m) n ->
      if n <> 1 then
        Alcotest.failf "message (flow %d, %d) delivered %d times" flow m n)
    received;
  let rs = match Vc.rel_stats vc with Some s -> s | None -> assert false in
  Alcotest.(check bool) "unacked aggregates re-emitted" true
    (rs.Vc.reemitted >= 1)

let test_chaos_drop_bit_identical () =
  let sc =
    Chaos.sched_aggreg_run ~seed:7 ~flows:8 ~messages:3 ~size:256 ~drop:0.01
  in
  Alcotest.(check bool) "intact under 1% drop" true sc.Chaos.sc_intact;
  Alcotest.(check bool) "merged under 1% drop" true (sc.Chaos.sc_merged > 0)

let () =
  Alcotest.run "sched"
    [
      ( "aggregation",
        [
          Alcotest.test_case "per-flow FIFO under merge" `Quick
            test_per_flow_fifo_under_merge;
          Alcotest.test_case "aggr_max bounds aggregates" `Quick
            test_aggr_max_bounds_aggregates;
          Alcotest.test_case "credits split aggregates" `Quick
            test_credits_split_aggregates;
          Alcotest.test_case "fifo and unset identical" `Quick
            test_fifo_and_unset_identical;
          Alcotest.test_case "flow needs scheduler" `Quick
            test_flow_needs_scheduler;
        ] );
      ( "reliability",
        [
          Alcotest.test_case "gateway crash re-emits aggregates" `Quick
            test_gateway_crash_reemits_aggregates;
          Alcotest.test_case "chaos 1% drop bit-identical" `Quick
            test_chaos_drop_bit_identical;
        ] );
    ]
