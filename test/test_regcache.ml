(* Tests for the zero-copy long-message path: the Regcache pin-down
   cache as a unit (LRU order, interval merging, capacity-0 degeneracy,
   eviction accounting), the rendezvous TM end to end on the sisci and
   via fabrics, its fallback to the staged path on gateway transit
   hops, and a QCheck property that delivery is bit-identical with the
   cache on and off. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Config = Madeleine.Config
module Channel = Madeleine.Channel
module Regcache = Madeleine.Regcache
module Mad = Madeleine.Api
module Vc = Madeleine.Vchannel

(* ------------------------------------------------------------------ *)
(* Regcache unit tests against a mock fabric: handles are stamped
   integers and the log records every register/deregister. *)

type event = Reg of int * int * int | Dereg of int

let mock () =
  let log = ref [] and next = ref 0 in
  let register _mem ~pos ~len =
    let id = !next in
    incr next;
    log := Reg (id, pos, len) :: !log;
    id
  in
  let deregister id = log := Dereg id :: !log in
  (log, register, deregister)

let deregistered log id = List.mem (Dereg id) !log

let use cache mem ~pos ~len =
  let e = Regcache.acquire cache mem ~pos ~len in
  let id = Regcache.handle e in
  Regcache.release cache e;
  id

let test_lru_eviction_order () =
  let log, register, deregister = mock () in
  let cache = Regcache.create ~entries:2 ~register ~deregister () in
  let a = Bytes.create 64 and b = Bytes.create 64 in
  let c = Bytes.create 64 and d = Bytes.create 64 in
  let ida = use cache a ~pos:0 ~len:64 in
  let idb = use cache b ~pos:0 ~len:64 in
  let idc = use cache c ~pos:0 ~len:64 in
  (* Third distinct buffer: the coldest (a) goes. *)
  Alcotest.(check bool) "a evicted" true (deregistered log ida);
  Alcotest.(check bool) "b kept" false (deregistered log idb);
  (* Touch b, then insert d: c is now the coldest and goes; b survives
     because the hit refreshed it. *)
  Alcotest.(check int) "touch b is a hit" idb (use cache b ~pos:0 ~len:64);
  let _idd = use cache d ~pos:0 ~len:64 in
  Alcotest.(check bool) "c evicted after b touched" true
    (deregistered log idc);
  Alcotest.(check bool) "b still kept" false (deregistered log idb);
  let s = Regcache.stats cache in
  Alcotest.(check int) "evictions" 2 s.Regcache.evictions;
  Alcotest.(check int) "hits" 1 s.Regcache.hits;
  Alcotest.(check int) "entries" 2 s.Regcache.entries

let test_overlap_hit_and_merge () =
  let log, register, deregister = mock () in
  let cache = Regcache.create ~entries:4 ~register ~deregister () in
  let mem = Bytes.create 256 in
  let id0 = use cache mem ~pos:0 ~len:100 in
  (* Fully covered interval: hit, same registration. *)
  Alcotest.(check int) "covered reuse hits" id0 (use cache mem ~pos:20 ~len:50);
  (* Partial overlap [80,180): the old pin and the request merge into
     one hull registration [0,180) — the overlap is never pinned twice. *)
  let e = Regcache.acquire cache mem ~pos:80 ~len:100 in
  Alcotest.(check (pair int int)) "hull interval" (0, 180)
    (Regcache.interval e);
  Alcotest.(check bool) "old pin dropped by merge" true
    (deregistered log id0);
  Regcache.release cache e;
  let s = Regcache.stats cache in
  Alcotest.(check int) "merges" 1 s.Regcache.merges;
  Alcotest.(check int) "hits" 1 s.Regcache.hits;
  Alcotest.(check int) "misses (merge counts)" 2 s.Regcache.misses;
  Alcotest.(check int) "one hull entry" 1 s.Regcache.entries;
  Alcotest.(check int) "pinned = hull" 180 s.Regcache.pinned_bytes

let test_capacity_zero_register_per_send () =
  let log, register, deregister = mock () in
  let cache = Regcache.create ~register ~deregister () in
  let mem = Bytes.create 64 in
  let id0 = use cache mem ~pos:0 ~len:64 in
  Alcotest.(check bool) "release deregisters" true (deregistered log id0);
  (* Nothing retained: the same range registers again. *)
  let id1 = use cache mem ~pos:0 ~len:64 in
  Alcotest.(check bool) "no retention" true (id1 <> id0);
  let s = Regcache.stats cache in
  Alcotest.(check int) "no hits" 0 s.Regcache.hits;
  Alcotest.(check int) "two misses" 2 s.Regcache.misses;
  Alcotest.(check int) "no entries" 0 s.Regcache.entries;
  Alcotest.(check int) "nothing pinned" 0 s.Regcache.pinned_bytes

let test_eviction_accounting () =
  let log, register, deregister = mock () in
  let cache = Regcache.create ~entries:8 ~bytes:150 ~register ~deregister () in
  let a = Bytes.create 128 and b = Bytes.create 128 in
  let ida = use cache a ~pos:0 ~len:100 in
  ignore (use cache b ~pos:0 ~len:100);
  (* 200 pinned bytes > 150 budget: the cold entry is deregistered and
     the books balance. *)
  Alcotest.(check bool) "byte cap evicts cold" true (deregistered log ida);
  let s = Regcache.stats cache in
  Alcotest.(check int) "pinned after eviction" 100 s.Regcache.pinned_bytes;
  Alcotest.(check int) "evictions" 1 s.Regcache.evictions;
  Regcache.flush cache;
  let s = Regcache.stats cache in
  Alcotest.(check int) "flush empties" 0 s.Regcache.entries;
  Alcotest.(check int) "flush unpins" 0 s.Regcache.pinned_bytes;
  (* Every registration the mock ever handed out is deregistered. *)
  let regs, deregs =
    List.fold_left
      (fun (r, d) -> function Reg _ -> (r + 1, d) | Dereg _ -> (r, d + 1))
      (0, 0) !log
  in
  Alcotest.(check int) "every pin matched by an unpin" regs deregs

let test_busy_entries_survive_pressure () =
  let log, register, deregister = mock () in
  let cache = Regcache.create ~entries:1 ~register ~deregister () in
  let a = Bytes.create 64 and b = Bytes.create 64 in
  let ea = Regcache.acquire cache a ~pos:0 ~len:64 in
  let eb = Regcache.acquire cache b ~pos:0 ~len:64 in
  (* Over capacity but both in flight: nothing may be unpinned. *)
  Alcotest.(check bool) "no dereg while busy" true
    (List.for_all (function Dereg _ -> false | Reg _ -> true) !log);
  Regcache.release cache eb;
  Regcache.release cache ea;
  let s = Regcache.stats cache in
  Alcotest.(check int) "shrunk back to capacity" 1 s.Regcache.entries

(* ------------------------------------------------------------------ *)
(* End-to-end rendezvous over the simulated fabrics. *)

let rdv_config =
  {
    Config.default with
    Config.rendezvous_threshold = Some 32768;
    regcache_entries = 8;
  }

(* Content-checked one-way transfers of [sends] messages of
   [bytes_count] from rank 0 to rank 1, reusing one send buffer. *)
let roundtrip world ~bytes_count ~sends =
  let ep0 = Channel.endpoint world.Harness.channel ~rank:0 in
  let ep1 = Channel.endpoint world.Harness.channel ~rank:1 in
  let data = Harness.payload bytes_count 11L in
  let intact = ref true in
  Engine.spawn world.Harness.engine ~name:"send" (fun () ->
      for _ = 1 to sends do
        let oc = Mad.begin_packing ep0 ~remote:1 in
        Mad.pack oc data;
        Mad.end_packing oc
      done);
  Engine.spawn world.Harness.engine ~name:"recv" (fun () ->
      let sink = Bytes.create bytes_count in
      for _ = 1 to sends do
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        Mad.unpack ic sink;
        Mad.end_unpacking ic;
        if not (Bytes.equal sink data) then intact := false
      done);
  Engine.run world.Harness.engine;
  (!intact, Channel.reg_stats ep0)

let test_sisci_rendezvous_end_to_end () =
  let w = Harness.sisci_world ~config:rdv_config () in
  let intact, stats = roundtrip w ~bytes_count:(1 lsl 20) ~sends:16 in
  Alcotest.(check bool) "payloads intact" true intact;
  match stats with
  | None -> Alcotest.fail "no reg_stats after rendezvous sends"
  | Some s ->
      (* One cold miss, then the reused buffer hits: > 90%. *)
      let rate =
        float_of_int s.Regcache.hits
        /. float_of_int (max 1 (s.Regcache.hits + s.Regcache.misses))
      in
      Alcotest.(check bool)
        (Printf.sprintf "hit rate %.2f > 0.9" rate)
        true (rate > 0.9)

let test_sisci_rendezvous_beats_staged () =
  let bytes_count = 1 lsl 20 in
  let staged =
    Harness.mad_pingpong (Harness.sisci_world ()) ~bytes_count ~iters:4
  in
  let rdv =
    Harness.mad_pingpong
      (Harness.sisci_world ~config:rdv_config ())
      ~bytes_count ~iters:4
  in
  let ratio = Time.to_us staged /. Time.to_us rdv in
  Alcotest.(check bool)
    (Printf.sprintf "zero-copy 1MB %.2fx over staged" ratio)
    true (ratio >= 1.2)

let test_via_rendezvous_end_to_end () =
  let w = Harness.via_world ~config:rdv_config () in
  let intact, stats = roundtrip w ~bytes_count:(1 lsl 18) ~sends:8 in
  Alcotest.(check bool) "payloads intact" true intact;
  Alcotest.(check bool) "cache engaged" true
    (match stats with
    | Some s -> s.Regcache.hits + s.Regcache.misses > 0
    | None -> false)

let test_gateway_falls_back_to_staged () =
  (* A 64 kB message over the gateway world with rendezvous armed and
     an MTU big enough that hop payloads cross the threshold: every
     hop is a transit hop (0 -> gw -> 2), so the switch must keep the
     staged path and the message still arrives intact. *)
  let w = Harness.two_cluster_world ~config:rdv_config () in
  let vc = Vc.create w.Harness.cw_session ~mtu:65536 [ w.Harness.ch_sci; w.Harness.ch_myri ] in
  let bytes_count = 65536 in
  let data = Harness.payload bytes_count 12L in
  let intact = ref false in
  Engine.spawn w.Harness.cw_engine ~name:"s" (fun () ->
      let oc = Vc.begin_packing vc ~me:0 ~remote:2 in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn w.Harness.cw_engine ~name:"r" (fun () ->
      let sink = Bytes.create bytes_count in
      let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:0 in
      Vc.unpack ic sink;
      Vc.end_unpacking ic;
      intact := Bytes.equal sink data);
  Engine.run w.Harness.cw_engine;
  Alcotest.(check bool) "forwarded payload intact" true !intact;
  (* The sci hop stayed on the staged path: nothing was ever pinned. *)
  let ep0 = Channel.endpoint w.Harness.ch_sci ~rank:0 in
  Alcotest.(check bool) "no registrations on transit hop" true
    (match Channel.reg_stats ep0 with
    | None -> true
    | Some s -> s.Regcache.hits + s.Regcache.misses = 0)

let test_vchannel_direct_hop_uses_rendezvous () =
  (* Same vchannel machinery, but a single-hop route 0 -> 1: the hop is
     origin -> final destination, so rendezvous engages end to end. *)
  let w = Harness.two_cluster_world ~config:rdv_config () in
  let vc = Vc.create w.Harness.cw_session ~mtu:65536 ~credits:64 [ w.Harness.ch_sci ] in
  let bytes_count = 65536 in
  let data = Harness.payload bytes_count 13L in
  let intact = ref false in
  Engine.spawn w.Harness.cw_engine ~name:"s" (fun () ->
      let oc = Vc.begin_packing vc ~me:0 ~remote:1 in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn w.Harness.cw_engine ~name:"r" (fun () ->
      let sink = Bytes.create bytes_count in
      let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
      Vc.unpack ic sink;
      Vc.end_unpacking ic;
      intact := Bytes.equal sink data);
  Engine.run w.Harness.cw_engine;
  Alcotest.(check bool) "payload intact" true !intact;
  let ep0 = Channel.endpoint w.Harness.ch_sci ~rank:0 in
  Alcotest.(check bool) "rendezvous engaged on the direct hop" true
    (match Channel.reg_stats ep0 with
    | Some s -> s.Regcache.hits + s.Regcache.misses > 0
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Property: turning the cache off (register-per-send) never changes
   what arrives — only when pins are charged. *)

let prop_cache_on_off_identical =
  QCheck.Test.make ~name:"delivery bit-identical cache-on vs cache-off"
    ~count:15
    QCheck.(pair (int_range 32768 200_000) (int_range 0 1000))
    (fun (bytes_count, salt) ->
      let run ~entries =
        let config =
          {
            Config.default with
            Config.rendezvous_threshold = Some 32768;
            regcache_entries = entries;
          }
        in
        let w = Harness.sisci_world ~config () in
        let ep0 = Channel.endpoint w.Harness.channel ~rank:0 in
        let ep1 = Channel.endpoint w.Harness.channel ~rank:1 in
        let data = Harness.payload bytes_count (Int64.of_int salt) in
        let received = Bytes.create bytes_count in
        Engine.spawn w.Harness.engine ~name:"send" (fun () ->
            for _ = 1 to 3 do
              let oc = Mad.begin_packing ep0 ~remote:1 in
              Mad.pack oc data;
              Mad.end_packing oc
            done);
        Engine.spawn w.Harness.engine ~name:"recv" (fun () ->
            for _ = 1 to 3 do
              let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
              Mad.unpack ic received;
              Mad.end_unpacking ic
            done);
        Engine.run w.Harness.engine;
        (Bytes.copy received, data)
      in
      let on, sent_on = run ~entries:8 in
      let off, sent_off = run ~entries:0 in
      Bytes.equal on off && Bytes.equal on sent_on && Bytes.equal off sent_off)

let () =
  Alcotest.run "regcache"
    [
      ( "unit",
        [
          Alcotest.test_case "LRU eviction order" `Quick
            test_lru_eviction_order;
          Alcotest.test_case "overlap hit and merge" `Quick
            test_overlap_hit_and_merge;
          Alcotest.test_case "capacity 0 = register per send" `Quick
            test_capacity_zero_register_per_send;
          Alcotest.test_case "deregister-on-eviction accounting" `Quick
            test_eviction_accounting;
          Alcotest.test_case "busy entries survive pressure" `Quick
            test_busy_entries_survive_pressure;
        ] );
      ( "rendezvous",
        [
          Alcotest.test_case "sisci end-to-end + hit rate" `Quick
            test_sisci_rendezvous_end_to_end;
          Alcotest.test_case "sisci zero-copy beats staged" `Quick
            test_sisci_rendezvous_beats_staged;
          Alcotest.test_case "via end-to-end" `Quick
            test_via_rendezvous_end_to_end;
          Alcotest.test_case "gateway transit falls back to staged" `Quick
            test_gateway_falls_back_to_staged;
          Alcotest.test_case "vchannel direct hop uses rendezvous" `Quick
            test_vchannel_direct_hop_uses_rendezvous;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_cache_on_off_identical ] );
    ]
