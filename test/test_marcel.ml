(* Tests for the marcel cooperative-thread / discrete-event engine. *)

module Engine = Marcel.Engine
module Time = Marcel.Time

let check_i64 = Alcotest.(check int)

(* Runs [f] inside a fresh engine thread and returns the virtual duration
   of the whole run. *)
let run_timed f =
  let e = Engine.create () in
  Engine.spawn e ~name:"main" (fun () -> f e);
  Engine.run e;
  Engine.now e

(* ------------------------------------------------------------------ *)
(* Time *)

let test_time_arithmetic () =
  check_i64 "us" 1_500 (Time.us 1.5);
  check_i64 "ms" 2_000_000 (Time.ms 2.0);
  check_i64 "add" 15 (Time.add 5 (Time.ns 10));
  check_i64 "diff" 7 (Time.diff 17 10);
  check_i64 "span_mul" 30 (Time.span_mul 10 3);
  Alcotest.check_raises "negative diff"
    (Invalid_argument "Time.diff: negative result") (fun () ->
      ignore (Time.diff 1 2));
  Alcotest.check_raises "negative span"
    (Invalid_argument "Time.ns: negative") (fun () -> ignore (Time.ns (-1)))

let test_time_rates () =
  (* 1 MB at 100 MB/s = 10 ms *)
  check_i64 "bytes_at_rate" (Time.ms 10.0)
    (Time.bytes_at_rate ~bytes_count:1_000_000 ~mb_per_s:100.0);
  Alcotest.(check (float 1e-9))
    "rate_mb_s" 100.0
    (Time.rate_mb_s ~bytes_count:1_000_000 (Time.ms 10.0))

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_sorts () =
  let h = Marcel.Heap.create ~cmp:compare in
  let input = [ 5; 1; 4; 1; 3; 9; 2; 6; 8; 7; 0 ] in
  List.iter (Marcel.Heap.push h) input;
  let out = List.init (List.length input) (fun _ -> Marcel.Heap.pop h) in
  Alcotest.(check (list int)) "sorted" (List.sort compare input) out;
  Alcotest.(check bool) "empty" true (Marcel.Heap.is_empty h)

let test_heap_empty_pop () =
  let h = Marcel.Heap.create ~cmp:compare in
  Alcotest.check_raises "pop empty" Not_found (fun () ->
      ignore (Marcel.Heap.pop h))

let prop_heap_matches_sort =
  QCheck.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck.(list small_int)
    (fun xs ->
      let h = Marcel.Heap.create ~cmp:compare in
      List.iter (Marcel.Heap.push h) xs;
      let out = List.init (List.length xs) (fun _ -> Marcel.Heap.pop h) in
      out = List.sort compare xs)

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_sleep_advances_clock () =
  let d = run_timed (fun _ -> Engine.sleep (Time.us 10.0)) in
  check_i64 "clock" (Time.us 10.0) d

let test_fifo_same_instant () =
  (* Threads spawned at the same instant run in spawn order. *)
  let order = ref [] in
  let e = Engine.create () in
  for i = 1 to 5 do
    Engine.spawn e ~name:"t" (fun () -> order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_sleep_interleaving () =
  let log = ref [] in
  let e = Engine.create () in
  let note tag = log := (tag, Engine.now e) :: !log in
  Engine.spawn e ~name:"a" (fun () ->
      Engine.sleep 30;
      note "a");
  Engine.spawn e ~name:"b" (fun () ->
      Engine.sleep 10;
      note "b";
      Engine.sleep 40;
      note "b2");
  Engine.run e;
  Alcotest.(check (list (pair string int)))
    "timeline"
    [ ("b", 10); ("a", 30); ("b2", 50) ]
    (List.rev !log)

let test_exception_propagates () =
  let e = Engine.create () in
  Engine.spawn e ~name:"boom" (fun () -> failwith "boom");
  Alcotest.check_raises "boom" (Failure "boom") (fun () -> Engine.run e)

let test_stalled_detection () =
  let e = Engine.create () in
  Engine.spawn e ~name:"stuck" (fun () ->
      ignore (Engine.suspend ~name:"never" (fun _wake -> ())));
  (match Engine.run e with
  | () -> Alcotest.fail "expected Stalled"
  | exception Engine.Stalled [ desc ] ->
      Alcotest.(check string) "desc" "stuck (on never)" desc
  | exception Engine.Stalled _ -> Alcotest.fail "wrong blocked list")

(* Registry swap-remove: a mix of completed, daemon-blocked and
   non-daemon-blocked threads must still yield exactly the non-daemon
   blockers in the stall report, whatever order exits shuffled the
   registry into. *)
let test_stalled_detection_many () =
  let e = Engine.create () in
  for i = 1 to 5 do
    Engine.spawn e ~name:(Printf.sprintf "done%d" i) (fun () ->
        Engine.sleep (i * 3))
  done;
  Engine.spawn e ~daemon:true ~name:"daemon" (fun () ->
      ignore (Engine.suspend ~name:"forever" (fun _wake -> ())));
  Engine.spawn e ~name:"stuck-a" (fun () ->
      Engine.sleep 5;
      ignore (Engine.suspend ~name:"lost-wake" (fun _wake -> ())));
  Engine.spawn e ~name:"stuck-b" (fun () ->
      ignore (Engine.suspend ~name:"dead-box" (fun _wake -> ())));
  (match Engine.run e with
  | () -> Alcotest.fail "expected Stalled"
  | exception Engine.Stalled blocked ->
      Alcotest.(check (list string))
        "blocked set"
        [ "stuck-a (on lost-wake)"; "stuck-b (on dead-box)" ]
        (List.sort compare blocked))

let test_daemon_not_stalled () =
  let e = Engine.create () in
  Engine.spawn e ~daemon:true ~name:"server" (fun () ->
      ignore (Engine.suspend ~name:"forever" (fun _wake -> ())));
  Engine.run e

let test_wake_resumes_at_wakers_time () =
  let e = Engine.create () in
  let waker = ref (fun () -> ()) in
  let resumed_at = ref Time.zero in
  Engine.spawn e ~name:"sleeper" (fun () ->
      Engine.suspend ~name:"wait" (fun wake -> waker := fun () -> wake ());
      resumed_at := Engine.now e);
  Engine.spawn e ~name:"waker" (fun () ->
      Engine.sleep 123;
      !waker ());
  Engine.run e;
  check_i64 "resumed at waker time" 123 !resumed_at

let test_double_wake_ignored () =
  let e = Engine.create () in
  let count = ref 0 in
  Engine.spawn e ~name:"sleeper" (fun () ->
      Engine.suspend ~name:"wait" (fun wake ->
          wake ();
          wake ());
      incr count);
  Engine.run e;
  Alcotest.(check int) "resumed once" 1 !count

let test_self_name () =
  let seen = ref "" in
  let e = Engine.create () in
  Engine.spawn e ~name:"alice" (fun () -> seen := Engine.self_name ());
  Engine.run e;
  Alcotest.(check string) "name" "alice" !seen

let test_at_callback () =
  let fired = ref Time.zero in
  let e = Engine.create () in
  Engine.at e 55 (fun () -> fired := Engine.now e);
  Engine.run e;
  check_i64 "at" 55 !fired

let test_run_until_bounded () =
  let e = Engine.create () in
  let hits = ref [] in
  List.iter
    (fun d -> Engine.at e (Time.ns d) (fun () -> hits := d :: !hits))
    [ 10; 20; 30; 40 ];
  Engine.run_until e 25;
  Alcotest.(check (list int)) "only early events" [ 10; 20 ] (List.rev !hits);
  check_i64 "clock at deadline" 25 (Engine.now e);
  (* Resuming picks up the rest. *)
  Engine.run e;
  Alcotest.(check (list int)) "all events" [ 10; 20; 30; 40 ] (List.rev !hits)

let test_at_past_rejected () =
  let e = Engine.create () in
  Engine.spawn e ~name:"t" (fun () ->
      Engine.sleep 10;
      Alcotest.check_raises "past"
        (Invalid_argument "Engine: scheduling in the past") (fun () ->
          Engine.at e 5 (fun () -> ())));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* Mutex *)

let test_mutex_exclusion () =
  let m = Marcel.Mutex.create () in
  let inside = ref 0 and max_inside = ref 0 in
  let d =
    run_timed (fun e ->
        for i = 1 to 4 do
          Engine.spawn e ~name:(Printf.sprintf "w%d" i) (fun () ->
              Marcel.Mutex.with_lock m (fun () ->
                  incr inside;
                  if !inside > !max_inside then max_inside := !inside;
                  Engine.sleep 100;
                  decr inside))
        done)
  in
  Alcotest.(check int) "never concurrent" 1 !max_inside;
  check_i64 "serialized" 400 d

let test_mutex_fifo_handoff () =
  let m = Marcel.Mutex.create () in
  let order = ref [] in
  let e = Engine.create () in
  Engine.spawn e ~name:"holder" (fun () ->
      Marcel.Mutex.lock m;
      Engine.sleep 10;
      Marcel.Mutex.unlock m);
  for i = 1 to 3 do
    Engine.spawn e ~name:"w" (fun () ->
        Engine.sleep (i);
        Marcel.Mutex.lock m;
        order := i :: !order;
        Marcel.Mutex.unlock m)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !order)

let test_mutex_unlock_unlocked () =
  let m = Marcel.Mutex.create () in
  Alcotest.check_raises "unlock" (Invalid_argument "Mutex.unlock: not locked")
    (fun () -> Marcel.Mutex.unlock m)

(* ------------------------------------------------------------------ *)
(* Condition *)

let test_condition_signal () =
  let m = Marcel.Mutex.create () in
  let c = Marcel.Condition.create () in
  let ready = ref false in
  let observed = ref false in
  let e = Engine.create () in
  Engine.spawn e ~name:"waiter" (fun () ->
      Marcel.Mutex.lock m;
      while not !ready do
        Marcel.Condition.wait c m
      done;
      observed := true;
      Marcel.Mutex.unlock m);
  Engine.spawn e ~name:"signaler" (fun () ->
      Engine.sleep 50;
      Marcel.Mutex.lock m;
      ready := true;
      Marcel.Condition.signal c;
      Marcel.Mutex.unlock m);
  Engine.run e;
  Alcotest.(check bool) "observed" true !observed

let test_condition_broadcast () =
  let m = Marcel.Mutex.create () in
  let c = Marcel.Condition.create () in
  let woken = ref 0 in
  let e = Engine.create () in
  for _ = 1 to 3 do
    Engine.spawn e ~name:"waiter" (fun () ->
        Marcel.Mutex.lock m;
        Marcel.Condition.wait c m;
        incr woken;
        Marcel.Mutex.unlock m)
  done;
  Engine.spawn e ~name:"b" (fun () ->
      Engine.sleep 10;
      Marcel.Mutex.lock m;
      Marcel.Condition.broadcast c;
      Marcel.Mutex.unlock m);
  Engine.run e;
  Alcotest.(check int) "all woken" 3 !woken

(* ------------------------------------------------------------------ *)
(* Semaphore *)

let test_semaphore_counts () =
  let s = Marcel.Semaphore.create 2 in
  Alcotest.(check bool) "try1" true (Marcel.Semaphore.try_acquire s);
  Alcotest.(check bool) "try2" true (Marcel.Semaphore.try_acquire s);
  Alcotest.(check bool) "try3" false (Marcel.Semaphore.try_acquire s);
  Marcel.Semaphore.release s;
  Alcotest.(check int) "avail" 1 (Marcel.Semaphore.available s)

let test_semaphore_blocks () =
  (* 2 permits, 4 workers each holding for 100ns: two waves. *)
  let s = Marcel.Semaphore.create 2 in
  let d =
    run_timed (fun e ->
        for _ = 1 to 4 do
          Engine.spawn e ~name:"w" (fun () ->
              Marcel.Semaphore.acquire s;
              Engine.sleep 100;
              Marcel.Semaphore.release s)
        done)
  in
  check_i64 "two waves" 200 d

let test_semaphore_negative () =
  Alcotest.check_raises "neg" (Invalid_argument "Semaphore.create: negative")
    (fun () -> ignore (Marcel.Semaphore.create (-1)))

(* ------------------------------------------------------------------ *)
(* Mailbox *)

let test_mailbox_fifo () =
  let box = Marcel.Mailbox.create () in
  let got = ref [] in
  let e = Engine.create () in
  Engine.spawn e ~name:"producer" (fun () ->
      List.iter (Marcel.Mailbox.put box) [ 1; 2; 3 ]);
  Engine.spawn e ~name:"consumer" (fun () ->
      for _ = 1 to 3 do
        got := Marcel.Mailbox.take box :: !got
      done);
  Engine.run e;
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_take_blocks () =
  let box = Marcel.Mailbox.create () in
  let took_at = ref Time.zero in
  let e = Engine.create () in
  Engine.spawn e ~name:"consumer" (fun () ->
      ignore (Marcel.Mailbox.take box);
      took_at := Engine.now e);
  Engine.spawn e ~name:"producer" (fun () ->
      Engine.sleep 77;
      Marcel.Mailbox.put box ());
  Engine.run e;
  check_i64 "took when put" 77 !took_at

let test_mailbox_bounded_put_blocks () =
  let box = Marcel.Mailbox.create ~capacity:1 () in
  let second_put_at = ref Time.zero in
  let e = Engine.create () in
  Engine.spawn e ~name:"producer" (fun () ->
      Marcel.Mailbox.put box 1;
      Marcel.Mailbox.put box 2;
      second_put_at := Engine.now e);
  Engine.spawn e ~name:"consumer" (fun () ->
      Engine.sleep 40;
      ignore (Marcel.Mailbox.take box);
      Engine.sleep 40;
      ignore (Marcel.Mailbox.take box));
  Engine.run e;
  check_i64 "blocked until first take" 40 !second_put_at

let test_mailbox_capacity_respected () =
  let box = Marcel.Mailbox.create ~capacity:2 () in
  let max_len = ref 0 in
  let e = Engine.create () in
  Engine.spawn e ~name:"producer" (fun () ->
      for i = 1 to 10 do
        Marcel.Mailbox.put box i;
        if Marcel.Mailbox.length box > !max_len then
          max_len := Marcel.Mailbox.length box
      done);
  Engine.spawn e ~name:"consumer" (fun () ->
      for _ = 1 to 10 do
        Engine.sleep 10;
        ignore (Marcel.Mailbox.take box)
      done);
  Engine.run e;
  Alcotest.(check bool) "bounded" true (!max_len <= 2)

let test_mailbox_take_opt () =
  let box = Marcel.Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Marcel.Mailbox.take_opt box);
  let e = Engine.create () in
  Engine.spawn e ~name:"p" (fun () -> Marcel.Mailbox.put box 9);
  Engine.run e;
  Alcotest.(check (option int)) "one" (Some 9) (Marcel.Mailbox.take_opt box)

(* ------------------------------------------------------------------ *)
(* Ivar *)

let test_ivar_read_blocks () =
  let iv = Marcel.Ivar.create () in
  let got = ref 0 and got_at = ref Time.zero in
  let e = Engine.create () in
  Engine.spawn e ~name:"reader" (fun () ->
      got := Marcel.Ivar.read iv;
      got_at := Engine.now e);
  Engine.spawn e ~name:"writer" (fun () ->
      Engine.sleep 5;
      Marcel.Ivar.fill iv 42);
  Engine.run e;
  Alcotest.(check int) "value" 42 !got;
  check_i64 "at fill time" 5 !got_at

let test_ivar_double_fill () =
  let iv = Marcel.Ivar.create () in
  Marcel.Ivar.fill iv 1;
  Alcotest.(check bool) "filled" true (Marcel.Ivar.is_filled iv);
  Alcotest.(check (option int)) "peek" (Some 1) (Marcel.Ivar.peek iv);
  Alcotest.check_raises "double" (Invalid_argument "Ivar.fill: already filled")
    (fun () -> Marcel.Ivar.fill iv 2)

let test_ivar_many_readers () =
  let iv = Marcel.Ivar.create () in
  let sum = ref 0 in
  let e = Engine.create () in
  for _ = 1 to 5 do
    Engine.spawn e ~name:"r" (fun () -> sum := !sum + Marcel.Ivar.read iv)
  done;
  Engine.spawn e ~name:"w" (fun () -> Marcel.Ivar.fill iv 10);
  Engine.run e;
  Alcotest.(check int) "all readers" 50 !sum

let prop_semaphore_bounds_concurrency =
  (* Random worker counts, permit counts and hold times: the number of
     holders never exceeds the permits, everyone eventually runs, and
     all permits return. *)
  QCheck.Test.make ~name:"semaphore bounds concurrency" ~count:80
    QCheck.(
      make
        Gen.(
          let* permits = int_range 1 5 in
          let* holds = list_size (int_range 1 25) (int_range 0 200) in
          return (permits, holds))
        ~print:(fun (p, hs) ->
          Printf.sprintf "permits=%d holds=[%s]" p
            (String.concat ";" (List.map string_of_int hs))))
    (fun (permits, holds) ->
      let e = Engine.create () in
      let sem = Marcel.Semaphore.create permits in
      let inside = ref 0 and peak = ref 0 and completed = ref 0 in
      List.iteri
        (fun i hold ->
          Engine.spawn e ~name:(string_of_int i) (fun () ->
              Marcel.Semaphore.acquire sem;
              incr inside;
              if !inside > !peak then peak := !inside;
              Engine.sleep (hold);
              decr inside;
              Marcel.Semaphore.release sem;
              incr completed))
        holds;
      Engine.run e;
      !peak <= permits
      && !completed = List.length holds
      && Marcel.Semaphore.available sem = permits)

let prop_mailbox_is_fifo_queue =
  (* A mailbox against a reference queue: random interleavings of puts
     and takes deliver exactly the put sequence, in order. *)
  QCheck.Test.make ~name:"mailbox matches a fifo queue" ~count:80
    QCheck.(list_of_size Gen.(int_range 1 40) (int_range 0 1000))
    (fun values ->
      let e = Engine.create () in
      let box = Marcel.Mailbox.create () in
      let taken = ref [] in
      List.iteri
        (fun i v ->
          Engine.spawn e ~name:(Printf.sprintf "p%d" i) (fun () ->
              Engine.sleep (((v * 7) mod 50));
              Marcel.Mailbox.put box (i, v)))
        values;
      Engine.spawn e ~name:"consumer" (fun () ->
          for _ = 1 to List.length values do
            taken := Marcel.Mailbox.take box :: !taken
          done);
      Engine.run e;
      (* Every value arrives exactly once; order equals put order, which
         is the (sleep, index) order. *)
      let got = List.rev !taken in
      let expect =
        List.mapi (fun i v -> ((v * 7) mod 50, i, v)) values
        |> List.sort compare
        |> List.map (fun (_, i, v) -> (i, v))
      in
      got = expect)

(* ------------------------------------------------------------------ *)
(* Barrier *)

let test_barrier_releases_together () =
  let n = 4 in
  let b = Marcel.Barrier.create n in
  let released = ref [] in
  let e = Engine.create () in
  for i = 1 to n do
    Engine.spawn e ~name:(Printf.sprintf "t%d" i) (fun () ->
        Engine.sleep ((i * 10));
        Marcel.Barrier.await b;
        released := (i, Engine.now e) :: !released)
  done;
  Engine.run e;
  (* Everyone leaves at the last arrival's instant. *)
  List.iter
    (fun (_, at) -> check_i64 "released at last arrival" 40 at)
    !released;
  Alcotest.(check int) "all released" n (List.length !released)

let test_barrier_reusable () =
  let b = Marcel.Barrier.create 2 in
  let laps = ref 0 in
  let e = Engine.create () in
  for _ = 1 to 2 do
    Engine.spawn e ~name:"t" (fun () ->
        for _ = 1 to 3 do
          Marcel.Barrier.await b;
          incr laps
        done)
  done;
  Engine.run e;
  Alcotest.(check int) "three laps each" 6 !laps

let test_barrier_validation () =
  Alcotest.check_raises "zero" (Invalid_argument "Barrier.create: parties <= 0")
    (fun () -> ignore (Marcel.Barrier.create 0))

(* ------------------------------------------------------------------ *)
(* Waitgroup *)

let test_waitgroup_waits_for_all () =
  let wg = Marcel.Waitgroup.create () in
  let finished_at = ref Time.zero in
  let e = Engine.create () in
  Marcel.Waitgroup.add wg 3;
  for i = 1 to 3 do
    Engine.spawn e ~name:"worker" (fun () ->
        Engine.sleep ((i * 100));
        Marcel.Waitgroup.done_ wg)
  done;
  Engine.spawn e ~name:"waiter" (fun () ->
      Marcel.Waitgroup.wait wg;
      finished_at := Engine.now e);
  Engine.run e;
  check_i64 "released at slowest worker" 300 !finished_at

let test_waitgroup_zero_does_not_block () =
  let wg = Marcel.Waitgroup.create () in
  let passed = ref false in
  let e = Engine.create () in
  Engine.spawn e ~name:"waiter" (fun () ->
      Marcel.Waitgroup.wait wg;
      passed := true);
  Engine.run e;
  Alcotest.(check bool) "no block" true !passed

let test_waitgroup_negative_rejected () =
  let wg = Marcel.Waitgroup.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Waitgroup.add: negative count") (fun () ->
      Marcel.Waitgroup.done_ wg)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "marcel"
    [
      ( "time",
        [
          Alcotest.test_case "arithmetic" `Quick test_time_arithmetic;
          Alcotest.test_case "rates" `Quick test_time_rates;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty pop" `Quick test_heap_empty_pop;
          QCheck_alcotest.to_alcotest prop_heap_matches_sort;
        ] );
      ( "engine",
        [
          Alcotest.test_case "sleep advances clock" `Quick
            test_sleep_advances_clock;
          Alcotest.test_case "fifo same instant" `Quick test_fifo_same_instant;
          Alcotest.test_case "sleep interleaving" `Quick
            test_sleep_interleaving;
          Alcotest.test_case "exception propagates" `Quick
            test_exception_propagates;
          Alcotest.test_case "stalled detection" `Quick test_stalled_detection;
          Alcotest.test_case "stalled detection many" `Quick
            test_stalled_detection_many;
          Alcotest.test_case "daemon not stalled" `Quick
            test_daemon_not_stalled;
          Alcotest.test_case "wake resumes at waker time" `Quick
            test_wake_resumes_at_wakers_time;
          Alcotest.test_case "double wake ignored" `Quick
            test_double_wake_ignored;
          Alcotest.test_case "self name" `Quick test_self_name;
          Alcotest.test_case "at callback" `Quick test_at_callback;
          Alcotest.test_case "at past rejected" `Quick test_at_past_rejected;
          Alcotest.test_case "run_until bounded" `Quick test_run_until_bounded;
        ] );
      ( "mutex",
        [
          Alcotest.test_case "exclusion" `Quick test_mutex_exclusion;
          Alcotest.test_case "fifo handoff" `Quick test_mutex_fifo_handoff;
          Alcotest.test_case "unlock unlocked" `Quick test_mutex_unlock_unlocked;
        ] );
      ( "condition",
        [
          Alcotest.test_case "signal" `Quick test_condition_signal;
          Alcotest.test_case "broadcast" `Quick test_condition_broadcast;
        ] );
      ( "semaphore",
        [
          Alcotest.test_case "counts" `Quick test_semaphore_counts;
          Alcotest.test_case "blocks" `Quick test_semaphore_blocks;
          Alcotest.test_case "negative" `Quick test_semaphore_negative;
          QCheck_alcotest.to_alcotest prop_semaphore_bounds_concurrency;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "take blocks" `Quick test_mailbox_take_blocks;
          Alcotest.test_case "bounded put blocks" `Quick
            test_mailbox_bounded_put_blocks;
          Alcotest.test_case "capacity respected" `Quick
            test_mailbox_capacity_respected;
          Alcotest.test_case "take_opt" `Quick test_mailbox_take_opt;
          QCheck_alcotest.to_alcotest prop_mailbox_is_fifo_queue;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "releases together" `Quick
            test_barrier_releases_together;
          Alcotest.test_case "reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "validation" `Quick test_barrier_validation;
        ] );
      ( "waitgroup",
        [
          Alcotest.test_case "waits for all" `Quick
            test_waitgroup_waits_for_all;
          Alcotest.test_case "zero no block" `Quick
            test_waitgroup_zero_does_not_block;
          Alcotest.test_case "negative" `Quick test_waitgroup_negative_rejected;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "read blocks" `Quick test_ivar_read_blocks;
          Alcotest.test_case "double fill" `Quick test_ivar_double_fill;
          Alcotest.test_case "many readers" `Quick test_ivar_many_readers;
        ] );
    ]
