(* Tests for the fault-injection plane and the reliable TCP path built
   on it: CRC detection, retransmission under loss and corruption, link
   flaps, typed timeouts, PCI stalls, and byte-reproducibility of a
   seeded faulty run. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Faults = Simnet.Faults

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

(* A two-host Ethernet with a fault plane attached and one established
   TCP connection between the hosts. *)
type fw = {
  engine : Engine.t;
  faults : Faults.t;
  net : Tcpnet.net;
  stacks : Tcpnet.t array;
  nodes : Node.t array;
  c0 : Tcpnet.conn;
  c1 : Tcpnet.conn;
}

let faulty_world ?(seed = 7L) ?(drop = 0.0) ?(corrupt = 0.0) () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  for i = 0 to 1 do
    if drop > 0.0 then Faults.set_drop faults ~fabric:"eth" ~node:i ~rate:drop;
    if corrupt > 0.0 then
      Faults.set_corrupt faults ~fabric:"eth" ~node:i ~rate:corrupt
  done;
  let net = Tcpnet.make_net engine fabric in
  let stacks = Array.map (Tcpnet.attach net) nodes in
  let c0, c1 = Tcpnet.socketpair stacks.(0) stacks.(1) in
  { engine; faults; net; stacks; nodes; c0; c1 }

(* Ship [msgs] distinct payloads one way, verifying every delivered
   byte; returns the world and the finish time. *)
let faulty_transfer w ~size ~msgs =
  let datas = List.init msgs (fun i -> payload size (Int64.of_int (100 + i))) in
  let ok = ref true and finish = ref Time.zero in
  Engine.spawn w.engine ~name:"send" (fun () ->
      List.iter (fun d -> Tcpnet.send w.c0 d) datas);
  Engine.spawn w.engine ~name:"recv" (fun () ->
      List.iter
        (fun d ->
          let sink = Bytes.create size in
          Tcpnet.recv w.c1 sink ~off:0 ~len:size;
          if not (Bytes.equal sink d) then ok := false)
        datas;
      finish := Engine.now w.engine);
  Engine.run w.engine;
  (!ok, !finish)

let test_crc_known_vector () =
  Alcotest.(check int)
    "crc32(\"123456789\")" 0xCBF43926
    (Simnet.Checksum.crc32 (Bytes.of_string "123456789"))

let test_zero_rate_plane_changes_nothing () =
  (* Attaching a plane but configuring no fault must not consume any
     randomness nor drop anything; the transfer completes intact. *)
  let w = faulty_world () in
  let ok, _ = faulty_transfer w ~size:16384 ~msgs:2 in
  Alcotest.(check bool) "intact" true ok;
  let st = Faults.stats w.faults in
  Alcotest.(check int) "no drops" 0 st.Faults.frames_dropped;
  let retrans, crc = Tcpnet.net_stats w.net in
  Alcotest.(check int) "no retransmissions" 0 retrans;
  Alcotest.(check int) "no crc rejects" 0 crc

let test_drop_retransmit_intact () =
  let w = faulty_world ~drop:0.02 () in
  let ok, _ = faulty_transfer w ~size:16384 ~msgs:6 in
  Alcotest.(check bool) "intact under 2% loss" true ok;
  let st = Faults.stats w.faults in
  Alcotest.(check bool) "some frames dropped" true
    (st.Faults.frames_dropped > 0);
  let retrans, _ = Tcpnet.net_stats w.net in
  Alcotest.(check bool) "retransmissions happened" true (retrans > 0)

let test_corruption_detected_and_recovered () =
  let w = faulty_world ~corrupt:0.05 () in
  let ok, _ = faulty_transfer w ~size:8192 ~msgs:6 in
  Alcotest.(check bool) "intact under corruption" true ok;
  let st = Faults.stats w.faults in
  Alcotest.(check bool) "some frames corrupted" true
    (st.Faults.frames_corrupted > 0);
  let _, crc = Tcpnet.net_stats w.net in
  Alcotest.(check bool) "CRC rejected the corrupted frames" true (crc > 0)

let test_flap_delays_but_completes () =
  let clean = faulty_world () in
  let _, t_clean = faulty_transfer clean ~size:16384 ~msgs:4 in
  let w = faulty_world () in
  Faults.flap_link w.faults ~fabric:"eth" ~node:1
    ~at:(Time.add Time.zero (Time.us 2_000.0))
    ~duration:(Time.us 5_000.0);
  let ok, t_flap = faulty_transfer w ~size:16384 ~msgs:4 in
  Alcotest.(check bool) "intact across the flap" true ok;
  let st = Faults.stats w.faults in
  Alcotest.(check int) "one flap recorded" 1 st.Faults.flaps;
  let retrans, _ = Tcpnet.net_stats w.net in
  Alcotest.(check bool) "flap forced retransmissions" true (retrans > 0);
  Alcotest.(check bool) "flap delayed completion" true Time.(t_clean < t_flap)

let test_pci_stall_slows_transfer () =
  let clean = faulty_world () in
  let _, t_clean = faulty_transfer clean ~size:65536 ~msgs:1 in
  let w = faulty_world () in
  (* The wire, not the PCI bus, is the steady-state bottleneck, so a
     stall that ends before the last fragment leaves the wire only makes
     fragments queue at the receiver without moving the finish line.
     Keep the stall open past the clean finish (~5.9 ms) so the tail
     fragments cross a contended bus. *)
  Faults.stall_pci w.faults w.nodes.(1)
    ~at:(Time.add Time.zero (Time.us 3_000.0))
    ~duration:(Time.us 5_000.0);
  let ok, t_stall = faulty_transfer w ~size:65536 ~msgs:1 in
  Alcotest.(check bool) "intact across the stall" true ok;
  Alcotest.(check bool) "stall slowed the transfer" true
    Time.(t_clean < t_stall)

let test_connect_timeout_on_crashed_peer () =
  let w = faulty_world () in
  Tcpnet.listen w.stacks.(1) ~port:9;
  Faults.crash_node w.faults ~node:1 ~at:Time.zero ();
  let timed_out = ref false in
  Engine.spawn w.engine ~name:"dialer" (fun () ->
      match
        Tcpnet.connect ~timeout:(Time.us 500.0) w.stacks.(0) ~node_id:1 ~port:9
      with
      | _conn -> ()
      | exception Tcpnet.Timeout _ -> timed_out := true);
  Engine.run w.engine;
  Alcotest.(check bool) "connect raised Timeout" true !timed_out

let test_recv_timeout () =
  let w = faulty_world () in
  let timed_out = ref false in
  Engine.spawn w.engine ~name:"reader" (fun () ->
      let sink = Bytes.create 64 in
      match Tcpnet.recv ~timeout:(Time.us 300.0) w.c1 sink ~off:0 ~len:64 with
      | () -> ()
      | exception Tcpnet.Timeout _ -> timed_out := true);
  Engine.run w.engine;
  Alcotest.(check bool) "recv raised Timeout" true !timed_out

let test_window_survives_reorder_dup_loss () =
  (* Under a fault plane each send is one frame, so many small messages
     (plus their acks) give the dup/reorder draws enough frames to bite. *)
  let w = faulty_world ~seed:13L ~drop:0.02 () in
  for i = 0 to 1 do
    Faults.set_reorder w.faults ~fabric:"eth" ~node:i ~rate:0.2
      ~jitter:(Time.us 300.0);
    Faults.set_duplicate w.faults ~fabric:"eth" ~node:i ~rate:0.15
  done;
  let ok, _ = faulty_transfer w ~size:2048 ~msgs:40 in
  Alcotest.(check bool) "in-order, exactly-once delivery" true ok;
  let st = Faults.stats w.faults in
  Alcotest.(check bool) "frames were actually duplicated" true
    (st.Faults.frames_duplicated > 0);
  Alcotest.(check bool) "frames were actually held back" true
    (st.Faults.frames_delayed > 0);
  Alcotest.(check bool) "receiver discarded dup/out-of-order frames" true
    (Tcpnet.duplicate_frames w.c1 > 0)

let test_max_retries_gives_up_with_attempt_count () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:7L in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net ~max_retries:3 engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let c0, _c1 = Tcpnet.socketpair s0 s1 in
  (* The peer stays up but its link is down far longer than three RTO
     backoffs: the retransmitter must give up and declare the
     connection dead, and the next send must fail fast carrying the
     attempt count. *)
  Faults.flap_link faults ~fabric:"eth" ~node:1
    ~at:(Time.add Time.zero (Time.us 1.0))
    ~duration:(Time.us 400_000.0);
  let attempts = ref (-1) in
  Engine.spawn engine ~name:"sender" (fun () ->
      Engine.sleep (Time.us 100.0);
      Tcpnet.send c0 (payload 512 31L);
      Engine.sleep (Time.us 200_000.0);
      match Tcpnet.send c0 (payload 512 32L) with
      | () -> ()
      | exception Tcpnet.Timeout { attempts = n; _ } -> attempts := n);
  Engine.run engine;
  Alcotest.(check bool) "connection declared dead" true (Tcpnet.is_dead c0);
  Alcotest.(check int) "Timeout carries the configured retry limit" 3 !attempts

let test_seeded_run_is_reproducible () =
  let run () =
    let w = faulty_world ~seed:99L ~drop:0.03 () in
    let ok, finish = faulty_transfer w ~size:16384 ~msgs:5 in
    (ok, finish, Faults.stats w.faults, Tcpnet.net_stats w.net)
  in
  let ok1, t1, s1, n1 = run () in
  let ok2, t2, s2, n2 = run () in
  Alcotest.(check bool) "both intact" true (ok1 && ok2);
  Alcotest.(check bool) "identical finish instant" true (t1 = t2);
  Alcotest.(check bool) "identical fault stats" true (s1 = s2);
  Alcotest.(check bool) "identical transport stats" true (n1 = n2)

(* ------------------------------------------------------------------ *)
(* Credit-based flow control against the fault plane: a reliable
   vchannel over one faulty TCP segment. *)

let vc_world ?credits ?(mtu = 2048) ~seed () =
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let session = Madeleine.Session.create engine in
  let channel =
    Madeleine.Channel.create session
      (Madeleine.Pmm_tcp.driver (function 0 -> s0 | _ -> s1))
      ~ranks:[ 0; 1 ] ()
  in
  let vc =
    Madeleine.Vchannel.create session ~mtu ?credits ~faults [ channel ]
  in
  (engine, vc)

let test_paused_receiver_blocks_sender () =
  (* The receiver consumes nothing for a long while: with a 2-packet
     credit window the sender must BLOCK (not drop, not buffer without
     bound) after two packets, then resume losslessly once the receiver
     starts unpacking. *)
  let module Vc = Madeleine.Vchannel in
  let credits = 2 and mtu = 2048 in
  let engine, vc = vc_world ~credits ~mtu ~seed:21L () in
  let size = 8192 and messages = 4 in
  let intact = ref true in
  Engine.spawn engine ~name:"sender" (fun () ->
      for m = 0 to messages - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:1 in
        Vc.pack oc (payload size (Int64.of_int (500 + m)));
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"paused-receiver" (fun () ->
      Engine.sleep (Time.us 20_000.0);
      for m = 0 to messages - 1 do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload size (Int64.of_int (500 + m)))) then
          intact := false
      done);
  Engine.run engine;
  Alcotest.(check bool) "delivery intact after the pause" true !intact;
  (match Vc.credit_stats vc with
  | None -> Alcotest.fail "credit plane not armed"
  | Some cs ->
      Alcotest.(check bool)
        "sender ran out of credits and blocked" true (cs.Vc.stalls > 0);
      Alcotest.(check bool) "receiver granted credits" true (cs.Vc.grants > 0));
  List.iter
    (fun q ->
      if q.Vc.q_point = "assembler_bytes" then
        Alcotest.(check bool)
          (Printf.sprintf "assembler stayed under credits*mtu (peak %d)"
             q.Vc.q_peak)
          true
          (q.Vc.q_peak <= credits * mtu))
    (Vc.queue_stats vc)

let test_unacked_log_trimmed_by_acks () =
  (* Regression: the origin's re-emission log must be trimmed as
     cumulative acks arrive, so a long flow's peak stays under the cap
     rather than growing with the stream. *)
  let module Vc = Madeleine.Vchannel in
  let mtu = 1024 in
  let engine, vc = vc_world ~mtu ~seed:23L () in
  let size = 4096 and messages = 50 in
  let intact = ref true in
  Engine.spawn engine ~name:"sender" (fun () ->
      for m = 0 to messages - 1 do
        let oc = Vc.begin_packing vc ~me:0 ~remote:1 in
        Vc.pack oc (payload size (Int64.of_int (700 + m)));
        Vc.end_packing oc
      done);
  Engine.spawn engine ~name:"receiver" (fun () ->
      for m = 0 to messages - 1 do
        let sink = Bytes.create size in
        let ic = Vc.begin_unpacking_from vc ~me:1 ~remote:0 in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        if not (Bytes.equal sink (payload size (Int64.of_int (700 + m)))) then
          intact := false
      done);
  Engine.run engine;
  Alcotest.(check bool) "long flow intact" true !intact;
  let cap = Madeleine.Config.default_unacked_window in
  let seen = ref false in
  List.iter
    (fun q ->
      if q.Vc.q_point = "unacked_packets" && q.Vc.q_node = 0 then begin
        seen := true;
        Alcotest.(check bool)
          (Printf.sprintf "unacked log peak %d <= cap %d (stream is %d pkts)"
             q.Vc.q_peak cap
             (messages * size / mtu))
          true
          (q.Vc.q_peak <= cap)
      end)
    (Vc.queue_stats vc);
  Alcotest.(check bool) "origin unacked log was instrumented" true !seen

(* ------------------------------------------------------------------ *)
(* Partitions: first-class directional cuts over rank sets, driving
   frame verdicts, heartbeats and link_up consistently. *)

let test_partition_observables () =
  let w = faulty_world () in
  Faults.partition w.faults ~fabric:"eth" [ 0 ] [ 1 ];
  Alcotest.(check bool) "cut 0->1" true
    (Faults.partitioned w.faults ~fabric:"eth" ~src:0 ~dst:1);
  Alcotest.(check bool) "cut 1->0" true
    (Faults.partitioned w.faults ~fabric:"eth" ~src:1 ~dst:0);
  Alcotest.(check bool) "link reported down across the cut" false
    (Faults.link_up w.faults ~fabric:"eth" ~node:0);
  Alcotest.(check bool) "heartbeat suppressed" false
    (Faults.heartbeat w.faults ~fabric:"eth" ~src:0 ~dst:1 ());
  (match
     Faults.frame_verdict w.faults ~fabric:"eth" ~src:0 ~dst:1 ~fragments:1
   with
  | Faults.Drop -> ()
  | _ -> Alcotest.fail "expected Drop across the cut");
  Faults.heal w.faults ~fabric:"eth";
  Alcotest.(check bool) "heartbeat restored after heal" true
    (Faults.heartbeat w.faults ~fabric:"eth" ~src:0 ~dst:1 ());
  Alcotest.(check bool) "link back up after heal" true
    (Faults.link_up w.faults ~fabric:"eth" ~node:0);
  let st = Faults.stats w.faults in
  Alcotest.(check int) "one partition recorded" 1 st.Faults.partitions;
  Alcotest.(check int) "one heal recorded" 1 st.Faults.heals;
  Alcotest.(check bool) "cut frames counted" true (st.Faults.frames_cut >= 1)

let test_partition_oneway () =
  let w = faulty_world () in
  Faults.partition w.faults ~fabric:"eth" ~oneway:true [ 0 ] [ 1 ];
  Alcotest.(check bool) "0->1 cut" true
    (Faults.partitioned w.faults ~fabric:"eth" ~src:0 ~dst:1);
  Alcotest.(check bool) "1->0 still open" false
    (Faults.partitioned w.faults ~fabric:"eth" ~src:1 ~dst:0);
  Alcotest.(check bool) "heartbeat 0->1 lost" false
    (Faults.heartbeat w.faults ~fabric:"eth" ~src:0 ~dst:1 ());
  Alcotest.(check bool) "heartbeat 1->0 delivered" true
    (Faults.heartbeat w.faults ~fabric:"eth" ~src:1 ~dst:0 ())

let test_partition_validation () =
  let w = faulty_world () in
  (match Faults.partition w.faults ~fabric:"eth" [] [ 1 ] with
  | () -> Alcotest.fail "empty side accepted"
  | exception Invalid_argument _ -> ());
  match Faults.partition w.faults ~fabric:"eth" [ 0; 1 ] [ 1 ] with
  | () -> Alcotest.fail "overlapping sides accepted"
  | exception Invalid_argument _ -> ()

let test_partition_heal_revives_dead_tcp () =
  (* A cut long enough for the retransmitter to exhaust max_retries
     declares the connection dead — and since nobody's crash epoch
     moved, the session-resync path alone would never revive it. The
     heal hook must bring the session back and later sends complete. *)
  let engine = Engine.create () in
  let fabric = Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet in
  let faults = Faults.create engine ~seed:7L in
  Fabric.set_faults fabric faults;
  let nodes =
    Array.init 2 (fun i ->
        let n = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Fabric.attach fabric n;
        n)
  in
  let net = Tcpnet.make_net ~max_retries:3 engine fabric in
  let s0 = Tcpnet.attach net nodes.(0) and s1 = Tcpnet.attach net nodes.(1) in
  let c0, c1 = Tcpnet.socketpair s0 s1 in
  let d1 = payload 2048 41L and d2 = payload 2048 42L in
  let died = ref false and intact = ref [] in
  Engine.spawn engine ~name:"cutter" (fun () ->
      Engine.sleep (Time.us 500.0);
      Faults.partition faults ~fabric:"eth" [ 0 ] [ 1 ];
      Engine.sleep (Time.us 300_000.0);
      Faults.heal faults ~fabric:"eth");
  Engine.spawn engine ~name:"send" (fun () ->
      Tcpnet.send c0 d1;
      Engine.sleep (Time.us 1_000.0);
      (* Queued into the open cut: the retransmitter gives up on it and
         the heal-time session reset discards it — the sender must
         re-offer it on the fresh session. *)
      (try Tcpnet.send c0 d2 with Tcpnet.Timeout _ -> ());
      Engine.sleep (Time.us 250_000.0);
      died := Tcpnet.is_dead c0;
      let rec resend () =
        match Tcpnet.send c0 d2 with
        | () -> ()
        | exception Tcpnet.Timeout _ ->
            Engine.sleep (Time.us 20_000.0);
            resend ()
      in
      resend ());
  Engine.spawn engine ~name:"recv" (fun () ->
      List.iter
        (fun d ->
          let sink = Bytes.create 2048 in
          (* A receiver blocked on a connection that dies is woken with
             the terminal error; it re-enters once the session revives. *)
          let rec rerecv () =
            match Tcpnet.recv c1 sink ~off:0 ~len:2048 with
            | () -> ()
            | exception Tcpnet.Timeout _ ->
                Engine.sleep (Time.us 20_000.0);
                rerecv ()
          in
          rerecv ();
          intact := Bytes.equal sink d :: !intact)
        [ d1; d2 ]);
  Engine.run engine;
  Alcotest.(check bool) "connection was declared dead mid-cut" true !died;
  Alcotest.(check (list bool))
    "both messages intact across death and heal" [ true; true ] !intact;
  let st = Faults.stats faults in
  Alcotest.(check int) "one partition" 1 st.Faults.partitions;
  Alcotest.(check int) "one heal" 1 st.Faults.heals;
  Alcotest.(check bool) "the cut consumed frames" true (st.Faults.frames_cut > 0)

(* The clusterfile syntax drives the same plane. *)
let faulty_cfg =
  {|
faults seed=11
network eth type=tcp
node a nets=eth
node b nets=eth
channel c net=eth nodes=a,b connect_timeout_us=800
fault drop net=eth node=a rate=0.02
fault drop net=eth node=b rate=0.02
|}

let test_clusterfile_fault_directives () =
  let module Cf = Clusterfile in
  let module Mad = Madeleine.Api in
  let t = Cf.load faulty_cfg in
  Alcotest.(check bool) "plane declared" true (Cf.faults t <> None);
  let chan = Cf.channel t "c" in
  let data = payload 16384 5L in
  let ok = ref false in
  Engine.spawn (Cf.engine t) ~name:"s" (fun () ->
      let oc =
        Mad.begin_packing (Madeleine.Channel.endpoint chan ~rank:0) ~remote:1
      in
      Mad.pack oc data;
      Mad.end_packing oc);
  Engine.spawn (Cf.engine t) ~name:"r" (fun () ->
      let sink = Bytes.create 16384 in
      let ic =
        Mad.begin_unpacking_from
          (Madeleine.Channel.endpoint chan ~rank:1)
          ~remote:0
      in
      Mad.unpack ic sink;
      Mad.end_unpacking ic;
      ok := Bytes.equal sink data);
  Engine.run (Cf.engine t);
  Alcotest.(check bool) "message intact over faulty cluster" true !ok

let test_clusterfile_fault_needs_plane () =
  let module Cf = Clusterfile in
  match
    Cf.load
      "network eth type=tcp\nnode a nets=eth\n\
       fault drop net=eth node=a rate=0.1"
  with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Cf.Parse_error (line, _) ->
      Alcotest.(check int) "error on the fault line" 3 line

let () =
  Alcotest.run "faults"
    [
      ( "plane",
        [
          Alcotest.test_case "crc32 known vector" `Quick test_crc_known_vector;
          Alcotest.test_case "zero-rate plane is inert" `Quick
            test_zero_rate_plane_changes_nothing;
          Alcotest.test_case "seeded run reproducible" `Quick
            test_seeded_run_is_reproducible;
        ] );
      ( "reliable-tcp",
        [
          Alcotest.test_case "drop: retransmit, intact" `Quick
            test_drop_retransmit_intact;
          Alcotest.test_case "corruption: CRC catches it" `Quick
            test_corruption_detected_and_recovered;
          Alcotest.test_case "flap: delayed, intact" `Quick
            test_flap_delays_but_completes;
          Alcotest.test_case "PCI stall slows transfer" `Quick
            test_pci_stall_slows_transfer;
          Alcotest.test_case "connect timeout on crashed peer" `Quick
            test_connect_timeout_on_crashed_peer;
          Alcotest.test_case "recv timeout" `Quick test_recv_timeout;
          Alcotest.test_case "window: reorder/dup/loss" `Quick
            test_window_survives_reorder_dup_loss;
          Alcotest.test_case "max_retries: give up, attempts" `Quick
            test_max_retries_gives_up_with_attempt_count;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "cut drives verdict/heartbeat/link_up" `Quick
            test_partition_observables;
          Alcotest.test_case "asymmetric cut is one-way" `Quick
            test_partition_oneway;
          Alcotest.test_case "malformed cuts rejected" `Quick
            test_partition_validation;
          Alcotest.test_case "heal revives a dead connection" `Quick
            test_partition_heal_revives_dead_tcp;
        ] );
      ( "flow-control",
        [
          Alcotest.test_case "paused receiver blocks sender" `Quick
            test_paused_receiver_blocks_sender;
          Alcotest.test_case "unacked log trimmed by acks" `Quick
            test_unacked_log_trimmed_by_acks;
        ] );
      ( "clusterfile",
        [
          Alcotest.test_case "fault directives" `Quick
            test_clusterfile_fault_directives;
          Alcotest.test_case "fault needs faults decl" `Quick
            test_clusterfile_fault_needs_plane;
        ] );
    ]
