(* The benchmark harness: regenerates every figure and table of the
   paper's evaluation (§5 and §6) from the simulated testbed, plus the
   ablation studies called out in DESIGN.md.

   Usage:  dune exec bench/main.exe [-- SECTION...] [--jobs N]
   where SECTION is any of: fig4 fig5 fig6 fig7 eq16k fig10 fig11
   ablations report simspeed bechamel. With no argument everything runs.

   Every figure/table point is declared as a (label, thunk) job that
   builds its own isolated world and returns a structured row; the jobs
   of a section fan out over a Parsim domain pool ([--jobs N], or
   PARSIM_JOBS, default Domain.recommended_domain_count ()) and the
   deterministic collector renders them in submission order — so the
   output is byte-identical whatever the worker count, and identical to
   the serial path ([--jobs 1]). *)

module Time = Marcel.Time
module H = Harness

let line = String.make 72 '-'

let header text =
  Printf.printf "\n%s\n%s\n%s\n" line text line

let bw n span = Time.rate_mb_s ~bytes_count:n span

(* The pool every section shares; created in [main] once the --jobs
   flag is known. *)
let the_pool : Parsim.pool option ref = ref None

let pool () =
  match !the_pool with
  | Some p -> p
  | None ->
      let p = Parsim.create ~jobs:(Parsim.default_jobs ()) in
      the_pool := Some p;
      p

let runner () = Sweeps.pool_runner (pool ())

(* Ordered fan-out for the ablation jobs below. *)
let prun jobs = Parsim.run (pool ()) jobs

(* ------------------------------------------------------------------ *)

let fig4 () = print_string (Sweeps.fig4 (runner ()))
let fig5 () = print_string (Sweeps.fig5 (runner ()))
let fig6 () = print_string (Sweeps.fig6 (runner ()))
let fig7 () = print_string (Sweeps.fig7 (runner ()))
let eq16k () = print_string (Sweeps.eq16k (runner ()))
let fig10 () = print_string (Sweeps.fig10 (runner ()))
let fig11 () = print_string (Sweeps.fig11 (runner ()))

(* ------------------------------------------------------------------ *)

(* The chaos section: the CI-sized fault-injection sweep at the fixed
   seed. Every number is simulated, so the section's output is
   byte-identical across runs and worker counts; a delivery-integrity
   or failover failure aborts the whole bench run. *)
let chaos () =
  header "Chaos -- reliable delivery under injected faults (seed 42, quick)";
  let report = Chaos.run (runner ()) ~seed:42 ~quick:true in
  print_string (Chaos.render_table report);
  if not (Chaos.all_ok report) then begin
    Printf.printf "\nbench: chaos delivery/failover check FAILED.\n";
    exit 1
  end

(* Collectives scaling: one barrier per (size, algo) over the
   hierarchical cluster-of-clusters world, spanning tree against the
   flat linear fan-in. Everything is simulated, so the table is
   byte-identical across runs; the flat/tree latency ratio at the
   largest size must clear the same floor madbench's coll-scale
   workload gates on. *)
let coll_scale_ratio_floor = 4.0

let collectives () =
  header "Collectives -- tree vs flat barrier latency (seed 42, fanout 4)";
  let cs =
    Chaos.coll_scale_run ~seed:42 ~fanout:4
      ~sizes:[ (8, 8); (16, 16); (32, 32) ]
  in
  Printf.printf "  %6s %6s %7s %12s %12s %8s\n" "ranks" "depth" "rounds"
    "tree (us)" "flat (us)" "ratio";
  List.iter
    (fun r ->
      Printf.printf "  %6d %6d %7d %12.2f %12.2f %7.2fx\n" r.Chaos.sr_ranks
        r.Chaos.sr_depth r.Chaos.sr_rounds r.Chaos.sr_tree_us r.Chaos.sr_flat_us
        (r.Chaos.sr_flat_us /. Float.max 1e-9 r.Chaos.sr_tree_us))
    cs.Chaos.cs_rows;
  Printf.printf
    "  flat/tree at the largest size: %.2fx (floor %.1fx); tree depth \
     log-like: %b\n%!"
    cs.Chaos.cs_ratio coll_scale_ratio_floor cs.Chaos.cs_log_like;
  if not (cs.Chaos.cs_log_like && cs.Chaos.cs_ratio >= coll_scale_ratio_floor)
  then begin
    Printf.printf "\nbench: collectives scaling check FAILED.\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations -- the design choices called out in DESIGN.md";

  (* 1. SISCI dual buffering. *)
  let bw_slots slots =
    let config = { Madeleine.Config.default with sisci_ring_slots = slots } in
    let t =
      H.mad_pingpong (H.sisci_world ~config ()) ~bytes_count:(1 lsl 18) ~iters:4
    in
    bw (1 lsl 18) t
  in
  Printf.printf "A1. SISCI regular-TM ring depth (256 kB messages):\n";
  let slots = [ 1; 2; 3 ] in
  prun
    (List.map
       (fun s -> (Printf.sprintf "A1/slots-%d" s, fun () -> bw_slots s))
       slots)
  |> List.iter2
       (fun s v -> Printf.printf "      %d slot(s): %6.1f MB/s\n%!" s v)
       slots;

  (* 2. The disabled DMA TM. *)
  let bw_dma use_dma =
    let config = { Madeleine.Config.default with sisci_use_dma = use_dma } in
    let t =
      H.mad_pingpong (H.sisci_world ~config ()) ~bytes_count:(1 lsl 18) ~iters:4
    in
    bw (1 lsl 18) t
  in
  Printf.printf "A2. SISCI large-block engine (256 kB messages):\n";
  (match
     prun
       [
         ("A2/pio", fun () -> bw_dma false); ("A2/dma", fun () -> bw_dma true);
       ]
   with
  | [ pio; dma ] ->
      Printf.printf "      PIO regular TM: %6.1f MB/s\n%!" pio;
      Printf.printf
        "      DMA TM:         %6.1f MB/s  (why the paper ships it disabled)\n%!"
        dma
  | _ -> assert false);

  (* 3. Aggregation in the dynamic BMMs, over TCP's expensive syscalls. *)
  let tcp_multi_field aggregation =
    let config = { Madeleine.Config.default with aggregation } in
    let w = H.tcp_world ~config () in
    let module Mad = Madeleine.Api in
    let ep0 = Madeleine.Channel.endpoint w.H.channel ~rank:0 in
    let ep1 = Madeleine.Channel.endpoint w.H.channel ~rank:1 in
    let fields = List.init 8 (fun i -> H.payload 64 (Int64.of_int i)) in
    let finish = ref Time.zero in
    Marcel.Engine.spawn w.H.engine ~name:"s" (fun () ->
        let oc = Mad.begin_packing ep0 ~remote:1 in
        List.iter (Mad.pack oc) fields;
        Mad.end_packing oc);
    Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        List.iter (fun f -> Mad.unpack ic (Bytes.create (Bytes.length f))) fields;
        Mad.end_unpacking ic;
        finish := Marcel.Engine.now w.H.engine);
    Marcel.Engine.run w.H.engine;
    Time.to_us !finish
  in
  Printf.printf "A3. BMM aggregation over TCP (8-field message, one-way):\n";
  (match
     prun
       [
         ("A3/grouped", fun () -> tcp_multi_field true);
         ("A3/eager", fun () -> tcp_multi_field false);
       ]
   with
  | [ grouped; eager ] ->
      Printf.printf "      grouped (writev): %7.1f us\n%!" grouped;
      Printf.printf "      eager per-field:  %7.1f us\n%!" eager
  | _ -> assert false);

  (* 4. Gateway software overhead. *)
  Printf.printf "A4. Gateway per-packet overhead (SCI->Myrinet, 8 kB packets):\n";
  let overheads = [ 0.; 25.; 50.; 100.; 200. ] in
  prun
    (List.map
       (fun us ->
         ( Printf.sprintf "A4/%.0fus" us,
           fun () ->
             H.forwarding_bandwidth ~gateway_overhead:(Time.us us) ~mtu:8192
               ~src:0 ~dst:2 ~bytes_count:(1 lsl 19) () ))
       overheads)
  |> List.iter2
       (fun us v -> Printf.printf "      %5.0f us/step: %6.1f MB/s\n%!" us v)
       overheads;

  (* 5. The zero-copy gateway receive (static-buffer borrowing, 6.1). *)
  Printf.printf "A5. Gateway buffer borrowing (32 kB packets):\n";
  (match
     prun
       [
         ( "A5/borrow",
           fun () ->
             H.forwarding_bandwidth ~mtu:32768 ~src:0 ~dst:2
               ~bytes_count:(1 lsl 19) () );
         ( "A5/copy",
           fun () ->
             H.forwarding_bandwidth ~extra_gateway_copy:true ~mtu:32768 ~src:0
               ~dst:2 ~bytes_count:(1 lsl 19) () );
       ]
   with
  | [ zc; copy ] ->
      Printf.printf "      borrow outgoing static buffer: %6.1f MB/s\n" zc;
      Printf.printf "      naive temporary + extra copy:  %6.1f MB/s\n%!" copy
  | _ -> assert false);

  (* 6. Express flushing: the latency cost of receive_EXPRESS on a
     network where it is not free. *)
  let express_cost r_mode =
    let w = H.tcp_world () in
    let module Mad = Madeleine.Api in
    let ep0 = Madeleine.Channel.endpoint w.H.channel ~rank:0 in
    let ep1 = Madeleine.Channel.endpoint w.H.channel ~rank:1 in
    let finish = ref Time.zero in
    Marcel.Engine.spawn w.H.engine ~name:"s" (fun () ->
        let oc = Mad.begin_packing ep0 ~remote:1 in
        for _ = 1 to 4 do
          Mad.pack oc ~r_mode (Bytes.create 32)
        done;
        Mad.end_packing oc);
    Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        for _ = 1 to 4 do
          Mad.unpack ic ~r_mode (Bytes.create 32)
        done;
        Mad.end_unpacking ic;
        finish := Marcel.Engine.now w.H.engine);
    Marcel.Engine.run w.H.engine;
    Time.to_us !finish
  in
  Printf.printf
    "A6. receive mode on TCP (4 small fields; EXPRESS forces per-field\n\
    \     flushes where CHEAPER lets them group):\n";
  (match
     prun
       [
         ( "A6/cheaper",
           fun () -> express_cost Madeleine.Iface.Receive_cheaper );
         ( "A6/express",
           fun () -> express_cost Madeleine.Iface.Receive_express );
       ]
   with
  | [ cheaper; express ] ->
      Printf.printf "      all CHEAPER: %7.1f us\n%!" cheaper;
      Printf.printf "      all EXPRESS: %7.1f us\n%!" express
  | _ -> assert false);

  (* 7. Gateway bandwidth control: the paper's future work ("some
     sophisticated bandwidth control mechanism is needed to regulate the
     incoming communication flow on gateways"), implemented. Pacing the
     Myrinet ingress keeps its DMA from starving the outgoing SCI PIO. *)
  Printf.printf
    "A7. Gateway ingress regulation, Myrinet->SCI at 32 kB packets (the\n\
    \     paper's proposed future work, implemented):\n";
  let caps = [ None; Some 60.; Some 45.; Some 40. ] in
  prun
    (List.map
       (fun cap ->
         ( (match cap with
           | None -> "A7/unlimited"
           | Some c -> Printf.sprintf "A7/%.0f" c),
           fun () ->
             match cap with
             | None ->
                 H.forwarding_bandwidth ~mtu:32768 ~src:2 ~dst:0
                   ~bytes_count:(1 lsl 20) ()
             | Some c ->
                 H.forwarding_bandwidth ~ingress_cap_mb_s:c ~mtu:32768 ~src:2
                   ~dst:0 ~bytes_count:(1 lsl 20) () ))
       caps)
  |> List.iter2
       (fun cap v ->
         Printf.printf "      ingress %-9s %6.1f MB/s\n%!"
           (match cap with
           | None -> "unlimited:"
           | Some c -> Printf.sprintf "%.0f MB/s:" c)
           v)
       caps;

  (* 8. Adaptive polling/interrupts: the other future-work item of §7,
     implemented. Hot ping-pongs should keep polling latency; the win of
     interrupts is the bounded CPU burn while waiting. *)
  let rx_run rx_interaction ~gap_us =
    let config = { Madeleine.Config.default with rx_interaction } in
    let w = H.sisci_world ~config () in
    let module Mad = Madeleine.Api in
    let ep0 = Madeleine.Channel.endpoint w.H.channel ~rank:0 in
    let ep1 = Madeleine.Channel.endpoint w.H.channel ~rank:1 in
    let iters = 20 in
    let lat = ref 0 in
    Marcel.Engine.spawn w.H.engine ~name:"s" (fun () ->
        for _ = 1 to iters do
          (* The receiver is already waiting when the message leaves:
             idle gaps between messages are where polling burns CPU. *)
          Marcel.Engine.sleep (Time.us gap_us);
          let t0 = Marcel.Engine.now w.H.engine in
          let oc = Mad.begin_packing ep0 ~remote:1 in
          Mad.pack oc ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_packing oc;
          let ic = Mad.begin_unpacking_from ep0 ~remote:1 in
          Mad.unpack ic ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_unpacking ic;
          lat :=
            !lat + Time.diff (Marcel.Engine.now w.H.engine) t0
        done);
    Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
        for _ = 1 to iters do
          let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
          Mad.unpack ic ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_unpacking ic;
          let oc = Mad.begin_packing ep1 ~remote:0 in
          Mad.pack oc ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_packing oc
        done);
    Marcel.Engine.run w.H.engine;
    Time.to_us (!lat / (2 * iters))
  in
  Printf.printf
    "A8. Receive interaction (4 B round trips with 1 ms think time;\n\
    \     one-way latency -- interrupts trade latency for bounded CPU burn):\n";
  (match
     prun
       [
         ("A8/poll", fun () -> rx_run Madeleine.Config.Rx_poll ~gap_us:1000.0);
         ( "A8/interrupt",
           fun () -> rx_run Madeleine.Config.Rx_interrupt ~gap_us:1000.0 );
         ( "A8/adaptive",
           fun () ->
             rx_run
               (Madeleine.Config.Rx_adaptive
                  Madeleine.Config.default_adaptive_window)
               ~gap_us:1000.0 );
       ]
   with
  | [ poll; intr; adaptive ] ->
      Printf.printf "      polling:           %6.2f us\n%!" poll;
      Printf.printf "      interrupts:        %6.2f us\n%!" intr;
      Printf.printf "      adaptive (30 us):  %6.2f us\n%!" adaptive
  | _ -> assert false);

  (* 9. Multiple adapters per node (§2.1): striping one transfer across
     two Myrinet rails. The node's single 33 MHz PCI bus, not the wire,
     is the ceiling — so on this hardware a second rail does not pay. *)
  let dual_rail_bw rails =
    let module Mad = Madeleine.Api in
    let module Channel = Madeleine.Channel in
    let engine = Marcel.Engine.create () in
    let fabrics =
      List.init rails (fun i ->
          Simnet.Fabric.create engine
            ~name:(Printf.sprintf "myri-%d" i)
            ~link:Simnet.Netparams.myrinet)
    in
    let n0 = Simnet.Node.create engine ~name:"n0" ~id:0 in
    let n1 = Simnet.Node.create engine ~name:"n1" ~id:1 in
    List.iter
      (fun f ->
        Simnet.Fabric.attach f n0;
        Simnet.Fabric.attach f n1)
      fabrics;
    let session = Madeleine.Session.create engine in
    let channels =
      List.map
        (fun f ->
          let net = Bip.make_net engine f in
          let e0 = Bip.attach net n0 and e1 = Bip.attach net n1 in
          Channel.create session
            (Madeleine.Pmm_bip.driver (function 0 -> e0 | _ -> e1))
            ~ranks:[ 0; 1 ] ())
        fabrics
    in
    let per_rail = 1 lsl 20 / rails in
    List.iter
      (fun chan ->
        Marcel.Engine.spawn engine ~name:"s" (fun () ->
            let oc = Mad.begin_packing (Channel.endpoint chan ~rank:0) ~remote:1 in
            Mad.pack oc (Bytes.create per_rail);
            Mad.end_packing oc);
        Marcel.Engine.spawn engine ~name:"r" (fun () ->
            let ic =
              Mad.begin_unpacking_from (Channel.endpoint chan ~rank:1) ~remote:0
            in
            Mad.unpack ic (Bytes.create per_rail);
            Mad.end_unpacking ic))
      channels;
    Marcel.Engine.run engine;
    Time.rate_mb_s ~bytes_count:(1 lsl 20) (Marcel.Engine.now engine)
  in
  Printf.printf
    "A9. Multi-adapter striping over Myrinet rails (1 MB transfer):\n";
  let rails = [ 1; 2; 3 ] in
  prun
    (List.map
       (fun r -> (Printf.sprintf "A9/rails-%d" r, fun () -> dual_rail_bw r))
       rails)
  |> List.iter2
       (fun r v -> Printf.printf "      %d rail(s): %6.1f MB/s\n%!" r v)
       rails;

  (* 10. Incast: several senders converge on one SCI receiver. The
     receiver's PCI bus (NIC-write class) is the shared bottleneck. *)
  let incast senders =
    let module Mad = Madeleine.Api in
    let w = H.make_world ~n:(senders + 1) H.sisci_driver Simnet.Netparams.sci in
    let n = 1 lsl 19 in
    for s = 1 to senders do
      Marcel.Engine.spawn w.H.engine ~name:(Printf.sprintf "s%d" s) (fun () ->
          let oc =
            Mad.begin_packing
              (Madeleine.Channel.endpoint w.H.channel ~rank:s)
              ~remote:0
          in
          Mad.pack oc (Bytes.create n);
          Mad.end_packing oc)
    done;
    for _ = 1 to senders do
      Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
          let ic =
            Mad.begin_unpacking (Madeleine.Channel.endpoint w.H.channel ~rank:0)
          in
          Mad.unpack ic (Bytes.create n);
          Mad.end_unpacking ic)
    done;
    Marcel.Engine.run w.H.engine;
    Time.rate_mb_s ~bytes_count:(senders * n) (Marcel.Engine.now w.H.engine)
  in
  Printf.printf
    "A10. Incast over SCI (concurrent senders to one receiver, aggregate):\n";
  let senders = [ 1; 2; 4 ] in
  prun
    (List.map
       (fun s -> (Printf.sprintf "A10/senders-%d" s, fun () -> incast s))
       senders)
  |> List.iter2
       (fun s v -> Printf.printf "      %d sender(s): %6.1f MB/s\n%!" s v)
       senders

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of simulating each
   experiment (one Test.make per reproduced figure). *)

let bechamel () =
  header "Bechamel -- wall-clock cost of each experiment's simulation";
  let open Bechamel in
  let open Toolkit in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      stage "fig4.sisci-pingpong" (fun () ->
          ignore (H.mad_pingpong (H.sisci_world ()) ~bytes_count:8192 ~iters:2));
      stage "fig5.bip-pingpong" (fun () ->
          ignore (H.mad_pingpong (H.bip_world ()) ~bytes_count:8192 ~iters:2));
      stage "fig6.chmad-pingpong" (fun () ->
          ignore (H.mpi_pingpong H.Chmad ~bytes_count:8192 ~iters:2));
      stage "fig7.nexus-rsr" (fun () ->
          ignore
            (H.nexus_roundtrip H.Nexus_mad_sisci ~bytes_count:1024 ~iters:2));
      stage "fig10.forwarding" (fun () ->
          ignore
            (H.forwarding_bandwidth ~mtu:16384 ~src:0 ~dst:2
               ~bytes_count:(1 lsl 17) ()));
      stage "fig11.forwarding-reverse" (fun () ->
          ignore
            (H.forwarding_bandwidth ~mtu:16384 ~src:2 ~dst:0
               ~bytes_count:(1 lsl 17) ()));
    ]
  in
  let test = Test.make_grouped ~name:"madeleine2" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Bechamel.Time.second 0.25) ~kde:None ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure per_test ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-36s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        per_test)
    merged

(* ------------------------------------------------------------------ *)

(* Simulator throughput ("simspeed"): host events per host wall-clock
   second. The event counts are deterministic (they replay the same
   simulated schedule every run); only the wall time varies, so each
   scenario runs [simspeed_reps] times and reports the fastest — the
   least-disturbed run is the best estimate of the simulator's actual
   speed on an idle machine. See docs/MODEL.md, "Host performance
   model". *)

let simspeed_json = ref false
let simspeed_baseline : string option ref = ref None
let simspeed_gate_failed = ref false
let simspeed_reps = 6
let simspeed_json_file = "BENCH_simspeed.json"

(* The parallel sweep scenario: a fixed batch of identical, independent
   SISCI ping-pong worlds fanned out over a fixed-size Parsim pool.
   Aggregate events/s across the domains is the metric; comparing the
   "@N domains" line against the "serial" line gives the sweep speedup
   on the measuring host. Worlds and domain count are pinned so the
   scenario label and event count stay machine-independent. *)
let parallel_sweep_worlds = 8
let parallel_sweep_domains = 4
let parallel_serial_label = "parallel sweep 8x sisci serial"

let parallel_domains_label =
  Printf.sprintf "parallel sweep 8x sisci @%d domains" parallel_sweep_domains

let parallel_sweep_events pool =
  let jobs =
    List.init parallel_sweep_worlds (fun i ->
        ( Printf.sprintf "sisci-world-%d" i,
          fun () ->
            let w = H.sisci_world () in
            ignore (H.mad_pingpong w ~bytes_count:(1 lsl 20) ~iters:4);
            Marcel.Engine.events_processed w.H.engine ))
  in
  List.fold_left ( + ) 0 (Parsim.run pool jobs)

(* The SchedOpt workload: 10 000 concurrent small-message logical flows
   (100 sender threads x 100 one-message flows of 64 B) crossing the
   two physical connections of the two-cluster world through the
   gateway. With sched=fifo every message pays its own wire packet and
   its own ~50 us gateway step; sched=aggreg merges the trains into a
   few dozen aggregates. The simulated finish times of the two variants
   give the aggregation goodput ratio recorded in the JSON and gated
   below. *)
let sched_flows_senders = 100
let sched_flows_msgs = 100
let sched_flows_size = 64
let sched_fifo_label = "10k flows 64B sched=fifo"
let sched_aggreg_label = "10k flows 64B sched=aggreg"
let sched_fifo_finish_us = ref 0.0
let sched_aggreg_finish_us = ref 0.0

let sched_flows_events ~aggreg =
  let w = H.two_cluster_world () in
  let vc =
    Madeleine.Vchannel.create w.H.cw_session ~mtu:16384
      ?sched:(if aggreg then Some (Madeleine.Sched.aggreg ()) else None)
      [ w.H.ch_sci; w.H.ch_myri ]
  in
  let total = sched_flows_senders * sched_flows_msgs in
  let fin = ref 0 in
  let out = Bytes.create sched_flows_size in
  for s = 0 to sched_flows_senders - 1 do
    Marcel.Engine.spawn w.H.cw_engine ~name:(Printf.sprintf "s%d" s)
      (fun () ->
        for i = 0 to sched_flows_msgs - 1 do
          let flow = if aggreg then (s * sched_flows_msgs) + i + 1 else 0 in
          let oc = Madeleine.Vchannel.begin_packing vc ~flow ~me:0 ~remote:2 in
          Madeleine.Vchannel.pack oc out;
          Madeleine.Vchannel.end_packing oc
        done)
  done;
  let finish = ref Marcel.Time.zero in
  Marcel.Engine.spawn w.H.cw_engine ~name:"r" (fun () ->
      let sink = Bytes.create sched_flows_size in
      for _ = 1 to total do
        let ic = Madeleine.Vchannel.begin_unpacking vc ~me:2 in
        Madeleine.Vchannel.unpack ic sink;
        Madeleine.Vchannel.end_unpacking ic;
        incr fin
      done;
      finish := Marcel.Engine.now w.H.cw_engine);
  Marcel.Engine.run w.H.cw_engine;
  assert (!fin = total);
  (if aggreg then sched_aggreg_finish_us else sched_fifo_finish_us) :=
    Marcel.Time.to_us !finish;
  Marcel.Engine.events_processed w.H.cw_engine

(* The zero-copy rendezvous scenarios: the same 1 MB ping-pong as the
   staged line, with the long-message path switched on — once with a
   warm pin-down cache and once with the cache disabled (a cold pin on
   every send). The simulated one-way times of all three variants are
   deterministic; the warm/staged ratio is the zero-copy bandwidth gain
   recorded in the JSON and gated below. *)
let rdv_staged_us = ref 0.0
let rdv_zero_us = ref 0.0
let rdv_zero_label = "sisci 1MB rendezvous zero-copy"
let rdv_cold_label = "sisci 1MB rendezvous cold-cache"

let rdv_bench_config ~entries =
  {
    Madeleine.Config.default with
    Madeleine.Config.rendezvous_threshold = Some 32768;
    regcache_entries = entries;
  }

let simspeed_scenarios : (string * (unit -> int)) list =
  [
    ( "sisci 1MB ping-pong",
      fun () ->
        let w = H.sisci_world () in
        rdv_staged_us :=
          Marcel.Time.to_us
            (H.mad_pingpong w ~bytes_count:(1 lsl 20) ~iters:4);
        Marcel.Engine.events_processed w.H.engine );
    ( rdv_zero_label,
      fun () ->
        let w = H.sisci_world ~config:(rdv_bench_config ~entries:8) () in
        rdv_zero_us :=
          Marcel.Time.to_us
            (H.mad_pingpong w ~bytes_count:(1 lsl 20) ~iters:4);
        Marcel.Engine.events_processed w.H.engine );
    ( rdv_cold_label,
      fun () ->
        let w = H.sisci_world ~config:(rdv_bench_config ~entries:0) () in
        ignore (H.mad_pingpong w ~bytes_count:(1 lsl 20) ~iters:4);
        Marcel.Engine.events_processed w.H.engine );
    ( "gateway forwarding 1MB @16kB",
      fun () ->
        let w = H.two_cluster_world () in
        let vc =
          Madeleine.Vchannel.create w.H.cw_session ~mtu:16384
            [ w.H.ch_sci; w.H.ch_myri ]
        in
        let msgs = 4 in
        let fin = ref 0 in
        let out = Bytes.create (1 lsl 20) in
        let sink = Bytes.create (1 lsl 20) in
        Marcel.Engine.spawn w.H.cw_engine ~name:"s" (fun () ->
            for _ = 1 to msgs do
              let oc =
                Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2
              in
              Madeleine.Vchannel.pack oc out;
              Madeleine.Vchannel.end_packing oc
            done);
        Marcel.Engine.spawn w.H.cw_engine ~name:"r" (fun () ->
            for _ = 1 to msgs do
              let ic =
                Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0
              in
              Madeleine.Vchannel.unpack ic sink;
              Madeleine.Vchannel.end_unpacking ic;
              incr fin
            done);
        Marcel.Engine.run w.H.cw_engine;
        assert (!fin = msgs);
        Marcel.Engine.events_processed w.H.cw_engine );
    (* The chaos workload with no fault plane attached: guards the
       fault-free fast path against overhead from the fault machinery
       (the dispatch is a single [Fabric.faults] check). *)
    ("chaos clean-path tcp pingpong", Chaos.clean_path_events);
    (* The windowed reliable protocol with a fault plane attached but
       inert: guards the fault-free fast path of the go-back-N sender
       (sequencing, ack bookkeeping, RTO arming) — and, next to the
       stop-and-wait line, shows what the window machinery itself
       costs when nothing is ever retransmitted. *)
    ( "reliable tcp inert window=8",
      fun () -> Chaos.inert_window_events ~window:8 );
    ( "reliable tcp inert stop-and-wait",
      fun () -> Chaos.inert_window_events ~window:1 );
    (* The credit plane armed but never binding: the window is generous
       enough that no sender ever stalls, so these guard the cost the
       credit bookkeeping (shipped/granted counters, grant emission on
       consumption) adds to the fast path. The credits-off path itself
       is guarded by the two scenarios above plus the ping-pong ones —
       unset, no credit state exists at all. *)
    ( "inert-credit vchannel pingpong",
      fun () ->
        let w = H.two_cluster_world () in
        let vc =
          Madeleine.Vchannel.create w.H.cw_session ~mtu:16384 ~credits:64
            [ w.H.ch_sci ]
        in
        let iters = 48 in
        let ball = Bytes.create 16384 in
        Marcel.Engine.spawn w.H.cw_engine ~name:"s" (fun () ->
            for _ = 1 to iters do
              let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:1 in
              Madeleine.Vchannel.pack oc ball;
              Madeleine.Vchannel.end_packing oc;
              let ic =
                Madeleine.Vchannel.begin_unpacking_from vc ~me:0 ~remote:1
              in
              Madeleine.Vchannel.unpack ic ball;
              Madeleine.Vchannel.end_unpacking ic
            done);
        Marcel.Engine.spawn w.H.cw_engine ~name:"r" (fun () ->
            let pong = Bytes.create 16384 in
            for _ = 1 to iters do
              let ic =
                Madeleine.Vchannel.begin_unpacking_from vc ~me:1 ~remote:0
              in
              Madeleine.Vchannel.unpack ic pong;
              Madeleine.Vchannel.end_unpacking ic;
              let oc = Madeleine.Vchannel.begin_packing vc ~me:1 ~remote:0 in
              Madeleine.Vchannel.pack oc pong;
              Madeleine.Vchannel.end_packing oc
            done);
        Marcel.Engine.run w.H.cw_engine;
        Marcel.Engine.events_processed w.H.cw_engine );
    ( "inert-credit gateway forwarding",
      fun () ->
        let w = H.two_cluster_world () in
        let vc =
          Madeleine.Vchannel.create w.H.cw_session ~mtu:16384 ~credits:256
            ~gw_pool:64
            [ w.H.ch_sci; w.H.ch_myri ]
        in
        let msgs = 4 in
        let fin = ref 0 in
        let out = Bytes.create (1 lsl 20) in
        let sink = Bytes.create (1 lsl 20) in
        Marcel.Engine.spawn w.H.cw_engine ~name:"s" (fun () ->
            for _ = 1 to msgs do
              let oc = Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2 in
              Madeleine.Vchannel.pack oc out;
              Madeleine.Vchannel.end_packing oc
            done);
        Marcel.Engine.spawn w.H.cw_engine ~name:"r" (fun () ->
            for _ = 1 to msgs do
              let ic =
                Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0
              in
              Madeleine.Vchannel.unpack ic sink;
              Madeleine.Vchannel.end_unpacking ic;
              incr fin
            done);
        Marcel.Engine.run w.H.cw_engine;
        assert (!fin = msgs);
        Marcel.Engine.events_processed w.H.cw_engine );
    (sched_fifo_label, fun () -> sched_flows_events ~aggreg:false);
    (sched_aggreg_label, fun () -> sched_flows_events ~aggreg:true);
  ]

let simspeed_measure f =
  let events = ref 0 and best = ref infinity in
  for _ = 1 to simspeed_reps do
    let t0 = Unix.gettimeofday () in
    let n = f () in
    let dt = Unix.gettimeofday () -. t0 in
    events := n;
    if dt < !best then best := dt
  done;
  (!events, Float.max 1e-9 !best)

(* Each result is (label, events, wall_s, events_per_s, extra-json). *)
let simspeed_write_json results =
  let oc = open_out simspeed_json_file in
  output_string oc "{ \"simspeed\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i (label, events, wall, rate, extra) ->
      Printf.fprintf oc
        "  { \"scenario\": %S, \"events\": %d, \"wall_s\": %.6f, \
         \"events_per_s\": %.1f%s }%s\n"
        label events wall rate extra
        (if i = last then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc

(* Line-based baseline reader: each scenario object sits on one line of
   the JSON written above, so plain string scanning suffices — no JSON
   library in the toolchain. *)
let simspeed_find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let simspeed_string_field line key =
  match simspeed_find_sub line (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let simspeed_float_field line key =
  match simspeed_find_sub line (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some start ->
      let n = String.length line in
      let stop = ref start in
      while
        !stop < n
        &&
        match line.[!stop] with
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let simspeed_read_baseline file =
  let ic = open_in file in
  let acc = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         ( simspeed_string_field line "scenario",
           simspeed_float_field line "events_per_s" )
       with
       | Some name, Some rate -> acc := (name, rate) :: !acc
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !acc

let simspeed_gate baseline_file results =
  let tolerance = 0.20 in
  let baseline = simspeed_read_baseline baseline_file in
  if baseline = [] then begin
    Printf.printf "  GATE ERROR: no scenarios parsed from %s\n%!" baseline_file;
    simspeed_gate_failed := true
  end
  else
    List.iter
      (fun (label, _, _, rate, _) ->
        match List.assoc_opt label baseline with
        | None ->
            Printf.printf "  GATE WARN: %S not in baseline %s\n%!" label
              baseline_file
        | Some base ->
            let ratio = rate /. Float.max 1e-9 base in
            if ratio < 1.0 -. tolerance then begin
              Printf.printf
                "  GATE FAIL: %-34s %8.2f Mev/s vs baseline %8.2f Mev/s \
                 (%.0f%% of baseline, floor %.0f%%)\n%!"
                label (rate /. 1e6) (base /. 1e6) (ratio *. 100.)
                ((1.0 -. tolerance) *. 100.);
              simspeed_gate_failed := true
            end
            else
              Printf.printf
                "  GATE OK:   %-34s %8.2f Mev/s vs baseline %8.2f Mev/s \
                 (%.0f%% of baseline)\n%!"
                label (rate /. 1e6) (base /. 1e6) (ratio *. 100.))
      results

(* The speedup floor only binds where it can physically hold: the sweep
   cannot scale on fewer cores than it has domains. *)
let simspeed_speedup_floor = 2.5

let simspeed_gate_speedup ~speedup =
  let cores = Domain.recommended_domain_count () in
  if cores >= parallel_sweep_domains then
    if speedup < simspeed_speedup_floor then begin
      Printf.printf
        "  GATE FAIL: parallel sweep speedup %.2fx < %.1fx floor on %d cores\n%!"
        speedup simspeed_speedup_floor cores;
      simspeed_gate_failed := true
    end
    else
      Printf.printf "  GATE OK:   parallel sweep speedup %.2fx (floor %.1fx)\n%!"
        speedup simspeed_speedup_floor
  else
    Printf.printf
      "  GATE SKIP: speedup floor needs >= %d cores, host has %d\n%!"
      parallel_sweep_domains cores

(* Aggregation must actually buy goodput on the 10k-flow workload; both
   finish times are simulated, so the ratio is deterministic and the
   floor always binds — no host-dependent SKIP branch. *)
let simspeed_aggregation_floor = 2.0

let simspeed_gate_aggregation ~ratio =
  if ratio < simspeed_aggregation_floor then begin
    Printf.printf
      "  GATE FAIL: aggregation goodput %.2fx < %.1fx floor on the 10k-flow \
       workload\n%!"
      ratio simspeed_aggregation_floor;
    simspeed_gate_failed := true
  end
  else
    Printf.printf "  GATE OK:   aggregation goodput %.2fx (floor %.1fx)\n%!"
      ratio simspeed_aggregation_floor

(* The warm-cache zero-copy path must actually buy bandwidth over the
   staged path at 1 MB; both one-way times are simulated, so the ratio
   is deterministic and the floor always binds. *)
let simspeed_rendezvous_floor = 1.2

let simspeed_gate_rendezvous ~gain =
  if gain < simspeed_rendezvous_floor then begin
    Printf.printf
      "  GATE FAIL: zero-copy rendezvous %.2fx < %.1fx floor over staged at \
       1 MB\n%!"
      gain simspeed_rendezvous_floor;
    simspeed_gate_failed := true
  end
  else
    Printf.printf
      "  GATE OK:   zero-copy rendezvous %.2fx over staged at 1 MB (floor \
       %.1fx)\n%!"
      gain simspeed_rendezvous_floor

let simspeed () =
  header "Simulator throughput -- discrete events per host wall-clock second";
  let serial_pool = Parsim.create ~jobs:1 in
  let domain_pool = Parsim.create ~jobs:parallel_sweep_domains in
  let scenarios =
    simspeed_scenarios
    @ [
        (parallel_serial_label, fun () -> parallel_sweep_events serial_pool);
        (parallel_domains_label, fun () -> parallel_sweep_events domain_pool);
      ]
  in
  let results =
    List.map
      (fun (label, f) ->
        let events, wall = simspeed_measure f in
        let rate = float_of_int events /. wall in
        Printf.printf "  %-34s %9d events, %8.2f Mev/s\n%!" label events
          (rate /. 1e6);
        (label, events, wall, rate, ""))
      scenarios
  in
  Parsim.shutdown serial_pool;
  Parsim.shutdown domain_pool;
  let rate_of l =
    List.find_map
      (fun (label, _, _, rate, _) -> if label = l then Some rate else None)
      results
  in
  let speedup =
    match (rate_of parallel_serial_label, rate_of parallel_domains_label) with
    | Some s, Some p -> p /. Float.max 1e-9 s
    | _ -> 1.0
  in
  Printf.printf "  parallel sweep speedup: %.2fx over serial (%d domains, %d core(s))\n%!"
    speedup parallel_sweep_domains
    (Domain.recommended_domain_count ());
  let goodput_ratio =
    if !sched_aggreg_finish_us > 0.0 then
      !sched_fifo_finish_us /. !sched_aggreg_finish_us
    else 0.0
  in
  Printf.printf
    "  aggregation goodput: %.2fx over fifo (fifo %.0f us, aggreg %.0f us \
     simulated)\n%!"
    goodput_ratio !sched_fifo_finish_us !sched_aggreg_finish_us;
  let rendezvous_gain =
    if !rdv_zero_us > 0.0 then !rdv_staged_us /. !rdv_zero_us else 0.0
  in
  Printf.printf
    "  zero-copy rendezvous: %.2fx over staged at 1 MB (staged %.0f us, \
     zero-copy %.0f us one-way simulated)\n%!"
    rendezvous_gain !rdv_staged_us !rdv_zero_us;
  let results =
    List.map
      (fun ((label, events, wall, rate, _) as r) ->
        if label = parallel_domains_label then
          ( label,
            events,
            wall,
            rate,
            Printf.sprintf ", \"domains\": %d, \"speedup_vs_serial\": %.2f"
              parallel_sweep_domains speedup )
        else if label = sched_aggreg_label then
          ( label,
            events,
            wall,
            rate,
            Printf.sprintf ", \"goodput_ratio_vs_fifo\": %.2f" goodput_ratio )
        else if label = rdv_zero_label then
          ( label,
            events,
            wall,
            rate,
            Printf.sprintf ", \"sim_bw_gain_vs_staged\": %.2f" rendezvous_gain
          )
        else r)
      results
  in
  if !simspeed_json then begin
    simspeed_write_json results;
    Printf.printf "  wrote %s\n%!" simspeed_json_file
  end;
  match !simspeed_baseline with
  | None -> ()
  | Some file ->
      simspeed_gate file results;
      simspeed_gate_speedup ~speedup;
      simspeed_gate_aggregation ~ratio:goodput_ratio;
      simspeed_gate_rendezvous ~gain:rendezvous_gain

let sections =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("eq16k", eq16k);
    ("fig10", fig10);
    ("fig11", fig11);
    ("chaos", chaos);
    ("collectives", collectives);
    ("ablations", ablations);
    ("report", fun () ->
      header "Replication report -- paper vs measured, judged";
      ignore (Report.run ()));
    ("simspeed", simspeed);
    ("bechamel", bechamel);
  ]

let () =
  let jobs_req : int option ref = ref None in
  let rec parse_flags = function
    | [] -> []
    | "--json" :: rest ->
        simspeed_json := true;
        parse_flags rest
    | "--baseline" :: file :: rest ->
        simspeed_baseline := Some file;
        parse_flags rest
    | [ "--baseline" ] ->
        Printf.eprintf "--baseline requires a file argument\n";
        exit 2
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some j when j >= 1 ->
            jobs_req := Some j;
            parse_flags rest
        | _ ->
            Printf.eprintf "--jobs requires a positive integer\n";
            exit 2)
    | [ "--jobs" ] ->
        Printf.eprintf "--jobs requires a positive integer argument\n";
        exit 2
    | name :: rest -> name :: parse_flags rest
  in
  let requested =
    match parse_flags (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | names -> names
  in
  let jobs =
    match !jobs_req with Some j -> j | None -> Parsim.default_jobs ()
  in
  the_pool := Some (Parsim.create ~jobs);
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst sections));
          exit 2)
    requested;
  (match !the_pool with Some p -> Parsim.shutdown p | None -> ());
  if !simspeed_gate_failed then begin
    Printf.printf "\nbench: simspeed regression gate FAILED.\n";
    exit 1
  end;
  Printf.printf "\nbench: all requested sections completed.\n"
