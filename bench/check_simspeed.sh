#!/bin/sh
# Host-speed regression gate: re-measure simulator event throughput and
# fail if it regressed more than 20% below the committed baseline.
# Also gates the parallel sweep scenarios: on hosts with >= 4 cores the
# "@4 domains" sweep must reach at least 2.5x the serial sweep's
# aggregate events/s (on smaller hosts the floor is skipped — the sweep
# cannot physically scale past the core count).
# Also gates scheduler aggregation: the "10k flows 64B" scenario pair
# (sched=fifo vs sched=aggreg) must show >= 2x simulated goodput with
# aggregation on. Both finish times are simulated, so this gate is
# deterministic and never skipped.
# Also gates the zero-copy long-message path: the "sisci 1MB rendezvous
# zero-copy" scenario (warm pin-down cache) must beat the staged
# "sisci 1MB ping-pong" by >= 1.2x in simulated one-way bandwidth.
# Deterministic for the same reason; the cold-cache scenario rides
# along as a host-speed line only.
#
# Usage: bench/check_simspeed.sh [baseline.json]
# Refresh the baseline with: dune exec bench/main.exe -- simspeed --json
set -eu
cd "$(dirname "$0")/.."
baseline="${1:-BENCH_simspeed.json}"
if [ ! -f "$baseline" ]; then
  echo "check_simspeed: baseline '$baseline' not found" >&2
  echo "check_simspeed: generate one with: dune exec bench/main.exe -- simspeed --json" >&2
  exit 2
fi
exec dune exec bench/main.exe -- simspeed --baseline "$baseline"
