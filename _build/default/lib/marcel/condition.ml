type t = { waiters : (unit -> unit) Queue.t }

let create () = { waiters = Queue.create () }

let wait t m =
  if not (Mutex.locked m) then invalid_arg "Condition.wait: mutex not held";
  Mutex.unlock m;
  Engine.suspend ~name:"condition" (fun wake -> Queue.push wake t.waiters);
  Mutex.lock m

let signal t = match Queue.take_opt t.waiters with Some w -> w () | None -> ()

let broadcast t =
  (* Drain into a list first: a woken thread could re-wait immediately. *)
  let all = List.of_seq (Queue.to_seq t.waiters) in
  Queue.clear t.waiters;
  List.iter (fun w -> w ()) all
