(** Write-once synchronization variable (a one-shot future). *)

type 'a t

val create : unit -> 'a t

val fill : 'a t -> 'a -> unit
(** Raises [Invalid_argument] if already filled. *)

val read : 'a t -> 'a
(** Blocks until filled; returns the value immediately if already filled. *)

val is_filled : 'a t -> bool
val peek : 'a t -> 'a option
