type t = { mutable held : bool; waiters : (unit -> unit) Queue.t }

let create () = { held = false; waiters = Queue.create () }
let locked t = t.held

let lock t =
  if not t.held then t.held <- true
  else Engine.suspend ~name:"mutex" (fun wake -> Queue.push wake t.waiters)

(* Hand-off: the mutex stays held and ownership passes to the first
   waiter, so no barging is possible. *)
let unlock t =
  if not t.held then invalid_arg "Mutex.unlock: not locked";
  match Queue.take_opt t.waiters with
  | Some wake -> wake ()
  | None -> t.held <- false

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
