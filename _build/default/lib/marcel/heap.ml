(* Slots above [size] always hold [None]: [pop] clears the slot it
   vacates, so a popped element (and anything its closure captures) is
   collectible as soon as the caller drops it. The engine's hot event
   queue is the monomorphic {!Eventq}; this generic heap stays for
   arbitrary ordered collections. *)

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a option array;
  mutable size : int;
}

let create ~cmp = { cmp; data = [||]; size = 0 }
let length h = h.size
let is_empty h = h.size = 0

let get h i = match h.data.(i) with Some x -> x | None -> assert false

let grow h =
  let cap = Array.length h.data in
  if h.size = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let ndata = Array.make ncap None in
    Array.blit h.data 0 ndata 0 h.size;
    h.data <- ndata
  end

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.cmp (get h i) (get h parent) < 0 then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && h.cmp (get h l) (get h !smallest) < 0 then smallest := l;
  if r < h.size && h.cmp (get h r) (get h !smallest) < 0 then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  grow h;
  h.data.(h.size) <- Some x;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then raise Not_found else get h 0

let pop h =
  if h.size = 0 then raise Not_found;
  let top = get h 0 in
  h.size <- h.size - 1;
  if h.size > 0 then begin
    h.data.(0) <- h.data.(h.size);
    h.data.(h.size) <- None;
    sift_down h 0
  end
  else h.data.(0) <- None;
  top
