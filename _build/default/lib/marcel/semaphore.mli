(** Counting semaphore. Used, e.g., for BIP-style credit flow control. *)

type t

val create : int -> t
(** [create n] starts with [n] permits. [n] must be non-negative. *)

val acquire : t -> unit
(** Takes one permit, blocking FIFO if none are available. *)

val try_acquire : t -> bool
val release : t -> unit
val available : t -> int
(** Current number of free permits (0 while threads are queued). *)
