type t = {
  parties : int;
  mutable arrived : int;
  mutable wakers : (unit -> unit) list;
}

let create parties =
  if parties <= 0 then invalid_arg "Barrier.create: parties <= 0";
  { parties; arrived = 0; wakers = [] }

let waiting t = t.arrived

let await t =
  t.arrived <- t.arrived + 1;
  if t.arrived = t.parties then begin
    let wakers = t.wakers in
    t.wakers <- [];
    t.arrived <- 0;
    List.iter (fun wake -> wake ()) wakers
  end
  else
    Engine.suspend ~name:"barrier" (fun wake -> t.wakers <- wake :: t.wakers)
