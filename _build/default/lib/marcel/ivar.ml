type 'a state = Empty of ('a -> unit) Queue.t | Full of 'a
type 'a t = { mutable state : 'a state }

let create () = { state = Empty (Queue.create ()) }

let fill t v =
  match t.state with
  | Full _ -> invalid_arg "Ivar.fill: already filled"
  | Empty waiters ->
      t.state <- Full v;
      Queue.iter (fun wake -> wake v) waiters

let read t =
  match t.state with
  | Full v -> v
  | Empty waiters ->
      Engine.suspend ~name:"ivar" (fun wake -> Queue.push wake waiters)

let is_filled t = match t.state with Full _ -> true | Empty _ -> false
let peek t = match t.state with Full v -> Some v | Empty _ -> None
