(** Virtual time for the simulation engine.

    Instants and spans are both counted in integer nanoseconds since the
    start of the simulation. Using integers keeps the engine fully
    deterministic: there is no floating-point drift, and event ordering is a
    total order on [(instant, sequence-number)] pairs.

    Both are immediate native [int]s, not boxed [Int64]s: 63 bits of
    nanoseconds cover ~146 virtual years, and the engine's hot loop
    (clock updates, sleeps, cost computations) stays allocation-free. *)

type t = int
(** An instant, in nanoseconds since simulation start. *)

type span = int
(** A duration, in nanoseconds. Spans are never negative. *)

val zero : t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool

val add : t -> span -> t
val diff : t -> t -> span
(** [diff later earlier] is [later - earlier]. Raises [Invalid_argument]
    if the result would be negative. *)

val ns : int -> span
val us : float -> span
val ms : float -> span
val s : float -> span

val span_add : span -> span -> span
val span_mul : span -> int -> span
val span_scale : span -> float -> span

val to_ns : t -> int
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val bytes_at_rate : bytes_count:int -> mb_per_s:float -> span
(** [bytes_at_rate ~bytes_count ~mb_per_s] is the time needed to move
    [bytes_count] bytes at [mb_per_s] MB/s (1 MB = 1e6 bytes, the convention
    used by the paper's bandwidth plots). *)

val rate_mb_s : bytes_count:int -> span -> float
(** [rate_mb_s ~bytes_count span] is the throughput in MB/s achieved by
    moving [bytes_count] bytes in [span]. Raises [Invalid_argument] on a
    zero span. *)

val pp : Format.formatter -> t -> unit
(** Prints with an adaptive unit (ns, us, ms or s). *)
