type t = { mutable counter : int; mutable wakers : (unit -> unit) list }

let create () = { counter = 0; wakers = [] }
let count t = t.counter

let add t n =
  if t.counter + n < 0 then invalid_arg "Waitgroup.add: negative count";
  t.counter <- t.counter + n;
  if t.counter = 0 then begin
    let wakers = t.wakers in
    t.wakers <- [];
    List.iter (fun wake -> wake ()) wakers
  end

let done_ t = add t (-1)

let wait t =
  if t.counter > 0 then
    Engine.suspend ~name:"waitgroup" (fun wake -> t.wakers <- wake :: t.wakers)
