type t = { mutable permits : int; waiters : (unit -> unit) Queue.t }

let create n =
  if n < 0 then invalid_arg "Semaphore.create: negative";
  { permits = n; waiters = Queue.create () }

let acquire t =
  if t.permits > 0 then t.permits <- t.permits - 1
  else Engine.suspend ~name:"semaphore" (fun wake -> Queue.push wake t.waiters)

let try_acquire t =
  if t.permits > 0 then begin
    t.permits <- t.permits - 1;
    true
  end
  else false

(* A released permit is handed directly to the first waiter, if any. *)
let release t =
  match Queue.take_opt t.waiters with
  | Some wake -> wake ()
  | None -> t.permits <- t.permits + 1

let available t = t.permits
