(** Counter of outstanding tasks; waiters block until it drains to zero
    (as in Go's sync.WaitGroup). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Adds tasks. Raises [Invalid_argument] if the count would go
    negative. *)

val done_ : t -> unit
(** Completes one task; at zero, releases all waiters. *)

val wait : t -> unit
(** Blocks while the count is positive; returns immediately at zero. *)

val count : t -> int
