type event = { time : Time.t; seq : int; action : unit -> unit }

type thread_info = {
  thread_name : string;
  daemon : bool;
  mutable blocked_on : string option;
}

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  events : event Heap.t;
  mutable live : thread_info list;
  mutable failure : exn option;
  mutable processed : int;
}

exception Stalled of string list

(* Effects performed by thread bodies. The handler is installed once per
   thread by [spawn]; resuming a continuation keeps it installed, so
   [sleep]/[suspend] work at any depth inside the thread. *)
type _ Effect.t +=
  | Sleep : Time.span -> unit Effect.t
  | Suspend : string * (('a -> unit) -> unit) -> 'a Effect.t
  | Self_name : string Effect.t

let cmp_event a b =
  let c = Time.compare a.time b.time in
  if c <> 0 then c else Stdlib.compare a.seq b.seq

let create () =
  {
    clock = Time.zero;
    seq = 0;
    events = Heap.create ~cmp:cmp_event;
    live = [];
    failure = None;
    processed = 0;
  }

let now t = t.clock
let events_processed t = t.processed

let schedule t time action =
  if Time.( < ) time t.clock then invalid_arg "Engine: scheduling in the past";
  t.seq <- t.seq + 1;
  Heap.push t.events { time; seq = t.seq; action }

let at t time action = schedule t time action

let sleep d = Effect.perform (Sleep d)
let yield () = Effect.perform (Sleep 0L)
let suspend ~name register = Effect.perform (Suspend (name, register))
let self_name () = Effect.perform Self_name

let spawn t ?(daemon = false) ~name f =
  let info = { thread_name = name; daemon; blocked_on = None } in
  t.live <- info :: t.live;
  let finish () = t.live <- List.filter (fun i -> i != info) t.live in
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = (fun () -> finish ());
      exnc =
        (fun e ->
          finish ();
          match t.failure with None -> t.failure <- Some e | Some _ -> ());
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Sleep d ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  info.blocked_on <- Some "sleep";
                  schedule t (Time.add t.clock d) (fun () ->
                      info.blocked_on <- None;
                      Effect.Deep.continue k ()))
          | Suspend (why, register) ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  info.blocked_on <- Some why;
                  let resumed = ref false in
                  let wake v =
                    if not !resumed then begin
                      resumed := true;
                      schedule t t.clock (fun () ->
                          info.blocked_on <- None;
                          Effect.Deep.continue k v)
                    end
                  in
                  register wake)
          | Self_name ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  Effect.Deep.continue k name)
          | _ -> None);
    }
  in
  schedule t t.clock (fun () -> Effect.Deep.match_with f () handler)

let run_until t deadline =
  if Time.( < ) deadline t.clock then
    invalid_arg "Engine.run_until: deadline in the past";
  let rec loop () =
    match t.failure with
    | Some e ->
        t.failure <- None;
        raise e
    | None ->
        if
          (not (Heap.is_empty t.events))
          && Time.( <= ) (Heap.peek t.events).time deadline
        then begin
          let ev = Heap.pop t.events in
          t.clock <- ev.time;
          t.processed <- t.processed + 1;
          ev.action ();
          loop ()
        end
  in
  loop ();
  t.clock <- deadline

let run t =
  let rec loop () =
    match t.failure with
    | Some e ->
        t.failure <- None;
        raise e
    | None ->
        if not (Heap.is_empty t.events) then begin
          let ev = Heap.pop t.events in
          t.clock <- ev.time;
          t.processed <- t.processed + 1;
          ev.action ();
          loop ()
        end
  in
  loop ();
  let blocked =
    List.filter_map
      (fun i ->
        match i.blocked_on with
        | Some why when not i.daemon ->
            Some (Printf.sprintf "%s (on %s)" i.thread_name why)
        | Some _ | None -> None)
      t.live
  in
  if blocked <> [] then raise (Stalled blocked)
