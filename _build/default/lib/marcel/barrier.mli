(** N-party reusable barrier for cooperative threads. *)

type t

val create : int -> t
(** [create n] synchronizes groups of [n] arrivals. [n] must be
    positive. *)

val await : t -> unit
(** Blocks until [n] threads (including this one) have arrived, then
    releases all of them; the barrier then resets for the next group. *)

val waiting : t -> int
(** Threads currently blocked (0..n-1). *)
