(** Cooperative mutex with FIFO hand-off. *)

type t

val create : unit -> t
val lock : t -> unit
val unlock : t -> unit
(** Raises [Invalid_argument] if the mutex is not locked. *)

val locked : t -> bool
val with_lock : t -> (unit -> 'a) -> 'a
