type 'a t = {
  capacity : int option;
  items : 'a Queue.t;
  takers : ('a -> unit) Queue.t;
  putters : (unit -> unit) Queue.t;
}

let create ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Mailbox.create: capacity <= 0"
  | Some _ | None -> ());
  {
    capacity;
    items = Queue.create ();
    takers = Queue.create ();
    putters = Queue.create ();
  }

let length t = Queue.length t.items

let full t =
  match t.capacity with None -> false | Some c -> Queue.length t.items >= c

let rec put t v =
  match Queue.take_opt t.takers with
  | Some taker -> taker v
  | None ->
      if full t then begin
        Engine.suspend ~name:"mailbox.put" (fun wake ->
            Queue.push wake t.putters);
        (* Another thread may have refilled the box while our wake-up was
           pending; re-check from scratch. *)
        put t v
      end
      else Queue.push v t.items

let take t =
  match Queue.take_opt t.items with
  | Some v ->
      (match Queue.take_opt t.putters with Some w -> w () | None -> ());
      v
  | None -> Engine.suspend ~name:"mailbox.take" (fun wake -> Queue.push wake t.takers)

let take_opt t =
  match Queue.take_opt t.items with
  | Some v ->
      (match Queue.take_opt t.putters with Some w -> w () | None -> ());
      Some v
  | None -> None
