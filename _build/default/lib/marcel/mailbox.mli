(** Unbounded FIFO mailbox between threads, with optional bounded mode.

    [put] blocks when a capacity was given and the box is full; [take]
    blocks while the box is empty. This is the channel primitive the
    protocol simulations and the gateway forwarding pipeline are built
    from. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** [capacity], if given, must be positive. *)

val put : 'a t -> 'a -> unit
val take : 'a t -> 'a
val take_opt : 'a t -> 'a option
(** Non-blocking take. *)

val length : 'a t -> int
