lib/marcel/mailbox.ml: Engine Queue
