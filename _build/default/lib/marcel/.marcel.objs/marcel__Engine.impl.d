lib/marcel/engine.ml: Effect Heap List Printf Stdlib Time
