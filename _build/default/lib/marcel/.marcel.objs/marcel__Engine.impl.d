lib/marcel/engine.ml: Array Effect Eventq Printf Time
