lib/marcel/mutex.ml: Engine Queue
