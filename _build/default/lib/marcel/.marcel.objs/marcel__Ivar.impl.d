lib/marcel/ivar.ml: Engine Queue
