lib/marcel/barrier.mli:
