lib/marcel/semaphore.ml: Engine Queue
