lib/marcel/condition.ml: Engine List Mutex Queue
