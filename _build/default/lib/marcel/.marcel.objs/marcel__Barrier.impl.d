lib/marcel/barrier.ml: Engine List
