lib/marcel/semaphore.mli:
