lib/marcel/mutex.mli:
