lib/marcel/heap.mli:
