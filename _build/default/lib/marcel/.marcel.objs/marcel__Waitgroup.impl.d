lib/marcel/waitgroup.ml: Engine List
