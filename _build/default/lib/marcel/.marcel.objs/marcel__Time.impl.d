lib/marcel/time.ml: Float Format Int64 Stdlib
