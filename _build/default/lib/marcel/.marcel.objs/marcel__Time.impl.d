lib/marcel/time.ml: Float Format Int Stdlib
