lib/marcel/waitgroup.mli:
