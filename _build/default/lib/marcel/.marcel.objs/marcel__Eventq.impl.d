lib/marcel/eventq.ml: Array
