lib/marcel/time.mli: Format
