lib/marcel/ivar.mli:
