lib/marcel/heap.ml: Array
