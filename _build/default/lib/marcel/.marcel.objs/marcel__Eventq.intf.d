lib/marcel/eventq.mli: Time
