lib/marcel/mailbox.mli:
