lib/marcel/condition.mli: Mutex
