lib/marcel/engine.mli: Time
