type t = int64
type span = int64

let zero = 0L
let compare = Int64.compare
let equal = Int64.equal
let ( <= ) a b = Int64.compare a b <= 0
let ( < ) a b = Int64.compare a b < 0

let add t d =
  if Stdlib.( < ) (Int64.compare d 0L) 0 then invalid_arg "Time.add: negative span";
  Int64.add t d

let diff later earlier =
  let d = Int64.sub later earlier in
  if Stdlib.( < ) (Int64.compare d 0L) 0 then invalid_arg "Time.diff: negative result";
  d

let ns n =
  if Stdlib.( < ) n 0 then invalid_arg "Time.ns: negative";
  Int64.of_int n

let of_float_ns f =
  if Stdlib.( < ) f 0.0 then invalid_arg "Time: negative span";
  Int64.of_float (Float.round f)

let us f = of_float_ns (f *. 1e3)
let ms f = of_float_ns (f *. 1e6)
let s f = of_float_ns (f *. 1e9)

let span_add = add
let span_mul d k =
  if Stdlib.( < ) k 0 then invalid_arg "Time.span_mul: negative factor";
  Int64.mul d (Int64.of_int k)

let span_scale d f = of_float_ns (Int64.to_float d *. f)

let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_s t = Int64.to_float t /. 1e9

let bytes_at_rate ~bytes_count ~mb_per_s =
  if Stdlib.( <= ) mb_per_s 0.0 then invalid_arg "Time.bytes_at_rate: rate <= 0";
  of_float_ns (float_of_int bytes_count /. mb_per_s *. 1e3)

let rate_mb_s ~bytes_count span =
  if Int64.equal span 0L then invalid_arg "Time.rate_mb_s: zero span";
  float_of_int bytes_count /. (Int64.to_float span /. 1e3)

let pp ppf t =
  let f = Int64.to_float t in
  if Stdlib.( < ) f 1e3 then Format.fprintf ppf "%Ldns" t
  else if Stdlib.( < ) f 1e6 then Format.fprintf ppf "%.2fus" (f /. 1e3)
  else if Stdlib.( < ) f 1e9 then Format.fprintf ppf "%.3fms" (f /. 1e6)
  else Format.fprintf ppf "%.3fs" (f /. 1e9)
