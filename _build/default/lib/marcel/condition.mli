(** Condition variable paired with a {!Mutex}. *)

type t

val create : unit -> t

val wait : t -> Mutex.t -> unit
(** Atomically releases the mutex and blocks; re-acquires it before
    returning. The mutex must be held by the caller. *)

val signal : t -> unit
val broadcast : t -> unit
