(** Common host-side cost charges, shared by every layer that models CPU
    work (staging copies, buffer management). *)

val memcpy : int -> unit
(** Charges the calling thread the time to copy [n] bytes through main
    memory at {!Netparams.memcpy_rate_mb_s}. Zero bytes cost nothing. *)
