lib/simnet/stats.mli: Format
