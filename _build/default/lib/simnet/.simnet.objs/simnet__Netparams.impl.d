lib/simnet/netparams.ml: Marcel
