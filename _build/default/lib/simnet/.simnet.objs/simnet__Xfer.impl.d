lib/simnet/xfer.ml: Fabric Netparams Node Option Pipeline
