lib/simnet/rng.ml: Bytes Char Int64
