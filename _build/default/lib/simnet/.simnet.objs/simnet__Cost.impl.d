lib/simnet/cost.ml: Marcel Netparams
