lib/simnet/node.mli: Fluid Format Marcel
