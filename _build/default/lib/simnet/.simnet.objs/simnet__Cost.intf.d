lib/simnet/cost.mli:
