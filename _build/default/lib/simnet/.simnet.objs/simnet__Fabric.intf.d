lib/simnet/fabric.mli: Fluid Marcel Netparams Node
