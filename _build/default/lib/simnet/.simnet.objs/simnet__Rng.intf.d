lib/simnet/rng.mli: Bytes
