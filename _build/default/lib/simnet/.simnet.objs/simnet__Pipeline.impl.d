lib/simnet/pipeline.ml: Array Fluid List Marcel Stdlib
