lib/simnet/fluid.ml: Float List Marcel Option
