lib/simnet/fluid.ml: Float Int64 List Marcel Option
