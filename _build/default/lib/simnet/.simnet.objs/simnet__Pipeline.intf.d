lib/simnet/pipeline.mli: Fluid Marcel
