lib/simnet/stream.mli: Marcel Pipeline
