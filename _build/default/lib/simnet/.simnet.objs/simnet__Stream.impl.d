lib/simnet/stream.ml: Array Fluid List Marcel Pipeline Printf Stdlib
