lib/simnet/xfer.mli: Fabric Marcel Node Pipeline
