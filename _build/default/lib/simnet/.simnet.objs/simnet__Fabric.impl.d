lib/simnet/fabric.ml: Fluid Hashtbl List Marcel Netparams Node Printf
