lib/simnet/node.ml: Fluid Format Marcel Netparams
