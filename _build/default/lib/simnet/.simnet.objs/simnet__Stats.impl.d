lib/simnet/stats.ml: Format
