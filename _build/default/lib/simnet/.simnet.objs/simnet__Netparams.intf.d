lib/simnet/netparams.mli: Marcel
