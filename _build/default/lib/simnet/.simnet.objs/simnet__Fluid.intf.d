lib/simnet/fluid.mli: Marcel
