type pci_class = Pio | Dma

let pci_use node cls =
  match cls with
  | Pio ->
      {
        Pipeline.fluid = node.Node.pci;
        weight = Netparams.pci_weight_pio;
        rate_cap = Some Netparams.pci_pio_rate_cap_mb_s;
        cls = 1;
      }
  | Dma ->
      {
        Pipeline.fluid = node.Node.pci;
        weight = Netparams.pci_weight_dma;
        rate_cap = Some Netparams.pci_dma_rate_cap_mb_s;
        cls = 0;
      }

let wire_use fluid = { Pipeline.fluid; weight = 1.0; rate_cap = None; cls = 0 }

let host_to_host engine ~fabric ~src ~dst ~src_class ~dst_class ~bytes_count
    ?mtu () =
  let link = Fabric.link fabric in
  let mtu = Option.value mtu ~default:link.Netparams.hw_mtu in
  let stages =
    [
      Pipeline.stage ~use:(pci_use src src_class) "src-pci";
      Pipeline.stage
        ~use:(wire_use (Fabric.tx fabric src))
        ~prop:link.Netparams.wire_lat "wire-tx";
      Pipeline.stage ~use:(wire_use (Fabric.rx fabric dst)) "wire-rx";
      Pipeline.stage ~use:(pci_use dst dst_class) "dst-pci";
    ]
  in
  Pipeline.run engine ~stages ~bytes_count ~mtu
