(** Staged, fragment-pipelined data movement.

    A hardware message transfer crosses several serializing resources in
    sequence (sender PCI, TX link, RX link, receiver PCI, ...). Hardware
    pipelines these stages at packet granularity: while fragment [k] is on
    the wire, fragment [k+1] is already crossing the sender's PCI bus.

    [run] models this faithfully: the message is split into MTU-sized
    fragments; one thread per stage processes fragments in order, paying
    the stage's fixed per-fragment cost plus the fluid occupancy for the
    fragment's bytes, then hands the fragment to the next stage after the
    stage's propagation delay. End-to-end time is therefore
    [sum of latencies + bottleneck-stage serialization], and any contention
    on a shared fluid (e.g. a gateway PCI bus) slows exactly the stage
    that crosses it. *)

type fluid_use = {
  fluid : Fluid.t;
  weight : float;
  rate_cap : float option;
  cls : int;  (** transaction class, see {!Fluid.transfer} *)
}

type stage = {
  label : string;
  use : fluid_use option;  (** bandwidth resource occupied per fragment *)
  per_fragment : Marcel.Time.span;  (** fixed serialized cost per fragment *)
  prop : Marcel.Time.span;  (** pipelined delay before the next stage *)
}

val stage :
  ?use:fluid_use ->
  ?per_fragment:Marcel.Time.span ->
  ?prop:Marcel.Time.span ->
  string ->
  stage

val run :
  Marcel.Engine.t -> stages:stage list -> bytes_count:int -> mtu:int -> unit
(** Blocks the calling thread until the last fragment has left the last
    stage. [stages] must be non-empty and [mtu] positive. A zero-byte
    message is carried as a single empty fragment (it still pays the fixed
    costs — that is the latency path). *)
