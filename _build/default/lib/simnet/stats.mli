(** Streaming summary statistics (Welford's algorithm). *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val min : t -> float
val max : t -> float
val mean : t -> float
val stddev : t -> float
(** Sample standard deviation; 0 when fewer than two samples. *)

val pp : Format.formatter -> t -> unit
