type t = {
  name : string;
  id : int;
  engine : Marcel.Engine.t;
  pci : Fluid.t;
}

let create engine ~name ~id =
  let pci =
    Fluid.create engine ~name:(name ^ ".pci")
      ~capacity_mb_s:Netparams.pci_capacity_mb_s
      ~contention_factor:Netparams.pci_contention_factor
      ~mixed_contention_factor:Netparams.pci_mixed_contention_factor ()
  in
  { name; id; engine; pci }

let pci_pio t ~bytes_count =
  Fluid.transfer t.pci ~bytes_count ~weight:Netparams.pci_weight_pio
    ~rate_cap:Netparams.pci_pio_rate_cap_mb_s ~cls:1 ()

let pci_dma t ~bytes_count =
  Fluid.transfer t.pci ~bytes_count ~weight:Netparams.pci_weight_dma
    ~rate_cap:Netparams.pci_dma_rate_cap_mb_s ~cls:0 ()

let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.id
