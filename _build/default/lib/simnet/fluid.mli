(** Max–min fair shared bandwidth resource.

    A [Fluid.t] models a shared transport resource — a PCI bus, the TX or
    RX side of a network link — with a fixed capacity in MB/s. Concurrent
    transfers share the capacity by *weighted max–min fairness*
    (water-filling): transfer [i] receives
    [min (rate_cap_i, weight_i * lambda)] where [lambda] is chosen so the
    allocations sum to the effective capacity.

    Weights model arbitration priority. The paper observes (§6.2.3) that
    on the gateway's PCI bus, Myrinet-initiated DMA transactions starve the
    CPU's PIO writes to the SCI segment by roughly a factor of two; giving
    DMA-class transfers twice the PIO weight reproduces exactly that.

    The optional [contention_factor] degrades capacity when two or more
    transfers are active, modelling the full-duplex "conflicts raised on
    the PCI bus" of §6.2.2 that cap the forwarding asymptote below the
    nominal half-capacity. *)

type t

val create :
  Marcel.Engine.t ->
  name:string ->
  capacity_mb_s:float ->
  ?contention_factor:float ->
  ?mixed_contention_factor:float ->
  unit ->
  t
(** [contention_factor] defaults to [1.0] (no degradation); must be in
    (0, 1]. [mixed_contention_factor] (default = [contention_factor])
    applies instead when the concurrent transfers belong to different
    transaction classes (e.g. CPU PIO interleaved with NIC DMA): on PCI,
    mixing posted NIC writes with CPU write-combined stores breaks
    bursting and costs extra turnaround cycles — the paper's §6.2.3
    observation that Myrinet DMA traffic halves the gateway's concurrent
    SCI PIO sends. *)

val name : t -> string
val active_count : t -> int

val transfer :
  t ->
  bytes_count:int ->
  weight:float ->
  ?rate_cap:float ->
  ?cls:int ->
  unit ->
  unit
(** Blocks the calling thread for as long as the weighted fair-share
    schedule needs to move [bytes_count] bytes. Must be called from inside
    an engine thread. Zero-byte transfers return immediately. [cls]
    labels the transaction class (default [0]); it only affects which
    contention factor applies when classes mix. *)

val total_bytes : t -> float
(** Total bytes moved through this resource since creation. *)

val busy_time : t -> Marcel.Time.span
(** Cumulative virtual time during which at least one transfer was
    active — [busy_time / elapsed] is the resource's utilization. *)

val utilization : t -> now:Marcel.Time.t -> float
(** Busy fraction of the interval [0, now]. *)
