module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox

(* Interior fragments carry the shared [no_callback] instead of an
   [option]: one fewer allocation per fragment on the hot path. *)
let no_callback () = ()

type fragment = { frag_len : int; on_delivered : unit -> unit }

type t = { mtu : int; intake : fragment Mailbox.t }

let create engine ~name ~stages ~mtu =
  if stages = [] then invalid_arg "Stream.create: no stages";
  if mtu <= 0 then invalid_arg "Stream.create: mtu <= 0";
  let n = List.length stages in
  let boxes = Array.init (n + 1) (fun _ -> Mailbox.create ()) in
  List.iteri
    (fun i (st : Pipeline.stage) ->
      Engine.spawn engine ~daemon:true
        ~name:(Printf.sprintf "stream:%s:%s" name st.Pipeline.label)
        (fun () ->
          while true do
            let frag = Mailbox.take boxes.(i) in
            if Stdlib.( > ) st.Pipeline.per_fragment 0 then
              Engine.sleep st.Pipeline.per_fragment;
            (match st.Pipeline.use with
            | Some { Pipeline.fluid; weight; rate_cap; cls } ->
                Fluid.transfer fluid ~bytes_count:frag.frag_len ~weight
                  ?rate_cap ~cls ()
            | None -> ());
            if Time.equal st.Pipeline.prop 0 then Mailbox.put boxes.(i + 1) frag
            else begin
              let deliver_at = Time.add (Engine.now engine) st.Pipeline.prop in
              Engine.at engine deliver_at (fun () ->
                  Mailbox.put boxes.(i + 1) frag)
            end
          done))
    stages;
  (* Final stage: run delivery callbacks in thread context. *)
  Engine.spawn engine ~daemon:true
    ~name:(Printf.sprintf "stream:%s:deliver" name)
    (fun () ->
      while true do
        let frag = Mailbox.take boxes.(n) in
        frag.on_delivered ()
      done);
  { mtu; intake = boxes.(0) }

let push t ~bytes_count ~on_delivered =
  if bytes_count < 0 then invalid_arg "Stream.push: negative size";
  let rec go remaining =
    if remaining <= t.mtu then
      Mailbox.put t.intake { frag_len = remaining; on_delivered }
    else begin
      Mailbox.put t.intake { frag_len = t.mtu; on_delivered = no_callback };
      go (remaining - t.mtu)
    end
  in
  go bytes_count
