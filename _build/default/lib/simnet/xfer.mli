(** Standard host-to-host transfer path.

    Every interface in the reproduction ultimately moves bytes through the
    same four serializing resources: the sender's PCI bus, the sender's
    NIC link (TX), the receiver's NIC link (RX) and the receiver's PCI
    bus. What differs per interface is *who masters* each PCI transaction
    (CPU PIO vs NIC DMA) and the fixed software overheads around the
    transfer — those are supplied by the protocol libraries. *)

type pci_class = Pio | Dma

val host_to_host :
  Marcel.Engine.t ->
  fabric:Fabric.t ->
  src:Node.t ->
  dst:Node.t ->
  src_class:pci_class ->
  dst_class:pci_class ->
  bytes_count:int ->
  ?mtu:int ->
  unit ->
  unit
(** Blocks for the full pipelined transfer, fragment-pipelined at [mtu]
    (defaults to the fabric's hardware MTU). Both nodes must be attached
    to the fabric. *)

val pci_use : Node.t -> pci_class -> Pipeline.fluid_use
(** The {!Pipeline} resource descriptor for one PCI crossing, with the
    class's arbitration weight and rate cap from {!Netparams}. *)
