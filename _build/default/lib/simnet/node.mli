(** A simulated host: a name, a node id and a PCI bus.

    Every byte that enters or leaves the host — PIO writes to a mapped SCI
    segment, Myrinet DMA, Ethernet DMA — crosses the node's single PCI
    bus, which is what makes the gateway experiments (Figs. 10/11)
    contention-bound. *)

type t = {
  name : string;
  id : int;
  engine : Marcel.Engine.t;
  pci : Fluid.t;
}

val create : Marcel.Engine.t -> name:string -> id:int -> t
(** Builds a host with the standard 33 MHz/32-bit PCI parameters from
    {!Netparams}. *)

val pci_pio : t -> bytes_count:int -> unit
(** Occupies the PCI bus with a CPU-initiated PIO stream. Blocking. *)

val pci_dma : t -> bytes_count:int -> unit
(** Occupies the PCI bus with a NIC-initiated DMA stream (higher
    arbitration weight). Blocking. *)

val pp : Format.formatter -> t -> unit
