module Engine = Marcel.Engine
module Time = Marcel.Time

type xfer = {
  weight : float;
  rate_cap : float option; (* MB/s *)
  cls : int; (* transaction class; mixing classes degrades the bus *)
  mutable remaining : float; (* bytes *)
  mutable rate : float; (* MB/s, current allocation *)
  wake : unit -> unit;
}

type t = {
  engine : Engine.t;
  fluid_name : string;
  capacity : float; (* MB/s *)
  contention_factor : float;
  mixed_contention_factor : float;
  mutable active : xfer list;
  mutable last_update : Time.t;
  mutable generation : int;
  mutable moved : float; (* total bytes completed *)
  mutable busy : Time.span; (* cumulative time with >= 1 active transfer *)
}

(* 1 MB/s = 1e6 bytes / 1e9 ns = 1e-3 bytes per ns. *)
let bytes_per_ns_of_mb_s r = r *. 1e-3

let create engine ~name ~capacity_mb_s ?(contention_factor = 1.0)
    ?mixed_contention_factor () =
  if capacity_mb_s <= 0.0 then invalid_arg "Fluid.create: capacity <= 0";
  if contention_factor <= 0.0 || contention_factor > 1.0 then
    invalid_arg "Fluid.create: contention_factor out of (0,1]";
  let mixed_contention_factor =
    Option.value mixed_contention_factor ~default:contention_factor
  in
  if mixed_contention_factor <= 0.0 || mixed_contention_factor > 1.0 then
    invalid_arg "Fluid.create: mixed_contention_factor out of (0,1]";
  {
    engine;
    fluid_name = name;
    capacity = capacity_mb_s;
    contention_factor;
    mixed_contention_factor;
    active = [];
    last_update = Time.zero;
    generation = 0;
    moved = 0.0;
    busy = 0L;
  }

let name t = t.fluid_name
let active_count t = List.length t.active
let total_bytes t = t.moved
let busy_time t = t.busy

let utilization t ~now =
  if Time.equal now Time.zero then 0.0
  else Int64.to_float t.busy /. Int64.to_float now

(* Weighted max-min fair allocation (water-filling). Mutates [x.rate] for
   every transfer in [xs] so that capped transfers get their cap and the
   rest share the leftover capacity in proportion to their weights. *)
let allocate capacity xs =
  let rec fill remaining_cap pending =
    if pending = [] then ()
    else begin
      let total_weight =
        List.fold_left (fun acc x -> acc +. x.weight) 0.0 pending
      in
      let lambda = remaining_cap /. total_weight in
      let capped, uncapped =
        List.partition
          (fun x ->
            match x.rate_cap with
            | Some cap -> cap <= x.weight *. lambda
            | None -> false)
          pending
      in
      if capped = [] then
        List.iter (fun x -> x.rate <- x.weight *. lambda) pending
      else begin
        let used =
          List.fold_left
            (fun acc x ->
              let cap = Option.get x.rate_cap in
              x.rate <- cap;
              acc +. cap)
            0.0 capped
        in
        fill (Float.max 0.0 (remaining_cap -. used)) uncapped
      end
    end
  in
  fill capacity xs

(* Credit progress to every active transfer for the time elapsed since the
   last reallocation. *)
let advance t =
  let now = Engine.now t.engine in
  let dt = Time.diff now t.last_update in
  if Int64.compare dt 0L > 0 then begin
    let dtf = Int64.to_float dt in
    if t.active <> [] then begin
      t.busy <- Int64.add t.busy dt;
      List.iter
        (fun x ->
          let moved = bytes_per_ns_of_mb_s x.rate *. dtf in
          x.remaining <- Float.max 0.0 (x.remaining -. moved))
        t.active
    end
  end;
  t.last_update <- now

let effective_capacity t =
  match t.active with
  | [] | [ _ ] -> t.capacity
  | x :: rest ->
      if List.exists (fun y -> y.cls <> x.cls) rest then
        t.capacity *. t.mixed_contention_factor
      else t.capacity *. t.contention_factor

let finish_epsilon = 0.5 (* bytes: below this a transfer counts as done *)

(* Reallocate rates and schedule the next completion event. The generation
   counter invalidates stale events: any membership change bumps it. *)
let rec reschedule t =
  t.generation <- t.generation + 1;
  let generation = t.generation in
  match t.active with
  | [] -> ()
  | xs ->
      allocate (effective_capacity t) xs;
      let eta x = x.remaining /. bytes_per_ns_of_mb_s x.rate in
      let next = List.fold_left (fun acc x -> Float.min acc (eta x)) infinity xs in
      let delay = Int64.of_float (Float.max 1.0 (Float.ceil next)) in
      Engine.at t.engine
        (Time.add (Engine.now t.engine) delay)
        (fun () -> if t.generation = generation then complete t)

and complete t =
  advance t;
  let finished, still =
    List.partition (fun x -> x.remaining <= finish_epsilon) t.active
  in
  t.active <- still;
  List.iter (fun x -> x.wake ()) finished;
  reschedule t

let transfer t ~bytes_count ~weight ?rate_cap ?(cls = 0) () =
  if bytes_count < 0 then invalid_arg "Fluid.transfer: negative size";
  if weight <= 0.0 then invalid_arg "Fluid.transfer: weight <= 0";
  (match rate_cap with
  | Some c when c <= 0.0 -> invalid_arg "Fluid.transfer: rate_cap <= 0"
  | Some _ | None -> ());
  if bytes_count > 0 then begin
    t.moved <- t.moved +. float_of_int bytes_count;
    Engine.suspend ~name:("fluid:" ^ t.fluid_name) (fun wake ->
        advance t;
        let x =
          {
            weight;
            rate_cap;
            cls;
            remaining = float_of_int bytes_count;
            rate = 0.0;
            wake = (fun () -> wake ());
          }
        in
        t.active <- x :: t.active;
        reschedule t)
  end
