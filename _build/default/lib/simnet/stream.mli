(** Persistent, order-preserving staged delivery pipeline.

    Where {!Pipeline.run} builds a one-shot pipeline per transfer (fine
    for synchronous transfers like rendezvous), a [Stream.t] is a
    long-lived pipeline shared by every message on one direction of one
    link: messages are fragmented and flow through the stages strictly
    FIFO, so later (smaller) messages can never overtake earlier ones —
    the in-order guarantee of real NIC hardware that per-transfer
    threads cannot provide.

    The pusher does not block: delivery continues in the stage daemons
    (posted PIO writes, kernel socket buffers, NIC send queues), and the
    [on_delivered] callback fires when the message's last fragment has
    left the final stage. *)

type t

val create :
  Marcel.Engine.t -> name:string -> stages:Pipeline.stage list -> mtu:int -> t
(** Spawns one daemon thread per stage. [mtu] is the fragmentation
    granularity — the unit at which stages overlap. *)

val push : t -> bytes_count:int -> on_delivered:(unit -> unit) -> unit
(** Enqueues one message. Never blocks; [on_delivered] runs in the final
    stage's thread context (it may perform blocking operations, but that
    delays subsequent messages on the same stream — keep it cheap). A
    zero-byte message still traverses the pipeline as one empty
    fragment. *)
