type t = {
  mutable n : int;
  mutable mn : float;
  mutable mx : float;
  mutable mean_acc : float;
  mutable m2 : float;
}

let create () =
  { n = 0; mn = infinity; mx = neg_infinity; mean_acc = 0.0; m2 = 0.0 }

let add t x =
  t.n <- t.n + 1;
  if x < t.mn then t.mn <- x;
  if x > t.mx then t.mx <- x;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc))

let count t = t.n
let min t = if t.n = 0 then nan else t.mn
let max t = if t.n = 0 then nan else t.mx
let mean t = if t.n = 0 then nan else t.mean_acc

let stddev t =
  if t.n < 2 then 0.0 else sqrt (t.m2 /. float_of_int (t.n - 1))

let pp ppf t =
  Format.fprintf ppf "n=%d min=%.3f mean=%.3f max=%.3f sd=%.3f" t.n (min t)
    (mean t) (max t) (stddev t)
