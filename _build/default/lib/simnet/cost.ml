let memcpy bytes_count =
  if bytes_count > 0 then
    Marcel.Engine.sleep
      (Marcel.Time.bytes_at_rate ~bytes_count
         ~mb_per_s:Netparams.memcpy_rate_mb_s)
