module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Pipeline = Simnet.Pipeline

(* Consumable byte queue: chunks plus a read offset into the head chunk. *)
module Bytequeue = struct
  type t = { chunks : Bytes.t Queue.t; mutable head_off : int; mutable size : int }

  let create () = { chunks = Queue.create (); head_off = 0; size = 0 }
  let length q = q.size

  let push q b =
    if Bytes.length b > 0 then begin
      Queue.push b q.chunks;
      q.size <- q.size + Bytes.length b
    end

  (* Pops up to [len] bytes into [buf] at [off]; returns count taken. *)
  let pop_into q buf ~off ~len =
    let taken = ref 0 in
    while !taken < len && q.size > 0 do
      let head = Queue.peek q.chunks in
      let avail = Bytes.length head - q.head_off in
      let want = min avail (len - !taken) in
      Bytes.blit head q.head_off buf (off + !taken) want;
      taken := !taken + want;
      q.size <- q.size - want;
      if want = avail then begin
        ignore (Queue.pop q.chunks);
        q.head_off <- 0
      end
      else q.head_off <- q.head_off + want
    done;
    !taken
end

type conn = {
  stack : t;
  mutable peer : conn option;
  inbox : Bytequeue.t;
  mutable readers : (unit -> unit) list;
  mutable data_hooks : (unit -> unit) list;
  mutable out_stream : Simnet.Stream.t option;
      (* lazily-built FIFO delivery pipeline toward the peer *)
}

and t = {
  net : net;
  host : Node.t;
  listeners : (int, conn Mailbox.t) Hashtbl.t;
}

and net = {
  engine : Engine.t;
  fabric : Fabric.t;
  stacks : (int, t) Hashtbl.t;
}

let make_net engine fabric = { engine; fabric; stacks = Hashtbl.create 16 }

let attach net node =
  if Hashtbl.mem net.stacks node.Node.id then
    invalid_arg "Tcpnet.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Tcpnet.attach: node not on the fabric";
  let t = { net; host = node; listeners = Hashtbl.create 8 } in
  Hashtbl.add net.stacks node.Node.id t;
  t

let node t = t.host

let listen t ~port =
  if Hashtbl.mem t.listeners port then
    invalid_arg "Tcpnet.listen: port already bound";
  Hashtbl.add t.listeners port (Mailbox.create ())

let accept t ~port =
  match Hashtbl.find_opt t.listeners port with
  | None -> invalid_arg "Tcpnet.accept: port not listening"
  | Some box -> Mailbox.take box

let fresh_conn stack =
  {
    stack;
    peer = None;
    inbox = Bytequeue.create ();
    readers = [];
    data_hooks = [];
    out_stream = None;
  }

let set_data_hook conn hook = conn.data_hooks <- hook :: conn.data_hooks

(* One-way small-packet time: kernel path plus wire latency. *)
let hop_latency net =
  Time.span_add Netparams.tcp_send_overhead
    (Time.span_add (Fabric.link net.fabric).Netparams.wire_lat
       Netparams.tcp_recv_overhead)

let connect t ~node_id ~port =
  let peer_stack =
    match Hashtbl.find_opt t.net.stacks node_id with
    | Some s -> s
    | None -> invalid_arg "Tcpnet.connect: unknown node"
  in
  let box =
    match Hashtbl.find_opt peer_stack.listeners port with
    | Some b -> b
    | None -> invalid_arg "Tcpnet.connect: peer not listening"
  in
  let local = fresh_conn t and remote = fresh_conn peer_stack in
  local.peer <- Some remote;
  remote.peer <- Some local;
  (* SYN / SYN-ACK round trip. *)
  Engine.sleep (Time.span_mul (hop_latency t.net) 2);
  Mailbox.put box remote;
  local

let socketpair a b =
  let ca = fresh_conn a and cb = fresh_conn b in
  ca.peer <- Some cb;
  cb.peer <- Some ca;
  (ca, cb)

let wake_readers conn =
  let readers = conn.readers in
  conn.readers <- [];
  List.iter (fun wake -> wake ()) readers;
  List.iter (fun hook -> hook ()) conn.data_hooks

let out_stream conn remote =
  match conn.out_stream with
  | Some st -> st
  | None ->
      let net = conn.stack.net in
      let link = Fabric.link net.fabric in
      let st =
        Simnet.Stream.create net.engine
          ~name:
            (Printf.sprintf "tcp.%d->%d" conn.stack.host.Node.id
               remote.stack.host.Node.id)
          ~stages:
            [
              Pipeline.stage
                ~use:(Simnet.Xfer.pci_use conn.stack.host Simnet.Xfer.Dma)
                "src-pci";
              Pipeline.stage
                ~use:
                  {
                    Pipeline.fluid = Fabric.tx net.fabric conn.stack.host;
                    weight = 1.0;
                    rate_cap = Some Netparams.tcp_rate_cap_mb_s;
                    cls = 0;
                  }
                ~prop:link.Netparams.wire_lat "eth-tx";
              Pipeline.stage
                ~use:
                  {
                    Pipeline.fluid = Fabric.rx net.fabric remote.stack.host;
                    weight = 1.0;
                    rate_cap = Some Netparams.tcp_rate_cap_mb_s;
                    cls = 0;
                  }
                "eth-rx";
              Pipeline.stage
                ~use:(Simnet.Xfer.pci_use remote.stack.host Simnet.Xfer.Dma)
                "dst-pci";
            ]
          ~mtu:link.Netparams.hw_mtu
      in
      conn.out_stream <- Some st;
      st

(* One kernel entry ships [staged] (already copied); delivery continues
   asynchronously in the per-connection FIFO stream, as with a real
   socket buffer. *)
let transmit conn staged =
  let remote =
    match conn.peer with
    | Some p -> p
    | None -> invalid_arg "Tcpnet.send: not connected"
  in
  let bytes_count = List.fold_left (fun n b -> n + Bytes.length b) 0 staged in
  Engine.sleep Netparams.tcp_send_overhead;
  Simnet.Stream.push (out_stream conn remote) ~bytes_count
    ~on_delivered:(fun () ->
      List.iter (Bytequeue.push remote.inbox) staged;
      wake_readers remote)

let send conn data = transmit conn [ Bytes.copy data ]
let send_group conn bufs = transmit conn (List.map Bytes.copy bufs)

let available conn = Bytequeue.length conn.inbox

let recv_raw conn buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Tcpnet.recv: out of bounds";
  let got = ref 0 in
  while !got < len do
    let taken = Bytequeue.pop_into conn.inbox buf ~off:(off + !got) ~len:(len - !got) in
    got := !got + taken;
    if !got < len then
      Engine.suspend ~name:"tcp.recv" (fun wake ->
          conn.readers <- (fun () -> wake ()) :: conn.readers)
  done

let recv conn buf ~off ~len =
  recv_raw conn buf ~off ~len;
  Engine.sleep Netparams.tcp_recv_overhead

let recv_group conn slices =
  List.iter (fun (buf, off, len) -> recv_raw conn buf ~off ~len) slices;
  Engine.sleep Netparams.tcp_recv_overhead
