(** Simulated TCP streams over Fast Ethernet.

    Models the Linux 2.2 kernel path of the paper's testbed: tens of
    microseconds of per-operation system-call and stack overhead, and an
    effective payload bandwidth slightly under the 12.5 MB/s wire rate.
    Streams deliver bytes reliably and in order; message boundaries are
    not preserved (it is a byte stream, so [recv] may assemble bytes from
    several sends). *)

type net
type t
(** A host TCP stack. *)

type conn
(** One end of an established stream. *)

val make_net : Marcel.Engine.t -> Simnet.Fabric.t -> net
val attach : net -> Simnet.Node.t -> t
val node : t -> Simnet.Node.t

val listen : t -> port:int -> unit
(** Opens a passive socket. Raises [Invalid_argument] if the port is
    already bound on this host. *)

val accept : t -> port:int -> conn
(** Blocks for the next incoming connection on [port] (which must be
    listening). *)

val connect : t -> node_id:int -> port:int -> conn
(** Active open; pays one round trip of handshake. Raises
    [Invalid_argument] if the target is unknown or not listening. *)

val socketpair : t -> t -> conn * conn
(** Pre-established connection between two hosts, as set up during a
    communication library's session initialization (no handshake is
    charged; session bootstrap is outside the paper's measurements).
    Returns the two ends in argument order. *)

val send : conn -> Bytes.t -> unit
(** Blocks for the kernel send path; returns when the payload has been
    handed to the stack (socket-buffer semantics), with delivery
    continuing asynchronously. *)

val recv : conn -> Bytes.t -> off:int -> len:int -> unit
(** Reads exactly [len] bytes into [buf] at [off], blocking as needed. *)

val available : conn -> int
(** Bytes currently buffered for reading. *)

val send_group : conn -> Bytes.t list -> unit
(** Scatter-gather send ([writev]): ships several buffers while paying the
    kernel entry cost only once. *)

val recv_group : conn -> (Bytes.t * int * int) list -> unit
(** Gather receive ([readv]): fills each [(buf, off, len)] slice in order,
    paying the kernel exit cost only once. *)

val set_data_hook : conn -> (unit -> unit) -> unit
(** [hook] fires whenever newly delivered bytes become readable on this
    connection (used by Madeleine's any-source message detection). *)
