lib/harness/report.ml: Float Harness List Marcel Printf String
