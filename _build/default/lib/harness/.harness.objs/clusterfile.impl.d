lib/harness/clusterfile.ml: Bip Hashtbl List Madeleine Marcel Printf Sbp Simnet Sisci String Tcpnet Via
