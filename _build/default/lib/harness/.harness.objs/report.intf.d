lib/harness/report.mli:
