lib/harness/harness.ml: Array Bip Bytes Fun Int64 List Madeleine Marcel Mpilite Nexus Printf Sbp Simnet Sisci Tcpnet Via
