lib/harness/harness.ml: Array Bip Bytes Fun List Madeleine Marcel Mpilite Nexus Printf Sbp Simnet Sisci Tcpnet Via
