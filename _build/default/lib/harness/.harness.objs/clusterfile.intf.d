lib/harness/clusterfile.mli: Madeleine Marcel Simnet
