lib/harness/harness.mli: Bytes Madeleine Marcel Mpilite Nexus Simnet
