(** The machine-checkable replication report: measures every headline
    quantity of the paper on the simulated testbed and judges it against
    a tolerance band. Run from the benchmark harness ([bench/main.exe
    report]) and enforced by the test suite, so a regression in any
    calibrated number fails CI. *)

type verdict = Match | Close | Off

val run : unit -> bool
(** Prints the full table; [true] unless some quantity is {!Off}
    (beyond twice its tolerance). *)
