(* The replication report: every headline number of the paper, measured
   on the spot and judged against a tolerance band. This is the
   machine-checkable version of EXPERIMENTS.md's summary table. *)

module Time = Marcel.Time
module H = Harness

type verdict = Match | Close | Off

type row = {
  quantity : string;
  paper : float;
  unit : string;
  measure : unit -> float;
  (* relative tolerance for Match; 2x for Close *)
  tol : float;
}

let lat_of span = Time.to_us span
let bw_of n span = Time.rate_mb_s ~bytes_count:n span
let mb = 1 lsl 20

let rows =
  [
    {
      quantity = "Fig4  Madeleine/SISCI min latency";
      paper = 3.9;
      unit = "us";
      measure =
        (fun () ->
          lat_of (H.mad_pingpong (H.sisci_world ()) ~bytes_count:4 ~iters:30));
      tol = 0.10;
    };
    {
      quantity = "Fig4  Madeleine/SISCI peak bandwidth";
      paper = 82.0;
      unit = "MB/s";
      measure =
        (fun () ->
          bw_of mb (H.mad_pingpong (H.sisci_world ()) ~bytes_count:mb ~iters:3));
      tol = 0.05;
    };
    {
      quantity = "S6.2  Madeleine/SISCI @8kB";
      paper = 58.0;
      unit = "MB/s";
      measure =
        (fun () ->
          bw_of 8192
            (H.mad_pingpong (H.sisci_world ()) ~bytes_count:8192 ~iters:10));
      tol = 0.15;
    };
    {
      quantity = "Fig5  Madeleine/BIP min latency";
      paper = 7.0;
      unit = "us";
      measure =
        (fun () ->
          lat_of (H.mad_pingpong (H.bip_world ()) ~bytes_count:4 ~iters:30));
      tol = 0.10;
    };
    {
      quantity = "Fig5  Madeleine/BIP peak bandwidth";
      paper = 122.0;
      unit = "MB/s";
      measure =
        (fun () ->
          bw_of mb (H.mad_pingpong (H.bip_world ()) ~bytes_count:mb ~iters:3));
      tol = 0.05;
    };
    {
      quantity = "Fig5  raw BIP min latency";
      paper = 5.0;
      unit = "us";
      measure = (fun () -> lat_of (H.raw_bip_pingpong ~bytes_count:4 ~iters:30));
      tol = 0.10;
    };
    {
      quantity = "Fig5  raw BIP peak bandwidth";
      paper = 126.0;
      unit = "MB/s";
      measure =
        (fun () -> bw_of mb (H.raw_bip_pingpong ~bytes_count:mb ~iters:3));
      tol = 0.05;
    };
    {
      quantity = "S6.2  Madeleine/BIP @8kB";
      paper = 47.0;
      unit = "MB/s";
      measure =
        (fun () ->
          bw_of 8192
            (H.mad_pingpong (H.bip_world ()) ~bytes_count:8192 ~iters:10));
      tol = 0.15;
    };
    {
      quantity = "Fig6  MPICH/Mad 1MB bandwidth (~raw)";
      paper = 82.0;
      unit = "MB/s";
      measure =
        (fun () -> bw_of mb (H.mpi_pingpong H.Chmad ~bytes_count:mb ~iters:3));
      tol = 0.05;
    };
    {
      quantity = "Fig7  Nexus/Mad/SCI min latency";
      paper = 24.0;
      unit = "us";
      measure =
        (fun () ->
          lat_of
            (H.nexus_roundtrip H.Nexus_mad_sisci ~bytes_count:4 ~iters:20));
      tol = 0.10;
    };
    {
      quantity = "Fig10 SCI->Myri @8kB packets";
      paper = 36.5;
      unit = "MB/s";
      measure =
        (fun () ->
          H.forwarding_bandwidth ~mtu:8192 ~src:0 ~dst:2 ~bytes_count:mb ());
      tol = 0.05;
    };
    {
      quantity = "Fig10 SCI->Myri @128kB packets";
      paper = 49.5;
      unit = "MB/s";
      measure =
        (fun () ->
          H.forwarding_bandwidth ~mtu:(128 * 1024) ~src:0 ~dst:2 ~bytes_count:mb ());
      tol = 0.05;
    };
    {
      quantity = "Fig11 Myri->SCI @8kB packets";
      paper = 29.0;
      unit = "MB/s";
      measure =
        (fun () ->
          H.forwarding_bandwidth ~mtu:8192 ~src:2 ~dst:0 ~bytes_count:mb ());
      tol = 0.06;
    };
    {
      quantity = "Fig11 Myri->SCI asymptote";
      paper = 36.5;
      unit = "MB/s";
      measure =
        (fun () ->
          H.forwarding_bandwidth ~mtu:(128 * 1024) ~src:2 ~dst:0 ~bytes_count:mb ());
      tol = 0.06;
    };
  ]

let judge row measured =
  let rel = Float.abs (measured -. row.paper) /. row.paper in
  if rel <= row.tol then Match else if rel <= 2.0 *. row.tol then Close else Off

let run () =
  Printf.printf "%-40s %10s %10s %8s  %s\n" "quantity" "paper" "measured"
    "delta" "verdict";
  Printf.printf "%s\n" (String.make 78 '-');
  let worst = ref Match in
  List.iter
    (fun row ->
      let measured = row.measure () in
      let verdict = judge row measured in
      (match (verdict, !worst) with
      | Off, _ -> worst := Off
      | Close, Match -> worst := Close
      | _ -> ());
      Printf.printf "%-40s %7.1f %-3s %6.1f %-3s %+7.1f%%  %s\n%!" row.quantity
        row.paper row.unit measured row.unit
        (100.0 *. (measured -. row.paper) /. row.paper)
        (match verdict with
        | Match -> "MATCH"
        | Close -> "close"
        | Off -> "OFF"))
    rows;
  Printf.printf "%s\n" (String.make 78 '-');
  (match !worst with
  | Match -> Printf.printf "replication report: all quantities within tolerance.\n"
  | Close ->
      Printf.printf
        "replication report: all quantities within 2x tolerance (some close).\n"
  | Off -> Printf.printf "replication report: DEVIATIONS PRESENT.\n");
  !worst <> Off
