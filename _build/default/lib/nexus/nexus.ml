module Engine = Marcel.Engine
module Time = Marcel.Time
module Mad = Madeleine.Api
module Iface = Madeleine.Iface

(* Per-operation costs of the Nexus machinery itself: buffer and thread
   management around every RSR. Calibrated so Nexus/Madeleine/SCI lands
   just under the paper's 25 us minimal latency (Fig. 7). *)
let rsr_send_overhead = Time.us 8.5
let rsr_deliver_overhead = Time.us 8.5

let memcpy_sleep = Simnet.Cost.memcpy

module Buffer = struct
  type t = { mutable data : Bytes.t; mutable fill : int; mutable read : int }

  let create () = { data = Bytes.create 64; fill = 0; read = 0 }
  let size t = t.fill

  let ensure t extra =
    let need = t.fill + extra in
    if need > Bytes.length t.data then begin
      let bigger = Bytes.create (max need (2 * Bytes.length t.data)) in
      Bytes.blit t.data 0 bigger 0 t.fill;
      t.data <- bigger
    end

  let put_int t v =
    ensure t 8;
    Bytes.set_int64_le t.data t.fill (Int64.of_int v);
    t.fill <- t.fill + 8

  let put_bytes t b =
    ensure t (Bytes.length b);
    memcpy_sleep (Bytes.length b);
    Bytes.blit b 0 t.data t.fill (Bytes.length b);
    t.fill <- t.fill + Bytes.length b

  let get_int t =
    if t.read + 8 > t.fill then invalid_arg "Nexus.Buffer.get_int: past end";
    let v = Int64.to_int (Bytes.get_int64_le t.data t.read) in
    t.read <- t.read + 8;
    v

  let get_bytes t ~len =
    if t.read + len > t.fill then
      invalid_arg "Nexus.Buffer.get_bytes: past end";
    memcpy_sleep len;
    let b = Bytes.sub t.data t.read len in
    t.read <- t.read + len;
    b

  let contents t = Bytes.sub t.data 0 t.fill

  let of_wire b =
    { data = Bytes.copy b; fill = Bytes.length b; read = 0 }
end

type transport = {
  tr_name : string;
  tr_send : dst:int -> Bytes.t -> unit;
  tr_next : unit -> int * Bytes.t;
}

(* ---- TCP proto: one pre-established, length-framed stream per pair;
   a reader thread per stream end funnels messages into the rank's
   incoming queue. *)

let tcp_transports engine ~stacks =
  let n = Array.length stacks in
  let conns = Array.make_matrix n n None in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ci, cj = Tcpnet.socketpair stacks.(i) stacks.(j) in
      conns.(i).(j) <- Some ci;
      conns.(j).(i) <- Some cj
    done
  done;
  let incoming = Array.init n (fun _ -> Marcel.Mailbox.create ()) in
  for me = 0 to n - 1 do
    for peer = 0 to n - 1 do
      match conns.(me).(peer) with
      | None -> ()
      | Some conn ->
          Engine.spawn engine ~daemon:true
            ~name:(Printf.sprintf "nexus.tcp.reader.%d<-%d" me peer)
            (fun () ->
              let hdr = Bytes.create 4 in
              while true do
                Tcpnet.recv conn hdr ~off:0 ~len:4;
                let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
                let payload = Bytes.create len in
                if len > 0 then Tcpnet.recv conn payload ~off:0 ~len;
                Marcel.Mailbox.put incoming.(me) (peer, payload)
              done)
    done
  done;
  Array.init n (fun me ->
      let tr_send ~dst payload =
        match conns.(me).(dst) with
        | None -> invalid_arg "Nexus/tcp: no connection to peer"
        | Some conn ->
            let hdr = Bytes.create 4 in
            Bytes.set_int32_le hdr 0 (Int32.of_int (Bytes.length payload));
            Tcpnet.send_group conn [ hdr; payload ]
      in
      {
        tr_name = "tcp";
        tr_send;
        tr_next = (fun () -> Marcel.Mailbox.take incoming.(me));
      })

(* ---- Madeleine proto: header express, payload cheaper. *)

let mad_transport channel ~rank =
  let ep = Madeleine.Channel.endpoint channel ~rank in
  let tr_send ~dst payload =
    let hdr = Bytes.create 4 in
    Bytes.set_int32_le hdr 0 (Int32.of_int (Bytes.length payload));
    let oc = Mad.begin_packing ep ~remote:dst in
    Mad.pack oc ~r_mode:Iface.Receive_express hdr;
    if Bytes.length payload > 0 then
      Mad.pack oc ~r_mode:Iface.Receive_cheaper payload;
    Mad.end_packing oc
  in
  let tr_next () =
    let ic = Mad.begin_unpacking ep in
    let hdr = Bytes.create 4 in
    Mad.unpack ic ~r_mode:Iface.Receive_express hdr;
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let payload = Bytes.create len in
    if len > 0 then Mad.unpack ic ~r_mode:Iface.Receive_cheaper payload;
    Mad.end_unpacking ic;
    (Mad.remote_rank ic, payload)
  in
  { tr_name = "madeleine"; tr_send; tr_next }

(* ---- Madeleine virtual-channel proto: the same framing, across
   clusters of clusters. *)

let mad_vchannel_transport vc ~rank =
  let module Vc = Madeleine.Vchannel in
  let tr_send ~dst payload =
    let hdr = Bytes.create 4 in
    Bytes.set_int32_le hdr 0 (Int32.of_int (Bytes.length payload));
    let oc = Vc.begin_packing vc ~me:rank ~remote:dst in
    Vc.pack oc ~r_mode:Iface.Receive_express hdr;
    if Bytes.length payload > 0 then
      Vc.pack oc ~r_mode:Iface.Receive_cheaper payload;
    Vc.end_packing oc
  in
  let tr_next () =
    let ic = Vc.begin_unpacking vc ~me:rank in
    let hdr = Bytes.create 4 in
    Vc.unpack ic ~r_mode:Iface.Receive_express hdr;
    let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
    let payload = Bytes.create len in
    if len > 0 then Vc.unpack ic ~r_mode:Iface.Receive_cheaper payload;
    Vc.end_unpacking ic;
    (Vc.remote_rank ic, payload)
  in
  { tr_name = "madeleine/vchannel"; tr_send; tr_next }

(* ---- Contexts, endpoints, RSR dispatch. *)

type ctx = {
  c_rank : int;
  engine : Engine.t;
  transport : transport;
  endpoints : (int, (ctx -> Buffer.t -> unit) array) Hashtbl.t;
  mutable next_endpoint : int;
}

type world = { ctxs : ctx array }
type endpoint = { ep_ctx : ctx; ep_id : int }
type startpoint = { sp_rank : int; sp_endpoint : int }

(* RSR wire format: endpoint id, handler id, buffer contents. *)
let encode_rsr ~endpoint_id ~handler buf =
  let body = Buffer.contents buf in
  let msg = Bytes.create (8 + Bytes.length body) in
  Bytes.set_int32_le msg 0 (Int32.of_int endpoint_id);
  Bytes.set_int32_le msg 4 (Int32.of_int handler);
  Bytes.blit body 0 msg 8 (Bytes.length body);
  msg

let dispatcher c () =
  while true do
    let _src, msg = c.transport.tr_next () in
    Engine.sleep rsr_deliver_overhead;
    let endpoint_id = Int32.to_int (Bytes.get_int32_le msg 0) in
    let handler = Int32.to_int (Bytes.get_int32_le msg 4) in
    let body = Bytes.sub msg 8 (Bytes.length msg - 8) in
    match Hashtbl.find_opt c.endpoints endpoint_id with
    | None ->
        invalid_arg
          (Printf.sprintf "Nexus: RSR for unknown endpoint %d at rank %d"
             endpoint_id c.c_rank)
    | Some handlers ->
        if handler < 0 || handler >= Array.length handlers then
          invalid_arg "Nexus: RSR handler out of range";
        let h = handlers.(handler) in
        Engine.spawn c.engine
          ~name:(Printf.sprintf "nexus.handler.%d" c.c_rank)
          (fun () -> h c (Buffer.of_wire body))
  done

let create_world engine ~transports =
  let ctxs =
    Array.mapi
      (fun r transport ->
        {
          c_rank = r;
          engine;
          transport;
          endpoints = Hashtbl.create 8;
          next_endpoint = 0;
        })
      transports
  in
  Array.iter
    (fun c ->
      Engine.spawn engine ~daemon:true
        ~name:(Printf.sprintf "nexus.dispatch.%d" c.c_rank)
        (dispatcher c))
    ctxs;
  { ctxs }

let ctx w ~rank = w.ctxs.(rank)
let rank c = c.c_rank

let make_endpoint c ~handlers =
  let id = c.next_endpoint in
  c.next_endpoint <- id + 1;
  Hashtbl.add c.endpoints id handlers;
  { ep_ctx = c; ep_id = id }

let startpoint ep = { sp_rank = ep.ep_ctx.c_rank; sp_endpoint = ep.ep_id }
let startpoint_rank sp = sp.sp_rank

let put_startpoint buf sp =
  Buffer.put_int buf sp.sp_rank;
  Buffer.put_int buf sp.sp_endpoint

let get_startpoint buf =
  let sp_rank = Buffer.get_int buf in
  let sp_endpoint = Buffer.get_int buf in
  { sp_rank; sp_endpoint }

let send_rsr c sp ~handler buf =
  Engine.sleep rsr_send_overhead;
  c.transport.tr_send ~dst:sp.sp_rank
    (encode_rsr ~endpoint_id:sp.sp_endpoint ~handler buf)
