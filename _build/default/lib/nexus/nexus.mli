(** A miniature Nexus (Foster, Kesselman, Tuecke 1996): the remote
    service request (RSR) layer the paper re-hosts on Madeleine II
    (§5.3.2).

    Communication goes through {e startpoints} bound to remote
    {e endpoints}: an RSR names a handler of the endpoint and ships a
    self-contained buffer; the destination runs the handler in a fresh
    thread. Nexus owns its buffers, so arguments are copied in on [put]
    and out on [get] — the "heavy mechanisms" whose cost the paper
    measures against raw Madeleine. Nexus is multiprotocol: a context
    runs over any {!transport}; {!tcp_transport} mirrors the classic
    TCP proto and {!mad_transport} is the paper's Nexus/Madeleine II. *)

type world
type ctx
type endpoint
type startpoint

(** {1 Buffers} *)

module Buffer : sig
  type t

  val create : unit -> t
  val size : t -> int

  val put_int : t -> int -> unit
  val put_bytes : t -> Bytes.t -> unit
  (** Copies the data into the buffer, at memcpy cost. *)

  val get_int : t -> int
  val get_bytes : t -> len:int -> Bytes.t
  (** Copies data out of the buffer, at memcpy cost. Reads proceed in
      put order; raises [Invalid_argument] past the end. *)
end

val put_startpoint : Buffer.t -> startpoint -> unit
(** Marshals a communication capability into a buffer — how Nexus builds
    dynamic topologies: ship a startpoint, and the receiver can RSR back
    through it. *)

val get_startpoint : Buffer.t -> startpoint

(** {1 Transports} *)

type transport

val tcp_transports : Marcel.Engine.t -> stacks:Tcpnet.t array -> transport array
(** Pre-established TCP mesh among all ranks (one length-framed stream
    per pair, with a reader thread per stream end); returns one
    transport per rank. *)

val mad_transport : Madeleine.Channel.t -> rank:int -> transport
(** Nexus/Madeleine II: RSR header express, payload cheaper. *)

val mad_vchannel_transport : Madeleine.Vchannel.t -> rank:int -> transport
(** Nexus over a virtual channel: RSRs cross clusters-of-clusters
    through the gateways transparently. *)

(** {1 Contexts and RSRs} *)

val create_world : Marcel.Engine.t -> transports:transport array -> world
(** Spawns each rank's RSR dispatcher. *)

val ctx : world -> rank:int -> ctx
val rank : ctx -> int

val make_endpoint : ctx -> handlers:(ctx -> Buffer.t -> unit) array -> endpoint
(** Registers an endpoint whose table of handlers can be invoked
    remotely. Each incoming RSR runs its handler in a fresh thread on
    the destination node. *)

val startpoint : endpoint -> startpoint
(** A communication capability for the endpoint; startpoints are plain
    values and may be shipped to other nodes (inside buffers, by rank
    and id). *)

val startpoint_rank : startpoint -> int

val send_rsr : ctx -> startpoint -> handler:int -> Buffer.t -> unit
(** Ships the buffer and triggers the handler remotely. Returns when the
    local transport has accepted the message (asynchronous RSR). *)
