(** A miniature PM2: the Parallel Multithreaded Machine (Namyst & Méhaut)
    whose RPC model motivated Madeleine in the first place (paper §1 and
    reference [10]).

    PM2's raw RPC ships a service id plus packed arguments; the
    destination runs the service in a fresh thread. The distinctive
    Madeleine integration — and the reason the paper's Fig. 1 example
    looks the way it does — is that the service body {e unpacks its own
    arguments directly from the incoming connection}: the runtime reads
    the header EXPRESS to pick the service, then hands the connection
    over, so argument data flows straight into thread-owned storage with
    no intermediate buffer (contrast {!Nexus.Buffer}'s copies).

    Synchronization follows PM2's completion idiom: RPCs are
    asynchronous; a caller needing to wait packs a {!Completion.t} into
    the request and blocks on it; the remote service signals it when
    done (a tiny internal RPC back to the owner). *)

type t
(** One node's PM2 instance. *)

type service_id

val create_world : Marcel.Engine.t -> Madeleine.Channel.t -> t array
(** One instance per channel rank, with its RPC dispatcher daemon. The
    channel becomes dedicated to PM2. *)

val rank : t -> int
val size : t -> int

val register :
  t array ->
  ?quick:bool ->
  name:string ->
  (t -> Madeleine.Api.in_connection -> unit) ->
  service_id
(** Registers a service on every node (PM2 service registration is
    collective; ids are assigned in registration order). The body MUST
    unpack exactly the arguments its callers pack — Madeleine symmetry —
    and MUST call {!Madeleine.Api.end_unpacking} on the connection before
    doing anything slow.

    A [quick] service (default [false]) runs directly in the dispatcher
    thread — lower latency, but it must not block on communication or it
    stalls RPC delivery to this node; normal services run in a fresh
    thread, as PM2 threads do. *)

val rpc :
  t -> dst:int -> service_id -> pack:(Madeleine.Api.out_connection -> unit) ->
  unit
(** Asynchronous raw RPC ([pm2_rawrpc]): ships the service header
    EXPRESS, then whatever [pack] adds; returns when the message is
    flushed. *)

(** {1 Completions} *)

module Completion : sig
  type pm2 := t
  type t
  type remote

  val create : pm2 -> t
  val pack : t -> Madeleine.Api.out_connection -> unit
  (** Adds the completion capability to an outgoing RPC (EXPRESS). *)

  val unpack : Madeleine.Api.in_connection -> remote
  (** The service side's view of a packed completion. *)

  val signal : pm2 -> remote -> unit
  (** Wakes the waiting thread on the completion's owner node. *)

  val wait : t -> unit
  (** Blocks until signalled. Each completion is signalled exactly once;
      a second {!signal} raises. *)
end
