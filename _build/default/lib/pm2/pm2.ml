module Engine = Marcel.Engine
module Ivar = Marcel.Ivar
module Mad = Madeleine.Api
module Iface = Madeleine.Iface

type service_id = int

type t = {
  pm_rank : int;
  engine : Engine.t;
  channel : Madeleine.Channel.t;
  services : (int, service) Hashtbl.t;
  mutable next_service : int;
  completions : (int, unit Ivar.t) Hashtbl.t;
  mutable next_completion : int;
}

and service = {
  sv_name : string;
  sv_quick : bool;
  sv_body : t -> Mad.in_connection -> unit;
}

let rank t = t.pm_rank
let size t = List.length (Madeleine.Channel.ranks t.channel)

let set_int32 v =
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 (Int32.of_int v);
  b

let get_int32 b = Int32.to_int (Bytes.get_int32_le b 0)

(* The per-node RPC dispatcher: read the service header EXPRESS, then
   hand the still-open connection to the service so it unpacks its own
   arguments in place. The connection's link stays held until the
   service's end_unpacking — back-to-back RPCs on one link serialize
   exactly as PM2's receive daemon does. *)
let dispatcher t () =
  let ep = Madeleine.Channel.endpoint t.channel ~rank:t.pm_rank in
  while true do
    let ic = Mad.begin_unpacking ep in
    let hdr = Bytes.create 4 in
    Mad.unpack ic ~r_mode:Iface.Receive_express hdr;
    let id = get_int32 hdr in
    match Hashtbl.find_opt t.services id with
    | None ->
        invalid_arg (Printf.sprintf "Pm2: unknown service %d at rank %d" id t.pm_rank)
    | Some sv ->
        if sv.sv_quick then sv.sv_body t ic
        else
          Engine.spawn t.engine
            ~name:(Printf.sprintf "pm2.%s.%d" sv.sv_name t.pm_rank)
            (fun () -> sv.sv_body t ic)
  done

module Completion = struct
  type pm2 = t
  type t = { owner : pm2; comp_id : int; filled : unit Ivar.t }
  type remote = { r_owner : int; r_id : int }

  let create owner =
    let comp_id = owner.next_completion in
    owner.next_completion <- comp_id + 1;
    let filled = Ivar.create () in
    Hashtbl.add owner.completions comp_id filled;
    { owner; comp_id; filled }

  let pack t oc =
    let b = Bytes.create 8 in
    Bytes.set_int32_le b 0 (Int32.of_int t.owner.pm_rank);
    Bytes.set_int32_le b 4 (Int32.of_int t.comp_id);
    Mad.pack oc ~r_mode:Iface.Receive_express b

  let unpack ic =
    let b = Bytes.create 8 in
    Mad.unpack ic ~r_mode:Iface.Receive_express b;
    {
      r_owner = Int32.to_int (Bytes.get_int32_le b 0);
      r_id = Int32.to_int (Bytes.get_int32_le b 4);
    }

  let wait t = Ivar.read t.filled

  (* Forward declaration dance: signalling needs [rpc], defined below. *)
  let signal_ref :
      (pm2 -> remote -> unit) ref =
    ref (fun _ _ -> assert false)

  let signal t remote = !signal_ref t remote
end

(* Service 0, present on every node: completion signalling. *)
let signal_service_id = 0

let rpc t ~dst service_id ~pack =
  if dst = t.pm_rank then
    invalid_arg "Pm2.rpc: PM2 local service invocation is a plain call";
  let ep = Madeleine.Channel.endpoint t.channel ~rank:t.pm_rank in
  let oc = Mad.begin_packing ep ~remote:dst in
  Mad.pack oc ~r_mode:Iface.Receive_express (set_int32 service_id);
  pack oc;
  Mad.end_packing oc

let () =
  Completion.signal_ref :=
    fun t remote ->
      if remote.Completion.r_owner = t.pm_rank then begin
        (* Local completion: fill directly. *)
        match Hashtbl.find_opt t.completions remote.Completion.r_id with
        | Some iv -> Ivar.fill iv ()
        | None -> invalid_arg "Pm2: unknown completion"
      end
      else
        rpc t ~dst:remote.Completion.r_owner signal_service_id ~pack:(fun oc ->
            Mad.pack oc ~r_mode:Iface.Receive_express
              (set_int32 remote.Completion.r_id))

let create_world engine channel =
  let ranks = Madeleine.Channel.ranks channel in
  let instances =
    Array.of_list
      (List.map
         (fun pm_rank ->
           {
             pm_rank;
             engine;
             channel;
             services = Hashtbl.create 16;
             next_service = 0;
             completions = Hashtbl.create 16;
             next_completion = 0;
           })
         ranks)
  in
  (* The built-in completion-signal service, quick by nature. *)
  Array.iter
    (fun t ->
      Hashtbl.add t.services signal_service_id
        {
          sv_name = "pm2.signal";
          sv_quick = true;
          sv_body =
            (fun t ic ->
              let b = Bytes.create 4 in
              Mad.unpack ic ~r_mode:Iface.Receive_express b;
              Mad.end_unpacking ic;
              match Hashtbl.find_opt t.completions (get_int32 b) with
              | Some iv -> Ivar.fill iv ()
              | None -> invalid_arg "Pm2: signal for unknown completion");
        };
      t.next_service <- 1)
    instances;
  Array.iter
    (fun t ->
      Engine.spawn engine ~daemon:true
        ~name:(Printf.sprintf "pm2.dispatch.%d" t.pm_rank)
        (dispatcher t))
    instances;
  instances

let register instances ?(quick = false) ~name body =
  let id = instances.(0).next_service in
  Array.iter
    (fun t ->
      if t.next_service <> id then
        invalid_arg "Pm2.register: services must register collectively";
      Hashtbl.add t.services id { sv_name = name; sv_quick = quick; sv_body = body };
      t.next_service <- id + 1)
    instances;
  id
