(* The ch_mad device: MPICH/Madeleine II (paper §5.3.1).

   An MPI message is one Madeleine message: the envelope travels EXPRESS
   (the receiver needs it to match the posted-receive queue and pick the
   destination buffer), the payload CHEAPER (extracted straight into the
   matched buffer — no intermediate copy on the expected path). This is
   the exact usage pattern Madeleine's interface was designed for, and it
   is why MPICH/Madeleine keeps most of the underlying bandwidth. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Mad = Madeleine.Api
module Iface = Madeleine.Iface

(* MPICH glue above the Madeleine interface: ADI dispatch, request and
   datatype bookkeeping. The paper calls its port preliminary and its
   latency uncompetitive with the hand-tuned direct implementations;
   this is where that cost lives. *)
let adi_send_overhead = Time.us 2.5
let adi_recv_overhead = Time.us 2.5

let make channel ~rank =
  let ep = Madeleine.Channel.endpoint channel ~rank in
  let dev_send ~dst env payload =
    Engine.sleep adi_send_overhead;
    let oc = Mad.begin_packing ep ~remote:dst in
    Mad.pack oc ~r_mode:Iface.Receive_express (Device.encode_envelope env);
    if env.Device.env_len > 0 then
      Mad.pack oc ~r_mode:Iface.Receive_cheaper ~len:env.Device.env_len payload;
    Mad.end_packing oc
  in
  let dev_next () =
    let ic = Mad.begin_unpacking ep in
    let hdr = Bytes.create Device.envelope_size in
    Mad.unpack ic ~r_mode:Iface.Receive_express hdr;
    let env = Device.decode_envelope ~src:(Mad.remote_rank ic) hdr in
    let extract buf ~off =
      Engine.sleep adi_recv_overhead;
      if env.Device.env_len > 0 then
        Mad.unpack ic ~r_mode:Iface.Receive_cheaper ~off ~len:env.Device.env_len
          buf;
      Mad.end_unpacking ic
    in
    (env, extract)
  in
  { Device.dev_name = "ch_mad"; dev_send; dev_next }
