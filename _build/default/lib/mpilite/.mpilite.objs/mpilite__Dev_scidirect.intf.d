lib/mpilite/dev_scidirect.mli: Device Hashtbl Marcel Sisci
