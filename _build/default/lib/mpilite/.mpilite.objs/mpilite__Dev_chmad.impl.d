lib/mpilite/dev_chmad.ml: Bytes Device Madeleine Marcel
