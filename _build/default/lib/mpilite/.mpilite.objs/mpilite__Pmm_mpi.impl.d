lib/mpilite/pmm_mpi.ml: Bytes List Madeleine Mpi Printf
