lib/mpilite/pmm_mpi.ml: Bytes Madeleine Mpi Printf
