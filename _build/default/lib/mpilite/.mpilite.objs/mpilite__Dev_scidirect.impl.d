lib/mpilite/dev_scidirect.ml: Bytes Device Hashtbl Int32 List Marcel Simnet Sisci
