lib/mpilite/device.ml: Bytes Int32
