lib/mpilite/mpi.ml: Array Bytes Device Fun Hashtbl Int64 List Marcel Printf Queue Simnet
