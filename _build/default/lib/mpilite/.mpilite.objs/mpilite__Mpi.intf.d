lib/mpilite/mpi.mli: Bytes Device Marcel
