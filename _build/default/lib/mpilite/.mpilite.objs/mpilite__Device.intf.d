lib/mpilite/device.mli: Bytes
