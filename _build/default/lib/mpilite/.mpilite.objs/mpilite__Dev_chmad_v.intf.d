lib/mpilite/dev_chmad_v.mli: Device Madeleine
