lib/mpilite/dev_chmad_v.ml: Bytes Dev_chmad Device Madeleine Marcel
