lib/mpilite/dev_chmad.mli: Device Madeleine Marcel
