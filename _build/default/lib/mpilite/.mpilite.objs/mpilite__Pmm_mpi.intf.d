lib/mpilite/pmm_mpi.mli: Madeleine Mpi
