(** Direct MPI-over-SCI devices: the Fig. 6 baselines.

    SCI-MPICH and ScaMPI talk to SISCI directly, staging payloads
    through rings of segment slots. Their profiles differ in software
    overheads, eager/inline thresholds, staging chunk size and ring
    depth (single- vs double-buffered) — calibrated so both beat
    MPICH/Madeleine on small-message latency while MPICH/Madeleine
    passes them in bandwidth for large messages, as in the paper. *)

type profile = {
  prof_name : string;
  inline_max : int;  (** payload bytes carried inside the envelope packet *)
  chunk : int;  (** staging chunk for large messages *)
  slots : int;  (** data-ring depth: 1 = no overlap, 2 = double buffering *)
  send_overhead : Marcel.Time.span;
  recv_overhead : Marcel.Time.span;
  per_chunk_overhead : Marcel.Time.span;
}

val sci_mpich : profile
val scampi : profile

type pair_state

val make_states :
  profile -> (int -> Sisci.t) -> int list -> (int * int, pair_state) Hashtbl.t
(** Creates the receiver-owned segments and credits for every ordered
    pair; build once per world and share among all ranks' devices. *)

val make :
  profile ->
  adapters:(int -> Sisci.t) ->
  ranks:int list ->
  states:(int * int, pair_state) Hashtbl.t ->
  rank:int ->
  Device.t
