(** The abstract device interface of the mini-MPI, in the spirit of
    MPICH's second-generation ADI: the matching engine and collectives
    live above this line, and a device only moves enveloped point-to-point
    messages. Three devices exist, mirroring the Fig. 6 contenders:
    [ch_mad] over Madeleine (the paper's MPICH/Madeleine II port),
    and the direct-SISCI [sci_mpich] and [scampi] baselines. *)

type envelope = { env_src : int; env_tag : int; env_context : int; env_len : int }

type t = {
  dev_name : string;
  dev_send : dst:int -> envelope -> Bytes.t -> unit;
      (** Ships the envelope and [env_len] payload bytes. Blocking until
          the payload buffer is reusable. *)
  dev_next : unit -> envelope * (Bytes.t -> off:int -> unit);
      (** Progress: blocks for the next incoming message and returns its
          envelope plus an extraction closure. The closure must be called
          exactly once, with a buffer region of [env_len] bytes; the
          two-phase shape lets the matching engine choose the final
          destination (a posted receive's buffer — zero copy — or a
          temporary for unexpected messages) after seeing the envelope,
          exactly the RPC-header pattern of paper §2.2. *)
}

val encode_envelope : envelope -> Bytes.t
val decode_envelope : src:int -> Bytes.t -> envelope
val envelope_size : int
