module Vc = Madeleine.Vchannel
module Iface = Madeleine.Iface

(* Same ADI glue costs as the single-cluster ch_mad device. *)
let make vc ~rank =
  let dev_send ~dst env payload =
    Marcel.Engine.sleep Dev_chmad.adi_send_overhead;
    let oc = Vc.begin_packing vc ~me:rank ~remote:dst in
    Vc.pack oc ~r_mode:Iface.Receive_express (Device.encode_envelope env);
    if env.Device.env_len > 0 then
      Vc.pack oc ~r_mode:Iface.Receive_cheaper ~len:env.Device.env_len payload;
    Vc.end_packing oc
  in
  let dev_next () =
    let ic = Vc.begin_unpacking vc ~me:rank in
    let hdr = Bytes.create Device.envelope_size in
    Vc.unpack ic ~r_mode:Iface.Receive_express hdr;
    let env = Device.decode_envelope ~src:(Vc.remote_rank ic) hdr in
    let extract buf ~off =
      Marcel.Engine.sleep Dev_chmad.adi_recv_overhead;
      if env.Device.env_len > 0 then
        Vc.unpack ic ~r_mode:Iface.Receive_cheaper ~off ~len:env.Device.env_len
          buf;
      Vc.end_unpacking ic
    in
    (env, extract)
  in
  { Device.dev_name = "ch_mad/vchannel"; dev_send; dev_next }
