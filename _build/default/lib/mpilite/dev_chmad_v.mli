(** ch_mad over a virtual channel: MPI spanning clusters of clusters.

    The same envelope-EXPRESS / payload-CHEAPER device as {!Dev_chmad},
    but riding a {!Madeleine.Vchannel} — so MPI ranks may live on
    different networks, with gateways forwarding transparently
    underneath. This is precisely the composition the paper's §6 sets
    up: "higher-level traditional routing mechanisms can be efficiently
    implemented on top of this extended Madeleine II interface". *)

val make : Madeleine.Vchannel.t -> rank:int -> Device.t
(** The virtual channel becomes dedicated to this MPI instance. *)
