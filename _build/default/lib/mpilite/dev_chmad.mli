(** The ch_mad device: MPICH over Madeleine II (paper §5.3.1).

    An MPI message is one Madeleine message: the envelope travels
    EXPRESS (the receiver needs it to match and pick the destination
    buffer), the payload CHEAPER (extracted straight into the matched
    buffer — no intermediate copy on the expected path). The ADI-glue
    overheads here are why the paper's MPICH/Madeleine latency trails
    the hand-tuned direct implementations while its bandwidth tracks
    raw Madeleine. *)

val adi_send_overhead : Marcel.Time.span
val adi_recv_overhead : Marcel.Time.span

val make : Madeleine.Channel.t -> rank:int -> Device.t
(** The channel becomes dedicated to this MPI instance: its incoming
    traffic is consumed by the rank's progress daemon. *)
