type envelope = { env_src : int; env_tag : int; env_context : int; env_len : int }

type t = {
  dev_name : string;
  dev_send : dst:int -> envelope -> Bytes.t -> unit;
  dev_next : unit -> envelope * (Bytes.t -> off:int -> unit);
}

let envelope_size = 12

let encode_envelope env =
  let b = Bytes.create envelope_size in
  Bytes.set_int32_le b 0 (Int32.of_int env.env_tag);
  Bytes.set_int32_le b 4 (Int32.of_int env.env_context);
  Bytes.set_int32_le b 8 (Int32.of_int env.env_len);
  b

let decode_envelope ~src b =
  {
    env_src = src;
    env_tag = Int32.to_int (Bytes.get_int32_le b 0);
    env_context = Int32.to_int (Bytes.get_int32_le b 4);
    env_len = Int32.to_int (Bytes.get_int32_le b 8);
  }
