(* Protocol Management Module for TCP (paper §7: Madeleine II "currently
   runs on top of BIP, SISCI, TCP, VIA").

   One transmission module, dynamic buffers, with scatter-gather grouping
   (writev/readv) so the aggregating BMM amortizes the hefty Linux 2.2
   kernel overhead across grouped buffers. One pre-established stream per
   node pair per channel carries both directions. *)

module Mutex = Marcel.Mutex

type pair_conns = { low_end : Tcpnet.conn; high_end : Tcpnet.conn }

let conn_for pairs ~me ~peer =
  let key = (min me peer, max me peer) in
  let p = Hashtbl.find pairs key in
  if me <= peer then p.low_end else p.high_end

let send_tm conn =
  {
    Tm.s_name = "tcp";
    s_side =
      Tm.Dynamic_send
        {
          Tm.send_buffer = (fun buf -> Tcpnet.send conn (Buf.to_bytes buf));
          send_buffer_group =
            (fun bufs -> Tcpnet.send_group conn (Bufs.map_to_list Buf.to_bytes bufs));
        };
  }

let recv_tm conn =
  let slice buf = (buf.Buf.data, buf.Buf.off, buf.Buf.len) in
  {
    Tm.r_name = "tcp";
    r_side =
      Tm.Dynamic_recv
        {
          Tm.receive_buffer =
            (fun buf ->
              let data, off, len = slice buf in
              Tcpnet.recv conn data ~off ~len);
          receive_buffer_group =
            (fun bufs -> Tcpnet.recv_group conn (Bufs.map_to_list slice bufs));
        };
    r_probe = (fun () -> Tcpnet.available conn > 0);
  }

let select ~len:_ _s _r = 0

let driver (stack_of : int -> Tcpnet.t) =
  let instantiate ~channel_id:_ ~config ~ranks =
    let pairs = Hashtbl.create 16 in
    let rec all_pairs = function
      | [] -> ()
      | a :: rest ->
          List.iter
            (fun b ->
              let low, high = (min a b, max a b) in
              let low_end, high_end =
                Tcpnet.socketpair (stack_of low) (stack_of high)
              in
              Hashtbl.add pairs (low, high) { low_end; high_end })
            rest;
          all_pairs rest
    in
    all_pairs ranks;
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          let conn = conn_for pairs ~me:src ~peer:dst in
          Link.make_sender select
            [| Bmm.send_of_tm ~aggregation:config.Config.aggregation (send_tm conn) |])
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          (* src = me, dst = from *)
          let conn = conn_for pairs ~me:src ~peer:dst in
          let tm = recv_tm conn in
          Link.make_receiver select
            [| Bmm.recv_of_tm tm |]
            ~probe:tm.Tm.r_probe)
    in
    {
      Driver.inst_name = "tcp";
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data =
        (fun ~me hook ->
          Hashtbl.iter
            (fun (low, high) p ->
              if low = me then Tcpnet.set_data_hook p.low_end hook
              else if high = me then Tcpnet.set_data_hook p.high_end hook)
            pairs);
    }
  in
  { Driver.driver_name = "tcp"; instantiate }
