type t = { data : Bytes.t; off : int; len : int }

let make ?(off = 0) ?len data =
  let len = Option.value len ~default:(Bytes.length data - off) in
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Buf.make: slice out of bounds";
  { data; off; len }

let sub t ~pos ~len =
  if pos < 0 || len < 0 || pos + len > t.len then
    invalid_arg "Buf.sub: slice out of bounds";
  { data = t.data; off = t.off + pos; len }

let empty = { data = Bytes.empty; off = 0; len = 0 }

let stage t = { data = Bytes.sub t.data t.off t.len; off = 0; len = t.len }

let length t = t.len
let blit_out t dst dst_off = Bytes.blit t.data t.off dst dst_off t.len
let blit_in t src src_off = Bytes.blit src src_off t.data t.off t.len
let to_bytes t = Bytes.sub t.data t.off t.len
