type dynamic_send = {
  send_buffer : Buf.t -> unit;
  send_buffer_group : Bufs.t -> unit;
}

type dynamic_recv = {
  receive_buffer : Buf.t -> unit;
  receive_buffer_group : Bufs.t -> unit;
}

type static_send = {
  send_capacity : int;
  obtain_static_buffer : unit -> unit;
  write_static : Buf.t -> unit;
  ship_static : unit -> unit;
}

type static_recv = {
  recv_capacity : int;
  fetch_static : unit -> int;
  read_static : Buf.t -> unit;
  consume_static : unit -> unit;
}

type send_side = Dynamic_send of dynamic_send | Static_send of static_send
type recv_side = Dynamic_recv of dynamic_recv | Static_recv of static_recv

type send = { s_name : string; s_side : send_side }
type recv = { r_name : string; r_side : recv_side; r_probe : unit -> bool }
