(** A Madeleine session: the set of processes (one per simulated node)
    that will communicate, plus the channel-id allocator. Mirrors
    [mad_init]: channels are opened collectively within a session. *)

type t

val create : Marcel.Engine.t -> t
val engine : t -> Marcel.Engine.t

val fresh_channel_id : t -> int
(** Monotonically increasing; keeps channels' protocol resources (tags,
    segment ids, streams) disjoint, so communication on one channel never
    interferes with another (paper §2.1). *)
