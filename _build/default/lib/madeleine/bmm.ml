module Engine = Marcel.Engine
module Time = Marcel.Time

type send = {
  bs_name : string;
  append : Buf.t -> Iface.send_mode -> Iface.recv_mode -> unit;
  commit : unit -> unit;
}

type recv = {
  br_name : string;
  extract : Buf.t -> Iface.send_mode -> Iface.recv_mode -> unit;
  checkout : unit -> unit;
}

(* Staging a SAFER buffer is a real memcpy on the host. *)
let stage_copy buf =
  Simnet.Cost.memcpy (Buf.length buf);
  Buf.make (Buf.to_bytes buf)

(* A buffer as queued for a delayed send. SAFER is staged immediately;
   LATER and CHEAPER keep the user reference, so LATER picks up
   modifications made before the flush — its defining semantics. *)
let queued_view buf = function
  | Iface.Send_safer -> stage_copy buf
  | Iface.Send_later | Iface.Send_cheaper -> buf

let eager_dynamic_send (d : Tm.dynamic_send) =
  let held = Queue.create () in
  let flush () =
    if not (Queue.is_empty held) then begin
      let bufs = List.of_seq (Queue.to_seq held) in
      Queue.clear held;
      d.Tm.send_buffer_group bufs
    end
  in
  let append buf s _r =
    match s with
    | Iface.Send_later -> Queue.push buf held
    | Iface.Send_safer | Iface.Send_cheaper ->
        (* Order: anything behind a pending LATER buffer must wait too. *)
        if Queue.is_empty held then d.Tm.send_buffer buf
        else Queue.push (queued_view buf s) held
  in
  { bs_name = "eager-dynamic"; append; commit = flush }

let aggregating_dynamic_send (d : Tm.dynamic_send) =
  let held = Queue.create () in
  let later_pending = ref false in
  let flush () =
    if not (Queue.is_empty held) then begin
      let bufs = List.of_seq (Queue.to_seq held) in
      Queue.clear held;
      later_pending := false;
      d.Tm.send_buffer_group bufs
    end
  in
  let append buf s r =
    Queue.push (queued_view buf s) held;
    if s = Iface.Send_later then later_pending := true;
    (* The receiver should see EXPRESS data as soon as possible, so the
       aggregate is flushed right away — unless a LATER buffer is queued,
       whose contents are not final before commit. (EXPRESS only promises
       availability once the receiver's unpack returns, which blocks
       until the data arrives either way.) *)
    match r with
    | Iface.Receive_express -> if not !later_pending then flush ()
    | Iface.Receive_cheaper -> ()
  in
  { bs_name = "aggregating-dynamic"; append; commit = flush }

let dynamic_recv (d : Tm.dynamic_recv) =
  let deferred = Queue.create () in
  let drain () =
    if not (Queue.is_empty deferred) then begin
      let bufs = List.of_seq (Queue.to_seq deferred) in
      Queue.clear deferred;
      d.Tm.receive_buffer_group bufs
    end
  in
  let extract buf _s r =
    match r with
    | Iface.Receive_express ->
        drain ();
        d.Tm.receive_buffer buf
    | Iface.Receive_cheaper -> Queue.push buf deferred
  in
  { br_name = "dynamic"; extract; checkout = drain }

let static_copy_send (s : Tm.static_send) =
  let capacity = s.Tm.send_capacity in
  if capacity <= 0 then invalid_arg "Bmm.static_copy_send: capacity <= 0";
  (* Buffers segment into slots by pure capacity arithmetic (the receiver
     mirrors the same arithmetic), but *shipping* a slot reads its
     contents — which LATER forbids before commit. Completed slots
     therefore queue up in [complete] and ship as soon as no LATER buffer
     is pending, or at the latest on commit. *)
  let complete : Buf.t list Queue.t = Queue.create () in
  let current = Queue.create () in
  let fill = ref 0 in
  let later_pending = ref false in
  let ship_slot entries =
    s.Tm.obtain_static_buffer ();
    List.iter s.Tm.write_static entries;
    s.Tm.ship_static ()
  in
  let ship_complete () =
    while not (Queue.is_empty complete) do
      ship_slot (Queue.pop complete)
    done
  in
  let close_current () =
    if not (Queue.is_empty current) then begin
      Queue.push (List.of_seq (Queue.to_seq current)) complete;
      Queue.clear current;
      fill := 0
    end
  in
  let commit () =
    later_pending := false;
    close_current ();
    ship_complete ()
  in
  let rec place buf s_mode =
    let remaining = capacity - !fill in
    if Buf.length buf <= remaining then begin
      Queue.push (queued_view buf s_mode) current;
      if s_mode = Iface.Send_later then later_pending := true;
      fill := !fill + Buf.length buf;
      if !fill = capacity then begin
        close_current ();
        if not !later_pending then ship_complete ()
      end
    end
    else if !fill > 0 then begin
      close_current ();
      if not !later_pending then ship_complete ();
      place buf s_mode
    end
    else begin
      (* A buffer larger than a whole slot: split across slots. *)
      place (Buf.sub buf ~pos:0 ~len:capacity) s_mode;
      place (Buf.sub buf ~pos:capacity ~len:(Buf.length buf - capacity)) s_mode
    end
  in
  let append buf s_mode r =
    place buf s_mode;
    match r with
    | Iface.Receive_express -> if not !later_pending then commit ()
    | Iface.Receive_cheaper -> ()
  in
  { bs_name = "static-copy"; append; commit }

let static_copy_recv (s : Tm.static_recv) =
  let capacity = s.Tm.recv_capacity in
  if capacity <= 0 then invalid_arg "Bmm.static_copy_recv: capacity <= 0";
  let fill = ref 0 in
  let active_len = ref None in
  let ensure_active () =
    match !active_len with
    | Some _ -> ()
    | None -> active_len := Some (s.Tm.fetch_static ())
  in
  let finish_slot () =
    match !active_len with
    | None -> ()
    | Some actual ->
        if actual <> !fill then
          raise
            (Config.Symmetry_violation
               (Printf.sprintf
                  "static slot length mismatch: sender shipped %d bytes, \
                   receiver unpacked %d" actual !fill));
        s.Tm.consume_static ();
        active_len := None;
        fill := 0
  in
  (* Mirrors the sender's later-pending rule exactly: both sides see the
     same (size, mode) sequence, and the flag has the same lifecycle —
     set by a LATER field, cleared only at commit/checkout — so the slot
     layouts stay in lock-step. *)
  let later_pending = ref false in
  let rec place buf s_mode =
    let remaining = capacity - !fill in
    if Buf.length buf <= remaining then begin
      ensure_active ();
      s.Tm.read_static buf;
      if s_mode = Iface.Send_later then later_pending := true;
      fill := !fill + Buf.length buf;
      if !fill = capacity then finish_slot ()
    end
    else if !fill > 0 then begin
      finish_slot ();
      place buf s_mode
    end
    else begin
      place (Buf.sub buf ~pos:0 ~len:capacity) s_mode;
      place (Buf.sub buf ~pos:capacity ~len:(Buf.length buf - capacity)) s_mode
    end
  in
  let extract buf s_mode r =
    place buf s_mode;
    (* Mirror the sender, which flushes its slot after an EXPRESS field
       unless a LATER field is pending. *)
    match r with
    | Iface.Receive_express -> if not !later_pending then finish_slot ()
    | Iface.Receive_cheaper -> ()
  in
  let checkout () =
    later_pending := false;
    finish_slot ()
  in
  { br_name = "static-copy"; extract; checkout }

let send_of_tm ~aggregation (tm : Tm.send) =
  match tm.Tm.s_side with
  | Tm.Dynamic_send d ->
      if aggregation then aggregating_dynamic_send d else eager_dynamic_send d
  | Tm.Static_send s -> static_copy_send s

let recv_of_tm (tm : Tm.recv) =
  match tm.Tm.r_side with
  | Tm.Dynamic_recv d -> dynamic_recv d
  | Tm.Static_recv s -> static_copy_recv s
