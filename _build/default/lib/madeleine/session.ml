type t = { engine : Marcel.Engine.t; mutable next_id : int }

let create engine = { engine; next_id = 0 }
let engine t = t.engine

let fresh_channel_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id
