lib/madeleine/vchannel.ml: Api Buf Bytes Channel Config Format Generic_tm Hashtbl Iface List Marcel Printf Queue Session Simnet
