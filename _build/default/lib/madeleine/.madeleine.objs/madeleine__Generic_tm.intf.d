lib/madeleine/generic_tm.mli: Bytes Iface
