lib/madeleine/generic_tm.ml: Bytes Char Config Iface Int32
