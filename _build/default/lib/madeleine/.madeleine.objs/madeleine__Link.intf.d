lib/madeleine/link.mli: Bmm Iface Marcel
