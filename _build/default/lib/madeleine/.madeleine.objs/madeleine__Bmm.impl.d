lib/madeleine/bmm.ml: Buf Config Iface List Marcel Printf Queue Simnet Tm
