lib/madeleine/bmm.ml: Buf Bufs Config Iface List Marcel Printf Queue Simnet Tm
