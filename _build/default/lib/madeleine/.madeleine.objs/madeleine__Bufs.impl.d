lib/madeleine/bufs.ml: Array Buf List
