lib/madeleine/config.mli: Marcel
