lib/madeleine/bmm.mli: Buf Iface Tm
