lib/madeleine/channel.ml: Config Driver Format Hashtbl Iface Link List Marcel Printf Session
