lib/madeleine/iface.mli: Format
