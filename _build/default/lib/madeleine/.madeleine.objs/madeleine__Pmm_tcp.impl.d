lib/madeleine/pmm_tcp.ml: Bmm Buf Bufs Config Driver Hashtbl Link List Marcel Tcpnet Tm
