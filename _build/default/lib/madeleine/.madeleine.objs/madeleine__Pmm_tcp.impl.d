lib/madeleine/pmm_tcp.ml: Bmm Buf Config Driver Hashtbl Link List Marcel Tcpnet Tm
