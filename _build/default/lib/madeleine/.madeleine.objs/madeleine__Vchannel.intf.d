lib/madeleine/vchannel.mli: Bytes Channel Iface Marcel Session
