lib/madeleine/session.mli: Marcel
