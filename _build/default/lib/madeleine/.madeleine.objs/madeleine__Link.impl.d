lib/madeleine/link.ml: Array Bmm Iface Marcel
