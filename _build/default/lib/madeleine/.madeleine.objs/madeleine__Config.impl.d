lib/madeleine/config.ml: Marcel Simnet
