lib/madeleine/pmm_sbp.ml: Bmm Buf Config Driver Link Sbp Simnet Tm
