lib/madeleine/driver.ml: Config Hashtbl Link
