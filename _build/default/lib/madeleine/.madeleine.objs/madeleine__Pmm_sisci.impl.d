lib/madeleine/pmm_sisci.ml: Array Bmm Buf Bytes Config Driver Hashtbl Int32 Link List Marcel Simnet Sisci Tm
