lib/madeleine/pmm_bip.ml: Array Bip Bmm Buf Bytes Config Driver Link List Marcel Printf Simnet Tm
