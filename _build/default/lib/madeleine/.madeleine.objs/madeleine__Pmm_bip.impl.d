lib/madeleine/pmm_bip.ml: Array Bip Bmm Buf Bufs Bytes Config Driver Link Marcel Printf Simnet Tm
