lib/madeleine/buf.ml: Bytes Option
