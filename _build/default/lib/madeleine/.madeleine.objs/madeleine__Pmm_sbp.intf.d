lib/madeleine/pmm_sbp.mli: Driver Iface Sbp
