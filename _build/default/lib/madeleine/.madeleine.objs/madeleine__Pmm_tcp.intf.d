lib/madeleine/pmm_tcp.mli: Driver Iface Tcpnet
