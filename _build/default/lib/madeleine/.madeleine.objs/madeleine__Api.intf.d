lib/madeleine/api.mli: Bytes Channel Iface
