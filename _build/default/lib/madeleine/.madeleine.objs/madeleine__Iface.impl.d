lib/madeleine/iface.ml: Format Printf
