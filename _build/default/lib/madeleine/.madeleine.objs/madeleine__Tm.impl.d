lib/madeleine/tm.ml: Buf Bufs
