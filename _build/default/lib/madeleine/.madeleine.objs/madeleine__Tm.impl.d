lib/madeleine/tm.ml: Buf
