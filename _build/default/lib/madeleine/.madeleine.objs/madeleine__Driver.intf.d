lib/madeleine/driver.mli: Config Link
