lib/madeleine/channel.mli: Config Driver Iface Link Session
