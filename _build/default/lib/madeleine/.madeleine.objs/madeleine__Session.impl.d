lib/madeleine/session.ml: Marcel
