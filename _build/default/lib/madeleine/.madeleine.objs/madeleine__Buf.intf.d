lib/madeleine/buf.mli: Bytes
