lib/madeleine/pmm_via.mli: Driver Iface Via
