lib/madeleine/bufs.mli: Buf
