lib/madeleine/pmm_bip.mli: Bip Driver Iface
