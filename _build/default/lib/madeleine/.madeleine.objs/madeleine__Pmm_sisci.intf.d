lib/madeleine/pmm_sisci.mli: Config Driver Iface Sisci
