lib/madeleine/tm.mli: Buf Bufs
