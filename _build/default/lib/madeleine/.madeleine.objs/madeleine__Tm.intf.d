lib/madeleine/tm.mli: Buf
