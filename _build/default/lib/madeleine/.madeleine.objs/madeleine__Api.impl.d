lib/madeleine/api.ml: Array Bmm Buf Channel Config Iface Link Marcel
