lib/madeleine/pmm_via.ml: Bmm Buf Bytes Config Driver Hashtbl Link List Simnet Tm Via
