(** Buffer descriptor: a slice of user memory handed to [pack]/[unpack].

    Madeleine never owns this memory — depending on the Buffer Management
    Module in charge, the slice is referenced directly (dynamic buffers)
    or copied into protocol buffers (static buffers). *)

type t = private { data : Bytes.t; off : int; len : int }

val make : ?off:int -> ?len:int -> Bytes.t -> t
(** Defaults: the whole byte sequence. Raises [Invalid_argument] if the
    slice exceeds the bytes' bounds. *)

val sub : t -> pos:int -> len:int -> t
(** A sub-slice, relative to the descriptor's own offset. *)

val length : t -> int

val blit_out : t -> Bytes.t -> int -> unit
(** [blit_out b dst dst_off] copies the slice's contents into [dst]. *)

val blit_in : t -> Bytes.t -> int -> unit
(** [blit_in b src src_off] fills the slice from [src]. *)

val to_bytes : t -> Bytes.t
(** Fresh copy of the slice's contents. *)
