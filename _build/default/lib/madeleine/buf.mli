(** Buffer descriptor: a slice of user memory handed to [pack]/[unpack].

    Madeleine never owns this memory — depending on the Buffer Management
    Module in charge, the slice is referenced directly (dynamic buffers)
    or copied into protocol buffers (static buffers). *)

type t = private { data : Bytes.t; off : int; len : int }

val make : ?off:int -> ?len:int -> Bytes.t -> t
(** Defaults: the whole byte sequence. Raises [Invalid_argument] if the
    slice exceeds the bytes' bounds. *)

val empty : t
(** The zero-length descriptor (used as a neutral filler). *)

val sub : t -> pos:int -> len:int -> t
(** A sub-slice, relative to the descriptor's own offset. *)

val stage : t -> t
(** A snapshot of the slice in freshly owned storage: one host copy of
    exactly the slice, no re-validation. This is the staging path for
    [Send_safer] semantics — the only send mode that pays a real copy;
    LATER and CHEAPER descriptors are passed through by reference. The
    caller charges the simulated memcpy cost separately. *)

val length : t -> int

val blit_out : t -> Bytes.t -> int -> unit
(** [blit_out b dst dst_off] copies the slice's contents into [dst]. *)

val blit_in : t -> Bytes.t -> int -> unit
(** [blit_in b src src_off] fills the slice from [src]. *)

val to_bytes : t -> Bytes.t
(** Fresh copy of the slice's contents. *)
