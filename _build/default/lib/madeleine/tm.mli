(** Transmission Modules: the protocol-specific lower layer (paper §3.2).

    A TM encapsulates one data-transfer method of one network interface
    (BIP short messages, BIP long messages, SISCI PIO short, SISCI PIO
    regular, SISCI DMA, ...). Per Table 2, a TM offers single- and
    grouped-buffer transmission, and, for protocols that own their
    buffers, static-buffer management.

    TMs come in two shapes, which determine the Buffer Management Module
    that can drive them (§3.4):
    - {e dynamic}: user memory is referenced directly as the transfer
      buffer (BIP long, TCP);
    - {e static}: data must be staged through protocol-owned slots of
      fixed capacity (SISCI rings, BIP short aggregation, VIA descriptors,
      SBP pool buffers). The slot interface models the cost of the staging
      copy itself, so the BMM adds none on top. *)

type dynamic_send = {
  send_buffer : Buf.t -> unit;  (** ship one buffer; blocking *)
  send_buffer_group : Bufs.t -> unit;
      (** ship several buffers; protocols with scatter-gather pay their
          per-operation overhead once. The vector is owned by the
          calling BMM: read it during the call, do not retain it. *)
}

type dynamic_recv = {
  receive_buffer : Buf.t -> unit;  (** fill one buffer; blocking *)
  receive_buffer_group : Bufs.t -> unit;
}

type static_send = {
  send_capacity : int;  (** payload bytes one slot can carry *)
  obtain_static_buffer : unit -> unit;
      (** acquire the next free slot (may block on flow control) *)
  write_static : Buf.t -> unit;
      (** append the slice to the current slot; models the copy *)
  ship_static : unit -> unit;  (** transmit / finalize the current slot *)
}

type static_recv = {
  recv_capacity : int;
  fetch_static : unit -> int;
      (** wait for the next incoming slot; returns its payload length *)
  read_static : Buf.t -> unit;
      (** copy the next [len] payload bytes out to user memory *)
  consume_static : unit -> unit;
      (** done with the current slot: release it to the sender *)
}

type send_side = Dynamic_send of dynamic_send | Static_send of static_send
type recv_side = Dynamic_recv of dynamic_recv | Static_recv of static_recv

type send = { s_name : string; s_side : send_side }
type recv = { r_name : string; r_side : recv_side; r_probe : unit -> bool }
