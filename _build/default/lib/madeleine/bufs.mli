(** A reusable vector of buffer descriptors.

    This is the shape in which BMMs hand buffer runs to a Transmission
    Module's grouped operations: the BMM appends into the vector while
    aggregating, passes it to the TM on flush, and clears it for the
    next run — the whole cycle without per-field allocation, where the
    previous [Buf.t list] interface rebuilt a fresh list on every flush.

    A TM receiving a vector may read it during the call (including
    across blocking operations — the owning link's mutex serializes the
    message) but must not retain it: the caller clears and reuses the
    storage after the call returns. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val push : t -> Buf.t -> unit
(** Appends, growing the backing array geometrically. *)

val get : t -> int -> Buf.t
(** Raises [Invalid_argument] out of [0, length). *)

val iter : (Buf.t -> unit) -> t -> unit
(** Applies in append order. The vector must not be mutated during the
    traversal. *)

val clear : t -> unit
(** Empties the vector, keeping its capacity. Slots are wiped so the
    cleared descriptors do not pin user memory. *)

val to_list : t -> Buf.t list
(** Fresh list of the contents, in order (allocates; for cold paths). *)

val map_to_list : (Buf.t -> 'b) -> t -> 'b list
(** [to_list] composed with a per-element map, in one pass. *)
