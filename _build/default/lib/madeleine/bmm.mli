(** Buffer Management Modules: generic, protocol-independent buffer
    policies (paper §3.4).

    Each BMM implements one management policy and is paired with the
    Transmission Modules whose buffer shape it fits: dynamic-buffer BMMs
    reference user memory directly; the static-copy BMM stages data
    through protocol-owned slots obtained from the TM. BMMs also carry
    the aggregation schemes — grouping successive buffers until a commit
    point to exploit scatter/gather, or sending eagerly.

    Ordering rules implemented here (paper §4):
    - a [Send_later] buffer must not be read before commit, so once one
      is queued, every subsequent buffer queues behind it;
    - a [Receive_express] extraction completes before [extract] returns,
      first draining any deferred extractions to preserve stream order;
    - commit ([commit]/[checkout]) flushes everything. *)

type send = {
  bs_name : string;
  append : Buf.t -> Iface.send_mode -> Iface.recv_mode -> unit;
  commit : unit -> unit;
}

type recv = {
  br_name : string;
  extract : Buf.t -> Iface.send_mode -> Iface.recv_mode -> unit;
  checkout : unit -> unit;
}

val eager_dynamic_send : Tm.dynamic_send -> send
(** Ships each buffer as soon as it is packed (unless held back by a
    pending [Send_later]). *)

val aggregating_dynamic_send : Tm.dynamic_send -> send
(** Groups buffers until commit (or until a [Receive_express] buffer
    forces a flush so the receiver can see it immediately). [Send_safer]
    buffers are staged through a copy, paid at memcpy rate. *)

val dynamic_recv : Tm.dynamic_recv -> recv
(** Receives [Receive_express] buffers immediately; defers
    [Receive_cheaper] ones until checkout (or until a later express
    extraction forces the stream order). *)

val static_copy_send : Tm.static_send -> send
(** Stages buffers into TM slots, splitting oversized buffers across
    slots; the TM's [write_static] models the copy cost. *)

val static_copy_recv : Tm.static_recv -> recv
(** Mirror of {!static_copy_send}: tracks the sender's slot layout by
    running the same capacity arithmetic, and raises
    {!Config.Symmetry_violation} if a consumed slot's actual length
    disagrees with the mirrored layout. *)

val send_of_tm : aggregation:bool -> Tm.send -> send
(** Picks the BMM matching the TM's buffer shape ([aggregation] selects
    between the two dynamic policies). *)

val recv_of_tm : Tm.recv -> recv
