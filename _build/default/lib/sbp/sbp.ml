module Engine = Marcel.Engine
module Mailbox = Marcel.Mailbox
module Semaphore = Marcel.Semaphore
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams

let buffer_size = Netparams.sbp_buffer_size
let pool_buffers = 32

type t = {
  net : net;
  host : Node.t;
  pool : Bytes.t Queue.t;
  pool_slots : Semaphore.t;
  inboxes : (int * int, (Bytes.t * int) Mailbox.t) Hashtbl.t;
  mutable data_hooks : (unit -> unit) list;
}

and net = { engine : Engine.t; fabric : Fabric.t; hosts : (int, t) Hashtbl.t }

let make_net engine fabric = { engine; fabric; hosts = Hashtbl.create 16 }

let attach net node =
  if Hashtbl.mem net.hosts node.Node.id then
    invalid_arg "Sbp.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Sbp.attach: node not on the fabric";
  let pool = Queue.create () in
  for _ = 1 to pool_buffers do
    Queue.push (Bytes.create buffer_size) pool
  done;
  let t =
    {
      net;
      host = node;
      pool;
      pool_slots = Semaphore.create pool_buffers;
      inboxes = Hashtbl.create 8;
      data_hooks = [];
    }
  in
  Hashtbl.add net.hosts node.Node.id t;
  t

let node t = t.host

let obtain_buffer t =
  Semaphore.acquire t.pool_slots;
  Queue.pop t.pool

let release_buffer t buf =
  if Bytes.length buf <> buffer_size then
    invalid_arg "Sbp.release_buffer: not a pool buffer";
  Queue.push buf t.pool;
  Semaphore.release t.pool_slots

let inbox t key =
  match Hashtbl.find_opt t.inboxes key with
  | Some b -> b
  | None ->
      let b = Mailbox.create () in
      Hashtbl.add t.inboxes key b;
      b

let set_data_hook t hook = t.data_hooks <- hook :: t.data_hooks

let probe t ~src ~tag =
  match Hashtbl.find_opt t.inboxes (src, tag) with
  | Some b -> Mailbox.length b > 0
  | None -> false

let send t ~dst ~tag buf ~len =
  let peer =
    match Hashtbl.find_opt t.net.hosts dst with
    | Some p -> p
    | None -> invalid_arg "Sbp.send: unknown node"
  in
  if len > buffer_size then invalid_arg "Sbp.send: len exceeds buffer size";
  if len > Bytes.length buf then invalid_arg "Sbp.send: len > buffer";
  Engine.sleep Netparams.sbp_trap_overhead;
  let staged = Bytes.sub buf 0 len in
  Simnet.Xfer.host_to_host t.net.engine ~fabric:t.net.fabric ~src:t.host
    ~dst:peer.host ~src_class:Simnet.Xfer.Dma ~dst_class:Simnet.Xfer.Dma
    ~bytes_count:len ();
  (* Delivery lands in a receiver-side pool buffer. *)
  let target = obtain_buffer peer in
  Bytes.blit staged 0 target 0 len;
  Mailbox.put (inbox peer (t.host.Node.id, tag)) (target, len);
  List.iter (fun hook -> hook ()) peer.data_hooks

let recv t ~src ~tag =
  let buf, len = Mailbox.take (inbox t (src, tag)) in
  Engine.sleep Netparams.sbp_trap_overhead;
  (buf, len)
