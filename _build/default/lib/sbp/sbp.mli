(** Simulated SBP: a static-buffer kernel protocol (Russell & Hatcher).

    The paper cites SBP (§6.1) as the archetype of an interface that
    requires data to sit in {e protocol-owned buffers on both sides}: the
    sender must write into a buffer obtained from the protocol, and the
    receiver gets its data in another protocol buffer that it must
    release. This is the worst case for the gateway's zero-copy
    forwarding — when both networks are static-buffered, exactly one copy
    is unavoidable — so SBP exists in the reproduction chiefly to
    exercise that path and Madeleine's static-buffer BMMs.

    Buffers have a fixed size ({!buffer_size}); the pool is finite, so
    [obtain_buffer] can block, providing natural back-pressure. *)

type net
type t

val make_net : Marcel.Engine.t -> Simnet.Fabric.t -> net
val attach : net -> Simnet.Node.t -> t
val node : t -> Simnet.Node.t

val buffer_size : int

val obtain_buffer : t -> Bytes.t
(** Takes a buffer from the local pool, blocking if the pool is empty. *)

val release_buffer : t -> Bytes.t -> unit
(** Returns a buffer to the pool. The buffer must have come from
    [obtain_buffer] or [recv] on this host. *)

val send : t -> dst:int -> tag:int -> Bytes.t -> len:int -> unit
(** Ships the first [len] bytes of a pool buffer to [dst] under [tag]
    (tags isolate independent streams, e.g. Madeleine channels). The
    buffer is re-usable once [send] returns: the kernel copies at trap
    time. [len] must fit in {!buffer_size}. *)

val recv : t -> src:int -> tag:int -> Bytes.t * int
(** Blocks for the next buffer from [src] under [tag]: returns a pool
    buffer and the payload length. The caller must {!release_buffer} it
    when done. *)

val probe : t -> src:int -> tag:int -> bool
(** True if [recv] would not block. *)

val set_data_hook : t -> (unit -> unit) -> unit
(** [hook] fires whenever a delivered buffer becomes receivable. *)
