(** Simulated VIA: the Virtual Interface Architecture.

    Models the descriptor-queue user-level NIC interface of the VIA
    specification (Dunning et al., IEEE Micro 1998): a {e Virtual
    Interface} (VI) is a pair of work queues connected point-to-point to a
    peer VI. Receives are {e pre-posted}: the application hands registered
    buffers to the receive queue, and an incoming send consumes the
    oldest posted descriptor. Because posted buffers are fixed,
    protocol-owned memory, Madeleine drives VIA through its
    static-buffer machinery ([obtain_static_buffer]).

    The real VIA errors a send arriving with no posted descriptor; the
    simulation blocks the sender instead (flow control is the caller's
    job, and Madeleine's BMM guarantees descriptors by construction —
    a blocked sender in tests marks a protocol bug as a {!Marcel.Engine.Stalled}
    failure rather than dropped data). *)

type net
type t
type vi

val make_net : Marcel.Engine.t -> Simnet.Fabric.t -> net
val attach : net -> Simnet.Node.t -> t
val node : t -> Simnet.Node.t

val create_vi : t -> vi
val vi_connect : vi -> vi -> unit
(** Connects two VIs point-to-point. Each VI connects exactly once. *)

val max_transfer : int
(** Largest payload one descriptor may carry
    ({!Simnet.Netparams.via_descriptor_max}). *)

val post_recv : vi -> Bytes.t -> unit
(** Appends a registered buffer to the receive queue. *)

val send : vi -> Bytes.t -> len:int -> unit
(** Sends [len] bytes from the buffer through the VI. Blocks until the
    payload has been placed in the peer's oldest posted receive buffer.
    Raises [Invalid_argument] if [len] exceeds {!max_transfer} or the
    consumed receive buffer is smaller than [len]. *)

val recv_wait : vi -> Bytes.t * int
(** Dequeues the next completed receive: the posted buffer and the number
    of bytes written into it. Blocks until a completion is available. *)

val posted_count : vi -> int
(** Receive descriptors currently posted and unconsumed. *)

val completions_available : vi -> int
(** Completed receives waiting in {!recv_wait}'s queue. *)

val set_data_hook : vi -> (unit -> unit) -> unit
(** [hook] fires when a receive completion is enqueued on this VI. *)
