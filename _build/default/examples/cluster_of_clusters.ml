(* Clusters of clusters: the paper's §6 scenario, end to end.

   Two clusters — three SCI nodes and three Myrinet nodes — joined by a
   gateway node equipped with both NICs. A virtual channel spans both
   real channels; nodes address any peer directly and the gateway's
   dual-buffer pipeline forwards packets between networks transparently.
   The program runs an all-pairs exchange and then measures the
   inter-cluster bandwidth in both directions, reproducing the Fig. 10
   vs Fig. 11 asymmetry.

   Run with: dune exec examples/cluster_of_clusters.exe *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Channel = Madeleine.Channel
module Vc = Madeleine.Vchannel

let () =
  let engine = Engine.create () in
  let sci_fab = Simnet.Fabric.create engine ~name:"sci" ~link:Simnet.Netparams.sci in
  let myri_fab =
    Simnet.Fabric.create engine ~name:"myri" ~link:Simnet.Netparams.myrinet
  in
  (* Nodes 0,1,2 on SCI; node 3 = gateway on both; nodes 4,5 on Myrinet. *)
  let node i name = Simnet.Node.create engine ~name ~id:i in
  let sci_nodes = [ node 0 "sci-a"; node 1 "sci-b"; node 2 "sci-c" ] in
  let gw = node 3 "gateway" in
  let myri_nodes = [ node 4 "myri-a"; node 5 "myri-b" ] in
  List.iter (Simnet.Fabric.attach sci_fab) (sci_nodes @ [ gw ]);
  List.iter (Simnet.Fabric.attach myri_fab) (gw :: myri_nodes);
  let sisci = Sisci.make_net engine sci_fab in
  let bip = Bip.make_net engine myri_fab in
  let adapters = Hashtbl.create 8 and endpoints = Hashtbl.create 8 in
  List.iter
    (fun n -> Hashtbl.add adapters n.Simnet.Node.id (Sisci.attach sisci n))
    (sci_nodes @ [ gw ]);
  List.iter
    (fun n -> Hashtbl.add endpoints n.Simnet.Node.id (Bip.attach bip n))
    (gw :: myri_nodes);
  let session = Madeleine.Session.create engine in
  let ch_sci =
    Channel.create session
      (Madeleine.Pmm_sisci.driver (Hashtbl.find adapters))
      ~ranks:[ 0; 1; 2; 3 ] ()
  in
  let ch_myri =
    Channel.create session
      (Madeleine.Pmm_bip.driver (Hashtbl.find endpoints))
      ~ranks:[ 3; 4; 5 ] ()
  in
  let vc = Vc.create session ~mtu:(32 * 1024) [ ch_sci; ch_myri ] in

  Format.printf "virtual channel spans ranks %s@."
    (String.concat ", " (List.map string_of_int (Vc.ranks vc)));
  List.iter
    (fun (a, b) ->
      Format.printf "  route %d -> %d: %d hop(s)@." a b
        (Vc.route_length vc ~src:a ~dst:b))
    [ (0, 1); (0, 3); (0, 5); (4, 2) ];

  (* Phase 1: all-pairs token exchange across the whole machine. *)
  let all_ranks = Vc.ranks vc in
  let pending = Marcel.Semaphore.create 0 in
  let expected = ref 0 in
  List.iter
    (fun me ->
      Engine.spawn engine ~name:(Printf.sprintf "app.%d" me) (fun () ->
          List.iter
            (fun peer ->
              if peer <> me then begin
                let oc = Vc.begin_packing vc ~me ~remote:peer in
                let token = Bytes.create 8 in
                Bytes.set_int64_le token 0 (Int64.of_int ((me * 100) + peer));
                Vc.pack oc token;
                Vc.end_packing oc
              end)
            all_ranks);
      Engine.spawn engine ~name:(Printf.sprintf "sink.%d" me) (fun () ->
          for _ = 2 to List.length all_ranks do
            let ic = Vc.begin_unpacking vc ~me in
            let token = Bytes.create 8 in
            Vc.unpack ic token;
            Vc.end_unpacking ic;
            let v = Int64.to_int (Bytes.get_int64_le token 0) in
            assert (v = (Vc.remote_rank ic * 100) + me);
            Marcel.Semaphore.release pending
          done);
      expected := !expected + List.length all_ranks - 1)
    all_ranks;
  Engine.spawn engine ~name:"phase1" (fun () ->
      for _ = 1 to !expected do
        Marcel.Semaphore.acquire pending
      done;
      Format.printf "[%a] all-pairs exchange complete (%d messages)@." Time.pp
        (Engine.now engine) !expected);
  Engine.run engine;

  (* Phase 2: inter-cluster bandwidth, both directions through the
     gateway, on a fresh world per measurement. *)
  let measure ~src ~dst =
    let bytes_count = 1 lsl 20 in
    let t0 = ref Time.zero and t1 = ref Time.zero in
    Engine.spawn engine ~name:"bw.sender" (fun () ->
        t0 := Engine.now engine;
        let oc = Vc.begin_packing vc ~me:src ~remote:dst in
        Vc.pack oc (Bytes.create bytes_count);
        Vc.end_packing oc);
    Engine.spawn engine ~name:"bw.receiver" (fun () ->
        let ic = Vc.begin_unpacking_from vc ~me:dst ~remote:src in
        let sink = Bytes.create bytes_count in
        Vc.unpack ic sink;
        Vc.end_unpacking ic;
        t1 := Engine.now engine);
    Engine.run engine;
    Time.rate_mb_s ~bytes_count (Time.diff !t1 !t0)
  in
  let fwd = measure ~src:0 ~dst:4 in
  let rev = measure ~src:4 ~dst:0 in
  Format.printf "inter-cluster bandwidth at 32 kB packets:@.";
  Format.printf "  SCI -> Myrinet : %5.1f MB/s@." fwd;
  Format.printf "  Myrinet -> SCI : %5.1f MB/s  (PCI arbitration penalty)@."
    rev;
  List.iter
    (fun (node, packets, bytes) ->
      Format.printf "  gateway rank %d relayed %d packets (%d kB)@." node
        packets (bytes / 1024))
    (Vc.forwarded vc);
  Format.printf "cluster_of_clusters: done at %a of simulated time@." Time.pp
    (Engine.now engine)
