(* MPI on a cluster of clusters, declared in a configuration file.

   Five ranks across three networks (SCI, Myrinet, Fast Ethernet) with
   two gateway nodes; the MPI device rides a virtual channel, so every
   collective crosses network boundaries transparently. The program runs
   a global allreduce and then passes a token around the full ring,
   printing where each hop physically travels.

   Run with: dune exec examples/wide_area_mpi.exe
   (from the repository root; pass a path to use another cluster file) *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Cf = Clusterfile
module Mpi = Mpilite.Mpi

let fallback_cfg =
  {|
network sci   type=sisci
network myri  type=bip
network eth   type=tcp
node alpha  nets=sci
node gw1    nets=sci,myri
node mid    nets=myri
node gw2    nets=myri,eth
node omega  nets=eth
channel c-sci   net=sci   nodes=alpha,gw1
channel c-myri  net=myri  nodes=gw1,mid,gw2
channel c-eth   net=eth   nodes=gw2,omega
vchannel wan  channels=c-sci,c-myri,c-eth  mtu=16384
|}

let int_sum a b =
  let r = Bytes.create 8 in
  Bytes.set_int64_le r 0
    (Int64.add (Bytes.get_int64_le a 0) (Bytes.get_int64_le b 0));
  r

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else "examples/clusters/three_cluster.cfg"
  in
  let world =
    if Sys.file_exists path then Cf.load_file path else Cf.load fallback_cfg
  in
  let engine = Cf.engine world in
  let vc = Cf.vchannel world "wan" in
  let names = Cf.nodes world in
  let n = List.length names in
  Format.printf "cluster file: %d nodes over %d networks@." n
    (List.length (Cf.networks world));
  List.iter
    (fun a ->
      Format.printf "  %s:" a;
      List.iter
        (fun b ->
          if a <> b then
            Format.printf " ->%s:%dhop" b
              (Madeleine.Vchannel.route_length vc
                 ~src:(Cf.rank_of world a)
                 ~dst:(Cf.rank_of world b)))
        names;
      Format.printf "@.")
    names;

  let mpi =
    Mpi.create_world engine
      ~devices:(Array.init n (fun rank -> Mpilite.Dev_chmad_v.make vc ~rank))
  in
  for r = 0 to n - 1 do
    let name = List.nth names r in
    Engine.spawn engine ~name (fun () ->
        let c = Mpi.ctx mpi ~rank:r in
        (* Global sum across all three networks. *)
        let mine = Bytes.create 8 in
        Bytes.set_int64_le mine 0 (Int64.of_int ((r + 1) * (r + 1)));
        let total = Mpi.allreduce c ~op:int_sum mine in
        if r = 0 then
          Format.printf "[%a] allreduce of squares over %d ranks = %d@."
            Time.pp (Engine.now engine) n
            (Int64.to_int (Bytes.get_int64_le total 0));
        (* Ring pass: each hop may cross a gateway. *)
        let token = Bytes.create 8 in
        if r = 0 then begin
          Bytes.set_int64_le token 0 1L;
          Mpi.send c ~dst:1 ~tag:0 token;
          ignore (Mpi.recv c ~src:(n - 1) ~tag:0 token);
          Format.printf
            "[%a] token returned to %s after visiting every cluster (value %Ld)@."
            Time.pp (Engine.now engine) name
            (Bytes.get_int64_le token 0)
        end
        else begin
          ignore (Mpi.recv c ~src:(r - 1) ~tag:0 token);
          Bytes.set_int64_le token 0
            (Int64.add (Bytes.get_int64_le token 0) 1L);
          Format.printf "[%a] token at %s@." Time.pp (Engine.now engine) name;
          Mpi.send c ~dst:((r + 1) mod n) ~tag:0 token
        end)
  done;
  Engine.run engine;
  Format.printf "wide_area_mpi: done at %a of simulated time@." Time.pp
    (Engine.now engine)
