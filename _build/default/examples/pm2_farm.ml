(* A PM2-style master/worker task farm over Madeleine/SCI.

   Rank 0 farms out ranges of a numeric search (counting primes) to
   three workers through asynchronous raw RPCs; each worker computes and
   RPCs its partial result back to the master's accumulator service.
   Everything rides Madeleine messages: service ids EXPRESS, arguments
   CHEAPER, completions for the final synchronization — the programming
   model the paper built Madeleine for (§1).

   Run with: dune exec examples/pm2_farm.exe *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Mad = Madeleine.Api
module Iface = Madeleine.Iface

let workers = 3
let tasks = 12
let range_per_task = 20_000

let count_primes lo hi =
  let is_prime n =
    if n < 2 then false
    else begin
      let rec go d = d * d > n || (n mod d <> 0 && go (d + 1)) in
      go 2
    end
  in
  let count = ref 0 in
  for n = lo to hi - 1 do
    if is_prime n then incr count
  done;
  !count

let pack_ints oc ints =
  let b = Bytes.create (8 * List.length ints) in
  List.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.of_int v)) ints;
  Mad.pack oc ~r_mode:Iface.Receive_express b

let unpack_ints ic n =
  let b = Bytes.create (8 * n) in
  Mad.unpack ic ~r_mode:Iface.Receive_express b;
  List.init n (fun i -> Int64.to_int (Bytes.get_int64_le b (8 * i)))

let () =
  let engine = Engine.create () in
  let fabric = Simnet.Fabric.create engine ~name:"sci" ~link:Simnet.Netparams.sci in
  let sisci = Sisci.make_net engine fabric in
  let adapters =
    Array.init (workers + 1) (fun i ->
        let n = Simnet.Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Simnet.Fabric.attach fabric n;
        Sisci.attach sisci n)
  in
  let session = Madeleine.Session.create engine in
  let channel =
    Madeleine.Channel.create session
      (Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)))
      ~ranks:(List.init (workers + 1) Fun.id)
      ()
  in
  let pm = Pm2.create_world engine channel in

  let total = ref 0 and results_seen = ref 0 in
  let all_done = Marcel.Ivar.create () in

  (* Master-side accumulator: workers RPC their partial counts here. *)
  let accumulate =
    Pm2.register pm ~quick:true ~name:"accumulate" (fun _ ic ->
        match unpack_ints ic 3 with
        | [ task; lo; count ] ->
            Mad.end_unpacking ic;
            total := !total + count;
            incr results_seen;
            Format.printf "[%a] master: task %2d (from %d) -> %d primes@."
              Time.pp (Engine.now engine) task lo count;
            if !results_seen = tasks then Marcel.Ivar.fill all_done ()
        | _ -> assert false)
  in

  (* Worker-side compute service: threaded, since it takes a while. *)
  let compute =
    Pm2.register pm ~name:"compute" (fun t ic ->
        match unpack_ints ic 3 with
        | [ task; lo; hi ] ->
            Mad.end_unpacking ic;
            let count = count_primes lo hi in
            (* Charge some virtual CPU time for the computation. *)
            Engine.sleep (Time.us (float_of_int (hi - lo) /. 50.0));
            Pm2.rpc t ~dst:0 accumulate ~pack:(fun oc ->
                pack_ints oc [ task; lo; count ])
        | _ -> assert false)
  in

  Engine.spawn engine ~name:"master" (fun () ->
      for task = 0 to tasks - 1 do
        let lo = 2 + (task * range_per_task) in
        let worker = 1 + (task mod workers) in
        Pm2.rpc pm.(0) ~dst:worker compute ~pack:(fun oc ->
            pack_ints oc [ task; lo; lo + range_per_task ])
      done;
      Marcel.Ivar.read all_done;
      Format.printf
        "[%a] master: %d primes below %d, computed by %d workers@." Time.pp
        (Engine.now engine) !total
        (2 + (tasks * range_per_task))
        workers);
  Engine.run engine;
  Format.printf "pm2_farm: done at %a of simulated time@." Time.pp
    (Engine.now engine)
