(* RPC over Nexus/Madeleine: a replicated key-value store.

   The paper motivates Madeleine with RPC-style runtimes (§1): a request
   header must be examined by the runtime (which handler?) and by the
   application (how much space?) before the payload lands. This example
   runs a key-value server on one node and two client nodes issuing
   lookups and inserts through Nexus remote service requests, first over
   Madeleine/SCI, then over plain TCP, printing the per-operation cost
   of each transport.

   Run with: dune exec examples/rpc_server.exe *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Nx = Nexus

let h_insert = 0
let h_lookup = 1
let h_reply = 0

let run_world proto_name transports engine =
  let world = Nx.create_world engine ~transports in
  let server = Nx.ctx world ~rank:0 in
  let store : (string, Bytes.t) Hashtbl.t = Hashtbl.create 64 in
  (* Per-client reply paths. *)
  let reply_boxes = Array.init 3 (fun _ -> Marcel.Mailbox.create ()) in
  let client_sps =
    Array.init 3 (fun r ->
        if r = 0 then None
        else
          let c = Nx.ctx world ~rank:r in
          let ep =
            Nx.make_endpoint c
              ~handlers:
                [|
                  (fun _ buf ->
                    let len = Nx.Buffer.get_int buf in
                    Marcel.Mailbox.put reply_boxes.(r)
                      (Nx.Buffer.get_bytes buf ~len));
                |]
          in
          Some (Nx.startpoint ep))
  in
  let get_string buf =
    let len = Nx.Buffer.get_int buf in
    Bytes.to_string (Nx.Buffer.get_bytes buf ~len)
  in
  let server_ep =
    Nx.make_endpoint server
      ~handlers:
        [|
          (* insert(key, value) -> ack *)
          (fun ctx buf ->
            let client = Nx.Buffer.get_int buf in
            let key = get_string buf in
            let vlen = Nx.Buffer.get_int buf in
            let value = Nx.Buffer.get_bytes buf ~len:vlen in
            Hashtbl.replace store key value;
            let reply = Nx.Buffer.create () in
            Nx.Buffer.put_int reply 2;
            Nx.Buffer.put_bytes reply (Bytes.of_string "ok");
            Nx.send_rsr ctx (Option.get client_sps.(client)) ~handler:h_reply
              reply);
          (* lookup(key) -> value *)
          (fun ctx buf ->
            let client = Nx.Buffer.get_int buf in
            let key = get_string buf in
            let value =
              Option.value (Hashtbl.find_opt store key)
                ~default:(Bytes.of_string "<missing>")
            in
            let reply = Nx.Buffer.create () in
            Nx.Buffer.put_int reply (Bytes.length value);
            Nx.Buffer.put_bytes reply value;
            Nx.send_rsr ctx (Option.get client_sps.(client)) ~handler:h_reply
              reply);
        |]
  in
  let server_sp = Nx.startpoint server_ep in
  let stats = Simnet.Stats.create () in
  let run_client r =
    Engine.spawn engine ~name:(Printf.sprintf "client.%d" r) (fun () ->
        let c = Nx.ctx world ~rank:r in
        for i = 1 to 20 do
          let key = Printf.sprintf "key-%d-%d" r i in
          let value = Bytes.make (64 * i) (Char.chr (64 + r)) in
          let t0 = Engine.now engine in
          (* insert *)
          let buf = Nx.Buffer.create () in
          Nx.Buffer.put_int buf r;
          Nx.Buffer.put_int buf (String.length key);
          Nx.Buffer.put_bytes buf (Bytes.of_string key);
          Nx.Buffer.put_int buf (Bytes.length value);
          Nx.Buffer.put_bytes buf value;
          Nx.send_rsr c server_sp ~handler:h_insert buf;
          ignore (Marcel.Mailbox.take reply_boxes.(r));
          (* lookup *)
          let buf = Nx.Buffer.create () in
          Nx.Buffer.put_int buf r;
          Nx.Buffer.put_int buf (String.length key);
          Nx.Buffer.put_bytes buf (Bytes.of_string key);
          Nx.send_rsr c server_sp ~handler:h_lookup buf;
          let got = Marcel.Mailbox.take reply_boxes.(r) in
          assert (Bytes.equal got value);
          Simnet.Stats.add stats
            (Time.to_us (Time.diff (Engine.now engine) t0) /. 2.0)
        done)
  in
  run_client 1;
  run_client 2;
  Engine.run engine;
  Format.printf
    "%-18s %3d RPCs, mean %6.1f us/op (min %6.1f, max %6.1f), store=%d keys@."
    proto_name
    (Simnet.Stats.count stats)
    (Simnet.Stats.mean stats) (Simnet.Stats.min stats) (Simnet.Stats.max stats)
    (Hashtbl.length store)

let () =
  (* Over Madeleine/SCI. *)
  let engine = Engine.create () in
  let sci = Simnet.Fabric.create engine ~name:"sci" ~link:Simnet.Netparams.sci in
  let sisci = Sisci.make_net engine sci in
  let adapters =
    Array.init 3 (fun i ->
        let n = Simnet.Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Simnet.Fabric.attach sci n;
        Sisci.attach sisci n)
  in
  let session = Madeleine.Session.create engine in
  let channel =
    Madeleine.Channel.create session
      (Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)))
      ~ranks:[ 0; 1; 2 ] ()
  in
  run_world "nexus/mad/SCI"
    (Array.init 3 (fun rank -> Nx.mad_transport channel ~rank))
    engine;

  (* Over plain TCP. *)
  let engine = Engine.create () in
  let eth =
    Simnet.Fabric.create engine ~name:"eth" ~link:Simnet.Netparams.fast_ethernet
  in
  let tcp = Tcpnet.make_net engine eth in
  let stacks =
    Array.init 3 (fun i ->
        let n = Simnet.Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Simnet.Fabric.attach eth n;
        Tcpnet.attach tcp n)
  in
  run_world "nexus/TCP" (Nx.tcp_transports engine ~stacks) engine;
  print_endline "rpc_server: done"
