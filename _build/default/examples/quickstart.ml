(* Quickstart: the paper's Figure 1, as a runnable program.

   A sender ships an array whose size the receiver cannot predict. The
   size travels EXPRESS — the receiver needs it immediately, to allocate
   the destination — and the bulk data CHEAPER, letting Madeleine pick
   the fastest path on the wire (here: BIP's zero-copy rendezvous over
   simulated Myrinet).

   Run with: dune exec examples/quickstart.exe *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Mad = Madeleine.Api
module Iface = Madeleine.Iface

let () =
  (* A two-node Myrinet cluster with BIP. *)
  let engine = Engine.create () in
  let fabric =
    Simnet.Fabric.create engine ~name:"myrinet" ~link:Simnet.Netparams.myrinet
  in
  let node0 = Simnet.Node.create engine ~name:"sender" ~id:0 in
  let node1 = Simnet.Node.create engine ~name:"receiver" ~id:1 in
  Simnet.Fabric.attach fabric node0;
  Simnet.Fabric.attach fabric node1;
  let bip = Bip.make_net engine fabric in
  let b0 = Bip.attach bip node0 and b1 = Bip.attach bip node1 in
  let driver = Madeleine.Pmm_bip.driver (function 0 -> b0 | _ -> b1) in
  let session = Madeleine.Session.create engine in
  let channel = Madeleine.Channel.create session driver ~ranks:[ 0; 1 ] () in

  let array_size = 100_000 in
  let data = Simnet.Rng.bytes (Simnet.Rng.create ~seed:1L) array_size in

  Engine.spawn engine ~name:"sender" (fun () ->
      let ep = Madeleine.Channel.endpoint channel ~rank:0 in
      let oc = Mad.begin_packing ep ~remote:1 in
      let size_header = Bytes.create 4 in
      Bytes.set_int32_le size_header 0 (Int32.of_int array_size);
      (* The receiver must see the size before it can post the array. *)
      Mad.pack oc ~r_mode:Iface.Receive_express size_header;
      Mad.pack oc ~r_mode:Iface.Receive_cheaper data;
      Mad.end_packing oc;
      Format.printf "[%a] sender: message of %d bytes packed and flushed@."
        Time.pp (Engine.now engine) array_size);

  Engine.spawn engine ~name:"receiver" (fun () ->
      let ep = Madeleine.Channel.endpoint channel ~rank:1 in
      let ic = Mad.begin_unpacking ep in
      let size_header = Bytes.create 4 in
      Mad.unpack ic ~r_mode:Iface.Receive_express size_header;
      (* EXPRESS: the value is live right now. *)
      let size = Int32.to_int (Bytes.get_int32_le size_header 0) in
      Format.printf "[%a] receiver: header says %d bytes, allocating@." Time.pp
        (Engine.now engine) size;
      let sink = Bytes.create size in
      Mad.unpack ic ~r_mode:Iface.Receive_cheaper sink;
      Mad.end_unpacking ic;
      Format.printf "[%a] receiver: array extracted, content %s@." Time.pp
        (Engine.now engine)
        (if Bytes.equal sink data then "OK" else "CORRUPT"));

  Engine.run engine;
  Format.printf "quickstart: done at %a of simulated time@." Time.pp
    (Engine.now engine)
