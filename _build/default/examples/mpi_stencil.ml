(* A classic HPC workload on the mini-MPI over MPICH/Madeleine/SCI:
   1-D heat diffusion with halo exchange and a global convergence test.

   Each of the 4 ranks owns a strip of the rod; every iteration swaps
   halo cells with its neighbours (isend/irecv), applies the stencil,
   and every 10 iterations allreduces the residual to decide
   termination. This is the kind of application the paper's
   MPICH/Madeleine port exists to host.

   Run with: dune exec examples/mpi_stencil.exe *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Mpi = Mpilite.Mpi

let ranks = 4
let cells_per_rank = 4096
let max_iters = 200
let tolerance = 1e-5

let float_to_bytes a =
  let b = Bytes.create (8 * Array.length a) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) (Int64.bits_of_float v)) a;
  b

let bytes_to_float b =
  Array.init
    (Bytes.length b / 8)
    (fun i -> Int64.float_of_bits (Bytes.get_int64_le b (8 * i)))

let fsum a b =
  let x = bytes_to_float a and y = bytes_to_float b in
  float_to_bytes (Array.map2 ( +. ) x y)

let () =
  let engine = Engine.create () in
  let fabric = Simnet.Fabric.create engine ~name:"sci" ~link:Simnet.Netparams.sci in
  let sisci = Sisci.make_net engine fabric in
  let adapters =
    Array.init ranks (fun i ->
        let n = Simnet.Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
        Simnet.Fabric.attach fabric n;
        Sisci.attach sisci n)
  in
  let session = Madeleine.Session.create engine in
  let channel =
    Madeleine.Channel.create session
      (Madeleine.Pmm_sisci.driver (fun r -> adapters.(r)))
      ~ranks:(List.init ranks Fun.id) ()
  in
  let world =
    Mpi.create_world engine
      ~devices:(Array.init ranks (fun rank -> Mpilite.Dev_chmad.make channel ~rank))
  in

  let iterations_run = ref 0 in
  for r = 0 to ranks - 1 do
    Engine.spawn engine ~name:(Printf.sprintf "rank%d" r) (fun () ->
        let c = Mpi.ctx world ~rank:r in
        (* Strip with two halo cells; a heat source on rank 0's boundary. *)
        let u = Array.make (cells_per_rank + 2) 0.0 in
        let next = Array.make (cells_per_rank + 2) 0.0 in
        if r = 0 then u.(0) <- 100.0;
        let halo_tag = 100 in
        let continue_ = ref true in
        let iter = ref 0 in
        while !continue_ do
          incr iter;
          (* Halo exchange with left and right neighbours. *)
          let reqs = ref [] in
          let left_halo = Bytes.create 8 and right_halo = Bytes.create 8 in
          if r > 0 then begin
            reqs :=
              Mpi.isend c ~dst:(r - 1) ~tag:halo_tag
                (float_to_bytes [| u.(1) |])
              :: Mpi.irecv c ~src:(r - 1) ~tag:halo_tag left_halo
              :: !reqs
          end;
          if r < ranks - 1 then begin
            reqs :=
              Mpi.isend c ~dst:(r + 1) ~tag:halo_tag
                (float_to_bytes [| u.(cells_per_rank) |])
              :: Mpi.irecv c ~src:(r + 1) ~tag:halo_tag right_halo
              :: !reqs
          end;
          ignore (Mpi.waitall !reqs);
          if r > 0 then u.(0) <- (bytes_to_float left_halo).(0);
          if r < ranks - 1 then
            u.(cells_per_rank + 1) <- (bytes_to_float right_halo).(0);
          (* Jacobi sweep. *)
          let residual = ref 0.0 in
          for i = 1 to cells_per_rank do
            next.(i) <- 0.5 *. (u.(i - 1) +. u.(i + 1));
            residual := !residual +. abs_float (next.(i) -. u.(i))
          done;
          Array.blit next 0 u 0 (cells_per_rank + 2);
          if r = 0 then u.(0) <- 100.0;
          (* Global convergence check every 10 iterations. *)
          if !iter mod 10 = 0 then begin
            let total =
              (bytes_to_float (Mpi.allreduce c ~op:fsum (float_to_bytes [| !residual |]))).(0)
            in
            if r = 0 then
              Format.printf "[%a] iter %3d: global residual %.6f@." Time.pp
                (Engine.now engine) !iter total;
            if total < tolerance || !iter >= max_iters then continue_ := false
          end
        done;
        if r = 0 then iterations_run := !iter;
        (* Gather boundary temperatures for a final report. *)
        match Mpi.gather c ~root:0 (float_to_bytes [| u.(1) |]) with
        | Some parts ->
            Format.printf "strip-start temperatures:";
            Array.iter
              (fun p -> Format.printf " %6.2f" (bytes_to_float p).(0))
              parts;
            Format.printf "@."
        | None -> ())
  done;
  Engine.run engine;
  Format.printf
    "mpi_stencil: %d ranks, %d iterations, finished at %a simulated@." ranks
    !iterations_run Time.pp (Engine.now engine)
