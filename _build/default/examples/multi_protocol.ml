(* Multi-protocol session: the paper's headline capability (§2.1).

   One application, one pair of nodes, two networks: a TCP channel over
   Fast Ethernet carries small control messages, while an SCI channel
   carries the bulk data — and the application switches between them
   dynamically. A control request ("send me block k") goes over TCP; the
   corresponding 256 kB block comes back over SISCI/SCI. The two channels
   are fully isolated worlds, as the interface promises.

   Run with: dune exec examples/multi_protocol.exe *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Mad = Madeleine.Api
module Iface = Madeleine.Iface
module Channel = Madeleine.Channel

let block_size = 256 * 1024
let blocks = 4

let () =
  let engine = Engine.create () in
  (* Two fabrics: Fast Ethernet and SCI, both NICs in both nodes. *)
  let eth = Simnet.Fabric.create engine ~name:"eth" ~link:Simnet.Netparams.fast_ethernet in
  let sci = Simnet.Fabric.create engine ~name:"sci" ~link:Simnet.Netparams.sci in
  let n0 = Simnet.Node.create engine ~name:"client" ~id:0 in
  let n1 = Simnet.Node.create engine ~name:"server" ~id:1 in
  List.iter (fun f -> Simnet.Fabric.attach f n0; Simnet.Fabric.attach f n1) [ eth; sci ];
  let tcp = Tcpnet.make_net engine eth in
  let t0 = Tcpnet.attach tcp n0 and t1 = Tcpnet.attach tcp n1 in
  let sisci = Sisci.make_net engine sci in
  let s0 = Sisci.attach sisci n0 and s1 = Sisci.attach sisci n1 in
  let session = Madeleine.Session.create engine in
  let control =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (function 0 -> t0 | _ -> t1))
      ~ranks:[ 0; 1 ] ()
  in
  let bulk =
    Channel.create session
      (Madeleine.Pmm_sisci.driver (function 0 -> s0 | _ -> s1))
      ~ranks:[ 0; 1 ] ()
  in

  let dataset =
    Array.init blocks (fun k ->
        Simnet.Rng.bytes (Simnet.Rng.create ~seed:(Int64.of_int k)) block_size)
  in

  Engine.spawn engine ~name:"server" (fun () ->
      let ctl = Channel.endpoint control ~rank:1 in
      let blk = Channel.endpoint bulk ~rank:1 in
      for _ = 1 to blocks do
        (* Control request arrives over TCP... *)
        let ic = Mad.begin_unpacking ctl in
        let req = Bytes.create 4 in
        Mad.unpack ic ~r_mode:Iface.Receive_express req;
        Mad.end_unpacking ic;
        let k = Int32.to_int (Bytes.get_int32_le req 0) in
        Format.printf "[%a] server: request for block %d via %s@." Time.pp
          (Engine.now engine) k "TCP/ethernet";
        (* ...and the block leaves over SCI. *)
        let oc = Mad.begin_packing blk ~remote:0 in
        Mad.pack oc ~r_mode:Iface.Receive_cheaper dataset.(k);
        Mad.end_packing oc
      done);

  Engine.spawn engine ~name:"client" (fun () ->
      let ctl = Channel.endpoint control ~rank:0 in
      let blk = Channel.endpoint bulk ~rank:0 in
      for k = 0 to blocks - 1 do
        let t_req = Engine.now engine in
        let oc = Mad.begin_packing ctl ~remote:1 in
        let req = Bytes.create 4 in
        Bytes.set_int32_le req 0 (Int32.of_int k);
        Mad.pack oc ~r_mode:Iface.Receive_express req;
        Mad.end_packing oc;
        let ic = Mad.begin_unpacking blk in
        let sink = Bytes.create block_size in
        Mad.unpack ic ~r_mode:Iface.Receive_cheaper sink;
        Mad.end_unpacking ic;
        let elapsed = Time.diff (Engine.now engine) t_req in
        Format.printf
          "[%a] client: block %d (%d kB) fetched in %a (%s), bulk at %.1f MB/s@."
          Time.pp (Engine.now engine) k (block_size / 1024) Time.pp elapsed
          (if Bytes.equal sink dataset.(k) then "intact" else "CORRUPT")
          (Time.rate_mb_s ~bytes_count:block_size elapsed)
      done);

  Engine.run engine;
  Format.printf "multi_protocol: done at %a of simulated time@." Time.pp
    (Engine.now engine)
