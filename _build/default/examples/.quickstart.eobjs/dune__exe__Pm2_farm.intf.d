examples/pm2_farm.mli:
