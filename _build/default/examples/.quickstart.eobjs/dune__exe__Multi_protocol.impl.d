examples/multi_protocol.ml: Array Bytes Format Int32 Int64 List Madeleine Marcel Simnet Sisci Tcpnet
