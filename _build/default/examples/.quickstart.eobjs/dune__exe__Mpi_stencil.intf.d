examples/mpi_stencil.mli:
