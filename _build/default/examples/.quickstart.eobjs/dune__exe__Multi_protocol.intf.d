examples/multi_protocol.mli:
