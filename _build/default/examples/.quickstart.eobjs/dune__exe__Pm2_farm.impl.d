examples/pm2_farm.ml: Array Bytes Format Fun Int64 List Madeleine Marcel Pm2 Printf Simnet Sisci
