examples/mpi_stencil.ml: Array Bytes Format Fun Int64 List Madeleine Marcel Mpilite Printf Simnet Sisci
