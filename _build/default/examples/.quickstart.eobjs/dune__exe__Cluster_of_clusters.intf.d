examples/cluster_of_clusters.mli:
