examples/wide_area_mpi.ml: Array Bytes Clusterfile Format Int64 List Madeleine Marcel Mpilite Sys
