examples/wide_area_mpi.mli:
