examples/quickstart.mli:
