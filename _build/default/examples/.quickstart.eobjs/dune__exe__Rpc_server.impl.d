examples/rpc_server.ml: Array Bytes Char Format Hashtbl Madeleine Marcel Nexus Option Printf Simnet Sisci String Tcpnet
