examples/cluster_of_clusters.ml: Bip Bytes Format Hashtbl Int64 List Madeleine Marcel Printf Simnet Sisci String
