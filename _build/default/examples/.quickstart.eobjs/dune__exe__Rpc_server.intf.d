examples/rpc_server.mli:
