examples/quickstart.ml: Bip Bytes Format Int32 Madeleine Marcel Simnet
