test/test_edge_cases.ml: Alcotest Bip Bytes Harness Int64 List Madeleine Marcel Printf Simnet
