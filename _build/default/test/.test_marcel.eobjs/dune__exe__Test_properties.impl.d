test/test_properties.ml: Alcotest Array Buffer Bytes Clusterfile Fun Gen Harness Int Int64 List Madeleine Marcel Mpilite Pm2 Printf QCheck QCheck_alcotest Simnet String Tcpnet
