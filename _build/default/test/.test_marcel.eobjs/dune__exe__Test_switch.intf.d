test/test_switch.mli:
