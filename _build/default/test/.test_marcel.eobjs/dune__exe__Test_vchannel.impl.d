test/test_vchannel.ml: Alcotest Bip Bytes Int64 List Madeleine Marcel Printf Sbp Simnet Sisci Tcpnet Via
