test/test_marcel.ml: Alcotest Gen List Marcel Printf QCheck QCheck_alcotest String
