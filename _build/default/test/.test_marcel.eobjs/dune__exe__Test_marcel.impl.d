test/test_marcel.ml: Alcotest Gen Int64 List Marcel Printf QCheck QCheck_alcotest String
