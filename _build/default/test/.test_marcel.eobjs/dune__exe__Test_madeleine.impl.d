test/test_madeleine.ml: Alcotest Bytes Char Harness Int32 Int64 List Madeleine Marcel Printf Simnet String
