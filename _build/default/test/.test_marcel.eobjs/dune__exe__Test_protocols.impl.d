test/test_protocols.ml: Alcotest Bip Bytes Int64 List Marcel Printf Sbp Simnet Sisci Tcpnet Via
