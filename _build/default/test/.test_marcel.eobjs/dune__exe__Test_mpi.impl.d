test/test_mpi.ml: Alcotest Array Bytes Char Fun Harness Int64 List Madeleine Marcel Mpilite Printf Simnet Sisci
