test/test_pm2.ml: Alcotest Array Bytes Harness Int32 Int64 List Madeleine Marcel Pm2 Printf Simnet
