test/test_clusterfile.ml: Alcotest Bytes Clusterfile Filename Harness Madeleine Marcel Sys
