test/test_edge_cases.mli:
