test/test_vchannel.mli:
