test/test_marcel.mli:
