test/test_nexus.mli:
