test/test_simnet.ml: Alcotest Bytes Float Gen Int64 List Marcel Printf QCheck QCheck_alcotest Simnet
