test/test_simnet.ml: Alcotest Bytes Float Gen List Marcel Printf QCheck QCheck_alcotest Simnet
