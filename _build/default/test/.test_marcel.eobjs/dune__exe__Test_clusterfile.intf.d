test/test_clusterfile.mli:
