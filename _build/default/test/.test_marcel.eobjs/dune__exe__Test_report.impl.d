test/test_report.ml: Alcotest Report
