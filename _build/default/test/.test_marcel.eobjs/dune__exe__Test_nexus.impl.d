test/test_nexus.ml: Alcotest Array Bytes Fun Harness List Madeleine Marcel Nexus Printf Simnet Sisci Tcpnet
