test/test_nexus.ml: Alcotest Array Bytes Fun Harness Int64 List Madeleine Marcel Nexus Printf Simnet Sisci Tcpnet
