test/test_madeleine.mli:
