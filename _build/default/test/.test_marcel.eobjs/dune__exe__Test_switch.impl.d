test/test_switch.ml: Alcotest Array Bytes List Madeleine Marcel Printf String
