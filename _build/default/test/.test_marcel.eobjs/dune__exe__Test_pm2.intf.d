test/test_pm2.mli:
