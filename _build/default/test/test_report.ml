(* The replication report as a regression gate: every calibrated paper
   quantity must stay within twice its tolerance band. The full table
   prints on failure (and in `bench/main.exe report`). *)

let test_replication_report () =
  Alcotest.(check bool) "all paper quantities within tolerance" true
    (Report.run ())

let () =
  Alcotest.run "report"
    [
      ( "replication",
        [ Alcotest.test_case "paper quantities" `Slow test_replication_report ]
      );
    ]
