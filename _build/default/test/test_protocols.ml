(* Tests for the simulated network interfaces: BIP, SISCI, TCP, VIA, SBP. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams

let payload n seed =
  let rng = Simnet.Rng.create ~seed in
  Simnet.Rng.bytes rng n

(* A two-node world on one fabric. *)
let world link =
  let e = Engine.create () in
  let fab = Fabric.create e ~name:"net" ~link in
  let n0 = Node.create e ~name:"n0" ~id:0 in
  let n1 = Node.create e ~name:"n1" ~id:1 in
  Fabric.attach fab n0;
  Fabric.attach fab n1;
  (e, fab, n0, n1)

let in_range ?(lo = 0.0) ~hi what v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2fus in [%.2f, %.2f]" what v lo hi)
    true
    (v >= lo && v <= hi)

(* ------------------------------------------------------------------ *)
(* BIP *)

let bip_world () =
  let e, fab, n0, n1 = world Netparams.myrinet in
  let net = Bip.make_net e fab in
  (e, Bip.attach net n0, Bip.attach net n1)

let test_bip_short_roundtrip () =
  let e, b0, b1 = bip_world () in
  let data = payload 100 1L in
  let got = Bytes.create 100 in
  Engine.spawn e ~name:"sender" (fun () -> Bip.send b0 ~dst:1 ~tag:0 data);
  Engine.spawn e ~name:"receiver" (fun () ->
      let len = Bip.recv b1 ~src:0 ~tag:0 got in
      Alcotest.(check int) "length" 100 len);
  Engine.run e;
  Alcotest.(check bytes) "content" data got

let test_bip_short_latency () =
  (* Raw BIP one-way small-message latency should be near 5 us. *)
  let e, b0, b1 = bip_world () in
  let arrival = ref Time.zero in
  Engine.spawn e ~name:"sender" (fun () ->
      Bip.send b0 ~dst:1 ~tag:0 (Bytes.create 4));
  Engine.spawn e ~name:"receiver" (fun () ->
      ignore (Bip.recv b1 ~src:0 ~tag:0 (Bytes.create 4));
      arrival := Engine.now e);
  Engine.run e;
  in_range ~lo:3.0 ~hi:7.0 "bip short latency" (Time.to_us !arrival)

let test_bip_long_zero_copy_delivery () =
  let e, b0, b1 = bip_world () in
  let n = 100_000 in
  let data = payload n 2L in
  let got = Bytes.create n in
  Engine.spawn e ~name:"sender" (fun () -> Bip.send b0 ~dst:1 ~tag:3 data);
  Engine.spawn e ~name:"receiver" (fun () ->
      let len = Bip.recv b1 ~src:0 ~tag:3 got in
      Alcotest.(check int) "length" n len);
  Engine.run e;
  Alcotest.(check bytes) "content" data got

let test_bip_long_bandwidth () =
  (* 1 MB long message: raw BIP tops out near 126 MB/s. *)
  let e, b0, b1 = bip_world () in
  let n = 1_000_000 in
  let finish = ref Time.zero in
  Engine.spawn e ~name:"sender" (fun () ->
      Bip.send b0 ~dst:1 ~tag:0 (Bytes.create n));
  Engine.spawn e ~name:"receiver" (fun () ->
      ignore (Bip.recv b1 ~src:0 ~tag:0 (Bytes.create n));
      finish := Engine.now e);
  Engine.run e;
  let bw = Time.rate_mb_s ~bytes_count:n !finish in
  in_range ~lo:110.0 ~hi:130.0 "bip long bandwidth" bw

let test_bip_long_is_rendezvous () =
  (* The sender must not complete before the receiver posts. *)
  let e, b0, b1 = bip_world () in
  let n = 4096 in
  let sender_done = ref Time.zero in
  Engine.spawn e ~name:"sender" (fun () ->
      Bip.send b0 ~dst:1 ~tag:0 (Bytes.create n);
      sender_done := Engine.now e);
  Engine.spawn e ~name:"receiver" (fun () ->
      Engine.sleep (Time.ms 1.0);
      ignore (Bip.recv b1 ~src:0 ~tag:0 (Bytes.create n)));
  Engine.run e;
  Alcotest.(check bool)
    "sender blocked on rendezvous" true
    (Time.compare !sender_done (Time.ms 1.0) >= 0)

let test_bip_short_is_not_rendezvous () =
  (* Short messages complete at the sender without any receiver action. *)
  let e, b0, b1 = bip_world () in
  let sender_done = ref Time.zero in
  Engine.spawn e ~name:"sender" (fun () ->
      Bip.send b0 ~dst:1 ~tag:0 (Bytes.create 64);
      sender_done := Engine.now e);
  Engine.spawn e ~name:"receiver" (fun () ->
      Engine.sleep (Time.ms 5.0);
      ignore (Bip.recv b1 ~src:0 ~tag:0 (Bytes.create 64)));
  Engine.run e;
  Alcotest.(check bool)
    "sender completed early" true
    (Time.compare !sender_done (Time.us 100.0) < 0)

let test_bip_credit_exhaustion_blocks () =
  (* With no receiver consuming, only [bip_short_credits] sends fly. *)
  let e, b0, b1 = bip_world () in
  let sent = ref 0 in
  Engine.spawn e ~daemon:true ~name:"sender" (fun () ->
      for _ = 1 to Netparams.bip_short_credits + 5 do
        Bip.send b0 ~dst:1 ~tag:0 (Bytes.create 16);
        incr sent
      done);
  Engine.run e;
  Alcotest.(check int) "window filled" Netparams.bip_short_credits !sent;
  (* Consuming one message frees one credit. *)
  Engine.spawn e ~name:"receiver" (fun () ->
      ignore (Bip.recv b1 ~src:0 ~tag:0 (Bytes.create 16)));
  Engine.run e;
  Alcotest.(check int) "one more flew" (Netparams.bip_short_credits + 1) !sent

let test_bip_fifo_order () =
  let e, b0, b1 = bip_world () in
  let seen = ref [] in
  Engine.spawn e ~name:"sender" (fun () ->
      for i = 1 to 5 do
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 (Int64.of_int i);
        Bip.send b0 ~dst:1 ~tag:0 b
      done);
  Engine.spawn e ~name:"receiver" (fun () ->
      for _ = 1 to 5 do
        let b = Bytes.create 8 in
        ignore (Bip.recv b1 ~src:0 ~tag:0 b);
        seen := Int64.to_int (Bytes.get_int64_le b 0) :: !seen
      done);
  Engine.run e;
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5 ] (List.rev !seen)

let test_bip_tags_isolate () =
  let e, b0, b1 = bip_world () in
  Engine.spawn e ~name:"sender" (fun () ->
      Bip.send b0 ~dst:1 ~tag:7 (Bytes.make 4 'a');
      Bip.send b0 ~dst:1 ~tag:9 (Bytes.make 4 'b'));
  Engine.spawn e ~name:"receiver" (fun () ->
      (* Receive tag 9 first even though tag 7 was sent first. *)
      let b9 = Bytes.create 4 and b7 = Bytes.create 4 in
      ignore (Bip.recv b1 ~src:0 ~tag:9 b9);
      ignore (Bip.recv b1 ~src:0 ~tag:7 b7);
      Alcotest.(check bytes) "tag9" (Bytes.make 4 'b') b9;
      Alcotest.(check bytes) "tag7" (Bytes.make 4 'a') b7);
  Engine.run e

let test_bip_probe_and_hook () =
  let e, b0, b1 = bip_world () in
  let hook_fired = ref false in
  Bip.set_data_hook b1 (fun () -> hook_fired := true);
  Alcotest.(check bool) "probe empty" false (Bip.probe b1 ~src:0 ~tag:0);
  Engine.spawn e ~name:"sender" (fun () ->
      Bip.send b0 ~dst:1 ~tag:0 (Bytes.create 4));
  Engine.run e;
  Alcotest.(check bool) "hook" true !hook_fired;
  Alcotest.(check bool) "probe full" true (Bip.probe b1 ~src:0 ~tag:0)

let test_bip_send_to_self_rejected () =
  let e, b0, _ = bip_world () in
  Engine.spawn e ~name:"sender" (fun () ->
      Alcotest.check_raises "self" (Invalid_argument "Bip.send: dst is self")
        (fun () -> Bip.send b0 ~dst:0 ~tag:0 (Bytes.create 4)));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* SISCI *)

let sisci_world () =
  let e, fab, n0, n1 = world Netparams.sci in
  let net = Sisci.make_net e fab in
  (e, Sisci.attach net n0, Sisci.attach net n1)

let test_sisci_pio_write_visible () =
  let e, s0, s1 = sisci_world () in
  let seg = Sisci.create_segment s1 ~segment_id:1 ~size:4096 in
  let data = payload 512 3L in
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Sisci.pio_write rs ~off:128 data);
  Engine.run e;
  Alcotest.(check bytes) "content" data (Sisci.read seg ~off:128 ~len:512)

let test_sisci_poll_wakes_on_write () =
  let e, s0, s1 = sisci_world () in
  let seg = Sisci.create_segment s1 ~segment_id:1 ~size:64 in
  let woke_at = ref Time.zero in
  Engine.spawn e ~name:"poller" (fun () ->
      Sisci.wait_until seg (fun seg -> Bytes.get (Sisci.read seg ~off:0 ~len:1) 0 = '\001');
      woke_at := Engine.now e);
  Engine.spawn e ~name:"writer" (fun () ->
      Engine.sleep (Time.us 100.0);
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Sisci.pio_write rs ~off:0 (Bytes.make 1 '\001'));
  Engine.run e;
  Alcotest.(check bool)
    "woke after write" true
    (Time.compare !woke_at (Time.us 100.0) > 0)

let test_sisci_small_write_latency () =
  (* Raw SISCI: a small remote write becomes visible in roughly 1-3.5 us;
     the writing CPU itself is released earlier (posted writes). *)
  let e, s0, s1 = sisci_world () in
  let seg = Sisci.create_segment s1 ~segment_id:1 ~size:64 in
  let issued_at = ref Time.zero and visible_at = ref Time.zero in
  Engine.spawn e ~name:"poller" (fun () ->
      Sisci.wait_until seg (fun seg ->
          Bytes.get (Sisci.read seg ~off:0 ~len:1) 0 <> '\000');
      visible_at := Engine.now e);
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Sisci.pio_write rs ~off:0 (Bytes.make 8 '\001');
      issued_at := Engine.now e);
  Engine.run e;
  in_range ~lo:0.3 ~hi:1.5 "sisci pio issue" (Time.to_us !issued_at);
  in_range ~lo:1.0 ~hi:3.5 "sisci pio visibility" (Time.to_us !visible_at)

let test_sisci_pio_bandwidth () =
  (* Large PIO writes approach the write-combining cap (~88 MB/s). *)
  let e, s0, s1 = sisci_world () in
  let n = 1 lsl 20 in
  let _seg = Sisci.create_segment s1 ~segment_id:1 ~size:n in
  let done_at = ref Time.zero in
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Sisci.pio_write rs ~off:0 (Bytes.create n);
      done_at := Engine.now e);
  Engine.run e;
  let bw = Time.rate_mb_s ~bytes_count:n !done_at in
  in_range ~lo:78.0 ~hi:88.0 "sisci pio bandwidth" bw

let test_sisci_dma_bandwidth_is_poor () =
  (* The D310 DMA engine: 35 MB/s, per the paper. *)
  let e, s0, s1 = sisci_world () in
  let n = 1 lsl 20 in
  let _seg = Sisci.create_segment s1 ~segment_id:1 ~size:n in
  let done_at = ref Time.zero in
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Sisci.dma_write rs ~off:0 (Bytes.create n);
      done_at := Engine.now e);
  Engine.run e;
  let bw = Time.rate_mb_s ~bytes_count:n !done_at in
  in_range ~lo:30.0 ~hi:36.0 "sisci dma bandwidth" bw

let test_sisci_write_order_preserved () =
  let e, s0, s1 = sisci_world () in
  let seg = Sisci.create_segment s1 ~segment_id:1 ~size:16 in
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Sisci.pio_write rs ~off:0 (Bytes.make 4 'x');
      Sisci.pio_write rs ~off:0 (Bytes.make 4 'y'));
  Engine.run e;
  Alcotest.(check bytes) "last write wins" (Bytes.make 4 'y')
    (Sisci.read seg ~off:0 ~len:4)

let test_sisci_bounds_checked () =
  let e, s0, s1 = sisci_world () in
  let seg = Sisci.create_segment s1 ~segment_id:1 ~size:16 in
  Alcotest.check_raises "read oob" (Invalid_argument "Sisci.read: out of segment bounds")
    (fun () -> ignore (Sisci.read seg ~off:10 ~len:10));
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      Alcotest.check_raises "write oob"
        (Invalid_argument "Sisci.pio_write: out of segment bounds") (fun () ->
          Sisci.pio_write rs ~off:12 (Bytes.create 8)));
  Engine.run e

let test_sisci_wait_modes () =
  (* Interrupt detection costs an order of magnitude more than polling;
     the adaptive mode pays polling for prompt data and bounds the spin
     time for late data. *)
  let wake_cost mode ~delay_us =
    let e, s0, s1 = sisci_world () in
    let seg = Sisci.create_segment s1 ~segment_id:1 ~size:64 in
    let arrival = ref Time.zero and woke = ref Time.zero in
    Engine.spawn e ~name:"poller" (fun () ->
        Sisci.wait_until ~mode seg (fun seg ->
            Bytes.get (Sisci.read seg ~off:0 ~len:1) 0 <> '\000');
        woke := Engine.now e);
    Engine.spawn e ~name:"writer" (fun () ->
        Engine.sleep (Time.us delay_us);
        let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
        Sisci.pio_write rs ~off:0 (Bytes.make 1 '\001');
        arrival := Engine.now e);
    Engine.run e;
    (Time.to_us (Time.diff !woke !arrival), Time.to_us (Sisci.polled_time s1))
  in
  let poll_cost, poll_spun = wake_cost Sisci.Poll ~delay_us:100.0 in
  let intr_cost, intr_spun = wake_cost Sisci.Interrupt ~delay_us:100.0 in
  in_range ~lo:0.2 ~hi:2.0 "poll wake cost" poll_cost;
  in_range ~lo:10.0 ~hi:14.0 "interrupt wake cost" intr_cost;
  in_range ~lo:99.0 ~hi:103.0 "poll mode spins the whole wait" poll_spun;
  Alcotest.(check (float 0.001)) "interrupt mode never spins" 0.0 intr_spun;
  (* Adaptive, data arrives within the window: behaves like polling. *)
  let a_fast_cost, a_fast_spun =
    wake_cost (Sisci.Adaptive (Time.us 50.0)) ~delay_us:10.0
  in
  in_range ~lo:0.2 ~hi:2.0 "adaptive hot = poll cost" a_fast_cost;
  in_range ~lo:9.0 ~hi:13.0 "adaptive hot spin" a_fast_spun;
  (* Adaptive, data late: interrupt cost, spin bounded by the window. *)
  let a_slow_cost, a_slow_spun =
    wake_cost (Sisci.Adaptive (Time.us 50.0)) ~delay_us:2000.0
  in
  in_range ~lo:10.0 ~hi:14.0 "adaptive cold = interrupt cost" a_slow_cost;
  in_range ~lo:49.0 ~hi:51.0 "adaptive cold spin bounded" a_slow_spun

let test_sisci_connect_missing () =
  let e, s0, _s1 = sisci_world () in
  ignore e;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Sisci.connect s0 ~node_id:1 ~segment_id:99))

let test_sisci_pio_dma_share_fifo () =
  (* A PIO write issued before a DMA write to the same peer must become
     visible first: both ride the same in-order SCI stream. *)
  let e, s0, s1 = sisci_world () in
  let seg = Sisci.create_segment s1 ~segment_id:1 ~size:16384 in
  let order = ref [] in
  Engine.spawn e ~name:"watch" (fun () ->
      Sisci.wait_until seg (fun seg ->
          Bytes.get (Sisci.read seg ~off:0 ~len:1) 0 <> '\000');
      order := "pio" :: !order;
      Sisci.wait_until seg (fun seg ->
          Bytes.get (Sisci.read seg ~off:1 ~len:1) 0 <> '\000');
      order := "dma" :: !order);
  Engine.spawn e ~name:"writer" (fun () ->
      let rs = Sisci.connect s0 ~node_id:1 ~segment_id:1 in
      (* Large PIO first, then a small DMA that would otherwise win. *)
      Sisci.pio_write rs ~off:16 (Bytes.create 8192);
      Sisci.pio_write rs ~off:0 (Bytes.make 1 '\001');
      Sisci.dma_write rs ~off:1 (Bytes.make 1 '\001'));
  Engine.run e;
  Alcotest.(check (list string)) "fifo across engines" [ "pio"; "dma" ]
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* TCP *)

let tcp_world () =
  let e, fab, n0, n1 = world Netparams.fast_ethernet in
  let net = Tcpnet.make_net e fab in
  (e, Tcpnet.attach net n0, Tcpnet.attach net n1)

let test_tcp_roundtrip () =
  let e, t0, t1 = tcp_world () in
  Tcpnet.listen t1 ~port:80;
  let data = payload 5000 4L in
  let got = Bytes.create 5000 in
  Engine.spawn e ~name:"client" (fun () ->
      let c = Tcpnet.connect t0 ~node_id:1 ~port:80 in
      Tcpnet.send c data);
  Engine.spawn e ~name:"server" (fun () ->
      let c = Tcpnet.accept t1 ~port:80 in
      Tcpnet.recv c got ~off:0 ~len:5000);
  Engine.run e;
  Alcotest.(check bytes) "content" data got

let test_tcp_stream_reassembly () =
  (* Two sends, one recv spanning both: byte-stream semantics. *)
  let e, t0, t1 = tcp_world () in
  Tcpnet.listen t1 ~port:80;
  let got = Bytes.create 8 in
  Engine.spawn e ~name:"client" (fun () ->
      let c = Tcpnet.connect t0 ~node_id:1 ~port:80 in
      Tcpnet.send c (Bytes.of_string "abcd");
      Tcpnet.send c (Bytes.of_string "efgh"));
  Engine.spawn e ~name:"server" (fun () ->
      let c = Tcpnet.accept t1 ~port:80 in
      Tcpnet.recv c got ~off:0 ~len:8);
  Engine.run e;
  Alcotest.(check string) "content" "abcdefgh" (Bytes.to_string got)

let test_tcp_bandwidth () =
  let e, t0, t1 = tcp_world () in
  Tcpnet.listen t1 ~port:80;
  let n = 1_000_000 in
  let done_at = ref Time.zero and started_at = ref Time.zero in
  Engine.spawn e ~name:"client" (fun () ->
      let c = Tcpnet.connect t0 ~node_id:1 ~port:80 in
      started_at := Engine.now e;
      Tcpnet.send c (Bytes.create n));
  Engine.spawn e ~name:"server" (fun () ->
      let c = Tcpnet.accept t1 ~port:80 in
      Tcpnet.recv c (Bytes.create n) ~off:0 ~len:n;
      done_at := Engine.now e);
  Engine.run e;
  let bw =
    Time.rate_mb_s ~bytes_count:n (Time.diff !done_at !started_at)
  in
  in_range ~lo:10.0 ~hi:12.5 "tcp bandwidth" bw

let test_tcp_group_ops () =
  let e, t0, t1 = tcp_world () in
  Tcpnet.listen t1 ~port:80;
  let a = Bytes.create 3 and b = Bytes.create 5 in
  Engine.spawn e ~name:"client" (fun () ->
      let c = Tcpnet.connect t0 ~node_id:1 ~port:80 in
      Tcpnet.send_group c [ Bytes.of_string "xyz"; Bytes.of_string "12345" ]);
  Engine.spawn e ~name:"server" (fun () ->
      let c = Tcpnet.accept t1 ~port:80 in
      Tcpnet.recv_group c [ (a, 0, 3); (b, 0, 5) ]);
  Engine.run e;
  Alcotest.(check string) "a" "xyz" (Bytes.to_string a);
  Alcotest.(check string) "b" "12345" (Bytes.to_string b)

let test_tcp_recv_group_across_sends () =
  (* A gathered receive spanning several sends still reassembles. *)
  let e, t0, t1 = tcp_world () in
  Tcpnet.listen t1 ~port:80;
  let a = Bytes.create 6 and b = Bytes.create 2 in
  Engine.spawn e ~name:"client" (fun () ->
      let c = Tcpnet.connect t0 ~node_id:1 ~port:80 in
      Tcpnet.send c (Bytes.of_string "abc");
      Tcpnet.send c (Bytes.of_string "defgh"));
  Engine.spawn e ~name:"server" (fun () ->
      let c = Tcpnet.accept t1 ~port:80 in
      Tcpnet.recv_group c [ (a, 0, 6); (b, 0, 2) ]);
  Engine.run e;
  Alcotest.(check string) "a" "abcdef" (Bytes.to_string a);
  Alcotest.(check string) "b" "gh" (Bytes.to_string b)

let test_tcp_connect_errors () =
  let e, t0, t1 = tcp_world () in
  ignore t1;
  Engine.spawn e ~name:"client" (fun () ->
      Alcotest.check_raises "not listening"
        (Invalid_argument "Tcpnet.connect: peer not listening") (fun () ->
          ignore (Tcpnet.connect t0 ~node_id:1 ~port:81));
      Alcotest.check_raises "unknown node"
        (Invalid_argument "Tcpnet.connect: unknown node") (fun () ->
          ignore (Tcpnet.connect t0 ~node_id:9 ~port:80)));
  Engine.run e

(* ------------------------------------------------------------------ *)
(* VIA *)

let via_world () =
  let e, fab, n0, n1 = world Netparams.fast_ethernet in
  let net = Via.make_net e fab in
  let v0 = Via.create_vi (Via.attach net n0) in
  let v1 = Via.create_vi (Via.attach net n1) in
  Via.vi_connect v0 v1;
  (e, v0, v1)

let test_via_send_consumes_descriptor () =
  let e, v0, v1 = via_world () in
  let data = payload 1000 5L in
  Engine.spawn e ~name:"receiver" (fun () ->
      Via.post_recv v1 (Bytes.create 2048);
      let buf, len = Via.recv_wait v1 in
      Alcotest.(check int) "len" 1000 len;
      Alcotest.(check bytes) "content" data (Bytes.sub buf 0 1000));
  Engine.spawn e ~name:"sender" (fun () -> Via.send v0 data ~len:1000);
  Engine.run e;
  Alcotest.(check int) "descriptor consumed" 0 (Via.posted_count v1)

let test_via_sender_blocks_without_descriptor () =
  let e, v0, v1 = via_world () in
  let send_done = ref Time.zero in
  Engine.spawn e ~name:"sender" (fun () ->
      Via.send v0 (Bytes.create 100) ~len:100;
      send_done := Engine.now e);
  Engine.spawn e ~name:"receiver" (fun () ->
      Engine.sleep (Time.ms 2.0);
      Via.post_recv v1 (Bytes.create 100);
      ignore (Via.recv_wait v1));
  Engine.run e;
  Alcotest.(check bool)
    "blocked until posted" true
    (Time.compare !send_done (Time.ms 2.0) >= 0)

let test_via_descriptor_limit () =
  let e, v0, v1 = via_world () in
  ignore v1;
  Engine.spawn e ~name:"sender" (fun () ->
      Alcotest.check_raises "limit"
        (Invalid_argument "Via.send: exceeds descriptor max") (fun () ->
          Via.send v0 (Bytes.create (Via.max_transfer + 1))
            ~len:(Via.max_transfer + 1)));
  Engine.run e

let test_via_reposted_descriptor_reused () =
  (* A consumed buffer re-posted by the receiver carries a second
     message, preserving the descriptor window. *)
  let e, v0, v1 = via_world () in
  Engine.spawn e ~name:"receiver" (fun () ->
      Via.post_recv v1 (Bytes.create 64);
      let buf, _ = Via.recv_wait v1 in
      Alcotest.(check char) "first" 'x' (Bytes.get buf 0);
      Via.post_recv v1 buf;
      let buf2, _ = Via.recv_wait v1 in
      Alcotest.(check bool) "same storage reused" true (buf == buf2);
      Alcotest.(check char) "second" 'y' (Bytes.get buf2 0));
  Engine.spawn e ~name:"sender" (fun () ->
      Via.send v0 (Bytes.make 8 'x') ~len:8;
      Via.send v0 (Bytes.make 8 'y') ~len:8);
  Engine.run e

let test_via_fifo_completion_order () =
  let e, v0, v1 = via_world () in
  Engine.spawn e ~name:"receiver" (fun () ->
      Via.post_recv v1 (Bytes.create 64);
      Via.post_recv v1 (Bytes.create 64);
      let _, l1 = Via.recv_wait v1 in
      let _, l2 = Via.recv_wait v1 in
      Alcotest.(check (list int)) "order" [ 10; 20 ] [ l1; l2 ]);
  Engine.spawn e ~name:"sender" (fun () ->
      Via.send v0 (Bytes.create 10) ~len:10;
      Via.send v0 (Bytes.create 20) ~len:20);
  Engine.run e

(* ------------------------------------------------------------------ *)
(* SBP *)

let sbp_world () =
  let e, fab, n0, n1 = world Netparams.fast_ethernet in
  let net = Sbp.make_net e fab in
  (e, Sbp.attach net n0, Sbp.attach net n1)

let test_sbp_roundtrip () =
  let e, s0, s1 = sbp_world () in
  let data = payload 4000 6L in
  Engine.spawn e ~name:"sender" (fun () ->
      let buf = Sbp.obtain_buffer s0 in
      Bytes.blit data 0 buf 0 4000;
      Sbp.send s0 ~dst:1 ~tag:0 buf ~len:4000;
      Sbp.release_buffer s0 buf);
  Engine.spawn e ~name:"receiver" (fun () ->
      let buf, len = Sbp.recv s1 ~src:0 ~tag:0 in
      Alcotest.(check int) "len" 4000 len;
      Alcotest.(check bytes) "content" data (Bytes.sub buf 0 4000);
      Sbp.release_buffer s1 buf);
  Engine.run e

let test_sbp_buffer_pool_bounded () =
  let e, s0, _s1 = sbp_world () in
  let obtained = ref 0 in
  Engine.spawn e ~daemon:true ~name:"hoarder" (fun () ->
      for _ = 1 to 100 do
        ignore (Sbp.obtain_buffer s0);
        incr obtained
      done);
  Engine.run e;
  Alcotest.(check int) "pool exhausted" 32 !obtained

let test_sbp_len_checked () =
  let e, s0, _ = sbp_world () in
  Engine.spawn e ~name:"sender" (fun () ->
      let buf = Sbp.obtain_buffer s0 in
      Alcotest.check_raises "len" (Invalid_argument "Sbp.send: len exceeds buffer size")
        (fun () -> Sbp.send s0 ~dst:1 ~tag:0 buf ~len:(Sbp.buffer_size + 1)));
  Engine.run e

let test_sbp_tags_isolate () =
  let e, s0, s1 = sbp_world () in
  Engine.spawn e ~name:"sender" (fun () ->
      let buf = Sbp.obtain_buffer s0 in
      Bytes.set buf 0 'a';
      Sbp.send s0 ~dst:1 ~tag:1 buf ~len:1;
      Bytes.set buf 0 'b';
      Sbp.send s0 ~dst:1 ~tag:2 buf ~len:1;
      Sbp.release_buffer s0 buf);
  Engine.spawn e ~name:"receiver" (fun () ->
      let buf2, _ = Sbp.recv s1 ~src:0 ~tag:2 in
      Alcotest.(check char) "tag2" 'b' (Bytes.get buf2 0);
      Sbp.release_buffer s1 buf2;
      let buf1, _ = Sbp.recv s1 ~src:0 ~tag:1 in
      Alcotest.(check char) "tag1" 'a' (Bytes.get buf1 0);
      Sbp.release_buffer s1 buf1);
  Engine.run e

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "protocols"
    [
      ( "bip",
        [
          Alcotest.test_case "short roundtrip" `Quick test_bip_short_roundtrip;
          Alcotest.test_case "short latency" `Quick test_bip_short_latency;
          Alcotest.test_case "long delivery" `Quick
            test_bip_long_zero_copy_delivery;
          Alcotest.test_case "long bandwidth" `Quick test_bip_long_bandwidth;
          Alcotest.test_case "long is rendezvous" `Quick
            test_bip_long_is_rendezvous;
          Alcotest.test_case "short is not rendezvous" `Quick
            test_bip_short_is_not_rendezvous;
          Alcotest.test_case "credit exhaustion" `Quick
            test_bip_credit_exhaustion_blocks;
          Alcotest.test_case "fifo order" `Quick test_bip_fifo_order;
          Alcotest.test_case "tags isolate" `Quick test_bip_tags_isolate;
          Alcotest.test_case "probe and hook" `Quick test_bip_probe_and_hook;
          Alcotest.test_case "send to self" `Quick
            test_bip_send_to_self_rejected;
        ] );
      ( "sisci",
        [
          Alcotest.test_case "pio write visible" `Quick
            test_sisci_pio_write_visible;
          Alcotest.test_case "poll wakes on write" `Quick
            test_sisci_poll_wakes_on_write;
          Alcotest.test_case "small write latency" `Quick
            test_sisci_small_write_latency;
          Alcotest.test_case "pio bandwidth" `Quick test_sisci_pio_bandwidth;
          Alcotest.test_case "dma bandwidth poor" `Quick
            test_sisci_dma_bandwidth_is_poor;
          Alcotest.test_case "write order" `Quick
            test_sisci_write_order_preserved;
          Alcotest.test_case "bounds checked" `Quick test_sisci_bounds_checked;
          Alcotest.test_case "connect missing" `Quick test_sisci_connect_missing;
          Alcotest.test_case "wait modes" `Quick test_sisci_wait_modes;
          Alcotest.test_case "pio/dma fifo" `Quick test_sisci_pio_dma_share_fifo;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "roundtrip" `Quick test_tcp_roundtrip;
          Alcotest.test_case "stream reassembly" `Quick
            test_tcp_stream_reassembly;
          Alcotest.test_case "bandwidth" `Quick test_tcp_bandwidth;
          Alcotest.test_case "group ops" `Quick test_tcp_group_ops;
          Alcotest.test_case "recv_group spans sends" `Quick
            test_tcp_recv_group_across_sends;
          Alcotest.test_case "connect errors" `Quick test_tcp_connect_errors;
        ] );
      ( "via",
        [
          Alcotest.test_case "send consumes descriptor" `Quick
            test_via_send_consumes_descriptor;
          Alcotest.test_case "sender blocks without descriptor" `Quick
            test_via_sender_blocks_without_descriptor;
          Alcotest.test_case "descriptor limit" `Quick test_via_descriptor_limit;
          Alcotest.test_case "fifo completion order" `Quick
            test_via_fifo_completion_order;
          Alcotest.test_case "descriptor reuse" `Quick
            test_via_reposted_descriptor_reused;
        ] );
      ( "sbp",
        [
          Alcotest.test_case "roundtrip" `Quick test_sbp_roundtrip;
          Alcotest.test_case "pool bounded" `Quick test_sbp_buffer_pool_bounded;
          Alcotest.test_case "len checked" `Quick test_sbp_len_checked;
          Alcotest.test_case "tags isolate" `Quick test_sbp_tags_isolate;
        ] );
    ]
