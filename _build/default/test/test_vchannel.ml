(* Tests for virtual channels: Generic TM framing, routing, and the
   gateway dual-buffer forwarding pipeline (paper §6). *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Channel = Madeleine.Channel
module Config = Madeleine.Config
module Iface = Madeleine.Iface
module Vc = Madeleine.Vchannel

let payload n seed = Simnet.Rng.bytes (Simnet.Rng.create ~seed) n

let in_range ?(lo = 0.0) ~hi what v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" what v lo hi)
    true
    (v >= lo && v <= hi)

(* The paper's two-cluster testbed: node 0 on SCI, node 2 on Myrinet,
   node 1 the gateway carrying both NICs. *)
type world = {
  engine : Engine.t;
  session : Madeleine.Session.t;
  ch_sci : Channel.t;
  ch_myri : Channel.t;
}

let two_cluster_world () =
  let engine = Engine.create () in
  let sci_fab = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
  let myri_fab = Fabric.create engine ~name:"myri" ~link:Netparams.myrinet in
  let n0 = Node.create engine ~name:"a" ~id:0 in
  let gw = Node.create engine ~name:"gw" ~id:1 in
  let n2 = Node.create engine ~name:"b" ~id:2 in
  Fabric.attach sci_fab n0;
  Fabric.attach sci_fab gw;
  Fabric.attach myri_fab gw;
  Fabric.attach myri_fab n2;
  let sci_net = Sisci.make_net engine sci_fab in
  let s0 = Sisci.attach sci_net n0 and s1 = Sisci.attach sci_net gw in
  let bip_net = Bip.make_net engine myri_fab in
  let b1 = Bip.attach bip_net gw and b2 = Bip.attach bip_net n2 in
  let sisci_driver =
    Madeleine.Pmm_sisci.driver (function
      | 0 -> s0
      | 1 -> s1
      | r -> invalid_arg (string_of_int r))
  in
  let bip_driver =
    Madeleine.Pmm_bip.driver (function
      | 1 -> b1
      | 2 -> b2
      | r -> invalid_arg (string_of_int r))
  in
  let session = Madeleine.Session.create engine in
  let ch_sci = Channel.create session sisci_driver ~ranks:[ 0; 1 ] () in
  let ch_myri = Channel.create session bip_driver ~ranks:[ 1; 2 ] () in
  { engine; session; ch_sci; ch_myri }

let make_vc ?mtu ?gateway_overhead ?extra_gateway_copy w =
  Vc.create w.session ?mtu ?gateway_overhead ?extra_gateway_copy
    [ w.ch_sci; w.ch_myri ]

let test_routes () =
  let w = two_cluster_world () in
  let vc = make_vc w in
  Alcotest.(check (list int)) "ranks" [ 0; 1; 2 ] (Vc.ranks vc);
  Alcotest.(check int) "0->1 direct" 1 (Vc.route_length vc ~src:0 ~dst:1);
  Alcotest.(check int) "0->2 via gw" 2 (Vc.route_length vc ~src:0 ~dst:2);
  Alcotest.(check int) "2->0 via gw" 2 (Vc.route_length vc ~src:2 ~dst:0)

let send_fields vc ~me ~remote fields modes =
  let oc = Vc.begin_packing vc ~me ~remote in
  List.iter2
    (fun data (s_mode, r_mode) -> Vc.pack oc ~s_mode ~r_mode data)
    fields modes;
  Vc.end_packing oc

let recv_fields vc ~me ~remote sinks modes =
  let ic = Vc.begin_unpacking_from vc ~me ~remote in
  List.iter2
    (fun buf (s_mode, r_mode) -> Vc.unpack ic ~s_mode ~r_mode buf)
    sinks modes;
  Vc.end_unpacking ic

let cheaper = (Iface.Send_cheaper, Iface.Receive_cheaper)
let express = (Iface.Send_cheaper, Iface.Receive_express)

let forward_roundtrip ?mtu ~src ~dst fields modes =
  let w = two_cluster_world () in
  let vc = make_vc ?mtu w in
  let sinks = List.map (fun f -> Bytes.create (Bytes.length f)) fields in
  let finished = ref Time.zero in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      send_fields vc ~me:src ~remote:dst fields modes);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      recv_fields vc ~me:dst ~remote:src sinks modes;
      finished := Engine.now w.engine);
  Engine.run w.engine;
  List.iter2
    (fun expect got -> Alcotest.(check bytes) "content" expect got)
    fields sinks;
  !finished

let test_forward_small () =
  ignore (forward_roundtrip ~src:0 ~dst:2 [ payload 100 1L ] [ cheaper ])

let test_forward_counters () =
  let w = two_cluster_world () in
  let vc = make_vc ~mtu:8192 w in
  Engine.spawn w.engine ~name:"s" (fun () ->
      send_fields vc ~me:0 ~remote:2 [ payload 20_000 19L ] [ cheaper ]);
  Engine.spawn w.engine ~name:"r" (fun () ->
      recv_fields vc ~me:2 ~remote:0 [ Bytes.create 20_000 ] [ cheaper ]);
  Engine.run w.engine;
  match Madeleine.Vchannel.forwarded vc with
  | [ (1, packets, bytes) ] ->
      (* 20008 stream bytes in 8 kB packets = 3 packets. *)
      Alcotest.(check int) "packets" 3 packets;
      Alcotest.(check int) "bytes" 20_008 bytes
  | other ->
      Alcotest.failf "unexpected counters (%d entries)" (List.length other)

let test_forward_multi_packet () =
  (* Much larger than one MTU: exercises fragmentation + pipeline. *)
  ignore
    (forward_roundtrip ~mtu:8192 ~src:0 ~dst:2 [ payload 200_000 2L ]
       [ cheaper ])

let test_forward_reverse_direction () =
  ignore
    (forward_roundtrip ~mtu:8192 ~src:2 ~dst:0 [ payload 100_000 3L ]
       [ cheaper ])

let test_forward_multi_field () =
  ignore
    (forward_roundtrip ~mtu:4096 ~src:0 ~dst:2
       [ payload 4 4L; payload 50_000 5L; payload 17 6L ]
       [ express; cheaper; cheaper ])

let test_single_hop_vchannel () =
  (* A virtual channel degenerates gracefully to one real channel. *)
  ignore (forward_roundtrip ~src:0 ~dst:1 [ payload 30_000 7L ] [ cheaper ])

let test_message_sequence_through_gateway () =
  let w = two_cluster_world () in
  let vc = make_vc ~mtu:4096 w in
  let got = ref [] in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      for i = 1 to 5 do
        let b = Bytes.create 2000 in
        Bytes.set_int64_le b 0 (Int64.of_int i);
        send_fields vc ~me:0 ~remote:2 [ b ] [ cheaper ]
      done);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      for _ = 1 to 5 do
        let b = Bytes.create 2000 in
        recv_fields vc ~me:2 ~remote:0 [ b ] [ cheaper ];
        got := Int64.to_int (Bytes.get_int64_le b 0) :: !got
      done);
  Engine.run w.engine;
  Alcotest.(check (list int)) "order" [ 1; 2; 3; 4; 5 ] (List.rev !got)

let test_any_source_through_gateway () =
  let w = two_cluster_world () in
  let vc = make_vc w in
  let seen = ref [] in
  Engine.spawn w.engine ~name:"sender0" (fun () ->
      Engine.sleep (Time.us 300.0);
      send_fields vc ~me:0 ~remote:2 [ Bytes.make 8 'a' ] [ cheaper ]);
  Engine.spawn w.engine ~name:"sender1" (fun () ->
      send_fields vc ~me:1 ~remote:2 [ Bytes.make 8 'g' ] [ cheaper ]);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      for _ = 1 to 2 do
        let ic = Vc.begin_unpacking vc ~me:2 in
        let b = Bytes.create 8 in
        Vc.unpack ic b;
        Vc.end_unpacking ic;
        seen := (Vc.remote_rank ic, Bytes.get b 0) :: !seen
      done);
  Engine.run w.engine;
  Alcotest.(check (list (pair int char)))
    "arrival order" [ (1, 'g'); (0, 'a') ] (List.rev !seen)

let test_self_description_catches_asymmetry () =
  let w = two_cluster_world () in
  let vc = make_vc w in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      send_fields vc ~me:0 ~remote:2 [ Bytes.create 64 ] [ cheaper ]);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:0 in
      match Vc.unpack ic (Bytes.create 32) with
      | () -> Alcotest.fail "expected Symmetry_violation"
      | exception Config.Symmetry_violation _ -> ());
  Engine.run w.engine

let test_unconsumed_data_detected () =
  let w = two_cluster_world () in
  let vc = make_vc w in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      send_fields vc ~me:0 ~remote:2
        [ Bytes.create 64; Bytes.create 64 ]
        [ cheaper; cheaper ]);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:0 in
      Vc.unpack ic (Bytes.create 64);
      match Vc.end_unpacking ic with
      | () -> Alcotest.fail "expected Symmetry_violation"
      | exception Config.Symmetry_violation _ -> ());
  Engine.run w.engine

(* ------------------------------------------------------------------ *)
(* Longer chains and other network mixes *)

(* Three clusters in a chain: SCI {0,1}, Myrinet {1,2}, TCP {2,3} —
   two gateways, three different interfaces. *)
let three_cluster_world () =
  let engine = Engine.create () in
  let sci_fab = Fabric.create engine ~name:"sci" ~link:Netparams.sci in
  let myri_fab = Fabric.create engine ~name:"myri" ~link:Netparams.myrinet in
  let eth_fab =
    Fabric.create engine ~name:"eth" ~link:Netparams.fast_ethernet
  in
  let node i = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
  let n0 = node 0 and n1 = node 1 and n2 = node 2 and n3 = node 3 in
  Fabric.attach sci_fab n0;
  Fabric.attach sci_fab n1;
  Fabric.attach myri_fab n1;
  Fabric.attach myri_fab n2;
  Fabric.attach eth_fab n2;
  Fabric.attach eth_fab n3;
  let sci_net = Sisci.make_net engine sci_fab in
  let s0 = Sisci.attach sci_net n0 and s1 = Sisci.attach sci_net n1 in
  let bip_net = Bip.make_net engine myri_fab in
  let b1 = Bip.attach bip_net n1 and b2 = Bip.attach bip_net n2 in
  let tcp_net = Tcpnet.make_net engine eth_fab in
  let t2 = Tcpnet.attach tcp_net n2 and t3 = Tcpnet.attach tcp_net n3 in
  let session = Madeleine.Session.create engine in
  let pick table r = List.assoc r table in
  let ch_sci =
    Channel.create session
      (Madeleine.Pmm_sisci.driver (pick [ (0, s0); (1, s1) ]))
      ~ranks:[ 0; 1 ] ()
  in
  let ch_myri =
    Channel.create session
      (Madeleine.Pmm_bip.driver (pick [ (1, b1); (2, b2) ]))
      ~ranks:[ 1; 2 ] ()
  in
  let ch_eth =
    Channel.create session
      (Madeleine.Pmm_tcp.driver (pick [ (2, t2); (3, t3) ]))
      ~ranks:[ 2; 3 ] ()
  in
  (engine, session, [ ch_sci; ch_myri; ch_eth ])

let test_two_gateway_chain () =
  let engine, session, channels = three_cluster_world () in
  let vc = Vc.create session ~mtu:8192 channels in
  Alcotest.(check int) "0->3 is three hops" 3 (Vc.route_length vc ~src:0 ~dst:3);
  let data = payload 50_000 21L in
  let sink = Bytes.create 50_000 in
  Engine.spawn engine ~name:"sender" (fun () ->
      let oc = Vc.begin_packing vc ~me:0 ~remote:3 in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn engine ~name:"receiver" (fun () ->
      let ic = Vc.begin_unpacking_from vc ~me:3 ~remote:0 in
      Vc.unpack ic sink;
      Vc.end_unpacking ic);
  Engine.run engine;
  Alcotest.(check bytes) "content across two gateways" data sink

let test_two_gateway_chain_reverse_and_middle () =
  let engine, session, channels = three_cluster_world () in
  let vc = Vc.create session ~mtu:4096 channels in
  let d30 = payload 9_000 22L and d12 = payload 3_000 23L in
  let s30 = Bytes.create 9_000 and s12 = Bytes.create 3_000 in
  Engine.spawn engine ~name:"s3" (fun () ->
      let oc = Vc.begin_packing vc ~me:3 ~remote:0 in
      Vc.pack oc d30;
      Vc.end_packing oc);
  Engine.spawn engine ~name:"s1" (fun () ->
      let oc = Vc.begin_packing vc ~me:1 ~remote:2 in
      Vc.pack oc d12;
      Vc.end_packing oc);
  Engine.spawn engine ~name:"r0" (fun () ->
      let ic = Vc.begin_unpacking_from vc ~me:0 ~remote:3 in
      Vc.unpack ic s30;
      Vc.end_unpacking ic);
  Engine.spawn engine ~name:"r2" (fun () ->
      let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:1 in
      Vc.unpack ic s12;
      Vc.end_unpacking ic);
  Engine.run engine;
  Alcotest.(check bytes) "3->0" d30 s30;
  Alcotest.(check bytes) "1->2 single hop" d12 s12

(* Both networks static-buffered (SBP and VIA): the §6.1 worst case. *)
let test_static_static_gateway () =
  let engine = Engine.create () in
  let eth_a = Fabric.create engine ~name:"eth-a" ~link:Netparams.fast_ethernet in
  let eth_b = Fabric.create engine ~name:"eth-b" ~link:Netparams.fast_ethernet in
  let node i = Node.create engine ~name:(Printf.sprintf "n%d" i) ~id:i in
  let n0 = node 0 and n1 = node 1 and n2 = node 2 in
  Fabric.attach eth_a n0;
  Fabric.attach eth_a n1;
  Fabric.attach eth_b n1;
  Fabric.attach eth_b n2;
  let sbp_net = Sbp.make_net engine eth_a in
  let p0 = Sbp.attach sbp_net n0 and p1 = Sbp.attach sbp_net n1 in
  let via_net = Via.make_net engine eth_b in
  let v1 = Via.attach via_net n1 and v2 = Via.attach via_net n2 in
  let session = Madeleine.Session.create engine in
  let pick table r = List.assoc r table in
  let ch_sbp =
    Channel.create session
      (Madeleine.Pmm_sbp.driver (pick [ (0, p0); (1, p1) ]))
      ~ranks:[ 0; 1 ] ()
  in
  let ch_via =
    Channel.create session
      (Madeleine.Pmm_via.driver (pick [ (1, v1); (2, v2) ]))
      ~ranks:[ 1; 2 ] ()
  in
  let vc = Vc.create session ~mtu:4096 [ ch_sbp; ch_via ] in
  let data = payload 20_000 24L in
  let sink = Bytes.create 20_000 in
  Engine.spawn engine ~name:"sender" (fun () ->
      let oc = Vc.begin_packing vc ~me:0 ~remote:2 in
      Vc.pack oc data;
      Vc.end_packing oc);
  Engine.spawn engine ~name:"receiver" (fun () ->
      let ic = Vc.begin_unpacking_from vc ~me:2 ~remote:0 in
      Vc.unpack ic sink;
      Vc.end_unpacking ic);
  Engine.run engine;
  Alcotest.(check bytes) "content through static-static gateway" data sink

(* ------------------------------------------------------------------ *)
(* Forwarding bandwidth (Figs. 10 and 11) *)

let forwarding_bandwidth ?gateway_overhead ?extra_gateway_copy ~mtu ~src ~dst
    ~bytes_count () =
  let w = two_cluster_world () in
  let vc = make_vc ~mtu ?gateway_overhead ?extra_gateway_copy w in
  let data = payload bytes_count 8L in
  let t0 = ref Time.zero and t1 = ref Time.zero in
  Engine.spawn w.engine ~name:"sender" (fun () ->
      t0 := Engine.now w.engine;
      send_fields vc ~me:src ~remote:dst [ data ] [ cheaper ]);
  Engine.spawn w.engine ~name:"receiver" (fun () ->
      let sink = Bytes.create bytes_count in
      recv_fields vc ~me:dst ~remote:src [ sink ] [ cheaper ];
      t1 := Engine.now w.engine);
  Engine.run w.engine;
  Time.rate_mb_s ~bytes_count (Time.diff !t1 !t0)

let test_fig10_sci_to_myrinet_shape () =
  (* Fig. 10: 36.5 MB/s at 8 kB packets, rising toward ~49.5 at 128 kB. *)
  let bw8 = forwarding_bandwidth ~mtu:8192 ~src:0 ~dst:2 ~bytes_count:(1 lsl 20) () in
  let bw128 =
    forwarding_bandwidth ~mtu:(128 * 1024) ~src:0 ~dst:2
      ~bytes_count:(1 lsl 20) ()
  in
  in_range ~lo:32.0 ~hi:41.0 "sci->myri at 8kB" bw8;
  in_range ~lo:44.0 ~hi:53.0 "sci->myri at 128kB" bw128;
  Alcotest.(check bool) "monotone" true (bw128 > bw8)

let test_fig11_myrinet_to_sci_shape () =
  (* Fig. 11: 29 MB/s at 8 kB, under 36.5 asymptotically — the Myrinet
     DMA's PCI priority starves the gateway's SCI PIO sends. *)
  let bw8 = forwarding_bandwidth ~mtu:8192 ~src:2 ~dst:0 ~bytes_count:(1 lsl 20) () in
  let bw128 =
    forwarding_bandwidth ~mtu:(128 * 1024) ~src:2 ~dst:0
      ~bytes_count:(1 lsl 20) ()
  in
  in_range ~lo:25.0 ~hi:33.0 "myri->sci at 8kB" bw8;
  in_range ~lo:32.0 ~hi:40.0 "myri->sci at 128kB" bw128

let test_direction_asymmetry () =
  (* The PCI arbitration asymmetry: SCI->Myrinet beats Myrinet->SCI. *)
  let fwd = forwarding_bandwidth ~mtu:(64 * 1024) ~src:0 ~dst:2 ~bytes_count:(1 lsl 20) () in
  let rev = forwarding_bandwidth ~mtu:(64 * 1024) ~src:2 ~dst:0 ~bytes_count:(1 lsl 20) () in
  Alcotest.(check bool)
    (Printf.sprintf "fwd %.1f > rev %.1f" fwd rev)
    true (fwd > rev *. 1.1)

let test_gateway_overhead_hurts () =
  (* Moderate overhead changes are partially absorbed by reduced PCI
     contention (an idler gateway forwards each packet faster), so the
     contrast only becomes decisive for large overheads. *)
  let fast =
    forwarding_bandwidth ~gateway_overhead:(Time.us 10.0) ~mtu:8192 ~src:0
      ~dst:2 ~bytes_count:(1 lsl 19) ()
  in
  let slow =
    forwarding_bandwidth ~gateway_overhead:(Time.us 400.0) ~mtu:8192 ~src:0
      ~dst:2 ~bytes_count:(1 lsl 19) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "overhead hurts: %.1f > %.1f" fast slow)
    true (fast > slow *. 1.5)

let test_bidirectional_forwarding () =
  (* Both directions stream 512 kB through the same gateway at once: the
     pump's shared buffers must not deadlock, and both payloads arrive
     intact. *)
  let w = two_cluster_world () in
  let vc = make_vc ~mtu:16384 w in
  let n = 1 lsl 19 in
  let d02 = payload n 61L and d20 = payload n 62L in
  let s02 = Bytes.create n and s20 = Bytes.create n in
  Engine.spawn w.engine ~name:"s0" (fun () ->
      send_fields vc ~me:0 ~remote:2 [ d02 ] [ cheaper ]);
  Engine.spawn w.engine ~name:"s2" (fun () ->
      send_fields vc ~me:2 ~remote:0 [ d20 ] [ cheaper ]);
  Engine.spawn w.engine ~name:"r2" (fun () ->
      recv_fields vc ~me:2 ~remote:0 [ s02 ] [ cheaper ]);
  Engine.spawn w.engine ~name:"r0" (fun () ->
      recv_fields vc ~me:0 ~remote:2 [ s20 ] [ cheaper ]);
  Engine.run w.engine;
  Alcotest.(check bytes) "0->2 intact" d02 s02;
  Alcotest.(check bytes) "2->0 intact" d20 s20;
  (* Aggregate must stay under the gateway bus's contended capacity. *)
  let agg = Time.rate_mb_s ~bytes_count:(2 * n) (Engine.now w.engine) in
  Alcotest.(check bool)
    (Printf.sprintf "aggregate %.1f MB/s under bus capacity" agg)
    true (agg < 101.0)

let test_ingress_regulation_helps_reverse_direction () =
  (* The paper's future-work bandwidth control, validated: pacing the
     Myrinet ingress on the gateway stops its DMA from starving the
     outgoing SCI PIO, and net throughput goes UP. *)
  let unregulated =
    forwarding_bandwidth ~mtu:32768 ~src:2 ~dst:0 ~bytes_count:(1 lsl 20) ()
  in
  let regulated =
    let w = two_cluster_world () in
    let vc =
      Vc.create w.session ~mtu:32768 ~ingress_cap_mb_s:45.0
        [ w.ch_sci; w.ch_myri ]
    in
    let data = payload (1 lsl 20) 8L in
    let t0 = ref Time.zero and t1 = ref Time.zero in
    Engine.spawn w.engine ~name:"sender" (fun () ->
        t0 := Engine.now w.engine;
        send_fields vc ~me:2 ~remote:0 [ data ] [ cheaper ]);
    Engine.spawn w.engine ~name:"receiver" (fun () ->
        let sink = Bytes.create (1 lsl 20) in
        recv_fields vc ~me:0 ~remote:2 [ sink ] [ cheaper ];
        t1 := Engine.now w.engine);
    Engine.run w.engine;
    Time.rate_mb_s ~bytes_count:(1 lsl 20) (Time.diff !t1 !t0)
  in
  Alcotest.(check bool)
    (Printf.sprintf "regulated %.1f > unregulated %.1f MB/s" regulated
       unregulated)
    true
    (regulated > unregulated *. 1.1)

let test_extra_copy_hurts () =
  let zero_copy =
    forwarding_bandwidth ~mtu:(32 * 1024) ~src:0 ~dst:2
      ~bytes_count:(1 lsl 19) ()
  in
  let one_copy =
    forwarding_bandwidth ~extra_gateway_copy:true ~mtu:(32 * 1024) ~src:0
      ~dst:2 ~bytes_count:(1 lsl 19) ()
  in
  Alcotest.(check bool)
    (Printf.sprintf "copy hurts: %.1f > %.1f" zero_copy one_copy)
    true (zero_copy > one_copy)

let () =
  Alcotest.run "vchannel"
    [
      ("routing", [ Alcotest.test_case "routes" `Quick test_routes ]);
      ( "forwarding",
        [
          Alcotest.test_case "small" `Quick test_forward_small;
          Alcotest.test_case "forward counters" `Quick test_forward_counters;
          Alcotest.test_case "multi packet" `Quick test_forward_multi_packet;
          Alcotest.test_case "reverse" `Quick test_forward_reverse_direction;
          Alcotest.test_case "multi field" `Quick test_forward_multi_field;
          Alcotest.test_case "single hop" `Quick test_single_hop_vchannel;
          Alcotest.test_case "message sequence" `Quick
            test_message_sequence_through_gateway;
          Alcotest.test_case "any source" `Quick
            test_any_source_through_gateway;
        ] );
      ( "chains",
        [
          Alcotest.test_case "two gateways" `Quick test_two_gateway_chain;
          Alcotest.test_case "reverse and middle" `Quick
            test_two_gateway_chain_reverse_and_middle;
          Alcotest.test_case "static-static gateway" `Quick
            test_static_static_gateway;
        ] );
      ( "self description",
        [
          Alcotest.test_case "asymmetry" `Quick
            test_self_description_catches_asymmetry;
          Alcotest.test_case "unconsumed" `Quick test_unconsumed_data_detected;
        ] );
      ( "bandwidth",
        [
          Alcotest.test_case "fig10 shape" `Quick test_fig10_sci_to_myrinet_shape;
          Alcotest.test_case "fig11 shape" `Quick test_fig11_myrinet_to_sci_shape;
          Alcotest.test_case "direction asymmetry" `Quick
            test_direction_asymmetry;
          Alcotest.test_case "gateway overhead" `Quick
            test_gateway_overhead_hurts;
          Alcotest.test_case "extra copy" `Quick test_extra_copy_hurts;
          Alcotest.test_case "ingress regulation" `Quick
            test_ingress_regulation_helps_reverse_direction;
          Alcotest.test_case "bidirectional forwarding" `Quick
            test_bidirectional_forwarding;
        ] );
    ]
