(* Tests for the mini-PM2 RPC layer: the paper's motivating runtime. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Mad = Madeleine.Api
module Iface = Madeleine.Iface
module H = Harness

let payload = H.payload

let make_pm2 ?(n = 2) ?(net = `Sisci) () =
  let w =
    match net with
    | `Sisci -> H.make_world ~n H.sisci_driver Simnet.Netparams.sci
    | `Bip -> H.make_world ~n H.bip_driver Simnet.Netparams.myrinet
  in
  (w, Pm2.create_world w.H.engine w.H.channel)

let test_rpc_unpacks_in_place () =
  (* The Fig. 1 scenario as a PM2 service: EXPRESS size header read
     first, then the dynamically-sized array extracted CHEAPER — by the
     service itself, straight from the connection. *)
  let w, pm = make_pm2 () in
  let got = ref Bytes.empty in
  let done_ = Marcel.Ivar.create () in
  let store =
    Pm2.register pm ~name:"store" (fun _t ic ->
        let hdr = Bytes.create 4 in
        Mad.unpack ic ~r_mode:Iface.Receive_express hdr;
        let len = Int32.to_int (Bytes.get_int32_le hdr 0) in
        let data = Bytes.create len in
        Mad.unpack ic ~r_mode:Iface.Receive_cheaper data;
        Mad.end_unpacking ic;
        got := data;
        Marcel.Ivar.fill done_ ())
  in
  let data = payload 30_000 31L in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      Pm2.rpc pm.(0) ~dst:1 store ~pack:(fun oc ->
          let hdr = Bytes.create 4 in
          Bytes.set_int32_le hdr 0 (Int32.of_int (Bytes.length data));
          Mad.pack oc ~r_mode:Iface.Receive_express hdr;
          Mad.pack oc ~r_mode:Iface.Receive_cheaper data);
      Marcel.Ivar.read done_);
  Engine.run w.H.engine;
  Alcotest.(check bytes) "service saw the array" data !got

let test_completion_synchronizes () =
  let w, pm = make_pm2 () in
  let service_ran_at = ref Time.zero in
  let work =
    Pm2.register pm ~name:"work" (fun t ic ->
        let c = Pm2.Completion.unpack ic in
        Mad.end_unpacking ic;
        Engine.sleep (Time.us 200.0);
        service_ran_at := Engine.now w.H.engine;
        Pm2.Completion.signal t c)
  in
  let waited_until = ref Time.zero in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      let c = Pm2.Completion.create pm.(0) in
      Pm2.rpc pm.(0) ~dst:1 work ~pack:(fun oc -> Pm2.Completion.pack c oc);
      Pm2.Completion.wait c;
      waited_until := Engine.now w.H.engine);
  Engine.run w.H.engine;
  Alcotest.(check bool)
    "caller waited past the service body" true
    (Time.compare !waited_until !service_ran_at > 0)

let test_threaded_service_does_not_stall_dispatcher () =
  (* A slow threaded service on node 1 must not block delivery of the
     next RPC to a different service there. *)
  let w, pm = make_pm2 () in
  let slow_done = ref Time.zero and fast_done = ref Time.zero in
  let slow =
    Pm2.register pm ~name:"slow" (fun _ ic ->
        Mad.end_unpacking ic;
        Engine.sleep (Time.ms 5.0);
        slow_done := Engine.now w.H.engine)
  in
  let fast =
    Pm2.register pm ~name:"fast" (fun _ ic ->
        Mad.end_unpacking ic;
        fast_done := Engine.now w.H.engine)
  in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      Pm2.rpc pm.(0) ~dst:1 slow ~pack:(fun _ -> ());
      Pm2.rpc pm.(0) ~dst:1 fast ~pack:(fun _ -> ()));
  Engine.run w.H.engine;
  Alcotest.(check bool)
    (Printf.sprintf "fast (%.1fus) finished before slow (%.1fus)"
       (Time.to_us !fast_done) (Time.to_us !slow_done))
    true
    (Time.compare !fast_done !slow_done < 0)

let test_nested_rpc_from_service () =
  (* A service on node 1 calls a service on node 2 before replying:
     three-party chains must not deadlock. *)
  let w, pm = make_pm2 ~n:3 () in
  let log = ref [] in
  let leaf =
    Pm2.register pm ~name:"leaf" (fun t ic ->
        let c = Pm2.Completion.unpack ic in
        Mad.end_unpacking ic;
        log := "leaf" :: !log;
        Pm2.Completion.signal t c)
  in
  let middle =
    Pm2.register pm ~name:"middle" (fun t ic ->
        let c = Pm2.Completion.unpack ic in
        Mad.end_unpacking ic;
        let c2 = Pm2.Completion.create t in
        Pm2.rpc t ~dst:2 leaf ~pack:(fun oc -> Pm2.Completion.pack c2 oc);
        Pm2.Completion.wait c2;
        log := "middle" :: !log;
        Pm2.Completion.signal t c)
  in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      let c = Pm2.Completion.create pm.(0) in
      Pm2.rpc pm.(0) ~dst:1 middle ~pack:(fun oc -> Pm2.Completion.pack c oc);
      Pm2.Completion.wait c;
      log := "caller" :: !log);
  Engine.run w.H.engine;
  Alcotest.(check (list string)) "chain order" [ "leaf"; "middle"; "caller" ]
    (List.rev !log)

let test_rpc_roundtrip_latency () =
  (* PM2 LRPC round trip over Madeleine/SCI: two messages plus thread
     dispatch — tens of microseconds, far under Nexus's RSR cost. *)
  let w, pm = make_pm2 () in
  let echo =
    Pm2.register pm ~name:"echo" (fun t ic ->
        let c = Pm2.Completion.unpack ic in
        Mad.end_unpacking ic;
        Pm2.Completion.signal t c)
  in
  let iters = 20 in
  let elapsed = ref 0 in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      let t0 = Engine.now w.H.engine in
      for _ = 1 to iters do
        let c = Pm2.Completion.create pm.(0) in
        Pm2.rpc pm.(0) ~dst:1 echo ~pack:(fun oc -> Pm2.Completion.pack c oc);
        Pm2.Completion.wait c
      done;
      elapsed := Time.diff (Engine.now w.H.engine) t0);
  Engine.run w.H.engine;
  let per_rt = float_of_int !elapsed /. 1e3 /. float_of_int iters in
  Alcotest.(check bool)
    (Printf.sprintf "round trip %.2fus in [8, 20]" per_rt)
    true
    (per_rt >= 8.0 && per_rt <= 20.0)

let test_rpc_over_bip () =
  (* The same RPC machinery on the other interface. *)
  let w, pm = make_pm2 ~net:`Bip () in
  let got = ref 0 in
  let double =
    Pm2.register pm ~name:"double" (fun t ic ->
        let c = Pm2.Completion.unpack ic in
        let b = Bytes.create 8 in
        Mad.unpack ic ~r_mode:Iface.Receive_express b;
        Mad.end_unpacking ic;
        got := 2 * Int64.to_int (Bytes.get_int64_le b 0);
        Pm2.Completion.signal t c)
  in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      let c = Pm2.Completion.create pm.(0) in
      Pm2.rpc pm.(0) ~dst:1 double ~pack:(fun oc ->
          Pm2.Completion.pack c oc;
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 33L;
          Mad.pack oc ~r_mode:Iface.Receive_express b);
      Pm2.Completion.wait c);
  Engine.run w.H.engine;
  Alcotest.(check int) "doubled over bip" 66 !got

let test_local_rpc_rejected () =
  let w, pm = make_pm2 () in
  let nop = Pm2.register pm ~name:"nop" (fun _ ic -> Mad.end_unpacking ic) in
  Engine.spawn w.H.engine ~name:"caller" (fun () ->
      Alcotest.check_raises "self rpc"
        (Invalid_argument "Pm2.rpc: PM2 local service invocation is a plain call")
        (fun () -> Pm2.rpc pm.(0) ~dst:0 nop ~pack:(fun _ -> ())));
  Engine.run w.H.engine

let () =
  Alcotest.run "pm2"
    [
      ( "rpc",
        [
          Alcotest.test_case "unpack in place" `Quick test_rpc_unpacks_in_place;
          Alcotest.test_case "completion" `Quick test_completion_synchronizes;
          Alcotest.test_case "threaded service" `Quick
            test_threaded_service_does_not_stall_dispatcher;
          Alcotest.test_case "nested rpc" `Quick test_nested_rpc_from_service;
          Alcotest.test_case "roundtrip latency" `Quick
            test_rpc_roundtrip_latency;
          Alcotest.test_case "rpc over bip" `Quick test_rpc_over_bip;
          Alcotest.test_case "local rpc rejected" `Quick test_local_rpc_rejected;
        ] );
    ]
