(* The benchmark harness: regenerates every figure and table of the
   paper's evaluation (§5 and §6) from the simulated testbed, plus the
   ablation studies called out in DESIGN.md.

   Usage:  dune exec bench/main.exe [-- SECTION...]
   where SECTION is any of: fig4 fig5 fig6 fig7 eq16k fig10 fig11
   ablations bechamel. With no argument everything runs. Numbers are
   deterministic: two runs print identical series. *)

module Time = Marcel.Time
module H = Harness

let sizes_small =
  [ 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576 ]

let iters n = if n <= 1024 then 20 else if n <= 65536 then 8 else 3

let line = String.make 72 '-'

let header text =
  Printf.printf "\n%s\n%s\n%s\n" line text line

let lat_us span = Time.to_us span
let bw n span = Time.rate_mb_s ~bytes_count:n span

(* ------------------------------------------------------------------ *)

let fig4 () =
  header
    "Fig. 4 -- Madeleine II over SISCI/SCI (paper: 3.9 us min latency,\n\
     82 MB/s peak, dual-buffering kink above 8 kB)";
  Printf.printf "%-10s %12s %12s\n" "size(B)" "latency(us)" "bw(MB/s)";
  List.iter
    (fun n ->
      let t = H.mad_pingpong (H.sisci_world ()) ~bytes_count:n ~iters:(iters n) in
      Printf.printf "%-10d %12.2f %12.2f\n%!" n (lat_us t) (bw n t))
    sizes_small

let fig5 () =
  header
    "Fig. 5 -- Madeleine II over BIP/Myrinet vs raw BIP (paper: 7 vs 5 us,\n\
     122 vs 126 MB/s)";
  Printf.printf "%-10s %12s %12s %12s %12s\n" "size(B)" "mad lat(us)"
    "mad bw" "raw lat(us)" "raw bw";
  List.iter
    (fun n ->
      let m = H.mad_pingpong (H.bip_world ()) ~bytes_count:n ~iters:(iters n) in
      let r = H.raw_bip_pingpong ~bytes_count:n ~iters:(iters n) in
      Printf.printf "%-10d %12.2f %12.2f %12.2f %12.2f\n%!" n (lat_us m)
        (bw n m) (lat_us r) (bw n r))
    sizes_small

let fig6 () =
  header
    "Fig. 6 -- MPI implementations over SCI (paper: MPICH/Mad-II has the\n\
     worst latency but the best bandwidth from 32 kB up)";
  Printf.printf "%-10s | %10s %10s %10s %10s  (latency us)\n" "size(B)"
    "mad-raw" "chmad" "sci-mpich" "scampi";
  let series n =
    let raw = H.mad_pingpong (H.sisci_world ()) ~bytes_count:n ~iters:(iters n) in
    let chmad = H.mpi_pingpong H.Chmad ~bytes_count:n ~iters:(iters n) in
    let scim =
      H.mpi_pingpong (H.Scidirect Mpilite.Dev_scidirect.sci_mpich) ~bytes_count:n
        ~iters:(iters n)
    in
    let scam =
      H.mpi_pingpong (H.Scidirect Mpilite.Dev_scidirect.scampi) ~bytes_count:n
        ~iters:(iters n)
    in
    (raw, chmad, scim, scam)
  in
  let rows = List.map (fun n -> (n, series n)) sizes_small in
  List.iter
    (fun (n, (raw, chmad, scim, scam)) ->
      Printf.printf "%-10d | %10.2f %10.2f %10.2f %10.2f\n%!" n (lat_us raw)
        (lat_us chmad) (lat_us scim) (lat_us scam))
    rows;
  Printf.printf "\n%-10s | %10s %10s %10s %10s  (bandwidth MB/s)\n" "size(B)"
    "mad-raw" "chmad" "sci-mpich" "scampi";
  List.iter
    (fun (n, (raw, chmad, scim, scam)) ->
      Printf.printf "%-10d | %10.2f %10.2f %10.2f %10.2f\n%!" n (bw n raw)
        (bw n chmad) (bw n scim) (bw n scam))
    rows

let fig7 () =
  header
    "Fig. 7 -- Nexus/Madeleine II over SISCI and TCP (paper: <25 us min\n\
     latency on SCI; SCI the more interesting cluster solution)";
  Printf.printf "%-10s %13s %13s %13s %13s\n" "size(B)" "sci lat(us)"
    "sci bw" "tcp lat(us)" "tcp bw";
  List.iter
    (fun n ->
      let s = H.nexus_roundtrip H.Nexus_mad_sisci ~bytes_count:n ~iters:(iters n) in
      let t = H.nexus_roundtrip H.Nexus_mad_tcp ~bytes_count:n ~iters:(iters n) in
      Printf.printf "%-10d %13.2f %13.2f %13.2f %13.2f\n%!" n (lat_us s)
        (bw n s) (lat_us t) (bw n t))
    [ 4; 64; 1024; 4096; 16384; 65536; 262144 ]

let eq16k () =
  header
    "Sec. 6.2.1 -- the 16 kB equal-cost point (paper: both networks near\n\
     250 us / 60 MB/s at 16 kB, suggesting the gateway packet size)";
  let n = 16384 in
  let s = H.mad_pingpong (H.sisci_world ()) ~bytes_count:n ~iters:10 in
  let b = H.mad_pingpong (H.bip_world ()) ~bytes_count:n ~iters:10 in
  Printf.printf "  Madeleine/SISCI @16kB: %7.1f us  %6.1f MB/s\n" (lat_us s)
    (bw n s);
  Printf.printf "  Madeleine/BIP   @16kB: %7.1f us  %6.1f MB/s\n" (lat_us b)
    (bw n b)

let mtu_sweep = [ 8192; 16384; 32768; 65536; 131072 ]

let fig10 () =
  header
    "Fig. 10 -- forwarding bandwidth SCI -> Myrinet (paper: 36.5 MB/s at\n\
     8 kB packets, rising to ~49.5 at 128 kB; PCI full-duplex limit)";
  Printf.printf "%-10s %12s %14s\n" "mtu(B)" "bw(MB/s)" "gw-pci-util";
  List.iter
    (fun mtu ->
      let v, util =
        H.forwarding_run ~mtu ~src:0 ~dst:2 ~bytes_count:(1 lsl 20) ()
      in
      Printf.printf "%-10d %12.2f %13.0f%%\n%!" mtu v (100.0 *. util))
    mtu_sweep

let fig11 () =
  header
    "Fig. 11 -- forwarding bandwidth Myrinet -> SCI (paper: 29 MB/s at\n\
     8 kB, staying under ~36.5: Myrinet DMA starves the gateway's PIO)";
  Printf.printf "%-10s %12s %14s\n" "mtu(B)" "bw(MB/s)" "gw-pci-util";
  List.iter
    (fun mtu ->
      let v, util =
        H.forwarding_run ~mtu ~src:2 ~dst:0 ~bytes_count:(1 lsl 20) ()
      in
      Printf.printf "%-10d %12.2f %13.0f%%\n%!" mtu v (100.0 *. util))
    mtu_sweep

(* ------------------------------------------------------------------ *)

let ablations () =
  header "Ablations -- the design choices called out in DESIGN.md";

  (* 1. SISCI dual buffering. *)
  let bw_slots slots =
    let config = { Madeleine.Config.default with sisci_ring_slots = slots } in
    let t =
      H.mad_pingpong (H.sisci_world ~config ()) ~bytes_count:(1 lsl 18) ~iters:4
    in
    bw (1 lsl 18) t
  in
  Printf.printf "A1. SISCI regular-TM ring depth (256 kB messages):\n";
  List.iter
    (fun s -> Printf.printf "      %d slot(s): %6.1f MB/s\n%!" s (bw_slots s))
    [ 1; 2; 3 ];

  (* 2. The disabled DMA TM. *)
  let bw_dma use_dma =
    let config = { Madeleine.Config.default with sisci_use_dma = use_dma } in
    let t =
      H.mad_pingpong (H.sisci_world ~config ()) ~bytes_count:(1 lsl 18) ~iters:4
    in
    bw (1 lsl 18) t
  in
  Printf.printf "A2. SISCI large-block engine (256 kB messages):\n";
  Printf.printf "      PIO regular TM: %6.1f MB/s\n%!" (bw_dma false);
  Printf.printf
    "      DMA TM:         %6.1f MB/s  (why the paper ships it disabled)\n%!"
    (bw_dma true);

  (* 3. Aggregation in the dynamic BMMs, over TCP's expensive syscalls. *)
  let tcp_multi_field aggregation =
    let config = { Madeleine.Config.default with aggregation } in
    let w = H.tcp_world ~config () in
    let module Mad = Madeleine.Api in
    let ep0 = Madeleine.Channel.endpoint w.H.channel ~rank:0 in
    let ep1 = Madeleine.Channel.endpoint w.H.channel ~rank:1 in
    let fields = List.init 8 (fun i -> H.payload 64 (Int64.of_int i)) in
    let finish = ref Time.zero in
    Marcel.Engine.spawn w.H.engine ~name:"s" (fun () ->
        let oc = Mad.begin_packing ep0 ~remote:1 in
        List.iter (Mad.pack oc) fields;
        Mad.end_packing oc);
    Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        List.iter (fun f -> Mad.unpack ic (Bytes.create (Bytes.length f))) fields;
        Mad.end_unpacking ic;
        finish := Marcel.Engine.now w.H.engine);
    Marcel.Engine.run w.H.engine;
    Time.to_us !finish
  in
  Printf.printf "A3. BMM aggregation over TCP (8-field message, one-way):\n";
  Printf.printf "      grouped (writev): %7.1f us\n%!" (tcp_multi_field true);
  Printf.printf "      eager per-field:  %7.1f us\n%!" (tcp_multi_field false);

  (* 4. Gateway software overhead. *)
  Printf.printf "A4. Gateway per-packet overhead (SCI->Myrinet, 8 kB packets):\n";
  List.iter
    (fun us ->
      let v =
        H.forwarding_bandwidth ~gateway_overhead:(Time.us us) ~mtu:8192 ~src:0
          ~dst:2 ~bytes_count:(1 lsl 19) ()
      in
      Printf.printf "      %5.0f us/step: %6.1f MB/s\n%!" us v)
    [ 0.; 25.; 50.; 100.; 200. ];

  (* 5. The zero-copy gateway receive (static-buffer borrowing, 6.1). *)
  Printf.printf "A5. Gateway buffer borrowing (32 kB packets):\n";
  let zc =
    H.forwarding_bandwidth ~mtu:32768 ~src:0 ~dst:2 ~bytes_count:(1 lsl 19) ()
  in
  let copy =
    H.forwarding_bandwidth ~extra_gateway_copy:true ~mtu:32768 ~src:0 ~dst:2
      ~bytes_count:(1 lsl 19) ()
  in
  Printf.printf "      borrow outgoing static buffer: %6.1f MB/s\n" zc;
  Printf.printf "      naive temporary + extra copy:  %6.1f MB/s\n%!" copy;

  (* 6. Express flushing: the latency cost of receive_EXPRESS on a
     network where it is not free. *)
  let express_cost r_mode =
    let w = H.tcp_world () in
    let module Mad = Madeleine.Api in
    let ep0 = Madeleine.Channel.endpoint w.H.channel ~rank:0 in
    let ep1 = Madeleine.Channel.endpoint w.H.channel ~rank:1 in
    let finish = ref Time.zero in
    Marcel.Engine.spawn w.H.engine ~name:"s" (fun () ->
        let oc = Mad.begin_packing ep0 ~remote:1 in
        for _ = 1 to 4 do
          Mad.pack oc ~r_mode (Bytes.create 32)
        done;
        Mad.end_packing oc);
    Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
        let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
        for _ = 1 to 4 do
          Mad.unpack ic ~r_mode (Bytes.create 32)
        done;
        Mad.end_unpacking ic;
        finish := Marcel.Engine.now w.H.engine);
    Marcel.Engine.run w.H.engine;
    Time.to_us !finish
  in
  Printf.printf
    "A6. receive mode on TCP (4 small fields; EXPRESS forces per-field\n\
    \     flushes where CHEAPER lets them group):\n";
  Printf.printf "      all CHEAPER: %7.1f us\n%!"
    (express_cost Madeleine.Iface.Receive_cheaper);
  Printf.printf "      all EXPRESS: %7.1f us\n%!"
    (express_cost Madeleine.Iface.Receive_express);

  (* 7. Gateway bandwidth control: the paper's future work ("some
     sophisticated bandwidth control mechanism is needed to regulate the
     incoming communication flow on gateways"), implemented. Pacing the
     Myrinet ingress keeps its DMA from starving the outgoing SCI PIO. *)
  Printf.printf
    "A7. Gateway ingress regulation, Myrinet->SCI at 32 kB packets (the\n\
    \     paper's proposed future work, implemented):\n";
  List.iter
    (fun cap ->
      let v =
        match cap with
        | None ->
            H.forwarding_bandwidth ~mtu:32768 ~src:2 ~dst:0
              ~bytes_count:(1 lsl 20) ()
        | Some c ->
            H.forwarding_bandwidth ~ingress_cap_mb_s:c ~mtu:32768 ~src:2 ~dst:0
              ~bytes_count:(1 lsl 20) ()
      in
      Printf.printf "      ingress %-9s %6.1f MB/s\n%!"
        (match cap with None -> "unlimited:" | Some c -> Printf.sprintf "%.0f MB/s:" c)
        v)
    [ None; Some 60.; Some 45.; Some 40. ];

  (* 8. Adaptive polling/interrupts: the other future-work item of §7,
     implemented. Hot ping-pongs should keep polling latency; the win of
     interrupts is the bounded CPU burn while waiting. *)
  let rx_run rx_interaction ~gap_us =
    let config = { Madeleine.Config.default with rx_interaction } in
    let w = H.sisci_world ~config () in
    let module Mad = Madeleine.Api in
    let ep0 = Madeleine.Channel.endpoint w.H.channel ~rank:0 in
    let ep1 = Madeleine.Channel.endpoint w.H.channel ~rank:1 in
    let iters = 20 in
    let lat = ref 0 in
    Marcel.Engine.spawn w.H.engine ~name:"s" (fun () ->
        for _ = 1 to iters do
          (* The receiver is already waiting when the message leaves:
             idle gaps between messages are where polling burns CPU. *)
          Marcel.Engine.sleep (Time.us gap_us);
          let t0 = Marcel.Engine.now w.H.engine in
          let oc = Mad.begin_packing ep0 ~remote:1 in
          Mad.pack oc ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_packing oc;
          let ic = Mad.begin_unpacking_from ep0 ~remote:1 in
          Mad.unpack ic ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_unpacking ic;
          lat :=
            !lat + Time.diff (Marcel.Engine.now w.H.engine) t0
        done);
    Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
        for _ = 1 to iters do
          let ic = Mad.begin_unpacking_from ep1 ~remote:0 in
          Mad.unpack ic ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_unpacking ic;
          let oc = Mad.begin_packing ep1 ~remote:0 in
          Mad.pack oc ~r_mode:Madeleine.Iface.Receive_express (Bytes.create 4);
          Mad.end_packing oc
        done);
    Marcel.Engine.run w.H.engine;
    Time.to_us (!lat / (2 * iters))
  in
  Printf.printf
    "A8. Receive interaction (4 B round trips with 1 ms think time;\n\
    \     one-way latency -- interrupts trade latency for bounded CPU burn):\n";
  Printf.printf "      polling:           %6.2f us\n%!"
    (rx_run Madeleine.Config.Rx_poll ~gap_us:1000.0);
  Printf.printf "      interrupts:        %6.2f us\n%!"
    (rx_run Madeleine.Config.Rx_interrupt ~gap_us:1000.0);
  Printf.printf "      adaptive (30 us):  %6.2f us\n%!"
    (rx_run
       (Madeleine.Config.Rx_adaptive Madeleine.Config.default_adaptive_window)
       ~gap_us:1000.0);

  (* 9. Multiple adapters per node (§2.1): striping one transfer across
     two Myrinet rails. The node's single 33 MHz PCI bus, not the wire,
     is the ceiling — so on this hardware a second rail does not pay. *)
  let dual_rail_bw rails =
    let module Mad = Madeleine.Api in
    let module Channel = Madeleine.Channel in
    let engine = Marcel.Engine.create () in
    let fabrics =
      List.init rails (fun i ->
          Simnet.Fabric.create engine
            ~name:(Printf.sprintf "myri-%d" i)
            ~link:Simnet.Netparams.myrinet)
    in
    let n0 = Simnet.Node.create engine ~name:"n0" ~id:0 in
    let n1 = Simnet.Node.create engine ~name:"n1" ~id:1 in
    List.iter
      (fun f ->
        Simnet.Fabric.attach f n0;
        Simnet.Fabric.attach f n1)
      fabrics;
    let session = Madeleine.Session.create engine in
    let channels =
      List.map
        (fun f ->
          let net = Bip.make_net engine f in
          let e0 = Bip.attach net n0 and e1 = Bip.attach net n1 in
          Channel.create session
            (Madeleine.Pmm_bip.driver (function 0 -> e0 | _ -> e1))
            ~ranks:[ 0; 1 ] ())
        fabrics
    in
    let per_rail = 1 lsl 20 / rails in
    List.iter
      (fun chan ->
        Marcel.Engine.spawn engine ~name:"s" (fun () ->
            let oc = Mad.begin_packing (Channel.endpoint chan ~rank:0) ~remote:1 in
            Mad.pack oc (Bytes.create per_rail);
            Mad.end_packing oc);
        Marcel.Engine.spawn engine ~name:"r" (fun () ->
            let ic =
              Mad.begin_unpacking_from (Channel.endpoint chan ~rank:1) ~remote:0
            in
            Mad.unpack ic (Bytes.create per_rail);
            Mad.end_unpacking ic))
      channels;
    Marcel.Engine.run engine;
    Time.rate_mb_s ~bytes_count:(1 lsl 20) (Marcel.Engine.now engine)
  in
  Printf.printf
    "A9. Multi-adapter striping over Myrinet rails (1 MB transfer):\n";
  List.iter
    (fun rails ->
      Printf.printf "      %d rail(s): %6.1f MB/s\n%!" rails (dual_rail_bw rails))
    [ 1; 2; 3 ];

  (* 10. Incast: several senders converge on one SCI receiver. The
     receiver's PCI bus (NIC-write class) is the shared bottleneck. *)
  let incast senders =
    let module Mad = Madeleine.Api in
    let w = H.make_world ~n:(senders + 1) H.sisci_driver Simnet.Netparams.sci in
    let n = 1 lsl 19 in
    for s = 1 to senders do
      Marcel.Engine.spawn w.H.engine ~name:(Printf.sprintf "s%d" s) (fun () ->
          let oc =
            Mad.begin_packing
              (Madeleine.Channel.endpoint w.H.channel ~rank:s)
              ~remote:0
          in
          Mad.pack oc (Bytes.create n);
          Mad.end_packing oc)
    done;
    for _ = 1 to senders do
      Marcel.Engine.spawn w.H.engine ~name:"r" (fun () ->
          let ic =
            Mad.begin_unpacking (Madeleine.Channel.endpoint w.H.channel ~rank:0)
          in
          Mad.unpack ic (Bytes.create n);
          Mad.end_unpacking ic)
    done;
    Marcel.Engine.run w.H.engine;
    Time.rate_mb_s ~bytes_count:(senders * n) (Marcel.Engine.now w.H.engine)
  in
  Printf.printf
    "A10. Incast over SCI (concurrent senders to one receiver, aggregate):\n";
  List.iter
    (fun s -> Printf.printf "      %d sender(s): %6.1f MB/s\n%!" s (incast s))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Bechamel microbenchmarks: wall-clock cost of simulating each
   experiment (one Test.make per reproduced figure). *)

let bechamel () =
  header "Bechamel -- wall-clock cost of each experiment's simulation";
  let open Bechamel in
  let open Toolkit in
  let stage name f = Test.make ~name (Staged.stage f) in
  let tests =
    [
      stage "fig4.sisci-pingpong" (fun () ->
          ignore (H.mad_pingpong (H.sisci_world ()) ~bytes_count:8192 ~iters:2));
      stage "fig5.bip-pingpong" (fun () ->
          ignore (H.mad_pingpong (H.bip_world ()) ~bytes_count:8192 ~iters:2));
      stage "fig6.chmad-pingpong" (fun () ->
          ignore (H.mpi_pingpong H.Chmad ~bytes_count:8192 ~iters:2));
      stage "fig7.nexus-rsr" (fun () ->
          ignore
            (H.nexus_roundtrip H.Nexus_mad_sisci ~bytes_count:1024 ~iters:2));
      stage "fig10.forwarding" (fun () ->
          ignore
            (H.forwarding_bandwidth ~mtu:16384 ~src:0 ~dst:2
               ~bytes_count:(1 lsl 17) ()));
      stage "fig11.forwarding-reverse" (fun () ->
          ignore
            (H.forwarding_bandwidth ~mtu:16384 ~src:2 ~dst:0
               ~bytes_count:(1 lsl 17) ()));
    ]
  in
  let test = Test.make_grouped ~name:"madeleine2" tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Bechamel.Time.second 0.25) ~kde:None ()
  in
  let raw_results = Benchmark.all cfg instances test in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  let merged = Analyze.merge ols instances results in
  Hashtbl.iter
    (fun _measure per_test ->
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
              Printf.printf "  %-36s %14.1f ns/run\n%!" name est
          | _ -> Printf.printf "  %-36s (no estimate)\n%!" name)
        per_test)
    merged

(* ------------------------------------------------------------------ *)

(* Simulator throughput ("simspeed"): host events per host wall-clock
   second. The event counts are deterministic (they replay the same
   simulated schedule every run); only the wall time varies, so each
   scenario runs [simspeed_reps] times and reports the fastest — the
   least-disturbed run is the best estimate of the simulator's actual
   speed on an idle machine. See docs/MODEL.md, "Host performance
   model". *)

let simspeed_json = ref false
let simspeed_baseline : string option ref = ref None
let simspeed_gate_failed = ref false
let simspeed_reps = 6
let simspeed_json_file = "BENCH_simspeed.json"

let simspeed_scenarios : (string * (unit -> int)) list =
  [
    ( "sisci 1MB ping-pong",
      fun () ->
        let w = H.sisci_world () in
        ignore (H.mad_pingpong w ~bytes_count:(1 lsl 20) ~iters:4);
        Marcel.Engine.events_processed w.H.engine );
    ( "gateway forwarding 1MB @16kB",
      fun () ->
        let w = H.two_cluster_world () in
        let vc =
          Madeleine.Vchannel.create w.H.cw_session ~mtu:16384
            [ w.H.ch_sci; w.H.ch_myri ]
        in
        let msgs = 4 in
        let fin = ref 0 in
        let out = Bytes.create (1 lsl 20) in
        let sink = Bytes.create (1 lsl 20) in
        Marcel.Engine.spawn w.H.cw_engine ~name:"s" (fun () ->
            for _ = 1 to msgs do
              let oc =
                Madeleine.Vchannel.begin_packing vc ~me:0 ~remote:2
              in
              Madeleine.Vchannel.pack oc out;
              Madeleine.Vchannel.end_packing oc
            done);
        Marcel.Engine.spawn w.H.cw_engine ~name:"r" (fun () ->
            for _ = 1 to msgs do
              let ic =
                Madeleine.Vchannel.begin_unpacking_from vc ~me:2 ~remote:0
              in
              Madeleine.Vchannel.unpack ic sink;
              Madeleine.Vchannel.end_unpacking ic;
              incr fin
            done);
        Marcel.Engine.run w.H.cw_engine;
        assert (!fin = msgs);
        Marcel.Engine.events_processed w.H.cw_engine );
  ]

let simspeed_measure f =
  let events = ref 0 and best = ref infinity in
  for _ = 1 to simspeed_reps do
    let t0 = Unix.gettimeofday () in
    let n = f () in
    let dt = Unix.gettimeofday () -. t0 in
    events := n;
    if dt < !best then best := dt
  done;
  (!events, Float.max 1e-9 !best)

let simspeed_write_json results =
  let oc = open_out simspeed_json_file in
  output_string oc "{ \"simspeed\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i (label, events, wall, rate) ->
      Printf.fprintf oc
        "  { \"scenario\": %S, \"events\": %d, \"wall_s\": %.6f, \
         \"events_per_s\": %.1f }%s\n"
        label events wall rate
        (if i = last then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc

(* Line-based baseline reader: each scenario object sits on one line of
   the JSON written above, so plain string scanning suffices — no JSON
   library in the toolchain. *)
let simspeed_find_sub line sub =
  let n = String.length line and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.sub line i m = sub then Some (i + m)
    else go (i + 1)
  in
  go 0

let simspeed_string_field line key =
  match simspeed_find_sub line (Printf.sprintf "\"%s\": \"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let simspeed_float_field line key =
  match simspeed_find_sub line (Printf.sprintf "\"%s\": " key) with
  | None -> None
  | Some start ->
      let n = String.length line in
      let stop = ref start in
      while
        !stop < n
        &&
        match line.[!stop] with
        | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
        | _ -> false
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let simspeed_read_baseline file =
  let ic = open_in file in
  let acc = ref [] in
  (try
     while true do
       let line = input_line ic in
       match
         ( simspeed_string_field line "scenario",
           simspeed_float_field line "events_per_s" )
       with
       | Some name, Some rate -> acc := (name, rate) :: !acc
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !acc

let simspeed_gate baseline_file results =
  let tolerance = 0.20 in
  let baseline = simspeed_read_baseline baseline_file in
  if baseline = [] then begin
    Printf.printf "  GATE ERROR: no scenarios parsed from %s\n%!" baseline_file;
    simspeed_gate_failed := true
  end
  else
    List.iter
      (fun (label, _, _, rate) ->
        match List.assoc_opt label baseline with
        | None ->
            Printf.printf "  GATE WARN: %S not in baseline %s\n%!" label
              baseline_file
        | Some base ->
            let ratio = rate /. Float.max 1e-9 base in
            if ratio < 1.0 -. tolerance then begin
              Printf.printf
                "  GATE FAIL: %-34s %8.2f Mev/s vs baseline %8.2f Mev/s \
                 (%.0f%% of baseline, floor %.0f%%)\n%!"
                label (rate /. 1e6) (base /. 1e6) (ratio *. 100.)
                ((1.0 -. tolerance) *. 100.);
              simspeed_gate_failed := true
            end
            else
              Printf.printf
                "  GATE OK:   %-34s %8.2f Mev/s vs baseline %8.2f Mev/s \
                 (%.0f%% of baseline)\n%!"
                label (rate /. 1e6) (base /. 1e6) (ratio *. 100.))
      results

let simspeed () =
  header "Simulator throughput -- discrete events per host wall-clock second";
  let results =
    List.map
      (fun (label, f) ->
        let events, wall = simspeed_measure f in
        let rate = float_of_int events /. wall in
        Printf.printf "  %-34s %9d events, %8.2f Mev/s\n%!" label events
          (rate /. 1e6);
        (label, events, wall, rate))
      simspeed_scenarios
  in
  if !simspeed_json then begin
    simspeed_write_json results;
    Printf.printf "  wrote %s\n%!" simspeed_json_file
  end;
  match !simspeed_baseline with
  | None -> ()
  | Some file -> simspeed_gate file results

let sections =
  [
    ("fig4", fig4);
    ("fig5", fig5);
    ("fig6", fig6);
    ("fig7", fig7);
    ("eq16k", eq16k);
    ("fig10", fig10);
    ("fig11", fig11);
    ("ablations", ablations);
    ("report", fun () ->
      header "Replication report -- paper vs measured, judged";
      ignore (Report.run ()));
    ("simspeed", simspeed);
    ("bechamel", bechamel);
  ]

let () =
  let rec parse_flags = function
    | [] -> []
    | "--json" :: rest ->
        simspeed_json := true;
        parse_flags rest
    | "--baseline" :: file :: rest ->
        simspeed_baseline := Some file;
        parse_flags rest
    | [ "--baseline" ] ->
        Printf.eprintf "--baseline requires a file argument\n";
        exit 2
    | name :: rest -> name :: parse_flags rest
  in
  let requested =
    match parse_flags (List.tl (Array.to_list Sys.argv)) with
    | [] -> List.map fst sections
    | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown section %S; available: %s\n" name
            (String.concat " " (List.map fst sections));
          exit 2)
    requested;
  if !simspeed_gate_failed then begin
    Printf.printf "\nbench: simspeed regression gate FAILED.\n";
    exit 1
  end;
  Printf.printf "\nbench: all requested sections completed.\n"
