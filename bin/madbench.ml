(* madbench: a command-line front end to the simulated testbeds.

     madbench pingpong --net sisci --size 8192 --iters 10
     madbench sweep --net bip --jobs 4
     madbench forward --direction sci-to-myri --mtu 16384
     madbench mpi --device chmad --size 65536
     madbench nexus --proto sci --size 1024
     madbench chaos --quick --seed 42 --jobs 4 --json chaos.json
     madbench describe --config examples/clusters/two_cluster.cfg
     madbench config-pingpong --config cluster.cfg --channel wan \
         --from a --to b --size 4096

   All numbers are simulated time on the paper's calibrated testbed
   (dual PII-450, 33 MHz PCI, BIP/Myrinet + SISCI/SCI + Fast Ethernet). *)

module Time = Marcel.Time
module H = Harness
open Cmdliner

let report ~what ~bytes_count span =
  Format.printf "%s: size=%d B  one-way=%.2f us  bandwidth=%.2f MB/s@." what
    bytes_count (Time.to_us span)
    (Time.rate_mb_s ~bytes_count span)

(* -------- pingpong -------- *)

type net = Sisci_net | Bip_net | Tcp_net | Via_net | Sbp_net

let net_conv =
  Arg.enum
    [
      ("sisci", Sisci_net); ("bip", Bip_net); ("tcp", Tcp_net);
      ("via", Via_net); ("sbp", Sbp_net);
    ]

let net_arg =
  Arg.(value & opt net_conv Sisci_net & info [ "net" ] ~docv:"NET"
         ~doc:"Network interface: sisci, bip, tcp, via or sbp.")

let size_arg =
  Arg.(value & opt int 4 & info [ "size" ] ~docv:"BYTES"
         ~doc:"Message payload size in bytes.")

let iters_arg =
  Arg.(value & opt int 10 & info [ "iters" ] ~docv:"N"
         ~doc:"Ping-pong iterations to average over.")

let net_name = function
  | Sisci_net -> "madeleine/sisci"
  | Bip_net -> "madeleine/bip"
  | Tcp_net -> "madeleine/tcp"
  | Via_net -> "madeleine/via"
  | Sbp_net -> "madeleine/sbp"

(* A constructor, not a world: sweep jobs must build their world inside
   the job so each measurement is isolated on its worker domain. *)
let make_world = function
  | Sisci_net -> H.sisci_world ()
  | Bip_net -> H.bip_world ()
  | Tcp_net -> H.tcp_world ()
  | Via_net -> H.via_world ()
  | Sbp_net -> H.sbp_world ()

let pingpong net size iters =
  report ~what:(net_name net) ~bytes_count:size
    (H.mad_pingpong (make_world net) ~bytes_count:size ~iters)

let pingpong_cmd =
  Cmd.v
    (Cmd.info "pingpong" ~doc:"One Madeleine ping-pong measurement.")
    Term.(const pingpong $ net_arg $ size_arg $ iters_arg)

(* -------- sweep -------- *)

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs" ] ~docv:"N"
         ~doc:"Worker domains to fan the sweep over (default: \
               $(b,PARSIM_JOBS) or the machine's recommended domain \
               count; 1 = serial). Output is byte-identical for any N.")

let sweep net jobs_opt =
  let jobs =
    match jobs_opt with Some n -> n | None -> Parsim.default_jobs ()
  in
  Format.printf "# %s latency/bandwidth sweep@." (net_name net);
  Format.printf "%-10s %12s %12s@." "size(B)" "latency(us)" "bw(MB/s)";
  let rows =
    Parsim.with_pool ~jobs (fun pool ->
        Parsim.run pool
          (List.map
             (fun n ->
               ( Printf.sprintf "sweep/%d" n,
                 fun () ->
                   let iters = if n <= 4096 then 10 else 3 in
                   let t = H.mad_pingpong (make_world net) ~bytes_count:n ~iters in
                   Printf.sprintf "%-10d %12.2f %12.2f" n (Time.to_us t)
                     (Time.rate_mb_s ~bytes_count:n t) ))
             [ 4; 64; 1024; 4096; 16384; 65536; 262144; 1048576 ]))
  in
  List.iter (Format.printf "%s@.") rows

let sweep_cmd =
  Cmd.v
    (Cmd.info "sweep" ~doc:"Full message-size sweep on one interface.")
    Term.(const sweep $ net_arg $ jobs_arg)

(* -------- forward -------- *)

type direction = Sci_to_myri | Myri_to_sci

let dir_conv =
  Arg.enum [ ("sci-to-myri", Sci_to_myri); ("myri-to-sci", Myri_to_sci) ]

let dir_arg =
  Arg.(value & opt dir_conv Sci_to_myri & info [ "direction" ] ~docv:"DIR"
         ~doc:"Forwarding direction: sci-to-myri or myri-to-sci.")

let mtu_arg =
  Arg.(value & opt int 16384 & info [ "mtu" ] ~docv:"BYTES"
         ~doc:"Generic-TM packet size used along the route.")

let ovh_arg =
  Arg.(value & opt float 50.0 & info [ "gateway-overhead" ] ~docv:"US"
         ~doc:"Per-packet gateway software overhead in microseconds.")

let cap_arg =
  Arg.(value & opt (some float) None & info [ "ingress-cap" ] ~docv:"MB/S"
         ~doc:"Gateway ingress bandwidth regulation (the paper's \
               future-work mechanism); unset = unregulated.")

let forward direction mtu ovh cap =
  let src, dst, label =
    match direction with
    | Sci_to_myri -> (0, 2, "SCI->Myrinet")
    | Myri_to_sci -> (2, 0, "Myrinet->SCI")
  in
  let v =
    H.forwarding_bandwidth ~gateway_overhead:(Time.us ovh)
      ?ingress_cap_mb_s:cap ~mtu ~src ~dst ~bytes_count:(1 lsl 20) ()
  in
  Format.printf "%s  mtu=%d B  gateway-overhead=%.0f us%s: %.2f MB/s@." label
    mtu ovh
    (match cap with
    | None -> ""
    | Some c -> Printf.sprintf "  ingress-cap=%.0f MB/s" c)
    v

let forward_cmd =
  Cmd.v
    (Cmd.info "forward"
       ~doc:"Inter-cluster forwarding bandwidth through the gateway.")
    Term.(const forward $ dir_arg $ mtu_arg $ ovh_arg $ cap_arg)

(* -------- mpi -------- *)

type mpi_dev = Dev_chmad | Dev_scimpich | Dev_scampi

let dev_conv =
  Arg.enum
    [ ("chmad", Dev_chmad); ("sci-mpich", Dev_scimpich); ("scampi", Dev_scampi) ]

let dev_arg =
  Arg.(value & opt dev_conv Dev_chmad & info [ "device" ] ~docv:"DEV"
         ~doc:"MPI device: chmad, sci-mpich or scampi.")

let mpi dev size iters =
  let kind, name =
    match dev with
    | Dev_chmad -> (H.Chmad, "mpich/madeleine")
    | Dev_scimpich -> (H.Scidirect Mpilite.Dev_scidirect.sci_mpich, "sci-mpich")
    | Dev_scampi -> (H.Scidirect Mpilite.Dev_scidirect.scampi, "scampi")
  in
  report ~what:name ~bytes_count:size
    (H.mpi_pingpong kind ~bytes_count:size ~iters)

let mpi_cmd =
  Cmd.v
    (Cmd.info "mpi" ~doc:"MPI ping-pong on one of the three devices.")
    Term.(const mpi $ dev_arg $ size_arg $ iters_arg)

(* -------- nexus -------- *)

type nx_proto = Nx_sci | Nx_tcp

let proto_conv = Arg.enum [ ("sci", Nx_sci); ("tcp", Nx_tcp) ]

let proto_arg =
  Arg.(value & opt proto_conv Nx_sci & info [ "proto" ] ~docv:"PROTO"
         ~doc:"Nexus transport: sci (Madeleine/SISCI) or tcp (Madeleine/TCP).")

let nexus proto size iters =
  let kind, name =
    match proto with
    | Nx_sci -> (H.Nexus_mad_sisci, "nexus/madeleine/sci")
    | Nx_tcp -> (H.Nexus_mad_tcp, "nexus/madeleine/tcp")
  in
  report ~what:name ~bytes_count:size
    (H.nexus_roundtrip kind ~bytes_count:size ~iters)

let nexus_cmd =
  Cmd.v
    (Cmd.info "nexus" ~doc:"Nexus RSR echo measurement.")
    Term.(const nexus $ proto_arg $ size_arg $ iters_arg)

(* -------- crossover -------- *)

(* Bisect, per fabric, the message size where the zero-copy rendezvous
   path breaks even with the staged eager path, and persist the result
   (plus bandwidth points and the pin-cache hit rate of a
   repeated-buffer sweep) in BENCH_crossover.json. Clusterfiles consume
   the measurement through the channel key rendezvous=auto. *)

let crossover_sizes = [ 32768; 65536; 131072; 262144; 1048576 ]

let rdv_config ~threshold =
  {
    Madeleine.Config.default with
    Madeleine.Config.rendezvous_threshold = Some threshold;
    regcache_entries = 8;
  }

type crossover_result = {
  co_fabric : string;
  co_bytes : int;
  co_points : (int * float * float * float) list;
      (* size, staged MB/s, warm-cache rdv MB/s, cache-off rdv MB/s *)
  co_hit_rate : float;
}

let crossover_fabric (name, make) =
  let staged_time s = H.mad_pingpong (make None) ~bytes_count:s ~iters:8 in
  let rdv_time s =
    H.mad_pingpong (make (Some (rdv_config ~threshold:s))) ~bytes_count:s
      ~iters:8
  in
  let rdv_wins s = Time.to_us (rdv_time s) <= Time.to_us (staged_time s) in
  (* The handshake + pin cost dominates small messages and amortizes on
     large ones, so the win predicate is monotone enough to bisect. *)
  let lo = ref 1024 and hi = ref (1 lsl 20) in
  if rdv_wins !lo then hi := !lo
  else
    while !hi - !lo > 1024 do
      let mid = (!lo + !hi) / 2 in
      if rdv_wins mid then hi := mid else lo := mid
    done;
  let co_bytes = !hi in
  let cold_time s =
    let config =
      { (rdv_config ~threshold:s) with Madeleine.Config.regcache_entries = 0 }
    in
    H.mad_pingpong (make (Some config)) ~bytes_count:s ~iters:8
  in
  let co_points =
    List.map
      (fun s ->
        ( s,
          Time.rate_mb_s ~bytes_count:s (staged_time s),
          Time.rate_mb_s ~bytes_count:s (rdv_time s),
          Time.rate_mb_s ~bytes_count:s (cold_time s) ))
      crossover_sizes
  in
  (* Repeated-buffer sweep: ping-pong reuses one buffer per side, so a
     warm cache should serve nearly every send from the first pin. *)
  let w = make (Some (rdv_config ~threshold:32768)) in
  ignore (H.mad_pingpong w ~bytes_count:(1 lsl 20) ~iters:16);
  let co_hit_rate =
    match
      Madeleine.Channel.reg_stats
        (Madeleine.Channel.endpoint w.H.channel ~rank:0)
    with
    | Some s ->
        float_of_int s.Madeleine.Regcache.hits
        /. float_of_int
             (max 1 (s.Madeleine.Regcache.hits + s.Madeleine.Regcache.misses))
    | None -> 0.0
  in
  { co_fabric = name; co_bytes; co_points; co_hit_rate }

let crossover_write_json file results =
  let oc = open_out file in
  output_string oc "{ \"crossover\": [\n";
  let last = List.length results - 1 in
  List.iteri
    (fun i r ->
      let points =
        String.concat ", "
          (List.map
             (fun (s, staged, rdv, cold) ->
               Printf.sprintf
                 "{ \"bytes\": %d, \"staged_mb_s\": %.2f, \"rdv_mb_s\": \
                  %.2f, \"rdv_cold_mb_s\": %.2f, \"gain\": %.3f }"
                 s staged rdv cold (rdv /. Float.max 1e-9 staged))
             r.co_points)
      in
      Printf.fprintf oc
        "  { \"fabric\": %S, \"crossover_bytes\": %d, \"regcache_hit_rate\": \
         %.3f, \"points\": [ %s ] }%s\n"
        r.co_fabric r.co_bytes r.co_hit_rate points
        (if i = last then "" else ","))
    results;
  output_string oc "] }\n";
  close_out oc

let crossover out =
  let fabrics =
    [
      ("sisci", fun config -> H.sisci_world ?config ());
      ("via", fun config -> H.via_world ?config ());
    ]
  in
  let results = List.map crossover_fabric fabrics in
  let failed = ref false in
  List.iter
    (fun r ->
      Format.printf "%s: eager/rendezvous crossover at %d B  (pin-cache hit \
                     rate %.1f%%)@."
        r.co_fabric r.co_bytes (100. *. r.co_hit_rate);
      List.iter
        (fun (s, staged, rdv, cold) ->
          Format.printf "  %8d B  staged %7.2f MB/s  zero-copy %7.2f MB/s  \
                         (%.2fx)  cache-off %7.2f MB/s@."
            s staged rdv
            (rdv /. Float.max 1e-9 staged)
            cold)
        r.co_points;
      (* CI keys off the exit code: the sisci zero-copy path must buy
         >= 1.2x from 32 kB up and the warm cache must serve > 90%. *)
      if r.co_fabric = "sisci" then begin
        List.iter
          (fun (s, staged, rdv, _cold) ->
            if s >= 32768 && rdv /. Float.max 1e-9 staged < 1.2 then begin
              Format.eprintf
                "crossover: gate FAILED: sisci %d B gain %.2fx < 1.2x@." s
                (rdv /. Float.max 1e-9 staged);
              failed := true
            end)
          r.co_points;
        if r.co_hit_rate <= 0.9 then begin
          Format.eprintf
            "crossover: gate FAILED: sisci pin-cache hit rate %.1f%% <= 90%%@."
            (100. *. r.co_hit_rate);
          failed := true
        end
      end)
    results;
  crossover_write_json out results;
  Format.printf "wrote %s@." out;
  if !failed then exit 1

let out_arg =
  Arg.(value & opt string "BENCH_crossover.json" & info [ "out" ] ~docv:"FILE"
         ~doc:"File the per-fabric crossover measurements are written to \
               (the clusterfile key $(b,rendezvous=auto) reads this name).")

let crossover_cmd =
  Cmd.v
    (Cmd.info "crossover"
       ~doc:"Bisect the eager/rendezvous break-even per fabric and persist \
             it for rendezvous=auto.")
    Term.(const crossover $ out_arg)

(* -------- chaos -------- *)

let quick_arg =
  Arg.(value & flag & info [ "quick" ]
         ~doc:"Trim the fault sweep to the CI-sized subset.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Fault-plane RNG seed. Reports for one seed are \
               byte-identical across runs and worker counts.")

let json_arg =
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE"
         ~doc:"Also write the machine-readable report to FILE.")

(* Exit non-zero naming every tripped gate; write a small JSON report
   when asked. Shared by the full sweep and the single-workload mode. *)
let chaos_finish ~json_file ~json gates =
  (match json_file with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      Format.printf "wrote %s@." file);
  match List.filter_map (fun (n, ok) -> if ok then None else Some n) gates with
  | [] -> ()
  | failed ->
      List.iter (fun name -> Format.eprintf "chaos: gate FAILED: %s@." name)
        failed;
      exit 1

(* A single live-topology scenario (the CI smoke path): run it alone,
   print its table line and judge only its own gates. *)
let chaos_one workload quick seed json_file =
  let messages = if quick then 3 else 4 in
  let size = 16384 in
  let coll_metrics (c : Chaos.coll_chaos) =
    [
      ("completed", string_of_int c.Chaos.co_completed);
      ("failed", string_of_int c.Chaos.co_failed);
      ("repairs", string_of_int c.Chaos.co_repairs);
      ("combined", string_of_int c.Chaos.co_combined);
      ("root_contribs", string_of_int c.Chaos.co_root_contribs);
      ("dup_suppressed", string_of_int c.Chaos.co_dup_suppressed);
    ]
  in
  let line, gates, metrics =
    match workload with
    | "rolling-restart" ->
        let rr = Chaos.rolling_restart_run ~seed ~size ~messages in
        (Chaos.rolling_line rr, Chaos.rolling_gates rr, [])
    | "partition-majority" | "coordinator-loss" | "partition-flapping" ->
        let p =
          match workload with
          | "partition-majority" ->
              Chaos.partition_majority_run ~seed ~size ~messages
          | "coordinator-loss" ->
              Chaos.coordinator_loss_run ~seed ~size ~messages
          | _ ->
              Chaos.partition_flapping_run ~seed ~size ~messages ~cycles:3
        in
        ( Chaos.partition_line p,
          Chaos.partition_gates p,
          [
            ("elections", string_of_int p.Chaos.pt_elections);
            ( "reelect_latency_us",
              Printf.sprintf "%.2f" p.Chaos.pt_reelect_latency_us );
            ("cut_delivered", string_of_int p.Chaos.pt_cut_delivered);
            ("pending_after", string_of_int p.Chaos.pt_pending_after);
            ("reemitted", string_of_int p.Chaos.pt_reemitted);
          ] )
    | "join" ->
        let e = Chaos.join_load_run ~seed ~size ~messages in
        (Chaos.elastic_line e, Chaos.elastic_gates e, [])
    | "drain" ->
        let e = Chaos.drain_load_run ~seed ~size ~messages in
        (Chaos.elastic_line e, Chaos.elastic_gates e, [])
    | "coll-crash-barrier" ->
        let c = Chaos.coll_crash_barrier_run ~seed in
        (Chaos.coll_line c, Chaos.coll_gates c, coll_metrics c)
    | "coll-spine-overload" ->
        let c =
          Chaos.coll_spine_overload_run ~seed ~size:4096
            ~messages:(if quick then 24 else 48)
            ~credits:64 ~gw_pool:4 ~rx_cap_mb_s:1.0
        in
        (Chaos.coll_line c, Chaos.coll_gates c, coll_metrics c)
    | "coll-rolling-allreduce" ->
        let c = Chaos.coll_rolling_allreduce_run ~seed ~clusters:8 ~per:8 in
        (Chaos.coll_line c, Chaos.coll_gates c, coll_metrics c)
    | "coll-scale" ->
        (* quick drops the 1024-rank row; the scale ratio is recorded in
           the JSON metrics and gated. *)
        let sizes =
          if quick then [ (8, 8); (16, 16) ]
          else [ (8, 8); (16, 16); (32, 32) ]
        in
        let cs = Chaos.coll_scale_run ~seed ~fanout:4 ~sizes in
        let largest =
          List.nth cs.Chaos.cs_rows (List.length cs.Chaos.cs_rows - 1)
        in
        ( Chaos.coll_scale_line cs,
          Chaos.coll_scale_gates cs,
          [
            ("ranks", string_of_int largest.Chaos.sr_ranks);
            ("tree_depth", string_of_int largest.Chaos.sr_depth);
            ("tree_rounds", string_of_int largest.Chaos.sr_rounds);
            ("tree_us", Printf.sprintf "%.2f" largest.Chaos.sr_tree_us);
            ("flat_us", Printf.sprintf "%.2f" largest.Chaos.sr_flat_us);
            ("ratio", Printf.sprintf "%.2f" cs.Chaos.cs_ratio);
            ( "tree_root_contribs",
              string_of_int largest.Chaos.sr_tree_root_contribs );
            ( "flat_root_contribs",
              string_of_int largest.Chaos.sr_flat_root_contribs );
          ] )
    | w ->
        Format.eprintf
          "chaos: unknown workload %s (expected rolling-restart, join, \
           drain, partition-majority, coordinator-loss, \
           partition-flapping, coll-crash-barrier, coll-spine-overload, \
           coll-rolling-allreduce or coll-scale)@."
          w;
        exit 2
  in
  print_string line;
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{ \"chaos\": { \"seed\": %d, \"workload\": %S,\n" seed workload);
  (if metrics <> [] then begin
     Buffer.add_string b "\"metrics\": {\n";
     let last_m = List.length metrics - 1 in
     List.iteri
       (fun i (k, v) ->
         Buffer.add_string b
           (Printf.sprintf "  %S: %s%s\n" k v (if i = last_m then "" else ",")))
       metrics;
     Buffer.add_string b "},\n"
   end);
  Buffer.add_string b "\"gates\": [\n";
  let last = List.length gates - 1 in
  List.iteri
    (fun i (name, ok) ->
      Buffer.add_string b
        (Printf.sprintf "  { \"gate\": %S, \"pass\": %b }%s\n" name ok
           (if i = last then "" else ",")))
    gates;
  Buffer.add_string b "] } }\n";
  chaos_finish ~json_file ~json:(Buffer.contents b) gates

let chaos workload quick seed jobs_opt json_file =
  match workload with
  | Some w -> chaos_one w quick seed json_file
  | None ->
      let jobs =
        match jobs_opt with Some n -> n | None -> Parsim.default_jobs ()
      in
      let report =
        Parsim.with_pool ~jobs (fun pool ->
            Chaos.run (Sweeps.pool_runner pool) ~seed ~quick)
      in
      print_string (Chaos.render_table report);
      chaos_finish ~json_file ~json:(Chaos.to_json report)
        (Chaos.gates report)

let workload_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"WORKLOAD"
         ~doc:"Run a single scenario instead of the full sweep: \
               $(b,rolling-restart) (every rank drains, restarts and \
               rejoins under traffic), $(b,join) (a rank joins mid-stream \
               and becomes routable without quiescing flows), $(b,drain) \
               (the on-route gateway drains mid-stream and the flow \
               reroutes), $(b,partition-majority) (a minority rank is \
               cut off; the majority keeps its coordinator and goodput, \
               the minority fails typed, the heal replays its parked \
               join), $(b,coordinator-loss) (the partition strands the \
               coordinator itself; the majority elects a replacement and \
               the re-election latency is recorded), \
               $(b,partition-flapping) (repeated cut/heal cycles each \
               isolating the sitting coordinator; every flap forces a \
               committed re-election and membership survives), \
               $(b,coll-crash-barrier) (a rank crashes \
               mid-barrier, survivors decide, the restart re-joins from \
               the journal exactly-once), $(b,coll-spine-overload) (an \
               Overloaded gateway is routed off the collective tree \
               spine), $(b,coll-rolling-allreduce) (rolling restarts \
               during a 64-rank allreduce; every survivor agrees \
               bit-identically) or $(b,coll-scale) (tree-vs-flat barrier \
               latency at 64/256/1024 ranks; the ratio is recorded in \
               the JSON metrics and gated). Only that scenario's gates \
               decide the exit code.")

let chaos_cmd =
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Fault-injection sweep: reliable delivery under drops, \
             corruption, flaps, PCI stalls, gateway crashes and live \
             topology changes (rolling-restart, join-under-load, \
             drain-under-load), plus standalone partition scenarios \
             (partition-majority, coordinator-loss, partition-flapping).")
    Term.(
      const chaos $ workload_arg $ quick_arg $ seed_arg $ jobs_arg $ json_arg)

(* -------- describe / config-driven runs -------- *)

let config_arg =
  Arg.(required & opt (some file) None & info [ "config" ] ~docv:"FILE"
         ~doc:"Cluster description file (see docs and \
               examples/clusters/two_cluster.cfg).")

let describe config =
  let module Cf = Clusterfile in
  let t = Cf.load_file config in
  Format.printf "networks: %s@." (String.concat ", " (Cf.networks t));
  Format.printf "nodes:   ";
  List.iter
    (fun n -> Format.printf " %s(rank %d)" n (Cf.rank_of t n))
    (Cf.nodes t);
  Format.printf "@.channels: %s@." (String.concat ", " (Cf.channels t));
  List.iter
    (fun vc_name ->
      let vc = Cf.vchannel t vc_name in
      Format.printf "vchannel %s spans ranks %s@." vc_name
        (String.concat ", "
           (List.map string_of_int (Madeleine.Vchannel.ranks vc)));
      let nodes = Cf.nodes t in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if a <> b then
                match
                  Madeleine.Vchannel.route_length vc ~src:(Cf.rank_of t a)
                    ~dst:(Cf.rank_of t b)
                with
                | hops -> Format.printf "  %s -> %s: %d hop(s)@." a b hops
                | exception Madeleine.Vchannel.Partitioned _ ->
                    Format.printf "  %s -> %s: unreachable@." a b)
            nodes)
        nodes)
    (Cf.vchannels t)

let describe_cmd =
  Cmd.v
    (Cmd.info "describe" ~doc:"Print the inventory and routes of a cluster file.")
    Term.(const describe $ config_arg)

let config_pingpong config chan_name from_name to_name size iters =
  let module Cf = Clusterfile in
  let module Mad = Madeleine.Api in
  let t = Cf.load_file config in
  let src = Cf.rank_of t from_name and dst = Cf.rank_of t to_name in
  let run_pingpong ~send_one ~recv_one =
    let t0 = ref Marcel.Time.zero and t1 = ref Marcel.Time.zero in
    Marcel.Engine.spawn (Cf.engine t) ~name:"ping" (fun () ->
        t0 := Marcel.Engine.now (Cf.engine t);
        for _ = 1 to iters do
          send_one ~me:src ~peer:dst;
          recv_one ~me:src ~peer:dst
        done;
        t1 := Marcel.Engine.now (Cf.engine t));
    Marcel.Engine.spawn (Cf.engine t) ~name:"pong" (fun () ->
        for _ = 1 to iters do
          recv_one ~me:dst ~peer:src;
          send_one ~me:dst ~peer:src
        done);
    Marcel.Engine.run (Cf.engine t);
    Marcel.Time.diff !t1 !t0 / (2 * iters)
  in
  let span =
    match
      (List.mem chan_name (Cf.channels t), List.mem chan_name (Cf.vchannels t))
    with
    | true, _ ->
        let chan = Cf.channel t chan_name in
        run_pingpong
          ~send_one:(fun ~me ~peer ->
            let oc =
              Mad.begin_packing (Madeleine.Channel.endpoint chan ~rank:me)
                ~remote:peer
            in
            Mad.pack oc (Bytes.create size);
            Mad.end_packing oc)
          ~recv_one:(fun ~me ~peer ->
            let ic =
              Mad.begin_unpacking_from
                (Madeleine.Channel.endpoint chan ~rank:me)
                ~remote:peer
            in
            Mad.unpack ic (Bytes.create size);
            Mad.end_unpacking ic)
    | false, true ->
        let vc = Cf.vchannel t chan_name in
        run_pingpong
          ~send_one:(fun ~me ~peer ->
            let oc = Madeleine.Vchannel.begin_packing vc ~me ~remote:peer in
            Madeleine.Vchannel.pack oc (Bytes.create size);
            Madeleine.Vchannel.end_packing oc)
          ~recv_one:(fun ~me ~peer ->
            let ic =
              Madeleine.Vchannel.begin_unpacking_from vc ~me ~remote:peer
            in
            Madeleine.Vchannel.unpack ic (Bytes.create size);
            Madeleine.Vchannel.end_unpacking ic)
    | false, false ->
        Format.eprintf "no channel or vchannel named %S@." chan_name;
        exit 2
  in
  report
    ~what:(Printf.sprintf "%s %s->%s" chan_name from_name to_name)
    ~bytes_count:size span

let chan_arg =
  Arg.(required & opt (some string) None & info [ "channel" ] ~docv:"NAME"
         ~doc:"Channel or vchannel name from the cluster file.")

let from_arg =
  Arg.(required & opt (some string) None & info [ "from" ] ~docv:"NODE"
         ~doc:"Sending node name from the cluster file.")

let to_arg =
  Arg.(required & opt (some string) None & info [ "to" ] ~docv:"NODE"
         ~doc:"Receiving node name from the cluster file.")

let config_pingpong_cmd =
  Cmd.v
    (Cmd.info "config-pingpong"
       ~doc:"Ping-pong over a channel of a cluster-file world.")
    Term.(const config_pingpong $ config_arg $ chan_arg $ from_arg $ to_arg
          $ size_arg $ iters_arg)

(* -------- main -------- *)

let () =
  let info =
    Cmd.info "madbench" ~version:"1.0"
      ~doc:
        "Measurements on the simulated Madeleine II testbed (CLUSTER 2000 \
         reproduction): ping-pongs and sweeps on each interface, gateway \
         forwarding, MPI and Nexus layers, the fault-injection chaos \
         sweep, and cluster-file driven worlds (describe, \
         config-pingpong)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            pingpong_cmd; sweep_cmd; forward_cmd; mpi_cmd; nexus_cmd;
            crossover_cmd; chaos_cmd; describe_cmd; config_pingpong_cmd;
          ]))
