(* Fixed domain pool + work-stealing deques + deterministic collector.

   Jobs are coarse (one whole simulation world each, typically
   milliseconds of host work), so the deques use a plain mutex per deque
   rather than a lock-free Chase-Lev structure: the lock is taken a
   handful of times per job, far off any hot path, and the simple
   implementation is obviously correct under stealing.

   Determinism does not come from the schedule (which is racy by design)
   but from the collector: every job writes its outcome into a result
   slot fixed at submission, and the caller reads the slots in
   submission order only after the batch's remaining-counter reaches
   zero (an acquire point), so no job output is ever observed early,
   late or reordered. *)

(* ------------------------------------------------------------------ *)
(* Work-stealing deque: the owner pushes and takes at the bottom, idle
   peers steal from the top. *)

module Deque = struct
  type 'a t = {
    lock : Mutex.t;
    mutable buf : 'a option array;
    mutable top : int; (* index of the oldest element *)
    mutable len : int;
  }

  let create () = { lock = Mutex.create (); buf = [||]; top = 0; len = 0 }

  let grow t =
    let cap = Array.length t.buf in
    let ncap = if cap = 0 then 8 else 2 * cap in
    let nbuf = Array.make ncap None in
    for i = 0 to t.len - 1 do
      nbuf.(i) <- t.buf.((t.top + i) mod cap)
    done;
    t.buf <- nbuf;
    t.top <- 0

  let push_bottom t x =
    Mutex.lock t.lock;
    if t.len = Array.length t.buf then grow t;
    t.buf.((t.top + t.len) mod Array.length t.buf) <- Some x;
    t.len <- t.len + 1;
    Mutex.unlock t.lock

  let take ~from_top t =
    Mutex.lock t.lock;
    let r =
      if t.len = 0 then None
      else begin
        let cap = Array.length t.buf in
        let i =
          if from_top then begin
            let i = t.top in
            t.top <- (t.top + 1) mod cap;
            i
          end
          else (t.top + t.len - 1) mod cap
        in
        t.len <- t.len - 1;
        let x = t.buf.(i) in
        t.buf.(i) <- None;
        x
      end
    in
    Mutex.unlock t.lock;
    r

  let take_bottom t = take ~from_top:false t
  let steal_top t = take ~from_top:true t
end

(* ------------------------------------------------------------------ *)

type pool = {
  n : int; (* workers, including the submitting domain *)
  deques : (unit -> unit) Deque.t array; (* length n; slot 0 = submitter *)
  lock : Mutex.t;
  batch_cond : Condition.t; (* new batch published or stopping *)
  done_cond : Condition.t; (* current batch fully executed *)
  mutable generation : int;
  mutable stopping : bool;
  mutable dead : bool;
  remaining : int Atomic.t; (* jobs of the current batch still to finish *)
  mutable domains : unit Domain.t list;
}

let default_jobs () =
  match Sys.getenv_opt "PARSIM_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> invalid_arg "Parsim: PARSIM_JOBS must be a positive integer")
  | None -> max 1 (Domain.recommended_domain_count ())

let jobs t = t.n

(* Drain the batch: exhaust our own deque bottom-first, then sweep the
   other deques stealing from their tops; return once a full sweep finds
   everything empty. Jobs never enqueue further jobs, so an empty sweep
   after the batch is published means this worker is done. *)
let drain t me =
  let rec own () =
    match Deque.take_bottom t.deques.(me) with
    | Some job ->
        job ();
        own ()
    | None -> sweep 1
  and sweep k =
    if k < t.n then
      match Deque.steal_top t.deques.((me + k) mod t.n) with
      | Some job ->
          job ();
          own ()
      | None -> sweep (k + 1)
  in
  own ()

let worker t me =
  let rec loop last_gen =
    Mutex.lock t.lock;
    while (not t.stopping) && t.generation = last_gen do
      Condition.wait t.batch_cond t.lock
    done;
    let stop = t.stopping and gen = t.generation in
    Mutex.unlock t.lock;
    if not stop then begin
      drain t me;
      loop gen
    end
  in
  loop 0

let create ~jobs =
  if jobs < 1 then invalid_arg "Parsim.create: jobs must be at least 1";
  let t =
    {
      n = jobs;
      deques = Array.init jobs (fun _ -> Deque.create ());
      lock = Mutex.create ();
      batch_cond = Condition.create ();
      done_cond = Condition.create ();
      generation = 0;
      stopping = false;
      dead = false;
      remaining = Atomic.make 0;
      domains = [];
    }
  in
  t.domains <-
    List.init (jobs - 1) (fun i -> Domain.spawn (fun () -> worker t (i + 1)));
  t

let shutdown t =
  if not t.dead then begin
    t.dead <- true;
    Mutex.lock t.lock;
    t.stopping <- true;
    Condition.broadcast t.batch_cond;
    Mutex.unlock t.lock;
    List.iter Domain.join t.domains
  end

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

type ('a, 'b) outcome = Pending | Value of 'a | Raised of 'b

let run t batch =
  if t.dead then invalid_arg "Parsim.run: pool already shut down";
  if t.n = 1 then List.map (fun (_label, f) -> f ()) batch
  else begin
    let arr = Array.of_list batch in
    let k = Array.length arr in
    if k = 0 then []
    else begin
      let results = Array.make k Pending in
      Atomic.set t.remaining k;
      Array.iteri
        (fun i (_label, f) ->
          let job () =
            (results.(i) <-
               (match f () with
               | v -> Value v
               | exception e -> Raised (e, Printexc.get_raw_backtrace ())));
            if Atomic.fetch_and_add t.remaining (-1) = 1 then begin
              Mutex.lock t.lock;
              Condition.broadcast t.done_cond;
              Mutex.unlock t.lock
            end
          in
          Deque.push_bottom t.deques.(i mod t.n) job)
        arr;
      Mutex.lock t.lock;
      t.generation <- t.generation + 1;
      Condition.broadcast t.batch_cond;
      Mutex.unlock t.lock;
      (* The submitting domain is worker 0. *)
      drain t 0;
      Mutex.lock t.lock;
      while Atomic.get t.remaining > 0 do
        Condition.wait t.done_cond t.lock
      done;
      Mutex.unlock t.lock;
      (* Deterministic collection: emit in submission order; on failure
         re-raise the earliest-submitted job's exception. *)
      Array.iter
        (function
          | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
          | Value _ | Pending -> ())
        results;
      Array.to_list
        (Array.map
           (function
             | Value v -> v
             | Pending | Raised _ -> assert false)
           results)
    end
  end
