(** Parallel sweep engine: a fixed pool of OCaml 5 domains executing
    independent simulation {e jobs} with deterministic, submission-ordered
    collection.

    A job is a closure that constructs, runs and tears down one complete
    simulation world (its own {!Marcel.Engine.t}, network models, buffer
    pools and RNG streams). Jobs must be {e isolated}: they may not touch
    an engine, node, channel or any other world object created outside the
    job, and they must not print — they return a value (rows, stats) that
    the collector emits in submission order, so a parallel run's output is
    byte-identical to a serial run's. See docs/MODEL.md, "Parallel sweeps
    and the world-isolation invariant".

    Scheduling is work-stealing: each worker owns a deque seeded
    round-robin at submission; owners take from the bottom, idle workers
    steal from the top of the busiest-looking peer. Determinism never
    depends on the schedule — only the collection order is guaranteed. *)

type pool
(** A fixed-size pool. [jobs = n] means [n] workers execute jobs: the
    calling domain plus [n - 1] spawned domains. A pool with [jobs = 1]
    spawns no domains and {!run} degenerates to [List.map] — exactly the
    serial path. *)

val default_jobs : unit -> int
(** Worker count to use when the user gave none: the [PARSIM_JOBS]
    environment variable if set (must be a positive integer), otherwise
    [Domain.recommended_domain_count ()].

    @raise Invalid_argument if [PARSIM_JOBS] is set but not a positive
    integer. *)

val create : jobs:int -> pool
(** Spawns [jobs - 1] worker domains. [jobs] must be at least 1.

    @raise Invalid_argument if [jobs < 1]. *)

val jobs : pool -> int
(** The pool's worker count (including the calling domain). *)

val shutdown : pool -> unit
(** Terminates and joins the worker domains. Idempotent. Calling {!run}
    after [shutdown] raises [Invalid_argument]. *)

val with_pool : jobs:int -> (pool -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and shuts it down
    afterwards, whether [f] returns or raises. *)

val run : pool -> (string * (unit -> 'a)) list -> 'a list
(** [run pool jobs] executes every [(label, thunk)] job and returns the
    thunk results {e in submission order}, regardless of which worker ran
    which job or in what order they finished.

    If thunks raise, the whole batch still runs to completion, then the
    exception of the {e earliest-submitted} failing job is re-raised (with
    its original backtrace) — again independent of scheduling. Labels
    identify jobs in diagnostics; they do not affect execution.

    [run] may be called repeatedly on one pool but is not reentrant: a
    job must not call [run] on the pool executing it (workers would be
    consumed waiting and the batch could deadlock). *)
