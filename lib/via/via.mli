(** Simulated VIA: the Virtual Interface Architecture.

    Models the descriptor-queue user-level NIC interface of the VIA
    specification (Dunning et al., IEEE Micro 1998): a {e Virtual
    Interface} (VI) is a pair of work queues connected point-to-point to a
    peer VI. Receives are {e pre-posted}: the application hands registered
    buffers to the receive queue, and an incoming send consumes the
    oldest posted descriptor. Because posted buffers are fixed,
    protocol-owned memory, Madeleine drives VIA through its
    static-buffer machinery ([obtain_static_buffer]).

    The real VIA errors a send arriving with no posted descriptor; the
    simulation blocks the sender instead (flow control is the caller's
    job, and Madeleine's BMM guarantees descriptors by construction —
    a blocked sender in tests marks a protocol bug as a {!Marcel.Engine.Stalled}
    failure rather than dropped data). *)

type net
type t
type vi

val make_net : Marcel.Engine.t -> Simnet.Fabric.t -> net
val attach : net -> Simnet.Node.t -> t
val node : t -> Simnet.Node.t

val create_vi : t -> vi
val vi_connect : vi -> vi -> unit
(** Connects two VIs point-to-point. Each VI connects exactly once. *)

val max_transfer : int
(** Largest payload one descriptor may carry
    ({!Simnet.Netparams.via_descriptor_max}). *)

val post_recv : vi -> Bytes.t -> unit
(** Appends a registered buffer to the receive queue. *)

val send : vi -> Bytes.t -> len:int -> unit
(** Sends [len] bytes from the buffer through the VI. Blocks until the
    payload has been placed in the peer's oldest posted receive buffer.
    Raises [Invalid_argument] if [len] exceeds {!max_transfer} or the
    consumed receive buffer is smaller than [len]. *)

val recv_wait : vi -> Bytes.t * int
(** Dequeues the next completed receive: the posted buffer and the number
    of bytes written into it. Blocks until a completion is available. *)

val posted_count : vi -> int
(** Receive descriptors currently posted and unconsumed. *)

val completions_available : vi -> int
(** Completed receives waiting in {!recv_wait}'s queue. *)

val set_data_hook : vi -> (unit -> unit) -> unit
(** [hook] fires when a receive completion is enqueued on this VI. *)

type region
(** A registered (pinned) interval of a user buffer; see {!register}. *)

val register : t -> Bytes.t -> pos:int -> len:int -> region
(** Pins [len] bytes of [data] starting at [pos]. Charges the calling
    thread {!Simnet.Cost.pin} (fixed base plus a per-page walk). Raises
    [Invalid_argument] on an empty or out-of-bounds range. *)

val deregister : region -> unit
(** Unpins the region, charging {!Simnet.Cost.unpin}; raises
    [Invalid_argument] if already deregistered. *)

val region_length : region -> int

val expose : t -> region -> int
(** Publishes a registered region as an RDMA-write target and returns
    its cookie (carried to the sender in the rendezvous clear-to-send).
    Free beyond the pin already charged by {!register}. *)

val retract : t -> cookie:int -> unit
(** Withdraws an exposed target. Free. *)

val rdma_write : vi -> region -> pos:int -> len:int -> cookie:int -> unit
(** One-sided RDMA write over a connected VI: moves [len] bytes from the
    local pinned [region] (at absolute buffer offset [pos]) directly
    into the peer's exposed target region named by [cookie]. Not bound
    by {!max_transfer}, consumes no posted descriptor, produces no
    completion — the receiver learns of the data out of band. Blocks
    for the doorbell plus the host-to-host DMA transfer. Raises
    [Invalid_argument] on an unknown cookie, inactive source or target,
    or a target smaller than [len]. *)
