module Engine = Marcel.Engine
module Mailbox = Marcel.Mailbox
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams

type vi = {
  owner : t;
  mutable peer : vi option;
  recv_queue : Bytes.t Queue.t; (* posted descriptors, FIFO *)
  mutable recv_waiters : (unit -> unit) list; (* senders awaiting a descriptor *)
  completions : (Bytes.t * int) Mailbox.t;
  mutable data_hooks : (unit -> unit) list;
}

and t = {
  net : net;
  host : Node.t;
  exposed : (int, region) Hashtbl.t;
  mutable next_cookie : int;
}

and net = { engine : Engine.t; fabric : Fabric.t; hosts : (int, t) Hashtbl.t }

(* A registered (pinned) interval of a user buffer, usable as the source
   of an {!rdma_write} — or, once {!expose}d under a cookie, as its
   target. Positions are absolute offsets into the underlying buffer. *)
and region = {
  v_host : t;
  v_mem : Bytes.t;
  v_pos : int;
  v_len : int;
  mutable v_active : bool;
}

let make_net engine fabric = { engine; fabric; hosts = Hashtbl.create 16 }

let attach net node =
  if Hashtbl.mem net.hosts node.Node.id then
    invalid_arg "Via.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Via.attach: node not on the fabric";
  let t = { net; host = node; exposed = Hashtbl.create 8; next_cookie = 1 } in
  Hashtbl.add net.hosts node.Node.id t;
  t

let node t = t.host
let max_transfer = Netparams.via_descriptor_max

let create_vi t =
  {
    owner = t;
    peer = None;
    recv_queue = Queue.create ();
    recv_waiters = [];
    completions = Mailbox.create ();
    data_hooks = [];
  }

let completions_available vi = Mailbox.length vi.completions
let set_data_hook vi hook = vi.data_hooks <- hook :: vi.data_hooks

let vi_connect a b =
  (match (a.peer, b.peer) with
  | None, None -> ()
  | _ -> invalid_arg "Via.vi_connect: VI already connected");
  a.peer <- Some b;
  b.peer <- Some a

let post_recv vi buf =
  Queue.push buf vi.recv_queue;
  let waiters = vi.recv_waiters in
  vi.recv_waiters <- [];
  List.iter (fun wake -> wake ()) waiters

let posted_count vi = Queue.length vi.recv_queue

let rec take_descriptor vi =
  match Queue.take_opt vi.recv_queue with
  | Some buf -> buf
  | None ->
      Engine.suspend ~name:"via.descriptor" (fun wake ->
          vi.recv_waiters <- (fun () -> wake ()) :: vi.recv_waiters);
      take_descriptor vi

let send vi data ~len =
  let peer =
    match vi.peer with
    | Some p -> p
    | None -> invalid_arg "Via.send: VI not connected"
  in
  if len > max_transfer then invalid_arg "Via.send: exceeds descriptor max";
  if len > Bytes.length data then invalid_arg "Via.send: len > buffer";
  let target = take_descriptor peer in
  if Bytes.length target < len then
    invalid_arg "Via.send: posted receive buffer too small";
  Engine.sleep Netparams.via_doorbell_overhead;
  Simnet.Xfer.host_to_host vi.owner.net.engine ~fabric:vi.owner.net.fabric
    ~src:vi.owner.host ~dst:peer.owner.host ~src_class:Simnet.Xfer.Dma
    ~dst_class:Simnet.Xfer.Dma ~bytes_count:len ();
  Bytes.blit data 0 target 0 len;
  Mailbox.put peer.completions (target, len);
  List.iter (fun hook -> hook ()) peer.data_hooks

let recv_wait vi =
  let buf, len = Mailbox.take vi.completions in
  Engine.sleep Netparams.via_completion_overhead;
  (buf, len)

(* --- Zero-copy RDMA: registered user buffers -------------------------- *)

let register t data ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > Bytes.length data then
    invalid_arg "Via.register: bad range";
  Simnet.Cost.pin len;
  { v_host = t; v_mem = data; v_pos = pos; v_len = len; v_active = true }

let deregister r =
  if not r.v_active then invalid_arg "Via.deregister: already deregistered";
  r.v_active <- false;
  Simnet.Cost.unpin r.v_len

let region_length r = r.v_len

(* Publish a registered region as an RDMA-write target. The returned
   cookie travels to the sender in the rendezvous clear-to-send; it is
   host-local, so only peers told the cookie can address the region.
   Free beyond the pin already charged by {!register}. *)
let expose t r =
  if not r.v_active then invalid_arg "Via.expose: inactive region";
  if r.v_host != t then invalid_arg "Via.expose: wrong host";
  let cookie = t.next_cookie in
  t.next_cookie <- cookie + 1;
  Hashtbl.add t.exposed cookie r;
  cookie

let retract t ~cookie = Hashtbl.remove t.exposed cookie

(* One-sided RDMA write over a connected VI: moves [len] bytes from the
   local pinned [region] straight into the start of the peer's exposed
   target region. Unlike {!send}, the transfer is not bound by the
   descriptor max (the engine walks the pinned page list), consumes no
   posted descriptor, and completes invisibly to the receiver — the
   rendezvous done message tells it the data landed. *)
let rdma_write vi region ~pos ~len ~cookie =
  let peer =
    match vi.peer with
    | Some p -> p
    | None -> invalid_arg "Via.rdma_write: VI not connected"
  in
  if not region.v_active then invalid_arg "Via.rdma_write: inactive region";
  if
    pos < region.v_pos || len <= 0 || pos + len > region.v_pos + region.v_len
  then invalid_arg "Via.rdma_write: range outside region";
  let target =
    match Hashtbl.find_opt peer.owner.exposed cookie with
    | Some x -> x
    | None -> invalid_arg "Via.rdma_write: unknown target cookie"
  in
  if not target.v_active then invalid_arg "Via.rdma_write: target deregistered";
  if len > target.v_len then invalid_arg "Via.rdma_write: target too small";
  Engine.sleep Netparams.via_doorbell_overhead;
  Simnet.Xfer.host_to_host vi.owner.net.engine ~fabric:vi.owner.net.fabric
    ~src:vi.owner.host ~dst:peer.owner.host ~src_class:Simnet.Xfer.Dma
    ~dst_class:Simnet.Xfer.Dma ~bytes_count:len ();
  Bytes.blit region.v_mem pos target.v_mem target.v_pos len
