module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox

type fluid_use = { fluid : Fluid.t; weight : float; rate_cap : float option; cls : int }

type stage = {
  label : string;
  use : fluid_use option;
  per_fragment : Time.span;
  prop : Time.span;
}

let stage ?use ?(per_fragment = 0) ?(prop = 0) label =
  { label; use; per_fragment; prop }

let fragment_sizes ~bytes_count ~mtu =
  if bytes_count = 0 then [ 0 ]
  else begin
    let rec go remaining acc =
      if remaining <= 0 then List.rev acc
      else go (remaining - mtu) (min mtu remaining :: acc)
    in
    go bytes_count []
  end

let run engine ~stages ~bytes_count ~mtu =
  if stages = [] then invalid_arg "Pipeline.run: no stages";
  if mtu <= 0 then invalid_arg "Pipeline.run: mtu <= 0";
  if bytes_count < 0 then invalid_arg "Pipeline.run: negative size";
  let fragments = fragment_sizes ~bytes_count ~mtu in
  let nfrag = List.length fragments in
  let nstages = List.length stages in
  (* boxes.(i) feeds stage i; boxes.(nstages) collects completions. *)
  let boxes = Array.init (nstages + 1) (fun _ -> Mailbox.create ()) in
  List.iteri
    (fun i st ->
      Engine.spawn engine ~name:("pipeline:" ^ st.label) (fun () ->
          for _ = 1 to nfrag do
            let frag = Mailbox.take boxes.(i) in
            if Stdlib.( > ) st.per_fragment 0 then Engine.sleep st.per_fragment;
            (match st.use with
            | Some { fluid; weight; rate_cap; cls } ->
                Fluid.transfer fluid ~bytes_count:frag ~weight ?rate_cap ~cls ()
            | None -> ());
            if Time.equal st.prop 0 then Mailbox.put boxes.(i + 1) frag
            else begin
              let deliver_at = Time.add (Engine.now engine) st.prop in
              Engine.at engine deliver_at (fun () ->
                  Mailbox.put boxes.(i + 1) frag)
            end
          done))
    stages;
  List.iter (fun frag -> Mailbox.put boxes.(0) frag) fragments;
  for _ = 1 to nfrag do
    ignore (Mailbox.take boxes.(nstages))
  done
