(** CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).

    Used by the simulated transports to *detect* payload corruption
    injected by {!Faults}: a frame whose checksum no longer matches is
    discarded by the receiver instead of being silently delivered, which
    is what turns injected corruption into a recoverable loss. *)

val crc32 : ?off:int -> ?len:int -> Bytes.t -> int
(** Checksum of [len] bytes of [b] starting at [off] (defaults: the whole
    buffer). The result fits in 32 bits. Raises [Invalid_argument] on an
    out-of-bounds range. *)
