(** Calibration constants for the simulated testbed.

    All constants model the paper's platform: dual Pentium II 450 MHz
    nodes, 33 MHz / 32-bit PCI, Myrinet LANai 4.3 NICs driven by BIP,
    Dolphin D310 SCI NICs driven by SISCI, Fast Ethernet, Linux 2.2.13.
    Values are chosen so that the *raw* interface micro-benchmarks land on
    the numbers the paper quotes (BIP: 5 us / 126 MB/s; SISCI PIO short
    latency allowing Madeleine's 3.9 us; SCI DMA: 35 MB/s; ...). See
    EXPERIMENTS.md for the full paper-vs-measured table. *)

(** {1 PCI bus} *)

val pci_capacity_mb_s : float
(** Raw 33 MHz x 32-bit capacity: 132 MB/s. *)

val pci_contention_factor : float
(** Degradation applied when the bus carries two or more concurrent
    streams of the same transaction class (full-duplex forwarding);
    calibrated from the 49.5 MB/s asymptote of Fig. 10. *)

val pci_mixed_contention_factor : float
(** Harsher degradation when CPU PIO and NIC DMA interleave on the bus
    (broken write-combining, arbitration turnaround); calibrated from
    Fig. 11's DMA-starves-PIO asymmetry. *)

val pci_weight_pio : float
(** Arbitration weight of CPU-initiated programmed-IO transactions. *)

val pci_weight_dma : float
(** Arbitration weight of NIC-initiated DMA transactions; twice the PIO
    weight per the Fig. 11 analysis. *)

val pci_pio_rate_cap_mb_s : float
(** Peak PIO write bandwidth through the PCI bridge (write-combining). *)

val pci_dma_rate_cap_mb_s : float
(** Peak burst DMA bandwidth of a single busmaster. *)

(** {1 Per-network link parameters} *)

type link = {
  wire_lat : Marcel.Time.span;  (** one-way propagation + switch latency *)
  wire_bw_mb_s : float;  (** link serialization bandwidth *)
  hw_mtu : int;  (** hardware packetization used to pipeline stages *)
}

val myrinet : link
val sci : link
val fast_ethernet : link

(** {1 BIP/Myrinet software constants} *)

val bip_send_overhead : Marcel.Time.span
val bip_recv_overhead : Marcel.Time.span
val bip_short_max : int
(** Threshold (bytes) between BIP short and long messages: 1024. *)

val bip_short_credits : int
(** Preallocated receive buffers per connection for short messages. *)

val bip_rendezvous_overhead : Marcel.Time.span
(** Extra handshake cost paid once per long message (receiver-ready ack). *)

val bip_copy_rate_mb_s : float
(** memcpy rate for staging short messages out of preallocated buffers. *)

(** {1 SISCI/SCI software constants} *)

val sisci_pio_overhead : Marcel.Time.span
(** Per-operation cost of a PIO store sequence + store barrier. *)

val sisci_poll_overhead : Marcel.Time.span
(** Receiver cost to notice a completed segment write (flag polling). *)

val sisci_dma_setup : Marcel.Time.span
(** Cost to post one DMA descriptor. *)

val sisci_dma_rate_cap_mb_s : float
(** The notoriously poor D310 DMA engine: 35 MB/s. *)

val sisci_segment_copy_rate_mb_s : float
(** CPU memcpy into a mapped remote segment (PIO write-combined). *)

(** {1 TCP / Fast Ethernet software constants} *)

val tcp_send_overhead : Marcel.Time.span
val tcp_recv_overhead : Marcel.Time.span
val tcp_rate_cap_mb_s : float

(** {1 VIA software constants} *)

val via_doorbell_overhead : Marcel.Time.span
val via_completion_overhead : Marcel.Time.span
val via_descriptor_max : int
(** Maximum buffer size a single VIA descriptor may carry. *)

(** {1 SBP (static-buffer kernel protocol) constants} *)

val sbp_trap_overhead : Marcel.Time.span
val sbp_buffer_size : int

(** {1 Generic host constants} *)

val memcpy_rate_mb_s : float
(** Plain main-memory copy rate of the PII-450 (used by static-buffer
    BMMs and by baseline MPI devices that stage through copies). *)

val interrupt_latency : Marcel.Time.span
(** Kernel interrupt + thread-wakeup cost, vs sub-microsecond polling
    detection: the trade-off behind adaptive network interaction. *)

(** {1 Buffer registration (pin-down) for zero-copy RDMA} *)

val page_size : int
(** Host page size: registration cost is charged per page pinned. *)

val reg_base : Marcel.Time.span
(** Fixed cost of registering a buffer (syscall entry, translation
    table setup), independent of its size. *)

val reg_per_page : Marcel.Time.span
(** Marginal cost of pinning and translating one page. *)

val dereg_base : Marcel.Time.span
val dereg_per_page : Marcel.Time.span
(** Deregistration analogues — cheaper: unpinning rebuilds nothing. *)

val sisci_rdma_rate_cap_mb_s : float
(** Source-side PCI ceiling of the busmaster engine reading pinned user
    pages in long aligned bursts — approaches the raw DMA ceiling
    instead of the D310 staging engine's {!sisci_dma_rate_cap_mb_s}. *)
