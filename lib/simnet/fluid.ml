module Engine = Marcel.Engine
module Time = Marcel.Time

(* The mutable float state of a transfer lives in its own all-float
   record: OCaml stores those flat, so crediting progress or setting a
   rate is a plain store instead of a boxed-float allocation. [cap] is
   [infinity] when the transfer is uncapped ([capped] = false); the
   separate flag keeps the capped/uncapped distinction exact. *)
type fl = {
  weight : float;
  cap : float; (* MB/s; infinity when not capped *)
  mutable remaining : float; (* bytes *)
  mutable rate : float; (* MB/s, current allocation *)
}

type xfer = {
  fl : fl;
  capped : bool;
  cls : int; (* transaction class; mixing classes degrades the bus *)
  wake : unit -> unit;
}

(* Single-field all-float record: flat, so accumulating into it does not
   box. *)
type fbox = { mutable fv : float }

type t = {
  engine : Engine.t;
  fluid_name : string;
  suspend_name : string; (* "fluid:<name>", precomputed off the hot path *)
  capacity : float; (* MB/s *)
  contention_factor : float;
  mixed_contention_factor : float;
  mutable active : xfer list;
  mutable last_update_ns : int;
  mutable generation : int;
  moved : fbox; (* total bytes completed *)
  mutable busy_ns : int; (* cumulative time with >= 1 active transfer *)
}

(* 1 MB/s = 1e6 bytes / 1e9 ns = 1e-3 bytes per ns. *)
let bytes_per_ns_of_mb_s r = r *. 1e-3

let create engine ~name ~capacity_mb_s ?(contention_factor = 1.0)
    ?mixed_contention_factor () =
  if capacity_mb_s <= 0.0 then invalid_arg "Fluid.create: capacity <= 0";
  if contention_factor <= 0.0 || contention_factor > 1.0 then
    invalid_arg "Fluid.create: contention_factor out of (0,1]";
  let mixed_contention_factor =
    Option.value mixed_contention_factor ~default:contention_factor
  in
  if mixed_contention_factor <= 0.0 || mixed_contention_factor > 1.0 then
    invalid_arg "Fluid.create: mixed_contention_factor out of (0,1]";
  {
    engine;
    fluid_name = name;
    suspend_name = "fluid:" ^ name;
    capacity = capacity_mb_s;
    contention_factor;
    mixed_contention_factor;
    active = [];
    last_update_ns = 0;
    generation = 0;
    moved = { fv = 0.0 };
    busy_ns = 0;
  }

let name t = t.fluid_name
let active_count t = List.length t.active
let total_bytes t = t.moved.fv
let busy_time t = t.busy_ns

let utilization t ~now =
  if Time.equal now Time.zero then 0.0
  else float_of_int t.busy_ns /. float_of_int now

(* Weighted max-min fair allocation (water-filling). Mutates [x.rate] for
   every transfer in [xs] so that capped transfers get their cap and the
   rest share the leftover capacity in proportion to their weights. *)
let allocate capacity xs =
  let rec fill remaining_cap pending =
    if pending = [] then ()
    else begin
      let total_weight =
        List.fold_left (fun acc x -> acc +. x.fl.weight) 0.0 pending
      in
      let lambda = remaining_cap /. total_weight in
      let capped, uncapped =
        List.partition
          (fun x -> x.capped && x.fl.cap <= x.fl.weight *. lambda)
          pending
      in
      if capped = [] then
        List.iter (fun x -> x.fl.rate <- x.fl.weight *. lambda) pending
      else begin
        let used =
          List.fold_left
            (fun acc x ->
              x.fl.rate <- x.fl.cap;
              acc +. x.fl.cap)
            0.0 capped
        in
        fill (Float.max 0.0 (remaining_cap -. used)) uncapped
      end
    end
  in
  fill capacity xs

(* Credit progress to every active transfer for the time elapsed since the
   last reallocation. *)
let credit dtf x =
  let fl = x.fl in
  let moved = bytes_per_ns_of_mb_s fl.rate *. dtf in
  fl.remaining <- Float.max 0.0 (fl.remaining -. moved)

let advance t =
  let now_ns : int = Engine.now t.engine in
  let dt = now_ns - t.last_update_ns in
  if dt > 0 then begin
    let dtf = float_of_int dt in
    match t.active with
    | [] -> ()
    | [ x ] ->
        (* Overwhelmingly common: one transfer on the fluid. Same
           arithmetic as the general branch, minus the closure. *)
        t.busy_ns <- t.busy_ns + dt;
        credit dtf x
    | xs ->
        t.busy_ns <- t.busy_ns + dt;
        List.iter (credit dtf) xs
  end;
  t.last_update_ns <- now_ns

let effective_capacity t =
  match t.active with
  | [] | [ _ ] -> t.capacity
  | x :: rest ->
      if List.exists (fun y -> y.cls <> x.cls) rest then
        t.capacity *. t.mixed_contention_factor
      else t.capacity *. t.contention_factor

let finish_epsilon = 0.5 (* bytes: below this a transfer counts as done *)

(* Reallocate rates and schedule the next completion event. The generation
   counter invalidates stale events: any membership change bumps it.

   The single-transfer case — by far the common one on every fluid in the
   modelled topologies — replicates the general water-filling arithmetic
   operation for operation (including the [0.0 +. weight] of the
   fold-based weight sum), so the computed rates and completion times are
   bit-identical to the general path: only the list/closure traffic is
   skipped. *)
let rec reschedule t =
  t.generation <- t.generation + 1;
  let generation = t.generation in
  match t.active with
  | [] -> ()
  | [ x ] ->
      let fl = x.fl in
      let lambda = t.capacity /. (0.0 +. fl.weight) in
      let r = fl.weight *. lambda in
      if x.capped && fl.cap <= r then fl.rate <- fl.cap else fl.rate <- r;
      let next =
        Float.min infinity (fl.remaining /. bytes_per_ns_of_mb_s fl.rate)
      in
      schedule_completion t generation next
  | xs ->
      allocate (effective_capacity t) xs;
      let eta x = x.fl.remaining /. bytes_per_ns_of_mb_s x.fl.rate in
      let next = List.fold_left (fun acc x -> Float.min acc (eta x)) infinity xs in
      schedule_completion t generation next

and schedule_completion t generation next =
  let delay = int_of_float (Float.max 1.0 (Float.ceil next)) in
  Engine.at t.engine
    (Time.add (Engine.now t.engine) delay)
    (fun () -> if t.generation = generation then complete t)

and complete t =
  advance t;
  (match t.active with
  | [ x ] when x.fl.remaining <= finish_epsilon ->
      t.active <- [];
      x.wake ()
  | [ _ ] -> ()
  | active ->
      let finished, still =
        List.partition (fun x -> x.fl.remaining <= finish_epsilon) active
      in
      t.active <- still;
      List.iter (fun x -> x.wake ()) finished);
  reschedule t

let transfer t ~bytes_count ~weight ?rate_cap ?(cls = 0) () =
  if bytes_count < 0 then invalid_arg "Fluid.transfer: negative size";
  if weight <= 0.0 then invalid_arg "Fluid.transfer: weight <= 0";
  (match rate_cap with
  | Some c when c <= 0.0 -> invalid_arg "Fluid.transfer: rate_cap <= 0"
  | Some _ | None -> ());
  if bytes_count > 0 then begin
    t.moved.fv <- t.moved.fv +. float_of_int bytes_count;
    Engine.suspend ~name:t.suspend_name (fun wake ->
        advance t;
        let capped, cap =
          match rate_cap with Some c -> (true, c) | None -> (false, infinity)
        in
        let x =
          {
            fl =
              { weight; cap; remaining = float_of_int bytes_count; rate = 0.0 };
            capped;
            cls;
            wake;
          }
        in
        t.active <- x :: t.active;
        reschedule t)
  end
