(** Deterministic splitmix64 pseudo-random generator.

    Each engine owns its own generator so simulation runs are reproducible
    regardless of module initialization order. *)

type t

val create : seed:int64 -> t
val next_int64 : t -> int64
val int : t -> int -> int
(** [int t bound] is {e exactly} uniform in [\[0, bound)]: the
    implementation rejection-samples instead of taking [r mod bound], so
    no residue class is over-represented. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bytes : t -> int -> Bytes.t
(** Random payload of the given length. *)

val split : t -> t
(** Derives an independent generator stream. *)
