(** A switched network fabric connecting NICs.

    Each attached node gets a full-duplex link to the fabric: a TX fluid
    and an RX fluid, both at the link's serialization bandwidth, plus a
    fixed one-way propagation/switch latency. A fragment travelling from
    [src] to [dst] occupies [tx src], then (after the propagation delay)
    [rx dst]. The per-host PCI stages are *not* included here — protocol
    simulations compose them explicitly, because who masters the PCI
    transaction (CPU PIO vs NIC DMA) differs per interface and that
    difference is precisely what Figs. 10/11 are about. *)

type t

val create : Marcel.Engine.t -> name:string -> link:Netparams.link -> t
val name : t -> string
val link : t -> Netparams.link

val set_faults : t -> Faults.t -> unit
(** Attaches a fault plane. Transports riding this fabric consult it at
    delivery time ({!Faults.frame_verdict}) and switch on their
    reliability machinery; with no plane attached (the default) they
    keep the original fault-free fast path, bit for bit. *)

val faults : t -> Faults.t option

val attach : t -> Node.t -> unit
(** Gives the node a NIC on this fabric. A node may be attached to several
    fabrics (that is what a gateway is). Attaching twice is an error. *)

val attached : t -> Node.t -> bool

val tx : t -> Node.t -> Fluid.t
(** TX-side link fluid of the node's NIC. Raises [Invalid_argument]
    naming the node and fabric if the node is not attached. *)

val rx : t -> Node.t -> Fluid.t

val nodes : t -> Node.t list
