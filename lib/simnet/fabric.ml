type port = { node : Node.t; tx_fluid : Fluid.t; rx_fluid : Fluid.t }

type t = {
  engine : Marcel.Engine.t;
  fabric_name : string;
  fabric_link : Netparams.link;
  ports : (int, port) Hashtbl.t;
  mutable fault_plane : Faults.t option;
}

let create engine ~name ~link =
  {
    engine;
    fabric_name = name;
    fabric_link = link;
    ports = Hashtbl.create 16;
    fault_plane = None;
  }

let name t = t.fabric_name
let link t = t.fabric_link
let set_faults t f = t.fault_plane <- Some f
let faults t = t.fault_plane

let attach t node =
  if Hashtbl.mem t.ports node.Node.id then
    invalid_arg
      (Printf.sprintf "Fabric.attach: %s already attached to %s"
         node.Node.name t.fabric_name);
  let mk side =
    Fluid.create t.engine
      ~name:(Printf.sprintf "%s.%s.%s" t.fabric_name node.Node.name side)
      ~capacity_mb_s:t.fabric_link.Netparams.wire_bw_mb_s ()
  in
  Hashtbl.add t.ports node.Node.id
    { node; tx_fluid = mk "tx"; rx_fluid = mk "rx" }

let attached t node = Hashtbl.mem t.ports node.Node.id

let port t op node =
  match Hashtbl.find_opt t.ports node.Node.id with
  | Some p -> p
  | None ->
      invalid_arg
        (Printf.sprintf "Fabric.%s: node %s not attached to fabric %s" op
           node.Node.name t.fabric_name)

let tx t node = (port t "tx" node).tx_fluid
let rx t node = (port t "rx" node).rx_fluid

let nodes t =
  Hashtbl.fold (fun _ p acc -> p.node :: acc) t.ports []
  |> List.sort (fun a b -> compare a.Node.id b.Node.id)
