let memcpy bytes_count =
  if bytes_count > 0 then
    Marcel.Engine.sleep
      (Marcel.Time.bytes_at_rate ~bytes_count
         ~mb_per_s:Netparams.memcpy_rate_mb_s)

let pages_of len =
  if len <= 0 then 0
  else (len + Netparams.page_size - 1) / Netparams.page_size

let pin bytes_count =
  let pages = pages_of bytes_count in
  if pages > 0 then
    Marcel.Engine.sleep
      (Marcel.Time.span_add Netparams.reg_base
         (Marcel.Time.span_mul Netparams.reg_per_page pages))

let unpin bytes_count =
  let pages = pages_of bytes_count in
  if pages > 0 then
    Marcel.Engine.sleep
      (Marcel.Time.span_add Netparams.dereg_base
         (Marcel.Time.span_mul Netparams.dereg_per_page pages))
