module Engine = Marcel.Engine
module Time = Marcel.Time

type verdict = Deliver | Drop | Corrupt | Duplicate | Delay of Time.span

type link_faults = {
  mutable drop_rate : float;
  mutable corrupt_rate : float;
  mutable dup_rate : float;
  mutable reorder_rate : float;
  mutable reorder_jitter : Time.span;
  mutable down_until : Time.t;
  mutable rx_cap_mb_s : float option;
}

type stats = {
  frames_dropped : int;
  frames_corrupted : int;
  frames_duplicated : int;
  frames_delayed : int;
  heartbeats_lost : int;
  crashes : int;
  flaps : int;
  stalls : int;
  partitions : int;
  heals : int;
  frames_cut : int;
}

type t = {
  eng : Engine.t;
  rng : Rng.t;
  links : (string * int, link_faults) Hashtbl.t;
  node_down : (int, unit) Hashtbl.t;
  epochs : (int, int) Hashtbl.t;
  (* Directional partition cuts: presence of (fabric, src, dst) means a
     frame src -> dst on that fabric is consumed by the cut. Symmetric
     partitions insert both directions; asymmetric ones only one. *)
  cuts : (string * int * int, unit) Hashtbl.t;
  mutable crash_cbs : (int -> unit) list;
  mutable restart_cbs : (int -> unit) list;
  mutable heal_cbs : (string -> unit) list;
  mutable frames_dropped : int;
  mutable frames_corrupted : int;
  mutable frames_duplicated : int;
  mutable frames_delayed : int;
  mutable heartbeats_lost : int;
  mutable crashes : int;
  mutable flaps : int;
  mutable stalls : int;
  mutable partitions : int;
  mutable heals : int;
  mutable frames_cut : int;
}

let create eng ~seed =
  {
    eng;
    rng = Rng.create ~seed;
    links = Hashtbl.create 16;
    node_down = Hashtbl.create 8;
    epochs = Hashtbl.create 8;
    cuts = Hashtbl.create 16;
    crash_cbs = [];
    restart_cbs = [];
    heal_cbs = [];
    frames_dropped = 0;
    frames_corrupted = 0;
    frames_duplicated = 0;
    frames_delayed = 0;
    heartbeats_lost = 0;
    crashes = 0;
    flaps = 0;
    stalls = 0;
    partitions = 0;
    heals = 0;
    frames_cut = 0;
  }

let engine t = t.eng

let link_state t key =
  match Hashtbl.find_opt t.links key with
  | Some l -> l
  | None ->
      let l =
        {
          drop_rate = 0.0;
          corrupt_rate = 0.0;
          dup_rate = 0.0;
          reorder_rate = 0.0;
          reorder_jitter = Time.zero;
          down_until = Time.zero;
          rx_cap_mb_s = None;
        }
      in
      Hashtbl.add t.links key l;
      l

let check_rate what rate =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg (Printf.sprintf "Faults.%s: rate %g outside [0, 1]" what rate)

let set_drop t ~fabric ~node ~rate =
  check_rate "set_drop" rate;
  (link_state t (fabric, node)).drop_rate <- rate

let set_corrupt t ~fabric ~node ~rate =
  check_rate "set_corrupt" rate;
  (link_state t (fabric, node)).corrupt_rate <- rate

let set_duplicate t ~fabric ~node ~rate =
  check_rate "set_duplicate" rate;
  (link_state t (fabric, node)).dup_rate <- rate

let set_reorder t ~fabric ~node ~rate ~jitter =
  check_rate "set_reorder" rate;
  if jitter <= 0 then invalid_arg "Faults.set_reorder: jitter must be positive";
  let l = link_state t (fabric, node) in
  l.reorder_rate <- rate;
  l.reorder_jitter <- jitter

let flap_link t ~fabric ~node ~at ~duration =
  t.flaps <- t.flaps + 1;
  let l = link_state t (fabric, node) in
  Engine.at t.eng at (fun () ->
      let until = Time.add (Engine.now t.eng) duration in
      if Time.( < ) l.down_until until then l.down_until <- until)

let slow_receiver t ~fabric ~node ~mb_per_s =
  if mb_per_s <= 0.0 then
    invalid_arg
      (Printf.sprintf "Faults.slow_receiver: rate %g must be positive"
         mb_per_s);
  (link_state t (fabric, node)).rx_cap_mb_s <- Some mb_per_s

let clear_slow_receiver t ~fabric ~node =
  match Hashtbl.find_opt t.links (fabric, node) with
  | None -> ()
  | Some l -> l.rx_cap_mb_s <- None

let rx_cap t ~fabric ~node =
  match Hashtbl.find_opt t.links (fabric, node) with
  | None -> None
  | Some l -> l.rx_cap_mb_s

let node_up t node = not (Hashtbl.mem t.node_down node)

(* ------------------------------------------------------------------ *)
(* Partitions. A cut is a set of directional (src, dst) pairs on one
   fabric; the check is a plain table lookup, so a plane with no cut
   configured costs one miss and zero randomness. *)

let partitioned t ~fabric ~src ~dst = Hashtbl.mem t.cuts (fabric, src, dst)

let partition t ~fabric ?(oneway = false) a b =
  if a = [] || b = [] then invalid_arg "Faults.partition: empty rank set";
  List.iter
    (fun x ->
      if List.mem x b then
        invalid_arg
          (Printf.sprintf "Faults.partition: rank %d on both sides of the cut"
             x))
    a;
  t.partitions <- t.partitions + 1;
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          Hashtbl.replace t.cuts (fabric, x, y) ();
          if not oneway then Hashtbl.replace t.cuts (fabric, y, x) ())
        b)
    a

let on_heal t f = t.heal_cbs <- f :: t.heal_cbs

let fire_heal t fabric = List.iter (fun cb -> cb fabric) (List.rev t.heal_cbs)

let heal t ~fabric =
  let stale =
    Hashtbl.fold
      (fun ((f, _, _) as key) () acc -> if f = fabric then key :: acc else acc)
      t.cuts []
  in
  if stale <> [] then begin
    t.heals <- t.heals + 1;
    List.iter (Hashtbl.remove t.cuts) stale;
    fire_heal t fabric
  end

let heal_all t =
  if Hashtbl.length t.cuts > 0 then begin
    let fabrics =
      Hashtbl.fold
        (fun (f, _, _) () acc -> if List.mem f acc then acc else f :: acc)
        t.cuts []
    in
    t.heals <- t.heals + 1;
    Hashtbl.reset t.cuts;
    List.iter (fire_heal t) (List.sort compare fabrics)
  end

(* True when the node sits on either side of an active cut on [fabric]:
   its NIC still carries its own partition's traffic, but the link as a
   whole is no longer fully connected. *)
let node_in_cut t ~fabric ~node =
  Hashtbl.length t.cuts > 0
  && Hashtbl.fold
       (fun (f, s, d) () acc -> acc || (f = fabric && (s = node || d = node)))
       t.cuts false

let link_up t ~fabric ~node =
  (not (node_in_cut t ~fabric ~node))
  &&
  match Hashtbl.find_opt t.links (fabric, node) with
  | None -> true
  | Some l -> Time.( <= ) l.down_until (Engine.now t.eng)

let epoch t node =
  match Hashtbl.find_opt t.epochs node with Some e -> e | None -> 0

let on_crash t f = t.crash_cbs <- f :: t.crash_cbs
let on_restart t f = t.restart_cbs <- f :: t.restart_cbs

let do_crash t node =
  if node_up t node then begin
    t.crashes <- t.crashes + 1;
    Hashtbl.replace t.node_down node ();
    List.iter (fun cb -> cb node) (List.rev t.crash_cbs)
  end

let do_restart t node =
  if not (node_up t node) then begin
    Hashtbl.remove t.node_down node;
    Hashtbl.replace t.epochs node (epoch t node + 1);
    List.iter (fun cb -> cb node) (List.rev t.restart_cbs)
  end

let schedule_restart t ~node ~at restart_after =
  match restart_after with
  | None -> ()
  | Some span -> Engine.at t.eng (Time.add at span) (fun () -> do_restart t node)

let crash_node t ~node ~at ?restart_after () =
  Engine.at t.eng at (fun () -> do_crash t node);
  schedule_restart t ~node ~at restart_after

let crash_now t ~node ?restart_after () =
  do_crash t node;
  schedule_restart t ~node ~at:(Engine.now t.eng) restart_after

let stall_pci t node ~at ~duration =
  t.stalls <- t.stalls + 1;
  Engine.at t.eng at (fun () ->
      Engine.spawn t.eng ~daemon:true
        ~name:(Printf.sprintf "faults.stall.%s" node.Node.name)
        (fun () ->
          (* A transfer sized to the bus capacity over [duration] with an
             overwhelming weight: fair sharing starves everyone else for
             roughly that long. *)
          let bytes_count =
            int_of_float
              (Netparams.pci_capacity_mb_s *. 1e6 *. Time.to_s duration)
          in
          Fluid.transfer node.Node.pci ~bytes_count:(max 1 bytes_count)
            ~weight:1000.0 ()))

let frame_verdict t ~fabric ~src ~dst ~fragments =
  if partitioned t ~fabric ~src ~dst then begin
    t.frames_cut <- t.frames_cut + 1;
    Drop
  end
  else if not (node_up t src && node_up t dst) then begin
    t.frames_dropped <- t.frames_dropped + 1;
    Drop
  end
  else begin
    let s = Hashtbl.find_opt t.links (fabric, src) in
    let d = Hashtbl.find_opt t.links (fabric, dst) in
    let now = Engine.now t.eng in
    let link_down = function
      | Some l -> Time.( < ) now l.down_until
      | None -> false
    in
    if link_down s || link_down d then begin
      t.frames_dropped <- t.frames_dropped + 1;
      Drop
    end
    else begin
      let get = function
        | Some l -> (l.drop_rate, l.corrupt_rate)
        | None -> (0.0, 0.0)
      in
      let sd, sc = get s and dd, dc = get d in
      let drop_rate = sd +. dd and corrupt_rate = sc +. dc in
      let verdict = ref Deliver in
      if drop_rate > 0.0 || corrupt_rate > 0.0 then begin
        (* One uniform draw per fragment decides drop vs corrupt vs
           survive; the first non-surviving fragment settles the frame. *)
        let i = ref 0 in
        while !verdict = Deliver && !i < max 1 fragments do
          let r = Rng.float t.rng 1.0 in
          if r < drop_rate then verdict := Drop
          else if r < drop_rate +. corrupt_rate then verdict := Corrupt;
          incr i
        done
      end;
      (* Duplication and reordering are whole-frame events: the NIC (or a
         misbehaving switch) replays or delays a frame it did deliver. *)
      if !verdict = Deliver then begin
        let get2 = function
          | Some l -> (l.dup_rate, l.reorder_rate, l.reorder_jitter)
          | None -> (0.0, 0.0, Time.zero)
        in
        let s_dup, s_re, s_jit = get2 s and d_dup, d_re, d_jit = get2 d in
        let dup_rate = s_dup +. d_dup and reorder_rate = s_re +. d_re in
        if dup_rate > 0.0 || reorder_rate > 0.0 then begin
          let r = Rng.float t.rng 1.0 in
          if r < dup_rate then verdict := Duplicate
          else if r < dup_rate +. reorder_rate then begin
            let jitter = max s_jit d_jit in
            let extra =
              max (Time.ns 1) (Time.span_scale jitter (Rng.float t.rng 1.0))
            in
            verdict := Delay extra
          end
        end
      end;
      (match !verdict with
      | Drop -> t.frames_dropped <- t.frames_dropped + 1
      | Corrupt -> t.frames_corrupted <- t.frames_corrupted + 1
      | Duplicate -> t.frames_duplicated <- t.frames_duplicated + 1
      | Delay _ -> t.frames_delayed <- t.frames_delayed + 1
      | Deliver -> ());
      !verdict
    end
  end

(* Heartbeats are one-fragment control frames: they vanish with a down
   node or a flapped link, and are subject to drop rates (but not to
   corruption — a corrupted heartbeat fails its checksum and counts as
   lost at the receiver, which is the same observable outcome). *)
let heartbeat t ?fabric ~src ~dst () =
  let alive = node_up t src && node_up t dst in
  let delivered =
    alive
    &&
    match fabric with
    | None -> true
    | Some fabric ->
        (not (partitioned t ~fabric ~src ~dst))
        &&
        let s = Hashtbl.find_opt t.links (fabric, src) in
        let d = Hashtbl.find_opt t.links (fabric, dst) in
        let now = Engine.now t.eng in
        let link_down = function
          | Some l -> Time.( < ) now l.down_until
          | None -> false
        in
        (not (link_down s || link_down d))
        &&
        let get = function
          | Some l -> l.drop_rate +. l.corrupt_rate
          | None -> 0.0
        in
        let loss = get s +. get d in
        loss <= 0.0 || Rng.float t.rng 1.0 >= loss
  in
  if not delivered then t.heartbeats_lost <- t.heartbeats_lost + 1;
  delivered

let corrupt_copy t b =
  let b = Bytes.copy b in
  if Bytes.length b > 0 then begin
    let i = Rng.int t.rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xFF))
  end;
  b

let stats t =
  {
    frames_dropped = t.frames_dropped;
    frames_corrupted = t.frames_corrupted;
    frames_duplicated = t.frames_duplicated;
    frames_delayed = t.frames_delayed;
    heartbeats_lost = t.heartbeats_lost;
    crashes = t.crashes;
    flaps = t.flaps;
    stalls = t.stalls;
    partitions = t.partitions;
    heals = t.heals;
    frames_cut = t.frames_cut;
  }
