(** Deterministic fault injection for the simulated fabric.

    A fault plane holds every injected failure of one world: per-link
    drop/corruption/duplication/reorder rates, scheduled link flaps,
    node crashes (with optional restart) and PCI stalls. All randomness
    comes from one {!Rng} stream seeded at creation, and all scheduling
    rides the world's single-threaded engine, so a run with a given seed
    and fault spec replays byte-identically.

    The plane itself only *decides*; transports enforce. A protocol
    stack consults {!frame_verdict} at the instant a frame would be
    delivered and reacts to [Drop]/[Corrupt]/[Duplicate]/[Delay] (see
    {!Tcpnet}); routing layers subscribe to {!on_crash}/{!on_restart} to
    fail over; failure detectors probe liveness with {!heartbeat}. Links
    and nodes with no configured fault never touch the random stream,
    so attaching a plane with zero rates leaves schedules unchanged. *)

type t

type verdict =
  | Deliver
  | Drop
  | Corrupt
  | Duplicate  (** Deliver the frame, then deliver a second copy. *)
  | Delay of Marcel.Time.span
      (** Deliver the frame late by the given extra span — past frames
          in flight, i.e. a reordering. *)

val create : Marcel.Engine.t -> seed:int64 -> t
val engine : t -> Marcel.Engine.t

(** {1 Rate-driven link faults}

    Rates are per fragment (one MTU-sized unit on the wire) for drop and
    corruption — a frame spanning [n] fragments survives only if every
    fragment does — and per frame for duplication and reordering, which
    model NIC/switch replay and queueing rather than wire noise. A link
    is identified by the fabric's name and the node id of its NIC; a
    frame is subject to the faults of both its source and destination
    links. *)

val set_drop : t -> fabric:string -> node:int -> rate:float -> unit
val set_corrupt : t -> fabric:string -> node:int -> rate:float -> unit

val set_duplicate : t -> fabric:string -> node:int -> rate:float -> unit
(** Per-frame probability that a delivered frame is delivered twice. *)

val set_reorder :
  t -> fabric:string -> node:int -> rate:float -> jitter:Marcel.Time.span ->
  unit
(** Per-frame probability that a delivered frame is held back by a
    uniform random extra delay in [(0, jitter]], letting later frames
    overtake it. *)

val slow_receiver : t -> fabric:string -> node:int -> mb_per_s:float -> unit
(** Caps the rate at which [node] drains frames arriving on [fabric] to
    [mb_per_s] MB/s — a slow receiver (PCI arbitration, a starved host)
    whose NIC accepts data slower than the wire delivers it. Enforced by
    reliable transports at the delivery point: frames queue behind a
    pacing cursor, so acknowledgments (and therefore the sender's window
    and any credit grants) slow down with the receiver. Raises
    [Invalid_argument] on a non-positive rate. Consumes no randomness —
    a throttled run is still deterministic. *)

val clear_slow_receiver : t -> fabric:string -> node:int -> unit

val rx_cap : t -> fabric:string -> node:int -> float option
(** The receive-rate cap configured with {!slow_receiver}, if any. *)

(** {1 Scheduled faults} *)

val flap_link :
  t -> fabric:string -> node:int -> at:Marcel.Time.t ->
  duration:Marcel.Time.span -> unit
(** Takes the link down at [at]; every frame touching it is dropped
    until [at + duration]. *)

val crash_node :
  t -> node:int -> at:Marcel.Time.t ->
  ?restart_after:Marcel.Time.span -> unit -> unit
(** Crashes the node at [at]: all frames to or from it are dropped and
    {!on_crash} listeners fire. With [restart_after], the node comes
    back that much later with a bumped {!epoch} (fresh NIC state) and
    {!on_restart} listeners fire. *)

val crash_now :
  t -> node:int -> ?restart_after:Marcel.Time.span -> unit -> unit
(** Same, at the current instant — usable from inside a thread that has
    observed some condition. *)

val stall_pci :
  t -> Node.t -> at:Marcel.Time.t -> duration:Marcel.Time.span -> unit
(** Monopolizes the node's PCI bus for [duration] starting at [at] (a
    saturating high-weight transfer): concurrent PIO/DMA slows to a
    crawl, modelling a misbehaving third-party device holding the bus. *)

(** {1 Partitions}

    A partition is a set of directional cuts on one fabric: every frame
    (data, ack, control) whose (src, dst) crosses a cut is consumed,
    heartbeats across it are lost, and {!link_up} reports the affected
    NICs down — the three observables a transport consults, kept
    consistent. Cuts are exact-match on rank pairs and consume no
    randomness, so a plane with no cut configured is byte-identical to
    one without the machinery. *)

val partition :
  t -> fabric:string -> ?oneway:bool -> int list -> int list -> unit
(** [partition t ~fabric a b] cuts every frame between a rank in [a] and
    a rank in [b] on [fabric], in both directions; with [~oneway:true]
    only [a] -> [b] traffic is cut (an asymmetric failure: [b] still
    reaches [a]). The sets must be non-empty and disjoint or
    [Invalid_argument] is raised. Counts into {!stats}. *)

val heal : t -> fabric:string -> unit
(** Removes every cut on [fabric]. Counts into {!stats} when at least
    one cut was removed. *)

val heal_all : t -> unit
(** Removes every cut on every fabric. *)

val partitioned : t -> fabric:string -> src:int -> dst:int -> bool
(** Whether a frame [src] -> [dst] on [fabric] currently crosses a cut
    (directional: an asymmetric cut answers true one way only). *)

(** {1 Queries and subscriptions} *)

val node_up : t -> int -> bool

val link_up : t -> fabric:string -> node:int -> bool
(** False while the link is flapped down, or while the node sits on
    either side of an active partition cut on this fabric. *)

val epoch : t -> int -> int
(** Number of times the node has restarted (0 = never crashed). *)

val on_crash : t -> (int -> unit) -> unit
(** [f node] runs at the crash instant, from an engine callback: it must
    not block, but may spawn threads. *)

val on_restart : t -> (int -> unit) -> unit

val on_heal : t -> (string -> unit) -> unit
(** [f fabric] runs whenever {!heal} (or {!heal_all}) removes at least
    one cut on [fabric] — the hook reliable transports use to revive
    connections declared dead while the partition starved their
    retransmissions. Runs synchronously from the healing call: it must
    not block, but may spawn threads. *)

val frame_verdict :
  t -> fabric:string -> src:int -> dst:int -> fragments:int -> verdict
(** The fate of one frame of [fragments] MTU units crossing [fabric]
    from [src] to [dst], drawn at the moment of delivery. Counts into
    {!stats}. *)

val heartbeat : t -> ?fabric:string -> src:int -> dst:int -> unit -> bool
(** Whether one heartbeat probe from [src] reaches [dst]: false if
    either node is down, and — when [fabric] is given — if the pair
    crosses a partition cut, the link is flapped down, or a per-fragment
    loss draw (drop + corruption rates, since a corrupted heartbeat
    fails its checksum) consumes it. Counts losses into {!stats};
    consumes randomness only on lossy links. *)

val corrupt_copy : t -> Bytes.t -> Bytes.t
(** A copy of the frame with one byte flipped at a random position —
    what the receiver actually sees under a [Corrupt] verdict. *)

type stats = {
  frames_dropped : int;
  frames_corrupted : int;
  frames_duplicated : int;
  frames_delayed : int;
  heartbeats_lost : int;
  crashes : int;
  flaps : int;
  stalls : int;
  partitions : int;  (** {!partition} calls *)
  heals : int;  (** {!heal}/{!heal_all} calls that removed a cut *)
  frames_cut : int;  (** frames consumed by partition cuts *)
}

val stats : t -> stats
