module Time = Marcel.Time

(* PCI: 33 MHz x 4 bytes = 132 MB/s raw. The 0.76 contention factor is
   calibrated so a full-duplex forwarding gateway tops out near the
   49.5 MB/s per direction observed in Fig. 10 (2 x 49.5 / 132 = 0.75). *)
let pci_capacity_mb_s = 132.0
let pci_contention_factor = 0.76

(* When CPU PIO stores interleave with NIC-mastered DMA on the same bus,
   write-combining bursts break up and arbitration turnaround dominates:
   the effective capacity drops much further than in the NIC-vs-NIC case.
   Calibrated from the paper's Fig. 11 ("sending over SCI is slowed down
   by a factor of two" while the Myrinet board receives). *)
let pci_mixed_contention_factor = 0.55
let pci_weight_pio = 1.0
let pci_weight_dma = 2.0
let pci_pio_rate_cap_mb_s = 84.0
let pci_dma_rate_cap_mb_s = 127.0

type link = { wire_lat : Time.span; wire_bw_mb_s : float; hw_mtu : int }

(* Myrinet (LANai 4.3): 1.28 Gbit/s links = 160 MB/s; sub-microsecond
   switch. BIP's asymptotic 126 MB/s is the PCI DMA bottleneck, not the
   wire. *)
let myrinet = { wire_lat = Time.us 0.9; wire_bw_mb_s = 160.0; hw_mtu = 4096 }

(* Dolphin D310 SCI: 500 MB/s ring links, very low latency; the effective
   bottleneck is the PIO write path through the PCI bridge. SCI moves data
   in small ring packets, so pipeline stages overlap at fine grain. *)
let sci = { wire_lat = Time.us 0.35; wire_bw_mb_s = 400.0; hw_mtu = 512 }

(* Fast Ethernet: 100 Mbit/s = 12.5 MB/s; latency dominated by the kernel
   network stack of Linux 2.2, accounted in tcp_{send,recv}_overhead. *)
let fast_ethernet =
  { wire_lat = Time.us 5.0; wire_bw_mb_s = 12.5; hw_mtu = 1460 }

(* BIP raw short-message latency is 5 us one-way; we split it between
   sender software, wire and receiver software. *)
let bip_send_overhead = Time.us 2.0
let bip_recv_overhead = Time.us 2.0
let bip_short_max = 1024
let bip_short_credits = 16
let bip_rendezvous_overhead = Time.us 3.0
let bip_copy_rate_mb_s = 180.0

(* SISCI: a PIO store sequence plus barrier costs well under a
   microsecond; receiver polls a flag word. Raw one-way latency for a
   small write lands near 2.5 us, leaving Madeleine's short-message TM
   the headroom to reach its published 3.9 us. *)
let sisci_pio_overhead = Time.us 0.55
let sisci_poll_overhead = Time.us 0.75
let sisci_dma_setup = Time.us 4.0
let sisci_dma_rate_cap_mb_s = 35.0
let sisci_segment_copy_rate_mb_s = 84.0

(* Linux 2.2 TCP stack: tens of microseconds per end. *)
let tcp_send_overhead = Time.us 28.0
let tcp_recv_overhead = Time.us 28.0
let tcp_rate_cap_mb_s = 11.5

let via_doorbell_overhead = Time.us 2.2
let via_completion_overhead = Time.us 1.8
let via_descriptor_max = 32 * 1024

let sbp_trap_overhead = Time.us 6.0
let sbp_buffer_size = 8192

(* PII-450 with 100 MHz SDRAM: sustained memcpy around 160 MB/s. *)
let memcpy_rate_mb_s = 160.0

(* Buffer registration (pin-down) for zero-copy RDMA: one syscall-ish
   fixed entry (mlock + translation setup) plus a per-page walk to pin
   and translate each 4 kB page. Deregistration only unpins, no
   translation rebuild, so it is cheaper. Numbers follow the published
   VIA/InfiniBand registration microbenchmarks of the era (tens of us
   for the first page, fractions of a us per page after). *)
let page_size = 4096
let reg_base = Time.us 10.0
let reg_per_page = Time.us 0.25
let dereg_base = Time.us 4.0
let dereg_per_page = Time.us 0.1

(* Busmaster RDMA engine reading pinned user pages: long aligned bursts
   on the PCI bus, so it approaches the raw DMA ceiling instead of the
   D310's descriptor-per-block 35 MB/s staging engine. *)
let sisci_rdma_rate_cap_mb_s = pci_dma_rate_cap_mb_s

(* Cost of taking a NIC interrupt and rescheduling the blocked thread
   (kernel entry, handler, wakeup) on Linux 2.2 — an order of magnitude
   above the polling detection cost, which is the whole trade-off the
   paper's planned adaptive polling/interrupt mechanism (§7) navigates. *)
let interrupt_latency = Time.us 12.0
