(** Common host-side cost charges, shared by every layer that models CPU
    work (staging copies, buffer management). *)

val memcpy : int -> unit
(** Charges the calling thread the time to copy [n] bytes through main
    memory at {!Netparams.memcpy_rate_mb_s}. Zero bytes cost nothing. *)

val pages_of : int -> int
(** Number of {!Netparams.page_size} pages spanned by [n] bytes (zero
    for non-positive [n]). *)

val pin : int -> unit
(** Charges the calling thread the registration (pin-down) cost for a
    buffer of [n] bytes: {!Netparams.reg_base} plus
    {!Netparams.reg_per_page} per page. Zero bytes cost nothing. *)

val unpin : int -> unit
(** Charges the deregistration cost for a buffer of [n] bytes:
    {!Netparams.dereg_base} plus {!Netparams.dereg_per_page} per page.
    Zero bytes cost nothing. *)
