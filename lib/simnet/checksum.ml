(* Table-driven reflected CRC-32, the Ethernet/zlib polynomial. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Checksum.crc32: out of bounds";
  let tbl = Lazy.force table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := tbl.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xFF)
         lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF
