type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create ~seed = { state = seed }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Rejection sampling over 62 uniform bits: draws falling in the
   incomplete final interval are discarded so every value in [0, bound)
   keeps probability exactly 1/bound. The draw r is uniform on [0, 2^62),
   and 2^62 itself overflows the 63-bit native int, so the limit is
   phrased via max_int = 2^62 - 1: reject the top
   excess = 2^62 mod bound values, i.e. accept r <= max_int - excess.
   For power-of-two bounds (notably 256 in [bytes]) excess is 0 and no
   draw is ever rejected, so those streams — and all payload bytes — are
   unchanged from the biased implementation. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  let excess = ((max_int mod bound) + 1) mod bound in
  let cutoff = max_int - excess in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if r > cutoff then draw () else r mod bound
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bytes t n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.unsafe_set b i (Char.chr (int t 256))
  done;
  b

let split t = { state = mix (next_int64 t) }
