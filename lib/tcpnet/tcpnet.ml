module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Pipeline = Simnet.Pipeline

(* Consumable byte queue: chunks plus a read offset into the head chunk. *)
module Bytequeue = struct
  type t = { chunks : Bytes.t Queue.t; mutable head_off : int; mutable size : int }

  let create () = { chunks = Queue.create (); head_off = 0; size = 0 }
  let length q = q.size

  let push q b =
    if Bytes.length b > 0 then begin
      Queue.push b q.chunks;
      q.size <- q.size + Bytes.length b
    end

  (* Pops up to [len] bytes into [buf] at [off]; returns count taken. *)
  let pop_into q buf ~off ~len =
    let taken = ref 0 in
    while !taken < len && q.size > 0 do
      let head = Queue.peek q.chunks in
      let avail = Bytes.length head - q.head_off in
      let want = min avail (len - !taken) in
      Bytes.blit head q.head_off buf (off + !taken) want;
      taken := !taken + want;
      q.size <- q.size - want;
      if want = avail then begin
        ignore (Queue.pop q.chunks);
        q.head_off <- 0
      end
      else q.head_off <- q.head_off + want
    done;
    !taken
end

exception Timeout of string

type conn = {
  stack : t;
  mutable peer : conn option;
  inbox : Bytequeue.t;
  mutable readers : (unit -> unit) list;
  mutable data_hooks : (unit -> unit) list;
  mutable out_stream : Simnet.Stream.t option;
      (* lazily-built FIFO delivery pipeline toward the peer *)
  (* Reliability state, live only when the fabric has a fault plane
     attached (Fabric.set_faults); on the default fault-free path none
     of these fields is ever touched. *)
  mutable tx_seq : int; (* next frame sequence number to send *)
  mutable rx_next : int; (* next frame sequence number to accept *)
  mutable acked : int; (* highest cumulatively acked sent seq *)
  mutable ack_waiters : (unit -> unit) list;
  mutable retries : int; (* total retransmissions on this conn *)
  mutable consec_fail : int; (* retransmissions since the last clean ack *)
  mutable dead : bool; (* retransmission gave up: peer unreachable *)
  mutable dead_peer_epoch : int; (* peer's restart epoch when declared dead *)
  mutable crc_rejects : int; (* corrupted frames this end discarded *)
}

and t = {
  net : net;
  host : Node.t;
  listeners : (int, conn Mailbox.t) Hashtbl.t;
}

and net = {
  engine : Engine.t;
  fabric : Fabric.t;
  stacks : (int, t) Hashtbl.t;
  mutable net_retransmissions : int;
  mutable net_crc_rejects : int;
}

let make_net engine fabric =
  {
    engine;
    fabric;
    stacks = Hashtbl.create 16;
    net_retransmissions = 0;
    net_crc_rejects = 0;
  }

let net_stats net = (net.net_retransmissions, net.net_crc_rejects)

let attach net node =
  if Hashtbl.mem net.stacks node.Node.id then
    invalid_arg "Tcpnet.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Tcpnet.attach: node not on the fabric";
  let t = { net; host = node; listeners = Hashtbl.create 8 } in
  Hashtbl.add net.stacks node.Node.id t;
  t

let node t = t.host
let engine t = t.net.engine

let listen t ~port =
  if Hashtbl.mem t.listeners port then
    invalid_arg "Tcpnet.listen: port already bound";
  Hashtbl.add t.listeners port (Mailbox.create ())

let accept t ~port =
  match Hashtbl.find_opt t.listeners port with
  | None -> invalid_arg "Tcpnet.accept: port not listening"
  | Some box -> Mailbox.take box

let fresh_conn stack =
  {
    stack;
    peer = None;
    inbox = Bytequeue.create ();
    readers = [];
    data_hooks = [];
    out_stream = None;
    tx_seq = 0;
    rx_next = 0;
    acked = -1;
    ack_waiters = [];
    retries = 0;
    consec_fail = 0;
    dead = false;
    dead_peer_epoch = 0;
    crc_rejects = 0;
  }

let set_data_hook conn hook = conn.data_hooks <- hook :: conn.data_hooks

(* One-way small-packet time: kernel path plus wire latency. *)
let hop_latency net =
  Time.span_add Netparams.tcp_send_overhead
    (Time.span_add (Fabric.link net.fabric).Netparams.wire_lat
       Netparams.tcp_recv_overhead)

let connect ?timeout t ~node_id ~port =
  let peer_stack =
    match Hashtbl.find_opt t.net.stacks node_id with
    | Some s -> s
    | None -> invalid_arg "Tcpnet.connect: unknown node"
  in
  let box =
    match Hashtbl.find_opt peer_stack.listeners port with
    | Some b -> b
    | None -> invalid_arg "Tcpnet.connect: peer not listening"
  in
  (match Fabric.faults t.net.fabric with
  | Some faults when not (Simnet.Faults.node_up faults node_id) -> (
      (* SYNs to a crashed host vanish. With a timeout we give up after
         it; without one we hang, like a real blocking connect. *)
      match timeout with
      | Some span ->
          Engine.sleep span;
          raise
            (Timeout
               (Printf.sprintf "Tcpnet.connect: node %d unreachable" node_id))
      | None -> Engine.suspend ~name:"tcp.connect" (fun _wake -> ()))
  | _ -> ());
  let local = fresh_conn t and remote = fresh_conn peer_stack in
  local.peer <- Some remote;
  remote.peer <- Some local;
  (* SYN / SYN-ACK round trip. *)
  Engine.sleep (Time.span_mul (hop_latency t.net) 2);
  Mailbox.put box remote;
  local

let socketpair a b =
  let ca = fresh_conn a and cb = fresh_conn b in
  ca.peer <- Some cb;
  cb.peer <- Some ca;
  (ca, cb)

let wake_readers conn =
  let readers = conn.readers in
  conn.readers <- [];
  List.iter (fun wake -> wake ()) readers;
  List.iter (fun hook -> hook ()) conn.data_hooks

let out_stream conn remote =
  match conn.out_stream with
  | Some st -> st
  | None ->
      let net = conn.stack.net in
      let link = Fabric.link net.fabric in
      let st =
        Simnet.Stream.create net.engine
          ~name:
            (Printf.sprintf "tcp.%d->%d" conn.stack.host.Node.id
               remote.stack.host.Node.id)
          ~stages:
            [
              Pipeline.stage
                ~use:(Simnet.Xfer.pci_use conn.stack.host Simnet.Xfer.Dma)
                "src-pci";
              Pipeline.stage
                ~use:
                  {
                    Pipeline.fluid = Fabric.tx net.fabric conn.stack.host;
                    weight = 1.0;
                    rate_cap = Some Netparams.tcp_rate_cap_mb_s;
                    cls = 0;
                  }
                ~prop:link.Netparams.wire_lat "eth-tx";
              Pipeline.stage
                ~use:
                  {
                    Pipeline.fluid = Fabric.rx net.fabric remote.stack.host;
                    weight = 1.0;
                    rate_cap = Some Netparams.tcp_rate_cap_mb_s;
                    cls = 0;
                  }
                "eth-rx";
              Pipeline.stage
                ~use:(Simnet.Xfer.pci_use remote.stack.host Simnet.Xfer.Dma)
                "dst-pci";
            ]
          ~mtu:link.Netparams.hw_mtu
      in
      conn.out_stream <- Some st;
      st

(* One kernel entry ships [staged] (already copied); delivery continues
   asynchronously in the per-connection FIFO stream, as with a real
   socket buffer. *)
let fast_transmit conn remote staged =
  let bytes_count = List.fold_left (fun n b -> n + Bytes.length b) 0 staged in
  Engine.sleep Netparams.tcp_send_overhead;
  Simnet.Stream.push (out_stream conn remote) ~bytes_count
    ~on_delivered:(fun () ->
      List.iter (Bytequeue.push remote.inbox) staged;
      wake_readers remote)

let host_id conn = conn.stack.host.Node.id

let mark_dead conn remote faults =
  conn.dead <- true;
  conn.dead_peer_epoch <- Simnet.Faults.epoch faults (host_id remote);
  remote.dead <- true;
  remote.dead_peer_epoch <- Simnet.Faults.epoch faults (host_id conn)

(* A connection declared dead stays dead until its peer host restarts
   (a later epoch): real kernels don't resurrect a reset connection, but
   our simulated endpoints are re-reachable after the NIC comes back, so
   the next send probes again. *)
let maybe_heal conn remote faults =
  if
    conn.dead
    && Simnet.Faults.node_up faults (host_id conn)
    && Simnet.Faults.node_up faults (host_id remote)
    && (Simnet.Faults.epoch faults (host_id remote) > conn.dead_peer_epoch
       || Simnet.Faults.epoch faults (host_id conn) > remote.dead_peer_epoch)
  then begin
    conn.dead <- false;
    remote.dead <- false;
    conn.consec_fail <- 0;
    remote.consec_fail <- 0
  end

let max_attempts = 12

(* Stop-and-wait with cumulative acks: one frame per [send] call, a
   CRC-32 over the payload, per-fragment drop/corruption verdicts from
   the fault plane, exponential backoff on loss and fail-fast when the
   peer host is known to be down. Only runs when a fault plane is
   attached to the fabric. *)
let reliable_transmit conn remote faults staged =
  let net = conn.stack.net in
  let engine = net.engine in
  maybe_heal conn remote faults;
  if conn.dead then
    raise
      (Timeout
         (Printf.sprintf "Tcpnet.send: connection %d->%d is dead"
            (host_id conn) (host_id remote)));
  let frame = Bytes.concat Bytes.empty staged in
  let total = Bytes.length frame in
  let crc = Simnet.Checksum.crc32 frame in
  let seq = conn.tx_seq in
  conn.tx_seq <- seq + 1;
  let mtu = (Fabric.link net.fabric).Netparams.hw_mtu in
  let fragments = max 1 ((total + mtu - 1) / mtu) in
  let fabric_name = Fabric.name net.fabric in
  let src = host_id conn and dst = host_id remote in
  let base_rto =
    Time.span_add
      (Time.span_mul (hop_latency net) 4)
      (Time.span_add
         (Time.bytes_at_rate ~bytes_count:(max total 1) ~mb_per_s:8.0)
         (Time.us 200.0))
  in
  let rto = ref base_rto in
  let attempt = ref 0 in
  let give_up () =
    mark_dead conn remote faults;
    raise
      (Timeout
         (Printf.sprintf "Tcpnet.send: %d->%d unreachable (seq %d, %d attempts)"
            src dst seq !attempt))
  in
  while conn.acked < seq do
    if conn.dead then give_up ();
    (* Fail fast once the fault plane says the peer host is down: a
       crash aborts in-flight exchanges instead of burning 12 RTOs. *)
    if not (Simnet.Faults.node_up faults src && Simnet.Faults.node_up faults dst)
    then give_up ();
    if !attempt >= max_attempts then give_up ();
    incr attempt;
    if !attempt > 1 then begin
      conn.retries <- conn.retries + 1;
      conn.consec_fail <- conn.consec_fail + 1;
      net.net_retransmissions <- net.net_retransmissions + 1
    end;
    Engine.sleep Netparams.tcp_send_overhead;
    Simnet.Stream.push (out_stream conn remote) ~bytes_count:total
      ~on_delivered:(fun () ->
        match
          Simnet.Faults.frame_verdict faults ~fabric:fabric_name ~src ~dst
            ~fragments
        with
        | Simnet.Faults.Drop -> ()
        | (Simnet.Faults.Deliver | Simnet.Faults.Corrupt) as v ->
            let data =
              if v = Simnet.Faults.Corrupt then
                Simnet.Faults.corrupt_copy faults frame
              else frame
            in
            if Simnet.Checksum.crc32 data <> crc then begin
              (* Detected corruption: discard silently, no ack — the
                 sender's RTO covers recovery. *)
              remote.crc_rejects <- remote.crc_rejects + 1;
              net.net_crc_rejects <- net.net_crc_rejects + 1
            end
            else begin
              if seq = remote.rx_next then begin
                remote.rx_next <- seq + 1;
                Bytequeue.push remote.inbox data;
                wake_readers remote
              end;
              (* Cumulative ack for everything received in order so far;
                 the ack itself rides the reverse link and can be lost. *)
              Engine.at engine
                (Time.add (Engine.now engine) (hop_latency net))
                (fun () ->
                  match
                    Simnet.Faults.frame_verdict faults ~fabric:fabric_name
                      ~src:dst ~dst:src ~fragments:1
                  with
                  | Simnet.Faults.Deliver ->
                      let ack_upto = remote.rx_next - 1 in
                      if ack_upto > conn.acked then conn.acked <- ack_upto;
                      let waiters = conn.ack_waiters in
                      conn.ack_waiters <- [];
                      List.iter (fun w -> w ()) waiters
                  | Simnet.Faults.Drop | Simnet.Faults.Corrupt -> ())
            end);
    if conn.acked < seq then begin
      let wait = !rto in
      Engine.suspend ~name:"tcp.ack" (fun wake ->
          conn.ack_waiters <- (fun () -> wake ()) :: conn.ack_waiters;
          Engine.at engine
            (Time.add (Engine.now engine) wait)
            (fun () -> wake ()));
      rto := Time.span_mul !rto 2
    end
  done;
  conn.consec_fail <- 0

let transmit conn staged =
  let remote =
    match conn.peer with
    | Some p -> p
    | None -> invalid_arg "Tcpnet.send: not connected"
  in
  match Fabric.faults conn.stack.net.fabric with
  | None -> fast_transmit conn remote staged
  | Some faults -> reliable_transmit conn remote faults staged

let send conn data = transmit conn [ Bytes.copy data ]
let send_group conn bufs = transmit conn (List.map Bytes.copy bufs)

let is_dead conn = conn.dead
let retries conn = conn.retries
let consecutive_failures conn = conn.consec_fail

let available conn = Bytequeue.length conn.inbox

let recv_raw ?deadline conn buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Tcpnet.recv: out of bounds";
  let engine = conn.stack.net.engine in
  let got = ref 0 in
  while !got < len do
    let taken = Bytequeue.pop_into conn.inbox buf ~off:(off + !got) ~len:(len - !got) in
    got := !got + taken;
    if !got < len then begin
      (match deadline with
      | Some d when Time.( <= ) d (Engine.now engine) ->
          raise (Timeout "Tcpnet.recv: timed out")
      | _ -> ());
      let timed_out = ref false in
      Engine.suspend ~name:"tcp.recv" (fun wake ->
          conn.readers <- (fun () -> wake ()) :: conn.readers;
          match deadline with
          | Some d ->
              Engine.at engine d (fun () ->
                  timed_out := true;
                  wake ())
          | None -> ());
      if !timed_out && Bytequeue.length conn.inbox = 0 then
        raise (Timeout "Tcpnet.recv: timed out")
    end
  done

let recv ?timeout conn buf ~off ~len =
  let deadline =
    match timeout with
    | None -> None
    | Some span -> Some (Time.add (Engine.now conn.stack.net.engine) span)
  in
  recv_raw ?deadline conn buf ~off ~len;
  Engine.sleep Netparams.tcp_recv_overhead

let recv_group conn slices =
  List.iter (fun (buf, off, len) -> recv_raw conn buf ~off ~len) slices;
  Engine.sleep Netparams.tcp_recv_overhead
