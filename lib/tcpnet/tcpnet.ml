module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox
module Node = Simnet.Node
module Fabric = Simnet.Fabric
module Netparams = Simnet.Netparams
module Pipeline = Simnet.Pipeline

(* Consumable byte queue: chunks plus a read offset into the head chunk. *)
module Bytequeue = struct
  type t = { chunks : Bytes.t Queue.t; mutable head_off : int; mutable size : int }

  let create () = { chunks = Queue.create (); head_off = 0; size = 0 }
  let length q = q.size

  let clear q =
    Queue.clear q.chunks;
    q.head_off <- 0;
    q.size <- 0

  let push q b =
    if Bytes.length b > 0 then begin
      Queue.push b q.chunks;
      q.size <- q.size + Bytes.length b
    end

  (* Pops up to [len] bytes into [buf] at [off]; returns count taken. *)
  let pop_into q buf ~off ~len =
    let taken = ref 0 in
    while !taken < len && q.size > 0 do
      let head = Queue.peek q.chunks in
      let avail = Bytes.length head - q.head_off in
      let want = min avail (len - !taken) in
      Bytes.blit head q.head_off buf (off + !taken) want;
      taken := !taken + want;
      q.size <- q.size - want;
      if want = avail then begin
        ignore (Queue.pop q.chunks);
        q.head_off <- 0
      end
      else q.head_off <- q.head_off + want
    done;
    !taken
end

exception Timeout of { msg : string; attempts : int }

(* One reliable-mode frame in flight: payload, integrity check and the
   retransmission bookkeeping the go-back-N sender needs. *)
type frame = {
  f_seq : int;
  f_data : Bytes.t;
  f_crc : int;
  f_fragments : int;
  f_len : int;
  mutable f_sent_at : Time.t; (* last (re)transmission instant *)
  mutable f_floor : Time.span; (* serialization lower bound for the RTO *)
  mutable f_rexmit : bool; (* retransmitted at least once (Karn's rule) *)
}

type conn = {
  stack : t;
  mutable peer : conn option;
  inbox : Bytequeue.t;
  mutable readers : (unit -> unit) list;
  mutable data_hooks : (unit -> unit) list;
  mutable out_stream : Simnet.Stream.t option;
      (* lazily-built FIFO delivery pipeline toward the peer *)
  (* Reliability state, live only when the fabric has a fault plane
     attached (Fabric.set_faults); on the default fault-free path none
     of these fields is ever touched. *)
  mutable tx_seq : int; (* next frame sequence number to send *)
  mutable rx_next : int; (* next frame sequence number to accept *)
  mutable acked : int; (* highest cumulatively acked sent seq *)
  sendq : frame Queue.t; (* in-flight window, oldest first *)
  mutable inflight_bytes : int;
  mutable srtt : float; (* smoothed RTT, microseconds *)
  mutable rttvar : float; (* RTT mean deviation, microseconds *)
  mutable have_rtt : bool;
  mutable backoff : int; (* RTO doublings since the last ack progress *)
  mutable ack_waiters : (unit -> unit) list; (* window-admission waiters *)
  mutable rtx_wake : (unit -> unit) option; (* retransmitter daemon wake *)
  mutable rtx_alive : bool;
  mutable peer_epoch_seen : int; (* peer restart epoch at last session sync *)
  mutable retries : int; (* total retransmissions on this conn *)
  mutable consec_fail : int; (* RTO expiries since the last ack progress *)
  mutable dead : bool; (* retransmission gave up: peer unreachable *)
  mutable crc_rejects : int; (* corrupted frames this end discarded *)
  mutable dup_frames : int; (* duplicate/out-of-window frames discarded *)
  mutable rx_slot : Time.t; (* slow-receiver pacing cursor (Faults.rx_cap) *)
  mutable peak_inbox : int; (* highest buffered unconsumed bytes observed *)
  mutable peak_sendq : int; (* highest in-flight window occupancy observed *)
}

and t = {
  net : net;
  host : Node.t;
  listeners : (int, conn Mailbox.t) Hashtbl.t;
}

and net = {
  engine : Engine.t;
  fabric : Fabric.t;
  stacks : (int, t) Hashtbl.t;
  window : int; (* go-back-N sender window, in frames *)
  max_retries : int; (* RTO expiries before a conn is declared dead *)
  mutable conns : conn list; (* every end ever created on this net *)
  mutable fault_hooks : bool; (* crash/restart listeners installed *)
  mutable net_retransmissions : int;
  mutable net_crc_rejects : int;
  mutable net_handshakes : int; (* crash-epoch session resyncs performed *)
}

let make_net ?(window = 8) ?(max_retries = 12) engine fabric =
  if window < 1 then invalid_arg "Tcpnet.make_net: window must be >= 1";
  if max_retries < 1 then invalid_arg "Tcpnet.make_net: max_retries must be >= 1";
  {
    engine;
    fabric;
    stacks = Hashtbl.create 16;
    window;
    max_retries;
    conns = [];
    fault_hooks = false;
    net_retransmissions = 0;
    net_crc_rejects = 0;
    net_handshakes = 0;
  }

let net_stats net = (net.net_retransmissions, net.net_crc_rejects)
let net_handshakes net = net.net_handshakes
let net_window net = net.window

let attach net node =
  if Hashtbl.mem net.stacks node.Node.id then
    invalid_arg "Tcpnet.attach: node already attached";
  if not (Fabric.attached net.fabric node) then
    invalid_arg "Tcpnet.attach: node not on the fabric";
  let t = { net; host = node; listeners = Hashtbl.create 8 } in
  Hashtbl.add net.stacks node.Node.id t;
  t

let node t = t.host
let engine t = t.net.engine
let fabric_name t = Fabric.name t.net.fabric

let listen t ~port =
  if Hashtbl.mem t.listeners port then
    invalid_arg "Tcpnet.listen: port already bound";
  Hashtbl.add t.listeners port (Mailbox.create ())

let accept t ~port =
  match Hashtbl.find_opt t.listeners port with
  | None -> invalid_arg "Tcpnet.accept: port not listening"
  | Some box -> Mailbox.take box

let fresh_conn stack =
  let c =
  {
    stack;
    peer = None;
    inbox = Bytequeue.create ();
    readers = [];
    data_hooks = [];
    out_stream = None;
    tx_seq = 0;
    rx_next = 0;
    acked = -1;
    sendq = Queue.create ();
    inflight_bytes = 0;
    srtt = 0.0;
    rttvar = 0.0;
    have_rtt = false;
    backoff = 0;
    ack_waiters = [];
    rtx_wake = None;
    rtx_alive = false;
    peer_epoch_seen = -1;
    retries = 0;
    consec_fail = 0;
    dead = false;
    crc_rejects = 0;
    dup_frames = 0;
    rx_slot = Time.zero;
    peak_inbox = 0;
    peak_sendq = 0;
  }
  in
  stack.net.conns <- c :: stack.net.conns;
  c

let set_data_hook conn hook = conn.data_hooks <- hook :: conn.data_hooks

(* One-way small-packet time: kernel path plus wire latency. *)
let hop_latency net =
  Time.span_add Netparams.tcp_send_overhead
    (Time.span_add (Fabric.link net.fabric).Netparams.wire_lat
       Netparams.tcp_recv_overhead)

let connect ?timeout t ~node_id ~port =
  let peer_stack =
    match Hashtbl.find_opt t.net.stacks node_id with
    | Some s -> s
    | None -> invalid_arg "Tcpnet.connect: unknown node"
  in
  let box =
    match Hashtbl.find_opt peer_stack.listeners port with
    | Some b -> b
    | None -> invalid_arg "Tcpnet.connect: peer not listening"
  in
  (match Fabric.faults t.net.fabric with
  | Some faults when not (Simnet.Faults.node_up faults node_id) -> (
      (* SYNs to a crashed host vanish. With a timeout we give up after
         it; without one we hang, like a real blocking connect. *)
      match timeout with
      | Some span ->
          Engine.sleep span;
          raise
            (Timeout
               {
                 msg =
                   Printf.sprintf "Tcpnet.connect: node %d unreachable" node_id;
                 attempts = 0;
               })
      | None -> Engine.suspend ~name:"tcp.connect" (fun _wake -> ()))
  | _ -> ());
  let local = fresh_conn t and remote = fresh_conn peer_stack in
  local.peer <- Some remote;
  remote.peer <- Some local;
  (* SYN / SYN-ACK round trip. *)
  Engine.sleep (Time.span_mul (hop_latency t.net) 2);
  Mailbox.put box remote;
  local

let socketpair a b =
  let ca = fresh_conn a and cb = fresh_conn b in
  ca.peer <- Some cb;
  cb.peer <- Some ca;
  (ca, cb)

let wake_readers conn =
  let readers = conn.readers in
  conn.readers <- [];
  List.iter (fun wake -> wake ()) readers;
  List.iter (fun hook -> hook ()) conn.data_hooks

let push_inbox conn data =
  Bytequeue.push conn.inbox data;
  let n = Bytequeue.length conn.inbox in
  if n > conn.peak_inbox then conn.peak_inbox <- n

let out_stream conn remote =
  match conn.out_stream with
  | Some st -> st
  | None ->
      let net = conn.stack.net in
      let link = Fabric.link net.fabric in
      let st =
        Simnet.Stream.create net.engine
          ~name:
            (Printf.sprintf "tcp.%d->%d" conn.stack.host.Node.id
               remote.stack.host.Node.id)
          ~stages:
            [
              Pipeline.stage
                ~use:(Simnet.Xfer.pci_use conn.stack.host Simnet.Xfer.Dma)
                "src-pci";
              Pipeline.stage
                ~use:
                  {
                    Pipeline.fluid = Fabric.tx net.fabric conn.stack.host;
                    weight = 1.0;
                    rate_cap = Some Netparams.tcp_rate_cap_mb_s;
                    cls = 0;
                  }
                ~prop:link.Netparams.wire_lat "eth-tx";
              Pipeline.stage
                ~use:
                  {
                    Pipeline.fluid = Fabric.rx net.fabric remote.stack.host;
                    weight = 1.0;
                    rate_cap = Some Netparams.tcp_rate_cap_mb_s;
                    cls = 0;
                  }
                "eth-rx";
              Pipeline.stage
                ~use:(Simnet.Xfer.pci_use remote.stack.host Simnet.Xfer.Dma)
                "dst-pci";
            ]
          ~mtu:link.Netparams.hw_mtu
      in
      conn.out_stream <- Some st;
      st

(* One kernel entry ships [staged] (already copied); delivery continues
   asynchronously in the per-connection FIFO stream, as with a real
   socket buffer. *)
let fast_transmit conn remote staged =
  let bytes_count = List.fold_left (fun n b -> n + Bytes.length b) 0 staged in
  Engine.sleep Netparams.tcp_send_overhead;
  Simnet.Stream.push (out_stream conn remote) ~bytes_count
    ~on_delivered:(fun () ->
      List.iter (push_inbox remote) staged;
      wake_readers remote)

let host_id conn = conn.stack.host.Node.id

(* ------------------------------------------------------------------ *)
(* Reliable mode: go-back-N sliding window with adaptive RTO and       *)
(* crash-epoch session resync. Only runs when a fault plane is         *)
(* attached to the fabric; the fast path above is never touched.       *)
(* ------------------------------------------------------------------ *)

let wake_acked conn =
  let waiters = conn.ack_waiters in
  conn.ack_waiters <- [];
  List.iter (fun w -> w ()) waiters

let wake_rtx conn = match conn.rtx_wake with Some w -> w () | None -> ()

(* A conn declared dead stays dead until one of the hosts restarts with
   a bumped epoch, at which point [session_resync] revives it. Readers
   are woken too: bytes they are waiting for may never arrive, and
   [recv] turns that into a {!Timeout} from their own context. *)
let mark_dead conn remote =
  conn.dead <- true;
  remote.dead <- true;
  wake_acked conn;
  wake_acked remote;
  wake_rtx conn;
  wake_rtx remote;
  wake_readers conn;
  wake_readers remote

(* A read (or a window wait) on this end cannot make progress: the conn
   gave up, or either host is down right now. A blocked receiver must
   not outwait this — the missing bytes died in the crashed host's
   socket buffer and will never be retransmitted. *)
let conn_unreachable conn =
  conn.dead
  ||
  match Fabric.faults conn.stack.net.fabric with
  | None -> false
  | Some faults ->
      (not (Simnet.Faults.node_up faults conn.stack.host.Node.id))
      || (match conn.peer with
         | Some peer ->
             not (Simnet.Faults.node_up faults peer.stack.host.Node.id)
         | None -> false)

(* Socket reset at restart: the rebooted host's TCP state died with it,
   so both directions of every conn touching it start over — in-flight
   frames and unconsumed buffered bytes of the old epoch are discarded
   (as with ECONNRESET) and the session layer above replays whole
   packets from its origin-side logs. Sequence counters keep running so
   the survivor's cursor arithmetic stays monotonic. Idempotent: the
   restart hook visits both ends of a pair. *)
let reset_socket conn remote =
  let purge c =
    Queue.clear c.sendq;
    c.inflight_bytes <- 0;
    c.acked <- c.tx_seq - 1;
    c.have_rtt <- false;
    c.backoff <- 0;
    c.consec_fail <- 0;
    c.rx_slot <- Time.zero;
    Bytequeue.clear c.inbox
  in
  purge conn;
  purge remote;
  conn.rx_next <- remote.tx_seq;
  remote.rx_next <- conn.tx_seq;
  wake_acked conn;
  wake_acked remote;
  wake_rtx conn;
  wake_rtx remote;
  wake_readers conn;
  wake_readers remote

(* Crash/restart listeners, installed once per net at the first reliable
   use. On a crash, every blocked reader and window waiter touching the
   node is woken so it can observe [conn_unreachable] and fail from its
   own context instead of outwaiting a send that will never complete; on
   a restart, the sockets are reset before any new byte can flow. *)
let install_fault_hooks net faults =
  if not net.fault_hooks then begin
    net.fault_hooks <- true;
    let each_pair node f =
      List.iter
        (fun c ->
          match c.peer with
          | Some peer
            when c.stack.host.Node.id = node
                 || peer.stack.host.Node.id = node ->
              f c peer
          | _ -> ())
        net.conns
    in
    Simnet.Faults.on_crash faults (fun node ->
        each_pair node (fun c _peer ->
            wake_acked c;
            wake_readers c));
    Simnet.Faults.on_restart faults (fun node ->
        each_pair node (fun c peer -> reset_socket c peer));
    (* A partition starves retransmissions until [max_retries] declares
       the conn dead, but neither host crashed — so no epoch ever moves
       and [session_resync] would leave it dead forever. Healing the
       fabric revives such conns directly: the socket state is reset
       (in-flight frames of the cut era are gone for good, exactly as
       after a restart) and the session layer above replays from its
       origin-side logs. Conns dead because a host is still down are
       left for the restart path. *)
    Simnet.Faults.on_heal faults (fun fabric ->
        if Fabric.name net.fabric = fabric then
          List.iter
            (fun c ->
              match c.peer with
              | Some peer
                when c.dead
                     && Simnet.Faults.node_up faults (host_id c)
                     && Simnet.Faults.node_up faults (host_id peer) ->
                  reset_socket c peer;
                  c.dead <- false;
                  peer.dead <- false
              | _ -> ())
            net.conns)
  end

(* Serialization lower bound for one frame's RTO, given every byte
   queued ahead of it (including itself): four small-packet hops plus
   the queued bytes at a conservative 8 MB/s plus scheduling slack.
   This is the same bound the stop-and-wait path used, extended to the
   window case: with several frames in flight, a later frame's ack
   cannot arrive before the earlier frames have drained the wire, so
   the floor must cover the cumulative backlog or a loss-free world
   would retransmit spuriously. When the fault plane caps the
   receiver's drain rate ({!Simnet.Faults.slow_receiver}), the capped
   drain is one more serial stage after the wire, so the floor adds the
   backlog at the capped rate on top — otherwise a
   throttled-but-lossless receiver looks like a dead one and go-back-N
   storms it. Without a cap the floor is unchanged. *)
let frame_floor net ~rx_cap ~queued_bytes =
  let qb = max queued_bytes 1 in
  let base =
    Time.span_add
      (Time.span_mul (hop_latency net) 4)
      (Time.span_add
         (Time.bytes_at_rate ~bytes_count:qb ~mb_per_s:8.0)
         (Time.us 200.0))
  in
  match rx_cap with
  | None -> base
  | Some cap ->
      Time.span_add base (Time.bytes_at_rate ~bytes_count:qb ~mb_per_s:cap)

let rx_cap_of net remote =
  match Fabric.faults net.fabric with
  | None -> None
  | Some faults ->
      Simnet.Faults.rx_cap faults ~fabric:(Fabric.name net.fabric)
        ~node:remote.stack.host.Node.id

(* Jacobson/Karel: srtt += err/8, rttvar += (|err| - rttvar)/4. *)
let rtt_sample conn rtt =
  let rtt_us = Time.to_us rtt in
  if not conn.have_rtt then begin
    conn.srtt <- rtt_us;
    conn.rttvar <- rtt_us /. 2.0;
    conn.have_rtt <- true
  end
  else begin
    let err = rtt_us -. conn.srtt in
    conn.srtt <- conn.srtt +. (err /. 8.0);
    conn.rttvar <- conn.rttvar +. ((Float.abs err -. conn.rttvar) /. 4.0)
  end

(* Current RTO for [f]: max(adaptive estimate, per-frame serialization
   floor), doubled per consecutive expiry (Karn's backoff). *)
let cur_rto conn f =
  let adaptive =
    if conn.have_rtt then
      Time.us (conn.srtt +. Float.max (4.0 *. conn.rttvar) 100.0)
    else f.f_floor
  in
  let base = max f.f_floor adaptive in
  Time.span_mul base (1 lsl min conn.backoff 10)

let rec apply_ack conn ack_upto =
  if ack_upto > conn.acked then begin
    let now = Engine.now conn.stack.net.engine in
    conn.acked <- ack_upto;
    while
      (not (Queue.is_empty conn.sendq))
      && (Queue.peek conn.sendq).f_seq <= ack_upto
    do
      let f = Queue.pop conn.sendq in
      conn.inflight_bytes <- conn.inflight_bytes - f.f_len;
      (* Karn's rule: never sample RTT from a retransmitted frame. *)
      if not f.f_rexmit then rtt_sample conn (Time.diff now f.f_sent_at)
    done;
    conn.backoff <- 0;
    conn.consec_fail <- 0;
    wake_acked conn;
    wake_rtx conn
  end

(* Cumulative ack (including dup-acks for out-of-order frames): rides
   the reverse link one hop later and is itself subject to the plane. *)
and schedule_ack conn remote faults =
  let net = conn.stack.net in
  let engine = net.engine in
  let fabric_name = Fabric.name net.fabric in
  let src = host_id conn and dst = host_id remote in
  let ack_upto = remote.rx_next - 1 in
  Engine.at engine
    (Time.add (Engine.now engine) (hop_latency net))
    (fun () ->
      match
        Simnet.Faults.frame_verdict faults ~fabric:fabric_name ~src:dst
          ~dst:src ~fragments:1
      with
      | Simnet.Faults.Deliver | Simnet.Faults.Duplicate ->
          apply_ack conn ack_upto
      | Simnet.Faults.Delay span ->
          Engine.at engine
            (Time.add (Engine.now engine) span)
            (fun () -> apply_ack conn ack_upto)
      | Simnet.Faults.Drop | Simnet.Faults.Corrupt -> ())

(* Ship one frame toward the peer; the receiver-side fate (verdict, CRC
   check, in-order delivery, cumulative ack) runs at delivery time. *)
and push_wire conn remote faults f =
  let net = conn.stack.net in
  let engine = net.engine in
  let fabric_name = Fabric.name net.fabric in
  let src = host_id conn and dst = host_id remote in
  Engine.sleep Netparams.tcp_send_overhead;
  f.f_sent_at <- Engine.now engine;
  Simnet.Stream.push (out_stream conn remote) ~bytes_count:f.f_len
    ~on_delivered:(fun () ->
      let process data =
        if Simnet.Checksum.crc32 data <> f.f_crc then begin
          (* Detected corruption: discard silently, no ack — the
             sender's RTO covers recovery. *)
          remote.crc_rejects <- remote.crc_rejects + 1;
          net.net_crc_rejects <- net.net_crc_rejects + 1
        end
        else begin
          if f.f_seq = remote.rx_next then begin
            remote.rx_next <- f.f_seq + 1;
            push_inbox remote data;
            wake_readers remote
          end
          else remote.dup_frames <- remote.dup_frames + 1;
          schedule_ack conn remote faults
        end
      in
      (* Slow-receiver throttle: a capped destination drains delivered
         frames through a monotonic per-conn pacing cursor (FIFO order
         preserved: each frame advances the cursor by its own
         serialization time at the capped rate). Without a cap the
         frame is processed at delivery time, untouched. *)
      let paced run =
        match Simnet.Faults.rx_cap faults ~fabric:fabric_name ~node:dst with
        | None -> run ()
        | Some cap ->
            let now = Engine.now engine in
            let start =
              if Time.( < ) now remote.rx_slot then remote.rx_slot else now
            in
            let fin =
              Time.add start
                (Time.bytes_at_rate ~bytes_count:f.f_len ~mb_per_s:cap)
            in
            remote.rx_slot <- fin;
            Engine.at engine fin run
      in
      match
        Simnet.Faults.frame_verdict faults ~fabric:fabric_name ~src ~dst
          ~fragments:f.f_fragments
      with
      | Simnet.Faults.Drop -> ()
      | Simnet.Faults.Deliver -> paced (fun () -> process f.f_data)
      | Simnet.Faults.Corrupt ->
          let garbled = Simnet.Faults.corrupt_copy faults f.f_data in
          paced (fun () -> process garbled)
      | Simnet.Faults.Duplicate ->
          paced (fun () -> process f.f_data);
          paced (fun () -> process f.f_data)
      | Simnet.Faults.Delay span ->
          Engine.at engine
            (Time.add (Engine.now engine) span)
            (fun () -> paced (fun () -> process f.f_data)))

(* First reliable use of a conn pins the peer epochs it was established
   under, so a restart that predates the conn is not mistaken for a
   crash of the session. *)
let ensure_epoch_baseline conn remote faults =
  if conn.peer_epoch_seen < 0 then
    conn.peer_epoch_seen <- Simnet.Faults.epoch faults (host_id remote);
  if remote.peer_epoch_seen < 0 then
    remote.peer_epoch_seen <- Simnet.Faults.epoch faults (host_id conn)

(* Crash-epoch session handshake. When either host has restarted since
   the last sync (its fault-plane epoch moved past what this session
   recorded), the peers exchange (epoch, delivery cursor, send cursor)
   over one round trip and the conn comes back to life; the socket
   state itself was already reset at the restart instant
   ({!reset_socket}), so the handshake's job is agreement and revival.
   Callers re-check the epoch after the handshake RTT so concurrent
   syncs collapse into one. *)
let session_resync conn remote faults =
  let net = conn.stack.net in
  let need () =
    Simnet.Faults.epoch faults (host_id remote) > conn.peer_epoch_seen
    || Simnet.Faults.epoch faults (host_id conn) > remote.peer_epoch_seen
  in
  let both_up () =
    Simnet.Faults.node_up faults (host_id conn)
    && Simnet.Faults.node_up faults (host_id remote)
  in
  if need () && both_up () then begin
    Engine.sleep (Time.span_mul (hop_latency net) 2);
    if need () && both_up () then begin
      conn.peer_epoch_seen <- Simnet.Faults.epoch faults (host_id remote);
      remote.peer_epoch_seen <- Simnet.Faults.epoch faults (host_id conn);
      List.iter
        (fun c ->
          c.dead <- false;
          c.have_rtt <- false;
          c.backoff <- 0;
          c.consec_fail <- 0)
        [ conn; remote ];
      net.net_handshakes <- net.net_handshakes + 1;
      wake_acked conn;
      wake_acked remote;
      wake_rtx conn;
      wake_rtx remote
    end
  end

(* One RTO expiry on the oldest in-flight frame: resync if an epoch
   moved, fail fast if a host is down, give up past the retry budget,
   otherwise go-back-N — retransmit the whole window, oldest first. *)
let on_expiry conn remote faults =
  let net = conn.stack.net in
  session_resync conn remote faults;
  if (not conn.dead) && not (Queue.is_empty conn.sendq) then begin
    let src = host_id conn and dst = host_id remote in
    if
      not (Simnet.Faults.node_up faults src && Simnet.Faults.node_up faults dst)
    then mark_dead conn remote
    else begin
      conn.consec_fail <- conn.consec_fail + 1;
      if conn.consec_fail >= net.max_retries then mark_dead conn remote
      else begin
        conn.backoff <- min (conn.backoff + 1) 10;
        let frames = List.of_seq (Queue.to_seq conn.sendq) in
        let rx_cap = rx_cap_of net remote in
        (* A capped receiver drains the original copies too: the resent
           duplicates queue behind everything still unacked, so their
           floors must cover the whole in-flight backlog or the spurious
           expiry repeats until backoff catches up. *)
        let backlog =
          match rx_cap with Some _ -> conn.inflight_bytes | None -> 0
        in
        let cum = ref 0 in
        List.iter
          (fun f ->
            (* Acks may land between resends; skip what they covered. *)
            if f.f_seq > conn.acked && not conn.dead then begin
              cum := !cum + f.f_len;
              f.f_floor <-
                frame_floor net ~rx_cap ~queued_bytes:(backlog + !cum);
              f.f_rexmit <- true;
              conn.retries <- conn.retries + 1;
              net.net_retransmissions <- net.net_retransmissions + 1;
              push_wire conn remote faults f
            end)
          frames
      end
    end
  end

(* Per-conn retransmitter: a daemon thread that owns the RTO clock. It
   parks (suspended, no pending timer) whenever nothing is in flight so
   the event queue can drain and the engine can quiesce; senders re-arm
   it via [wake_rtx] when they enqueue. Daemons must not raise, so
   giving up marks the conn dead and wakes the blocked senders, which
   raise [Timeout] from their own context. *)
let rec rtx_loop conn remote faults =
  let engine = conn.stack.net.engine in
  if Queue.is_empty conn.sendq || conn.dead then begin
    Engine.suspend ~name:"tcp.rtx.park" (fun wake -> conn.rtx_wake <- Some wake);
    conn.rtx_wake <- None;
    rtx_loop conn remote faults
  end
  else begin
    let f = Queue.peek conn.sendq in
    let deadline = Time.add f.f_sent_at (cur_rto conn f) in
    let now = Engine.now engine in
    if Time.( < ) now deadline then begin
      Engine.suspend ~name:"tcp.rtx.wait" (fun wake ->
          conn.rtx_wake <- Some wake;
          Engine.at engine deadline (fun () -> wake ()));
      conn.rtx_wake <- None;
      rtx_loop conn remote faults
    end
    else begin
      on_expiry conn remote faults;
      rtx_loop conn remote faults
    end
  end

let ensure_rtx conn remote faults =
  if not conn.rtx_alive then begin
    conn.rtx_alive <- true;
    Engine.spawn conn.stack.net.engine ~daemon:true
      ~name:(Printf.sprintf "tcp.rtx.%d->%d" (host_id conn) (host_id remote))
      (fun () -> rtx_loop conn remote faults)
  end

(* Windowed reliable send: blocks only for window admission (and for
   the session handshake after a restart); delivery and recovery are
   driven by the retransmitter daemon, so a sender may exit with frames
   still in flight and the transfer completes behind it. *)
let reliable_send conn remote faults staged =
  let net = conn.stack.net in
  install_fault_hooks net faults;
  ensure_epoch_baseline conn remote faults;
  session_resync conn remote faults;
  let src = host_id conn and dst = host_id remote in
  let fail msg = raise (Timeout { msg; attempts = conn.consec_fail }) in
  if conn.dead then
    fail (Printf.sprintf "Tcpnet.send: connection %d->%d is dead" src dst);
  if
    not (Simnet.Faults.node_up faults src && Simnet.Faults.node_up faults dst)
  then begin
    mark_dead conn remote;
    fail (Printf.sprintf "Tcpnet.send: %d->%d unreachable" src dst)
  end;
  while
    (not (conn_unreachable conn)) && Queue.length conn.sendq >= net.window
  do
    Engine.suspend ~name:"tcp.window" (fun wake ->
        conn.ack_waiters <- wake :: conn.ack_waiters)
  done;
  if conn_unreachable conn then begin
    mark_dead conn remote;
    fail (Printf.sprintf "Tcpnet.send: %d->%d unreachable" src dst)
  end;
  let data = Bytes.concat Bytes.empty staged in
  let total = Bytes.length data in
  let mtu = (Fabric.link net.fabric).Netparams.hw_mtu in
  let seq = conn.tx_seq in
  conn.tx_seq <- seq + 1;
  conn.inflight_bytes <- conn.inflight_bytes + total;
  let f =
    {
      f_seq = seq;
      f_data = data;
      f_crc = Simnet.Checksum.crc32 data;
      f_fragments = max 1 ((total + mtu - 1) / mtu);
      f_len = total;
      f_sent_at = Engine.now net.engine;
      f_floor =
        frame_floor net ~rx_cap:(rx_cap_of net remote)
          ~queued_bytes:conn.inflight_bytes;
      f_rexmit = false;
    }
  in
  Queue.push f conn.sendq;
  let depth = Queue.length conn.sendq in
  if depth > conn.peak_sendq then conn.peak_sendq <- depth;
  ensure_rtx conn remote faults;
  push_wire conn remote faults f;
  wake_rtx conn

let transmit conn staged =
  let remote =
    match conn.peer with
    | Some p -> p
    | None -> invalid_arg "Tcpnet.send: not connected"
  in
  match Fabric.faults conn.stack.net.fabric with
  | None -> fast_transmit conn remote staged
  | Some faults -> reliable_send conn remote faults staged

let send conn data = transmit conn [ Bytes.copy data ]
let send_group conn bufs = transmit conn (List.map Bytes.copy bufs)

let is_dead conn = conn.dead
let retries conn = conn.retries
let consecutive_failures conn = conn.consec_fail
let duplicate_frames conn = conn.dup_frames
let in_flight conn = Queue.length conn.sendq
let srtt_us conn = if conn.have_rtt then Some conn.srtt else None
let inbox_peak conn = conn.peak_inbox
let sendq_peak conn = conn.peak_sendq

let queue_peaks net =
  List.fold_left
    (fun (inb, sq) c -> (max inb c.peak_inbox, max sq c.peak_sendq))
    (0, 0) net.conns

let available conn = Bytequeue.length conn.inbox

let recv_raw ?deadline conn buf ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg "Tcpnet.recv: out of bounds";
  let engine = conn.stack.net.engine in
  let got = ref 0 in
  while !got < len do
    let taken = Bytequeue.pop_into conn.inbox buf ~off:(off + !got) ~len:(len - !got) in
    got := !got + taken;
    if !got < len then begin
      (* Nothing buffered and the peer's socket state is gone: the rest
         of this read can never arrive (a crashed sender's in-flight
         frames died with it; a restart resets the stream). Waiting
         would park this thread forever — fail it so the layer above
         can abandon the partial message and replay whole packets. *)
      if conn_unreachable conn then
        raise
          (Timeout
             {
               msg = "Tcpnet.recv: peer unreachable";
               attempts = conn.consec_fail;
             });
      (match deadline with
      | Some d when Time.( <= ) d (Engine.now engine) ->
          raise (Timeout { msg = "Tcpnet.recv: timed out"; attempts = 0 })
      | _ -> ());
      let timed_out = ref false in
      Engine.suspend ~name:"tcp.recv" (fun wake ->
          conn.readers <- (fun () -> wake ()) :: conn.readers;
          match deadline with
          | Some d ->
              Engine.at engine d (fun () ->
                  timed_out := true;
                  wake ())
          | None -> ());
      if !timed_out && Bytequeue.length conn.inbox = 0 then
        raise (Timeout { msg = "Tcpnet.recv: timed out"; attempts = 0 })
    end
  done

let recv ?timeout conn buf ~off ~len =
  let deadline =
    match timeout with
    | None -> None
    | Some span -> Some (Time.add (Engine.now conn.stack.net.engine) span)
  in
  recv_raw ?deadline conn buf ~off ~len;
  Engine.sleep Netparams.tcp_recv_overhead

let recv_group conn slices =
  List.iter (fun (buf, off, len) -> recv_raw conn buf ~off ~len) slices;
  Engine.sleep Netparams.tcp_recv_overhead
