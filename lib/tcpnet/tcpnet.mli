(** Simulated TCP streams over Fast Ethernet.

    Models the Linux 2.2 kernel path of the paper's testbed: tens of
    microseconds of per-operation system-call and stack overhead, and an
    effective payload bandwidth slightly under the 12.5 MB/s wire rate.
    Streams deliver bytes reliably and in order; message boundaries are
    not preserved (it is a byte stream, so [recv] may assemble bytes from
    several sends).

    When the underlying fabric has a fault plane attached
    ({!Simnet.Fabric.set_faults}), every [send] becomes one checksummed,
    sequence-numbered frame in a go-back-N sliding window: up to
    [window] frames ride the wire at once, acknowledgements are
    cumulative, the retransmission timer adapts to the measured RTT
    (Jacobson/Karel SRTT/RTTVAR on the simulated clock, Karn's rule on
    retransmits) and corruption is detected by CRC-32 and treated as
    loss. A peer the plane reports crashed fails sends fast with
    {!Timeout}; if it later restarts with a bumped epoch, the next send
    (or pending retransmission) performs a session handshake that
    resynchronizes both ends' cursors and replays the survivor's unacked
    frames. Without a fault plane (the default) the original fault-free
    path runs, bit for bit. *)

exception Timeout of { msg : string; attempts : int }
(** A [?timeout] expired, or the peer host is unreachable. [attempts] is
    the count of consecutive RTO expiries when the connection was given
    up (0 for plain receive/connect timeouts). *)

type net
type t
(** A host TCP stack. *)

type conn
(** One end of an established stream. *)

val make_net :
  ?window:int -> ?max_retries:int -> Marcel.Engine.t -> Simnet.Fabric.t -> net
(** [window] (default 8, >= 1) is the go-back-N sender window in frames;
    [max_retries] (default 12, >= 1) is the number of consecutive RTO
    expiries after which a connection is declared dead. Both only matter
    under a fault plane. *)

val attach : net -> Simnet.Node.t -> t
val node : t -> Simnet.Node.t
val engine : t -> Marcel.Engine.t

val fabric_name : t -> string
(** Name of the fabric this stack's frames cross (for fabric-scoped
    failure-detector heartbeats). *)

val net_stats : net -> int * int
(** [(retransmissions, crc_rejects)] summed over every connection of the
    net — both zero unless a fault plane is attached. *)

val net_handshakes : net -> int
(** Crash-epoch session handshakes performed across the net. *)

val net_window : net -> int

val listen : t -> port:int -> unit
(** Opens a passive socket. Raises [Invalid_argument] if the port is
    already bound on this host. *)

val accept : t -> port:int -> conn
(** Blocks for the next incoming connection on [port] (which must be
    listening). *)

val connect : ?timeout:Marcel.Time.span -> t -> node_id:int -> port:int -> conn
(** Active open; pays one round trip of handshake. Raises
    [Invalid_argument] if the target is unknown or not listening. If a
    fault plane reports the target host down, the SYN is lost: with
    [?timeout] the call raises {!Timeout} after that span; without it,
    the call blocks until the engine stalls (like a blocking [connect]
    with no timer). *)

val socketpair : t -> t -> conn * conn
(** Pre-established connection between two hosts, as set up during a
    communication library's session initialization (no handshake is
    charged; session bootstrap is outside the paper's measurements).
    Returns the two ends in argument order. *)

val send : conn -> Bytes.t -> unit
(** Blocks for the kernel send path; returns when the payload has been
    handed to the stack (socket-buffer semantics), with delivery
    continuing asynchronously. Under a fault plane, additionally blocks
    while the send window is full; recovery is then driven by a per-conn
    retransmitter daemon, so the call returns with the frame still in
    flight and raises {!Timeout} only if the connection is (or becomes,
    while waiting for window space) dead. *)

val recv :
  ?timeout:Marcel.Time.span -> conn -> Bytes.t -> off:int -> len:int -> unit
(** Reads exactly [len] bytes into [buf] at [off], blocking as needed.
    With [?timeout], raises {!Timeout} if the bytes have not all arrived
    within that span. *)

val available : conn -> int
(** Bytes currently buffered for reading. *)

val send_group : conn -> Bytes.t list -> unit
(** Scatter-gather send ([writev]): ships several buffers while paying the
    kernel entry cost only once. *)

val recv_group : conn -> (Bytes.t * int * int) list -> unit
(** Gather receive ([readv]): fills each [(buf, off, len)] slice in order,
    paying the kernel exit cost only once. *)

val set_data_hook : conn -> (unit -> unit) -> unit
(** [hook] fires whenever newly delivered bytes become readable on this
    connection (used by Madeleine's any-source message detection). *)

(** {1 Connection health} — meaningful only under a fault plane. *)

val is_dead : conn -> bool
(** Retransmission gave up on this connection; sends fail fast with
    {!Timeout} until the peer host restarts (new fault-plane epoch). *)

val retries : conn -> int
(** Total retransmissions performed on this end of the connection. *)

val consecutive_failures : conn -> int
(** Consecutive RTO expiries since the last acknowledged progress — the
    driver maps this to a [Degraded] peer-health report. *)

val duplicate_frames : conn -> int
(** Frames this end received but discarded as duplicate or out of
    order (go-back-N accepts only the next expected sequence). *)

val in_flight : conn -> int
(** Frames currently unacknowledged in this end's send window. *)

val srtt_us : conn -> float option
(** Smoothed RTT estimate in microseconds, once at least one clean
    (non-retransmitted) sample has been taken. *)

(** {1 Queue instrumentation} — peak occupancy of the stack's two
    buffering points, for backpressure invariant checks. A receiver
    throttled by {!Simnet.Faults.slow_receiver} drains delivered frames
    through a per-connection pacing cursor at the capped rate (FIFO
    order preserved); the retransmission-timer floor uses the capped
    rate too, so a slow-but-lossless receiver is never mistaken for a
    dead one. Without a cap (and without a fault plane) the delivery
    path is untouched. *)

val inbox_peak : conn -> int
(** Highest number of delivered-but-unconsumed bytes ever buffered on
    this end. *)

val sendq_peak : conn -> int
(** Highest go-back-N window occupancy (frames) ever reached by this
    end — never exceeds the net's [window]. *)

val queue_peaks : net -> int * int
(** [(inbox bytes, sendq frames)] — the maxima of the two peaks above
    over every connection of the net. *)
