(** A small MPI: point-to-point with tag/source matching (including
    wildcards), non-blocking operations, and tree collectives — enough to
    host the paper's MPICH/Madeleine II comparison (Fig. 6) and MPI-style
    example applications.

    One {!world} spans all simulated ranks; each rank's threads operate
    on their {!ctx}. A per-rank progress daemon pulls incoming messages
    from the device: expected messages land directly in the posted
    buffer (zero intermediate copy — the ch_mad device extracts straight
    off the wire), unexpected ones are staged and copied on match, at
    memcpy cost, as in a real MPICH. *)

type world
type ctx

type status = { status_src : int; status_tag : int; status_len : int }
type request

exception Collective_failed of string
(** A collective could not complete because a peer died. Raised by the
    classic tree collectives only when a liveness predicate is
    installed ({!set_liveness}) — without one they keep the historic
    blocking behaviour — and by the retargeted collectives
    ({!use_collectives}) when the underlying layer gives up (no quorum
    of live ranks remains). The message names the dead rank. *)

val any_source : int
val any_tag : int

val create_world : Marcel.Engine.t -> devices:Device.t array -> world
(** [devices.(r)] is rank [r]'s device. Spawns the progress daemons. *)

val ctx : world -> rank:int -> ctx
val rank : ctx -> int
val size : ctx -> int

val wtime : ctx -> float
(** Virtual wall-clock seconds since simulation start (MPI_Wtime). *)

val set_liveness : ctx -> (int -> bool) option -> unit
(** Install (or clear) a per-rank liveness predicate, e.g.
    [Madeleine.Vchannel.rank_alive vc]. [None] — the default — keeps
    every collective receive a plain blocking wait with a
    byte-identical schedule. With a predicate, a collective receive
    whose awaited peer the predicate declares dead raises
    {!Collective_failed} naming that rank instead of blocking forever
    in the fan-in/fan-out tree. *)

val use_collectives : world -> Madeleine.Collectives.t -> unit
(** Retarget the world-level collectives ({!barrier}, {!bcast},
    {!reduce}, {!allreduce}) of every rank onto a fault-tolerant
    vchannel collectives layer: topology-aware spanning trees with
    gateway combining and mid-collective crash repair. World ranks map
    one-to-one onto vchannel ranks. [reduce] then delivers the result
    to every live caller (not just the root), and failures surface as
    {!Collective_failed}. Communicator collectives are unaffected. *)

(** {1 Point-to-point} *)

val send : ctx -> dst:int -> tag:int -> Bytes.t -> unit
val recv : ctx -> src:int -> tag:int -> Bytes.t -> status
(** [src]/[tag] may be {!any_source}/{!any_tag}. Raises
    [Invalid_argument] if the matched message exceeds the buffer. *)

val isend : ctx -> dst:int -> tag:int -> Bytes.t -> request
val irecv : ctx -> src:int -> tag:int -> Bytes.t -> request
val wait : request -> status
val waitall : request list -> status list
val iprobe : ctx -> src:int -> tag:int -> status option
val probe : ctx -> src:int -> tag:int -> status

val on_unexpected : ctx -> (unit -> unit) -> unit
(** Registers a persistent callback fired whenever a message is stashed
    in the unexpected queue (i.e. whenever a subsequent {!iprobe} might
    newly succeed). Used by layers hosted on top of MPI — notably
    Madeleine's own MPI driver. *)

(** {1 Communicators}

    A communicator is a context-isolated subgroup with its own rank
    numbering, as in MPI. {!comm_split} is collective over the parent:
    every member must call it (the same number of times), and members
    choosing the same [color] form a new communicator ordered by [key]
    (ties broken by parent rank). *)

type comm

val comm_world : ctx -> comm
val comm_rank : comm -> int
val comm_size : comm -> int

val comm_split : comm -> color:int -> key:int -> comm

val csend : comm -> dst:int -> tag:int -> Bytes.t -> unit
(** Point-to-point within the communicator ([dst] is a comm rank);
    isolated from every other communicator's traffic. *)

val crecv : comm -> src:int -> tag:int -> Bytes.t -> status
(** [src] may be {!any_source}; the reported [status_src] is a comm
    rank. *)

val cbarrier : comm -> unit
val cbcast : comm -> root:int -> Bytes.t -> unit

val creduce :
  comm -> root:int -> op:(Bytes.t -> Bytes.t -> Bytes.t) -> Bytes.t -> Bytes.t

val callreduce :
  comm -> op:(Bytes.t -> Bytes.t -> Bytes.t) -> Bytes.t -> Bytes.t

(** {1 Collectives} (tree-based, tag-isolated from user traffic) *)

val barrier : ctx -> unit
val bcast : ctx -> root:int -> Bytes.t -> unit
val reduce :
  ctx -> root:int -> op:(Bytes.t -> Bytes.t -> Bytes.t) -> Bytes.t -> Bytes.t
(** Reduces every rank's contribution with [op] (associative); returns
    the result at [root] (other ranks get their own contribution back). *)

val allreduce :
  ctx -> op:(Bytes.t -> Bytes.t -> Bytes.t) -> Bytes.t -> Bytes.t

val gather : ctx -> root:int -> Bytes.t -> Bytes.t array option
(** All contributions must have equal length; [Some] at root only. *)

val scatter : ctx -> root:int -> Bytes.t array option -> Bytes.t
(** Root passes [Some parts] (one equal-length part per rank, including
    itself); everyone receives their part. Raises [Invalid_argument] if
    the root's array length differs from the communicator size. *)

val alltoall : ctx -> Bytes.t array -> Bytes.t array
(** Personalized all-to-all: element [j] of the input goes to rank [j];
    element [i] of the result came from rank [i]. All blocks must have
    equal length across ranks. *)

val sendrecv :
  ctx ->
  dst:int ->
  send_tag:int ->
  Bytes.t ->
  src:int ->
  recv_tag:int ->
  Bytes.t ->
  status
(** Simultaneous send and receive, deadlock-free even in rings where
    everyone sends first. *)
