(* Direct MPI-over-SCI devices: the Fig. 6 baselines.

   Both SCI-MPICH and ScaMPI talk to SISCI directly (no Madeleine layer),
   staging message payloads through rings of segment slots. Their
   published envelopes differ in software overheads, staging chunk size
   and — decisively for large messages — whether the sender's PIO write
   of chunk k+1 overlaps the receiver's copy-out of chunk k. The profiles
   below are calibrated to the shapes of Fig. 6: both baselines beat
   MPICH/Madeleine on small-message latency, but MPICH/Madeleine passes
   them in bandwidth from 32 kB up. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Semaphore = Marcel.Semaphore

type profile = {
  prof_name : string;
  inline_max : int; (* payload bytes carried inside the envelope packet *)
  chunk : int; (* staging chunk for large messages *)
  slots : int; (* data-ring depth: 1 = no overlap, 2 = double buffering *)
  send_overhead : Time.span;
  recv_overhead : Time.span;
  per_chunk_overhead : Time.span; (* sender-side protocol cost per chunk *)
}

(* SCI-MPICH (Worringen & Bemmerl 1999): low latency, but large messages
   alternate strictly between writing a segment chunk and the receiver's
   copy-out — no overlap, so bandwidth settles near the harmonic mean of
   the PIO and memcpy rates. *)
let sci_mpich =
  {
    prof_name = "sci-mpich";
    inline_max = 128;
    (* Staging chunk = the shared DMA-crossover default, so crossover
       tuning in Config reaches this baseline too. *)
    chunk = Madeleine.Config.default_sisci_dma_threshold;
    slots = 1;
    send_overhead = Time.us 0.9;
    recv_overhead = Time.us 0.9;
    per_chunk_overhead = Time.us 18.0;
  }

(* ScaMPI (Scali): commercial, well-tuned: a generous eager/inline path
   for small and medium messages and double-buffered staging above it,
   but a slightly heavier per-chunk protocol than Madeleine's ring —
   enough for MPICH/Madeleine to pass it from 32 kB up. *)
let scampi =
  {
    prof_name = "scampi";
    inline_max = 4096;
    (* Eager/staging chunk = the shared slot-payload default rather than
       a private literal 8192. *)
    chunk = Madeleine.Config.default_sisci_slot_payload;
    slots = 2;
    send_overhead = Time.us 1.3;
    recv_overhead = Time.us 1.3;
    per_chunk_overhead = Time.us 12.0;
  }

let hdr = 8 (* per-slot length + flag, as in the Madeleine rings *)
let short_slots = 16
let seg_base = 900_000

type pair_state = {
  short_sem : Semaphore.t;
  data_sem : Semaphore.t;
  short_seg : Sisci.local_segment;
  data_seg : Sisci.local_segment;
}

type side = {
  profile : profile;
  rank : int;
  adapters : int -> Sisci.t;
  peers : int list;
  states : (int * int, pair_state) Hashtbl.t; (* shared, keyed (src,dst) *)
  (* sender-side ring cursors, per destination *)
  short_w : (int, int ref) Hashtbl.t;
  data_w : (int, int ref) Hashtbl.t;
  (* receiver-side cursors, per source *)
  short_r : (int, int ref) Hashtbl.t;
  data_r : (int, int ref) Hashtbl.t;
  mutable waiters : (unit -> unit) list;
  mutable scan_from : int;
}

let memo_ref table key =
  match Hashtbl.find_opt table key with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add table key r;
      r

let memcpy_sleep = Simnet.Cost.memcpy

let short_payload p = Device.envelope_size + p.inline_max
let short_slot_size p = hdr + short_payload p
let data_slot_size p = hdr + p.chunk

let seg_ids ~src = (seg_base + (src * 2), seg_base + (src * 2) + 1)

(* Build the shared per-world state: receiver-owned segments + credits. *)
let make_states profile adapters ranks =
  let states = Hashtbl.create 16 in
  List.iter
    (fun receiver ->
      List.iter
        (fun src ->
          if src <> receiver then begin
            let adapter = adapters receiver in
            let short_id, data_id = seg_ids ~src in
            Hashtbl.add states (src, receiver)
              {
                short_sem = Semaphore.create short_slots;
                data_sem = Semaphore.create profile.slots;
                short_seg =
                  Sisci.create_segment adapter ~segment_id:short_id
                    ~size:(short_slots * short_slot_size profile);
                data_seg =
                  Sisci.create_segment adapter ~segment_id:data_id
                    ~size:(profile.slots * data_slot_size profile);
              }
          end)
        ranks)
    ranks;
  states

let slot_flag_set seg ~off =
  Bytes.get (Sisci.read seg ~off:(off + 4) ~len:1) 0 <> '\000'

let write_slot rs ~off frame_payload =
  let frame = Bytes.create (hdr + Bytes.length frame_payload) in
  Bytes.set_int32_le frame 0 (Int32.of_int (Bytes.length frame_payload));
  Bytes.set frame 4 '\001';
  Bytes.blit frame_payload 0 frame hdr (Bytes.length frame_payload);
  Sisci.pio_write rs ~off frame

(* Receiver side: wait for / read / consume one slot. *)
let fetch_slot seg ~off =
  Sisci.wait_until seg (fun seg -> slot_flag_set seg ~off);
  Int32.to_int (Bytes.get_int32_le (Sisci.read seg ~off ~len:4) 0)

let consume_slot seg sem ~off =
  Sisci.write_local seg ~off:(off + 4) (Bytes.make 1 '\000');
  Semaphore.release sem

let dev_send side ~dst env payload =
  let p = side.profile in
  Engine.sleep p.send_overhead;
  let st = Hashtbl.find side.states (side.rank, dst) in
  let short_id, data_id = seg_ids ~src:side.rank in
  let adapter = side.adapters side.rank in
  let rs_short = Sisci.connect adapter ~node_id:dst ~segment_id:short_id in
  let rs_data = Sisci.connect adapter ~node_id:dst ~segment_id:data_id in
  let len = env.Device.env_len in
  (* Envelope packet, with the payload inlined when it fits. *)
  let inline_len = if len <= p.inline_max then len else 0 in
  let packet = Bytes.create (Device.envelope_size + inline_len) in
  Bytes.blit (Device.encode_envelope env) 0 packet 0 Device.envelope_size;
  if inline_len > 0 then Bytes.blit payload 0 packet Device.envelope_size len;
  Semaphore.acquire st.short_sem;
  let w = memo_ref side.short_w dst in
  write_slot rs_short ~off:(!w mod short_slots * short_slot_size p) packet;
  incr w;
  if len > p.inline_max then begin
    (* Large path: staged chunks through the data ring. *)
    let wd = memo_ref side.data_w dst in
    let rec chunks sent =
      if sent < len then begin
        let n = min p.chunk (len - sent) in
        Engine.sleep p.per_chunk_overhead;
        Semaphore.acquire st.data_sem;
        write_slot rs_data
          ~off:(!wd mod p.slots * data_slot_size p)
          (Bytes.sub payload sent n);
        incr wd;
        chunks (sent + n)
      end
    in
    chunks 0
  end

(* Scan all peers' short rings for an incoming envelope. *)
let rec wait_envelope side =
  let n = List.length side.peers in
  let rec scan tries =
    if tries >= n then None
    else
      let src = List.nth side.peers ((side.scan_from + tries) mod n) in
      let st = Hashtbl.find side.states (src, side.rank) in
      let r = memo_ref side.short_r src in
      let off = !r mod short_slots * short_slot_size side.profile in
      if slot_flag_set st.short_seg ~off then begin
        side.scan_from <- side.scan_from + tries + 1;
        Some (src, st, r, off)
      end
      else scan (tries + 1)
  in
  match scan 0 with
  | Some found -> found
  | None ->
      Engine.suspend ~name:"scidirect.poll" (fun wake ->
          side.waiters <- (fun () -> wake ()) :: side.waiters);
      wait_envelope side

let dev_next side () =
  let p = side.profile in
  let src, st, r, off = wait_envelope side in
  let slot_len = fetch_slot st.short_seg ~off in
  Engine.sleep p.recv_overhead;
  let packet = Sisci.read st.short_seg ~off:(off + hdr) ~len:slot_len in
  let env = Device.decode_envelope ~src packet in
  let inline = slot_len > Device.envelope_size in
  let extract buf ~off:boff =
    let len = env.Device.env_len in
    if inline then begin
      memcpy_sleep len;
      Bytes.blit packet Device.envelope_size buf boff len
    end
    else begin
      let rd = memo_ref side.data_r src in
      let rec chunks got =
        if got < len then begin
          let doff = !rd mod p.slots * data_slot_size p in
          let n = fetch_slot st.data_seg ~off:doff in
          memcpy_sleep n;
          Bytes.blit
            (Sisci.read st.data_seg ~off:(doff + hdr) ~len:n)
            0 buf (boff + got) n;
          consume_slot st.data_seg st.data_sem ~off:doff;
          incr rd;
          chunks (got + n)
        end
      in
      chunks 0
    end;
    consume_slot st.short_seg st.short_sem ~off;
    incr r
  in
  (env, extract)

let make profile ~adapters ~ranks ~states ~rank =
  let side =
    {
      profile;
      rank;
      adapters;
      peers = List.filter (fun r -> r <> rank) ranks;
      states;
      short_w = Hashtbl.create 8;
      data_w = Hashtbl.create 8;
      short_r = Hashtbl.create 8;
      data_r = Hashtbl.create 8;
      waiters = [];
      scan_from = 0;
    }
  in
  (* Wake the scanner whenever anything lands in one of our segments. *)
  List.iter
    (fun src ->
      if src <> rank then begin
        let st = Hashtbl.find states (src, rank) in
        let wake () =
          let ws = side.waiters in
          side.waiters <- [];
          List.iter (fun w -> w ()) ws
        in
        Sisci.set_data_hook st.short_seg wake;
        Sisci.set_data_hook st.data_seg wake
      end)
    ranks;
  {
    Device.dev_name = profile.prof_name;
    dev_send = (fun ~dst env payload -> dev_send side ~dst env payload);
    dev_next = (fun () -> dev_next side ());
  }
