(** Madeleine II on top of MPI (paper §5.3: "Madeleine II has also been
    ported — quite straightforwardly — on top of MPI").

    The host MPI must run on a non-Madeleine device (e.g. one of the
    direct-SISCI baselines) — layering it back onto ch_mad would be
    circular. Each Madeleine buffer travels as one tagged MPI message;
    the channel id is the tag, so channels stay isolated and
    per-connection FIFO order follows from MPI's non-overtaking rule.
    The MPI instance becomes dedicated to Madeleine: user-context tags
    equal to channel ids are reserved. *)

val select :
  len:int -> transit:bool -> Madeleine.Iface.send_mode -> Madeleine.Iface.recv_mode -> int
val driver : (int -> Mpi.ctx) -> Madeleine.Driver.t
