module Engine = Marcel.Engine
module Time = Marcel.Time
module Ivar = Marcel.Ivar

type status = { status_src : int; status_tag : int; status_len : int }

exception Collective_failed of string

let any_source = -1
let any_tag = -1

type posted = {
  p_src : int;
  p_tag : int;
  p_context : int;
  p_buf : Bytes.t;
  p_done : status Ivar.t;
}

type unexpected = { u_env : Device.envelope; u_data : Bytes.t }

type ctx = {
  c_rank : int;
  c_size : int;
  c_engine : Engine.t;
  mutable c_world : world option; (* set by create_world *)
  device : Device.t;
  mutable posted : posted list; (* in post order *)
  unexpected : unexpected Queue.t;
  mutable probe_waiters : (unit -> unit) list;
  mutable arrival_hooks : (unit -> unit) list;
  mutable liveness : (int -> bool) option;
      (* [None] (the default) keeps the classic blocking receives and a
         byte-identical schedule; with a predicate installed, a
         collective receive polls it and surfaces a typed
         [Collective_failed] naming the dead peer instead of blocking
         forever in the fan-in/fan-out tree. *)
  mutable coll : Madeleine.Collectives.t option;
      (* world-level collectives retargeted onto the fault-tolerant
         vchannel layer (see [use_collectives]) *)
}

and world = {
  ctxs : ctx array;
  mutable next_context : int;
  context_registry : (int * int * int, int) Hashtbl.t;
      (* (parent context, split epoch, color) -> allocated context pair *)
}

type request = status Ivar.t

let user_context = 0
let coll_context = 1
let first_free_context = 2

let matches ~src ~tag ~context (env : Device.envelope) =
  (src = any_source || src = env.Device.env_src)
  && (tag = any_tag || tag = env.Device.env_tag)
  && context = env.Device.env_context

let memcpy_sleep = Simnet.Cost.memcpy

(* The per-rank progress engine: matches each incoming envelope against
   the posted-receive queue; expected payloads extract directly into the
   user buffer, unexpected ones stage into a temporary. *)
let progress_loop c () =
  while true do
    let env, extract = c.device.Device.dev_next () in
    let rec find_posted acc = function
      | [] -> None
      | p :: rest ->
          if
            matches ~src:p.p_src ~tag:p.p_tag ~context:p.p_context env
            && Bytes.length p.p_buf >= env.Device.env_len
          then begin
            c.posted <- List.rev_append acc rest;
            Some p
          end
          else find_posted (p :: acc) rest
    in
    let status =
      {
        status_src = env.Device.env_src;
        status_tag = env.Device.env_tag;
        status_len = env.Device.env_len;
      }
    in
    match find_posted [] c.posted with
    | Some p ->
        extract p.p_buf ~off:0;
        Ivar.fill p.p_done status
    | None ->
        let tmp = Bytes.create env.Device.env_len in
        extract tmp ~off:0;
        (* The extraction blocks for the payload's transfer time, during
           which a matching receive may have been posted: re-check before
           declaring the message unexpected, or it would never be
           reconciled with the waiting request. *)
        (match find_posted [] c.posted with
        | Some p ->
            if Bytes.length p.p_buf < env.Device.env_len then
              invalid_arg "Mpi: matched receive buffer too small";
            memcpy_sleep env.Device.env_len;
            Bytes.blit tmp 0 p.p_buf 0 env.Device.env_len;
            Ivar.fill p.p_done status
        | None ->
            Queue.push { u_env = env; u_data = tmp } c.unexpected;
            let ws = c.probe_waiters in
            c.probe_waiters <- [];
            List.iter (fun w -> w ()) ws;
            List.iter (fun h -> h ()) c.arrival_hooks)
  done

let create_world engine ~devices =
  let ctxs =
    Array.mapi
      (fun r device ->
        {
          c_rank = r;
          c_size = Array.length devices;
          c_engine = engine;
          c_world = None;
          device;
          posted = [];
          unexpected = Queue.create ();
          probe_waiters = [];
          arrival_hooks = [];
          liveness = None;
          coll = None;
        })
      devices
  in
  Array.iter
    (fun c ->
      Engine.spawn engine ~daemon:true
        ~name:(Printf.sprintf "mpi.progress.%d" c.c_rank)
        (progress_loop c))
    ctxs;
  let w =
    { ctxs; next_context = first_free_context; context_registry = Hashtbl.create 16 }
  in
  Array.iter (fun c -> c.c_world <- Some w) ctxs;
  w

let ctx w ~rank = w.ctxs.(rank)
let rank c = c.c_rank
let size c = c.c_size
let wtime c = Time.to_s (Engine.now c.c_engine)
let set_liveness c pred = c.liveness <- pred

let use_collectives w coll =
  Array.iter (fun c -> c.coll <- Some coll) w.ctxs

(* The retargeted verbs speak the vchannel layer's typed failure; fold
   it into this module's so callers match one exception either way. *)
let coll_guard f =
  try f ()
  with Madeleine.Collectives.Collective_failed msg ->
    raise (Collective_failed msg)

let send_ctx c ~dst ~tag ~context data =
  c.device.Device.dev_send ~dst
    {
      Device.env_src = c.c_rank;
      env_tag = tag;
      env_context = context;
      env_len = Bytes.length data;
    }
    data

let take_unexpected c ~src ~tag ~context =
  let found = ref None in
  let keep = Queue.create () in
  Queue.iter
    (fun u ->
      if !found = None && matches ~src ~tag ~context u.u_env then found := Some u
      else Queue.push u keep)
    c.unexpected;
  Queue.clear c.unexpected;
  Queue.transfer keep c.unexpected;
  !found

let irecv_ctx c ~src ~tag ~context buf =
  let done_ = Ivar.create () in
  (match take_unexpected c ~src ~tag ~context with
  | Some u ->
      let len = u.u_env.Device.env_len in
      if Bytes.length buf < len then
        invalid_arg "Mpi.recv: message larger than buffer";
      (* Unexpected path: the staging copy is a real memcpy. *)
      memcpy_sleep len;
      Bytes.blit u.u_data 0 buf 0 len;
      Ivar.fill done_
        {
          status_src = u.u_env.Device.env_src;
          status_tag = u.u_env.Device.env_tag;
          status_len = len;
        }
  | None ->
      c.posted <-
        c.posted @ [ { p_src = src; p_tag = tag; p_context = context; p_buf = buf; p_done = done_ } ]);
  done_

let send c ~dst ~tag data = send_ctx c ~dst ~tag ~context:user_context data
let irecv c ~src ~tag buf = irecv_ctx c ~src ~tag ~context:user_context buf
let wait req = Ivar.read req
let waitall reqs = List.map wait reqs
let recv c ~src ~tag buf = wait (irecv c ~src ~tag buf)

let isend c ~dst ~tag data =
  (* The buffer may not be reused until wait; snapshotting it keeps user
     code that modifies it early deterministic (bookkeeping copy, no
     modelled cost). Sender threads to the same peer serialize on the
     connection, so isend order is preserved. *)
  let snapshot = Bytes.copy data in
  let req = Ivar.create () in
  Engine.spawn c.c_engine ~name:(Printf.sprintf "mpi.isend.%d" c.c_rank)
    (fun () ->
      send c ~dst ~tag snapshot;
      Ivar.fill req
        { status_src = c.c_rank; status_tag = tag; status_len = Bytes.length data });
  req

let iprobe c ~src ~tag =
  let found = ref None in
  Queue.iter
    (fun u ->
      if !found = None && matches ~src ~tag ~context:user_context u.u_env then
        found :=
          Some
            {
              status_src = u.u_env.Device.env_src;
              status_tag = u.u_env.Device.env_tag;
              status_len = u.u_env.Device.env_len;
            })
    c.unexpected;
  !found

let on_unexpected c hook = c.arrival_hooks <- hook :: c.arrival_hooks

let probe c ~src ~tag =
  let rec loop () =
    match iprobe c ~src ~tag with
    | Some st -> st
    | None ->
        Engine.suspend ~name:"mpi.probe" (fun wake ->
            c.probe_waiters <- (fun () -> wake ()) :: c.probe_waiters);
        loop ()
  in
  loop ()

(* ---------------- Collectives and communicators ------------------- *)

(* All collectives run over a virtual rank space 0..size-1 with the
   caller-supplied send/receive functions; communicators instantiate
   them with their member mapping and private context. *)

let rel ~me ~root ~size = (me - root + size) mod size
let abs ~root ~size r = (r + root) mod size

let barrier_tag = 1
let bcast_tag = 2
let reduce_tag = 3
let gather_tag = 4
let scatter_tag = 5
let alltoall_tag = 6

let generic_bcast ~size ~me ~root ~vsend ~vrecv buf =
  let m = rel ~me ~root ~size in
  if size > 1 then begin
    let rec highest_mask k = if k * 2 < size then highest_mask (k * 2) else k in
    if m <> 0 then begin
      let parent = m land (m - 1) in
      ignore (vrecv ~src:(abs ~root ~size parent) ~tag:bcast_tag buf)
    end;
    let rec forward mask =
      if mask >= 1 then begin
        if m land ((mask * 2) - 1) = 0 && m + mask < size then
          vsend ~dst:(abs ~root ~size (m + mask)) ~tag:bcast_tag buf;
        forward (mask / 2)
      end
    in
    forward (highest_mask 1)
  end

let generic_fan_in ~size ~me ~root ~vsend ~tag ~combine acc =
  let m = rel ~me ~root ~size in
  let rec go mask acc =
    if mask >= size then acc
    else if m land mask <> 0 then begin
      vsend ~dst:(abs ~root ~size (m - mask)) ~tag acc;
      acc
    end
    else if m + mask < size then begin
      let acc = combine acc ~from:(abs ~root ~size (m + mask)) in
      go (mask * 2) acc
    end
    else go (mask * 2) acc
  in
  go 1 acc

let generic_barrier ~size ~me ~vsend ~vrecv =
  let token = Bytes.create 1 in
  let combine acc ~from =
    ignore (vrecv ~src:from ~tag:barrier_tag token);
    acc
  in
  ignore
    (generic_fan_in ~size ~me ~root:0 ~vsend ~tag:barrier_tag ~combine token);
  generic_bcast ~size ~me ~root:0 ~vsend ~vrecv token

let generic_reduce ~size ~me ~root ~op ~vsend ~vrecv data =
  let combine acc ~from =
    let tmp = Bytes.create (Bytes.length data) in
    ignore (vrecv ~src:from ~tag:reduce_tag tmp);
    op acc tmp
  in
  generic_fan_in ~size ~me ~root ~vsend ~tag:reduce_tag ~combine data

(* World-communicator instantiation (context [coll_context]). *)

let world_vsend c ~dst ~tag data = send_ctx c ~dst ~tag ~context:coll_context data

let liveness_poll_interval = Time.us 200.0

(* A collective receive. Without a liveness predicate this is the
   classic blocking wait (and the schedule is byte-identical to what it
   always was). With one installed, park in short sleeps instead: if
   the awaited peer goes down first, withdraw the posted receive and
   fail typed — the fan-in/fan-out trees otherwise block forever in
   vrecv when a peer dies mid-collective. *)
let wait_coll c ~peer ~tag req =
  match c.liveness with
  | None -> Ivar.read req
  | Some alive ->
      let rec poll () =
        if Ivar.is_filled req then Ivar.read req
        else if peer <> any_source && not (alive peer) then begin
          c.posted <- List.filter (fun p -> p.p_done != req) c.posted;
          raise
            (Collective_failed
               (Printf.sprintf
                  "rank %d died mid-collective (rank %d was waiting on tag %d)"
                  peer c.c_rank tag))
        end
        else begin
          Engine.sleep liveness_poll_interval;
          poll ()
        end
      in
      poll ()

let world_vrecv c ~src ~tag buf =
  wait_coll c ~peer:src ~tag (irecv_ctx c ~src ~tag ~context:coll_context buf)

(* With a Collectives layer installed ({!use_collectives}) the world
   collectives run on the vchannel's fault-tolerant spanning trees
   (gateway combining, crash repair) instead of the binomial trees
   over point-to-point messages; world ranks map one-to-one onto
   vchannel ranks. *)

let barrier c =
  match c.coll with
  | Some coll ->
      coll_guard (fun () -> Madeleine.Collectives.barrier coll ~me:c.c_rank)
  | None ->
      generic_barrier ~size:c.c_size ~me:c.c_rank ~vsend:(world_vsend c)
        ~vrecv:(world_vrecv c)

let bcast c ~root buf =
  match c.coll with
  | Some coll ->
      coll_guard (fun () ->
          let v =
            Madeleine.Collectives.bcast coll ~me:c.c_rank ~root
              (if c.c_rank = root then Some (Bytes.copy buf) else None)
          in
          Bytes.blit v 0 buf 0 (min (Bytes.length v) (Bytes.length buf)))
  | None ->
      generic_bcast ~size:c.c_size ~me:c.c_rank ~root ~vsend:(world_vsend c)
        ~vrecv:(world_vrecv c) buf

let reduce c ~root ~op data =
  match c.coll with
  | Some coll ->
      coll_guard (fun () ->
          Madeleine.Collectives.reduce coll ~me:c.c_rank ~root ~op data)
  | None ->
      generic_reduce ~size:c.c_size ~me:c.c_rank ~root ~op
        ~vsend:(world_vsend c) ~vrecv:(world_vrecv c) data

let allreduce c ~op data =
  match c.coll with
  | Some coll ->
      coll_guard (fun () ->
          Madeleine.Collectives.allreduce coll ~me:c.c_rank ~op data)
  | None ->
      let result = reduce c ~root:0 ~op data in
      let out = Bytes.copy result in
      bcast c ~root:0 out;
      out

let gather c ~root data =
  if c.c_rank = root then begin
    let parts = Array.make c.c_size (Bytes.copy data) in
    for r = 0 to c.c_size - 1 do
      if r <> root then begin
        let buf = Bytes.create (Bytes.length data) in
        ignore (world_vrecv c ~src:r ~tag:gather_tag buf);
        parts.(r) <- buf
      end
    done;
    parts.(root) <- Bytes.copy data;
    Some parts
  end
  else begin
    world_vsend c ~dst:root ~tag:gather_tag data;
    None
  end

let scatter c ~root parts =
  if c.c_rank = root then begin
    match parts with
    | None -> invalid_arg "Mpi.scatter: root must supply parts"
    | Some parts ->
        if Array.length parts <> c.c_size then
          invalid_arg "Mpi.scatter: need one part per rank";
        Array.iteri
          (fun r part ->
            if r <> root then world_vsend c ~dst:r ~tag:scatter_tag part)
          parts;
        Bytes.copy parts.(root)
  end
  else begin
    match parts with
    | Some _ -> invalid_arg "Mpi.scatter: only the root supplies parts"
    | None ->
        (* Block sizes are uniform by contract; learn ours by probing the
           incoming message's envelope. *)
        let rec await () =
          match
            List.find_opt
              (fun u ->
                matches ~src:root ~tag:scatter_tag ~context:coll_context u.u_env)
              (List.of_seq (Queue.to_seq c.unexpected))
          with
          | Some u -> u.u_env.Device.env_len
          | None ->
              Engine.suspend ~name:"mpi.scatter" (fun wake ->
                  c.probe_waiters <- (fun () -> wake ()) :: c.probe_waiters);
              await ()
        in
        let len = await () in
        let buf = Bytes.create len in
        ignore (world_vrecv c ~src:root ~tag:scatter_tag buf);
        buf
  end

let alltoall c blocks =
  if Array.length blocks <> c.c_size then
    invalid_arg "Mpi.alltoall: need one block per rank";
  let out = Array.map Bytes.copy blocks in
  (* Post all receives, fire all sends, then wait: no ordering deadlock. *)
  let recvs =
    List.filter_map
      (fun src ->
        if src = c.c_rank then None
        else begin
          let buf = Bytes.create (Bytes.length blocks.(src)) in
          out.(src) <- buf;
          Some (irecv_ctx c ~src ~tag:alltoall_tag ~context:coll_context buf)
        end)
      (List.init c.c_size Fun.id)
  in
  List.iter
    (fun dst ->
      if dst <> c.c_rank then
        send_ctx c ~dst ~tag:alltoall_tag ~context:coll_context blocks.(dst))
    (List.init c.c_size Fun.id);
  List.iter (fun r -> ignore (wait r)) recvs;
  out.(c.c_rank) <- Bytes.copy blocks.(c.c_rank);
  out

let sendrecv c ~dst ~send_tag send_buf ~src ~recv_tag recv_buf =
  let r = irecv c ~src ~tag:recv_tag recv_buf in
  let s = isend c ~dst ~tag:send_tag send_buf in
  let st = wait r in
  ignore (wait s);
  st

(* ---------------- Communicators ----------------------------------- *)

type comm = {
  cm_ctx : ctx;
  members : int array; (* comm rank -> world rank *)
  my_index : int;
  p2p_context : int;
  coll_ctx : int;
  mutable split_epoch : int;
}

let comm_world c =
  {
    cm_ctx = c;
    members = Array.init c.c_size Fun.id;
    my_index = c.c_rank;
    p2p_context = user_context;
    coll_ctx = coll_context;
    split_epoch = 0;
  }

let comm_rank cm = cm.my_index
let comm_size cm = Array.length cm.members

let index_of_world cm world_rank =
  let rec find i =
    if i >= Array.length cm.members then
      invalid_arg "Mpi: rank not in communicator"
    else if cm.members.(i) = world_rank then i
    else find (i + 1)
  in
  find 0

let csend cm ~dst ~tag data =
  send_ctx cm.cm_ctx ~dst:cm.members.(dst) ~tag ~context:cm.p2p_context data

let crecv cm ~src ~tag buf =
  let world_src = if src = any_source then any_source else cm.members.(src) in
  let st =
    wait (irecv_ctx cm.cm_ctx ~src:world_src ~tag ~context:cm.p2p_context buf)
  in
  { st with status_src = index_of_world cm st.status_src }

let comm_vsend cm ~dst ~tag data =
  send_ctx cm.cm_ctx ~dst:cm.members.(dst) ~tag ~context:cm.coll_ctx data

let comm_vrecv cm ~src ~tag buf =
  let world_src = cm.members.(src) in
  wait_coll cm.cm_ctx ~peer:world_src ~tag
    (irecv_ctx cm.cm_ctx ~src:world_src ~tag ~context:cm.coll_ctx buf)

let cbarrier cm =
  generic_barrier ~size:(comm_size cm) ~me:cm.my_index ~vsend:(comm_vsend cm)
    ~vrecv:(comm_vrecv cm)

let cbcast cm ~root buf =
  generic_bcast ~size:(comm_size cm) ~me:cm.my_index ~root
    ~vsend:(comm_vsend cm) ~vrecv:(comm_vrecv cm) buf

let creduce cm ~root ~op data =
  generic_reduce ~size:(comm_size cm) ~me:cm.my_index ~root ~op
    ~vsend:(comm_vsend cm) ~vrecv:(comm_vrecv cm) data

let callreduce cm ~op data =
  let result = creduce cm ~root:0 ~op data in
  let out = Bytes.copy result in
  cbcast cm ~root:0 out;
  out

(* Split: gather every member's (color, key) at comm rank 0, compute the
   groups deterministically, broadcast the assignment, and draw fresh
   context ids from the world-level registry (shared-heap, keyed so all
   members of a group agree). *)
let comm_split cm ~color ~key =
  let epoch = cm.split_epoch in
  cm.split_epoch <- epoch + 1;
  let n = comm_size cm in
  let me = cm.my_index in
  let mine = Bytes.create 16 in
  Bytes.set_int64_le mine 0 (Int64.of_int color);
  Bytes.set_int64_le mine 8 (Int64.of_int key);
  (* Gather all (color,key) pairs to comm rank 0 and broadcast back. *)
  let table = Bytes.create (16 * n) in
  if me = 0 then begin
    Bytes.blit mine 0 table 0 16;
    for src = 1 to n - 1 do
      let b = Bytes.create 16 in
      ignore (comm_vrecv cm ~src ~tag:scatter_tag b);
      Bytes.blit b 0 table (16 * src) 16
    done
  end
  else comm_vsend cm ~dst:0 ~tag:scatter_tag mine;
  cbcast cm ~root:0 table;
  let colors =
    Array.init n (fun i -> Int64.to_int (Bytes.get_int64_le table (16 * i)))
  in
  let keys =
    Array.init n (fun i -> Int64.to_int (Bytes.get_int64_le table ((16 * i) + 8)))
  in
  (* My group: members with my color, ordered by (key, parent index). *)
  let group =
    List.init n Fun.id
    |> List.filter (fun i -> colors.(i) = color)
    |> List.sort (fun a b -> compare (keys.(a), a) (keys.(b), b))
  in
  let members = Array.of_list (List.map (fun i -> cm.members.(i)) group) in
  let my_index =
    let rec find i lst =
      match lst with
      | [] -> invalid_arg "Mpi.comm_split: self not in group"
      | x :: rest -> if x = me then i else find (i + 1) rest
    in
    find 0 group
  in
  let world =
    match cm.cm_ctx.c_world with
    | Some w -> w
    | None -> invalid_arg "Mpi.comm_split: detached context"
  in
  let registry_key = (cm.p2p_context, epoch, color) in
  let base =
    match Hashtbl.find_opt world.context_registry registry_key with
    | Some b -> b
    | None ->
        let b = world.next_context in
        world.next_context <- b + 2;
        Hashtbl.add world.context_registry registry_key b;
        b
  in
  {
    cm_ctx = cm.cm_ctx;
    members;
    my_index;
    p2p_context = base;
    coll_ctx = base + 1;
    split_epoch = 0;
  }
