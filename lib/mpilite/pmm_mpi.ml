(* Madeleine II on top of MPI (paper §5.3: "Madeleine II has also been
   ported — quite straightforwardly — on top of MPI"; §7 lists "common
   MPI implementations" among the supported interfaces).

   The host MPI must itself run on a non-Madeleine device (one of the
   direct-SISCI baselines, say), since layering it back onto ch_mad
   would be circular. Each Madeleine buffer travels as one tagged MPI
   message; the channel id is the tag, so channels stay isolated and
   per-connection FIFO order follows from MPI's non-overtaking rule. *)

module Buf = Madeleine.Buf
module Bufs = Madeleine.Bufs
module Tm = Madeleine.Tm
module Link = Madeleine.Link
module Bmm = Madeleine.Bmm
module Driver = Madeleine.Driver

let send_tm ctx ~dst ~tag =
  let send_one buf = Mpi.send ctx ~dst ~tag (Buf.to_bytes buf) in
  {
    Tm.s_name = "mpi";
    s_side =
      Tm.Dynamic_send
        {
          Tm.send_buffer = send_one;
          send_buffer_group = (fun bufs -> Bufs.iter send_one bufs);
        };
  }

let recv_tm ctx ~from ~tag =
  let recv_one buf =
    let tmp = Bytes.create (Buf.length buf) in
    let st = Mpi.recv ctx ~src:from ~tag tmp in
    if st.Mpi.status_len <> Buf.length buf then
      raise
        (Madeleine.Config.Symmetry_violation
           (Printf.sprintf "mpi TM: expected %d bytes, got %d" (Buf.length buf)
              st.Mpi.status_len));
    Buf.blit_in buf tmp 0
  in
  {
    Tm.r_name = "mpi";
    r_side =
      Tm.Dynamic_recv
        {
          Tm.receive_buffer = recv_one;
          receive_buffer_group = (fun bufs -> Bufs.iter recv_one bufs);
        };
    r_probe = (fun () -> Mpi.iprobe ctx ~src:from ~tag <> None);
  }

let select ~len:_ ~transit:_ _s _r = 0

let driver (ctx_of : int -> Mpi.ctx) =
  let instantiate ~channel_id ~config ~ranks:_ =
    let tag = channel_id in
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          Link.make_sender select
            [|
              Bmm.send_of_tm ~aggregation:config.Madeleine.Config.aggregation
                (send_tm (ctx_of src) ~dst ~tag);
            |])
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          let tm = recv_tm (ctx_of src) ~from:dst ~tag in
          Link.make_receiver select [| Bmm.recv_of_tm tm |] ~probe:tm.Tm.r_probe)
    in
    {
      Driver.inst_name = "mpi";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data = (fun ~me hook -> Mpi.on_unexpected (ctx_of me) hook);
      peer_health = (fun ~me:_ ~peer:_ -> Madeleine.Iface.Up);
      reg_stats = (fun ~me:_ -> None);
    }
  in
  { Driver.driver_name = "mpi"; instantiate }
