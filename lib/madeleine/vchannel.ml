module Engine = Marcel.Engine
module Time = Marcel.Time
module Mailbox = Marcel.Mailbox
module Mutex = Marcel.Mutex
module Condition = Marcel.Condition
module Semaphore = Marcel.Semaphore

(* Byte stream with blocking reads and message-end markers, fed by the
   dispatcher threads and drained by user unpacks. *)
module Assembler = struct
  type item = Data of Bytes.t | End_of_message

  type t = {
    items : item Queue.t;
    mutable head_off : int;
    mutable waiters : (unit -> unit) list;
    mutable on_pop : int -> unit;
        (* consumption hook: called with the chunk length every time a
           whole Data chunk (= one packet payload) has been drained —
           where credit replenishment and buffered-byte accounting hang *)
  }

  let create () =
    { items = Queue.create (); head_off = 0; waiters = []; on_pop = ignore }

  let push t item =
    Queue.push item t.items;
    let waiters = t.waiters in
    t.waiters <- [];
    List.iter (fun wake -> wake ()) waiters

  let wait t =
    Engine.suspend ~name:"vchannel.assembler" (fun wake ->
        t.waiters <- (fun () -> wake ()) :: t.waiters)

  (* Reads exactly [len] bytes into [dst] at [off]; an End_of_message
     marker inside the span is an asymmetry. *)
  let rec read_exact t dst ~off ~len =
    if len > 0 then begin
      match Queue.peek_opt t.items with
      | None ->
          wait t;
          read_exact t dst ~off ~len
      | Some End_of_message ->
          raise
            (Config.Symmetry_violation
               "unpack crosses a message boundary: more data requested \
                than was packed")
      | Some (Data chunk) ->
          let avail = Bytes.length chunk - t.head_off in
          if avail = 0 then begin
            ignore (Queue.pop t.items);
            t.head_off <- 0;
            t.on_pop (Bytes.length chunk);
            read_exact t dst ~off ~len
          end
          else begin
            let take = min avail len in
            Bytes.blit chunk t.head_off dst off take;
            t.head_off <- t.head_off + take;
            read_exact t dst ~off:(off + take) ~len:(len - take)
          end
    end

  (* Consumes the End_of_message marker; leftover data first is an
     asymmetry. *)
  let rec finish_message t =
    match Queue.peek_opt t.items with
    | None ->
        wait t;
        finish_message t
    | Some (Data chunk) when Bytes.length chunk = t.head_off ->
        ignore (Queue.pop t.items);
        t.head_off <- 0;
        t.on_pop (Bytes.length chunk);
        finish_message t
    | Some (Data _) ->
        raise
          (Config.Symmetry_violation
             "end_unpacking with unconsumed packed data")
    | Some End_of_message ->
        ignore (Queue.pop t.items);
        t.head_off <- 0
end

type hop = { hop_channel : Channel.t; hop_to : int }

exception Partitioned of string

exception No_quorum of string

(* End-to-end reliability state, present only when the vchannel was
   created with a fault plane. Sequence numbers are per (origin, final
   destination) flow, 16 bits, carried in the packet header; every
   accepted packet is answered by a cumulative ack so the origin can
   trim its unacknowledged-packet log, from which packets are re-emitted
   after a gateway crash.

   Crash-epoch sessions: a crash wipes the crashed node's send-side
   state (cursors, unacked logs) and marks those flows [tx_lost].
   Receive cursors survive a restart — they model a delivery journal the
   session layer keeps on stable storage, which is what makes
   exactly-once possible at all. When the node comes back, every live
   peer that has delivered data from it sends a session-handshake packet
   ([hs] flag) carrying its expected sequence number, so the restarted
   origin resumes numbering where the receiver left off instead of
   colliding with its own pre-crash packets. *)
type rel = {
  faults : Simnet.Faults.t;
  tx_seq : (int * int, int ref) Hashtbl.t; (* (origin, dst) -> next seq *)
  rx_next : (int * int, int ref) Hashtbl.t; (* (me, origin) -> expected *)
  unacked :
    (int * int, (int * Generic_tm.packet_header * Bytes.t) Queue.t) Hashtbl.t;
  tx_lost : (int * int, unit) Hashtbl.t;
      (* flows whose origin crashed: sends block until the peer's
         session handshake restores the cursor *)
  sentinels : (int, Sentinel.t) Hashtbl.t; (* per-rank failure detectors *)
  suspected : (int * int, unit) Hashtbl.t;
      (* (observer, peer): observer's sentinel currently calls the
         still-live peer Down. Under a partition the two sides suspect
         each other, so suspicion is meaningful only relative to who is
         looking — a global "someone suspects it" bit would take every
         rank down at once. *)
  susp_count : (int, int) Hashtbl.t;
      (* peer -> number of observers suspecting it; the O(1)
         "suspected by anyone" view used when no election plane makes
         suspicion viewer-relative *)
  mutable route_waiters : (unit -> unit) list;
  mutable hs_waiters : (unit -> unit) list;
  mutable ack_waiters : (unit -> unit) list;
      (* senders blocked on a full unacked log, woken by ack arrivals *)
  mutable reroutes : int;
  mutable reemitted : int;
  mutable dup_drops : int;
  mutable handshakes : int;
}

(* End-to-end credit-based flow control, present only when the vchannel
   was created with [?credits]. Receiver-granted: each (src, dst) flow
   may have at most [cr_budget] unconsumed data packets in the network
   or buffered at the destination, so every buffering point on the path
   holds at most budget * MTU bytes of the flow. The sender counts
   packets shipped; the receiver counts packets *consumed* by user
   unpacks (arrival is not consumption — a paused receiver must block
   the sender, not let it fill the assembler) and replenishes by sending
   cumulative grants every [cr_quantum] consumptions, piggybacking the
   flow's cumulative ack on reliable vchannels. A sender out of credits
   blocks on the flow's condition variable; a zero-window probe shipped
   every {!Config.credit_probe_interval} while blocked makes a lost
   grant (crash paths) unable to wedge the flow. All counters are plain
   cumulative ints — only the data-packet sequence number wraps. *)
type credit_tx = {
  ctx_mu : Mutex.t;
  ctx_cond : Condition.t;
  mutable ctx_shipped : int;
  mutable ctx_granted : int; (* receiver's consumed count, as last heard *)
}

type credit_rx = {
  mutable crx_consumed : int;
  mutable crx_last_grant : int; (* consumed count when we last granted *)
}

type credits = {
  cr_budget : int;
  cr_quantum : int;
  cr_tx : (int * int, credit_tx) Hashtbl.t; (* (src, dst) *)
  cr_rx : (int * int, credit_rx) Hashtbl.t; (* (me, origin) *)
  mutable cr_grants : int;
  mutable cr_probes : int;
  mutable cr_stalls : int;
}

(* Peak-tracking occupancy counter for one buffering point. *)
type probe_point = { mutable pp_cur : int; mutable pp_peak : int }

let pp_make () = { pp_cur = 0; pp_peak = 0 }

let pp_add p n =
  p.pp_cur <- p.pp_cur + n;
  if p.pp_cur > p.pp_peak then p.pp_peak <- p.pp_cur

let pp_sub p n = p.pp_cur <- p.pp_cur - n

(* One forwarding pump per (gateway node, outgoing link): the paper's
   per-direction dual-buffer pipeline (Fig. 9). Keeping the pumps
   per-link rather than per-node matters for liveness: a shared pump
   couples opposite forwarding directions through its buffer semaphore,
   and bidirectional all-pairs traffic through chained gateways can then
   form a circular wait. With per-link pumps the wait graph follows the
   (acyclic) routes, so chains and trees of clusters are deadlock-free. *)
type pump = {
  pump_q : (Generic_tm.packet_header * Bytes.t) Mailbox.t;
  pump_buffers : Semaphore.t; (* the two pipeline buffers *)
}

(* Live-topology plane, present only when the vchannel was created with
   [?topology] (clusterfile [version=]). The snapshot is the current
   epoch's membership; every simulated rank reads the same snapshot, so
   an epoch swap is one pointer assignment at the coordinator followed
   by a route recomputation. Joins and drains travel as [top] control
   packets over the data path, so they cross gateways, cost network
   time, and interleave with live traffic like any other packet. *)
type live = {
  mutable lv_coordinator : int;
      (* follows the snapshot's coordinator; mutable because a quorum
         election can move it away from the clusterfile's choice *)
  mutable lv_snapshot : Topology.t;
  lv_draining : (int, unit) Hashtbl.t;
      (* ranks mid-drain: still routable, but accept no new flows *)
  lv_extra : (int, int) Hashtbl.t; (* current extra pool slots per gateway *)
  lv_extra_peak : (int, int) Hashtbl.t; (* high-water extra, for bounds *)
  mutable lv_joins : int;
  mutable lv_drains : int;
  mutable lv_scale_outs : int;
  mutable lv_scale_ins : int;
  mutable lv_waiters : (unit -> unit) list;
      (* threads parked on the next epoch swap *)
}

(* Suppressed membership intents of a partitioned minority, replayed
   through the winning coordinator once the cut heals. *)
type intent = P_join of int | P_drain of int

(* Quorum-election plane, present only when the vchannel was created
   with [~election:true] (clusterfile [election=on]). Candidacy is
   epoch-numbered: term = current topology epoch + 1, and a commit is
   [Topology.with_coordinator] — which bumps the epoch to exactly the
   term — so two candidates can never both commit the same epoch: the
   loser's re-check ([epoch < term]) fails after the winner's swap.
   Ballots live in the candidate's {!Sentinel} tagged with the voter's
   crash epoch, so a restarted voter's stale ballot stops counting
   without any revocation traffic. *)
type elect = {
  el_quorum : int option; (* pinned ballot quorum ([?topo_quorum]);
                             [None] = majority of the current membership *)
  mutable el_term : int; (* highest term seen locally *)
  mutable el_elections : int; (* committed elections *)
  mutable el_attempts : int; (* candidacies started *)
  mutable el_refusals : int; (* candidacies/epoch bumps refused: no quorum *)
  mutable el_commits : (int * int) list; (* (epoch, coordinator), newest first *)
  mutable el_last_latency : Time.span; (* trigger -> commit, last election *)
  mutable el_running : bool; (* a candidacy is in flight *)
  mutable el_pending : intent list; (* minority's suppressed intents *)
}

type t = {
  engine : Engine.t;
  mtu : int;
  patience : Time.span;
  gateway_overhead : Time.span;
  extra_gateway_copy : bool;
  ingress_cap_mb_s : float option;
  next_ingress_slot : (int, Time.t ref) Hashtbl.t; (* per-gateway pacing *)
  channels : Channel.t list;
  all_ranks : int list;
  mutable routes : (int * int, hop list) Hashtbl.t;
  base_hops : (int * int, int) Hashtbl.t; (* route lengths at creation *)
  rel : rel option;
  mutable sched : Sched.t option; (* aggregating scheduler (sched=aggreg) *)
  assemblers : (int * int * int, Assembler.t) Hashtbl.t; (* (me, origin, flow) *)
  starts : (int * int * int, unit Mailbox.t) Hashtbl.t; (* message-start events *)
  incoming : (int, (int * int) Mailbox.t) Hashtbl.t;
      (* any-source: (origin, flow) queue *)
  pumps : (int * int * int, pump) Hashtbl.t; (* (node, out chan id, out dst) *)
  send_locks : (int * int * int, Mutex.t) Hashtbl.t;
      (* per-(src, dst, flow) message serialization *)
  fwd_stats : (int, int ref * int ref) Hashtbl.t; (* node -> packets, bytes *)
  credits : credits option;
  gw_pool : int; (* forwarding buffers per pump (2 = paper's dual buffer) *)
  gw_high : int; (* busy slots at which a gateway reports Overloaded *)
  gw_low : int; (* busy slots at which the report clears (hysteresis) *)
  overload_track : bool; (* watermark machinery on (credits or gw_pool set) *)
  overloaded : (int, unit) Hashtbl.t; (* gateways above their watermark *)
  gw_busy : (int, int ref) Hashtbl.t; (* per-node busy pool slots *)
  overload_gen : (int, int) Hashtbl.t; (* cancels stale hold timers *)
  mutable overload_events : int; (* Overloaded transitions (rising edges) *)
  mutable on_overload_change : unit -> unit; (* rel: recompute + reemit *)
  live : live option; (* live topology (clusterfile version=) *)
  elect : elect option; (* quorum elections (clusterfile election=on) *)
  mutable on_topo_change : unit -> unit; (* epoch swap: recompute + reemit *)
  mutable on_col : me:int -> origin:int -> Bytes.t -> unit;
      (* collective-control packets, delivered to the Collectives layer *)
  mutable on_health_change : unit -> unit;
      (* any liveness/overload/epoch transition; Collectives repair hook *)
  asm_depth : (int * int, probe_point) Hashtbl.t; (* (me, origin) -> bytes *)
  pump_depth : (int, probe_point) Hashtbl.t; (* node -> busy pool slots *)
  unacked_peak : (int * int, int ref) Hashtbl.t; (* flow -> log peak *)
  unacked_cap : int; (* bound on the origin re-emission log, in packets *)
}

let memo table key mk =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.add table key v;
      v

let starts t ~me ~origin ~flow =
  memo t.starts (me, origin, flow) (fun () -> Mailbox.create ())

let incoming t ~me = memo t.incoming me (fun () -> Mailbox.create ())
let send_lock t ~src ~dst ~flow = memo t.send_locks (src, dst, flow) Mutex.create
let ranks t = t.all_ranks

let check_ranks t op src dst =
  if not (List.mem src t.all_ranks && List.mem dst t.all_ranks) then
    invalid_arg
      (Printf.sprintf "Vchannel.%s: rank %d or %d not part of the virtual \
                       channel (ranks %s)"
         op src dst
         (String.concat "," (List.map string_of_int t.all_ranks)))

let find_route t op ~src ~dst =
  check_ranks t op src dst;
  if src = dst then Some []
  else Hashtbl.find_opt t.routes (src, dst)

let no_route op src dst =
  Partitioned (Printf.sprintf "Vchannel.%s: no route from %d to %d" op src dst)

let route_length t ~src ~dst =
  match find_route t "route_length" ~src ~dst with
  | Some hops -> List.length hops
  | None -> raise (no_route "route_length" src dst)

let route_via t ~src ~dst =
  match find_route t "route_via" ~src ~dst with
  | Some hops -> List.map (fun h -> h.hop_to) hops
  | None -> raise (no_route "route_via" src dst)

let record_forward t ~node ~bytes_count =
  let packets, bytes =
    match Hashtbl.find_opt t.fwd_stats node with
    | Some entry -> entry
    | None ->
        let entry = (ref 0, ref 0) in
        Hashtbl.add t.fwd_stats node entry;
        entry
  in
  incr packets;
  bytes := !bytes + bytes_count

let forwarded t =
  Hashtbl.fold (fun node (p, b) acc -> (node, !p, !b) :: acc) t.fwd_stats []
  |> List.sort compare

(* Fewest-channel-hops routing over the channel membership graph:
   breadth-first search keeping (node -> predecessor node * hop).
   [down u v] excludes the hop u -> v: crashed or departed nodes are
   down for every u, and viewer-relative suspicion (quorum-election
   vchannels) makes the predicate genuinely edge-shaped — a hop exists
   only when its sender trusts its receiver, so a route never enters a
   region its own relays would refuse to forward into. With a
   viewer-blind predicate this reduces exactly to the old node
   exclusion. *)
let compute_routes ?(down = fun _ _ -> false) channels all_ranks =
  let routes = Hashtbl.create 64 in
  (* Per-node adjacency, built once per call: for each node, the channels
     containing it (in channel-list order) with their member lists. The
     BFS below visits exactly the nodes the naive per-pop channel rescan
     visited, in the same order — routes are unchanged; only the
     O(channels × members) scan per frontier pop goes away, which
     dominates route computation beyond a few hundred ranks. *)
  let adj : (int, (Channel.t * int list) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun c ->
      let members = Channel.ranks c in
      List.iter
        (fun u ->
          match Hashtbl.find_opt adj u with
          | Some cell -> cell := (c, members) :: !cell
          | None -> Hashtbl.add adj u (ref [ (c, members) ]))
        members)
    channels;
  let adj_of u =
    match Hashtbl.find_opt adj u with Some cell -> List.rev !cell | None -> []
  in
  List.iter
    (fun src ->
      if not (down src src) then begin
        let pred : (int, int * hop) Hashtbl.t = Hashtbl.create 16 in
        let visited = Hashtbl.create 16 in
        Hashtbl.add visited src ();
        let frontier = Queue.create () in
        Queue.push src frontier;
        while not (Queue.is_empty frontier) do
          let u = Queue.pop frontier in
          List.iter
            (fun (c, members) ->
              List.iter
                (fun v ->
                  if v <> u && (not (down u v)) && not (Hashtbl.mem visited v)
                  then begin
                    Hashtbl.add visited v ();
                    Hashtbl.add pred v (u, { hop_channel = c; hop_to = v });
                    Queue.push v frontier
                  end)
                members)
            (adj_of u)
        done;
        List.iter
          (fun dst ->
            if dst <> src && Hashtbl.mem pred dst then begin
              let rec path v acc =
                if v = src then acc
                else
                  let u, hop = Hashtbl.find pred v in
                  path u (hop :: acc)
              in
              Hashtbl.add routes (src, dst) (path dst [])
            end)
          all_ranks
      end)
    all_ranks;
  routes

let next_hop t ~at ~dst =
  match Hashtbl.find_opt t.routes (at, dst) with
  | Some (hop :: _) -> hop
  | Some [] | None -> (
      match t.rel with
      | Some _ ->
          raise
            (Partitioned
               (Printf.sprintf "Vchannel: no route from %d to %d" at dst))
      | None ->
          invalid_arg (Printf.sprintf "Vchannel: no route from %d to %d" at dst))

let touch_sentinel t ~rank =
  match t.rel with
  | None -> ()
  | Some r -> (
      match Hashtbl.find_opt r.sentinels rank with
      | Some s -> Sentinel.touch s
      | None -> ())

(* Wait — bounded by the vchannel's patience — for a route recomputation
   to restore a path from [at] to [dst]. A node restarting with a new
   epoch is unroutable for the length of its restart window; waiting it
   out here is what lets in-flight flows survive a crash-restart instead
   of dying on the transient hole. *)
let wait_route t r ~at ~dst =
  let deadline = Time.add (Engine.now t.engine) t.patience in
  while
    (not (Hashtbl.mem t.routes (at, dst)))
    && Time.( < ) (Engine.now t.engine) deadline
  do
    Engine.suspend ~name:"vchannel.route" (fun wake ->
        let woken = ref false in
        let wake_once () =
          if not !woken then begin
            woken := true;
            wake ()
          end
        in
        r.route_waiters <- wake_once :: r.route_waiters;
        Engine.at t.engine deadline wake_once)
  done;
  if not (Hashtbl.mem t.routes (at, dst)) then
    raise (Partitioned (Printf.sprintf "Vchannel: no route from %d to %d" at dst))

(* Ship one self-described packet as a regular Madeleine message on the
   next real channel: EXPRESS header, CHEAPER payload. On a reliable
   vchannel a dead next hop aborts the message on the real channel and
   retries over the (by then recomputed) routes; a missing route is
   waited out with [wait_route]; when no route survives the flow is
   partitioned. *)
let ship_packet t ~at ~header ~payload ~payload_len =
  let dst = header.Generic_tm.final_dst in
  touch_sentinel t ~rank:at;
  let rec go attempts =
    match next_hop t ~at ~dst with
    | exception Partitioned _ ->
        (match t.rel with
        | None -> raise (no_route "ship_packet" at dst)
        | Some r -> wait_route t r ~at ~dst);
        go attempts
    | hop -> (
        let ep = Channel.endpoint hop.hop_channel ~rank:at in
        (* Endpoint-to-endpoint iff this hop starts at the packet's
           origin and lands on its final destination; anything else is a
           gateway transit hop, whose payload lives in protocol staging
           buffers — the Switch must not hand it to the zero-copy
           rendezvous. The receiver computes the same predicate from the
           header it just unpacked, so selection mirrors. *)
        let transit =
          at <> header.Generic_tm.origin || hop.hop_to <> dst
        in
        let oc = Api.begin_packing ep ~remote:hop.hop_to in
        match
          Api.pack oc ~r_mode:Iface.Receive_express
            (Generic_tm.encode_header header);
          if payload_len > 0 then
            Api.pack oc ~r_mode:Iface.Receive_cheaper ~transit ~len:payload_len
              payload;
          Api.end_packing oc
        with
        | () -> ()
        | exception Config.Peer_unreachable msg ->
            Api.abort_packing oc;
            if t.rel = None then raise (Config.Peer_unreachable msg)
            else if attempts >= 3 then raise (Partitioned msg)
            else go (attempts + 1))
  in
  go 0

let flow_ref table key = memo table key (fun () -> ref 0)
let unacked_q r key = memo r.unacked key (fun () -> Queue.create ())

(* The origin trims its unacknowledged log on a cumulative ack. The
   16-bit sequence space wraps, so "at or before the acked number" is
   the circular half-space test: [acked - s] (mod 2^16) < 2^15. Entries
   are queued in emission order, so trimming pops from the front while
   the head is inside that window — a cumulative trim even when the
   exact acked packet was already trimmed by an earlier (reordered) ack.
   The log is capped at the flow-control window, which keeps every live
   entry well inside the half-space and makes a stale ack unable to eat
   unacked packets. Senders blocked on a full log are woken. *)
let handle_ack r header =
  let key = (header.Generic_tm.final_dst, header.Generic_tm.origin) in
  (match Hashtbl.find_opt r.unacked key with
  | None -> ()
  | Some q ->
      let acked = header.Generic_tm.seq in
      let at_or_before s = (acked - s) land 0xffff < 0x8000 in
      let continue = ref true in
      while !continue && not (Queue.is_empty q) do
        let s, _, _ = Queue.peek q in
        if at_or_before s then ignore (Queue.pop q) else continue := false
      done);
  let waiters = r.ack_waiters in
  r.ack_waiters <- [];
  List.iter (fun wake -> wake ()) waiters

(* ------------------------------------------------------------------ *)
(* Credit plane *)

let credit_tx_state c key =
  memo c.cr_tx key (fun () ->
      {
        ctx_mu = Mutex.create ();
        ctx_cond = Condition.create ();
        ctx_shipped = 0;
        ctx_granted = 0;
      })

let credit_rx_state c key =
  memo c.cr_rx key (fun () -> { crx_consumed = 0; crx_last_grant = 0 })

(* Cumulative grant from the consumer [me] back to the flow's origin: a
   [crd] packet whose 4-byte payload is the number of data packets
   consumed so far. On reliable vchannels it piggybacks the flow's
   cumulative ack ([ack] flag + [seq]), so a grant also trims the
   origin's re-emission log. Rides the normal routed path — gateways
   forward it like data. Best-effort: a lost grant is recovered by the
   sender's zero-window probe. *)
let send_grant t c ~me ~origin =
  let crx = credit_rx_state c (me, origin) in
  crx.crx_last_grant <- crx.crx_consumed;
  c.cr_grants <- c.cr_grants + 1;
  let consumed = crx.crx_consumed in
  let ack, seq =
    match t.rel with
    | Some r ->
        let expected = !(flow_ref r.rx_next (me, origin)) in
        if expected > 0 then (true, (expected - 1) land 0xffff) else (false, 0)
    | None -> (false, 0)
  in
  let header =
    {
      Generic_tm.final_dst = origin;
      origin = me;
      payload_len = 4;
      first = false;
      last = false;
      seq;
      ack;
      hs = false;
      crd = true;
      agg = false;
      top = false;
      col = false;
    }
  in
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.grant.%d->%d" me origin)
    (fun () ->
      let payload = Bytes.create 4 in
      Bytes.set_int32_le payload 0 (Int32.of_int consumed);
      try ship_packet t ~at:me ~header ~payload ~payload_len:4
      with Partitioned _ | Config.Peer_unreachable _ -> ())

(* Zero-window probe from a credit-blocked sender: an empty [crd] packet
   the receiver answers with a fresh grant. Covers grants lost to crash
   paths, so a blocked flow can always make progress once the receiver
   consumes. *)
let send_probe t c ~src ~dst =
  c.cr_probes <- c.cr_probes + 1;
  let header =
    {
      Generic_tm.final_dst = dst;
      origin = src;
      payload_len = 0;
      first = false;
      last = false;
      seq = 0;
      ack = false;
      hs = false;
      crd = true;
      agg = false;
      top = false;
      col = false;
    }
  in
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.probe.%d->%d" src dst)
    (fun () ->
      try ship_packet t ~at:src ~header ~payload:Bytes.empty ~payload_len:0
      with Partitioned _ | Config.Peer_unreachable _ -> ())

(* One user unpack drained a whole packet payload at [me]: account the
   buffered bytes away and replenish the origin's credits once a grant
   quantum's worth has been consumed. *)
let note_consumed t ~me ~origin chunk_len =
  (match Hashtbl.find_opt t.asm_depth (me, origin) with
  | Some pp -> pp_sub pp chunk_len
  | None -> ());
  match t.credits with
  | None -> ()
  | Some c ->
      let crx = credit_rx_state c (me, origin) in
      crx.crx_consumed <- crx.crx_consumed + 1;
      if crx.crx_consumed - crx.crx_last_grant >= c.cr_quantum then
        send_grant t c ~me ~origin

(* One assembler per (me, origin, flow): logical flows have independent
   byte streams. Consumption accounting stays per (me, origin) — credits
   meter the pair, whichever flows the bytes belong to. *)
let assembler t ~me ~origin ~flow =
  memo t.assemblers (me, origin, flow) (fun () ->
      let a = Assembler.create () in
      a.Assembler.on_pop <- (fun n -> note_consumed t ~me ~origin n);
      a)

let asm_pp t ~me ~origin = memo t.asm_depth (me, origin) pp_make

(* A grant (or probe answer) reached the flow's origin [me]. Grants are
   cumulative, so reordered or duplicated ones apply monotonically. *)
let handle_crd t ~me header payload =
  (match (t.rel, header.Generic_tm.ack) with
  | Some r, true -> handle_ack r header
  | _ -> ());
  match t.credits with
  | None -> () (* stray credit packet on a credit-less vchannel *)
  | Some c ->
      if header.Generic_tm.payload_len >= 4 then begin
        let consumed = Int32.to_int (Bytes.get_int32_le payload 0) in
        let ctx = credit_tx_state c (me, header.Generic_tm.origin) in
        if consumed > ctx.ctx_granted then begin
          ctx.ctx_granted <- consumed;
          Condition.broadcast ctx.ctx_cond
        end
      end
      else begin
        (* Zero-window probe: answer with the current consumed count,
           unless this host is down. *)
        match t.rel with
        | Some r when not (Simnet.Faults.node_up r.faults me) -> ()
        | _ -> send_grant t c ~me ~origin:header.Generic_tm.origin
      end

(* Cumulative ack from [me] back to the flow's origin, riding the normal
   routed path as a zero-payload packet. Best-effort: a lost or
   unroutable ack only delays trimming of the origin's log. *)
let send_ack t r ~me ~origin =
  let expected = !(flow_ref r.rx_next (me, origin)) in
  if expected > 0 then begin
    let header =
      {
        Generic_tm.final_dst = origin;
        origin = me;
        payload_len = 0;
        first = false;
        last = false;
        seq = (expected - 1) land 0xffff;
        ack = true;
        hs = false;
        crd = false;
        agg = false;
        top = false;
        col = false;
      }
    in
    Engine.spawn t.engine ~daemon:true
      ~name:(Printf.sprintf "vchannel.ack.%d->%d" me origin)
      (fun () ->
        try ship_packet t ~at:me ~header ~payload:Bytes.empty ~payload_len:0
        with Partitioned _ | Config.Peer_unreachable _ -> ())
  end

(* Session handshake, received by a freshly restarted node: the peer
   tells us where its delivery journal stands ([seq] = next sequence it
   expects from us) and which restart epoch it is answering ([payload] =
   our epoch, 4 bytes LE — it rides as real payload so gateways forward
   it like any other packet). We resume our send cursor at the highest
   such expectation and unblock sends that were waiting on the lost
   cursor. A handshake for a previous epoch is stale and ignored. *)
let handle_hs r ~me header payload =
  let peer = header.Generic_tm.origin in
  let epoch =
    if Bytes.length payload >= 4 then Int32.to_int (Bytes.get_int32_le payload 0)
    else -1
  in
  if epoch = Simnet.Faults.epoch r.faults me then begin
    let resume = header.Generic_tm.seq in
    let sq = flow_ref r.tx_seq (me, peer) in
    if resume > !sq then sq := resume;
    Hashtbl.remove r.tx_lost (me, peer);
    r.handshakes <- r.handshakes + 1;
    let waiters = r.hs_waiters in
    r.hs_waiters <- [];
    List.iter (fun wake -> wake ()) waiters
  end

(* Block a send on a flow whose cursor was lost to a crash until the
   peer's handshake restores it — or patience runs out (peer never comes
   back, or never held any of our data so no handshake will come). *)
let wait_handshake t r ~src ~dst =
  if Hashtbl.mem r.tx_lost (src, dst) then begin
    let deadline = Time.add (Engine.now t.engine) t.patience in
    while
      Hashtbl.mem r.tx_lost (src, dst)
      && Time.( < ) (Engine.now t.engine) deadline
    do
      Engine.suspend ~name:"vchannel.handshake" (fun wake ->
          let woken = ref false in
          let wake_once () =
            if not !woken then begin
              woken := true;
              wake ()
            end
          in
          r.hs_waiters <- wake_once :: r.hs_waiters;
          Engine.at t.engine deadline wake_once)
    done;
    if Hashtbl.mem r.tx_lost (src, dst) then
      raise
        (Partitioned
           (Printf.sprintf
              "Vchannel: flow %d->%d lost its session to a crash and no \
               handshake restored it"
              src dst))
  end

(* ------------------------------------------------------------------ *)
(* Live topology: the join/drain control plane. Membership changes are
   arbitrated by the coordinator; requests and acknowledgments travel
   as [top] packets on the data path (gateways forward them like data),
   and the epoch swap itself is [apply_swap]: publish the new snapshot,
   recompute routes, re-emit only the flows whose routes changed. *)

let top_join_req = 1
let top_join_ack = 2
let top_drain_req = 3

(* Election ops ride the same [top] control plane. Their payload is the
   9-byte membership layout extended by two fields: the sender's highest
   committed epoch and a watermark — the candidate's delivery-journal
   depth on a vote request (the audit surface for highest-committed-wins
   reconciliation), the voter's crash epoch on a vote ack (what lets the
   candidate discard ballots from voters that have since restarted). *)
let top_vote_req = 4
let top_vote_ack = 5
let top_coord = 6
let top_payload_size = 9
let top_ext_payload_size = 17

let top_payload ~op ~rank ~epoch =
  let b = Bytes.create top_payload_size in
  Bytes.set b 0 (Char.chr op);
  Bytes.set_int32_le b 1 (Int32.of_int rank);
  Bytes.set_int32_le b 5 (Int32.of_int epoch);
  b

let top_ext_payload ~op ~rank ~term ~committed ~watermark =
  let b = Bytes.create top_ext_payload_size in
  Bytes.set b 0 (Char.chr op);
  Bytes.set_int32_le b 1 (Int32.of_int rank);
  Bytes.set_int32_le b 5 (Int32.of_int term);
  Bytes.set_int32_le b 9 (Int32.of_int committed);
  Bytes.set_int32_le b 13 (Int32.of_int watermark);
  b

let top_header ~src ~dst ~len =
  {
    Generic_tm.final_dst = dst;
    origin = src;
    payload_len = len;
    first = false;
    last = false;
    seq = 0;
    ack = false;
    hs = false;
    crd = false;
    agg = false;
    top = true;
    col = false;
  }

let topo_wake lv =
  let waiters = lv.lv_waiters in
  lv.lv_waiters <- [];
  List.iter (fun wake -> wake ()) waiters

(* Park until [until ()] holds or patience runs out; epoch swaps wake
   every parked thread. Returns whether the condition was reached. *)
let topo_wait t lv ~until =
  let deadline = Time.add (Engine.now t.engine) t.patience in
  while (not (until ())) && Time.( < ) (Engine.now t.engine) deadline do
    Engine.suspend ~name:"vchannel.topology" (fun wake ->
        let woken = ref false in
        let wake_once () =
          if not !woken then begin
            woken := true;
            wake ()
          end
        in
        lv.lv_waiters <- wake_once :: lv.lv_waiters;
        Engine.at t.engine deadline wake_once)
  done;
  until ()

let shares_channel t a b =
  List.exists
    (fun c -> List.mem a (Channel.ranks c) && List.mem b (Channel.ranks c))
    t.channels

(* Drop every suspicion record involving [rank] — as the suspect (any
   observer's entry) and as an observer (its own verdicts die with its
   departure), keeping the by-any count in step. *)
let unsuspect_all r rank =
  let stale =
    Hashtbl.fold
      (fun ((o, p) as key) () acc ->
        if o = rank || p = rank then key :: acc else acc)
      r.suspected []
  in
  List.iter
    (fun ((_, p) as key) ->
      Hashtbl.remove r.suspected key;
      match Hashtbl.find_opt r.susp_count p with
      | Some n when n <= 1 -> Hashtbl.remove r.susp_count p
      | Some n -> Hashtbl.replace r.susp_count p (n - 1)
      | None -> ())
    stale

let sentinels_learn t rank =
  match t.rel with
  | None -> ()
  | Some r ->
      unsuspect_all r rank;
      Hashtbl.iter
        (fun me s ->
          if me <> rank && shares_channel t me rank then Sentinel.learn s rank)
        r.sentinels

(* Dropping a departed rank from every detector is what keeps a
   long-lived elastic session's phi-accrual state from growing without
   bound — and what stops a sentinel from suspecting a rank that left
   gracefully. Sentinel.forget also voids the rank's recorded ballots,
   so a drained rank stops counting toward any quorum. *)
let sentinels_forget t rank =
  match t.rel with
  | None -> ()
  | Some r ->
      unsuspect_all r rank;
      Hashtbl.iter
        (fun me s -> if me <> rank then Sentinel.forget s rank)
        r.sentinels

let apply_swap t lv snap =
  lv.lv_snapshot <- snap;
  lv.lv_coordinator <- Topology.coordinator snap;
  t.on_topo_change ();
  t.on_health_change ();
  topo_wake lv

let send_top t ~src ~dst ~op ~rank ~epoch =
  let payload = top_payload ~op ~rank ~epoch in
  let header = top_header ~src ~dst ~len:top_payload_size in
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.top.%d->%d" src dst)
    (fun () ->
      try
        ship_packet t ~at:src ~header ~payload ~payload_len:top_payload_size
      with Partitioned _ | Config.Peer_unreachable _ -> ())

let send_top_ext t ~src ~dst ~op ~rank ~term ~committed ~watermark =
  let payload = top_ext_payload ~op ~rank ~term ~committed ~watermark in
  let header = top_header ~src ~dst ~len:top_ext_payload_size in
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.top.%d->%d" src dst)
    (fun () ->
      try
        ship_packet t ~at:src ~header ~payload
          ~payload_len:top_ext_payload_size
      with Partitioned _ | Config.Peer_unreachable _ -> ())

(* The members of [viewer]'s side of the world: reachable over hops
   whose sender trusts the receiver (the routes are computed with the
   edge-shaped [down] predicate, so presence of a route IS trust-path
   reachability), plus [viewer] itself. Under no partition this is the
   whole live membership. *)
let side_members t lv ~viewer =
  List.filter
    (fun m ->
      (match t.rel with
      | Some r -> Simnet.Faults.node_up r.faults m
      | None -> true)
      && (m = viewer || Hashtbl.mem t.routes (viewer, m)))
    (Topology.ranks lv.lv_snapshot)

(* The ballot quorum in force right now. Unpinned, it is a majority of
   the CURRENT committed membership, not of the founding one — so a
   legitimately shrunk topology (drains below the founding majority)
   keeps its liveness, while two disjoint partition sides still can
   never both hold a majority of the same membership. *)
let quorum_needed lv el =
  match el.el_quorum with
  | Some q -> q
  | None -> (List.length (Topology.ranks lv.lv_snapshot) / 2) + 1

let side_has_quorum t lv el ~viewer =
  List.length (side_members t lv ~viewer) >= quorum_needed lv el

(* Depth of a rank's delivery journals — the watermark a candidacy
   carries so reconciliation debates are auditable on the wire. *)
let journal_watermark t rank =
  match t.rel with
  | None -> 0
  | Some r ->
      Hashtbl.fold
        (fun (me, _) expected acc ->
          if me = rank then acc + !expected else acc)
        r.rx_next 0

let handle_top t ~me header payload =
  match t.live with
  | None -> () (* stray control packet on a fixed-topology vchannel *)
  | Some lv ->
      let alive =
        match t.rel with
        | Some r -> Simnet.Faults.node_up r.faults me
        | None -> true
      in
      if alive && Bytes.length payload >= top_payload_size then begin
        let op = Char.code (Bytes.get payload 0) in
        let rank = Int32.to_int (Bytes.get_int32_le payload 1) in
        ignore header;
        (* A coordinator that cannot see a quorum refuses to bump the
           epoch: a partitioned minority must surface typed errors, not
           diverge from the majority's membership history. Without an
           election plane the static coordinator always commits. *)
        let may_commit () =
          match t.elect with
          | None -> true
          | Some el ->
              let ok = side_has_quorum t lv el ~viewer:me in
              if not ok then el.el_refusals <- el.el_refusals + 1;
              ok
        in
        if op = top_join_req then begin
          if
            me = lv.lv_coordinator
            && (not (Topology.mem lv.lv_snapshot rank))
            && may_commit ()
          then begin
            let snap = Topology.join lv.lv_snapshot rank in
            lv.lv_joins <- lv.lv_joins + 1;
            Hashtbl.remove lv.lv_draining rank;
            sentinels_learn t rank;
            apply_swap t lv snap;
            (* The swap above made the joiner routable; the ack rides
               the recomputed routes and carries the epoch it joined. *)
            send_top t ~src:me ~dst:rank ~op:top_join_ack ~rank
              ~epoch:(Topology.epoch snap)
          end
        end
        else if op = top_join_ack then topo_wake lv
        else if op = top_drain_req then begin
          if
            me = lv.lv_coordinator
            && Topology.mem lv.lv_snapshot rank
            && rank <> lv.lv_coordinator
            && may_commit ()
          then begin
            let snap = Topology.drain lv.lv_snapshot rank in
            lv.lv_drains <- lv.lv_drains + 1;
            Hashtbl.remove lv.lv_draining rank;
            Hashtbl.remove t.overloaded rank;
            sentinels_forget t rank;
            apply_swap t lv snap
          end
        end
        else if Bytes.length payload >= top_ext_payload_size then begin
          let term = Int32.to_int (Bytes.get_int32_le payload 5) in
          let committed = Int32.to_int (Bytes.get_int32_le payload 9) in
          let watermark = Int32.to_int (Bytes.get_int32_le payload 13) in
          if op = top_vote_req then begin
            (* [rank] asks for this rank's ballot in [term]. Refuse
               candidates behind our committed epoch (highest-committed
               wins on merge) and grant at most one ballot per term; the
               ack carries our crash epoch so the candidate can discard
               the ballot if we restart before it counts. *)
            match (t.elect, t.rel) with
            | Some el, Some r when Topology.mem lv.lv_snapshot me ->
                el.el_term <- max el.el_term term;
                if committed >= Topology.epoch lv.lv_snapshot then begin
                  match Hashtbl.find_opt r.sentinels me with
                  | Some s when Sentinel.grant_vote s ~term ->
                      send_top_ext t ~src:me ~dst:rank ~op:top_vote_ack
                        ~rank:me ~term
                        ~committed:(Topology.epoch lv.lv_snapshot)
                        ~watermark:(Simnet.Faults.epoch r.faults me)
                  | _ -> ()
                end
            | _ -> ()
          end
          else if op = top_vote_ack then begin
            (* A ballot granted to this rank: [watermark] is the voter's
               crash epoch at the grant. *)
            match (t.elect, t.rel) with
            | Some _, Some r ->
                (match Hashtbl.find_opt r.sentinels me with
                | Some s ->
                    Sentinel.record_ballot s ~voter:rank ~term
                      ~voter_epoch:watermark
                | None -> ());
                topo_wake lv
            | _ -> ()
          end
          else if op = top_coord then
            (* Commit announcement from the winner; the swap itself
               already happened at the electorate's shared snapshot —
               this packet is what makes the result observable on the
               wire and wakes anyone parked on the old coordinator. *)
            topo_wake lv
        end
      end

(* ------------------------------------------------------------------ *)
(* Collective control plane. The Collectives layer (see collectives.ml)
   rides [col] packets over the ordinary forwarding path: contributions
   travel up a spanning tree, decisions travel down it, and gateways
   forward them like data. The vchannel stays policy-free here — it
   only delivers [col] payloads to whatever handler the layer installed
   and ships the ones the layer emits, exactly like the [top] plane. *)

let col_header ~src ~dst ~len =
  {
    Generic_tm.final_dst = dst;
    origin = src;
    payload_len = len;
    first = false;
    last = false;
    seq = 0;
    ack = false;
    hs = false;
    crd = false;
    agg = false;
    top = false;
    col = true;
  }

let send_col t ~src ~dst payload =
  check_ranks t "send_col" src dst;
  let len = Bytes.length payload in
  let header = col_header ~src ~dst ~len in
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.col.%d->%d" src dst)
    (fun () ->
      try ship_packet t ~at:src ~header ~payload ~payload_len:len
      with Partitioned _ | Config.Peer_unreachable _ -> ())

let set_on_col t f = t.on_col <- f
let set_on_health_change t f = t.on_health_change <- f

let handle_col t ~me header payload =
  let alive =
    match t.rel with
    | Some r -> Simnet.Faults.node_up r.faults me
    | None -> true
  in
  if alive then t.on_col ~me ~origin:header.Generic_tm.origin payload

(* Physical neighbours: the ranks sharing at least one channel with
   [rank], in channel-list then member-list order. The Collectives
   layer builds its spanning trees over this graph, so every tree edge
   is a single fabric link and interior nodes are genuine gateways. *)
let neighbours t rank =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  List.iter
    (fun c ->
      let members = Channel.ranks c in
      if List.mem rank members then
        List.iter
          (fun v ->
            if v <> rank && not (Hashtbl.mem seen v) then begin
              Hashtbl.add seen v ();
              out := v :: !out
            end)
          members)
    t.channels;
  List.rev !out

(* A joining rank is not yet routable (routes exclude non-members), so
   its join request takes one membership-blind physical hop toward the
   coordinator; from that member node on, the packet rides the normal
   routed path like any transit packet. *)
let ship_top_physical t ~at ~dst ~payload =
  let down _viewer n =
    match t.rel with
    | Some r -> not (Simnet.Faults.node_up r.faults n)
    | None -> false
  in
  let phys = compute_routes ~down t.channels t.all_ranks in
  match Hashtbl.find_opt phys (at, dst) with
  | Some (hop :: _) ->
      let header = top_header ~src:at ~dst ~len:(Bytes.length payload) in
      (* Mirror of the dispatcher's transit predicate: this hop is
         endpoint-to-endpoint iff it lands on the final destination. *)
      let transit = hop.hop_to <> dst in
      let ep = Channel.endpoint hop.hop_channel ~rank:at in
      let oc = Api.begin_packing ep ~remote:hop.hop_to in
      (try
         Api.pack oc ~r_mode:Iface.Receive_express
           (Generic_tm.encode_header header);
         Api.pack oc ~r_mode:Iface.Receive_cheaper ~transit
           ~len:(Bytes.length payload) payload;
         Api.end_packing oc
       with Config.Peer_unreachable msg ->
         Api.abort_packing oc;
         raise (Partitioned msg))
  | Some [] | None ->
      raise
        (Partitioned
           (Printf.sprintf
              "Vchannel.join: no physical path from %d to coordinator %d" at
              dst))

(* ------------------------------------------------------------------ *)
(* Quorum elections. A candidacy is one epoch-numbered round: term =
   current epoch + 1, a self-vote plus vote requests to every live
   member, then a patience-bounded wait for [el_quorum] countable
   ballots. The commit is [Topology.with_coordinator], which advances
   the epoch to exactly the term — and is guarded by a lost-race
   re-check, so of two concurrent candidacies in the same term at most
   one ever commits that epoch. A minority side's candidacy simply
   never reaches quorum and is recorded as a refusal. *)

(* The lowest live member of [viewer]'s side — who should stand. *)
let elect_candidate t lv ~viewer =
  match side_members t lv ~viewer with c :: _ -> Some c | [] -> None

let run_election t lv el ~candidate =
  match t.rel with
  | None -> ()
  | Some r ->
      if el.el_running then
        (* A candidacy is already in flight; park until it settles so
           callers retrying a join/drain observe its outcome. *)
        ignore (topo_wait t lv ~until:(fun () -> not el.el_running))
      else begin
        el.el_running <- true;
        el.el_attempts <- el.el_attempts + 1;
        let started = Engine.now t.engine in
        let term = Topology.epoch lv.lv_snapshot + 1 in
        el.el_term <- max el.el_term term;
        let committed = Topology.epoch lv.lv_snapshot in
        (match Hashtbl.find_opt r.sentinels candidate with
        | None -> el.el_refusals <- el.el_refusals + 1
        | Some s ->
            if Sentinel.grant_vote s ~term then
              Sentinel.record_ballot s ~voter:candidate ~term
                ~voter_epoch:(Simnet.Faults.epoch r.faults candidate);
            List.iter
              (fun peer ->
                if peer <> candidate && Simnet.Faults.node_up r.faults peer
                then
                  send_top_ext t ~src:candidate ~dst:peer ~op:top_vote_req
                    ~rank:candidate ~term ~committed
                    ~watermark:(journal_watermark t candidate))
              (Topology.ranks lv.lv_snapshot);
            let quorum_now () =
              List.length (Sentinel.ballots s ~term) >= quorum_needed lv el
            in
            let won = topo_wait t lv ~until:quorum_now in
            if
              won
              && Topology.epoch lv.lv_snapshot < term
              && candidate <> Topology.coordinator lv.lv_snapshot
            then begin
              let snap = Topology.with_coordinator lv.lv_snapshot candidate in
              el.el_elections <- el.el_elections + 1;
              el.el_commits <-
                (Topology.epoch snap, candidate) :: el.el_commits;
              el.el_last_latency <- Time.diff (Engine.now t.engine) started;
              apply_swap t lv snap;
              List.iter
                (fun peer ->
                  if peer <> candidate then
                    send_top_ext t ~src:candidate ~dst:peer ~op:top_coord
                      ~rank:candidate ~term
                      ~committed:(Topology.epoch snap)
                      ~watermark:(journal_watermark t candidate))
                (Topology.ranks lv.lv_snapshot)
            end
            else if not won then el.el_refusals <- el.el_refusals + 1);
        el.el_running <- false;
        topo_wake lv
      end

(* Post-heal reconciliation: the shared snapshot already embodies the
   majority's history (highest-committed-wins is structural — the
   minority was refused every bump), so merging is replaying the
   loser's suppressed join/drain intents through the winning
   coordinator. Idempotent against the coordinator's membership guards;
   intents that still cannot get through go back on the pending list
   for the next heal. *)
let replay_pending t lv el =
  let pend = List.rev el.el_pending in
  el.el_pending <- [];
  List.iter
    (fun intent ->
      match intent with
      | P_join rank ->
          if not (Topology.mem lv.lv_snapshot rank) then begin
            let attempt () =
              let payload =
                top_payload ~op:top_join_req ~rank
                  ~epoch:(Topology.epoch lv.lv_snapshot)
              in
              (try
                 ship_top_physical t ~at:rank ~dst:lv.lv_coordinator ~payload
               with Partitioned _ | Config.Peer_unreachable _ -> ());
              topo_wait t lv ~until:(fun () ->
                  Topology.mem lv.lv_snapshot rank)
            in
            if not (attempt () || attempt ()) then
              el.el_pending <- P_join rank :: el.el_pending
          end
      | P_drain rank ->
          if
            Topology.mem lv.lv_snapshot rank && rank <> lv.lv_coordinator
          then begin
            (* The routed drain notification needs the trust paths back
               first: suspicion drains via Up probes shortly after the
               heal, so wait for the rank-to-coordinator route before
               shipping (patience-bounded; a failed ship is retried
               once, then the intent goes back on the pending list). *)
            ignore
              (topo_wait t lv ~until:(fun () ->
                   Hashtbl.mem t.routes (rank, lv.lv_coordinator)));
            let attempt () =
              let payload =
                top_payload ~op:top_drain_req ~rank
                  ~epoch:(Topology.epoch lv.lv_snapshot)
              in
              let header =
                top_header ~src:rank ~dst:lv.lv_coordinator
                  ~len:top_payload_size
              in
              (try
                 ship_packet t ~at:rank ~header ~payload
                   ~payload_len:top_payload_size
               with Partitioned _ | Config.Peer_unreachable _ -> ());
              topo_wait t lv ~until:(fun () ->
                  not (Topology.mem lv.lv_snapshot rank))
            in
            if not (attempt () || attempt ()) then
              el.el_pending <- P_drain rank :: el.el_pending
          end)
    pend

(* Deliver a packet that reached its final node. Reliable vchannels
   accept only the expected sequence number (re-emitted duplicates and
   overtaking packets are dropped) and acknowledge cumulatively. *)
let deliver_local t ~me header payload =
  touch_sentinel t ~rank:me;
  let accept () =
    let origin = header.Generic_tm.origin in
    if header.Generic_tm.agg then begin
      (* Aggregate: split the train back into per-flow frames. Each
         frame is one Data chunk in its flow's assembler, so the
         consumption hook fires once per constituent frame — matching
         the one credit the origin charged for it. *)
      let total = Bytes.length payload in
      let off = ref 0 in
      while !off < total do
        let flow, first, last, len =
          Generic_tm.decode_flow_frame_header payload !off
        in
        off := !off + Generic_tm.flow_frame_header_size;
        let asmb = assembler t ~me ~origin ~flow in
        if first then begin
          Mailbox.put (starts t ~me ~origin ~flow) ();
          Mailbox.put (incoming t ~me) (origin, flow)
        end;
        if len > 0 then begin
          let chunk = Bytes.sub payload !off len in
          off := !off + len;
          pp_add (asm_pp t ~me ~origin) len;
          Assembler.push asmb (Assembler.Data chunk)
        end;
        if last then Assembler.push asmb Assembler.End_of_message
      done
    end
    else begin
      let asmb = assembler t ~me ~origin ~flow:0 in
      if header.Generic_tm.first then begin
        Mailbox.put (starts t ~me ~origin ~flow:0) ();
        Mailbox.put (incoming t ~me) (origin, 0)
      end;
      if Bytes.length payload > 0 then begin
        pp_add (asm_pp t ~me ~origin) (Bytes.length payload);
        Assembler.push asmb (Assembler.Data payload)
      end;
      if header.Generic_tm.last then Assembler.push asmb Assembler.End_of_message
    end
  in
  match t.rel with
  | None -> accept ()
  | Some r ->
      let expected = flow_ref r.rx_next (me, header.Generic_tm.origin) in
      if header.Generic_tm.seq = !expected then begin
        expected := (!expected + 1) land 0xffff;
        accept ()
      end
      else r.dup_drops <- r.dup_drops + 1;
      send_ack t r ~me ~origin:header.Generic_tm.origin

(* ------------------------------------------------------------------ *)
(* Gateway watermarks: Overloaded load reports with hysteresis *)

let gw_busy_ref t node = memo t.gw_busy node (fun () -> ref 0)
let pump_pp t node = memo t.pump_depth node pp_make

let bump_overload_gen t node =
  let gen =
    match Hashtbl.find_opt t.overload_gen node with
    | Some g -> g + 1
    | None -> 1
  in
  Hashtbl.replace t.overload_gen node gen;
  gen

let inform_sentinels t node flag =
  match t.rel with
  | None -> ()
  | Some r ->
      Hashtbl.iter
        (fun me s -> if me <> node then Sentinel.set_overloaded s ~peer:node flag)
        r.sentinels

(* Elastic gateway capacity (live-topology vchannels only): a rising
   Overloaded edge grows the node's forwarding pools by one slot, up to
   double the configured pool; the clear edge reclaims the extra slots.
   Scale-out is a plain [Semaphore.release] per pump — an extra permit
   with no waiter just raises the pool ceiling; scale-in acquires the
   permits back from a daemon, so it completes only as traffic drains
   and never strands a packet already holding a buffer. *)
let scale_out t node =
  match t.live with
  | None -> ()
  | Some lv ->
      let cur =
        match Hashtbl.find_opt lv.lv_extra node with Some n -> n | None -> 0
      in
      if cur < t.gw_pool then begin
        Hashtbl.replace lv.lv_extra node (cur + 1);
        let peak =
          match Hashtbl.find_opt lv.lv_extra_peak node with
          | Some n -> n
          | None -> 0
        in
        if cur + 1 > peak then Hashtbl.replace lv.lv_extra_peak node (cur + 1);
        lv.lv_scale_outs <- lv.lv_scale_outs + 1;
        Hashtbl.iter
          (fun (n, _, _) p ->
            if n = node then Semaphore.release p.pump_buffers)
          t.pumps
      end

let scale_in t node =
  match t.live with
  | None -> ()
  | Some lv -> (
      match Hashtbl.find_opt lv.lv_extra node with
      | None | Some 0 -> ()
      | Some cur ->
          Hashtbl.replace lv.lv_extra node 0;
          lv.lv_scale_ins <- lv.lv_scale_ins + 1;
          Hashtbl.iter
            (fun (n, _, _) p ->
              if n = node then
                Engine.spawn t.engine ~daemon:true
                  ~name:(Printf.sprintf "vchannel.scalein.%d" node)
                  (fun () ->
                    for _ = 1 to cur do
                      Semaphore.acquire p.pump_buffers
                    done))
            t.pumps)

let set_overload t node flag =
  if flag then begin
    if not (Hashtbl.mem t.overloaded node) then begin
      Hashtbl.replace t.overloaded node ();
      t.overload_events <- t.overload_events + 1;
      inform_sentinels t node true;
      scale_out t node;
      t.on_overload_change ();
      t.on_health_change ()
    end
  end
  else if Hashtbl.mem t.overloaded node then begin
    Hashtbl.remove t.overloaded node;
    inform_sentinels t node false;
    scale_in t node;
    t.on_overload_change ();
    t.on_health_change ()
  end

(* Clearing is held for {!Config.overload_hold}: a pool oscillating one
   slot below full at line rate must not flap its status (and, on
   reliable vchannels, thrash route recomputations). The generation
   counter cancels a pending clear when the pool fills again. *)
let maybe_clear_overload t node =
  let gen = bump_overload_gen t node in
  Engine.at t.engine
    (Time.add (Engine.now t.engine) Config.overload_hold)
    (fun () ->
      if
        Hashtbl.find_opt t.overload_gen node = Some gen
        && !(gw_busy_ref t node) <= t.gw_low
      then set_overload t node false)

(* Taking / returning a forwarding buffer. The acquire blocking on a
   full pool IS the hop-by-hop backpressure: a dispatcher that cannot
   take a buffer stops consuming its incoming channel, the sending side
   of the previous hop blocks in turn, and the pressure propagates back
   to the origin's credit window instead of accumulating in a queue. *)
let gw_acquire t ~node p =
  Semaphore.acquire p.pump_buffers;
  if t.overload_track then begin
    let busy = gw_busy_ref t node in
    incr busy;
    pp_add (pump_pp t node) 1;
    (* Refilling past the low watermark cancels any pending clear: the
       status drops back to Up only if the pool *stayed* drained for the
       whole hold, not if the timer happened to fire during the
       microsecond dip between one forward's release and the next
       packet's acquire. *)
    if !busy > t.gw_low then ignore (bump_overload_gen t node);
    if !busy >= t.gw_high then set_overload t node true
  end

let gw_release t ~node p =
  if t.overload_track then begin
    let busy = gw_busy_ref t node in
    decr busy;
    pp_sub (pump_pp t node) 1;
    if !busy <= t.gw_low && Hashtbl.mem t.overloaded node then
      maybe_clear_overload t node
  end;
  Semaphore.release p.pump_buffers

let rec pump_for t ~node (hop : hop) =
  let key = (node, Channel.id hop.hop_channel, hop.hop_to) in
  match Hashtbl.find_opt t.pumps key with
  | Some p -> p
  | None ->
      let p =
        {
          pump_q = Mailbox.create ();
          pump_buffers = Semaphore.create t.gw_pool;
        }
      in
      Hashtbl.add t.pumps key p;
      (* A pump created while its node is scaled out starts with the
         extra slots its siblings already received. *)
      (match t.live with
      | Some lv -> (
          match Hashtbl.find_opt lv.lv_extra node with
          | Some extra ->
              for _ = 1 to extra do
                Semaphore.release p.pump_buffers
              done
          | None -> ())
      | None -> ());
      spawn_forwarder t ~node p;
      p

and spawn_forwarder t ~node p =
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.forward.%d" node)
    (fun () ->
      while true do
        let header, payload = Mailbox.take p.pump_q in
        record_forward t ~node ~bytes_count:(Bytes.length payload);
        (* The per-step software cost (buffer exchange, thread hand-off)
           sits between taking the buffer and re-emitting it, where the
           paper's +50 us/step analysis places it (§6.2.2). *)
        Engine.sleep t.gateway_overhead;
        (match t.rel with
        | Some r when not (Simnet.Faults.node_up r.faults node) ->
            (* This gateway crashed with the packet in its pipeline: the
               in-flight state dies; origins re-emit from their logs. *)
            ()
        | Some _ -> (
            try
              ship_packet t ~at:node ~header ~payload
                ~payload_len:(Bytes.length payload)
            with Partitioned _ -> ())
        | None ->
            ship_packet t ~at:node ~header ~payload
              ~payload_len:(Bytes.length payload));
        gw_release t ~node p
      done)

(* Dispatcher: one per (node, real channel). Receives every packet
   arriving on that channel, delivers local ones, pushes the rest into
   the forwarding pump of its outgoing link. *)
let spawn_dispatcher t ~node channel =
  let ep = Channel.endpoint channel ~rank:node in
  Engine.spawn t.engine ~daemon:true
    ~name:(Printf.sprintf "vchannel.dispatch.%d.ch%d" node (Channel.id channel))
    (fun () ->
      let hdr_bytes = Bytes.create Generic_tm.header_size in
      while true do
        let ic = Api.begin_unpacking ep in
        try
        Api.unpack ic ~r_mode:Iface.Receive_express hdr_bytes;
        let header = Generic_tm.decode_header hdr_bytes in
        (* Mirror of the sender's transit flag in [ship_packet]: the hop
           is endpoint-to-endpoint iff it runs origin -> final_dst. *)
        let transit =
          Api.remote_rank ic <> header.Generic_tm.origin
          || header.Generic_tm.final_dst <> node
        in
        if header.Generic_tm.final_dst = node then begin
          let payload = Bytes.create header.Generic_tm.payload_len in
          if header.Generic_tm.payload_len > 0 then
            Api.unpack ic ~r_mode:Iface.Receive_cheaper ~transit payload;
          Api.end_unpacking ic;
          match t.rel with
          | _ when header.Generic_tm.col -> handle_col t ~me:node header payload
          | _ when header.Generic_tm.top -> handle_top t ~me:node header payload
          | Some r when header.Generic_tm.hs -> handle_hs r ~me:node header payload
          | _ when header.Generic_tm.crd -> handle_crd t ~me:node header payload
          | Some r when header.Generic_tm.ack -> handle_ack r header
          | Some r when not (Simnet.Faults.node_up r.faults node) ->
              (* The destination host is down: the data dies with it;
                 the origin's log re-emits once it comes back. *)
              ()
          | _ -> deliver_local t ~me:node header payload
        end
        else
          match next_hop t ~at:node ~dst:header.Generic_tm.final_dst with
          | exception Partitioned _ ->
              (* Unroutable transit packet (its destination crashed):
                 consume and drop. *)
              let payload = Bytes.create header.Generic_tm.payload_len in
              if header.Generic_tm.payload_len > 0 then
                Api.unpack ic ~r_mode:Iface.Receive_cheaper ~transit payload;
              Api.end_unpacking ic
          | hop -> begin
          (* Bandwidth control (the paper's future-work §7): pace the
             consumption of forwarded traffic so the incoming NIC cannot
             monopolize the gateway's PCI bus. *)
          (match t.ingress_cap_mb_s with
          | None -> ()
          | Some cap ->
              let slot = Hashtbl.find t.next_ingress_slot node in
              let now = Engine.now t.engine in
              if Time.( < ) now !slot then Engine.sleep (Time.diff !slot now);
              let budget =
                Time.bytes_at_rate
                  ~bytes_count:
                    (header.Generic_tm.payload_len + Generic_tm.header_size)
                  ~mb_per_s:cap
              in
              slot := Time.add (Engine.now t.engine) budget);
          (* Take one of the outgoing direction's two pipeline buffers
             before extracting, then hand the packet to the send side of
             that pump (Fig. 9). *)
          let p = pump_for t ~node hop in
          gw_acquire t ~node p;
          let payload = Bytes.create header.Generic_tm.payload_len in
          (try
             if header.Generic_tm.payload_len > 0 then
               Api.unpack ic ~r_mode:Iface.Receive_cheaper ~transit payload;
             Api.end_unpacking ic
           with e ->
             gw_release t ~node p;
             raise e);
          if t.extra_gateway_copy && header.Generic_tm.payload_len > 0 then
            Engine.sleep
              (Time.bytes_at_rate ~bytes_count:header.Generic_tm.payload_len
                 ~mb_per_s:Simnet.Netparams.memcpy_rate_mb_s);
          Mailbox.put p.pump_q (header, payload)
        end
        with Config.Peer_unreachable _ ->
          (* A source host crashed with the tail of this packet still in
             its socket buffer: the remaining bytes can never arrive.
             Abandon the partial message and go back to listening — the
             origin's unacknowledged-packet log re-emits the packet
             whole over the recomputed routes. *)
          Api.abort_unpacking ic
      done)

(* A sender out of credits parks on the flow's condition variable until
   the receiver's grants catch up. While blocked it ships a zero-window
   probe every {!Config.credit_probe_interval} (recovering grants lost
   to crash paths), and on a reliable vchannel it rides out route holes
   with the usual patience — a flow whose destination never comes back
   surfaces as [Partitioned] here exactly as it would in [ship_packet]. *)
let wait_credit t c ~src ~dst =
  let ctx = credit_tx_state c (src, dst) in
  if ctx.ctx_shipped - ctx.ctx_granted >= c.cr_budget then begin
    c.cr_stalls <- c.cr_stalls + 1;
    while ctx.ctx_shipped - ctx.ctx_granted >= c.cr_budget do
      (match t.rel with
      | Some r when not (Hashtbl.mem t.routes (src, dst)) ->
          wait_route t r ~at:src ~dst
      | _ -> ());
      if ctx.ctx_shipped - ctx.ctx_granted >= c.cr_budget then begin
        let wake_at =
          Time.add (Engine.now t.engine) Config.credit_probe_interval
        in
        Engine.at t.engine wake_at (fun () -> Condition.broadcast ctx.ctx_cond);
        Mutex.lock ctx.ctx_mu;
        Condition.wait ctx.ctx_cond ctx.ctx_mu;
        Mutex.unlock ctx.ctx_mu;
        if
          ctx.ctx_shipped - ctx.ctx_granted >= c.cr_budget
          && Time.( <= ) wake_at (Engine.now t.engine)
        then send_probe t c ~src ~dst
      end
    done
  end;
  ctx.ctx_shipped <- ctx.ctx_shipped + 1

(* A reliable sender whose re-emission log is full parks until acks trim
   it: reliable mode obeys the same memory budget as every other point
   on the path. Acks are arrival-driven (the destination acknowledges
   every data packet it sees, consumed or not), so the log drains as
   long as the network delivers — only a crashed or partitioned peer
   stops it, and that surfaces as [Partitioned] below. *)
let wait_unacked t r ~src ~dst q =
  while Queue.length q >= t.unacked_cap do
    if not (Hashtbl.mem t.routes (src, dst)) then wait_route t r ~at:src ~dst;
    if Queue.length q >= t.unacked_cap then begin
      let deadline = Time.add (Engine.now t.engine) t.patience in
      Engine.suspend ~name:"vchannel.unacked" (fun wake ->
          let woken = ref false in
          let wake_once () =
            if not !woken then begin
              woken := true;
              wake ()
            end
          in
          r.ack_waiters <- wake_once :: r.ack_waiters;
          Engine.at t.engine deadline wake_once);
      if
        Queue.length q >= t.unacked_cap
        && not (Simnet.Faults.node_up r.faults dst)
      then
        raise
          (Partitioned
             (Printf.sprintf
                "Vchannel: flow %d->%d blocked on a full unacked log and \
                 its peer crashed"
                src dst))
    end
  done

(* Emit one aggregate: the scheduler's [emit] callback, running with the
   pair's emission lock held. The composition rules with the PR 4/5
   machinery live here. Credits: one per data-carrying constituent
   frame — the receiver's assembler pops each frame as its own chunk,
   so consumption-side accounting matches exactly. Reliability: the
   whole aggregate takes ONE sequence number and ONE re-emission log
   slot, riding the go-back-N window as a unit. Gateways never look
   inside: the train is ordinary payload to every pump on the route. *)
let emit_one_aggregate t ~src ~dst frames =
  (match t.credits with
  | Some c ->
      List.iter
        (fun fr ->
          if Bytes.length fr.Sched.fr_data > 0 then wait_credit t c ~src ~dst)
        frames
  | None -> ());
  let seq =
    match t.rel with
    | None -> 0
    | Some r ->
        wait_handshake t r ~src ~dst;
        let sq = flow_ref r.tx_seq (src, dst) in
        let s = !sq in
        sq := (s + 1) land 0xffff;
        s
  in
  let payload_len =
    List.fold_left
      (fun acc fr ->
        acc + Generic_tm.flow_frame_header_size + Bytes.length fr.Sched.fr_data)
      0 frames
  in
  let payload = Bytes.create payload_len in
  let _ =
    List.fold_left
      (fun off fr ->
        let data_len = Bytes.length fr.Sched.fr_data in
        let hdr =
          Generic_tm.encode_flow_frame_header ~flow:fr.Sched.fr_flow
            ~first:fr.Sched.fr_first ~last:fr.Sched.fr_last ~len:data_len
        in
        Bytes.blit hdr 0 payload off Generic_tm.flow_frame_header_size;
        let off = off + Generic_tm.flow_frame_header_size in
        Bytes.blit fr.Sched.fr_data 0 payload off data_len;
        off + data_len)
      0 frames
  in
  let header =
    {
      Generic_tm.final_dst = dst;
      origin = src;
      payload_len;
      first = false;
      last = false;
      seq;
      ack = false;
      hs = false;
      crd = false;
      agg = true;
      top = false;
      col = false;
    }
  in
  (match t.rel with
  | None -> ()
  | Some r ->
      let q = unacked_q r (src, dst) in
      wait_unacked t r ~src ~dst q;
      Queue.push (seq, header, Bytes.copy payload) q;
      let peak = memo t.unacked_peak (src, dst) (fun () -> ref 0) in
      if Queue.length q > !peak then peak := Queue.length q);
  ship_packet t ~at:src ~header ~payload ~payload_len

(* The scheduler's [emit] callback. One aggregate may never need more
   credits than the pair's whole budget: the per-frame charge happens
   before the packet ships, so grants for its own frames cannot arrive
   while it waits — a train of more data frames than [cr_budget] would
   deadlock. Split such trains so each wire packet charges at most the
   budget. *)
let emit_frames t ~src ~dst frames =
  match t.credits with
  | None -> emit_one_aggregate t ~src ~dst frames
  | Some c ->
      let rec groups acc cur n = function
        | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
        | fr :: rest ->
            let is_data = Bytes.length fr.Sched.fr_data > 0 in
            if is_data && n >= c.cr_budget && cur <> [] then
              groups (List.rev cur :: acc) [ fr ] 1 rest
            else groups acc (fr :: cur) (n + if is_data then 1 else 0) rest
      in
      List.iter (emit_one_aggregate t ~src ~dst) (groups [] [] 0 frames)

(* The lock that serializes emission for a (src, dst) pair: with a
   scheduler it is the scheduler's pair lock (aggregates are numbered
   and shipped under it), without one it is the flow-0 message lock —
   the only flow that exists. Crash re-emission must hold it so
   re-emitted packets cannot interleave with a packet being emitted. *)
let emission_lock t ~src ~dst =
  match t.sched with
  | Some sc -> Sched.pair_lock sc ~src ~dst
  | None -> send_lock t ~src ~dst ~flow:0

(* After a membership change, re-emit every unacknowledged packet of
   the affected live flows over the recomputed routes ([only] narrows
   the set — an epoch swap re-emits just the flows whose route actually
   changed). One daemon per flow; it takes the flow's message lock so
   re-emitted packets cannot interleave with (and overtake) a message
   in progress — the receiver's sequence check would then discard the
   overtaken packets for good. *)
let reemit_flows ?(only = fun _ _ -> true) t r =
  Hashtbl.iter
    (fun (src, dst) q ->
      if only src dst && Simnet.Faults.node_up r.faults src
         && not (Queue.is_empty q)
      then
        Engine.spawn t.engine ~daemon:true
          ~name:(Printf.sprintf "vchannel.reemit.%d->%d" src dst)
          (fun () ->
            Mutex.lock (emission_lock t ~src ~dst);
            let snapshot = List.of_seq (Queue.to_seq q) in
            (try
               List.iter
                 (fun (seq, header, payload) ->
                   (* Skip packets acked while we waited for the lock. *)
                   if Queue.fold (fun f (s, _, _) -> f || s = seq) false q
                   then begin
                     r.reemitted <- r.reemitted + 1;
                     ship_packet t ~at:src ~header ~payload
                       ~payload_len:(Bytes.length payload)
                   end)
                 snapshot
             with Partitioned _ | Config.Peer_unreachable _ -> ());
            Mutex.unlock (emission_lock t ~src ~dst)))
    r.unacked

let create session ?(mtu = Config.default_vchannel_mtu)
    ?(patience = Config.default_route_patience)
    ?(gateway_overhead = Config.gateway_packet_overhead)
    ?(extra_gateway_copy = false) ?ingress_cap_mb_s ?credits ?gw_pool ?faults
    ?sched ?topology ?coordinator ?(election = false) ?topo_quorum channels =
  if channels = [] then invalid_arg "Vchannel.create: no channels";
  if mtu <= Generic_tm.sub_header_size then
    invalid_arg "Vchannel.create: mtu too small";
  let sched_cfg =
    (* [Fifo] IS the unscheduled path: no scheduler state, no [agg]
       packets, wire format and schedule byte-identical to sched unset. *)
    match sched with
    | None | Some Sched.Fifo -> None
    | Some (Sched.Aggreg { aggr_max; aggr_flush }) ->
        let aggr_max =
          match aggr_max with Some m -> m | None -> mtu
        in
        let aggr_flush =
          match aggr_flush with
          | Some f -> f
          | None -> Config.default_aggr_flush
        in
        if aggr_max <= Generic_tm.flow_frame_header_size then
          invalid_arg "Vchannel.create: aggr_max too small";
        if aggr_flush <= 0 then
          invalid_arg "Vchannel.create: aggr_flush must be positive";
        Some (aggr_max, aggr_flush)
  in
  (match ingress_cap_mb_s with
  | Some c when c <= 0.0 -> invalid_arg "Vchannel.create: ingress cap <= 0"
  | Some _ | None -> ());
  (match credits with
  | Some n when n < 1 -> invalid_arg "Vchannel.create: credits < 1"
  | Some _ | None -> ());
  (match gw_pool with
  | Some n when n < 1 -> invalid_arg "Vchannel.create: gw_pool < 1"
  | Some _ | None -> ());
  let all_ranks =
    List.concat_map Channel.ranks channels |> List.sort_uniq compare
  in
  let live_plane =
    match topology with
    | None ->
        (match coordinator with
        | Some _ ->
            invalid_arg
              "Vchannel.create: coordinator without a topology version"
        | None -> ());
        None
    | Some version ->
        if version < 0 then
          invalid_arg "Vchannel.create: topology version < 0";
        let coord =
          (* [all_ranks] is sorted: default to the lowest rank. *)
          match coordinator with Some c -> c | None -> List.hd all_ranks
        in
        if not (List.mem coord all_ranks) then
          invalid_arg
            (Printf.sprintf
               "Vchannel.create: coordinator %d not part of the virtual \
                channel"
               coord);
        Some
          {
            lv_coordinator = coord;
            lv_snapshot = Topology.make ~epoch:version ~coordinator:coord
                all_ranks;
            lv_draining = Hashtbl.create 4;
            lv_extra = Hashtbl.create 4;
            lv_extra_peak = Hashtbl.create 4;
            lv_joins = 0;
            lv_drains = 0;
            lv_scale_outs = 0;
            lv_scale_ins = 0;
            lv_waiters = [];
          }
  in
  (* Non-members of the current epoch are excluded from routing exactly
     like crashed nodes: never a relay, never an endpoint. With no live
     topology every physical rank is a member and the predicate reduces
     to the crash/suspicion test — routes (and the schedule) are
     byte-identical to a fixed-topology vchannel. *)
  let member n =
    match live_plane with
    | None -> true
    | Some lv -> Topology.mem lv.lv_snapshot n
  in
  (* Election wants the whole stack under it: a topology to elect over
     and a fault plane (sentinels carry both the suspicion verdicts the
     candidacy triggers ride and the ballot registries). *)
  let elect_plane =
    if not election then begin
      (match topo_quorum with
      | Some _ ->
          invalid_arg "Vchannel.create: topo_quorum requires election"
      | None -> ());
      None
    end
    else begin
      (match live_plane with
      | None ->
          invalid_arg
            "Vchannel.create: election requires a topology version"
      | Some _ -> ());
      (match faults with
      | None ->
          invalid_arg "Vchannel.create: election requires a fault plane"
      | Some _ -> ());
      let n = List.length all_ranks in
      (match topo_quorum with
      | Some q when q < 1 || q > n ->
          invalid_arg
            (Printf.sprintf "Vchannel.create: topo_quorum %d outside 1..%d" q n)
      | _ -> ());
      Some
        {
          el_quorum = topo_quorum;
          el_term = 0;
          el_elections = 0;
          el_attempts = 0;
          el_refusals = 0;
          el_commits = [];
          el_last_latency = Time.zero;
          el_running = false;
          el_pending = [];
        }
    end
  in
  let rel =
    match faults with
    | None -> None
    | Some f ->
        Some
          {
            faults = f;
            tx_seq = Hashtbl.create 32;
            rx_next = Hashtbl.create 32;
            unacked = Hashtbl.create 32;
            tx_lost = Hashtbl.create 8;
            sentinels = Hashtbl.create 8;
            suspected = Hashtbl.create 8;
            susp_count = Hashtbl.create 8;
            route_waiters = [];
            hs_waiters = [];
            ack_waiters = [];
            reroutes = 0;
            reemitted = 0;
            dup_drops = 0;
            handshakes = 0;
          }
  in
  let credit_plane =
    match credits with
    | None -> None
    | Some budget ->
        Some
          {
            cr_budget = budget;
            (* Grant every half window: frequent enough that a sender
               with a consuming receiver never runs fully dry, cheap
               enough that grants stay a small fraction of the data. *)
            cr_quantum = max 1 (budget / 2);
            cr_tx = Hashtbl.create 32;
            cr_rx = Hashtbl.create 32;
            cr_grants = 0;
            cr_probes = 0;
            cr_stalls = 0;
          }
  in
  let pool =
    match gw_pool with Some p -> p | None -> Config.default_gateway_pool
  in
  let election_on = match elect_plane with Some _ -> true | None -> false in
  let down =
    match rel with
    | None -> fun _viewer n -> not (member n)
    | Some r ->
        if election_on then
          (* Viewer-relative suspicion: the hop viewer -> n exists only
             when the viewer's own sentinel trusts n. Under a symmetric
             partition each side keeps full routes within itself instead
             of everyone going dark because somebody somewhere suspects
             them. *)
          fun viewer n ->
            (not (member n))
            || (not (Simnet.Faults.node_up r.faults n))
            || (viewer <> n && Hashtbl.mem r.suspected (viewer, n))
        else
          fun _viewer n ->
            (not (member n))
            || (not (Simnet.Faults.node_up r.faults n))
            || Hashtbl.mem r.susp_count n
  in
  let routes = compute_routes ~down channels all_ranks in
  let base_hops = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key hops -> Hashtbl.replace base_hops key (List.length hops))
    routes;
  let t =
    {
      engine = Session.engine session;
      mtu;
      patience;
      gateway_overhead;
      extra_gateway_copy;
      ingress_cap_mb_s;
      next_ingress_slot = Hashtbl.create 16;
      channels;
      all_ranks;
      routes;
      base_hops;
      rel;
      sched = None;
      assemblers = Hashtbl.create 32;
      starts = Hashtbl.create 32;
      incoming = Hashtbl.create 16;
      pumps = Hashtbl.create 16;
      send_locks = Hashtbl.create 32;
      fwd_stats = Hashtbl.create 8;
      credits = credit_plane;
      gw_pool = pool;
      gw_high = pool;
      gw_low = max 1 (pool / 2);
      (* The watermark machinery (and its clear-hold timers) runs only
         when the backpressure plane was asked for; a plain vchannel's
         schedule stays byte-identical to the pre-flow-control library. *)
      overload_track = credit_plane <> None || gw_pool <> None;
      overloaded = Hashtbl.create 4;
      gw_busy = Hashtbl.create 4;
      overload_gen = Hashtbl.create 4;
      overload_events = 0;
      on_overload_change = (fun () -> ());
      live = live_plane;
      elect = elect_plane;
      on_topo_change = (fun () -> ());
      on_col = (fun ~me:_ ~origin:_ _ -> ());
      on_health_change = (fun () -> ());
      asm_depth = Hashtbl.create 32;
      pump_depth = Hashtbl.create 8;
      unacked_peak = Hashtbl.create 32;
      unacked_cap =
        (match credits with
        | Some n -> n
        | None -> Config.default_unacked_window);
    }
  in
  (* Epoch swaps recompute routes even without a reliability plane;
     with one, the rel section below upgrades this to the selective
     re-emission path. *)
  t.on_topo_change <-
    (fun () -> t.routes <- compute_routes ~down channels all_ranks);
  List.iter
    (fun node ->
      Hashtbl.add t.next_ingress_slot node (ref Time.zero);
      List.iter
        (fun c ->
          if List.mem node (Channel.ranks c) then spawn_dispatcher t ~node c)
        channels)
    all_ranks;
  (match rel with
  | None -> ()
  | Some r ->
      List.iter Channel.relax_checked channels;
      let recompute () =
        let fresh = compute_routes ~down channels all_ranks in
        (* Prefer routes that avoid Overloaded gateways — shifting
           traffic onto an alternate gateway when one exists — but never
           at the price of reachability: pairs only connected through an
           overloaded node keep their direct route. *)
        if Hashtbl.length t.overloaded > 0 then begin
          let down_or_overloaded u n = down u n || Hashtbl.mem t.overloaded n in
          let strict =
            compute_routes ~down:down_or_overloaded channels all_ranks
          in
          Hashtbl.iter (fun key hops -> Hashtbl.replace fresh key hops) strict
        end;
        t.routes <- fresh;
        let waiters = r.route_waiters in
        r.route_waiters <- [];
        List.iter (fun wake -> wake ()) waiters
      in
      (* An Overloaded transition recomputes route preferences; packets
         are re-emitted ONLY if some route actually changed (switching
         routes mid-flow can strand packets the destination's sequence
         check discarded as overtakers). When no alternate gateway
         exists the routes are unchanged and nothing is re-emitted —
         re-emitting into an already-overloaded path would feed the
         congestion it is reporting. *)
      let route_sig routes =
        Hashtbl.fold
          (fun key hops acc ->
            ( key,
              List.map (fun h -> (Channel.id h.hop_channel, h.hop_to)) hops )
            :: acc)
          routes []
        |> List.sort compare
      in
      let swap_routes () =
        let before = route_sig t.routes in
        recompute ();
        let after = route_sig t.routes in
        if after <> before then
          reemit_flows t r ~only:(fun src dst ->
              List.assoc_opt (src, dst) before
              <> List.assoc_opt (src, dst) after)
      in
      t.on_overload_change <- swap_routes;
      (* A topology epoch swap is the same move as an overload
         transition: recompute route preferences, then re-emit only the
         flows whose routes actually changed — under each flow's
         emission lock, so re-emitted packets never interleave with a
         message (or aggregate) in progress. *)
      t.on_topo_change <- swap_routes;
      Simnet.Faults.on_crash r.faults (fun node ->
          if List.mem node t.all_ranks then begin
            r.reroutes <- r.reroutes + 1;
            (* The crashed node's send-side session state dies with it:
               cursors and unacked logs are volatile. Its flows stay
               blocked ([tx_lost]) until a peer handshake restores the
               cursor after restart. Receive journals survive. *)
            Hashtbl.iter
              (fun (src, dst) sq ->
                if src = node then begin
                  sq := 0;
                  Hashtbl.replace r.tx_lost (src, dst) ()
                end)
              r.tx_seq;
            Hashtbl.iter
              (fun (src, _) q -> if src = node then Queue.clear q)
              r.unacked;
            (* Credit counters are volatile send-side state too: both
               ends of the crashed node's flows restart from zero (the
               receive side mirrors the wiped cursor — leftover pre-crash
               bytes still buffered at a peer may transiently over-grant
               by at most one budget, which the restart window absorbs). *)
            (match t.credits with
            | None -> ()
            | Some c ->
                Hashtbl.iter
                  (fun (src, _) ctx ->
                    if src = node then begin
                      ctx.ctx_shipped <- 0;
                      ctx.ctx_granted <- 0
                    end)
                  c.cr_tx;
                Hashtbl.iter
                  (fun (_, origin) crx ->
                    if origin = node then begin
                      crx.crx_consumed <- 0;
                      crx.crx_last_grant <- 0
                    end)
                  c.cr_rx);
            recompute ();
            reemit_flows t r;
            t.on_health_change ();
            (* A crashed coordinator needs no phi verdict: the fault
               plane's word is definitive, so stand a candidate at
               once — the lowest still-live member. *)
            match (t.elect, t.live) with
            | Some el, Some lv when node = lv.lv_coordinator -> (
                topo_wake lv;
                match
                  List.find_opt
                    (fun m -> Simnet.Faults.node_up r.faults m)
                    (Topology.ranks lv.lv_snapshot)
                with
                | Some candidate ->
                    Engine.spawn t.engine ~daemon:true
                      ~name:
                        (Printf.sprintf "vchannel.elect.crash.%d" candidate)
                      (fun () -> run_election t lv el ~candidate)
                | None -> ())
            | _ -> ()
          end);
      Simnet.Faults.on_restart r.faults (fun node ->
          if List.mem node t.all_ranks then begin
            (* The restarted rank's pre-crash vote grant is void — the
               epoch bump announces it to everyone — so it may vote
               afresh, and any ballots it had collected as a candidate
               are dead. *)
            (match Hashtbl.find_opt r.sentinels node with
            | Some s -> Sentinel.reset_election s
            | None -> ());
            recompute ();
            (* Crash-epoch session handshake: every live peer holding a
               delivery journal for the restarted origin tells it (over
               the routed network, so gateways forward it like data)
               where to resume numbering. *)
            let epoch = Simnet.Faults.epoch r.faults node in
            Hashtbl.iter
              (fun (me, origin) expected ->
                if
                  origin = node && me <> node
                  && Simnet.Faults.node_up r.faults me
                then begin
                  let resume = !expected in
                  Engine.spawn t.engine ~daemon:true
                    ~name:(Printf.sprintf "vchannel.hs.%d->%d" me node)
                    (fun () ->
                      let payload = Bytes.create 4 in
                      Bytes.set_int32_le payload 0 (Int32.of_int epoch);
                      let header =
                        {
                          Generic_tm.final_dst = node;
                          origin = me;
                          payload_len = 4;
                          first = false;
                          last = false;
                          seq = resume;
                          ack = false;
                          hs = true;
                          crd = false;
                          agg = false;
                          top = false;
                          col = false;
                        }
                      in
                      try ship_packet t ~at:me ~header ~payload ~payload_len:4
                      with Partitioned _ | Config.Peer_unreachable _ -> ())
                end)
              r.rx_next;
            (* Flows to peers holding no journal for this node restart
               at zero immediately — nobody will send a handshake. *)
            let fresh =
              Hashtbl.fold
                (fun (src, dst) () acc ->
                  if src = node && not (Hashtbl.mem r.rx_next (dst, node))
                  then (src, dst) :: acc
                  else acc)
                r.tx_lost []
            in
            List.iter (fun key -> Hashtbl.remove r.tx_lost key) fresh;
            if fresh <> [] then begin
              let waiters = r.hs_waiters in
              r.hs_waiters <- [];
              List.iter (fun wake -> wake ()) waiters
            end;
            reemit_flows t r;
            t.on_health_change ()
          end);
      (match (t.elect, t.live) with
      | Some el, Some lv ->
          Simnet.Faults.on_heal r.faults (fun _fabric ->
              (* Healing restores the wire but not the detectors'
                 opinions: touch every sentinel so activity-gated
                 probing re-arms and suspicion drains organically via
                 Up probes, then replay the minority's suppressed
                 join/drain intents once the coordinator's side holds
                 quorum again. *)
              Hashtbl.iter (fun _ s -> Sentinel.touch s) r.sentinels;
              topo_wake lv;
              if el.el_pending <> [] then
                Engine.spawn t.engine ~daemon:true
                  ~name:"vchannel.heal.replay" (fun () ->
                    if
                      topo_wait t lv ~until:(fun () ->
                          side_has_quorum t lv el ~viewer:lv.lv_coordinator)
                    then replay_pending t lv el))
      | _ -> ());
      (* One phi-accrual sentinel per rank, probing its channel
         neighbours. A sentinel calling a still-live peer Down is a
         suspicion: routes are recomputed around the suspect and
         in-flight packets re-emitted, before any send times out on it.
         Crashes are already handled by the hooks above, so transitions
         on actually-crashed peers change nothing here. *)
      List.iter
        (fun me ->
          let neighbours =
            List.filter
              (fun p ->
                p <> me
                && List.exists
                     (fun c ->
                       List.mem me (Channel.ranks c)
                       && List.mem p (Channel.ranks c))
                     channels)
              all_ranks
          in
          if neighbours <> [] then begin
            let fabric =
              List.find_map
                (fun c ->
                  if List.mem me (Channel.ranks c) then Channel.fabric c
                  else None)
                channels
            in
            let s =
              Sentinel.create t.engine r.faults ~me ~peers:neighbours ?fabric
                ()
            in
            Sentinel.on_transition s (fun peer _from to_ ->
                match to_ with
                | Sentinel.Down when Simnet.Faults.node_up r.faults peer ->
                    if not (Hashtbl.mem r.suspected (me, peer)) then begin
                      (* With election off the first observer acts for
                         everyone (the by-any view is what routing sees,
                         so later observers change nothing); with it on,
                         every observer's own view shifts, so each one
                         recomputes. *)
                      let was = Hashtbl.mem r.susp_count peer in
                      Hashtbl.replace r.suspected (me, peer) ();
                      Hashtbl.replace r.susp_count peer
                        (1
                        + Option.value ~default:0
                            (Hashtbl.find_opt r.susp_count peer));
                      if election_on || not was then begin
                        r.reroutes <- r.reroutes + 1;
                        recompute ();
                        reemit_flows t r;
                        t.on_health_change ()
                      end;
                      match (t.elect, t.live) with
                      | Some el, Some lv when peer = lv.lv_coordinator ->
                          (* The coordinator just went dark for [me]:
                             stand the side's lowest reachable member
                             (not necessarily [me] — the observer may
                             not be the side's natural candidate). *)
                          topo_wake lv;
                          Engine.spawn t.engine ~daemon:true
                            ~name:(Printf.sprintf "vchannel.elect.%d" me)
                            (fun () ->
                              match elect_candidate t lv ~viewer:me with
                              | Some candidate ->
                                  run_election t lv el ~candidate
                              | None -> ())
                      | Some _, Some lv -> topo_wake lv
                      | _ -> ()
                    end
                | Sentinel.Up ->
                    if election_on then begin
                      if Hashtbl.mem r.suspected (me, peer) then begin
                        Hashtbl.remove r.suspected (me, peer);
                        (match Hashtbl.find_opt r.susp_count peer with
                        | Some n when n <= 1 -> Hashtbl.remove r.susp_count peer
                        | Some n -> Hashtbl.replace r.susp_count peer (n - 1)
                        | None -> ());
                        recompute ();
                        t.on_health_change ();
                        match t.live with
                        | Some lv -> topo_wake lv
                        | None -> ()
                      end
                    end
                    else if Hashtbl.mem r.susp_count peer then begin
                      (* By-any semantics: the first good probe anywhere
                         rehabilitates the peer for everyone. *)
                      Hashtbl.iter
                        (fun (o, p) () ->
                          if p = peer then Hashtbl.remove r.suspected (o, p))
                        (Hashtbl.copy r.suspected);
                      Hashtbl.remove r.susp_count peer;
                      recompute ();
                      t.on_health_change ()
                    end
                | _ -> ());
            Sentinel.start s;
            Hashtbl.add r.sentinels me s
          end)
        all_ranks);
  (match sched_cfg with
  | None -> ()
  | Some (aggr_max, aggr_flush) ->
      t.sched <-
        Some
          (Sched.create t.engine ~aggr_max ~aggr_flush
             ~emit:(fun ~src ~dst frames -> emit_frames t ~src ~dst frames)));
  t

(* ------------------------------------------------------------------ *)
(* Emission: the Generic TM's static-copy packetization *)


type out_connection = {
  v : t;
  oc_src : int;
  oc_dst : int;
  oc_flow : int;
  staging : Bytes.t;
  mutable fill : int;
  mutable first_sent : bool;
  mutable oc_bulk : bool;
      (* rendezvous-class: the message's first frame filled the MTU, so
         the whole message bypasses the aggregation buffer *)
  mutable oc_closed : bool;
}

let begin_packing ?(flow = 0) t ~me ~remote =
  if me = remote then invalid_arg "Vchannel.begin_packing: remote is self";
  check_ranks t "begin_packing" me remote;
  if flow < 0 || flow > 0xffff then
    invalid_arg "Vchannel.begin_packing: flow id out of range (0..65535)";
  (match (flow, t.sched) with
  | 0, _ | _, Some _ -> ()
  | _, None ->
      invalid_arg
        "Vchannel.begin_packing: logical flows need an aggregating scheduler \
         (sched=aggreg)");
  (* A draining rank stays routable (its in-flight flows must finish)
     but accepts no NEW flows — that is what lets its journals drain. A
     departed rank is simply unroutable, caught by the route check
     below like any partition. *)
  (match t.live with
  | Some lv ->
      let refuse r reason =
        raise
          (Partitioned
             (Printf.sprintf "Vchannel.begin_packing: rank %d is %s" r reason))
      in
      if Hashtbl.mem lv.lv_draining me then refuse me "draining"
      else if Hashtbl.mem lv.lv_draining remote then refuse remote "draining"
      else if not (Topology.mem lv.lv_snapshot me) then
        refuse me "not in the current topology epoch"
      else if not (Topology.mem lv.lv_snapshot remote) then
        refuse remote "not in the current topology epoch"
  | None -> ());
  if not (Hashtbl.mem t.routes (me, remote)) then (
    match t.rel with
    | Some _ -> raise (no_route "begin_packing" me remote)
    | None ->
        invalid_arg
          (Printf.sprintf "Vchannel: no route from %d to %d" me remote));
  Mutex.lock (send_lock t ~src:me ~dst:remote ~flow);
  {
    v = t;
    oc_src = me;
    oc_dst = remote;
    oc_flow = flow;
    staging = Bytes.create t.mtu;
    fill = 0;
    first_sent = false;
    oc_bulk = false;
    oc_closed = false;
  }

let ship oc ~last =
  let t = oc.v in
  (* On failure, close the connection and release its lock so the error
     surfaces as [Partitioned], not a deadlock. *)
  let fail_with e =
    oc.oc_closed <- true;
    Mutex.unlock (send_lock t ~src:oc.oc_src ~dst:oc.oc_dst ~flow:oc.oc_flow);
    raise e
  in
  match t.sched with
  | Some sc ->
      (* Scheduled path: the staged frame goes to the scheduler instead
         of straight to the wire. Classification happens on the
         message's first frame — a full-MTU opener marks the whole
         message rendezvous-class (it ships immediately, overlapping
         other flows' buffered small trains); anything shorter is a
         small frame that buffers for aggregation. Credits, sequencing
         and re-emission logging all happen at emission, per aggregate,
         in [emit_frames]. *)
      if (not oc.first_sent) && oc.fill = t.mtu then oc.oc_bulk <- true;
      let fr =
        {
          Sched.fr_flow = oc.oc_flow;
          fr_first = not oc.first_sent;
          fr_last = last;
          fr_data = Bytes.sub oc.staging 0 oc.fill;
        }
      in
      (try Sched.submit sc ~src:oc.oc_src ~dst:oc.oc_dst ~bulk:oc.oc_bulk fr
       with e -> fail_with e);
      oc.first_sent <- true;
      oc.fill <- 0
  | None ->
  (* Credits are charged per data-carrying packet before it is numbered:
     a sender out of credits blocks here — holding the flow's message
     lock, which is what serializes the flow — until the receiver's
     consumption replenishes the window. Control packets and empty
     last-packet markers carry no bytes and are free. *)
  (match t.credits with
  | Some c when oc.fill > 0 -> (
      try wait_credit t c ~src:oc.oc_src ~dst:oc.oc_dst
      with e -> fail_with e)
  | _ -> ());
  let seq =
    match t.rel with
    | None -> 0
    | Some r ->
        (* A crash between two packets of this message loses the flow's
           cursor; numbering must not resume until the peer's handshake
           restores it, or the receiver would discard the tail. *)
        (try wait_handshake t r ~src:oc.oc_src ~dst:oc.oc_dst
         with e -> fail_with e);
        let sq = flow_ref r.tx_seq (oc.oc_src, oc.oc_dst) in
        let s = !sq in
        sq := (s + 1) land 0xffff;
        s
  in
  let header =
    {
      Generic_tm.final_dst = oc.oc_dst;
      origin = oc.oc_src;
      payload_len = oc.fill;
      first = not oc.first_sent;
      last;
      seq;
      ack = false;
      hs = false;
      crd = false;
      agg = false;
      top = false;
      col = false;
    }
  in
  (match t.rel with
  | None -> ()
  | Some r ->
      (* Log a copy before shipping: anything unacknowledged can be
         re-emitted after a gateway crash. The log is bounded — wait for
         acks to trim it rather than letting it grow with the flow. *)
      let q = unacked_q r (oc.oc_src, oc.oc_dst) in
      (try wait_unacked t r ~src:oc.oc_src ~dst:oc.oc_dst q
       with e -> fail_with e);
      Queue.push (seq, header, Bytes.sub oc.staging 0 oc.fill) q;
      let peak = memo t.unacked_peak (oc.oc_src, oc.oc_dst) (fun () -> ref 0) in
      if Queue.length q > !peak then peak := Queue.length q);
  (match
     ship_packet t ~at:oc.oc_src ~header ~payload:oc.staging
       ~payload_len:oc.fill
   with
  | () -> ()
  | exception e -> fail_with e);
  oc.first_sent <- true;
  oc.fill <- 0

(* Append raw bytes to the packet stream, shipping full packets. *)
let rec append oc data ~off ~len =
  if len > 0 then begin
    if oc.fill = oc.v.mtu then ship oc ~last:false;
    let take = min len (oc.v.mtu - oc.fill) in
    Bytes.blit data off oc.staging oc.fill take;
    oc.fill <- oc.fill + take;
    append oc data ~off:(off + take) ~len:(len - take)
  end

let pack oc ?(s_mode = Iface.Send_cheaper) ?(r_mode = Iface.Receive_cheaper)
    ?off ?len data =
  if oc.oc_closed then invalid_arg "Vchannel.pack: connection closed";
  Engine.sleep Config.pack_overhead;
  let buf = Buf.make ?off ?len data in
  let sub =
    Generic_tm.encode_sub_header ~len:(Buf.length buf) s_mode r_mode
  in
  append oc sub ~off:0 ~len:(Bytes.length sub);
  (* No copy cost is charged here: per §6.1 the Generic TM borrows the
     outgoing protocol TM's buffers, so the single data movement is the
     one the underlying channel's pack already models (PIO write, BIP
     staging, socket copy...). The staging blit below is simulation
     bookkeeping. *)
  append oc buf.Buf.data ~off:buf.Buf.off ~len:buf.Buf.len

let end_packing oc =
  if oc.oc_closed then invalid_arg "Vchannel.end_packing: connection closed";
  Engine.sleep Config.end_overhead;
  ship oc ~last:true;
  oc.oc_closed <- true;
  Mutex.unlock (send_lock oc.v ~src:oc.oc_src ~dst:oc.oc_dst ~flow:oc.oc_flow)

(* Barrier flush: push every aggregate still buffered at [me] to the
   wire now, instead of waiting for budgets or deadlines — the hook for
   synchronization points (a collective's last message, an engine
   drain). No-op without an aggregating scheduler. *)
let flush t ~me =
  match t.sched with None -> () | Some sc -> Sched.flush_all sc ~src:me

(* ------------------------------------------------------------------ *)
(* Live topology: the public membership verbs *)

let topology t =
  match t.live with Some lv -> Some lv.lv_snapshot | None -> None

let draining t =
  match t.live with
  | None -> []
  | Some lv ->
      Hashtbl.fold (fun r () acc -> r :: acc) lv.lv_draining []
      |> List.sort compare

let join t ~rank =
  match t.live with
  | None -> invalid_arg "Vchannel.join: no live topology (version= unset)"
  | Some lv ->
      if not (List.mem rank t.all_ranks) then
        invalid_arg
          (Printf.sprintf
             "Vchannel.join: rank %d not part of the virtual channel" rank);
      if Topology.mem lv.lv_snapshot rank then
        invalid_arg
          (Printf.sprintf "Vchannel.join: rank %d is already a member" rank);
      (match t.rel with
      | Some r when not (Simnet.Faults.node_up r.faults rank) ->
          raise
            (Partitioned
               (Printf.sprintf "Vchannel.join: rank %d is down" rank))
      | _ -> ());
      let admitted () = Topology.mem lv.lv_snapshot rank in
      (match t.elect with
      | None ->
          let payload =
            top_payload ~op:top_join_req ~rank
              ~epoch:(Topology.epoch lv.lv_snapshot)
          in
          ship_top_physical t ~at:rank ~dst:lv.lv_coordinator ~payload;
          if not (topo_wait t lv ~until:admitted) then
            raise
              (Partitioned
                 (Printf.sprintf
                    "Vchannel.join: coordinator %d did not admit rank %d \
                     within patience"
                    lv.lv_coordinator rank))
      | Some el ->
          (* Transparently re-targeted join: if the coordinator does not
             answer, stand a replacement and retry against whoever holds
             the (possibly new) post-election coordinator seat. A joiner
             that still cannot get through is on a minority side — park
             the intent for post-heal replay and surface a typed error. *)
          let attempt () =
            let payload =
              top_payload ~op:top_join_req ~rank
                ~epoch:(Topology.epoch lv.lv_snapshot)
            in
            (try
               ship_top_physical t ~at:rank ~dst:lv.lv_coordinator ~payload;
               true
             with Partitioned _ | Config.Peer_unreachable _ -> false)
            && topo_wait t lv ~until:admitted
          in
          if not (attempt ()) && not (admitted ()) then begin
            (match t.rel with
            | Some r -> (
                (* The joiner is an outsider: its trust view is empty,
                   so stand the lowest live member instead. *)
                match
                  List.find_opt
                    (fun m -> Simnet.Faults.node_up r.faults m)
                    (Topology.ranks lv.lv_snapshot)
                with
                | Some candidate -> run_election t lv el ~candidate
                | None -> ())
            | None -> ());
            if not (attempt ()) && not (admitted ()) then begin
              el.el_pending <- P_join rank :: el.el_pending;
              raise
                (No_quorum
                   (Printf.sprintf
                      "Vchannel.join: no quorum reachable to admit rank %d \
                       (intent parked for post-heal replay)"
                      rank))
            end
          end);
      Topology.epoch lv.lv_snapshot

let drain t ~rank =
  match t.live with
  | None -> invalid_arg "Vchannel.drain: no live topology (version= unset)"
  | Some lv ->
      if not (Topology.mem lv.lv_snapshot rank) then
        invalid_arg
          (Printf.sprintf "Vchannel.drain: rank %d is not a member" rank);
      if rank = lv.lv_coordinator then
        invalid_arg
          (Printf.sprintf "Vchannel.drain: rank %d is the coordinator" rank);
      (* Phase 1 — stop accepting new flows involving this rank. *)
      Hashtbl.replace lv.lv_draining rank ();
      (* Phase 2 — quiesce: cumulative acks must cover every journal
         entry the rank originated or is owed, and its forwarding pools
         must be idle, so nothing in flight dies with its departure. *)
      let quiet () =
        let logs_drained =
          match t.rel with
          | None -> true
          | Some r ->
              Hashtbl.fold
                (fun (s, d) q acc ->
                  acc && ((s <> rank && d <> rank) || Queue.is_empty q))
                r.unacked true
        in
        logs_drained
        && (match Hashtbl.find_opt t.gw_busy rank with
           | Some busy -> !busy = 0
           | None -> true)
      in
      let deadline = Time.add (Engine.now t.engine) t.patience in
      while (not (quiet ())) && Time.( < ) (Engine.now t.engine) deadline do
        Engine.sleep (Time.us 50.0)
      done;
      if not (quiet ()) then begin
        Hashtbl.remove lv.lv_draining rank;
        raise
          (Partitioned
             (Printf.sprintf
                "Vchannel.drain: rank %d could not flush its journals within \
                 patience"
                rank))
      end;
      (* Phase 3 — tell the coordinator; it swaps the epoch, forgets the
         rank in every sentinel, and the recomputed routes drop it. *)
      let departed () = not (Topology.mem lv.lv_snapshot rank) in
      let ship_drain () =
        let payload =
          top_payload ~op:top_drain_req ~rank
            ~epoch:(Topology.epoch lv.lv_snapshot)
        in
        let header =
          top_header ~src:rank ~dst:lv.lv_coordinator ~len:top_payload_size
        in
        ship_packet t ~at:rank ~header ~payload ~payload_len:top_payload_size
      in
      (match t.elect with
      | None ->
          (try ship_drain ()
           with Partitioned _ | Config.Peer_unreachable _ ->
             Hashtbl.remove lv.lv_draining rank;
             raise
               (Partitioned
                  (Printf.sprintf "Vchannel.drain: coordinator %d unreachable"
                     lv.lv_coordinator)));
          if not (topo_wait t lv ~until:departed) then begin
            Hashtbl.remove lv.lv_draining rank;
            raise
              (Partitioned
                 (Printf.sprintf
                    "Vchannel.drain: coordinator %d did not confirm the \
                     departure of rank %d within patience"
                    lv.lv_coordinator rank))
          end
      | Some el ->
          let attempt () =
            (try
               ship_drain ();
               true
             with Partitioned _ | Config.Peer_unreachable _ -> false)
            && topo_wait t lv ~until:departed
          in
          if not (attempt ()) && not (departed ()) then begin
            (* A rank on its way out must not stand itself: pick the
               side's lowest member other than the drainer. *)
            (match
               List.filter (fun m -> m <> rank) (side_members t lv ~viewer:rank)
             with
            | candidate :: _ -> run_election t lv el ~candidate
            | [] -> ());
            if
              (rank <> lv.lv_coordinator && not (attempt ()))
              && not (departed ())
            then begin
              (* Minority side: withdraw the drain mark (the rank stays
                 a member until the majority hears about it) and park
                 the intent for the post-heal replay. *)
              Hashtbl.remove lv.lv_draining rank;
              el.el_pending <- P_drain rank :: el.el_pending;
              raise
                (No_quorum
                   (Printf.sprintf
                      "Vchannel.drain: no quorum reachable to retire rank %d \
                       (intent parked for post-heal replay)"
                      rank))
            end
          end)

(* ------------------------------------------------------------------ *)
(* Reception *)

type in_connection = {
  iv : t;
  ic_me : int;
  ic_origin : int;
  ic_flow : int;
  asmb : Assembler.t;
  mutable ic_closed : bool;
}

let begin_unpacking_from ?(flow = 0) t ~me ~remote =
  Mailbox.take (starts t ~me ~origin:remote ~flow);
  Engine.sleep Config.begin_overhead;
  {
    iv = t;
    ic_me = me;
    ic_origin = remote;
    ic_flow = flow;
    asmb = assembler t ~me ~origin:remote ~flow;
    ic_closed = false;
  }

let begin_unpacking t ~me =
  let origin, flow = Mailbox.take (incoming t ~me) in
  Mailbox.take (starts t ~me ~origin ~flow);
  Engine.sleep Config.begin_overhead;
  {
    iv = t;
    ic_me = me;
    ic_origin = origin;
    ic_flow = flow;
    asmb = assembler t ~me ~origin ~flow;
    ic_closed = false;
  }

let remote_rank ic = ic.ic_origin
let remote_flow ic = ic.ic_flow

let unpack ic ?(s_mode = Iface.Send_cheaper) ?(r_mode = Iface.Receive_cheaper)
    ?off ?len data =
  if ic.ic_closed then invalid_arg "Vchannel.unpack: connection closed";
  Engine.sleep Config.unpack_overhead;
  let buf = Buf.make ?off ?len data in
  let sub = Bytes.create Generic_tm.sub_header_size in
  Assembler.read_exact ic.asmb sub ~off:0 ~len:Generic_tm.sub_header_size;
  let len', s', r' = Generic_tm.decode_sub_header sub in
  if len' <> Buf.length buf || s' <> s_mode || r' <> r_mode then
    raise
      (Config.Symmetry_violation
         (Format.asprintf
            "vchannel pack/unpack mismatch from %d: packed (%d, %a, %a) but \
             unpacked (%d, %a, %a)"
            ic.ic_origin len' Iface.pp_send_mode s' Iface.pp_recv_mode r'
            (Buf.length buf) Iface.pp_send_mode s_mode Iface.pp_recv_mode
            r_mode));
  (* The payload bytes were already extracted (and their copy paid) by
     the dispatcher; this read is bookkeeping. *)
  Assembler.read_exact ic.asmb buf.Buf.data ~off:buf.Buf.off ~len:buf.Buf.len

let end_unpacking ic =
  if ic.ic_closed then invalid_arg "Vchannel.end_unpacking: connection closed";
  Engine.sleep Config.end_overhead;
  Assembler.finish_message ic.asmb;
  ic.ic_closed <- true

(* ------------------------------------------------------------------ *)
(* Health and reliability statistics *)

let peer_status t ~src ~dst =
  check_ranks t "peer_status" src dst;
  (* Absence from the current topology epoch outranks everything: a
     departed rank is a typed verdict, not a lookup failure — and not
     [Down], which failover would keep trying to route around. The
     routes already exclude it, so nothing ever reroutes *to* it. *)
  match t.live with
  | Some lv
    when (not (Topology.mem lv.lv_snapshot dst))
         || not (Topology.mem lv.lv_snapshot src) ->
      Iface.Departed
  | _ -> (
  match t.rel with
  | Some r
    when (not (Simnet.Faults.node_up r.faults dst))
         ||
         (* With an election plane suspicion is observer-relative (the
            asker's own verdict); without one any observer's verdict
            stands for everybody — the pre-election global semantics. *)
         (match t.elect with
         | Some _ -> Hashtbl.mem r.suspected (src, dst)
         | None -> Hashtbl.mem r.susp_count dst) ->
      Iface.Down
  | _ -> (
      if src = dst then Iface.Up
      else
        match Hashtbl.find_opt t.routes (src, dst) with
        | None -> Iface.Down
        | Some hops ->
            let n = List.length hops in
            let base =
              match Hashtbl.find_opt t.base_hops (src, dst) with
              | Some b -> b
              | None -> n
            in
            (* Overload shedding on the current path (destination or any
               relay above its watermark) outranks mere route
               lengthening: after rerouting away from an overloaded
               gateway the flow reports Degraded like any failover. *)
            if
              Hashtbl.mem t.overloaded dst
              || List.exists (fun h -> Hashtbl.mem t.overloaded h.hop_to) hops
            then Iface.Overloaded
            else if n > base then Iface.Degraded (n - base)
            else Iface.Up))

type rel_stats = {
  reroutes : int;
  reemitted : int;
  dup_drops : int;
  handshakes : int;
}

let rel_stats t =
  match t.rel with
  | None -> None
  | Some r ->
      Some
        {
          reroutes = r.reroutes;
          reemitted = r.reemitted;
          dup_drops = r.dup_drops;
          handshakes = r.handshakes;
        }

type flow_stat = {
  flow_src : int;
  flow_dst : int;
  sent : int;
  unacked : int;
  delivered : int;
}

let flow_stats t =
  match t.rel with
  | None -> []
  | Some r ->
      let keys = Hashtbl.create 16 in
      Hashtbl.iter (fun (s, d) _ -> Hashtbl.replace keys (s, d) ()) r.tx_seq;
      Hashtbl.iter (fun (me, o) _ -> Hashtbl.replace keys (o, me) ()) r.rx_next;
      Hashtbl.fold
        (fun (s, d) () acc ->
          let deref table key =
            match Hashtbl.find_opt table key with Some x -> !x | None -> 0
          in
          let unacked =
            match Hashtbl.find_opt r.unacked (s, d) with
            | Some q -> Queue.length q
            | None -> 0
          in
          {
            flow_src = s;
            flow_dst = d;
            sent = deref r.tx_seq (s, d);
            unacked;
            delivered = deref r.rx_next (d, s);
          }
          :: acc)
        keys []
      |> List.sort compare

type credit_stats = {
  credit_budget : int;
  grants : int;
  probes : int;
  stalls : int;
}

let credit_stats t =
  match t.credits with
  | None -> None
  | Some c ->
      Some
        {
          credit_budget = c.cr_budget;
          grants = c.cr_grants;
          probes = c.cr_probes;
          stalls = c.cr_stalls;
        }

let sched_stats t =
  match t.sched with None -> None | Some sc -> Some (Sched.stats sc)

let overloaded t =
  Hashtbl.fold (fun node () acc -> node :: acc) t.overloaded []
  |> List.sort compare

let overload_events t = t.overload_events

type queue_stat = {
  q_point : string;
  q_node : int;
  q_peer : int;
  q_peak : int;
  q_bound : int option;
}

(* Every instrumented buffering point with its observed peak and, when
   the backpressure plane bounds it, the configured bound. Peaks are
   tracked unconditionally (plain counter updates); bounds exist for
   assemblers and unacked logs only when the relevant plane is on. *)
let queue_stats t =
  let acc = ref [] in
  let asm_bound =
    match t.credits with Some c -> Some (c.cr_budget * t.mtu) | None -> None
  in
  Hashtbl.iter
    (fun (me, origin) pp ->
      acc :=
        {
          q_point = "assembler_bytes";
          q_node = me;
          q_peer = origin;
          q_peak = pp.pp_peak;
          q_bound = asm_bound;
        }
        :: !acc)
    t.asm_depth;
  Hashtbl.iter
    (fun node pp ->
      acc :=
        {
          q_point = "gateway_pool_slots";
          q_node = node;
          q_peer = -1;
          q_peak = pp.pp_peak;
          (* one pool per outgoing link; elastic scale-out raises the
             per-pool ceiling by the node's high-water extra slots *)
          q_bound =
            (let extra =
               match t.live with
               | Some lv -> (
                   match Hashtbl.find_opt lv.lv_extra_peak node with
                   | Some n -> n
                   | None -> 0)
               | None -> 0
             in
             Some
               ((t.gw_pool + extra)
               * Hashtbl.fold
                   (fun (n, _, _) _ k -> if n = node then k + 1 else k)
                   t.pumps 0));
        }
        :: !acc)
    t.pump_depth;
  Hashtbl.iter
    (fun (src, dst) peak ->
      acc :=
        {
          q_point = "unacked_packets";
          q_node = src;
          q_peer = dst;
          q_peak = !peak;
          q_bound = Some t.unacked_cap;
        }
        :: !acc)
    t.unacked_peak;
  List.sort compare !acc

type topology_stats = {
  topo_epoch : int;
  topo_members : int list;
  topo_coordinator : int;
  topo_joins : int;
  topo_drains : int;
  topo_scale_outs : int;
  topo_scale_ins : int;
}

let topology_stats t =
  match t.live with
  | None -> None
  | Some lv ->
      Some
        {
          topo_epoch = Topology.epoch lv.lv_snapshot;
          topo_members = Topology.ranks lv.lv_snapshot;
          topo_coordinator = lv.lv_coordinator;
          topo_joins = lv.lv_joins;
          topo_drains = lv.lv_drains;
          topo_scale_outs = lv.lv_scale_outs;
          topo_scale_ins = lv.lv_scale_ins;
        }

let election t = match t.elect with Some _ -> true | None -> false

let coordinator t =
  match t.live with Some lv -> Some lv.lv_coordinator | None -> None

(* The collectives' fail-fast oracle: can [viewer] currently see a
   quorum of members on its own side of whatever cuts exist? Always
   true without an election plane — quorum is then not a concept the
   channel tracks. *)
let has_quorum t ~viewer =
  match (t.elect, t.live, t.rel) with
  | Some el, Some lv, Some r ->
      Simnet.Faults.node_up r.faults viewer && side_has_quorum t lv el ~viewer
  | _ -> true

type election_stats = {
  quorum : int;
  elections : int;  (** committed coordinator changes *)
  attempts : int;  (** candidacies started *)
  refusals : int;  (** quorum refusals: failed candidacies + vetoed bumps *)
  commits : (int * int) list;  (** (epoch, coordinator), oldest first *)
  pending : int;  (** parked minority intents awaiting a heal *)
  last_latency_us : float;
}

let election_stats t =
  match t.elect with
  | None -> None
  | Some el ->
      Some
        {
          quorum =
            (match t.live with
            | Some lv -> quorum_needed lv el
            | None -> Option.value el.el_quorum ~default:0);
          elections = el.el_elections;
          attempts = el.el_attempts;
          refusals = el.el_refusals;
          commits = List.rev el.el_commits;
          pending = List.length el.el_pending;
          last_latency_us = Time.to_us el.el_last_latency;
        }

let sentinel t ~rank =
  match t.rel with
  | None -> None
  | Some r -> Hashtbl.find_opt r.sentinels rank

let suspicion_timeline t =
  match t.rel with
  | None -> []
  | Some r ->
      Hashtbl.fold
        (fun me s acc ->
          List.map (fun ev -> (me, ev)) (Sentinel.timeline s) @ acc)
        r.sentinels []
      |> List.sort (fun (_, a) (_, b) ->
             compare a.Sentinel.ev_at b.Sentinel.ev_at)

let engine t = t.engine

(* The Collectives layer's liveness oracle: a rank participates in a
   collective iff it is part of the vchannel, a member of the current
   topology epoch (and not mid-drain), actually up, and not under
   suspicion — the same predicate routing uses, so a tree built over
   live ranks is also routable. *)
let rank_alive t rank =
  List.mem rank t.all_ranks
  && (match t.live with
     | Some lv ->
         Topology.mem lv.lv_snapshot rank
         && not (Hashtbl.mem lv.lv_draining rank)
     | None -> true)
  &&
  match t.rel with
  | Some r -> (
      Simnet.Faults.node_up r.faults rank
      &&
      match (t.elect, t.live) with
      | Some _, Some lv ->
          (* Election on: alive means "in the coordinator's trust
             component" — the committed side's view, so majority trees
             exclude the whole minority, not just directly-suspected
             neighbours. Route presence is the trust-path closure. *)
          rank = lv.lv_coordinator
          || Hashtbl.mem t.routes (lv.lv_coordinator, rank)
      | _ -> not (Hashtbl.mem r.susp_count rank))
  | None -> true

let rank_overloaded t rank = Hashtbl.mem t.overloaded rank
