type rx_interaction =
  | Rx_poll
  | Rx_interrupt
  | Rx_adaptive of Marcel.Time.span

type t = {
  checked : bool;
  aggregation : bool;
  sisci_ring_slots : int;
  sisci_use_dma : bool;
  sisci_slot_payload : int;
  sisci_dma_threshold : int;
  rendezvous_threshold : int option;
  regcache_entries : int;
  regcache_bytes : int option;
  rx_interaction : rx_interaction;
  tcp_connect_timeout : Marcel.Time.span option;
}

exception Symmetry_violation of string
exception Peer_unreachable of string

let default_sisci_slot_payload = 8192
let default_sisci_dma_threshold = 16 * 1024
let default_regcache_entries = 8

let default =
  {
    checked = true;
    aggregation = true;
    sisci_ring_slots = 2;
    sisci_use_dma = false;
    sisci_slot_payload = default_sisci_slot_payload;
    sisci_dma_threshold = default_sisci_dma_threshold;
    rendezvous_threshold = None;
    regcache_entries = default_regcache_entries;
    regcache_bytes = None;
    rx_interaction = Rx_poll;
    tcp_connect_timeout = None;
  }

module Time = Marcel.Time

let pack_overhead = Time.us 0.45
let unpack_overhead = Time.us 0.3
let begin_overhead = Time.us 0.55
let end_overhead = Time.us 0.5

let sisci_short_max = 480
let sisci_short_slots = 16
let default_adaptive_window = Time.us 30.0
let slot_header = 8

let bip_short_payload = Simnet.Netparams.bip_short_max - 1
let via_slot_payload = Simnet.Netparams.via_descriptor_max
let sbp_slot_payload = Simnet.Netparams.sbp_buffer_size
let via_posted_descriptors = 8

let default_vchannel_mtu = 16 * 1024
let gateway_packet_overhead = Time.us 50.0
let default_route_patience = Time.ms 25.0
let packet_header_size = 16
let buffer_header_size = 8
let default_gateway_pool = 2
let default_unacked_window = 256
let credit_probe_interval = Time.ms 1.0
let overload_hold = Time.us 250.0
let default_aggr_flush = Time.us 50.0
