(** Protocol Management Module for VIA.

    VIA receives land in pre-posted registered buffers, so both
    directions run through the static-buffer machinery: one TM whose
    slots are VIA descriptors (up to 32 kB). The receiver keeps
    {!Config.via_posted_descriptors} descriptors posted, re-posting each
    buffer as it is consumed. *)

val capacity : int
val select :
  config:Config.t ->
  len:int ->
  transit:bool ->
  Iface.send_mode ->
  Iface.recv_mode ->
  int
val driver : (int -> Via.t) -> Driver.t
