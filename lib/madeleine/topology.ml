(* Versioned live topology: an epoch-numbered immutable snapshot of the
   rank set, with a designated coordinator. The session layer holds the
   current snapshot and swaps it atomically on join/drain; everything
   downstream (routing, sentinels, gateway pools) reads the snapshot it
   was handed, never a mutable table, so a reconfiguration is a single
   pointer swap followed by a route recomputation.

   Epochs are strictly increasing: every membership change produces a
   fresh snapshot with [epoch + 1]. Two snapshots are comparable with
   {!diff}, which is what the vchannel uses to re-emit only the flows
   whose routes could actually have changed. *)

type t = { epoch : int; ranks : int list; coordinator : int }
type change = { joined : int list; departed : int list }

let sort_uniq = List.sort_uniq compare

let make ?(epoch = 0) ~coordinator ranks =
  if epoch < 0 then invalid_arg "Topology.make: negative epoch";
  let ranks = sort_uniq ranks in
  if ranks = [] then invalid_arg "Topology.make: empty rank set";
  if not (List.mem coordinator ranks) then
    invalid_arg
      (Printf.sprintf "Topology.make: coordinator %d is not a member"
         coordinator);
  { epoch; ranks; coordinator }

let epoch t = t.epoch
let ranks t = t.ranks
let coordinator t = t.coordinator
let mem t rank = List.mem rank t.ranks
let cardinal t = List.length t.ranks

let join t rank =
  if mem t rank then
    invalid_arg (Printf.sprintf "Topology.join: rank %d is already a member" rank);
  { t with epoch = t.epoch + 1; ranks = sort_uniq (rank :: t.ranks) }

let drain t rank =
  if not (mem t rank) then
    invalid_arg (Printf.sprintf "Topology.drain: rank %d is not a member" rank);
  if rank = t.coordinator then
    invalid_arg
      (Printf.sprintf "Topology.drain: rank %d is the coordinator" rank);
  { t with epoch = t.epoch + 1; ranks = List.filter (( <> ) rank) t.ranks }

let with_coordinator t rank =
  if not (mem t rank) then
    invalid_arg
      (Printf.sprintf "Topology.with_coordinator: rank %d is not a member"
         rank);
  if rank = t.coordinator then t
  else { t with epoch = t.epoch + 1; coordinator = rank }

let diff a b =
  {
    joined = List.filter (fun r -> not (mem a r)) b.ranks;
    departed = List.filter (fun r -> not (mem b r)) a.ranks;
  }

let pp ppf t =
  Format.fprintf ppf "epoch %d: {%s} coord %d" t.epoch
    (String.concat "," (List.map string_of_int t.ranks))
    t.coordinator
