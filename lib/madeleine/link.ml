type selector =
  len:int -> transit:bool -> Iface.send_mode -> Iface.recv_mode -> int

type sender = {
  s_mutex : Marcel.Mutex.t;
  s_bmms : Bmm.send array;
  s_select : selector;
}

type receiver = {
  r_mutex : Marcel.Mutex.t;
  r_bmms : Bmm.recv array;
  r_select : selector;
  r_probe : unit -> bool;
}

let make_sender s_select s_bmms =
  if Array.length s_bmms = 0 then invalid_arg "Link.make_sender: no TMs";
  { s_mutex = Marcel.Mutex.create (); s_bmms; s_select }

let make_receiver r_select r_bmms ~probe =
  if Array.length r_bmms = 0 then invalid_arg "Link.make_receiver: no TMs";
  { r_mutex = Marcel.Mutex.create (); r_bmms; r_select; r_probe = probe }
