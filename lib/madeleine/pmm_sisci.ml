(* Protocol Management Module for SISCI/SCI (paper §5.2.1).

   Three transmission modules, as in the paper:
   - TM 0, "sisci-short": a dedicated small-slot ring written with a
     single PIO burst (header and payload in one write) — the highly
     optimized short-message TM behind the 3.9 us latency;
   - TM 1, "sisci-regular": a ring of 8 kB slots. With the default two
     slots, the sender's PIO write of slot k+1 overlaps the receiver's
     copy-out of slot k: the paper's adaptive dual-buffering, visible as
     the bandwidth kink above 8 kB. One slot (config) disables the
     overlap for the ablation study;
   - TM 2, "sisci-dma": same ring discipline driven by the D310 DMA
     engine. Implemented but not selected unless [sisci_use_dma] — the
     paper ships it disabled because the engine tops out at 35 MB/s;
   - TM 3, "sisci-rdv": zero-copy RDMA rendezvous for long messages
     (selected above [rendezvous_threshold], never on gateway transit
     hops). RTS/CTS handshake over two tiny dedicated segments: the
     sender announces the length (RTS), the receiver registers (pins)
     its user buffer, exposes it as a segment and answers with the
     landing offset (CTS), and the sender issues one busmaster write
     straight from its own registered buffer — no staging slot, no
     ring, no receiver copy-out. The sender-side registration is served
     by a per-rank pin-down cache (Regcache). A done flag riding the
     same ordered stream as the data tells the receiver the landing is
     complete.

   Rings live in receiver-owned segments. Slot layout: 4-byte length,
   4-byte valid flag, payload. Slot reuse is guarded by a credit
   semaphore released when the receiver has copied the slot out; the
   credit return travels piggybacked/amortized in the real system and is
   modelled as immediate. *)

module Engine = Marcel.Engine
module Time = Marcel.Time
module Semaphore = Marcel.Semaphore

let memcpy_sleep = Simnet.Cost.memcpy

let hdr = Config.slot_header

type ring_geometry = { slots : int; payload : int }

let short_geometry = { slots = Config.sisci_short_slots; payload = Config.sisci_short_max }
let regular_geometry config =
  { slots = config.Config.sisci_ring_slots; payload = config.Config.sisci_slot_payload }
let dma_geometry = { slots = 2; payload = 32760 }

(* Rendezvous control blocks. RTS (receiver-owned): [len:4][valid:1]
   [done:1][pad:2]; CTS (sender-owned, written by the receiver):
   [landing offset:4][valid:1][pad:3]. One outstanding rendezvous per
   (src, dst) pair — the link mutex serializes messages and buffers
   within a message complete in order. *)
let rdv_ctl_size = 8

let segment_size g = g.slots * (hdr + g.payload)
let seg_id ~channel_id ~src ~kind = (channel_id * 1024) + (src * 8) + kind

(* Sender half of a ring TM. [ship] performs the actual remote write
   (PIO or DMA); staging blits model no time — the remote write is the
   single data movement, as when packing straight into the mapped
   segment. The staging buffer is laid out as a complete slot frame
   (header + payload) so shipping needs no per-slot frame allocation. *)
let ring_send_tm ~name ~geometry ~sem
    ~(ship : off:int -> len:int -> Bytes.t -> unit) =
  let staging = Bytes.create (hdr + geometry.payload) in
  let fill = ref 0 in
  let idx = ref 0 in
  {
    Tm.s_name = name;
    s_side =
      Tm.Static_send
        {
          Tm.send_capacity = geometry.payload;
          obtain_static_buffer = (fun () -> Semaphore.acquire sem);
          write_static =
            (fun buf ->
              Buf.blit_out buf staging (hdr + !fill);
              fill := !fill + Buf.length buf);
          ship_static =
            (fun () ->
              let slot = !idx mod geometry.slots in
              Bytes.set_int32_le staging 0 (Int32.of_int !fill);
              Bytes.set staging 4 '\001';
              ship ~off:(slot * (hdr + geometry.payload)) ~len:(hdr + !fill)
                staging;
              incr idx;
              fill := 0);
        };
  }

let slot_flag_set seg ~off = Sisci.get seg ~off:(off + 4) <> '\000'

let rx_mode config =
  match config.Config.rx_interaction with
  | Config.Rx_poll -> Sisci.Poll
  | Config.Rx_interrupt -> Sisci.Interrupt
  | Config.Rx_adaptive w -> Sisci.Adaptive w

let ring_recv_tm ~name ~geometry ~sem ~seg ~mode =
  let idx = ref 0 in
  let read_off = ref 0 in
  let slot_off () = !idx mod geometry.slots * (hdr + geometry.payload) in
  {
    Tm.r_name = name;
    r_side =
      Tm.Static_recv
        {
          Tm.recv_capacity = geometry.payload;
          fetch_static =
            (fun () ->
              let off = slot_off () in
              Sisci.wait_until ~mode seg (fun seg -> slot_flag_set seg ~off);
              read_off := 0;
              Sisci.get_int32_le seg ~off);
          read_static =
            (fun buf ->
              let off = slot_off () in
              memcpy_sleep (Buf.length buf);
              Sisci.read_into seg
                ~off:(off + hdr + !read_off)
                ~len:(Buf.length buf) buf.Buf.data ~pos:buf.Buf.off;
              read_off := !read_off + Buf.length buf);
          consume_static =
            (fun () ->
              Sisci.set seg ~off:(slot_off () + 4) '\000';
              incr idx;
              Semaphore.release sem);
        };
    r_probe = (fun () -> slot_flag_set seg ~off:(slot_off ()));
  }

type pair_state = {
  short_seg : Sisci.local_segment;
  regular_seg : Sisci.local_segment;
  dma_seg : Sisci.local_segment;
  rts_seg : Sisci.local_segment; (* receiver-owned, kind 3 *)
  cts_seg : Sisci.local_segment; (* sender-owned, kind 4 *)
  short_sem : Semaphore.t;
  regular_sem : Semaphore.t;
  dma_sem : Semaphore.t;
}

let select ~config ~len ~transit _s _r =
  if len <= Config.sisci_short_max then 0
  else
    match config.Config.rendezvous_threshold with
    | Some threshold when (not transit) && len >= threshold -> 3
    | _ ->
        if
          config.Config.sisci_use_dma
          && len >= config.Config.sisci_dma_threshold
        then 2
        else 1

(* Sender half of the rendezvous TM. Registration of the source buffer
   goes through the per-rank pin-down cache: a warm resend of the same
   buffer pays no pin at all. *)
let rendezvous_send_tm ~name ~adapter ~dst ~rs_rts ~cts_seg ~mode ~cache
    ~target_seg_id =
  let rts = Bytes.create rdv_ctl_size in
  let done_flag = Bytes.make 1 '\001' in
  let send_one buf =
    let len = Buf.length buf in
    Bytes.set_int32_le rts 0 (Int32.of_int len);
    Bytes.set rts 4 '\001';
    Bytes.set rts 5 '\000';
    Sisci.pio_write rs_rts ~off:0 rts;
    Sisci.wait_until ~mode cts_seg (fun s -> Sisci.get s ~off:4 <> '\000');
    let landing = Sisci.get_int32_le cts_seg ~off:0 in
    Sisci.set cts_seg ~off:4 '\000';
    let entry = Regcache.acquire cache buf.Buf.data ~pos:buf.Buf.off ~len in
    let target =
      Sisci.connect adapter ~node_id:dst ~segment_id:target_seg_id
    in
    Sisci.rdma_write_direct target ~off:landing (Regcache.handle entry)
      ~pos:buf.Buf.off ~len;
    (* Rides the same ordered (src, dst) stream as the data: the
       receiver seeing it implies the landing is complete. *)
    Sisci.pio_write rs_rts ~off:5 done_flag;
    Regcache.release cache entry
  in
  {
    Tm.s_name = name;
    s_side =
      Tm.Dynamic_send
        {
          Tm.send_buffer = send_one;
          send_buffer_group = (fun bufs -> Bufs.iter send_one bufs);
        };
  }

(* Receiver half: pins the destination user buffer, exposes it under the
   agreed segment id, answers CTS with the landing offset, and waits for
   the done flag before unpinning — the data lands straight in user
   memory, so there is no copy-out to charge. *)
let rendezvous_recv_tm ~name ~adapter ~rts_seg ~rs_cts ~mode ~target_seg_id =
  let cts = Bytes.create rdv_ctl_size in
  let recv_one buf =
    Sisci.wait_until ~mode rts_seg (fun s -> Sisci.get s ~off:4 <> '\000');
    let advertised = Sisci.get_int32_le rts_seg ~off:0 in
    if advertised <> Buf.length buf then
      raise
        (Config.Symmetry_violation
           (Printf.sprintf
              "rendezvous length mismatch: sender announced %d bytes, \
               receiver unpacked %d" advertised (Buf.length buf)));
    Sisci.set rts_seg ~off:4 '\000';
    let region =
      Sisci.register adapter buf.Buf.data ~pos:buf.Buf.off
        ~len:(Buf.length buf)
    in
    let exposed =
      Sisci.expose_region adapter ~segment_id:target_seg_id region
    in
    Bytes.set_int32_le cts 0 (Int32.of_int buf.Buf.off);
    Bytes.set cts 4 '\001';
    Sisci.pio_write rs_cts ~off:0 cts;
    Sisci.wait_until ~mode rts_seg (fun s -> Sisci.get s ~off:5 <> '\000');
    Sisci.set rts_seg ~off:5 '\000';
    Sisci.retract_segment exposed;
    Sisci.deregister region
  in
  {
    Tm.r_name = name;
    r_side =
      Tm.Dynamic_recv
        {
          Tm.receive_buffer = recv_one;
          receive_buffer_group = (fun bufs -> Bufs.iter recv_one bufs);
        };
    r_probe = (fun () -> Sisci.get rts_seg ~off:4 <> '\000');
  }

let driver (adapter_of : int -> Sisci.t) =
  let instantiate ~channel_id ~config ~ranks =
    let reg_geometry = regular_geometry config in
    let states = Hashtbl.create 16 in
    List.iter
      (fun receiver ->
        List.iter
          (fun src ->
            if src <> receiver then begin
              let adapter = adapter_of receiver in
              let mk kind g =
                Sisci.create_segment adapter
                  ~segment_id:(seg_id ~channel_id ~src ~kind)
                  ~size:(segment_size g)
              in
              Hashtbl.add states (src, receiver)
                {
                  short_seg = mk 0 short_geometry;
                  regular_seg = mk 1 reg_geometry;
                  dma_seg = mk 2 dma_geometry;
                  rts_seg =
                    Sisci.create_segment adapter
                      ~segment_id:(seg_id ~channel_id ~src ~kind:3)
                      ~size:rdv_ctl_size;
                  cts_seg =
                    (* Owned by the *sender*, written back by the
                       receiver: keyed by the receiver's rank. *)
                    Sisci.create_segment (adapter_of src)
                      ~segment_id:(seg_id ~channel_id ~src:receiver ~kind:4)
                      ~size:rdv_ctl_size;
                  short_sem = Semaphore.create short_geometry.slots;
                  regular_sem = Semaphore.create reg_geometry.slots;
                  dma_sem = Semaphore.create dma_geometry.slots;
                }
            end)
          ranks)
      ranks;
    let caches = Hashtbl.create 8 in
    let cache_of rank =
      match Hashtbl.find_opt caches rank with
      | Some c -> c
      | None ->
          let adapter = adapter_of rank in
          let c =
            Regcache.create ~entries:config.Config.regcache_entries
              ?bytes:config.Config.regcache_bytes
              ~register:(Sisci.register adapter) ~deregister:Sisci.deregister
              ()
          in
          Hashtbl.add caches rank c;
          c
    in
    let sel ~len ~transit s r = select ~config ~len ~transit s r in
    let sender_link =
      Driver.memo_links (fun ~src ~dst ->
          let st = Hashtbl.find states (src, dst) in
          let connect kind =
            Sisci.connect (adapter_of src) ~node_id:dst
              ~segment_id:(seg_id ~channel_id ~src ~kind)
          in
          let rs_short = connect 0
          and rs_regular = connect 1
          and rs_dma = connect 2
          and rs_rts = connect 3 in
          let tms =
            [|
              ring_send_tm ~name:"sisci-short" ~geometry:short_geometry
                ~sem:st.short_sem
                ~ship:(fun ~off ~len frame ->
                  Sisci.pio_write_sub rs_short ~off frame ~pos:0 ~len);
              ring_send_tm ~name:"sisci-regular" ~geometry:reg_geometry
                ~sem:st.regular_sem
                ~ship:(fun ~off ~len frame ->
                  Sisci.pio_write_sub rs_regular ~off frame ~pos:0 ~len);
              ring_send_tm ~name:"sisci-dma" ~geometry:dma_geometry
                ~sem:st.dma_sem
                ~ship:(fun ~off ~len frame ->
                  Sisci.dma_write_sub rs_dma ~off frame ~pos:0 ~len);
              rendezvous_send_tm ~name:"sisci-rdv" ~adapter:(adapter_of src)
                ~dst ~rs_rts ~cts_seg:st.cts_seg ~mode:(rx_mode config)
                ~cache:(cache_of src)
                ~target_seg_id:(seg_id ~channel_id ~src ~kind:5);
            |]
          in
          Link.make_sender sel
            (Array.map (Bmm.send_of_tm ~aggregation:config.Config.aggregation) tms))
    in
    let receiver_link =
      Driver.memo_links (fun ~src ~dst ->
          (* src = me (receiver), dst = from *)
          let st = Hashtbl.find states (dst, src) in
          let mode = rx_mode config in
          let rs_cts =
            Sisci.connect (adapter_of src) ~node_id:dst
              ~segment_id:(seg_id ~channel_id ~src ~kind:4)
          in
          let tms =
            [|
              ring_recv_tm ~name:"sisci-short" ~geometry:short_geometry
                ~sem:st.short_sem ~seg:st.short_seg ~mode;
              ring_recv_tm ~name:"sisci-regular" ~geometry:reg_geometry
                ~sem:st.regular_sem ~seg:st.regular_seg ~mode;
              ring_recv_tm ~name:"sisci-dma" ~geometry:dma_geometry
                ~sem:st.dma_sem ~seg:st.dma_seg ~mode;
              rendezvous_recv_tm ~name:"sisci-rdv" ~adapter:(adapter_of src)
                ~rts_seg:st.rts_seg ~rs_cts ~mode
                ~target_seg_id:(seg_id ~channel_id ~src:dst ~kind:5);
            |]
          in
          let probe () = Array.exists (fun tm -> tm.Tm.r_probe ()) tms in
          Link.make_receiver sel (Array.map Bmm.recv_of_tm tms) ~probe)
    in
    {
      Driver.inst_name = "sisci";
      inst_fabric = None;
      sender_link;
      receiver_link = (fun ~me ~from -> receiver_link ~src:me ~dst:from);
      on_data =
        (fun ~me hook ->
          Hashtbl.iter
            (fun (_, receiver) st ->
              if receiver = me then begin
                Sisci.set_data_hook st.short_seg hook;
                Sisci.set_data_hook st.regular_seg hook;
                Sisci.set_data_hook st.dma_seg hook;
                Sisci.set_data_hook st.rts_seg hook
              end)
            states);
      peer_health = (fun ~me:_ ~peer:_ -> Iface.Up);
      reg_stats =
        (fun ~me -> Option.map Regcache.stats (Hashtbl.find_opt caches me));
    }
  in
  { Driver.driver_name = "sisci"; instantiate }
