(** Channels: closed worlds for communication (paper §2.1).

    A channel is associated with one network interface (through its
    {!Driver}), one adapter per node, and a set of connection objects.
    Communication over a channel does not interfere with other channels;
    in-order delivery holds for point-to-point connections within one
    channel. Several channels may share the same interface and adapter. *)

type t

type endpoint
(** One process's view of the channel ([rank] = node id). *)

val create :
  Session.t -> Driver.t -> ?config:Config.t -> ranks:int list -> unit -> t
(** Collectively opens a channel spanning [ranks] (each rank must have an
    endpoint on the driver's network). Protocol resources — tags,
    segments, streams, VIs — are set up here, as [mad_open_channel]
    does at session initialization. *)

val config : t -> Config.t
val ranks : t -> int list
val id : t -> int

val fabric : t -> string option
(** The simulated fabric the channel's driver sends over, when known
    (see {!Driver.instance.inst_fabric}). *)

val endpoint : t -> rank:int -> endpoint
(** Raises [Not_found] if [rank] is not part of the channel. *)

val endpoint_rank : endpoint -> int
val endpoint_channel : endpoint -> t

val peer_health : endpoint -> remote:int -> Iface.health
(** Health of the path to [remote] as seen by the channel's driver:
    [Up], [Degraded n] under retransmission pressure, or [Down] once the
    peer is unreachable. Interfaces without failure detection always
    report [Up]. *)

val reg_stats : endpoint -> Regcache.stats option
(** Counters of this endpoint's sender-side registration (pin-down)
    cache: hits, misses, evictions, merges and currently pinned bytes.
    [None] when the channel's driver has no zero-copy rendezvous path or
    the endpoint has not yet sent through it. *)

val tm_usage : t -> (int * int * int) list
(** Per-transmission-module usage on this channel: [(tm_index, packets,
    bytes)] sorted by index — which paths the Switch actually chose
    (e.g. SISCI: 0 = short ring, 1 = regular ring, 2 = DMA). *)

(**/**)

(* Internal: used by Api and Vchannel. *)

val relax_checked : t -> unit
(** Disables the pack/unpack symmetry bookkeeping on this channel.
    Reliable vchannels call this on their real channels: re-emission
    after a crash and abandonment of partial messages mean the strict
    FIFO mirror behind [Config.checked] no longer holds there — the
    Generic TM sub-headers validate symmetry end-to-end instead. *)

val sender_link : endpoint -> remote:int -> Link.sender
val receiver_link : endpoint -> from:int -> Link.receiver

val wait_any_arrival : endpoint -> int
(** Blocks until some unlocked incoming link has visible data; returns the
    peer rank. Fair rotation across peers. *)

val sym_push :
  t -> src:int -> dst:int -> int * Iface.send_mode * Iface.recv_mode -> unit

val sym_check :
  t -> src:int -> dst:int -> int * Iface.send_mode * Iface.recv_mode -> unit
(** Raises {!Config.Symmetry_violation} when the unpack does not mirror
    the corresponding pack. *)

val record_usage : t -> tm:int -> bytes_count:int -> unit
