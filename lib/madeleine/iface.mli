(** The semantic flags of the Madeleine II packing interface (paper §2.2).

    Every [pack]/[unpack] carries a pair of flags telling the library how
    much freedom it has in moving the data — the paper's key idea for
    getting optimal performance out of a generic interface. *)

type send_mode =
  | Send_safer
      (** The message must not be corrupted by later modifications of the
          packed memory: Madeleine copies (or otherwise protects) the data
          before [pack] returns. *)
  | Send_later
      (** Madeleine must not read the data before [mad_end_packing]:
          modifications between [pack] and [end_packing] update the
          message contents. *)
  | Send_cheaper
      (** Default. Madeleine transmits the data as efficiently as the
          underlying network allows; the application must leave the data
          unchanged until the send completes. *)

type recv_mode =
  | Receive_express
      (** The data is guaranteed available as soon as [unpack] returns —
          required when the value drives subsequent unpacking calls
          (e.g. a size header). May be costly on some networks. *)
  | Receive_cheaper
      (** Default. Extraction may be deferred until [mad_end_unpacking];
          combined with [Send_cheaper] this is the fastest path. *)

val send_mode_to_int : send_mode -> int
val send_mode_of_int : int -> send_mode
(** Wire encoding used by the self-describing Generic TM (§6.1). Raises
    [Invalid_argument] on an unknown code. *)

val recv_mode_to_int : recv_mode -> int
val recv_mode_of_int : int -> recv_mode

val pp_send_mode : Format.formatter -> send_mode -> unit
val pp_recv_mode : Format.formatter -> recv_mode -> unit

(** Peer-health report used for graceful degradation: [Up] when traffic
    flows cleanly, [Degraded n] after [n] consecutive retransmissions
    (or a lengthened reroute), [Overloaded] while the peer (or a relay on
    the current route to it) is shedding load above its forwarding-pool
    high watermark, [Down] once the peer is unreachable, [Departed] when
    the peer is absent from the current topology epoch of a live-topology
    vchannel (drained or not yet joined — see {!Topology}). Failover
    treats a departed peer like [Down] but never reroutes through it. *)
type health = Up | Degraded of int | Overloaded | Down | Departed

val pp_health : Format.formatter -> health -> unit
