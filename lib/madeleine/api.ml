module Engine = Marcel.Engine
module Mutex = Marcel.Mutex

type out_connection = {
  oc_channel : Channel.t;
  oc_src : int;
  oc_dst : int;
  oc_link : Link.sender;
  mutable oc_tm : int; (* -1: no TM selected yet in this message *)
  mutable oc_closed : bool;
}

type in_connection = {
  ic_channel : Channel.t;
  ic_me : int;
  ic_from : int;
  ic_link : Link.receiver;
  mutable ic_tm : int;
  mutable ic_closed : bool;
}

let begin_packing ep ~remote =
  let link = Channel.sender_link ep ~remote in
  Mutex.lock link.Link.s_mutex;
  Engine.sleep Config.begin_overhead;
  {
    oc_channel = Channel.endpoint_channel ep;
    oc_src = Channel.endpoint_rank ep;
    oc_dst = remote;
    oc_link = link;
    oc_tm = -1;
    oc_closed = false;
  }

let pack oc ?(s_mode = Iface.Send_cheaper) ?(r_mode = Iface.Receive_cheaper)
    ?(transit = false) ?off ?len data =
  if oc.oc_closed then invalid_arg "Madeleine.pack: connection closed";
  Engine.sleep Config.pack_overhead;
  let buf = Buf.make ?off ?len data in
  if (Channel.config oc.oc_channel).Config.checked then
    Channel.sym_push oc.oc_channel ~src:oc.oc_src ~dst:oc.oc_dst
      (Buf.length buf, s_mode, r_mode);
  let bmms = oc.oc_link.Link.s_bmms in
  let tm = oc.oc_link.Link.s_select ~len:(Buf.length buf) ~transit s_mode r_mode in
  Channel.record_usage oc.oc_channel ~tm ~bytes_count:(Buf.length buf);
  (* Switching TMs commits the previous BMM so delivery order across
     transfer methods is preserved (paper §4.1). *)
  if oc.oc_tm >= 0 && oc.oc_tm <> tm then bmms.(oc.oc_tm).Bmm.commit ();
  oc.oc_tm <- tm;
  bmms.(tm).Bmm.append buf s_mode r_mode

let end_packing oc =
  if oc.oc_closed then invalid_arg "Madeleine.end_packing: connection closed";
  Engine.sleep Config.end_overhead;
  if oc.oc_tm >= 0 then oc.oc_link.Link.s_bmms.(oc.oc_tm).Bmm.commit ();
  oc.oc_closed <- true;
  Mutex.unlock oc.oc_link.Link.s_mutex

let abort_packing oc =
  if not oc.oc_closed then begin
    oc.oc_closed <- true;
    Mutex.unlock oc.oc_link.Link.s_mutex
  end

let make_in ep ~from link =
  Mutex.lock link.Link.r_mutex;
  Engine.sleep Config.begin_overhead;
  {
    ic_channel = Channel.endpoint_channel ep;
    ic_me = Channel.endpoint_rank ep;
    ic_from = from;
    ic_link = link;
    ic_tm = -1;
    ic_closed = false;
  }

let begin_unpacking ep =
  let from = Channel.wait_any_arrival ep in
  make_in ep ~from (Channel.receiver_link ep ~from)

let begin_unpacking_from ep ~remote =
  make_in ep ~from:remote (Channel.receiver_link ep ~from:remote)

let remote_rank ic = ic.ic_from

let unpack ic ?(s_mode = Iface.Send_cheaper) ?(r_mode = Iface.Receive_cheaper)
    ?(transit = false) ?off ?len data =
  if ic.ic_closed then invalid_arg "Madeleine.unpack: connection closed";
  Engine.sleep Config.unpack_overhead;
  let buf = Buf.make ?off ?len data in
  if (Channel.config ic.ic_channel).Config.checked then
    Channel.sym_check ic.ic_channel ~src:ic.ic_from ~dst:ic.ic_me
      (Buf.length buf, s_mode, r_mode);
  let bmms = ic.ic_link.Link.r_bmms in
  let tm = ic.ic_link.Link.r_select ~len:(Buf.length buf) ~transit s_mode r_mode in
  (* The receiving side replays the sender's Switch decisions; a TM
     change checks the previous BMM out before touching the new stream. *)
  if ic.ic_tm >= 0 && ic.ic_tm <> tm then bmms.(ic.ic_tm).Bmm.checkout ();
  ic.ic_tm <- tm;
  bmms.(tm).Bmm.extract buf s_mode r_mode

let end_unpacking ic =
  if ic.ic_closed then invalid_arg "Madeleine.end_unpacking: connection closed";
  Engine.sleep Config.end_overhead;
  if ic.ic_tm >= 0 then ic.ic_link.Link.r_bmms.(ic.ic_tm).Bmm.checkout ();
  ic.ic_closed <- true;
  Mutex.unlock ic.ic_link.Link.r_mutex

(* For a receiver abandoning a message whose tail can no longer arrive
   (the transport raised out of an unpack or out of [end_unpacking]):
   releases the link without draining. The BMMs have already discarded
   their deferred state on the failing read, so the link is clean for
   the next message. *)
let abort_unpacking ic =
  if not ic.ic_closed then begin
    ic.ic_closed <- true;
    Mutex.unlock ic.ic_link.Link.r_mutex
  end
