(** The Madeleine II functional interface (paper Table 1).

    Message emission: {!begin_packing} → a sequence of {!pack} →
    {!end_packing}. Reception is strictly symmetric: {!begin_unpacking}
    (or {!begin_unpacking_from}) → the mirror sequence of {!unpack} →
    {!end_unpacking}. Messages are not self-described, so the unpack
    sequence must replay the pack sequence exactly — sizes and mode
    combinations (checked channels raise {!Config.Symmetry_violation}
    instead of the paper's "unspecified behavior").

    All calls must run inside a {!Marcel.Engine} thread belonging to the
    endpoint's simulated node. *)

type out_connection
type in_connection

val begin_packing : Channel.endpoint -> remote:int -> out_connection
(** Initiates a new message toward [remote]. Blocks while another message
    to the same peer on this channel is in flight (connections are
    point-to-point FIFO worlds). *)

val pack :
  out_connection ->
  ?s_mode:Iface.send_mode ->
  ?r_mode:Iface.recv_mode ->
  ?transit:bool ->
  ?off:int ->
  ?len:int ->
  Bytes.t ->
  unit
(** Appends a data block to the message. Defaults: [Send_cheaper],
    [Receive_cheaper], the whole byte sequence. [transit] (default
    false) marks a hop that is not endpoint-to-endpoint (data leaving
    or entering a forwarding gateway's staging buffers); the Switch
    then avoids TMs that hand off user memory directly, such as the
    zero-copy rendezvous. Both ends must agree on the flag — it is part
    of the (len, modes) tuple the receiver replays. *)

val end_packing : out_connection -> unit
(** Flushes every delayed packet and closes the connection object. *)

val abort_packing : out_connection -> unit
(** Releases a connection whose send failed mid-message (e.g. a reliable
    transport raised {!Config.Peer_unreachable}): unlocks the link
    without flushing, so other messages can use it. The aborted
    message's data is lost; used by reliable vchannels, which re-emit
    from their own unacknowledged-packet log. *)

val begin_unpacking : Channel.endpoint -> in_connection
(** Starts extraction of the first incoming message on the channel,
    whichever peer sent it. Blocks until a message is visible. *)

val begin_unpacking_from : Channel.endpoint -> remote:int -> in_connection
(** Starts extraction of the next message from a known peer — the fast
    path when the application knows its communication partner. *)

val remote_rank : in_connection -> int
(** The sending node of the message being unpacked. *)

val unpack :
  in_connection ->
  ?s_mode:Iface.send_mode ->
  ?r_mode:Iface.recv_mode ->
  ?transit:bool ->
  ?off:int ->
  ?len:int ->
  Bytes.t ->
  unit
(** Extracts the next data block into the given slice. With
    [Receive_express] the data is available when [unpack] returns; with
    [Receive_cheaper] only after {!end_unpacking}. [transit] must
    mirror the sender's {!pack} flag (both ends compute it from shared
    routing knowledge). *)

val end_unpacking : in_connection -> unit
(** Completes all deferred extractions and closes the connection. *)

val abort_unpacking : in_connection -> unit
(** Receive-side mirror of {!abort_packing}: releases a connection whose
    read failed mid-message (the sending host crashed with the tail of
    the message in its socket buffer, so the remaining bytes can never
    arrive). The partial message is discarded; reliable vchannels
    recover it whole from the origin's unacknowledged-packet log. *)
