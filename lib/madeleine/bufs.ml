type t = { mutable arr : Buf.t array; mutable len : int }

let create () = { arr = [||]; len = 0 }
let length t = t.len
let is_empty t = t.len = 0

let push t buf =
  let cap = Array.length t.arr in
  if t.len = cap then begin
    let ncap = if cap = 0 then 8 else 2 * cap in
    let grown = Array.make ncap Buf.empty in
    Array.blit t.arr 0 grown 0 t.len;
    t.arr <- grown
  end;
  t.arr.(t.len) <- buf;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Bufs.get: out of bounds";
  t.arr.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.arr.(i)
  done

let clear t =
  (* Wipe the slots so cleared descriptors stop pinning user memory. *)
  Array.fill t.arr 0 t.len Buf.empty;
  t.len <- 0

let to_list t = List.init t.len (fun i -> t.arr.(i))
let map_to_list f t = List.init t.len (fun i -> f t.arr.(i))
