(** Protocol Management Module for BIP/Myrinet (paper §5.2.2).

    Two transmission modules mirror BIP's modes: TM 0 aggregates small
    packets into one credit-controlled BIP short message (static
    buffers); TM 1 carries large packets through the zero-copy
    receiver-acknowledged rendezvous (dynamic buffers). The Switch
    routes at BIP's 1 kB threshold. *)

val short_tag : int -> int
(** BIP tag used by a channel's short-message TM. *)

val long_tag : int -> int
val short_capacity : int
(** Aggregation capacity of one short-message slot. *)

val select : len:int -> transit:bool -> Iface.send_mode -> Iface.recv_mode -> int
(** The Switch query: 0 (short TM) below BIP's threshold, else 1. *)

val driver : (int -> Bip.t) -> Driver.t
(** [driver endpoint_of] builds the PMM over the given per-rank BIP
    endpoints (ranks are node ids). *)
