(* Fault-tolerant collectives over virtual channels (ROADMAP item;
   Yu et al.'s NIC-based combining is the hardware reference point).

   The layer builds epoch-numbered spanning trees from the *physical*
   topology — every tree edge is a single fabric link, taken from the
   channel membership graph — so the interior nodes of a tree are
   genuine gateways, and partial reduction happens in the forwarding
   path: a gateway merges its children's contributions and sends one
   combined payload upward, the software analogue of combining in the
   NIC. A flat baseline ([algo = Flat]) sends every leaf payload
   straight to the root instead; the contrast is the measured
   log-vs-linear scaling figure.

   Robustness is generation-based. Every liveness transition the
   vchannel acts on (crash, restart, suspicion raised or cleared,
   Overloaded watermark edge, topology epoch swap) bumps the layer's
   repair generation through {!Vchannel.set_on_health_change}.
   Contributions are aggregated per (node, generation): a bump
   abandons the partial aggregates of the old generation, wakes every
   parked participant, and re-sends contributions under a fresh tree —
   so no rank is ever counted twice within the generation that
   decides. The root's decision is journalled per collective id
   (first decision wins, modelling the crash-epoch stable journal of
   the reliability plane): a restarted rank re-joining an already
   decided collective gets the journalled value back instead of
   re-opening the aggregation, which is what makes contributions
   exactly-once across a crash/restart cycle. *)

module Engine = Marcel.Engine
module Time = Marcel.Time

exception Collective_failed of string

type algo = Tree | Flat

(* ------------------------------------------------------------------ *)
(* Spanning trees *)

type tree = {
  tr_root : int;
  tr_parent : (int, int) Hashtbl.t; (* child -> parent *)
  tr_children : (int, int list) Hashtbl.t;
  tr_size : (int, int) Hashtbl.t; (* node -> live ranks in its subtree *)
  tr_members : int list; (* reachable live ranks, BFS attach order *)
  tr_depth : int;
}

type kind =
  | K_reduce of (Bytes.t -> Bytes.t -> Bytes.t)
  | K_bcast
  | K_a2a

(* Per-(node, generation) partial aggregate. [a_from] keys the
   immediate contributor (a tree child's rank, or the node itself for
   its own value): a second contribution from the same child within
   one generation is a duplicate and is dropped whole, never merged. *)
type agg = {
  mutable a_value : Bytes.t option;
  mutable a_count : int; (* leaf contributions combined so far *)
  mutable a_forwarded : bool;
  a_from : (int, unit) Hashtbl.t;
}

type inst = {
  i_id : int;
  i_kind : kind;
  i_root : int; (* preferred root; re-roots to the lowest live rank *)
  i_acc : (int * int, agg) Hashtbl.t; (* (node, generation) *)
  i_done : (int, Bytes.t) Hashtbl.t; (* decision as delivered at each node *)
  mutable i_decided : Bytes.t option; (* the root's journal: first wins *)
  i_blocks : (int * int, Bytes.t) Hashtbl.t; (* a2a: (node, origin) *)
  mutable i_waiters : (unit -> unit) list;
}

type t = {
  vc : Vchannel.t;
  engine : Engine.t;
  algo : algo;
  fanout : int;
  quorum : int;
  patience : Time.span;
  mutable generation : int;
  trees : (int * int, tree) Hashtbl.t; (* (generation, root) *)
  insts : (int, inst) Hashtbl.t;
  cursors : (int, int ref) Hashtbl.t; (* per-rank next collective id *)
  mutable gen_waiters : (unit -> unit) list;
  mutable st_packets : int;
  mutable st_combined : int;
  mutable st_root_contribs : int;
  mutable st_dup_suppressed : int;
  mutable st_journal_answers : int;
  mutable st_repairs : int;
  mutable st_last_depth : int;
  mutable st_last_rounds : int;
  mutable st_last_covered : int list;
}

let live_members t = List.filter (Vchannel.rank_alive t.vc) (Vchannel.ranks t.vc)

let lowest = function [] -> -1 | r :: rest -> List.fold_left min r rest

(* Deterministic fanout-capped BFS over the physical neighbour graph,
   restricted to live ranks. Two passes, mirroring the route
   recomputation's overload overlay: the first lets only non-overloaded
   nodes relay (an Overloaded gateway may hang off the tree as a leaf
   but never sits on the spine); the second relaxes that only for live
   ranks the first pass could not reach at all — availability beats
   load shedding, never the other way around. The fanout is a soft
   cap for the same reason: a rank whose only physical parents are
   saturated still gets attached (see the mop-up loop below). Ranks
   with no physical path to the root are left out of [tr_members]
   entirely: they could not carry a packet either way. *)
let build_tree t ~root =
  let vc = t.vc in
  let live = live_members t in
  let root =
    if List.mem root live then root
    else match live with [] -> root | _ -> lowest live
  in
  let alive = Hashtbl.create 16 in
  List.iter (fun r -> Hashtbl.replace alive r ()) live;
  let parent = Hashtbl.create 16 in
  let children = Hashtbl.create 16 in
  let attached = Hashtbl.create 16 in
  Hashtbl.replace attached root ();
  let order = ref [ root ] in
  let kids u =
    match Hashtbl.find_opt children u with Some l -> l | None -> []
  in
  (* Candidate children in degree order, highest first (rank breaks
     ties): a gateway sits on several channels and so has more
     neighbours than a leaf-only rank. Attaching gateways first makes
     the capped BFS fan out across clusters instead of filling the
     root's slots with same-channel leaves and leaving every other
     cluster to the forced-attach path — which would chain the
     gateways into an O(clusters)-deep spine. *)
  let degree = Hashtbl.create 16 in
  let neighbours_by_degree u =
    let deg r =
      match Hashtbl.find_opt degree r with
      | Some d -> d
      | None ->
          let d = List.length (Vchannel.neighbours vc r) in
          Hashtbl.replace degree r d;
          d
    in
    List.stable_sort
      (fun a b -> compare (-deg a, a) (-deg b, b))
      (Vchannel.neighbours vc u)
  in
  let add_child u v =
    Hashtbl.replace children u (kids u @ [ v ]);
    Hashtbl.replace parent v u;
    Hashtbl.replace attached v ();
    order := v :: !order
  in
  (match t.algo with
  | Flat ->
      List.iter
        (fun v -> if v <> root && Hashtbl.mem alive v then add_child root v)
        (Vchannel.ranks vc)
  | Tree ->
      let pass ~relay_ok =
        let frontier = Queue.create () in
        List.iter
          (fun u -> if relay_ok u then Queue.push u frontier)
          (List.rev !order);
        while not (Queue.is_empty frontier) do
          let u = Queue.pop frontier in
          List.iter
            (fun v ->
              if
                Hashtbl.mem alive v
                && (not (Hashtbl.mem attached v))
                && List.length (kids u) < t.fanout
              then begin
                add_child u v;
                if relay_ok v then Queue.push v frontier
              end)
            (neighbours_by_degree u)
        done
      in
      pass ~relay_ok:(fun r ->
          r = root || not (Vchannel.rank_overloaded vc r));
      if List.length !order < List.length live then
        pass ~relay_ok:(fun _ -> true);
      (* Coverage beats the cap: a rank whose every physical neighbour
         is saturated (e.g. backbone gateways that only touch the root)
         is force-attached to its least-loaded attached neighbour, then
         the capped BFS resumes so the subtree it opens grows with the
         normal shape. Terminates: each round attaches at least one
         rank or stops. *)
      let progress = ref true in
      while !progress && List.length !order < List.length live do
        progress := false;
        (match
           List.find_opt
             (fun v ->
               (not (Hashtbl.mem attached v))
               && List.exists
                    (fun u -> Hashtbl.mem attached u)
                    (Vchannel.neighbours vc v))
             live
         with
        | Some v ->
            let best =
              List.fold_left
                (fun acc u ->
                  if not (Hashtbl.mem attached u) then acc
                  else
                    match acc with
                    | Some b when List.length (kids b) <= List.length (kids u)
                      ->
                        acc
                    | _ -> Some u)
                None
                (Vchannel.neighbours vc v)
            in
            (match best with
            | Some u ->
                add_child u v;
                progress := true
            | None -> ())
        | None -> ());
        if !progress then pass ~relay_ok:(fun _ -> true)
      done);
  let members = List.rev !order in
  let size = Hashtbl.create 16 in
  List.iter (fun u -> Hashtbl.replace size u 1) members;
  (* [!order] is reverse BFS order, so every child is folded into its
     parent before the parent is folded into the grandparent. *)
  List.iter
    (fun u ->
      match Hashtbl.find_opt parent u with
      | Some p -> Hashtbl.replace size p (Hashtbl.find size p + Hashtbl.find size u)
      | None -> ())
    !order;
  let depth =
    List.fold_left
      (fun acc u ->
        let rec up v d =
          match Hashtbl.find_opt parent v with
          | Some p -> up p (d + 1)
          | None -> d
        in
        max acc (up u 0))
      0 members
  in
  {
    tr_root = root;
    tr_parent = parent;
    tr_children = children;
    tr_size = size;
    tr_members = members;
    tr_depth = depth;
  }

let tree_for t ~root gen =
  match Hashtbl.find_opt t.trees (gen, root) with
  | Some tree -> tree
  | None ->
      let tree = build_tree t ~root in
      Hashtbl.add t.trees (gen, root) tree;
      tree

let children_of tree u =
  match Hashtbl.find_opt tree.tr_children u with Some l -> l | None -> []

(* ------------------------------------------------------------------ *)
(* Wire encoding: byte 0 kind, 1-4 collective id, 5-8 generation,
   9-12 combined-contribution count, 13.. operand bytes. *)

let k_contrib = 1
let k_done = 2
let k_a2a = 3

(* A decision probe: relayed rootward along tree parents until it
   reaches a node already holding the decision, which answers from its
   journal. This is how a subtree that was cut off while the
   collective decided (its gateway crashed) learns the outcome — the
   completed ranks will never re-contribute, so waiting for subtree
   counts alone would park the stragglers forever. *)
let k_pull = 4
let col_hdr = 13

let encode ~kind ~id ~gen ~count value =
  let b = Bytes.create (col_hdr + Bytes.length value) in
  Bytes.set b 0 (Char.chr kind);
  Bytes.set_int32_le b 1 (Int32.of_int id);
  Bytes.set_int32_le b 5 (Int32.of_int gen);
  Bytes.set_int32_le b 9 (Int32.of_int count);
  Bytes.blit value 0 b col_hdr (Bytes.length value);
  b

let ship t ~src ~dst ~kind ~id ~gen ~count value =
  t.st_packets <- t.st_packets + 1;
  Vchannel.send_col t.vc ~src ~dst (encode ~kind ~id ~gen ~count value)

(* ------------------------------------------------------------------ *)
(* Waiting and repair generations *)

let wake_inst inst =
  let ws = inst.i_waiters in
  inst.i_waiters <- [];
  List.iter (fun w -> w ()) ws

let bump t =
  t.generation <- t.generation + 1;
  t.st_repairs <- t.st_repairs + 1;
  let ws = t.gen_waiters in
  t.gen_waiters <- [];
  List.iter (fun w -> w ()) ws

(* Park until the instance makes progress, the generation changes, or
   the deadline passes — whichever comes first. *)
let wait_change t inst ~deadline =
  Engine.suspend ~name:"collectives.wait" (fun wake ->
      let woken = ref false in
      let once () =
        if not !woken then begin
          woken := true;
          wake ()
        end
      in
      inst.i_waiters <- once :: inst.i_waiters;
      t.gen_waiters <- once :: t.gen_waiters;
      Engine.at t.engine deadline once)

(* Park until [progressed ()], a generation change, or the deadline —
   and only report a timeout when the deadline genuinely passed. The
   instance's waiters wake on progress at {e any} node (the layer is
   one shared protocol state), so a participant can be woken many
   times without local progress; those wakes re-park on the {e same}
   deadline instead of counting as patience expiries. Returns [true]
   on progress or a generation change, [false] on a real timeout. *)
let wait_progress t inst ~gen ~progressed =
  let deadline = Time.add (Engine.now t.engine) t.patience in
  let rec park () =
    wait_change t inst ~deadline;
    if progressed () || t.generation <> gen then true
    else if Time.( < ) (Engine.now t.engine) deadline then park ()
    else false
  in
  park ()

(* ------------------------------------------------------------------ *)
(* The aggregation protocol *)

let agg_for inst ~node ~gen =
  match Hashtbl.find_opt inst.i_acc (node, gen) with
  | Some a -> a
  | None ->
      let a =
        { a_value = None; a_count = 0; a_forwarded = false;
          a_from = Hashtbl.create 4 }
      in
      Hashtbl.add inst.i_acc (node, gen) a;
      a

(* Deliver the decision at [me] and push it one tree level down; each
   receiving node repeats, so one decision floods the deciding tree. *)
let rec deliver_done t inst ~me ~gen value =
  if not (Hashtbl.mem inst.i_done me) then begin
    Hashtbl.replace inst.i_done me value;
    wake_inst inst;
    let tree = tree_for t ~root:inst.i_root gen in
    List.iter
      (fun child ->
        ship t ~src:me ~dst:child ~kind:k_done ~id:inst.i_id ~gen ~count:0
          value)
      (children_of tree me)
  end

and decide t inst ~me ~gen tree value =
  if inst.i_decided = None then begin
    inst.i_decided <- Some value;
    t.st_last_depth <- tree.tr_depth;
    t.st_last_rounds <- 2 * max tree.tr_depth 1;
    t.st_last_covered <- List.sort compare tree.tr_members;
    deliver_done t inst ~me ~gen value
  end

and check_complete t inst ~node ~gen tree agg =
  let expected =
    match Hashtbl.find_opt tree.tr_size node with Some n -> n | None -> 0
  in
  if expected > 0 && agg.a_count >= expected && not agg.a_forwarded then begin
    agg.a_forwarded <- true;
    let value =
      match agg.a_value with Some v -> v | None -> Bytes.create 0
    in
    if node = tree.tr_root then decide t inst ~me:node ~gen tree value
    else
      match Hashtbl.find_opt tree.tr_parent node with
      | Some p ->
          ship t ~src:node ~dst:p ~kind:k_contrib ~id:inst.i_id ~gen
            ~count:agg.a_count value
      | None -> ()
  end

(* Merge a contribution at [node]: [from] is the immediate contributor
   (a tree child, or the node itself), [count] how many leaf values it
   already combines. Within one generation the children's subtrees are
   disjoint, so counts add; a repeated [from] is a duplicate and is
   suppressed whole. *)
and merge_contrib t inst ~node ~gen ~from ~count value =
  let tree = tree_for t ~root:inst.i_root gen in
  if Hashtbl.mem tree.tr_size node then begin
    let agg = agg_for inst ~node ~gen in
    if Hashtbl.mem agg.a_from from then
      t.st_dup_suppressed <- t.st_dup_suppressed + 1
    else begin
      Hashtbl.replace agg.a_from from ();
      if agg.a_count > 0 && node <> tree.tr_root then
        t.st_combined <- t.st_combined + 1;
      agg.a_count <- agg.a_count + count;
      (match inst.i_kind with
      | K_reduce op ->
          agg.a_value <-
            (match agg.a_value with
            | None -> Some value
            | Some v -> Some (op v value))
      | K_bcast | K_a2a -> ());
      check_complete t inst ~node ~gen tree agg
    end
  end

(* The vchannel dispatcher hands every [col] payload that reaches a
   live rank to this handler. *)
let on_col t ~me ~origin payload =
  if Bytes.length payload >= col_hdr then begin
    let kind = Char.code (Bytes.get payload 0) in
    let id = Int32.to_int (Bytes.get_int32_le payload 1) in
    let gen = Int32.to_int (Bytes.get_int32_le payload 5) in
    let count = Int32.to_int (Bytes.get_int32_le payload 9) in
    let value =
      Bytes.sub payload col_hdr (Bytes.length payload - col_hdr)
    in
    match Hashtbl.find_opt t.insts id with
    | None -> () (* stray packet for a collective nobody opened here *)
    | Some inst ->
        if kind = k_done then deliver_done t inst ~me ~gen value
        else if kind = k_pull then begin
          match Hashtbl.find_opt inst.i_done me with
          | Some v ->
              t.st_journal_answers <- t.st_journal_answers + 1;
              ship t ~src:me ~dst:origin ~kind:k_done ~id ~gen ~count:0 v
          | None ->
              (* Not decided here either: relay the probe rootward under
                 the current generation. The answer comes back to this
                 node and the k_done flood carries it on down. *)
              if gen = t.generation then begin
                let tree = tree_for t ~root:inst.i_root gen in
                match Hashtbl.find_opt tree.tr_parent me with
                | Some p ->
                    ship t ~src:me ~dst:p ~kind:k_pull ~id ~gen ~count:0
                      (Bytes.create 0)
                | None -> ()
              end
        end
        else if kind = k_a2a then begin
          Hashtbl.replace inst.i_blocks (me, origin) value;
          wake_inst inst
        end
        else if kind = k_contrib then begin
          match (inst.i_decided, Hashtbl.find_opt inst.i_done me) with
          | Some _, Some v ->
              (* Late contribution to a decided collective (a restarted
                 rank re-joining): answer from the decision journal —
                 the value is final, so the contribution is not counted
                 again. This is the exactly-once path. *)
              t.st_journal_answers <- t.st_journal_answers + 1;
              ship t ~src:me ~dst:origin ~kind:k_done ~id ~gen ~count:0 v
          | _ ->
              if gen = t.generation then begin
                match inst.i_kind with
                | K_bcast ->
                    (* A pull from a rank still missing the broadcast:
                       relay it rootward; whoever holds the value on the
                       way answers via the journal branch above. *)
                    let tree = tree_for t ~root:inst.i_root gen in
                    (match Hashtbl.find_opt tree.tr_parent me with
                    | Some p ->
                        ship t ~src:me ~dst:p ~kind:k_contrib ~id ~gen
                          ~count:0 (Bytes.create 0)
                    | None -> ())
                | K_reduce _ | K_a2a ->
                    let tree = tree_for t ~root:inst.i_root gen in
                    if me = tree.tr_root then
                      t.st_root_contribs <- t.st_root_contribs + 1;
                    merge_contrib t inst ~node:me ~gen ~from:origin ~count
                      value
              end
        end
  end

(* ------------------------------------------------------------------ *)
(* Participant loops *)

let memo table key mk =
  match Hashtbl.find_opt table key with
  | Some v -> v
  | None ->
      let v = mk () in
      Hashtbl.add table key v;
      v

let inst_for t id kind root =
  memo t.insts id (fun () ->
      {
        i_id = id;
        i_kind = kind;
        i_root = root;
        i_acc = Hashtbl.create 8;
        i_done = Hashtbl.create 8;
        i_decided = None;
        i_blocks = Hashtbl.create 8;
        i_waiters = [];
      })

let cursor t ~me = memo t.cursors me (fun () -> ref 0)

let max_attempts = 32

let fail_no_quorum t inst live =
  raise
    (Collective_failed
       (Printf.sprintf
          "collective %d: %d live ranks remain, quorum is %d" inst.i_id
          (List.length live) t.quorum))

let fail_no_progress inst ~me attempts =
  raise
    (Collective_failed
       (Printf.sprintf
          "collective %d: no progress at rank %d after %d repair attempts"
          inst.i_id me attempts))

(* On an election-enabled vchannel a rank cut onto a minority side must
   fail fast: the shared snapshot's live-member count never drops below
   quorum *for it* (membership is global), so without this check the
   generic quorum test below would keep bumping repair generations into
   the partition until max_attempts. *)
let fail_if_minority t inst ~me =
  if not (Vchannel.has_quorum t.vc ~viewer:me) then
    raise
      (Collective_failed
         (Printf.sprintf
            "collective %d: rank %d cannot reach a membership quorum \
             (partitioned minority)"
            inst.i_id me))

(* Reduce-family participant (barrier, reduce, allreduce): contribute
   under the current generation, park; on a repair generation re-send
   under the fresh tree; on the decision's arrival return it. A dead
   rank's thread parks here until its restart bumps the generation. *)
let run_reduce t inst ~me value =
  let attempts = ref 0 in
  let rec go () =
    match Hashtbl.find_opt inst.i_done me with
    | Some v -> v
    | None ->
        let gen = t.generation in
        if Vchannel.rank_alive t.vc me then begin
          let tree = tree_for t ~root:inst.i_root gen in
          if Hashtbl.mem tree.tr_size me then begin
            let agg = agg_for inst ~node:me ~gen in
            if not (Hashtbl.mem agg.a_from me) then
              merge_contrib t inst ~node:me ~gen ~from:me ~count:1 value
          end
        end;
        if Hashtbl.mem inst.i_done me then go ()
        else if
          wait_progress t inst ~gen ~progressed:(fun () ->
              Hashtbl.mem inst.i_done me)
        then go ()
        else begin
          (* Patience ran out inside one stable generation: either
             the survivors no longer form a quorum, or some loss went
             unnoticed by the sentinels — force a repair generation
             and re-send. *)
          incr attempts;
          fail_if_minority t inst ~me;
          let live = live_members t in
          if List.length live < t.quorum then fail_no_quorum t inst live
          else if !attempts >= max_attempts then
            fail_no_progress inst ~me !attempts
          else begin
            bump t;
            (* The stall may mean the collective decided while this
               rank's subtree was cut off — probe rootward; a node
               holding the decision answers from its journal. *)
            let gen = t.generation in
            if Vchannel.rank_alive t.vc me then begin
              let tree = tree_for t ~root:inst.i_root gen in
              match Hashtbl.find_opt tree.tr_parent me with
              | Some p ->
                  ship t ~src:me ~dst:p ~kind:k_pull ~id:inst.i_id ~gen
                    ~count:0 (Bytes.create 0)
              | None -> ()
            end;
            go ()
          end
        end
  in
  go ()

let run_bcast t inst ~me value_opt =
  let attempts = ref 0 in
  (match (value_opt, inst.i_decided) with
  | Some v, None when me = inst.i_root ->
      let gen = t.generation in
      let tree = tree_for t ~root:inst.i_root gen in
      decide t inst ~me ~gen tree v
  | _ -> ());
  let rec go () =
    match Hashtbl.find_opt inst.i_done me with
    | Some v -> v
    | None ->
        let gen = t.generation in
        if Vchannel.rank_alive t.vc me then begin
          let tree = tree_for t ~root:inst.i_root gen in
          match Hashtbl.find_opt tree.tr_parent me with
          | Some p ->
              ship t ~src:me ~dst:p ~kind:k_contrib ~id:inst.i_id ~gen
                ~count:0 (Bytes.create 0)
          | None -> ()
        end;
        if
          wait_progress t inst ~gen ~progressed:(fun () ->
              Hashtbl.mem inst.i_done me)
        then go ()
        else begin
          incr attempts;
          fail_if_minority t inst ~me;
          let live = live_members t in
          if List.length live < t.quorum then fail_no_quorum t inst live
          else if !attempts >= max_attempts then
            fail_no_progress inst ~me !attempts
          else begin
            bump t;
            go ()
          end
        end
  in
  go ()

let run_a2a t inst ~me blocks =
  let attempts = ref 0 in
  let sent = Hashtbl.create 8 in
  (match List.assoc_opt me blocks with
  | Some b -> Hashtbl.replace inst.i_blocks (me, me) b
  | None -> ());
  let push_blocks () =
    if Vchannel.rank_alive t.vc me then begin
      let gen = t.generation in
      List.iter
        (fun p ->
          if p <> me && not (Hashtbl.mem sent (gen, p)) then begin
            Hashtbl.replace sent (gen, p) ();
            match List.assoc_opt p blocks with
            | Some b -> ship t ~src:me ~dst:p ~kind:k_a2a ~id:inst.i_id ~gen ~count:0 b
            | None -> ()
          end)
        (live_members t)
    end
  in
  let complete () =
    List.for_all
      (fun p -> p = me || Hashtbl.mem inst.i_blocks (me, p))
      (live_members t)
  in
  let collect () =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt inst.i_blocks (me, p) with
        | Some b -> Some (p, b)
        | None -> None)
      (List.sort compare (live_members t))
  in
  let rec go () =
    push_blocks ();
    if complete () then collect ()
    else begin
      let gen = t.generation in
      if wait_progress t inst ~gen ~progressed:complete then go ()
      else begin
        incr attempts;
        fail_if_minority t inst ~me;
        let live = live_members t in
        if List.length live < t.quorum then fail_no_quorum t inst live
        else if !attempts >= max_attempts then
          fail_no_progress inst ~me !attempts
        else begin
          bump t;
          go ()
        end
      end
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Public verbs. Ranks must issue the same sequence of collectives:
   each rank's cursor numbers its calls, and the number is the
   collective id the wire protocol matches on (the usual MPI ordering
   contract). The cursor only advances on completion, so a restarted
   rank re-entering its interrupted call re-joins the same id. *)

let finish t ~me result =
  incr (cursor t ~me);
  result

let default_root t = lowest (Vchannel.ranks t.vc)

let barrier t ~me =
  let id = !(cursor t ~me) in
  let inst =
    inst_for t id (K_reduce (fun a _ -> a)) (default_root t)
  in
  let (_ : Bytes.t) = run_reduce t inst ~me (Bytes.create 0) in
  finish t ~me ()

let reduce t ~me ~root ~op value =
  let id = !(cursor t ~me) in
  let inst = inst_for t id (K_reduce op) root in
  finish t ~me (run_reduce t inst ~me value)

let allreduce t ~me ~op value =
  let id = !(cursor t ~me) in
  let inst = inst_for t id (K_reduce op) (default_root t) in
  finish t ~me (run_reduce t inst ~me value)

let bcast t ~me ~root value_opt =
  let id = !(cursor t ~me) in
  let inst = inst_for t id K_bcast root in
  finish t ~me (run_bcast t inst ~me value_opt)

let alltoall t ~me blocks =
  let id = !(cursor t ~me) in
  let inst = inst_for t id K_a2a (default_root t) in
  finish t ~me (run_a2a t inst ~me blocks)

(* ------------------------------------------------------------------ *)

let create ?(algo = Tree) ?(fanout = 4) ?(quorum = 1) ?patience vc =
  if fanout < 1 then invalid_arg "Collectives.create: fanout must be >= 1";
  if quorum < 1 then invalid_arg "Collectives.create: quorum must be >= 1";
  let patience =
    match patience with
    | Some p -> p
    | None -> Config.default_route_patience
  in
  let t =
    {
      vc;
      engine = Vchannel.engine vc;
      algo;
      fanout;
      quorum;
      patience;
      generation = 0;
      trees = Hashtbl.create 8;
      insts = Hashtbl.create 16;
      cursors = Hashtbl.create 16;
      gen_waiters = [];
      st_packets = 0;
      st_combined = 0;
      st_root_contribs = 0;
      st_dup_suppressed = 0;
      st_journal_answers = 0;
      st_repairs = 0;
      st_last_depth = 0;
      st_last_rounds = 0;
      st_last_covered = [];
    }
  in
  Vchannel.set_on_col vc (fun ~me ~origin payload ->
      on_col t ~me ~origin payload);
  Vchannel.set_on_health_change vc (fun () -> bump t);
  t

let algo t = t.algo
let quorum t = t.quorum
let generation t = t.generation

type stats = {
  packets : int;
  combined : int;
  root_contribs : int;
  dup_suppressed : int;
  journal_answers : int;
  repairs : int;
  generation : int;
  last_depth : int;
  last_rounds : int;
  last_covered : int list;
}

let stats t =
  {
    packets = t.st_packets;
    combined = t.st_combined;
    root_contribs = t.st_root_contribs;
    dup_suppressed = t.st_dup_suppressed;
    journal_answers = t.st_journal_answers;
    repairs = t.st_repairs;
    generation = t.generation;
    last_depth = t.st_last_depth;
    last_rounds = t.st_last_rounds;
    last_covered = t.st_last_covered;
  }

let tree_spine t =
  let tree = tree_for t ~root:(default_root t) t.generation in
  List.filter_map
    (fun r ->
      match Hashtbl.find_opt tree.tr_parent r with
      | Some p -> Some (r, p)
      | None -> None)
    tree.tr_members

let tree_depth t =
  (tree_for t ~root:(default_root t) t.generation).tr_depth
