(* Phi-accrual failure detector (Hayashibara et al.), one instance per
   node. Instead of a binary timeout, the detector keeps a running
   estimate of the heartbeat inter-arrival time and expresses suspicion
   as a continuous value

     phi(t) = elapsed_since_last_arrival / (mean_interval * ln 10)

   — the exponential-model approximation of -log10 P(arrival gap >
   elapsed). Crossing [degraded_phi] reports the peer [Degraded];
   crossing [down_phi] reports it [Down]; a successful probe snaps it
   back to [Up]. Channels subscribe to the transitions and reroute
   around a suspected gateway *before* a send has to time out on it.

   The probe loop is activity-gated so a quiescent world can finish:
   probing runs only within [grace] of the last {!touch} (channels touch
   on every packet they move). Once the grace window expires the daemon
   parks on a plain suspend — no pending timer — and the engine can
   drain; the next touch re-arms it. A crashed self also parks: a dead
   host probes nobody, and its restart handler touches the sentinel
   back to life. *)

module Engine = Marcel.Engine
module Time = Marcel.Time

type state = Up | Degraded | Overloaded | Down

let state_name = function
  | Up -> "up"
  | Degraded -> "degraded"
  | Overloaded -> "overloaded"
  | Down -> "down"

type event = {
  ev_at : Time.t;
  ev_peer : int;
  ev_from : state;
  ev_to : state;
  ev_phi : float;
}

type peer = {
  p_id : int;
  mutable p_state : state;
  mutable p_last_arrival : Time.t;
  mutable p_mean_us : float; (* EMA of successful inter-arrival gaps *)
  mutable p_have_arrival : bool;
  mutable p_overloaded : bool; (* load report, orthogonal to liveness *)
}

type t = {
  engine : Engine.t;
  faults : Simnet.Faults.t;
  me : int;
  fabric : string option;
  interval : Time.span;
  degraded_phi : float;
  down_phi : float;
  grace : Time.span;
  mutable peers : peer list;
  mutable cbs : (int -> state -> state -> unit) list;
  mutable last_touch : Time.t;
  mutable park_wake : (unit -> unit) option;
  mutable running : bool;
  mutable probes : int;
  mutable events : event list; (* newest first *)
  (* Election bookkeeping (quorum coordinator elections ride the same
     per-rank detector). [voted_term] is the highest term this rank has
     granted a ballot in — one grant per term, monotonic. [ballots]
     holds, on a candidate, the ballots granted TO it: voter -> (term,
     voter's crash epoch at the grant), so a voter that restarts
     invalidates its old ballot without any revocation message. *)
  mutable voted_term : int;
  ballots : (int, int * int) Hashtbl.t;
}

let ln10 = Float.log 10.0

let phi_of _t p now =
  if not p.p_have_arrival then 0.0
  else
    let elapsed = Time.to_us (Time.diff now p.p_last_arrival) in
    elapsed /. (Float.max p.p_mean_us 1.0 *. ln10)

let transition t p to_ phi =
  if p.p_state <> to_ then begin
    let from = p.p_state in
    p.p_state <- to_;
    t.events <-
      {
        ev_at = Engine.now t.engine;
        ev_peer = p.p_id;
        ev_from = from;
        ev_to = to_;
        ev_phi = phi;
      }
      :: t.events;
    List.iter (fun cb -> cb p.p_id from to_) (List.rev t.cbs)
  end

let probe_peer t p =
  let now = Engine.now t.engine in
  t.probes <- t.probes + 1;
  if Simnet.Faults.heartbeat t.faults ?fabric:t.fabric ~src:t.me ~dst:p.p_id ()
  then begin
    (if p.p_have_arrival then begin
       let gap = Time.to_us (Time.diff now p.p_last_arrival) in
       p.p_mean_us <- (0.8 *. p.p_mean_us) +. (0.2 *. gap)
     end);
    p.p_last_arrival <- now;
    p.p_have_arrival <- true;
    (* A live probe clears any liveness suspicion, but an overloaded peer
       is alive *and* shedding load: it stays Overloaded until the load
       report clears. *)
    transition t p (if p.p_overloaded then Overloaded else Up) (phi_of t p now)
  end
  else begin
    (* No arrival: suspicion accrues with the silence. The very first
       probe seeds the arrival clock so a peer that is down from the
       start still accrues from the moment we began watching it. *)
    if not p.p_have_arrival then begin
      p.p_last_arrival <- now;
      p.p_have_arrival <- true
    end;
    let phi = phi_of t p now in
    if phi >= t.down_phi then transition t p Down phi
    else if phi >= t.degraded_phi then transition t p Degraded phi
  end

let rec loop t =
  let now = Engine.now t.engine in
  let idle = Time.( < ) (Time.add t.last_touch t.grace) now in
  if idle || not (Simnet.Faults.node_up t.faults t.me) then begin
    Engine.suspend ~name:(Printf.sprintf "sentinel.park.%d" t.me) (fun wake ->
        t.park_wake <- Some wake);
    t.park_wake <- None;
    loop t
  end
  else begin
    List.iter (fun p -> probe_peer t p) t.peers;
    Engine.sleep t.interval;
    loop t
  end

let touch t =
  t.last_touch <- Engine.now t.engine;
  match t.park_wake with Some wake -> wake () | None -> ()

let fresh_peer t id =
  {
    p_id = id;
    p_state = Up;
    p_last_arrival = Time.zero;
    p_mean_us = Time.to_us t.interval;
    p_have_arrival = false;
    p_overloaded = false;
  }

let learn t id =
  if id <> t.me && not (List.exists (fun p -> p.p_id = id) t.peers) then
    t.peers <- t.peers @ [ fresh_peer t id ]

let forget t id =
  t.peers <- List.filter (fun p -> p.p_id <> id) t.peers;
  (* A forgotten rank's ballot must not keep counting toward a quorum:
     drains and crash-epoch restarts both funnel through here. *)
  Hashtbl.remove t.ballots id

(* ------------------------------------------------------------------ *)
(* Election bookkeeping *)

let grant_vote t ~term =
  if term > t.voted_term then begin
    t.voted_term <- term;
    true
  end
  else false

let voted_term t = t.voted_term
let record_ballot t ~voter ~term ~voter_epoch =
  Hashtbl.replace t.ballots voter (term, voter_epoch)

let ballots t ~term =
  List.sort compare
    (Hashtbl.fold
       (fun voter (btrm, bepoch) acc ->
         if btrm = term && Simnet.Faults.epoch t.faults voter = bepoch then
           voter :: acc
         else acc)
       t.ballots [])

let reset_election t =
  t.voted_term <- 0;
  Hashtbl.reset t.ballots
let watched t = List.map (fun p -> p.p_id) t.peers

let create engine faults ~me ~peers ?fabric ?(interval = Time.us 500.0)
    ?(degraded_phi = 1.0) ?(down_phi = 2.0) ?(grace = Time.ms 2.0) () =
  if degraded_phi <= 0.0 || down_phi < degraded_phi then
    invalid_arg "Sentinel.create: need 0 < degraded_phi <= down_phi";
  let t =
    {
      engine;
      faults;
      me;
      fabric;
      interval;
      degraded_phi;
      down_phi;
      grace;
      peers =
        List.map
          (fun id ->
            {
              p_id = id;
              p_state = Up;
              p_last_arrival = Time.zero;
              p_mean_us = Time.to_us interval;
              p_have_arrival = false;
              p_overloaded = false;
            })
          (List.filter (fun id -> id <> me) peers);
      cbs = [];
      last_touch = Engine.now engine;
      park_wake = None;
      running = false;
      probes = 0;
      events = [];
      voted_term = 0;
      ballots = Hashtbl.create 4;
    }
  in
  t

let start t =
  if not t.running then begin
    t.running <- true;
    Engine.spawn t.engine ~daemon:true
      ~name:(Printf.sprintf "sentinel.%d" t.me)
      (fun () -> loop t)
  end

let on_transition t cb = t.cbs <- cb :: t.cbs

let find_peer t id = List.find_opt (fun p -> p.p_id = id) t.peers

let state t id =
  match find_peer t id with Some p -> p.p_state | None -> Up

let phi t id =
  match find_peer t id with
  | Some p -> phi_of t p (Engine.now t.engine)
  | None -> 0.0

let set_overloaded t ~peer flag =
  match find_peer t peer with
  | None -> ()
  | Some p ->
      if p.p_overloaded <> flag then begin
        p.p_overloaded <- flag;
        let now = Engine.now t.engine in
        (* Load reports never override a Down verdict: a dead peer stays
           dead until a probe proves otherwise. *)
        if flag then begin
          if p.p_state <> Down then transition t p Overloaded (phi_of t p now)
        end
        else if p.p_state = Overloaded then transition t p Up (phi_of t p now)
      end

let suspected t =
  List.filter_map
    (fun p ->
      (* Overloaded peers are alive — load shedding is not suspicion. *)
      match p.p_state with
      | Degraded | Down -> Some p.p_id
      | Up | Overloaded -> None)
    t.peers

let probes t = t.probes
let timeline t = List.rev t.events
