(** Phi-accrual failure detector: per-peer heartbeats with a continuous
    suspicion level instead of a binary timeout.

    Each node of a reliable vchannel runs one sentinel. It probes its
    peers every [interval] through the fault plane ({!Simnet.Faults.heartbeat},
    so a probe crosses the same crashed-node / flapped-link / lossy-link
    conditions data frames do), maintains an estimate of the heartbeat
    inter-arrival time, and derives the suspicion value

    {[ phi = elapsed_since_last_arrival / (mean_interval * ln 10) ]}

    — the exponential-model form of the Hayashibara phi-accrual
    detector. [phi >= degraded_phi] moves the peer to [Degraded],
    [phi >= down_phi] to [Down]; one successful probe snaps it back to
    [Up]. Registered callbacks fire on every transition, letting the
    channel reroute around a suspect *before* a send times out on it.

    Probing is activity-gated: it runs only within [grace] of the last
    {!touch} (the channel touches on every packet it moves), then the
    daemon parks with no pending timer so the engine can quiesce. An
    idle world therefore pays nothing, and a fault-free run's schedule
    is unchanged by attaching a sentinel. *)

type t

type state = Up | Degraded | Overloaded | Down
(** [Overloaded] is a load report, not a liveness verdict: a peer above
    its forwarding-pool high watermark announces it is shedding load (see
    {!set_overloaded}). A successful probe keeps an overloaded peer in
    [Overloaded] — it is alive — and the state clears back to [Up] only
    when the load report does. [Down] always wins over a load report. *)

val state_name : state -> string

type event = {
  ev_at : Marcel.Time.t;
  ev_peer : int;
  ev_from : state;
  ev_to : state;
  ev_phi : float; (* suspicion level at the transition *)
}

val create :
  Marcel.Engine.t ->
  Simnet.Faults.t ->
  me:int ->
  peers:int list ->
  ?fabric:string ->
  ?interval:Marcel.Time.span ->
  ?degraded_phi:float ->
  ?down_phi:float ->
  ?grace:Marcel.Time.span ->
  unit ->
  t
(** Defaults: probe every 500 us, [degraded_phi] 1.0, [down_phi] 2.0,
    wind down after 2 ms without a {!touch}. [fabric] scopes probes to
    one fabric's link faults; without it only node liveness is probed.
    [me] is removed from [peers] if present. The detector does not run
    until {!start}. *)

val start : t -> unit
(** Spawns the probe daemon (idempotent). *)

val touch : t -> unit
(** Records activity: probing continues for [grace] past the last
    touch, and a parked daemon is woken. Channels call this on every
    packet they send, forward or deliver. *)

val learn : t -> int -> unit
(** Starts watching a peer with fresh detector state (no-op when the
    peer is already watched, or is [me]). Used by live-topology
    vchannels when a rank joins under a new epoch. *)

val forget : t -> int -> unit
(** Drops every trace of a peer — EMA, arrival clock, verdict, overload
    flag. Used when a rank drains: without this the detector's per-rank
    state would grow unboundedly in a long-lived elastic session. A
    forgotten peer reports {!state} [Up] (never probed) and is absent
    from {!suspected} and {!watched}. No-op on unknown peers. *)

val watched : t -> int list
(** Peers currently being probed, in watch order. *)

val on_transition : t -> (int -> state -> state -> unit) -> unit
(** [cb peer from to_] runs from the probe daemon on every state
    change; it must not block, but may spawn threads. *)

val state : t -> int -> state
(** Current verdict on a peer (peers never probed report [Up]). *)

val phi : t -> int -> float
(** Instantaneous suspicion level for a peer. *)

val set_overloaded : t -> peer:int -> bool -> unit
(** Load report for a peer: [true] when it crossed its high watermark,
    [false] when it drained below its low watermark. Transitions the peer
    to [Overloaded] / back to [Up] (recorded in the {!timeline} and fed
    to {!on_transition} listeners), except that a [Down] peer stays
    [Down]. Unknown peers are ignored. *)

val suspected : t -> int list
(** Peers whose liveness is currently in question ([Degraded] or
    [Down]). [Overloaded] peers are alive and not listed. *)

(** {1 Election bookkeeping}

    Quorum coordinator elections (see {!Vchannel}) keep their per-rank
    voting state here, next to the liveness verdicts the candidacy is
    based on, so the lifecycle events that must invalidate election
    state ({!forget}, crash-epoch restarts) already flow through the
    right object. *)

val grant_vote : t -> term:int -> bool
(** Grants this rank's ballot for [term] iff it has not yet voted in
    [term] or any later term; the grant is monotonic, so a rank can
    never hand out two countable ballots for the same term without an
    intervening {!reset_election}. *)

val voted_term : t -> int
(** Highest term this rank has granted a ballot in (0 = never voted). *)

val record_ballot : t -> voter:int -> term:int -> voter_epoch:int -> unit
(** Candidate side: records a ballot granted by [voter] for [term],
    tagged with the voter's crash epoch at the grant. *)

val ballots : t -> term:int -> int list
(** The voters whose recorded ballot is for [term] {e and} whose crash
    epoch has not moved since the grant — a restarted voter's stale
    ballot silently stops counting. Sorted ascending. *)

val reset_election : t -> unit
(** Clears the vote grant and every recorded ballot. Called on
    crash-epoch restart of this rank: its pre-crash grant is void
    (and so announced by the epoch bump), so it may vote afresh. *)

val probes : t -> int
(** Heartbeats sent so far. *)

val timeline : t -> event list
(** Every transition so far, oldest first. *)
