(** Virtual channels: transparent inter-device data forwarding (paper §6).

    A virtual channel spans a sequence of real channels — typically one
    per cluster network, joined by gateway nodes that sit on two networks
    at once. The application uses the same packing interface as on a real
    channel; underneath, the {!Generic_tm} fragments every message into
    MTU-sized self-described packets, and gateway nodes run a dual-buffer
    forwarding pipeline (paper Fig. 9): one thread receives packet [k+1]
    from the incoming network while the other sends packet [k] on the
    outgoing one, with exactly two pipeline buffers providing the
    overlap.

    Packets between any two nodes follow the route computed over the
    channel membership graph (breadth-first, so the fewest gateway
    crossings). The real channels handed to a virtual channel become
    dedicated to it: all their incoming traffic is consumed by the
    forwarding dispatchers.

    Cost model notes: the Generic TM copies user data into packet buffers
    on emission (the "some optimizations are lost" of §6.1); on the final
    node, packet payloads are extracted by the dispatcher as they arrive
    (a progress engine), so the user-facing [unpack] pays no further
    modelled copy. [Send_later] buffers are read eagerly at [pack] — the
    generic TM cannot defer across gateways. *)

type t

exception Partitioned of string
(** No route (or no surviving route) connects two ranks of the virtual
    channel. On reliable vchannels this is the terminal delivery error:
    it is raised by [begin_packing]/[pack]/[end_packing] once every
    gateway path to the destination is gone, and by the route queries
    below when two ranks are disconnected. *)

exception No_quorum of string
(** On an election-enabled vchannel, the caller's side of a partition
    cannot assemble a membership quorum: minority-side {!join}/{!drain}
    raise this (after parking the intent for post-heal replay) instead
    of hanging or silently diverging from the majority's history. *)

val create :
  Session.t ->
  ?mtu:int ->
  ?patience:Marcel.Time.span ->
  ?gateway_overhead:Marcel.Time.span ->
  ?extra_gateway_copy:bool ->
  ?ingress_cap_mb_s:float ->
  ?credits:int ->
  ?gw_pool:int ->
  ?faults:Simnet.Faults.t ->
  ?sched:Sched.strategy ->
  ?topology:int ->
  ?coordinator:int ->
  ?election:bool ->
  ?topo_quorum:int ->
  Channel.t list ->
  t
(** [mtu] defaults to {!Config.default_vchannel_mtu}; it is the payload
    size of one forwarded packet, fixed for the whole virtual channel as
    in the paper (set at channel-configuration time). [gateway_overhead]
    defaults to {!Config.gateway_packet_overhead}. [extra_gateway_copy]
    (default [false]) disables the static-buffer borrowing optimization
    of §6.1, charging one additional memcpy per forwarded packet — the
    ablation knob.

    [credits] switches on end-to-end credit-based flow control: each
    (src, dst) flow may have at most [credits] unconsumed data packets
    in flight or buffered at the destination, so every buffering point
    holds at most [credits * mtu] bytes of the flow. Credits are
    receiver-granted and consumption-driven — a paused receiver blocks
    the sender (on a condition variable inside [pack]/[end_packing])
    instead of letting data pile up; grants are cumulative [crd]
    packets riding the normal routed path (piggybacking the flow's ack
    on reliable vchannels), and a blocked sender ships a zero-window
    probe every {!Config.credit_probe_interval} so a grant lost to a
    crash cannot wedge the flow. Unset (the default), no credit packet
    is ever emitted and the wire format is byte-identical to the
    credit-less library. Works with or without [faults].

    [gw_pool] sizes each gateway forwarding pump's buffer pool (default
    {!Config.default_gateway_pool} = the paper's dual buffer). A full
    pool blocks the ingress dispatcher — backpressure propagates
    hop-by-hop toward the origin instead of queueing on the gateway.
    Giving [credits] or [gw_pool] explicitly also arms per-gateway
    watermarks: a gateway whose busy buffers reach the pool size is
    reported [Overloaded] (through {!peer_status}, and through each
    rank's {!Sentinel} on reliable vchannels, where routes are also
    recomputed to prefer non-overloaded gateways); the report clears,
    after a {!Config.overload_hold} hysteresis, once the pool drains to
    half.

    [ingress_cap_mb_s] implements the bandwidth-control mechanism the
    paper's conclusion calls for ("some sophisticated bandwidth control
    mechanism is needed to regulate the incoming communication flow on
    gateways"): each gateway paces its consumption of forwarded packets
    so the incoming stream cannot hog the shared PCI bus and starve the
    outgoing one. Unset = unregulated, the paper's measured behaviour.

    [faults] makes the virtual channel {e reliable} against the given
    fault plane: packets carry per-flow sequence numbers and are logged
    at the origin until cumulatively acknowledged end to end; when a
    gateway crashes, routes are recomputed over the surviving membership
    graph and unacknowledged packets re-emitted from their origins
    (duplicates are discarded by the sequence check at the destination);
    when no route remains, sends raise {!Partitioned}. A reliable
    vchannel additionally runs one phi-accrual {!Sentinel} per rank, so
    suspected (not yet crashed) peers are routed around before a send
    times out on them, and performs crash-epoch session handshakes:
    after a node restarts with a new fault-plane epoch, peers holding a
    delivery journal for it send back their expected sequence numbers,
    the restarted node resumes numbering there, and end-to-end delivery
    stays exactly-once across the restart. [patience] (default
    {!Config.default_route_patience}) bounds how long a send waits for
    a route or a handshake to come back before raising {!Partitioned}.
    Without [faults] (the default) none of this machinery exists and
    the wire format and schedules are byte-identical to the
    pre-reliability library.

    [sched] selects the packet scheduler sitting between the pack path
    and the transfer modules (see {!Sched}). Unset or {!Sched.Fifo},
    packets ship exactly as the unscheduled library ships them —
    byte-identical wire format and schedule. {!Sched.aggreg} merges
    small pending packets from concurrent logical flows into aggregate
    wire packets (up to [aggr_max] payload bytes, flushed at the latest
    after [aggr_flush]), lets rendezvous-class messages (first fragment
    fills the MTU) overtake other flows' buffered small trains, and
    unlocks logical-flow multiplexing: [begin_packing ~flow] /
    [begin_unpacking_from ~flow] carry thousands of independent
    channels over the same physical connections, distinguished by a
    per-frame flow id in the aggregate payload. Composition: an
    aggregate takes one go-back-N sequence number and one re-emission
    log slot (reliable vchannels re-emit it as a unit), credits are
    charged per constituent frame, and gateways forward aggregates
    without unpacking them.

    [topology] (the clusterfile's [version=] key) arms the live-topology
    plane: the rank set becomes a versioned {!Topology} snapshot starting
    at epoch [topology], with [coordinator] (default: the lowest rank)
    arbitrating membership. Ranks can then {!drain} out of and {!join}
    back into the session at runtime, under traffic: an epoch swap
    recomputes routes and re-emits only the flows whose routes actually
    changed (under their emission locks), the sentinels learn/forget
    ranks as epochs advance, and a gateway reported Overloaded scales
    its forwarding pools out by one slot per rising edge (up to double
    [gw_pool]) and back in when the report clears. Unset (the default)
    none of this machinery exists, [coordinator] is rejected, and routes
    and schedules are byte-identical to the fixed-topology library.

    [election] (the clusterfile's [election=on] key; requires both
    [topology] and [faults]) replaces the static coordinator with a
    quorum-elected one. Suspicion becomes observer-relative and routes
    follow trust paths — an edge is usable only if its sender trusts
    the next hop — so each side of a partition keeps routing among
    itself. When a rank observes the coordinator dark (sentinel Down or
    a crash), its side's lowest reachable member stands for term
    [epoch + 1]: one ballot per rank per term (ballots are voided by
    the voter's crash-epoch restart — see {!Sentinel.reset_election}),
    and a candidacy commits the epoch bump only with [topo_quorum]
    countable ballots (unpinned, a majority of the {e current}
    committed membership, so a legitimately shrunk topology keeps its
    liveness; two disjoint partition sides still can never both hold
    a majority of the same membership) — so of two concurrent
    candidacies at most one ever commits a given
    epoch, and a minority side can neither elect nor commit membership
    changes: its coordinator refuses epoch bumps ({e refusals} in
    {!election_stats}) and its {!join}/{!drain} raise {!No_quorum}
    after parking the intent. On heal, reconciliation is
    highest-committed-wins (structural: the minority never advanced)
    and parked intents replay through the winning coordinator once it
    holds quorum again, exactly once. Unset (the default) the election
    plane does not exist: suspicion semantics, routes and schedules are
    byte-identical to the static-coordinator library.

    Raises [Invalid_argument] on an empty channel list, an MTU too
    small to carry a buffer sub-header, a negative [topology] version,
    a [coordinator] outside the rank set, a [coordinator] given
    without [topology], [election] without [topology] or [faults], or
    [topo_quorum] outside [1..n] or given without [election]. *)

val ranks : t -> int list
(** All nodes reachable through the virtual channel. *)

val route_length : t -> src:int -> dst:int -> int
(** Number of real-channel hops between two nodes (1 = same cluster,
    0 for [src = dst]). Raises [Invalid_argument] naming the offending
    rank when either rank is not part of the virtual channel, and
    {!Partitioned} when both ranks are members but no route connects
    them. *)

val route_via : t -> src:int -> dst:int -> int list
(** The successive hop destinations of the current route (the last
    element is [dst]). Same errors as {!route_length}. *)

val peer_status : t -> src:int -> dst:int -> Iface.health
(** Health of the [src -> dst] flow: [Departed] when either rank is
    absent from the current topology epoch of a live-topology vchannel
    (a typed verdict, not a lookup failure — failover treats it like
    [Down] but never reroutes to it), [Down] when the destination is
    crashed or unroutable, [Overloaded] when the destination or a relay
    on the current route is shedding load above its watermark,
    [Degraded n] when failover lengthened the route by [n] hops over
    the original, [Up] otherwise. *)

(** {1 Live topology}

    Available only on vchannels created with [?topology]; every verb
    below raises [Invalid_argument] otherwise. *)

val topology : t -> Topology.t option
(** The current epoch snapshot — [None] without [?topology]. *)

val join : t -> rank:int -> int
(** Re-admit a drained rank, called from the joining rank's context. The
    join request takes one membership-blind physical hop toward the
    coordinator (the joiner is not yet routable), the coordinator swaps
    in the next epoch — making the joiner routable without quiescing any
    existing flow — and acknowledges over the recomputed routes. Returns
    the epoch joined. Raises [Invalid_argument] if [rank] is already a
    member or not physically part of the channel, and {!Partitioned} if
    the rank is down, no physical path reaches the coordinator, or the
    coordinator does not answer within [patience]. On an
    election-enabled vchannel an unanswered join instead stands a
    replacement coordinator and retries against the election winner
    transparently; if no quorum is reachable it parks the intent for
    post-heal replay and raises {!No_quorum}. *)

val drain : t -> rank:int -> unit
(** Gracefully remove a member rank, called from that rank's context.
    Three phases: the rank stops accepting new flows (its
    {!begin_packing} raises {!Partitioned} while draining); it quiesces —
    waits until cumulative acks cover every re-emission-log entry it
    originated or is owed and its forwarding pools are idle; then it
    notifies the coordinator, which swaps in the next epoch, drops the
    rank from every sentinel ({!Sentinel.forget}), and recomputes routes
    without it. Raises [Invalid_argument] on a non-member or the
    coordinator itself, and {!Partitioned} (aborting the drain) if the
    journals cannot flush or the coordinator cannot confirm within
    [patience]. On an election-enabled vchannel an unconfirmed phase-3
    notification stands a replacement coordinator (never the draining
    rank itself) and retries; with no quorum reachable the drain mark
    is withdrawn, the intent parked for post-heal replay, and
    {!No_quorum} raised. *)

val draining : t -> int list
(** Ranks currently mid-drain (still routable, accepting no new flows),
    sorted. *)

type topology_stats = {
  topo_epoch : int;
  topo_members : int list;
  topo_coordinator : int;
  topo_joins : int;  (** epoch swaps that admitted a rank *)
  topo_drains : int;  (** epoch swaps that removed a rank *)
  topo_scale_outs : int;  (** gateway pool slots added on Overloaded *)
  topo_scale_ins : int;  (** pool reclaims when the report cleared *)
}

val topology_stats : t -> topology_stats option
(** Live-topology counters — [None] without [?topology]. *)

(** {1 Quorum elections}

    Available only on vchannels created with [?election] (see
    {!create}); without it the queries below degenerate as noted. *)

val election : t -> bool
(** Whether the election plane is armed. *)

val coordinator : t -> int option
(** The currently committed coordinator — [None] without [?topology]. *)

val has_quorum : t -> viewer:int -> bool
(** Whether [viewer]'s side of whatever cuts exist currently holds a
    membership quorum, judged over [viewer]'s trust-path reachability.
    Always [true] without an election plane. The Collectives layer uses
    this to fail minority-side collectives fast instead of retrying
    into a partition. *)

type election_stats = {
  quorum : int;
      (** ballots needed to commit right now — [topo_quorum] when
          pinned, else a majority of the current membership *)
  elections : int;  (** committed coordinator changes *)
  attempts : int;  (** candidacies started *)
  refusals : int;
      (** failed candidacies plus minority-coordinator epoch-bump
          vetoes *)
  commits : (int * int) list;
      (** every committed [(epoch, coordinator)], oldest first — the
          split-brain audit trail: at most one entry per epoch *)
  pending : int;  (** parked minority intents awaiting a heal *)
  last_latency_us : float;
      (** candidacy-start to commit of the latest election *)
}

val election_stats : t -> election_stats option
(** Election counters — [None] without [?election]. *)

(** {1 Collective control plane}

    Hooks for the {!Collectives} layer. [col] packets ride the ordinary
    forwarding path (gateways forward them like data) but bypass
    sequencing, credits and scheduling exactly like [top] packets: the
    vchannel delivers their payloads to the installed handler and ships
    the ones the layer emits, with no policy of its own. Without a
    handler installed, the wire format and schedule of every existing
    workload are unchanged. *)

val send_col : t -> src:int -> dst:int -> Bytes.t -> unit
(** Ship a collective-control payload from [src] to [dst] over the
    current routes, asynchronously and unreliably (a partition or crash
    en route silently drops it — the Collectives repair generation
    covers the loss). Raises [Invalid_argument] when either rank is not
    part of the vchannel. *)

val set_on_col : t -> (me:int -> origin:int -> Bytes.t -> unit) -> unit
(** Install the collective-control handler, called from the dispatcher
    of the destination rank [me] for every [col] payload that reaches
    it while [me] is up. One handler per vchannel (last install wins). *)

val set_on_health_change : t -> (unit -> unit) -> unit
(** Install a hook called after every liveness transition the vchannel
    acts on: a crash or restart, a sentinel suspicion raised or cleared,
    an Overloaded watermark edge, and a topology epoch swap. The
    Collectives layer uses it to bump its repair generation. One hook
    per vchannel (last install wins). *)

val neighbours : t -> int -> int list
(** Ranks sharing at least one physical channel with the given rank, in
    channel-declaration order — the adjacency the Collectives layer
    builds its spanning trees over. *)

val rank_alive : t -> int -> bool
(** Whether a rank can take part in a collective right now: part of the
    vchannel, a member of the current topology epoch (not mid-drain),
    up, and not suspected — the predicate routing itself uses. With an
    election plane, "not suspected" becomes "inside the committed
    coordinator's trust component", so majority-side trees exclude an
    entire partitioned minority, not just directly-suspected
    neighbours. *)

val rank_overloaded : t -> int -> bool
(** Whether the rank is currently reporting Overloaded (see
    {!overloaded}). *)

val engine : t -> Marcel.Engine.t
(** The engine the vchannel runs on. *)

val forwarded : t -> (int * int * int) list
(** Per-gateway forwarding counters: [(node, packets, payload bytes)]
    for every node that has relayed traffic, sorted by node. *)

type rel_stats = {
  reroutes : int;
  reemitted : int;
  dup_drops : int;
  handshakes : int;
}

val rel_stats : t -> rel_stats option
(** Reliability counters — [None] on a vchannel created without
    [?faults]: route recomputations triggered by membership changes or
    sentinel suspicion, packets re-emitted from origin logs,
    duplicate/overtaking packets discarded by destination sequence
    checks, and crash-epoch session handshakes completed. *)

type flow_stat = {
  flow_src : int;
  flow_dst : int;
  sent : int;  (** packets numbered so far (current epoch) *)
  unacked : int;  (** packets still in the origin's re-emission log *)
  delivered : int;  (** packets accepted in order at the destination *)
}

val flow_stats : t -> flow_stat list
(** Per-flow reliability counters, sorted by (src, dst); empty without
    [?faults]. *)

type credit_stats = {
  credit_budget : int;  (** packets in flight allowed per flow *)
  grants : int;  (** cumulative grant packets sent by receivers *)
  probes : int;  (** zero-window probes sent by blocked senders *)
  stalls : int;  (** times a sender ran out of credits and blocked *)
}

val credit_stats : t -> credit_stats option
(** Credit-plane counters — [None] without [?credits]. *)

val sched_stats : t -> Sched.stats option
(** Scheduler counters (frames submitted, frames merged, aggregates
    emitted, mean frames per aggregate, flush reasons) — [None] unless
    the vchannel was created with an aggregating [?sched]. *)

val overloaded : t -> int list
(** Gateways currently above their high watermark, sorted. Always empty
    unless [?credits] or [?gw_pool] armed the watermark machinery. *)

val overload_events : t -> int
(** Rising-edge Overloaded transitions observed so far. *)

type queue_stat = {
  q_point : string;
      (** ["assembler_bytes"], ["gateway_pool_slots"] or
          ["unacked_packets"] *)
  q_node : int;
  q_peer : int;  (** flow peer; [-1] for per-node points *)
  q_peak : int;  (** highest occupancy observed (bytes, slots, packets) *)
  q_bound : int option;  (** configured bound, when one is in force *)
}

val queue_stats : t -> queue_stat list
(** Observed peak occupancy of every instrumented buffering point —
    destination assemblers (bytes; bounded by [credits * mtu]), gateway
    forwarding pools (busy buffers; bounded by [gw_pool] per outgoing
    link) and origin re-emission logs (packets; bounded by [credits],
    or {!Config.default_unacked_window} without credits). The chaos
    harness asserts [q_peak <= q_bound] under overload. *)

val sentinel : t -> rank:int -> Sentinel.t option
(** The rank's failure detector — [None] without [?faults] or when the
    rank has no channel neighbours. *)

val suspicion_timeline : t -> (int * Sentinel.event) list
(** Every sentinel state transition observed so far, as
    [(observer rank, event)] sorted by time. *)

(** {1 The packing interface, lifted to virtual channels} *)

type out_connection
type in_connection

val begin_packing : ?flow:int -> t -> me:int -> remote:int -> out_connection
(** [flow] (default [0]) names the logical channel the message travels
    on. Non-zero flows exist only on vchannels with an aggregating
    scheduler — the flow id rides the aggregate's frame headers, and
    there is nowhere to put it on the plain wire format — and raise
    [Invalid_argument] otherwise, as does a flow id outside 0..65535.
    Messages are ordered per (source, destination, flow); distinct
    flows of a pair may interleave on the wire. *)

val pack :
  out_connection ->
  ?s_mode:Iface.send_mode ->
  ?r_mode:Iface.recv_mode ->
  ?off:int ->
  ?len:int ->
  Bytes.t ->
  unit

val end_packing : out_connection -> unit

val flush : t -> me:int -> unit
(** Barrier flush: ship every aggregate still buffered in [me]'s
    scheduler now instead of waiting for a budget or deadline — the
    hook for synchronization points. No-op without an aggregating
    scheduler (there is never anything buffered). *)

val begin_unpacking : t -> me:int -> in_connection
(** Any-source (and any-flow) receive. Within one process, do not mix
    any-source and {!begin_unpacking_from} receives on the same virtual
    channel. *)

val begin_unpacking_from :
  ?flow:int -> t -> me:int -> remote:int -> in_connection
(** Matched receive: blocks for the next message from [remote] on
    logical flow [flow] (default [0]). *)

val remote_rank : in_connection -> int

val remote_flow : in_connection -> int
(** Logical flow the received message arrived on (0 for unflowed
    traffic). *)

val unpack :
  in_connection ->
  ?s_mode:Iface.send_mode ->
  ?r_mode:Iface.recv_mode ->
  ?off:int ->
  ?len:int ->
  Bytes.t ->
  unit
(** The Generic TM's self-description makes asymmetric unpack sequences
    detectable even on unchecked channels: mismatched size or modes raise
    {!Config.Symmetry_violation}. *)

val end_unpacking : in_connection -> unit
(** Raises {!Config.Symmetry_violation} if the message has leftover
    unconsumed data. *)
