(* Sender-side registration (pin-down) cache, after the MPICH2-over-
   InfiniBand design: registering a buffer for zero-copy RDMA costs a
   base charge plus a per-page walk, so the cache keeps recently used
   registrations alive and amortizes the pin across reuse. Entries are
   (buffer, interval) pairs in LRU order; a lookup that lands inside a
   cached interval is a hit, a partial overlap merges the old interval
   and the request into one hull registration (one pin, never two
   overlapping ones), and capacity pressure evicts cold entries,
   deregistering them. Buffers are identified physically ([==]): the
   cache answers "is THIS buffer still pinned", not "does an equal byte
   string exist" — structural comparison would false-hit on distinct
   buffers with equal contents and is O(len) per probe besides. *)

type 'r entry = {
  e_mem : Bytes.t;
  mutable e_pos : int;
  mutable e_len : int;
  mutable e_reg : 'r;
  mutable e_refs : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  merges : int;
  pinned_bytes : int;
  entries : int;
}

type 'r t = {
  capacity : int;
  max_bytes : int option;
  register : Bytes.t -> pos:int -> len:int -> 'r;
  deregister : 'r -> unit;
  mutable lru : 'r entry list; (* MRU first *)
  mutable pinned : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable merges : int;
}

let create ?(entries = 0) ?bytes ~register ~deregister () =
  if entries < 0 then invalid_arg "Regcache.create: negative capacity";
  (match bytes with
  | Some b when b <= 0 -> invalid_arg "Regcache.create: bytes cap <= 0"
  | _ -> ());
  {
    capacity = entries;
    max_bytes = bytes;
    register;
    deregister;
    lru = [];
    pinned = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    merges = 0;
  }

let handle e = e.e_reg
let interval e = (e.e_pos, e.e_len)

let covers e mem ~pos ~len =
  e.e_mem == mem && e.e_pos <= pos && pos + len <= e.e_pos + e.e_len

let overlaps e mem ~pos ~len =
  e.e_mem == mem && pos < e.e_pos + e.e_len && e.e_pos < pos + len

(* Evict idle entries from the cold end until both caps hold. Entries
   still referenced by an in-flight transfer are skipped: their pages
   must stay pinned until the done-flag, whatever the pressure. *)
let shrink t =
  let over () =
    List.length t.lru > t.capacity
    || match t.max_bytes with Some b -> t.pinned > b | None -> false
  in
  let rec coldest_idle = function
    | [] -> None
    | e :: rest -> (
        match coldest_idle rest with
        | Some _ as found -> found
        | None -> if e.e_refs = 0 then Some e else None)
  in
  let evict_coldest_idle lru =
    match coldest_idle lru with
    | None -> false
    | Some e ->
        t.lru <- List.filter (fun x -> x != e) t.lru;
        t.pinned <- t.pinned - e.e_len;
        t.evictions <- t.evictions + 1;
        t.deregister e.e_reg;
        true
  in
  let rec go () = if over () && evict_coldest_idle t.lru then go () in
  go ()

let touch t e = t.lru <- e :: List.filter (fun x -> x != e) t.lru

let acquire t mem ~pos ~len =
  if pos < 0 || len <= 0 || pos + len > Bytes.length mem then
    invalid_arg "Regcache.acquire: bad range";
  if t.capacity = 0 then begin
    (* Degenerate cache: register-per-send, release deregisters. *)
    t.misses <- t.misses + 1;
    let reg = t.register mem ~pos ~len in
    { e_mem = mem; e_pos = pos; e_len = len; e_reg = reg; e_refs = 1 }
  end
  else
    match List.find_opt (fun e -> covers e mem ~pos ~len) t.lru with
    | Some e ->
        t.hits <- t.hits + 1;
        e.e_refs <- e.e_refs + 1;
        touch t e;
        e
    | None -> (
        (* Partial overlap: replace every idle overlapping entry and the
           request by one hull registration, so the overlap is never
           pinned twice. Busy overlapping entries keep their pins (their
           transfer depends on them); the hull still covers the request,
           so correctness is unaffected — only a transient double pin. *)
        let idle_overlaps =
          List.filter (fun e -> overlaps e mem ~pos ~len && e.e_refs = 0) t.lru
        in
        match idle_overlaps with
        | [] ->
            t.misses <- t.misses + 1;
            let reg = t.register mem ~pos ~len in
            let e =
              { e_mem = mem; e_pos = pos; e_len = len; e_reg = reg; e_refs = 1 }
            in
            t.lru <- e :: t.lru;
            t.pinned <- t.pinned + len;
            shrink t;
            e
        | olaps ->
            t.merges <- t.merges + 1;
            t.misses <- t.misses + 1;
            let lo =
              List.fold_left (fun acc e -> min acc e.e_pos) pos olaps
            and hi =
              List.fold_left
                (fun acc e -> max acc (e.e_pos + e.e_len))
                (pos + len) olaps
            in
            List.iter
              (fun e ->
                t.lru <- List.filter (fun x -> x != e) t.lru;
                t.pinned <- t.pinned - e.e_len;
                t.deregister e.e_reg)
              olaps;
            let reg = t.register mem ~pos:lo ~len:(hi - lo) in
            let e =
              {
                e_mem = mem;
                e_pos = lo;
                e_len = hi - lo;
                e_reg = reg;
                e_refs = 1;
              }
            in
            t.lru <- e :: t.lru;
            t.pinned <- t.pinned + e.e_len;
            shrink t;
            e)

let release t e =
  if e.e_refs <= 0 then invalid_arg "Regcache.release: not acquired";
  e.e_refs <- e.e_refs - 1;
  if t.capacity = 0 then t.deregister e.e_reg
  else if e.e_refs = 0 then shrink t

let flush t =
  let busy, idle = List.partition (fun e -> e.e_refs > 0) t.lru in
  List.iter
    (fun e ->
      t.pinned <- t.pinned - e.e_len;
      t.evictions <- t.evictions + 1;
      t.deregister e.e_reg)
    idle;
  t.lru <- busy

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    merges = t.merges;
    pinned_bytes = t.pinned;
    entries = List.length t.lru;
  }
